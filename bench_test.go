// Package aqe benchmarks mirror the paper's evaluation: one testing.B
// bench per table/figure (cmd/aqebench prints the full paper-style rows;
// these give `go test -bench` coverage of the same code paths).
package aqe

import (
	"fmt"
	"testing"

	"aqe/internal/codegen"
	"aqe/internal/exec"
	"aqe/internal/jit"
	"aqe/internal/plan"
	"aqe/internal/rt"
	"aqe/internal/synth"
	"aqe/internal/tpch"
	"aqe/internal/vm"
	"aqe/internal/volcano"
)

const benchSF = 0.02

var benchCat = tpch.Gen(benchSF)

func runQuery(b *testing.B, qn int, mode exec.Mode, workers int) {
	b.Helper()
	e := exec.New(exec.Options{Workers: workers, Mode: mode, Cost: exec.Native()})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(tpch.Query(benchCat, qn)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2 covers the latency/throughput tradeoff of Fig. 2: Q1 under
// each execution mode (compile + execute end to end).
func BenchmarkFig2(b *testing.B) {
	for _, m := range []exec.Mode{exec.ModeIRInterp, exec.ModeBytecode,
		exec.ModeUnoptimized, exec.ModeOptimized} {
		b.Run(m.String(), func(b *testing.B) { runQuery(b, 1, m, 1) })
	}
}

// BenchmarkFig6Compile measures the three translators' compile times on a
// mid-size TPC-H plan (the Fig. 6 instruction-count/compile-time relation).
func BenchmarkFig6Compile(b *testing.B) {
	node := tpch.Query(benchCat, 5).Stages[0].Build(nil)
	mem := rt.NewMemory()
	cq := mustCompile(b, node, mem)
	b.Run("bytecode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, pl := range cq.Pipelines {
				if _, err := vm.Translate(pl.Fn, vm.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("unoptimized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, pl := range cq.Pipelines {
				if _, err := jit.Compile(pl.Fn, jit.Unoptimized, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("optimized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, pl := range cq.Pipelines {
				if _, err := jit.Compile(pl.Fn, jit.Optimized, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkFig13 samples the SF-sweep experiment: all four modes on a
// representative query mix at the bench scale.
func BenchmarkFig13(b *testing.B) {
	for _, m := range []exec.Mode{exec.ModeBytecode, exec.ModeUnoptimized,
		exec.ModeOptimized, exec.ModeAdaptive} {
		b.Run(m.String(), func(b *testing.B) {
			e := exec.New(exec.Options{Workers: 4, Mode: m, Cost: exec.Native()})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, qn := range []int{1, 3, 6, 11} {
					if _, err := e.Run(tpch.Query(benchCat, qn)); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkFig14 runs Q11 (the paper's trace query) adaptively with tracing
// enabled, covering the trace-recording overhead path.
func BenchmarkFig14(b *testing.B) {
	e := exec.New(exec.Options{Workers: 4, Mode: exec.ModeAdaptive,
		Cost: exec.Native(), Trace: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(tpch.Query(benchCat, 11)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15 measures bytecode translation of a machine-generated wide
// query — the §V-E linear-time translation claim.
func BenchmarkFig15Translate(b *testing.B) {
	st := synth.Table(100)
	for _, n := range []int{100, 400, 1600} {
		node := synth.WideAggPlan(st, n)
		mem := rt.NewMemory()
		cq := mustCompile(b, node, mem)
		b.Run(fmt.Sprintf("aggs%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, pl := range cq.Pipelines {
					if _, err := vm.Translate(pl.Fn, vm.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkTable1Codegen measures planning + code generation (Table I's
// cheap columns).
func BenchmarkTable1Codegen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		node := tpch.Query(benchCat, 3).Stages[0].Build(nil)
		mem := rt.NewMemory()
		mustCompile(b, node, mem)
	}
}

// BenchmarkTable2 compares the engines of Table II on Q1.
func BenchmarkTable2(b *testing.B) {
	q1 := func() plan.Node { return tpch.Query(benchCat, 1).Stages[0].Build(nil) }
	b.Run("volcano-PG", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := volcano.Run(q1()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("vector-Monet", func(b *testing.B) { runQuery(b, 1, exec.ModeVector, 1) })
	for _, m := range []exec.Mode{exec.ModeBytecode, exec.ModeUnoptimized, exec.ModeOptimized} {
		b.Run(m.String(), func(b *testing.B) { runQuery(b, 1, m, 1) })
	}
}

// BenchmarkFusionAblation quantifies §IV-F: bytecode with and without
// macro-op fusion on Q1.
func BenchmarkFusionAblation(b *testing.B) {
	for _, fusion := range []bool{true, false} {
		name := "fused"
		if !fusion {
			name = "nofusion"
		}
		b.Run(name, func(b *testing.B) {
			e := exec.New(exec.Options{Workers: 1, Mode: exec.ModeBytecode,
				VM: vm.Options{NoFusion: !fusion}})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(tpch.Query(benchCat, 1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRegallocAblation covers §IV-C: translation under the three
// register-allocation strategies.
func BenchmarkRegallocAblation(b *testing.B) {
	node := tpch.Query(benchCat, 1).Stages[0].Build(nil)
	mem := rt.NewMemory()
	cq := mustCompile(b, node, mem)
	for _, s := range []struct {
		name string
		str  vm.Strategy
	}{{"loop-aware", vm.LoopAware}, {"window", vm.Window}, {"no-reuse", vm.NoReuse}} {
		b.Run(s.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, pl := range cq.Pipelines {
					if _, err := vm.Translate(pl.Fn, vm.Options{Strategy: s.str, WindowSize: 8}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func mustCompile(tb testing.TB, node plan.Node, mem *rt.Memory) *codegen.Query {
	tb.Helper()
	cq, err := codegen.Compile(node, mem, "bench")
	if err != nil {
		tb.Fatal(err)
	}
	return cq
}
