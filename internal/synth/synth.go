// Package synth generates the machine-generated queries of the paper's
// §V-E: a single table scan with an increasing number of aggregate
// expressions, yielding query plans from about a thousand to 160k IR
// instructions, most of them in one large worker function. It stands in
// for the paper's business-intelligence workloads and for TPC-DS as the
// source of additional plan-size data points in Fig. 6 (DESIGN.md §1).
package synth

import (
	"fmt"
	"math/rand"

	"aqe/internal/expr"
	"aqe/internal/plan"
	"aqe/internal/storage"
)

// Table builds the synthetic fact table the wide queries scan.
func Table(rows int) *storage.Table {
	rng := rand.New(rand.NewSource(7))
	a := storage.NewColumn("a", storage.Int64)
	b := storage.NewColumn("b", storage.Int64)
	c := storage.NewColumn("c", storage.Decimal)
	d := storage.NewColumn("d", storage.Decimal)
	e := storage.NewColumn("e", storage.Int64)
	for i := 0; i < rows; i++ {
		a.AppendInt64(int64(rng.Intn(1000)))
		b.AppendInt64(int64(rng.Intn(100)))
		c.AppendInt64(int64(rng.Intn(100000)))
		d.AppendInt64(int64(rng.Intn(10000)))
		e.AppendInt64(int64(rng.Intn(50)))
	}
	t := storage.NewTable("synth", a, b, c, d, e)
	t.BuildZoneMaps(storage.DefaultZoneBlockRows)
	return t
}

// StringTable builds the table of the dictionary experiments: a
// high-cardinality string key generated in near-sorted order (so its
// dictionary codes are clustered and code-valued zone maps prune range
// predicates), a low-cardinality category column (bitmap LIKE/IN rewrites
// and code-hashed grouping), and an integer measure.
func StringTable(rows int) *storage.Table {
	rng := rand.New(rand.NewSource(11))
	k := storage.NewColumn("k", storage.String)
	cat := storage.NewColumn("cat", storage.String)
	v := storage.NewColumn("v", storage.Int64)
	for i := 0; i < rows; i++ {
		k.AppendString(fmt.Sprintf("sku-%08d", i*4+rng.Intn(8)))
		cat.AppendString(fmt.Sprintf("cat-%02d", rng.Intn(24)))
		v.AppendInt64(int64(rng.Intn(1000)))
	}
	t := storage.NewTable("strsynth", k, cat, v)
	t.BuildDicts()
	t.BuildZoneMaps(storage.DefaultZoneBlockRows)
	return t
}

// StringAggPlan scans the string table with a range predicate on the
// clustered key plus a category LIKE, grouping by category — every string
// path the dictionary rewrites accelerate (code comparisons, a code
// bitmap, code hashing, string zone-map pruning) in one plan.
func StringAggPlan(t *storage.Table, lo, hi string) plan.Node {
	s := plan.NewScan(t, "k", "cat", "v")
	sch := s.Schema()
	s.Filter = expr.And(
		expr.Ge(plan.C(sch, "k"), expr.Str(lo)),
		expr.Lt(plan.C(sch, "k"), expr.Str(hi)),
		expr.Like(plan.C(sch, "cat"), "cat-1%"),
	)
	return plan.NewGroupBy(s,
		[]expr.Expr{plan.C(sch, "cat")}, []string{"cat"},
		[]plan.AggExpr{
			{Func: plan.Sum, Arg: plan.C(sch, "v"), Name: "sv"},
			{Func: plan.CountStar, Name: "n"},
		})
}

// WideAggPlan builds a scan of t with nAggs distinct aggregate
// expressions, the §V-E query shape ("a single table scan and an
// increasing number of aggregate expressions"). Each aggregate's argument
// is a small arithmetic expression with overflow checks, so the generated
// worker function grows by a near-constant number of IR instructions per
// aggregate.
func WideAggPlan(t *storage.Table, nAggs int) plan.Node {
	s := plan.NewScan(t, "a", "b", "c", "d", "e")
	sch := s.Schema()
	rng := rand.New(rand.NewSource(int64(nAggs)))
	aggs := make([]plan.AggExpr, nAggs)
	cols := []expr.Expr{
		plan.C(sch, "a"), plan.C(sch, "b"), plan.C(sch, "e"),
	}
	decCols := []expr.Expr{plan.C(sch, "c"), plan.C(sch, "d")}
	for i := range aggs {
		// arg = (c|d) * (small + (a|b|e) + i%7) — checked multiply and
		// adds, distinct constants so CSE cannot collapse the aggregates.
		base := decCols[rng.Intn(2)]
		k := cols[rng.Intn(3)]
		arg := expr.Mul(base,
			expr.Rescale(expr.Add(expr.Add(k, expr.Int(int64(i%97+1))),
				expr.Mul(k, expr.Int(int64(i%13+1)))), 2))
		var fn plan.AggFunc
		switch i % 4 {
		case 0:
			fn = plan.Sum
		case 1:
			fn = plan.Min
		case 2:
			fn = plan.Max
		default:
			fn = plan.Avg
		}
		aggs[i] = plan.AggExpr{Func: fn, Arg: arg, Name: aggName(i)}
	}
	return plan.NewGroupBy(s, []expr.Expr{plan.C(sch, "b")}, []string{"b"}, aggs)
}

func aggName(i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	name := []byte{'x'}
	for {
		name = append(name, letters[i%26])
		i /= 26
		if i == 0 {
			return string(name)
		}
	}
}
