package synth

import (
	"testing"

	"aqe/internal/exec"
	"aqe/internal/volcano"
)

func TestWideAggPlanGrowsLinearly(t *testing.T) {
	tbl := Table(100)
	prev := 0
	for _, n := range []int{10, 20, 40} {
		node := WideAggPlan(tbl, n)
		if got := len(node.Schema()); got != n+1 {
			t.Fatalf("schema has %d cols, want %d", got, n+1)
		}
		e := exec.New(exec.Options{Workers: 1, Mode: exec.ModeBytecode})
		res, err := e.RunPlan(node, "wide")
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Instrs <= prev {
			t.Errorf("instruction count did not grow: %d", res.Stats.Instrs)
		}
		prev = res.Stats.Instrs
	}
}

func TestWideAggMatchesOracle(t *testing.T) {
	tbl := Table(500)
	node := WideAggPlan(tbl, 17)
	want, err := volcano.Run(node)
	if err != nil {
		t.Fatal(err)
	}
	e := exec.New(exec.Options{Workers: 2, Mode: exec.ModeOptimized, Cost: exec.Native()})
	res, err := e.RunPlan(WideAggPlan(tbl, 17), "wide")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("%d groups, oracle %d", len(res.Rows), len(want))
	}
	// Group order differs between engines: compare the first (integral)
	// aggregate per group key.
	index := map[int64]int64{}
	for _, r := range want {
		index[r[0].I] = r[1].I
	}
	for _, r := range res.Rows {
		if index[r[0].I] != r[1].I {
			t.Fatalf("group %d: %d vs %d", r[0].I, r[1].I, index[r[0].I])
		}
	}
}
