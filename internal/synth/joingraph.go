// Join-graph workloads for the cost-based optimizer (internal/opt): small
// relations with uniform join keys for property tests, and a deliberately
// misestimated star schema that exercises mid-query replanning.
package synth

import (
	"math/rand"

	"aqe/internal/expr"
	"aqe/internal/opt"
	"aqe/internal/plan"
	"aqe/internal/storage"
)

// GraphTable builds one relation of a random join-graph test: two join
// columns uniform over [0, dom) (enough for star, chain, and cycle
// shapes) and a value column. Uniform independent columns make the
// optimizer's cardinality model exact up to sampling noise, so property
// tests can bound the estimation error.
func GraphTable(name string, rows, dom int, seed int64) *storage.Table {
	rng := rand.New(rand.NewSource(seed))
	j0 := storage.NewColumn(name+"_j0", storage.Int64)
	j1 := storage.NewColumn(name+"_j1", storage.Int64)
	v := storage.NewColumn(name+"_v", storage.Int64)
	for i := 0; i < rows; i++ {
		j0.AppendInt64(int64(rng.Intn(dom)))
		j1.AppendInt64(int64(rng.Intn(dom)))
		v.AppendInt64(int64(rng.Intn(1000)))
	}
	t := storage.NewTable(name, j0, j1, v)
	t.BuildZoneMaps(storage.DefaultZoneBlockRows)
	return t
}

// Misestimation workload constants. dimA's a_s column is 99% below
// misestimateCut but its range spans misestimateSpan, so a uniform
// estimator puts the filter's selectivity near cut/span ≈ 1e-4 when it is
// really ≈ 0.99 — a ~10^4 underestimate that survives until dimA's hash
// table is built.
const (
	misestimateCut  = 100
	misestimateSpan = 1 << 20
)

// MisestimateTables builds a star schema whose statistics mislead the
// optimizer: fact(f_j, f_b, f_v), a skewed dimension dimA(a_j, a_s) with
// ~4 rows per join key (so a mis-ordered plan pays 4x fanout before the
// selective join), and a genuinely selective dimension dimB(b_k, b_a)
// whose uniform filter the estimator gets right. The optimizer therefore
// joins dimA first; at dimA's build finalize the observed cardinality
// exceeds the estimate by ~10^4 and the executor replans to dimB first.
func MisestimateTables(factRows int) (fact, dimA, dimB *storage.Table) {
	domA := factRows / 16
	if domA < 4 {
		domA = 4
	}
	domB := factRows / 8
	if domB < 8 {
		domB = 8
	}
	rng := rand.New(rand.NewSource(23))

	fj := storage.NewColumn("f_j", storage.Int64)
	fb := storage.NewColumn("f_b", storage.Int64)
	fv := storage.NewColumn("f_v", storage.Int64)
	for i := 0; i < factRows; i++ {
		fj.AppendInt64(int64(rng.Intn(domA)))
		fb.AppendInt64(int64(rng.Intn(domB)))
		fv.AppendInt64(int64(rng.Intn(1000)))
	}
	fact = storage.NewTable("mfact", fj, fb, fv)
	fact.BuildZoneMaps(storage.DefaultZoneBlockRows)

	aj := storage.NewColumn("a_j", storage.Int64)
	as := storage.NewColumn("a_s", storage.Int64)
	for i := 0; i < 4*domA; i++ {
		aj.AppendInt64(int64(i % domA)) // 4 duplicates per key
		if rng.Intn(100) == 0 {
			as.AppendInt64(int64(rng.Intn(misestimateSpan)))
		} else {
			as.AppendInt64(int64(rng.Intn(misestimateCut)))
		}
	}
	dimA = storage.NewTable("mdima", aj, as)
	dimA.BuildZoneMaps(storage.DefaultZoneBlockRows)

	bk := storage.NewColumn("b_k", storage.Int64)
	ba := storage.NewColumn("b_a", storage.Int64)
	for i := 0; i < domB; i++ {
		bk.AppendInt64(int64(i)) // unique key
		ba.AppendInt64(int64(rng.Intn(1000)))
	}
	dimB = storage.NewTable("mdimb", bk, ba)
	dimB.BuildZoneMaps(storage.DefaultZoneBlockRows)
	return fact, dimA, dimB
}

// MisestimateLogical is the logical query over MisestimateTables: filter
// both dimensions (a_s < cut misestimated ~10^4x low; b_a < 20 correctly
// ~2%), join both into the fact table, and return the scalar sum of f_v
// with a row count — order-invariant output by construction.
func MisestimateLogical(fact, dimA, dimB *storage.Table) *opt.Logical {
	fr := opt.Relation{Name: "mfact", Table: fact, Cols: []string{"f_j", "f_b", "f_v"}}
	ar := opt.Relation{Name: "mdima", Table: dimA, Cols: []string{"a_j", "a_s"}}
	asch := plan.NewScan(dimA, "a_j", "a_s").Schema()
	ar.Filter = expr.Lt(plan.C(asch, "a_s"), expr.Int(misestimateCut))
	br := opt.Relation{Name: "mdimb", Table: dimB, Cols: []string{"b_k", "b_a"}}
	bsch := plan.NewScan(dimB, "b_k", "b_a").Schema()
	br.Filter = expr.Lt(plan.C(bsch, "b_a"), expr.Int(20))
	return &opt.Logical{
		Name: "misestimate",
		Graph: &opt.Graph{
			Rels: []opt.Relation{fr, ar, br},
			Edges: []opt.Edge{
				{L: 0, LCol: "f_j", R: 1, RCol: "a_j"},
				{L: 0, LCol: "f_b", R: 2, RCol: "b_k"},
			},
		},
		Finish: func(j plan.Node) plan.Node {
			js := j.Schema()
			return plan.NewGroupBy(j, nil, nil, []plan.AggExpr{
				{Func: plan.Sum, Arg: plan.C(js, "f_v"), Name: "sv"},
				{Func: plan.CountStar, Name: "n"},
			})
		},
	}
}
