package storage

import (
	"math"
	"testing"
)

func TestZoneMapBlocks(t *testing.T) {
	c := NewColumn("a", Int64)
	for i := 0; i < 250; i++ {
		c.AppendInt64(int64(i))
	}
	c.BuildZoneMap(64)
	zm := c.Zone()
	if zm == nil {
		t.Fatal("no zone map after build")
	}
	if zm.Blocks() != 4 {
		t.Fatalf("250 rows / 64 = %d blocks, want 4", zm.Blocks())
	}
	wantMin := []int64{0, 64, 128, 192}
	wantMax := []int64{63, 127, 191, 249}
	for b := 0; b < 4; b++ {
		if zm.MinI[b] != wantMin[b] || zm.MaxI[b] != wantMax[b] {
			t.Errorf("block %d: [%d,%d], want [%d,%d]",
				b, zm.MinI[b], zm.MaxI[b], wantMin[b], wantMax[b])
		}
	}
}

func TestZoneMapKinds(t *testing.T) {
	ch := NewColumn("c", Char)
	f := NewColumn("f", Float64)
	s := NewColumn("s", String)
	for i := 0; i < 10; i++ {
		ch.AppendChar(byte('a' + i))
		f.AppendFloat64(float64(i) / 2)
		s.AppendString("x")
	}
	ch.BuildZoneMap(4)
	f.BuildZoneMap(4)
	s.BuildZoneMap(4)
	if zm := ch.Zone(); zm == nil || zm.MinI[0] != 'a' || zm.MaxI[0] != 'd' {
		t.Errorf("char zone map wrong: %+v", zm)
	}
	if zm := f.Zone(); zm == nil || zm.MinF[1] != 2 || zm.MaxF[1] != 3.5 {
		t.Errorf("float zone map wrong: %+v", zm)
	}
	if s.Zone() != nil {
		t.Error("String column must not carry a zone map")
	}
}

func TestZoneMapFloatNaN(t *testing.T) {
	f := NewColumn("f", Float64)
	f.AppendFloat64(math.NaN())
	f.AppendFloat64(1.5)
	f.AppendFloat64(math.NaN())
	f.AppendFloat64(math.NaN())
	f.BuildZoneMap(2)
	zm := f.Zone()
	if zm == nil {
		t.Fatal("no zone map")
	}
	// NaNs are excluded from the statistics; an all-NaN block gets the
	// empty range [+Inf, -Inf].
	if zm.MinF[0] != 1.5 || zm.MaxF[0] != 1.5 {
		t.Errorf("block 0: [%g,%g], want [1.5,1.5]", zm.MinF[0], zm.MaxF[0])
	}
	if !math.IsInf(zm.MinF[1], 1) || !math.IsInf(zm.MaxF[1], -1) {
		t.Errorf("all-NaN block: [%g,%g], want [+Inf,-Inf]", zm.MinF[1], zm.MaxF[1])
	}
}

func TestZoneMapStaleAfterAppend(t *testing.T) {
	c := NewColumn("a", Int64)
	for i := 0; i < 10; i++ {
		c.AppendInt64(int64(i))
	}
	c.BuildZoneMap(4)
	if c.Zone() == nil {
		t.Fatal("fresh map not returned")
	}
	c.AppendInt64(999)
	if c.Zone() != nil {
		t.Error("stale zone map handed out after append")
	}
	c.BuildZoneMap(4)
	if zm := c.Zone(); zm == nil || zm.MaxI[2] != 999 {
		t.Error("rebuild did not cover appended row")
	}
}

func TestReserve(t *testing.T) {
	c := NewColumn("a", Int64)
	c.AppendInt64(7)
	c.Reserve(1000, 0)
	base := &c.Data()[0]
	for i := 0; i < 1000; i++ {
		c.AppendInt64(int64(i))
	}
	if &c.Data()[0] != base {
		t.Error("reserved append still reallocated")
	}
	if c.Int64At(0) != 7 || c.Int64At(1000) != 999 {
		t.Error("data corrupted by Reserve")
	}

	s := NewColumn("s", String)
	s.AppendString("keep")
	s.Reserve(100, 1000)
	hbase := &s.Heap()[0]
	for i := 0; i < 100; i++ {
		s.AppendString("0123456789")
	}
	if &s.Heap()[0] != hbase {
		t.Error("reserved heap append still reallocated")
	}
	if s.StringAt(0) != "keep" || s.StringAt(100) != "0123456789" {
		t.Error("heap corrupted by Reserve")
	}
}
