package storage

// ColStats summarizes a column for the optimizer: global min/max derived
// from the zone map's per-block statistics and an estimated distinct
// count. The statistics come "for free" — they are by-products of the
// structures the engine already maintains for pruning (zone maps) and
// string compression (dictionaries); no separate ANALYZE pass exists.
//
// For String columns the integer domain is the dictionary-code domain
// (codes preserve value order), and NDV is the exact dictionary
// cardinality. For the other integer-representable kinds (Int64, Decimal,
// Date, Char) NDV is the uniform-domain heuristic min(rows, max-min+1) —
// exact for dense key columns, an upper bound otherwise. Float columns
// report min/max only.
type ColStats struct {
	Rows int
	// HasRange reports that MinI/MaxI (or MinF/MaxF for Float64 columns)
	// hold the column's global value range.
	HasRange bool
	Float    bool
	MinI     int64
	MaxI     int64
	MinF     float64
	MaxF     float64
	// NDV is the estimated number of distinct values (0 = unknown).
	NDV int64
}

// Stats derives optimizer statistics from the column's zone map and
// dictionary. A column without a fresh zone map (never built, or stale
// after appends) yields Rows only: selectivity estimation falls back to
// defaults, mirroring how pruning degrades without the map.
func (c *Column) Stats() ColStats {
	st := ColStats{Rows: c.rows}
	if d := c.Dict(); d != nil {
		st.NDV = int64(d.Card())
	}
	zm := c.Zone()
	if zm == nil || zm.Blocks() == 0 || c.rows == 0 {
		return st
	}
	if c.Kind == Float64 {
		st.Float = true
		st.MinF, st.MaxF = zm.MinF[0], zm.MaxF[0]
		for b := 1; b < len(zm.MinF); b++ {
			if zm.MinF[b] < st.MinF {
				st.MinF = zm.MinF[b]
			}
			if zm.MaxF[b] > st.MaxF {
				st.MaxF = zm.MaxF[b]
			}
		}
		st.HasRange = st.MinF <= st.MaxF // false for an all-NaN column
		return st
	}
	st.MinI, st.MaxI = zm.MinI[0], zm.MaxI[0]
	for b := 1; b < len(zm.MinI); b++ {
		if zm.MinI[b] < st.MinI {
			st.MinI = zm.MinI[b]
		}
		if zm.MaxI[b] > st.MaxI {
			st.MaxI = zm.MaxI[b]
		}
	}
	st.HasRange = true
	if st.NDV == 0 {
		// Uniform-domain heuristic; guard the span against overflow.
		span := uint64(st.MaxI) - uint64(st.MinI)
		ndv := int64(c.rows)
		if span < uint64(c.rows) {
			ndv = int64(span) + 1
		}
		st.NDV = ndv
	}
	return st
}
