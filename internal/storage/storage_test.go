package storage

import (
	"testing"
	"testing/quick"
)

func TestColumnRoundTrips(t *testing.T) {
	ic := NewColumn("i", Int64)
	fc := NewColumn("f", Float64)
	cc := NewColumn("c", Char)
	sc := NewColumn("s", String)
	for i := 0; i < 100; i++ {
		ic.AppendInt64(int64(i*i - 50))
		fc.AppendFloat64(float64(i) / 8)
		cc.AppendChar(byte('a' + i%26))
		sc.AppendString(string(rune('A'+i%26)) + "xyz")
	}
	for i := 0; i < 100; i++ {
		if ic.Int64At(i) != int64(i*i-50) {
			t.Fatalf("int64 row %d", i)
		}
		if fc.Float64At(i) != float64(i)/8 {
			t.Fatalf("float row %d", i)
		}
		if cc.CharAt(i) != byte('a'+i%26) {
			t.Fatalf("char row %d", i)
		}
		if sc.StringAt(i) != string(rune('A'+i%26))+"xyz" {
			t.Fatalf("string row %d: %q", i, sc.StringAt(i))
		}
	}
	if ic.Rows() != 100 || len(ic.Data()) != 800 {
		t.Errorf("rows/data sizing wrong")
	}
	if sc.Heap() == nil || len(sc.Data()) != 1600 {
		t.Errorf("string column sizing wrong")
	}
}

func TestStringRoundTripProperty(t *testing.T) {
	c := NewColumn("s", String)
	var want []string
	add := func(s string) bool {
		c.AppendString(s)
		want = append(want, s)
		return c.StringAt(len(want)-1) == s
	}
	if err := quick.Check(add, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	for i, s := range want {
		if c.StringAt(i) != s {
			t.Fatalf("row %d corrupted after later appends", i)
		}
	}
}

func TestTableAndCatalog(t *testing.T) {
	a := NewColumn("a", Int64)
	b := NewColumn("b", Decimal)
	a.AppendInt64(1)
	b.AppendInt64(250)
	tbl := NewTable("t", a, b)
	if err := tbl.Check(); err != nil {
		t.Fatal(err)
	}
	if tbl.Col("a") != a || tbl.Col("nope") != nil {
		t.Error("Col lookup broken")
	}
	b.AppendInt64(1)
	if err := tbl.Check(); err == nil {
		t.Error("Check missed ragged columns")
	}
	cat := NewCatalog()
	cat.Add(tbl)
	if cat.Table("t") != tbl || len(cat.Names()) != 1 {
		t.Error("catalog broken")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustCol should panic on missing column")
		}
	}()
	tbl.MustCol("missing")
}

func TestDates(t *testing.T) {
	cases := []struct {
		s    string
		days int64
	}{
		{"1970-01-01", 0}, {"1970-01-02", 1}, {"1996-01-01", 9496},
		{"1992-01-01", 8035}, {"1998-08-02", 10440},
	}
	for _, c := range cases {
		if got := MustParseDate(c.s); got != c.days {
			t.Errorf("MustParseDate(%s) = %d, want %d", c.s, got, c.days)
		}
		if got := FormatDate(c.days); got != c.s {
			t.Errorf("FormatDate(%d) = %s, want %s", c.days, got, c.s)
		}
	}
	if YearOf(MustParseDate("1995-12-31")) != 1995 {
		t.Error("YearOf broken")
	}
	if DaysFromDate(1970, 1, 3) != 2 {
		t.Error("DaysFromDate broken")
	}
}

func TestDecimalString(t *testing.T) {
	cases := []struct {
		v     int64
		scale int
		want  string
	}{
		{12345, 2, "123.45"}, {-12345, 2, "-123.45"}, {5, 2, "0.05"},
		{0, 2, "0.00"}, {7, 0, "7"}, {1234567, 4, "123.4567"},
	}
	for _, c := range cases {
		if got := DecimalString(c.v, c.scale); got != c.want {
			t.Errorf("DecimalString(%d,%d) = %s, want %s", c.v, c.scale, got, c.want)
		}
	}
}
