package storage

import "math"

// DefaultZoneBlockRows is the default zone-map block size: per-block
// min/max statistics are kept for every DefaultZoneBlockRows consecutive
// rows. 64k rows matches the engine's largest morsel, so a fully-pruned
// block removes at least one dispatched kernel invocation.
const DefaultZoneBlockRows = 65536

// ZoneMap holds small materialized aggregates — per-block min/max — over a
// fixed-width column (Int64, Decimal, Date, Float64, Char) or over the
// dictionary codes of a dictionary-encoded String column. The engine
// consults it to skip morsels whose block statistics prove that a scan's
// sargable predicate rejects every contained row; String columns without
// a fresh dictionary carry no zone map.
//
// Integer-representable kinds (Int64, Decimal, Date, Char) populate
// MinI/MaxI with the raw stored values (Decimal: scaled integers, Date:
// day numbers, Char: the byte value zero-extended — exactly the value the
// generated comparison code sees). String columns with a dictionary
// populate MinI/MaxI with per-block min/max codes: codes preserve the
// string order, so the same integer block test applies to the code
// thresholds the code generator derives from the dictionary (the build is
// deterministic, so codegen-time and build-time codes agree whenever both
// the map and the dictionary are fresh). Float64 columns populate MinF/MaxF,
// ignoring NaNs: a NaN row can never satisfy a comparison predicate, so
// excluding it from the statistics keeps pruning conservative. An
// all-NaN block gets the empty range [+Inf, -Inf], which no predicate
// matches — correctly prunable.
type ZoneMap struct {
	// BlockRows is the block size the map was built with.
	BlockRows int
	// Rows is the number of rows covered at build time. A zone map is
	// only valid while the column still has exactly Rows rows; appending
	// invalidates it (Column.Zone returns nil for stale maps).
	Rows int

	MinI, MaxI []int64
	MinF, MaxF []float64
}

// Blocks returns the number of blocks covered (the last may be partial).
func (zm *ZoneMap) Blocks() int {
	if zm.BlockRows <= 0 {
		return 0
	}
	return (zm.Rows + zm.BlockRows - 1) / zm.BlockRows
}

// BuildZoneMap computes per-block min/max statistics with the given block
// size (<= 0 selects DefaultZoneBlockRows). A String column is covered
// through its dictionary codes when a fresh dictionary exists (build
// dictionaries before zone maps); without one it has no orderable
// fixed-width representation, so building clears any stale map and
// records nothing.
func (c *Column) BuildZoneMap(blockRows int) {
	c.zone = nil
	var dict *Dict
	if c.Kind == String {
		if dict = c.Dict(); dict == nil {
			return
		}
	}
	if blockRows <= 0 {
		blockRows = DefaultZoneBlockRows
	}
	zm := &ZoneMap{BlockRows: blockRows, Rows: c.rows}
	nb := zm.Blocks()
	if c.Kind == Float64 {
		zm.MinF = make([]float64, nb)
		zm.MaxF = make([]float64, nb)
		for b := 0; b < nb; b++ {
			lo, hi := math.Inf(1), math.Inf(-1)
			end := (b + 1) * blockRows
			if end > c.rows {
				end = c.rows
			}
			for i := b * blockRows; i < end; i++ {
				v := c.Float64At(i)
				if math.IsNaN(v) {
					continue
				}
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			zm.MinF[b], zm.MaxF[b] = lo, hi
		}
	} else {
		zm.MinI = make([]int64, nb)
		zm.MaxI = make([]int64, nb)
		for b := 0; b < nb; b++ {
			lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
			end := (b + 1) * blockRows
			if end > c.rows {
				end = c.rows
			}
			for i := b * blockRows; i < end; i++ {
				var v int64
				switch {
				case dict != nil:
					v = int64(dict.CodeAt(i))
				case c.Kind == Char:
					v = int64(c.CharAt(i))
				default:
					v = c.Int64At(i)
				}
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			zm.MinI[b], zm.MaxI[b] = lo, hi
		}
	}
	c.zone = zm
}

// Zone returns the column's zone map, or nil when none was built, the
// column is a String column, or rows were appended since the build (a
// stale map is never handed out, so pruning stays conservative without
// per-append bookkeeping).
func (c *Column) Zone() *ZoneMap {
	if c.zone == nil || c.zone.Rows != c.rows {
		return nil
	}
	return c.zone
}

// BuildZoneMaps builds (or rebuilds) zone maps for every fixed-width
// column of the table. blockRows <= 0 selects DefaultZoneBlockRows.
func (t *Table) BuildZoneMaps(blockRows int) {
	for _, c := range t.Cols {
		c.BuildZoneMap(blockRows)
	}
}

// BuildZoneMaps builds zone maps for every table in the catalog.
func (cat *Catalog) BuildZoneMaps(blockRows int) {
	for _, name := range cat.order {
		cat.tables[name].BuildZoneMaps(blockRows)
	}
}
