package storage

import (
	"encoding/binary"
	"sort"
)

// Dict is an order-preserving dictionary over a String column: the
// distinct values sorted ascending, plus a dense uint32 code per row
// (code i ↔ Values[i]). Because codes preserve the value order, every
// comparison operator — not just equality — and min/max zone maps work
// directly on codes; the code generator rewrites sargable string
// predicates into integer comparisons against them.
//
// The raw (offset, length) vector and heap stay untouched: output
// decoding and the Volcano/vector baselines read the original bytes, so
// dictionary-accelerated plans are bit-identical to raw ones.
type Dict struct {
	// Values are the distinct strings in ascending order; the code of a
	// value is its index.
	Values []string
	// Rows is the number of rows covered at build time. Like zone maps, a
	// dictionary is only valid while the column still has exactly Rows
	// rows (Column.Dict returns nil for stale dictionaries).
	Rows int

	codes []byte // 4-byte little-endian code per row
}

// Card returns the number of distinct values.
func (d *Dict) Card() int { return len(d.Values) }

// Codes returns the raw code vector for segment registration (4 bytes
// per row, little-endian uint32).
func (d *Dict) Codes() []byte { return d.codes }

// CodeAt returns the code of row i.
func (d *Dict) CodeAt(i int) uint32 {
	return binary.LittleEndian.Uint32(d.codes[i*4:])
}

// Value returns the string of code i.
func (d *Dict) Value(i int) string { return d.Values[i] }

// Code returns the code of s and whether s occurs in the dictionary.
func (d *Dict) Code(s string) (int64, bool) {
	i := sort.SearchStrings(d.Values, s)
	if i < len(d.Values) && d.Values[i] == s {
		return int64(i), true
	}
	return 0, false
}

// LowerBound returns the first code whose value is >= s (len(Values)
// when every value is smaller). With Code it gives the code range of any
// ordering predicate: col < s ⇔ code < LowerBound(s).
func (d *Dict) LowerBound(s string) int64 {
	return int64(sort.SearchStrings(d.Values, s))
}

// BuildDict builds (or rebuilds) the order-preserving dictionary of a
// String column. Non-string columns record nothing: Char columns are
// already single-byte integers with full zone-map support. Building is
// part of load, after the bulk appends.
func (c *Column) BuildDict() {
	c.dict = nil
	if c.Kind != String {
		return
	}
	distinct := make(map[string]struct{}, c.rows/4+1)
	for i := 0; i < c.rows; i++ {
		distinct[c.StringAt(i)] = struct{}{}
	}
	values := make([]string, 0, len(distinct))
	for s := range distinct {
		values = append(values, s)
	}
	sort.Strings(values)
	code := make(map[string]uint32, len(values))
	for i, s := range values {
		code[s] = uint32(i)
	}
	d := &Dict{Values: values, Rows: c.rows, codes: make([]byte, 4*c.rows)}
	for i := 0; i < c.rows; i++ {
		binary.LittleEndian.PutUint32(d.codes[i*4:], code[c.StringAt(i)])
	}
	c.dict = d
}

// Dict returns the column's dictionary, or nil when none was built, the
// column is not a String column, or rows were appended since the build
// (a stale dictionary is never handed out, mirroring Zone).
func (c *Column) Dict() *Dict {
	if c.dict == nil || c.dict.Rows != c.rows {
		return nil
	}
	return c.dict
}

// BuildDicts builds dictionaries for every String column of the table.
func (t *Table) BuildDicts() {
	for _, c := range t.Cols {
		c.BuildDict()
	}
}

// BuildDicts builds dictionaries for every table in the catalog.
func (cat *Catalog) BuildDicts() {
	for _, name := range cat.order {
		cat.tables[name].BuildDicts()
	}
}
