// Package storage implements the columnar in-memory table storage the
// query engine scans: fixed-width little-endian column vectors (readable
// directly by generated code through the segmented address space), string
// columns as (offset, length) pairs into a per-column heap, and a catalog.
//
// Types follow TPC-H's needs: 64-bit integers, fixed-point decimals
// (scaled integers), dates (days since the Unix epoch), 64-bit floats,
// single characters and variable-length strings. TPC-H data contains no
// NULLs, so columns carry no null bitmap (documented in DESIGN.md).
package storage

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// Kind is a column data type.
type Kind uint8

// Column kinds.
const (
	Int64 Kind = iota
	Decimal
	Date
	Float64
	Char
	String
)

func (k Kind) String() string {
	switch k {
	case Int64:
		return "int64"
	case Decimal:
		return "decimal"
	case Date:
		return "date"
	case Float64:
		return "float64"
	case Char:
		return "char"
	case String:
		return "string"
	}
	return "kind?"
}

// Width returns the fixed row width of the column kind in bytes. String
// rows store (offset uint64, length uint64) into the column's heap.
func (k Kind) Width() int {
	switch k {
	case Char:
		return 1
	case String:
		return 16
	default:
		return 8
	}
}

// Column is a typed column vector.
type Column struct {
	Name string
	Kind Kind
	// Scale is the number of decimal digits for Decimal columns (TPC-H
	// money columns use 2: values are stored as cents).
	Scale int

	data []byte
	heap []byte // string heap (String kind only)
	rows int
	zone *ZoneMap // per-block min/max statistics (zonemap.go)
	dict *Dict    // order-preserving string dictionary (dict.go)
}

// NewColumn creates an empty column.
func NewColumn(name string, kind Kind) *Column {
	scale := 0
	if kind == Decimal {
		scale = 2
	}
	return &Column{Name: name, Kind: kind, Scale: scale}
}

// Rows returns the number of rows.
func (c *Column) Rows() int { return c.rows }

// Data returns the raw fixed-width vector for segment registration.
func (c *Column) Data() []byte { return c.data }

// Heap returns the string heap for segment registration (nil for
// non-string columns).
func (c *Column) Heap() []byte { return c.heap }

// Reserve pre-allocates capacity for rows additional rows and — for
// String columns — heapBytes additional heap bytes, so bulk loads append
// without incremental growth copies.
func (c *Column) Reserve(rows, heapBytes int) {
	if need := len(c.data) + rows*c.Kind.Width(); cap(c.data) < need {
		nd := make([]byte, len(c.data), need)
		copy(nd, c.data)
		c.data = nd
	}
	if heapBytes > 0 {
		if need := len(c.heap) + heapBytes; cap(c.heap) < need {
			nh := make([]byte, len(c.heap), need)
			copy(nh, c.heap)
			c.heap = nh
		}
	}
}

// AppendInt64 appends an integer (Int64, Decimal or Date columns).
func (c *Column) AppendInt64(v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	c.data = append(c.data, buf[:]...)
	c.rows++
}

// AppendFloat64 appends a float.
func (c *Column) AppendFloat64(v float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	c.data = append(c.data, buf[:]...)
	c.rows++
}

// AppendChar appends a one-byte character.
func (c *Column) AppendChar(ch byte) {
	c.data = append(c.data, ch)
	c.rows++
}

// AppendString appends a string to the heap and its reference to the
// vector.
func (c *Column) AppendString(s string) {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(len(c.heap)))
	binary.LittleEndian.PutUint64(buf[8:], uint64(len(s)))
	c.heap = append(c.heap, s...)
	c.data = append(c.data, buf[:]...)
	c.rows++
}

// Int64At returns the integer value at row i.
func (c *Column) Int64At(i int) int64 {
	return int64(binary.LittleEndian.Uint64(c.data[i*8:]))
}

// Float64At returns the float value at row i.
func (c *Column) Float64At(i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(c.data[i*8:]))
}

// CharAt returns the character at row i.
func (c *Column) CharAt(i int) byte { return c.data[i] }

// StringAt returns the string at row i.
func (c *Column) StringAt(i int) string {
	off := binary.LittleEndian.Uint64(c.data[i*16:])
	n := binary.LittleEndian.Uint64(c.data[i*16+8:])
	return string(c.heap[off : off+n])
}

// Table is a named collection of equal-length columns.
type Table struct {
	Name   string
	Cols   []*Column
	byName map[string]int
}

// NewTable creates a table with the given columns.
func NewTable(name string, cols ...*Column) *Table {
	t := &Table{Name: name, Cols: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		t.byName[c.Name] = i
	}
	return t
}

// Rows returns the row count (0 for a table with no columns).
func (t *Table) Rows() int {
	if len(t.Cols) == 0 {
		return 0
	}
	return t.Cols[0].Rows()
}

// Col returns the named column or nil.
func (t *Table) Col(name string) *Column {
	if i, ok := t.byName[name]; ok {
		return t.Cols[i]
	}
	return nil
}

// MustCol returns the named column, panicking if absent — plan construction
// errors are programming errors, not runtime conditions.
func (t *Table) MustCol(name string) *Column {
	c := t.Col(name)
	if c == nil {
		panic(fmt.Sprintf("storage: table %s has no column %s", t.Name, name))
	}
	return c
}

// Check validates that all columns have equal length.
func (t *Table) Check() error {
	for _, c := range t.Cols {
		if c.Rows() != t.Rows() {
			return fmt.Errorf("storage: %s.%s has %d rows, table has %d",
				t.Name, c.Name, c.Rows(), t.Rows())
		}
	}
	return nil
}

// Catalog maps table names to tables.
type Catalog struct {
	tables map[string]*Table
	order  []string
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{tables: make(map[string]*Table)} }

// Add registers a table, replacing any previous table of the same name.
func (cat *Catalog) Add(t *Table) {
	if _, ok := cat.tables[t.Name]; !ok {
		cat.order = append(cat.order, t.Name)
	}
	cat.tables[t.Name] = t
}

// Table returns the named table or nil.
func (cat *Catalog) Table(name string) *Table { return cat.tables[name] }

// Names returns the table names in registration order.
func (cat *Catalog) Names() []string { return append([]string(nil), cat.order...) }

// Epoch is the date origin: days are counted from 1970-01-01.
var Epoch = time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC)

// DaysFromDate converts a civil date to days since the epoch.
func DaysFromDate(year, month, day int) int64 {
	t := time.Date(year, time.Month(month), day, 0, 0, 0, 0, time.UTC)
	return int64(t.Sub(Epoch).Hours() / 24)
}

// ParseDate parses "YYYY-MM-DD" into days since the epoch.
func ParseDate(s string) (int64, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, err
	}
	return int64(t.Sub(Epoch).Hours() / 24), nil
}

// MustParseDate parses "YYYY-MM-DD" into days since the epoch.
func MustParseDate(s string) int64 {
	d, err := ParseDate(s)
	if err != nil {
		panic("storage: bad date " + s)
	}
	return d
}

// FormatDate renders days since the epoch as "YYYY-MM-DD".
func FormatDate(days int64) string {
	return Epoch.AddDate(0, 0, int(days)).Format("2006-01-02")
}

// YearOf returns the calendar year of a date value.
func YearOf(days int64) int64 {
	return int64(Epoch.AddDate(0, 0, int(days)).Year())
}

// DecimalString renders a scaled integer with the given scale.
func DecimalString(v int64, scale int) string {
	if scale == 0 {
		return fmt.Sprintf("%d", v)
	}
	pow := int64(1)
	for i := 0; i < scale; i++ {
		pow *= 10
	}
	sign := ""
	if v < 0 {
		sign = "-"
		v = -v
	}
	return fmt.Sprintf("%s%d.%0*d", sign, v/pow, scale, v%pow)
}
