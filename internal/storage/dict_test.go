package storage

import (
	"math/rand"
	"sort"
	"testing"
)

func TestDictOrderPreserving(t *testing.T) {
	c := NewColumn("s", String)
	vals := []string{"pear", "apple", "fig", "apple", "banana", "fig", "pear", "apple"}
	for _, v := range vals {
		c.AppendString(v)
	}
	c.BuildDict()
	d := c.Dict()
	if d == nil {
		t.Fatal("no dictionary after BuildDict")
	}
	if d.Card() != 4 {
		t.Fatalf("Card = %d, want 4", d.Card())
	}
	if !sort.StringsAreSorted(d.Values) {
		t.Fatalf("Values not sorted: %v", d.Values)
	}
	// Per-row codes decode back to the original strings.
	for i, v := range vals {
		if got := d.Value(int(d.CodeAt(i))); got != v {
			t.Errorf("row %d: code %d decodes to %q, want %q", i, d.CodeAt(i), got, v)
		}
	}
	// Code order equals string order for every pair of distinct values.
	for i := 0; i < d.Card(); i++ {
		for j := 0; j < d.Card(); j++ {
			if (i < j) != (d.Value(i) < d.Value(j)) {
				t.Errorf("code order %d vs %d disagrees with %q vs %q",
					i, j, d.Value(i), d.Value(j))
			}
		}
	}
	if code, ok := d.Code("fig"); !ok || d.Value(int(code)) != "fig" {
		t.Errorf("Code(fig) = %d, %v", code, ok)
	}
	if _, ok := d.Code("grape"); ok {
		t.Error("Code found an absent value")
	}
	// LowerBound: col < s ⇔ code < LowerBound(s).
	if lb := d.LowerBound("banana"); lb != 1 {
		t.Errorf("LowerBound(banana) = %d, want 1", lb)
	}
	if lb := d.LowerBound("coconut"); lb != 2 {
		t.Errorf("LowerBound(coconut) = %d, want 2", lb)
	}
	if lb := d.LowerBound("zzz"); lb != int64(d.Card()) {
		t.Errorf("LowerBound(zzz) = %d, want Card", lb)
	}
}

func TestDictStaleAfterAppend(t *testing.T) {
	c := NewColumn("s", String)
	c.AppendString("a")
	c.BuildDict()
	if c.Dict() == nil {
		t.Fatal("dictionary missing")
	}
	c.AppendString("b")
	if c.Dict() != nil {
		t.Error("stale dictionary handed out after append")
	}
	c.BuildDict()
	if d := c.Dict(); d == nil || d.Card() != 2 {
		t.Error("rebuild did not refresh the dictionary")
	}
}

func TestDictNonString(t *testing.T) {
	c := NewColumn("n", Int64)
	c.AppendInt64(7)
	c.BuildDict()
	if c.Dict() != nil {
		t.Error("non-string column produced a dictionary")
	}
}

// TestDictZoneMapCodes: string zone maps hold per-block min/max codes
// consistent with the dictionary.
func TestDictZoneMapCodes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewColumn("s", String)
	const rows, block = 1000, 128
	for i := 0; i < rows; i++ {
		c.AppendString(string(rune('a' + rng.Intn(20))))
	}
	tb := NewTable("t", c)
	tb.BuildDicts()
	tb.BuildZoneMaps(block)
	d, zm := c.Dict(), c.Zone()
	if d == nil || zm == nil {
		t.Fatal("missing dict or zone map")
	}
	for b := 0; b*block < rows; b++ {
		lo, hi := int64(d.Card()), int64(-1)
		for i := b * block; i < (b+1)*block && i < rows; i++ {
			code := int64(d.CodeAt(i))
			if code < lo {
				lo = code
			}
			if code > hi {
				hi = code
			}
		}
		if zm.MinI[b] != lo || zm.MaxI[b] != hi {
			t.Errorf("block %d: zone [%d,%d], want [%d,%d]",
				b, zm.MinI[b], zm.MaxI[b], lo, hi)
		}
	}
}
