// Package expr implements the typed scalar expression language shared by
// all four execution engines: the plan layer builds expression trees, the
// code generator lowers them to IR (with overflow-checked arithmetic, the
// paper's §IV-F fusion target), and the Volcano/column-at-a-time baseline
// engines evaluate them directly with the interpreter in eval.go.
//
// The type system follows TPC-H's needs: 64-bit integers, fixed-point
// decimals as scaled integers, dates as day numbers, floats, booleans,
// single characters and strings. There are no NULLs (TPC-H data contains
// none; see DESIGN.md).
package expr

import (
	"fmt"
	"strings"

	"aqe/internal/rt"
)

// Kind is a scalar type kind.
type Kind uint8

// Scalar kinds.
const (
	KInt Kind = iota
	KDecimal
	KDate
	KFloat
	KBool
	KChar
	KString
)

func (k Kind) String() string {
	return [...]string{"int", "decimal", "date", "float", "bool", "char", "string"}[k]
}

// Type is a scalar type (kind plus decimal scale).
type Type struct {
	Kind  Kind
	Scale int
}

func (t Type) String() string {
	if t.Kind == KDecimal {
		return fmt.Sprintf("decimal(%d)", t.Scale)
	}
	return t.Kind.String()
}

// Numeric reports whether the type participates in arithmetic.
func (t Type) Numeric() bool {
	return t.Kind == KInt || t.Kind == KDecimal || t.Kind == KFloat
}

// Common type shorthands.
var (
	TInt    = Type{Kind: KInt}
	TDate   = Type{Kind: KDate}
	TFloat  = Type{Kind: KFloat}
	TBool   = Type{Kind: KBool}
	TChar   = Type{Kind: KChar}
	TString = Type{Kind: KString}
)

// TDec returns a decimal type with the given scale.
func TDec(scale int) Type { return Type{Kind: KDecimal, Scale: scale} }

// Expr is a typed scalar expression node.
type Expr interface {
	Type() Type
}

// ColRef references column Idx of the input row schema.
type ColRef struct {
	Idx int
	T   Type
}

func (c *ColRef) Type() Type { return c.T }

// Const is a literal. I carries int/decimal/date/bool/char values, F
// floats, S strings.
type Const struct {
	T Type
	I int64
	F float64
	S string
}

func (c *Const) Type() Type { return c.T }

// Param references prepared-statement parameter Idx ($1 is Idx 0). Unlike
// a Const, its value is not part of the expression tree: generated code
// loads it from the query's parameter segment at execution time, so plans
// that differ only in parameter values share IR — and therefore share a
// plan-cache fingerprint, compiled tiers and vectorized kernels.
type Param struct {
	Idx int
	T   Type
}

func (p *Param) Type() Type { return p.T }

// ArithOp is an arithmetic operator.
type ArithOp uint8

// Arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
)

func (o ArithOp) String() string { return [...]string{"+", "-", "*", "/"}[o] }

// Arith is checked arithmetic. The result type follows the decimal rules
// computed by the constructor.
type Arith struct {
	Op   ArithOp
	L, R Expr
	T    Type
}

func (a *Arith) Type() Type { return a.T }

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

func (o CmpOp) String() string { return [...]string{"=", "<>", "<", "<=", ">", ">="}[o] }

// Cmp compares two values of a common type.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

func (c *Cmp) Type() Type { return TBool }

// Logic is AND/OR over booleans (two-valued: no NULLs).
type Logic struct {
	IsAnd bool
	Args  []Expr
}

func (l *Logic) Type() Type { return TBool }

// NotExpr negates a boolean.
type NotExpr struct{ Arg Expr }

func (n *NotExpr) Type() Type { return TBool }

// LikeExpr matches a string column against a compiled pattern.
type LikeExpr struct {
	Arg     Expr
	Pattern string
	// Compiled is used by the interpreted evaluator; generated code
	// references the pattern through the query state by index.
	Compiled *rt.LikePattern
	Negate   bool
}

func (l *LikeExpr) Type() Type { return TBool }

// InList tests membership in a list of constants of the argument's type.
type InList struct {
	Arg  Expr
	List []*Const
}

func (i *InList) Type() Type { return TBool }

// When is one CASE arm.
type When struct {
	Cond Expr
	Then Expr
}

// CaseExpr is CASE WHEN ... THEN ... ELSE ... END.
type CaseExpr struct {
	Whens []When
	Else  Expr
	T     Type
}

func (c *CaseExpr) Type() Type { return c.T }

// YearExpr extracts the calendar year of a date.
type YearExpr struct{ Arg Expr }

func (y *YearExpr) Type() Type { return TInt }

// SubstrExpr takes the fixed substring [From, From+Len) (1-based From) of
// a string.
type SubstrExpr struct {
	Arg       Expr
	From, Len int
}

func (s *SubstrExpr) Type() Type { return TString }

// CastExpr converts between numeric types (int/decimal/float widening and
// decimal rescaling).
type CastExpr struct {
	Arg Expr
	T   Type
}

func (c *CastExpr) Type() Type { return c.T }

// --- Constructors (they type-check eagerly; plan construction bugs are
// programming errors, so violations panic with context). ---

// Col references a column.
func Col(idx int, t Type) Expr { return &ColRef{Idx: idx, T: t} }

// Int returns an integer literal.
func Int(v int64) Expr { return &Const{T: TInt, I: v} }

// Dec returns a decimal literal with the given scale ("1.25" at scale 2 is
// Dec(125, 2)).
func Dec(v int64, scale int) Expr { return &Const{T: TDec(scale), I: v} }

// Date returns a date literal from days since the epoch.
func Date(days int64) Expr { return &Const{T: TDate, I: days} }

// Float returns a float literal.
func Float(v float64) Expr { return &Const{T: TFloat, F: v} }

// Str returns a string literal.
func Str(s string) Expr { return &Const{T: TString, S: s} }

// Ch returns a char literal.
func Ch(c byte) Expr { return &Const{T: TChar, I: int64(c)} }

// ParamRef returns a parameter reference of the given type.
func ParamRef(idx int, t Type) Expr {
	if idx < 0 {
		panic("expr: negative parameter index")
	}
	return &Param{Idx: idx, T: t}
}

// Bool returns a boolean literal.
func Bool(b bool) Expr {
	v := int64(0)
	if b {
		v = 1
	}
	return &Const{T: TBool, I: v}
}

func arithType(op ArithOp, l, r Type) Type {
	if !l.Numeric() || !r.Numeric() {
		panic(fmt.Sprintf("expr: %s %s %s is not numeric", l, op, r))
	}
	if l.Kind == KFloat || r.Kind == KFloat {
		return TFloat
	}
	ld, rd := l.Kind == KDecimal, r.Kind == KDecimal
	switch op {
	case OpAdd, OpSub:
		if ld || rd {
			s := l.Scale
			if r.Scale > s {
				s = r.Scale
			}
			return TDec(s)
		}
		return TInt
	case OpMul:
		if ld && rd {
			return TDec(l.Scale + r.Scale)
		}
		if ld {
			return TDec(l.Scale)
		}
		if rd {
			return TDec(r.Scale)
		}
		return TInt
	default: // OpDiv
		if ld && rd {
			return TFloat // ratio semantics, documented in DESIGN.md
		}
		if ld {
			return TDec(l.Scale)
		}
		if rd {
			return TFloat
		}
		return TInt
	}
}

// NewArith builds a checked arithmetic node.
func NewArith(op ArithOp, l, r Expr) Expr {
	return &Arith{Op: op, L: l, R: r, T: arithType(op, l.Type(), r.Type())}
}

// Add, Sub, Mul, Div are convenience constructors.
func Add(l, r Expr) Expr { return NewArith(OpAdd, l, r) }
func Sub(l, r Expr) Expr { return NewArith(OpSub, l, r) }
func Mul(l, r Expr) Expr { return NewArith(OpMul, l, r) }
func Div(l, r Expr) Expr { return NewArith(OpDiv, l, r) }

func comparable(l, r Type) bool {
	if l.Numeric() && r.Numeric() {
		return true
	}
	if l.Kind == r.Kind {
		return true
	}
	return false
}

// NewCmp builds a comparison.
func NewCmp(op CmpOp, l, r Expr) Expr {
	lt, rtt := l.Type(), r.Type()
	if !comparable(lt, rtt) {
		panic(fmt.Sprintf("expr: cannot compare %s %s %s", lt, op, rtt))
	}
	return &Cmp{Op: op, L: l, R: r}
}

// Eq etc. are convenience comparison constructors.
func Eq(l, r Expr) Expr { return NewCmp(CmpEq, l, r) }
func Ne(l, r Expr) Expr { return NewCmp(CmpNe, l, r) }
func Lt(l, r Expr) Expr { return NewCmp(CmpLt, l, r) }
func Le(l, r Expr) Expr { return NewCmp(CmpLe, l, r) }
func Gt(l, r Expr) Expr { return NewCmp(CmpGt, l, r) }
func Ge(l, r Expr) Expr { return NewCmp(CmpGe, l, r) }

// Between builds lo <= e AND e <= hi.
func Between(e, lo, hi Expr) Expr { return And(Ge(e, lo), Le(e, hi)) }

// And conjoins boolean expressions.
func And(args ...Expr) Expr {
	for _, a := range args {
		if a.Type().Kind != KBool {
			panic("expr: AND over non-boolean")
		}
	}
	if len(args) == 1 {
		return args[0]
	}
	return &Logic{IsAnd: true, Args: args}
}

// Or disjoins boolean expressions.
func Or(args ...Expr) Expr {
	for _, a := range args {
		if a.Type().Kind != KBool {
			panic("expr: OR over non-boolean")
		}
	}
	if len(args) == 1 {
		return args[0]
	}
	return &Logic{IsAnd: false, Args: args}
}

// Not negates a boolean.
func Not(e Expr) Expr {
	if e.Type().Kind != KBool {
		panic("expr: NOT over non-boolean")
	}
	return &NotExpr{Arg: e}
}

// Like builds a LIKE match.
func Like(arg Expr, pattern string) Expr {
	if arg.Type().Kind != KString {
		panic("expr: LIKE over non-string")
	}
	return &LikeExpr{Arg: arg, Pattern: pattern, Compiled: rt.CompileLike(pattern)}
}

// NotLike builds a NOT LIKE match.
func NotLike(arg Expr, pattern string) Expr {
	if arg.Type().Kind != KString {
		panic("expr: LIKE over non-string")
	}
	return &LikeExpr{Arg: arg, Pattern: pattern, Compiled: rt.CompileLike(pattern), Negate: true}
}

// In builds list membership over constants.
func In(arg Expr, vals ...Expr) Expr {
	list := make([]*Const, len(vals))
	for i, v := range vals {
		c, ok := v.(*Const)
		if !ok {
			panic("expr: IN list must be constants")
		}
		if c.T.Kind != arg.Type().Kind {
			panic(fmt.Sprintf("expr: IN list type %s vs argument %s", c.T, arg.Type()))
		}
		list[i] = c
	}
	return &InList{Arg: arg, List: list}
}

// Case builds CASE WHEN; all THEN arms and the ELSE must share a type.
func Case(whens []When, els Expr) Expr {
	if len(whens) == 0 {
		panic("expr: CASE without WHEN")
	}
	t := whens[0].Then.Type()
	for _, w := range whens {
		if w.Cond.Type().Kind != KBool {
			panic("expr: CASE condition not boolean")
		}
		if w.Then.Type() != t {
			panic(fmt.Sprintf("expr: CASE arms disagree: %s vs %s", w.Then.Type(), t))
		}
	}
	if els.Type() != t {
		panic(fmt.Sprintf("expr: CASE else %s vs arms %s", els.Type(), t))
	}
	return &CaseExpr{Whens: whens, Else: els, T: t}
}

// Year extracts the year of a date.
func Year(e Expr) Expr {
	if e.Type().Kind != KDate {
		panic("expr: YEAR over non-date")
	}
	return &YearExpr{Arg: e}
}

// Substr takes a fixed substring (1-based from).
func Substr(e Expr, from, n int) Expr {
	if e.Type().Kind != KString || from < 1 || n < 0 {
		panic("expr: bad SUBSTR")
	}
	return &SubstrExpr{Arg: e, From: from, Len: n}
}

// ToFloat converts a numeric to float.
func ToFloat(e Expr) Expr {
	if e.Type().Kind == KFloat {
		return e
	}
	if !e.Type().Numeric() && e.Type().Kind != KBool {
		panic("expr: ToFloat over " + e.Type().String())
	}
	return &CastExpr{Arg: e, T: TFloat}
}

// Rescale converts a decimal (or int) to a decimal of the given scale.
func Rescale(e Expr, scale int) Expr {
	t := e.Type()
	if t.Kind == KDecimal && t.Scale == scale {
		return e
	}
	if t.Kind != KDecimal && t.Kind != KInt {
		panic("expr: Rescale over " + t.String())
	}
	return &CastExpr{Arg: e, T: TDec(scale)}
}

// String renders an expression for diagnostics.
func String(e Expr) string {
	var sb strings.Builder
	format(&sb, e)
	return sb.String()
}

func format(sb *strings.Builder, e Expr) {
	switch x := e.(type) {
	case *ColRef:
		fmt.Fprintf(sb, "#%d", x.Idx)
	case *Const:
		switch x.T.Kind {
		case KString:
			fmt.Fprintf(sb, "%q", x.S)
		case KFloat:
			fmt.Fprintf(sb, "%g", x.F)
		default:
			fmt.Fprintf(sb, "%d", x.I)
		}
	case *Param:
		fmt.Fprintf(sb, "$%d", x.Idx+1)
	case *Arith:
		sb.WriteByte('(')
		format(sb, x.L)
		sb.WriteString(x.Op.String())
		format(sb, x.R)
		sb.WriteByte(')')
	case *Cmp:
		sb.WriteByte('(')
		format(sb, x.L)
		sb.WriteString(x.Op.String())
		format(sb, x.R)
		sb.WriteByte(')')
	case *Logic:
		op := " OR "
		if x.IsAnd {
			op = " AND "
		}
		sb.WriteByte('(')
		for i, a := range x.Args {
			if i > 0 {
				sb.WriteString(op)
			}
			format(sb, a)
		}
		sb.WriteByte(')')
	case *NotExpr:
		sb.WriteString("NOT ")
		format(sb, x.Arg)
	case *LikeExpr:
		format(sb, x.Arg)
		if x.Negate {
			sb.WriteString(" NOT")
		}
		fmt.Fprintf(sb, " LIKE %q", x.Pattern)
	case *InList:
		format(sb, x.Arg)
		sb.WriteString(" IN (...)")
	case *CaseExpr:
		sb.WriteString("CASE ... END")
	case *YearExpr:
		sb.WriteString("YEAR(")
		format(sb, x.Arg)
		sb.WriteByte(')')
	case *SubstrExpr:
		fmt.Fprintf(sb, "SUBSTR(")
		format(sb, x.Arg)
		fmt.Fprintf(sb, ",%d,%d)", x.From, x.Len)
	case *CastExpr:
		fmt.Fprintf(sb, "CAST(")
		format(sb, x.Arg)
		fmt.Fprintf(sb, " AS %s)", x.T)
	default:
		sb.WriteString("?")
	}
}
