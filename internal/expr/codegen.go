package expr

import (
	"fmt"

	"aqe/internal/ir"
)

// Val is the IR-level value of an expression: X holds the scalar (i64 for
// int/decimal/date/bool/char, f64 for floats, the byte address for
// strings) and Len the string length.
type Val struct {
	X   *ir.Value
	Len *ir.Value
}

// DictRef is the view of an order-preserving string dictionary that the
// expression compiler needs for code-valued predicate rewrites. It is
// implemented by storage.Dict; the indirection keeps expr free of a
// storage dependency. Codes are dense [0, Card()) and preserve the value
// order: Value(i) < Value(j) ⇔ i < j.
type DictRef interface {
	Card() int
	Code(s string) (int64, bool)
	LowerBound(s string) int64
	Value(i int) string
}

// dictBitmapMaxCard bounds the dictionary cardinality for which LIKE and
// long IN lists are compiled into a per-query code bitmap (one bit per
// code, interned in the literal segment): 64k codes is an 8 KiB bitmap,
// well within the literal budget, and covers every categorical TPC-H
// column while excluding comment-style columns whose dictionaries are as
// large as the table.
const dictBitmapMaxCard = 1 << 16

// CG compiles expressions into IR within a worker function. The plan code
// generator supplies the column resolver (which loads the column value of
// the current tuple), the LIKE pattern interner and the string literal
// interner; CG owns the shared overflow-trap block of the function.
type CG struct {
	B *ir.Builder
	// Col returns the value of input column idx for the current tuple.
	Col func(idx int) Val
	// Pattern interns a LIKE pattern in the query state, returning its id.
	Pattern func(pattern string) int
	// StrLit interns a string literal in the literal segment, returning
	// its (address, length).
	StrLit func(s string) (int64, int64)
	// Param emits the load of prepared-statement parameter idx from the
	// query's parameter segment. Required only when the plan contains
	// Param nodes.
	Param func(idx int, t Type) Val

	// Dict returns the order-preserving dictionary of input column idx, or
	// nil when the column is not dictionary-encoded in the current context
	// (optional: nil Dict disables every dictionary rewrite).
	Dict func(idx int) DictRef
	// CodeCol loads the dictionary code of input column idx for the
	// current tuple as an i64-widened uint32. Required whenever Dict can
	// return non-nil; only called for such columns.
	CodeCol func(idx int) Val
	// OnDictRewrite, when set, is invoked once per string predicate
	// rewritten to dictionary codes. hit reports whether any literal
	// occurred in the dictionary (a miss folds to a constant).
	OnDictRewrite func(hit bool)
}

// dictOf returns the dictionary and column index when e is a direct
// reference to a dictionary-encoded string column, else (nil, 0).
func (cg *CG) dictOf(e Expr) (DictRef, int) {
	if cg.Dict == nil || cg.CodeCol == nil {
		return nil, 0
	}
	c, ok := e.(*ColRef)
	if !ok || c.T.Kind != KString {
		return nil, 0
	}
	if d := cg.Dict(c.Idx); d != nil {
		return d, c.Idx
	}
	return nil, 0
}

func (cg *CG) onDictRewrite(hit bool) {
	if cg.OnDictRewrite != nil {
		cg.OnDictRewrite(hit)
	}
}

// Trap returns a fresh overflow-trap block: it calls the trap extern,
// which unwinds, terminated by an unreachable void return to satisfy the
// verifier. Each overflow check gets its own block on purpose: a single
// shared trap block would have thousands of predecessors in machine-
// generated queries, which degrades the iterative dominator construction
// to quadratic time and would break the linear-time translation guarantee
// (§IV-C/§V-E).
func (cg *CG) Trap() *ir.Block {
	save := cg.B.B
	tb := cg.B.NewBlock()
	cg.B.SetBlock(tb)
	cg.B.Call("trap_overflow", ir.Void)
	cg.B.RetVoid()
	cg.B.SetBlock(save)
	return tb
}

// Checked emits the overflow-checked LLVM pattern the paper's §IV-F fusion
// targets: ovf-op, extractvalue 0/1, conditional branch to the trap block.
// The builder continues in the no-overflow continuation.
func (cg *CG) Checked(op ir.Op, l, r *ir.Value) *ir.Value {
	b := cg.B
	var pair *ir.Value
	switch op {
	case ir.OpSAddOvf:
		pair = b.SAddOvf(l, r)
	case ir.OpSSubOvf:
		pair = b.SSubOvf(l, r)
	case ir.OpSMulOvf:
		pair = b.SMulOvf(l, r)
	default:
		panic("expr: bad checked op")
	}
	v := b.ExtractValue(pair, 0)
	f := b.ExtractValue(pair, 1)
	cont := b.NewBlock()
	b.CondBr(f, cg.Trap(), cont)
	b.SetBlock(cont)
	return v
}

// scaleOf returns the decimal scale of a type (0 for ints).
func scaleOf(t Type) int {
	if t.Kind == KDecimal {
		return t.Scale
	}
	return 0
}

// rescaleIR multiplies v by 10^diff with an overflow check (diff > 0) or
// divides (diff < 0).
func (cg *CG) rescaleIR(v *ir.Value, diff int) *ir.Value {
	if diff == 0 {
		return v
	}
	if diff > 0 {
		return cg.Checked(ir.OpSMulOvf, v, cg.B.ConstI64(pow10(diff)))
	}
	return cg.B.SDiv(v, cg.B.ConstI64(pow10(-diff)))
}

// toFloatIR converts a numeric value to f64.
func (cg *CG) toFloatIR(v Val, t Type) *ir.Value {
	if t.Kind == KFloat {
		return v.X
	}
	f := cg.B.SIToFP(v.X)
	if s := scaleOf(t); s > 0 {
		f = cg.B.FDiv(f, cg.B.ConstF64(float64(pow10(s))))
	}
	return f
}

// asI1 converts a boolean value (i1 or widened) to i1.
func (cg *CG) asI1(v *ir.Value) *ir.Value {
	if v.Type == ir.I1 {
		return v
	}
	return cg.B.ICmp(ir.Ne, v, cg.B.ConstI64(0))
}

// Gen compiles e and returns its value.
func (cg *CG) Gen(e Expr) Val {
	b := cg.B
	switch x := e.(type) {
	case *ColRef:
		return cg.Col(x.Idx)
	case *Const:
		switch x.T.Kind {
		case KFloat:
			return Val{X: b.ConstF64(x.F)}
		case KString:
			addr, n := cg.StrLit(x.S)
			return Val{X: b.ConstI64(addr), Len: b.ConstI64(n)}
		case KBool:
			return Val{X: b.F.Const(ir.I1, uint64(x.I))}
		default:
			return Val{X: b.ConstI64(x.I)}
		}
	case *Param:
		if cg.Param == nil {
			panic("expr: parameter outside a parameterized query")
		}
		return cg.Param(x.Idx, x.T)
	case *Arith:
		return cg.genArith(x)
	case *Cmp:
		return Val{X: cg.genCmp(x)}
	case *Logic:
		res := cg.asI1(cg.Gen(x.Args[0]).X)
		for _, a := range x.Args[1:] {
			v := cg.asI1(cg.Gen(a).X)
			if x.IsAnd {
				res = b.And(res, v)
			} else {
				res = b.Or(res, v)
			}
		}
		return Val{X: res}
	case *NotExpr:
		return Val{X: b.Xor(cg.asI1(cg.Gen(x.Arg).X), b.F.Const(ir.I1, 1))}
	case *LikeExpr:
		if v, ok := cg.genDictLike(x); ok {
			return Val{X: v}
		}
		arg := cg.Gen(x.Arg)
		pid := cg.Pattern(x.Pattern)
		r := b.Call("str_like", ir.I64, b.ConstI64(int64(pid)), arg.X, arg.Len)
		c := b.ICmp(ir.Ne, r, b.ConstI64(0))
		if x.Negate {
			c = b.Xor(c, b.F.Const(ir.I1, 1))
		}
		return Val{X: c}
	case *InList:
		if v, ok := cg.genDictIn(x); ok {
			return Val{X: v}
		}
		arg := cg.Gen(x.Arg)
		isStr := x.Arg.Type().Kind == KString
		var res *ir.Value
		for _, c := range x.List {
			var hit *ir.Value
			if isStr {
				addr, n := cg.StrLit(c.S)
				r := b.Call("str_eq", ir.I64, arg.X, arg.Len, b.ConstI64(addr), b.ConstI64(n))
				hit = b.ICmp(ir.Ne, r, b.ConstI64(0))
			} else {
				hit = b.ICmp(ir.Eq, arg.X, b.ConstI64(c.I))
			}
			if res == nil {
				res = hit
			} else {
				res = b.Or(res, hit)
			}
		}
		return Val{X: res}
	case *CaseExpr:
		return cg.genCase(x)
	case *YearExpr:
		arg := cg.Gen(x.Arg)
		return Val{X: b.Call("date_year", ir.I64, arg.X)}
	case *SubstrExpr:
		arg := cg.Gen(x.Arg)
		addr := b.Add(arg.X, b.ConstI64(int64(x.From-1)))
		return Val{X: addr, Len: b.ConstI64(int64(x.Len))}
	case *CastExpr:
		arg := cg.Gen(x.Arg)
		from := x.Arg.Type()
		switch x.T.Kind {
		case KFloat:
			return Val{X: cg.toFloatIR(arg, from)}
		case KDecimal:
			return Val{X: cg.rescaleIR(arg.X, x.T.Scale-scaleOf(from))}
		}
		panic("expr: unsupported cast to " + x.T.String())
	}
	panic(fmt.Sprintf("expr: cannot compile %T", e))
}

func (cg *CG) genArith(x *Arith) Val {
	b := cg.B
	l, r := cg.Gen(x.L), cg.Gen(x.R)
	lt, rtt := x.L.Type(), x.R.Type()
	if x.T.Kind == KFloat {
		lf, rf := cg.toFloatIR(l, lt), cg.toFloatIR(r, rtt)
		switch x.Op {
		case OpAdd:
			return Val{X: b.FAdd(lf, rf)}
		case OpSub:
			return Val{X: b.FSub(lf, rf)}
		case OpMul:
			return Val{X: b.FMul(lf, rf)}
		default:
			return Val{X: b.FDiv(lf, rf)}
		}
	}
	switch x.Op {
	case OpAdd, OpSub:
		ls, rs := scaleOf(lt), scaleOf(rtt)
		s := max(ls, rs)
		lv := cg.rescaleIR(l.X, s-ls)
		rv := cg.rescaleIR(r.X, s-rs)
		op := ir.OpSAddOvf
		if x.Op == OpSub {
			op = ir.OpSSubOvf
		}
		return Val{X: cg.Checked(op, lv, rv)}
	case OpMul:
		return Val{X: cg.Checked(ir.OpSMulOvf, l.X, r.X)}
	default: // OpDiv on integers/decimals: the VM traps on zero natively.
		return Val{X: b.SDiv(l.X, r.X)}
	}
}

var cmpPreds = map[CmpOp]ir.Pred{
	CmpEq: ir.Eq, CmpNe: ir.Ne, CmpLt: ir.SLt, CmpLe: ir.SLe,
	CmpGt: ir.SGt, CmpGe: ir.SGe,
}

// flipCmp mirrors a comparison so the column lands on the left:
// lit op col ⇔ col flipCmp(op) lit.
func flipCmp(op CmpOp) CmpOp {
	switch op {
	case CmpLt:
		return CmpGt
	case CmpLe:
		return CmpGe
	case CmpGt:
		return CmpLt
	case CmpGe:
		return CmpLe
	}
	return op
}

func (cg *CG) genCmp(x *Cmp) *ir.Value {
	b := cg.B
	lt, rtt := x.L.Type(), x.R.Type()
	if lt.Kind == KString {
		if v, ok := cg.genDictCmp(x); ok {
			return v
		}
		l, r := cg.Gen(x.L), cg.Gen(x.R)
		if x.Op == CmpEq || x.Op == CmpNe {
			res := b.Call("str_eq", ir.I64, l.X, l.Len, r.X, r.Len)
			c := b.ICmp(ir.Ne, res, b.ConstI64(0))
			if x.Op == CmpNe {
				c = b.Xor(c, b.F.Const(ir.I1, 1))
			}
			return c
		}
		res := b.Call("str_cmp", ir.I64, l.X, l.Len, r.X, r.Len)
		return b.ICmp(cmpPreds[x.Op], res, b.ConstI64(0))
	}
	l, r := cg.Gen(x.L), cg.Gen(x.R)
	if lt.Kind == KFloat || rtt.Kind == KFloat {
		return b.FCmp(cmpPreds[x.Op], cg.toFloatIR(l, lt), cg.toFloatIR(r, rtt))
	}
	ls, rs := scaleOf(lt), scaleOf(rtt)
	s := max(ls, rs)
	return b.ICmp(cmpPreds[x.Op], cg.rescaleIR(l.X, s-ls), cg.rescaleIR(r.X, s-rs))
}

// genDictCmp rewrites a string comparison between a dictionary-encoded
// column and a literal into an integer comparison on dictionary codes.
// The literal resolves at compile time: equality to its exact code (an
// absent literal folds to constant false/true), ordering to the
// half-open code range below/above its lower bound — valid whether or
// not the literal itself occurs, because codes preserve the value order.
// Reports false when the rewrite does not apply.
func (cg *CG) genDictCmp(x *Cmp) (*ir.Value, bool) {
	op := x.Op
	col, lit := x.L, x.R
	if _, isConst := col.(*Const); isConst {
		col, lit = x.R, x.L
		op = flipCmp(op)
	}
	d, idx := cg.dictOf(col)
	c, isConst := lit.(*Const)
	if d == nil || !isConst {
		return nil, false
	}
	b := cg.B
	switch op {
	case CmpEq, CmpNe:
		code, found := d.Code(c.S)
		cg.onDictRewrite(found)
		if !found {
			return b.ConstI1(op == CmpNe), true
		}
		pred := ir.Eq
		if op == CmpNe {
			pred = ir.Ne
		}
		return b.ICmp(pred, cg.CodeCol(idx).X, b.ConstI64(code)), true
	default:
		lb := d.LowerBound(c.S)
		ub := lb
		if _, found := d.Code(c.S); found {
			ub++
		}
		cg.onDictRewrite(true)
		cv := cg.CodeCol(idx).X
		switch op {
		case CmpLt:
			return b.ICmp(ir.SLt, cv, b.ConstI64(lb)), true
		case CmpLe:
			return b.ICmp(ir.SLt, cv, b.ConstI64(ub)), true
		case CmpGt:
			return b.ICmp(ir.SGe, cv, b.ConstI64(ub)), true
		default: // CmpGe
			return b.ICmp(ir.SGe, cv, b.ConstI64(lb)), true
		}
	}
}

// genDictLike compiles LIKE over a low-cardinality dictionary column by
// matching the pattern against every dictionary value at compile time and
// testing the tuple's code against the resulting bitmap. An empty (or
// full) match set folds to a constant. Reports false when the rewrite
// does not apply.
func (cg *CG) genDictLike(x *LikeExpr) (*ir.Value, bool) {
	d, idx := cg.dictOf(x.Arg)
	if d == nil || d.Card() > dictBitmapMaxCard {
		return nil, false
	}
	bits := make([]byte, (d.Card()+7)/8)
	n := 0
	for i := 0; i < d.Card(); i++ {
		if x.Compiled.Match([]byte(d.Value(i))) {
			bits[i>>3] |= 1 << (i & 7)
			n++
		}
	}
	cg.onDictRewrite(n > 0)
	if n == 0 {
		return cg.B.ConstI1(x.Negate), true
	}
	if n == d.Card() {
		return cg.B.ConstI1(!x.Negate), true
	}
	return cg.codeBitmapTest(idx, bits, x.Negate), true
}

// genDictIn compiles string IN over a dictionary column: list literals
// resolve to codes at compile time (absent ones drop out; an empty
// survivor set folds to constant false). Short survivor lists become an
// integer equality chain; longer ones a code bitmap. Reports false when
// the rewrite does not apply.
func (cg *CG) genDictIn(x *InList) (*ir.Value, bool) {
	if x.Arg.Type().Kind != KString {
		return nil, false
	}
	d, idx := cg.dictOf(x.Arg)
	if d == nil {
		return nil, false
	}
	var codes []int64
	for _, c := range x.List {
		if code, ok := d.Code(c.S); ok {
			codes = append(codes, code)
		}
	}
	cg.onDictRewrite(len(codes) > 0)
	b := cg.B
	if len(codes) == 0 {
		return b.ConstI1(false), true
	}
	if len(codes) > 8 && d.Card() <= dictBitmapMaxCard {
		bits := make([]byte, (d.Card()+7)/8)
		for _, code := range codes {
			bits[code>>3] |= 1 << (code & 7)
		}
		return cg.codeBitmapTest(idx, bits, false), true
	}
	cv := cg.CodeCol(idx).X
	var res *ir.Value
	for _, code := range codes {
		hit := b.ICmp(ir.Eq, cv, b.ConstI64(code))
		if res == nil {
			res = hit
		} else {
			res = b.Or(res, hit)
		}
	}
	return res, true
}

// codeBitmapTest interns the per-query code bitmap in the literal segment
// (so it participates in the plan fingerprint) and emits the per-tuple
// membership test: load the byte at bitmap+(code>>3), shift by code&7,
// test bit 0.
func (cg *CG) codeBitmapTest(idx int, bits []byte, negate bool) *ir.Value {
	b := cg.B
	addr, _ := cg.StrLit(string(bits))
	code := cg.CodeCol(idx).X
	byt := b.ZExt(b.Load(ir.I8, b.GEP(b.ConstI64(addr), b.LShr(code, b.ConstI64(3)), 1, 0)), ir.I64)
	bit := b.And(b.LShr(byt, b.And(code, b.ConstI64(7))), b.ConstI64(1))
	res := b.ICmp(ir.Ne, bit, b.ConstI64(0))
	if negate {
		res = b.Xor(res, b.ConstI1(true))
	}
	return res
}

// genCase lowers CASE into a block chain with a φ at the join.
func (cg *CG) genCase(x *CaseExpr) Val {
	if x.T.Kind == KString {
		panic("expr: string-valued CASE not supported")
	}
	b := cg.B
	join := b.NewBlock()
	irType := ir.I64
	if x.T.Kind == KFloat {
		irType = ir.F64
	} else if x.T.Kind == KBool {
		irType = ir.I1
	}
	type incoming struct {
		v   *ir.Value
		blk *ir.Block
	}
	var ins []incoming
	for _, w := range x.Whens {
		cond := cg.asI1(cg.Gen(w.Cond).X)
		thenB := b.NewBlock()
		nextB := b.NewBlock()
		b.CondBr(cond, thenB, nextB)
		b.SetBlock(thenB)
		tv := cg.Gen(w.Then).X
		ins = append(ins, incoming{tv, b.B}) // Gen may have moved blocks
		b.Br(join)
		b.SetBlock(nextB)
	}
	ev := cg.Gen(x.Else).X
	ins = append(ins, incoming{ev, b.B})
	b.Br(join)
	b.SetBlock(join)
	phi := b.Phi(irType)
	for _, in := range ins {
		ir.AddIncoming(phi, in.v, in.blk)
	}
	return Val{X: phi}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
