package expr

import (
	"fmt"
	"math"

	"aqe/internal/rt"
)

// Datum is an interpreted scalar value: I carries int/decimal/date/bool/
// char values, F floats, S strings. The interpreted evaluator is used by
// the Volcano-style and column-at-a-time baseline engines.
type Datum struct {
	I int64
	F float64
	S string
}

// Bool returns the boolean view of a datum.
func (d Datum) Bool() bool { return d.I != 0 }

func pow10(n int) int64 {
	p := int64(1)
	for i := 0; i < n; i++ {
		p *= 10
	}
	return p
}

func checkedAdd(x, y int64) int64 {
	r := x + y
	if (x^r)&(y^r) < 0 {
		rt.Throw(rt.TrapOverflow)
	}
	return r
}

func checkedSub(x, y int64) int64 {
	r := x - y
	if (x^y)&(x^r) < 0 {
		rt.Throw(rt.TrapOverflow)
	}
	return r
}

func checkedMul(x, y int64) int64 {
	r := x * y
	if x != 0 && ((x == -1 && y == math.MinInt64) || r/x != y) {
		rt.Throw(rt.TrapOverflow)
	}
	return r
}

// toF converts a numeric datum to float.
func toF(d Datum, t Type) float64 {
	switch t.Kind {
	case KFloat:
		return d.F
	case KDecimal:
		return float64(d.I) / float64(pow10(t.Scale))
	default:
		return float64(d.I)
	}
}

// Eval evaluates e against a row. It traps (panics with *rt.Trap) on
// overflow and division by zero, matching generated-code semantics.
func Eval(e Expr, row []Datum) Datum {
	switch x := e.(type) {
	case *ColRef:
		return row[x.Idx]
	case *Const:
		return Datum{I: x.I, F: x.F, S: x.S}
	case *Param:
		// The interpreter never sees parameters: binders substitute the
		// bound value before any interpreted path (sort keys, baselines).
		panic(fmt.Sprintf("expr: unbound parameter $%d", x.Idx+1))
	case *Arith:
		return evalArith(x, row)
	case *Cmp:
		return evalCmp(x, row)
	case *Logic:
		if x.IsAnd {
			for _, a := range x.Args {
				if !Eval(a, row).Bool() {
					return Datum{I: 0}
				}
			}
			return Datum{I: 1}
		}
		for _, a := range x.Args {
			if Eval(a, row).Bool() {
				return Datum{I: 1}
			}
		}
		return Datum{I: 0}
	case *NotExpr:
		if Eval(x.Arg, row).Bool() {
			return Datum{I: 0}
		}
		return Datum{I: 1}
	case *LikeExpr:
		m := x.Compiled.Match([]byte(Eval(x.Arg, row).S))
		if x.Negate {
			m = !m
		}
		if m {
			return Datum{I: 1}
		}
		return Datum{I: 0}
	case *InList:
		arg := Eval(x.Arg, row)
		isStr := x.Arg.Type().Kind == KString
		for _, c := range x.List {
			if isStr {
				if arg.S == c.S {
					return Datum{I: 1}
				}
			} else if arg.I == c.I {
				return Datum{I: 1}
			}
		}
		return Datum{I: 0}
	case *CaseExpr:
		for _, w := range x.Whens {
			if Eval(w.Cond, row).Bool() {
				return Eval(w.Then, row)
			}
		}
		return Eval(x.Else, row)
	case *YearExpr:
		return Datum{I: rt.YearOfDays(Eval(x.Arg, row).I)}
	case *SubstrExpr:
		s := Eval(x.Arg, row).S
		from := x.From - 1
		end := from + x.Len
		if from > len(s) {
			from = len(s)
		}
		if end > len(s) {
			end = len(s)
		}
		return Datum{S: s[from:end]}
	case *CastExpr:
		return evalCast(x, row)
	}
	panic(fmt.Sprintf("expr: cannot evaluate %T", e))
}

func evalCast(x *CastExpr, row []Datum) Datum {
	d := Eval(x.Arg, row)
	from := x.Arg.Type()
	switch x.T.Kind {
	case KFloat:
		return Datum{F: toF(d, from)}
	case KDecimal:
		fromScale := 0
		if from.Kind == KDecimal {
			fromScale = from.Scale
		}
		diff := x.T.Scale - fromScale
		switch {
		case diff > 0:
			return Datum{I: checkedMul(d.I, pow10(diff))}
		case diff < 0:
			return Datum{I: d.I / pow10(-diff)}
		default:
			return d
		}
	}
	panic("expr: unsupported cast to " + x.T.String())
}

// unifyScales returns both operands rescaled to a common decimal scale.
func unifyScales(l, r Datum, lt, rtt Type) (int64, int64) {
	ls, rs := 0, 0
	if lt.Kind == KDecimal {
		ls = lt.Scale
	}
	if rtt.Kind == KDecimal {
		rs = rtt.Scale
	}
	if ls == rs {
		return l.I, r.I
	}
	if ls < rs {
		return checkedMul(l.I, pow10(rs-ls)), r.I
	}
	return l.I, checkedMul(r.I, pow10(ls-rs))
}

func evalArith(x *Arith, row []Datum) Datum {
	l, r := Eval(x.L, row), Eval(x.R, row)
	lt, rtt := x.L.Type(), x.R.Type()
	if x.T.Kind == KFloat {
		lf, rf := toF(l, lt), toF(r, rtt)
		switch x.Op {
		case OpAdd:
			return Datum{F: lf + rf}
		case OpSub:
			return Datum{F: lf - rf}
		case OpMul:
			return Datum{F: lf * rf}
		default:
			return Datum{F: lf / rf}
		}
	}
	switch x.Op {
	case OpAdd:
		li, ri := unifyScales(l, r, lt, rtt)
		return Datum{I: checkedAdd(li, ri)}
	case OpSub:
		li, ri := unifyScales(l, r, lt, rtt)
		return Datum{I: checkedSub(li, ri)}
	case OpMul:
		return Datum{I: checkedMul(l.I, r.I)}
	default: // OpDiv: int/int or decimal/int
		if r.I == 0 {
			rt.Throw(rt.TrapDivZero)
		}
		if l.I == math.MinInt64 && r.I == -1 {
			rt.Throw(rt.TrapOverflow)
		}
		return Datum{I: l.I / r.I}
	}
}

func evalCmp(x *Cmp, row []Datum) Datum {
	l, r := Eval(x.L, row), Eval(x.R, row)
	lt, rtt := x.L.Type(), x.R.Type()
	var cmp int
	switch {
	case lt.Kind == KString:
		switch {
		case l.S == r.S:
			cmp = 0
		case l.S < r.S:
			cmp = -1
		default:
			cmp = 1
		}
	case lt.Kind == KFloat || rtt.Kind == KFloat:
		lf, rf := toF(l, lt), toF(r, rtt)
		switch {
		case lf == rf:
			cmp = 0
		case lf < rf:
			cmp = -1
		default:
			cmp = 1
		}
	default:
		li, ri := unifyScales(l, r, lt, rtt)
		switch {
		case li == ri:
			cmp = 0
		case li < ri:
			cmp = -1
		default:
			cmp = 1
		}
	}
	var res bool
	switch x.Op {
	case CmpEq:
		res = cmp == 0
	case CmpNe:
		res = cmp != 0
	case CmpLt:
		res = cmp < 0
	case CmpLe:
		res = cmp <= 0
	case CmpGt:
		res = cmp > 0
	default:
		res = cmp >= 0
	}
	if res {
		return Datum{I: 1}
	}
	return Datum{I: 0}
}
