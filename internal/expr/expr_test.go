package expr

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"aqe/internal/ir"
	"aqe/internal/jit"
	"aqe/internal/rt"
	"aqe/internal/vm"
)

// The test schema: one column of each kind.
var testSchema = []Type{TInt, TDec(2), TDate, TFloat, TChar, TString}

const colStride = 16 // [value u64][len u64] per column in the test row

// compileExpr builds a function f(rowAddr) that evaluates e against the
// row laid out at rowAddr and returns its value (bools widened, floats as
// bits).
func compileExpr(t *testing.T, e Expr, lits *literals) *ir.Function {
	t.Helper()
	m := ir.NewModule("exprtest")
	f := m.NewFunc("eval", ir.I64)
	b := ir.NewBuilder(f)
	cg := &CG{
		B: b,
		Col: func(idx int) Val {
			base := f.Params[0]
			switch testSchema[idx].Kind {
			case KFloat:
				return Val{X: b.Load(ir.F64, b.GEP(base, nil, 0, int64(idx*colStride)))}
			case KString:
				addr := b.Load(ir.I64, b.GEP(base, nil, 0, int64(idx*colStride)))
				n := b.Load(ir.I64, b.GEP(base, nil, 0, int64(idx*colStride+8)))
				return Val{X: addr, Len: n}
			default:
				return Val{X: b.Load(ir.I64, b.GEP(base, nil, 0, int64(idx*colStride)))}
			}
		},
		Pattern: lits.pattern,
		StrLit:  lits.strLit,
	}
	v := cg.Gen(e)
	res := v.X
	if res.Type == ir.I1 {
		res = b.ZExt(res, ir.I64)
	}
	b.Ret(res)
	if err := f.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, f.String())
	}
	return f
}

// literals interns string literals and LIKE patterns the way the engine
// does: into a pre-registered segment and the query state.
type literals struct {
	mem  *rt.Memory
	base rt.Addr
	buf  []byte
	q    *rt.QueryState
}

func newLiterals(mem *rt.Memory, q *rt.QueryState) *literals {
	buf := make([]byte, 1<<16)
	return &literals{mem: mem, base: mem.AddSegment(buf), buf: buf, q: q}
}

var litCursor int

func (l *literals) strLit(s string) (int64, int64) {
	off := litCursor
	copy(l.buf[off:], s)
	litCursor += len(s)
	return int64(l.base) + int64(off), int64(len(s))
}

func (l *literals) pattern(p string) int { return l.q.AddPattern(p) }

// row builds the in-memory row and the matching []Datum.
func makeRow(mem *rt.Memory, rng *rand.Rand) (rt.Addr, []Datum) {
	strs := []string{"forest green", "PROMO BRUSHED", "ASIA", "x", "", "metallic blue"}
	s := strs[rng.Intn(len(strs))]
	row := []Datum{
		{I: int64(rng.Intn(2001) - 1000)},
		{I: int64(rng.Intn(20001) - 10000)},
		{I: int64(rng.Intn(20000))},
		{F: float64(rng.Intn(1000)) / 8},
		{I: int64('A' + rng.Intn(26))},
		{S: s},
	}
	buf := make([]byte, len(row)*colStride+len(s))
	base := mem.AddSegment(buf)
	for i, d := range row {
		switch testSchema[i].Kind {
		case KFloat:
			binary.LittleEndian.PutUint64(buf[i*colStride:], math.Float64bits(d.F))
		case KString:
			sOff := len(row) * colStride
			copy(buf[sOff:], d.S)
			binary.LittleEndian.PutUint64(buf[i*colStride:], base+uint64(sOff))
			binary.LittleEndian.PutUint64(buf[i*colStride+8:], uint64(len(d.S)))
		default:
			binary.LittleEndian.PutUint64(buf[i*colStride:], uint64(d.I))
		}
	}
	return base, row
}

// randBool / randNum generate random well-typed expressions.
func randBool(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		return Bool(rng.Intn(2) == 0)
	}
	switch rng.Intn(7) {
	case 0:
		ops := []CmpOp{CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe}
		return NewCmp(ops[rng.Intn(len(ops))], randNum(rng, depth-1), randNum(rng, depth-1))
	case 1:
		return And(randBool(rng, depth-1), randBool(rng, depth-1))
	case 2:
		return Or(randBool(rng, depth-1), randBool(rng, depth-1))
	case 3:
		return Not(randBool(rng, depth-1))
	case 4:
		pats := []string{"%green%", "PROMO%", "%BRUSHED", "x", "%a_i%", "%"}
		return Like(Col(5, TString), pats[rng.Intn(len(pats))])
	case 5:
		return In(Col(0, TInt), Int(3), Int(-7), Int(100))
	default:
		return In(Col(5, TString), Str("ASIA"), Str("forest green"))
	}
}

func randNum(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch rng.Intn(5) {
		case 0:
			return Col(0, TInt)
		case 1:
			return Col(1, TDec(2))
		case 2:
			return Col(3, TFloat)
		case 3:
			return Int(int64(rng.Intn(199) - 99))
		default:
			return Dec(int64(rng.Intn(999)-499), 2)
		}
	}
	switch rng.Intn(7) {
	case 0:
		return Add(randNum(rng, depth-1), randNum(rng, depth-1))
	case 1:
		return Sub(randNum(rng, depth-1), randNum(rng, depth-1))
	case 2:
		return Mul(randNum(rng, depth-1), randNum(rng, depth-1))
	case 3:
		return Div(randNum(rng, depth-1), Int(int64(rng.Intn(20)+1)))
	case 4:
		return Year(Col(2, TDate))
	case 5:
		return Case([]When{{Cond: randBool(rng, depth-1), Then: ToFloat(randNum(rng, depth-1))}},
			ToFloat(randNum(rng, depth-1)))
	default:
		return ToFloat(randNum(rng, depth-1))
	}
}

type outcome struct {
	val     uint64
	trapped bool
}

func evalOutcome(e Expr, row []Datum) outcome {
	var o outcome
	err := rt.CatchTrap(func() {
		d := Eval(e, row)
		if e.Type().Kind == KFloat {
			o.val = math.Float64bits(d.F)
		} else {
			o.val = uint64(d.I)
		}
	})
	o.trapped = err != nil
	return o
}

func runOutcome(t *testing.T, f *ir.Function, ctx *rt.Ctx, rowAddr rt.Addr, opt bool) outcome {
	t.Helper()
	var o outcome
	err := rt.CatchTrap(func() {
		if opt {
			c, cerr := jit.Compile(f.Clone(), jit.Optimized, nil)
			if cerr != nil {
				t.Fatalf("jit: %v", cerr)
			}
			o.val = c.Run(ctx, []uint64{rowAddr})
			return
		}
		p, terr := vm.Translate(f, vm.Options{})
		if terr != nil {
			t.Fatalf("translate: %v", terr)
		}
		o.val = p.Run(ctx, []uint64{rowAddr})
	})
	if err != nil {
		o.trapped = true
		ctx.ResetRegs()
	}
	return o
}

func TestExprDifferential(t *testing.T) {
	reg := rt.NewRegistry()
	rt.RegisterBuiltins(reg)
	for seed := int64(0); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		litCursor = 0
		mem := rt.NewMemory()
		q := rt.NewQueryState(mem, 1, 16, 16)
		lits := newLiterals(mem, q)
		var e Expr
		if seed%3 == 0 {
			e = randNum(rng, 3)
		} else {
			e = randBool(rng, 3)
		}
		f := compileExpr(t, e, lits)
		fns, err := reg.Bind(externNames(f.Module))
		if err != nil {
			t.Fatal(err)
		}
		rowAddr, row := makeRow(mem, rng)
		ctx := &rt.Ctx{Mem: mem, Funcs: fns, Query: q}

		want := evalOutcome(e, row)
		gotVM := runOutcome(t, f, ctx, rowAddr, false)
		gotJIT := runOutcome(t, f, ctx, rowAddr, true)
		if gotVM != want {
			t.Errorf("seed %d: VM %+v, Eval %+v for %s", seed, gotVM, want, String(e))
		}
		if gotJIT != want {
			t.Errorf("seed %d: JIT %+v, Eval %+v for %s", seed, gotJIT, want, String(e))
		}
	}
}

func externNames(m *ir.Module) []string {
	names := make([]string, len(m.Externs))
	for i, e := range m.Externs {
		names[i] = e.Name
	}
	return names
}

func TestEvalDecimalRules(t *testing.T) {
	// 12.50 * (1 - 0.06) = 11.75 at scale 4 (the Q1 disc_price shape).
	price := Dec(1250, 2)
	disc := Dec(6, 2)
	e := Mul(price, Sub(Dec(100, 2), disc))
	if e.Type() != TDec(4) {
		t.Fatalf("type = %s, want decimal(4)", e.Type())
	}
	d := Eval(e, nil)
	if d.I != 1250*94 {
		t.Errorf("value = %d, want %d", d.I, 1250*94)
	}
}

func TestEvalDecDivIsFloat(t *testing.T) {
	e := Div(Dec(100, 2), Dec(300, 2))
	if e.Type().Kind != KFloat {
		t.Fatalf("dec/dec should be float, got %s", e.Type())
	}
	d := Eval(e, nil)
	if math.Abs(d.F-1.0/3) > 1e-12 {
		t.Errorf("value = %v", d.F)
	}
}

func TestEvalMixedScaleCompare(t *testing.T) {
	// 1.5 (scale 1) > 1.25 (scale 2)
	e := Gt(Dec(15, 1), Dec(125, 2))
	if !Eval(e, nil).Bool() {
		t.Error("1.5 > 1.25 failed")
	}
}

func TestEvalSubstrAndIn(t *testing.T) {
	row := []Datum{{}, {}, {}, {}, {}, {S: "13-702-5435"}}
	e := In(Substr(Col(5, TString), 1, 2), Str("13"), Str("31"))
	if !Eval(e, row).Bool() {
		t.Error("substr-in failed")
	}
	e2 := In(Substr(Col(5, TString), 1, 2), Str("14"))
	if Eval(e2, row).Bool() {
		t.Error("substr-in matched wrongly")
	}
}

func TestEvalOverflowTraps(t *testing.T) {
	e := Mul(Int(1<<40), Int(1<<40))
	err := rt.CatchTrap(func() { Eval(e, nil) })
	if trap, ok := err.(*rt.Trap); !ok || trap.Code != rt.TrapOverflow {
		t.Errorf("expected overflow, got %v", err)
	}
}

func TestTypePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("add string", func() { Add(Str("a"), Int(1)) })
	mustPanic("and non-bool", func() { And(Int(1), Bool(true)) })
	mustPanic("like non-string", func() { Like(Int(1), "%x%") })
	mustPanic("string vs int", func() { Lt(Str("a"), Int(1)) })
	mustPanic("case mismatched arms", func() {
		Case([]When{{Cond: Bool(true), Then: Int(1)}}, Str("x"))
	})
	mustPanic("in mixed", func() { In(Int(1), Str("x")) })
}
