// Package sql is a small SQL front end for the engine: a lexer, a
// recursive-descent parser and a planner covering the SELECT subset the
// examples and the CLI need — multi-table FROM with equi-join extraction,
// WHERE, GROUP BY with the standard aggregates, ORDER BY and LIMIT. It
// provides the "Parser"/"Semantic Analysis"/"Planning" stages of the
// paper's Fig. 1 whose (tiny) cost Table I reports.
package sql

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tkEOF tokKind = iota
	tkIdent
	tkNumber
	tkString
	tkOp      // punctuation and operators
	tkKeyword // normalized upper-case keyword
	tkParam   // $n placeholder; text is the decimal number
)

type token struct {
	kind tokKind
	text string
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "AS": true, "AND": true, "OR": true,
	"NOT": true, "LIKE": true, "IN": true, "BETWEEN": true, "CASE": true,
	"WHEN": true, "THEN": true, "ELSE": true, "END": true, "ASC": true,
	"DESC": true, "COUNT": true, "SUM": true, "AVG": true, "MIN": true,
	"MAX": true, "DATE": true, "YEAR": true, "SUBSTR": true, "HAVING": true,
	"DISTINCT": true, "INTERVAL": true, "PREPARE": true, "EXECUTE": true,
	"DEALLOCATE": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c >= '0' && c <= '9':
			l.number()
		case c == '\'':
			if err := l.str(); err != nil {
				return nil, err
			}
		case c == '$':
			if err := l.param(); err != nil {
				return nil, err
			}
		case isIdentStart(c):
			l.ident()
		default:
			if err := l.op(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, token{kind: tkEOF, pos: l.pos})
	return l.toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdent(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (l *lexer) number() {
	start := l.pos
	for l.pos < len(l.src) && ((l.src[l.pos] >= '0' && l.src[l.pos] <= '9') || l.src[l.pos] == '.') {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tkNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) str() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		if l.src[l.pos] == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tkString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(l.src[l.pos])
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string at %d", start)
}

func (l *lexer) param() error {
	start := l.pos
	l.pos++ // '$'
	d0 := l.pos
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	if l.pos == d0 {
		return fmt.Errorf("sql: expected parameter number after $ at %d", start)
	}
	l.toks = append(l.toks, token{kind: tkParam, text: l.src[d0:l.pos], pos: start})
	return nil
}

func (l *lexer) ident() {
	start := l.pos
	for l.pos < len(l.src) && isIdent(l.src[l.pos]) {
		l.pos++
	}
	text := l.src[start:l.pos]
	up := strings.ToUpper(text)
	if keywords[up] {
		l.toks = append(l.toks, token{kind: tkKeyword, text: up, pos: start})
	} else {
		l.toks = append(l.toks, token{kind: tkIdent, text: strings.ToLower(text), pos: start})
	}
}

func (l *lexer) op() error {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		if two == "!=" {
			two = "<>"
		}
		l.toks = append(l.toks, token{kind: tkOp, text: two, pos: l.pos})
		l.pos += 2
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '=', '<', '>', '+', '-', '*', '/', '.':
		l.toks = append(l.toks, token{kind: tkOp, text: string(c), pos: l.pos})
		l.pos++
		return nil
	}
	return fmt.Errorf("sql: unexpected character %q at %d", c, l.pos)
}
