package sql

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"aqe/internal/expr"
	"aqe/internal/plan"
	"aqe/internal/tpch"
	"aqe/internal/volcano"
)

var cat = tpch.Gen(0.003)

// run plans the SQL and executes it on the volcano oracle.
func run(t *testing.T, q string) ([][]expr.Datum, []plan.ColDef) {
	t.Helper()
	node, err := Plan(q, cat)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	rows, err := volcano.Run(node)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return rows, node.Schema()
}

func TestSelectFilter(t *testing.T) {
	rows, schema := run(t, `SELECT l_orderkey, l_quantity FROM lineitem
		WHERE l_quantity > 45.0 AND l_shipdate >= DATE '1995-01-01'`)
	if len(schema) != 2 {
		t.Fatalf("schema %v", schema)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r[1].I <= 4500 {
			t.Fatalf("filter leaked: %v", r[1].I)
		}
	}
}

func TestAggregation(t *testing.T) {
	rows, _ := run(t, `SELECT l_returnflag, count(*) AS n, sum(l_extendedprice) AS s,
		avg(l_discount) AS d FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag`)
	if len(rows) != 3 {
		t.Fatalf("expected 3 return flags, got %d", len(rows))
	}
	var total int64
	for _, r := range rows {
		total += r[1].I
	}
	if total != int64(cat.Table("lineitem").Rows()) {
		t.Errorf("counts sum to %d, want %d", total, cat.Table("lineitem").Rows())
	}
}

func TestJoinTwoTables(t *testing.T) {
	rows, _ := run(t, `SELECT n_name, count(*) FROM nation, region
		WHERE n_regionkey = r_regionkey AND r_name = 'ASIA'
		GROUP BY n_name ORDER BY n_name`)
	if len(rows) != 5 {
		t.Fatalf("expected 5 asian nations, got %d", len(rows))
	}
}

func TestThreeWayJoin(t *testing.T) {
	rows, _ := run(t, `SELECT c_custkey, count(*) AS orders FROM customer, orders, nation
		WHERE c_custkey = o_custkey AND c_nationkey = n_nationkey AND n_name = 'FRANCE'
		GROUP BY c_custkey ORDER BY orders DESC LIMIT 5`)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i][1].I > rows[i-1][1].I {
			t.Fatal("ORDER BY DESC violated")
		}
	}
}

func TestSQLMatchesHandPlan(t *testing.T) {
	// The SQL version of Q6 must agree with the hand-built plan.
	sqlRows, _ := run(t, `SELECT sum(l_extendedprice * l_discount) AS revenue
		FROM lineitem
		WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'
		  AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24`)
	q6 := tpch.Query(cat, 6)
	want, err := volcano.Run(q6.Stages[0].Build(nil))
	if err != nil {
		t.Fatal(err)
	}
	if sqlRows[0][0].I != want[0][0].I {
		t.Errorf("SQL Q6 revenue %d, hand plan %d", sqlRows[0][0].I, want[0][0].I)
	}
}

func TestLikeInCaseYearSubstr(t *testing.T) {
	rows, _ := run(t, `SELECT YEAR(o_orderdate) AS y,
		sum(CASE WHEN o_orderpriority IN ('1-URGENT', '2-HIGH') THEN 1 ELSE 0 END) AS hi
		FROM orders WHERE o_comment NOT LIKE '%special%requests%'
		GROUP BY YEAR(o_orderdate) ORDER BY y`)
	if len(rows) < 5 {
		t.Fatalf("expected several years, got %d", len(rows))
	}
	rows2, _ := run(t, `SELECT SUBSTR(c_phone, 1, 2) AS code, count(*)
		FROM customer GROUP BY SUBSTR(c_phone, 1, 2) ORDER BY code`)
	if len(rows2) == 0 {
		t.Fatal("no phone codes")
	}
	for _, r := range rows2 {
		if len(r[0].S) != 2 {
			t.Fatalf("bad code %q", r[0].S)
		}
	}
}

// TestFromOrderIrrelevant is the regression test for the FROM-order
// planning bug: the old planner built left-deep joins in FROM-clause
// order and failed on "customer, lineitem, orders" — customer and
// lineitem share no join edge, so it reported a cross join even though
// the predicate graph is connected through orders. The optimizer orders
// by connectivity, so every FROM permutation of this TPC-H Q3 variant
// must plan and produce identical rows.
func TestFromOrderIrrelevant(t *testing.T) {
	const tmpl = `SELECT l_orderkey, o_orderdate, o_shippriority,
		sum(l_extendedprice) AS revenue
		FROM %s
		WHERE c_mktsegment = 'BUILDING'
		  AND c_custkey = o_custkey AND l_orderkey = o_orderkey
		  AND o_orderdate < DATE '1995-03-15' AND l_shipdate > DATE '1995-03-15'
		GROUP BY l_orderkey, o_orderdate, o_shippriority
		ORDER BY revenue DESC, o_orderdate, l_orderkey LIMIT 10`
	canon := func(rows [][]expr.Datum) string {
		var sb strings.Builder
		for _, r := range rows {
			fmt.Fprintf(&sb, "%d|%d|%d|%d\n", r[0].I, r[1].I, r[2].I, r[3].I)
		}
		return sb.String()
	}
	var want string
	froms := []string{
		"customer, orders, lineitem",
		"customer, lineitem, orders", // the order the old planner rejected
		"lineitem, customer, orders",
		"orders, lineitem, customer",
	}
	for i, from := range froms {
		rows, _ := run(t, fmt.Sprintf(tmpl, from))
		if len(rows) == 0 {
			t.Fatalf("FROM %s: no rows", from)
		}
		got := canon(rows)
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("FROM %s: rows differ from first permutation:\n%s\nvs\n%s", from, got, want)
		}
	}
	// PlanOpt exposes the optimizer state for multi-table queries.
	_, prep, err := PlanOpt(fmt.Sprintf(tmpl, froms[1]), cat)
	if err != nil {
		t.Fatal(err)
	}
	if prep == nil || len(prep.JoinOrder) != 3 {
		t.Fatalf("expected a 3-relation Prepared, got %+v", prep)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT * FROM lineitem", // star projection unsupported
		"SELECT x FROM nosuchtable",
		"SELECT nosuchcol FROM lineitem",
		"SELECT l_orderkey FROM lineitem WHERE",
		"SELECT l_orderkey FROM lineitem GROUP BY",
		"SELECT count(*) FROM lineitem HAVING count(*) > 1",
		"SELECT l_orderkey FROM lineitem LIMIT abc",
		"SELECT l_orderkey, c_custkey FROM lineitem, customer", // cross join
		"SELECT l_orderkey FROM lineitem WHERE l_comment LIKE 5",
	}
	for _, q := range bad {
		if _, err := Plan(q, cat); err == nil {
			t.Errorf("expected error for %q", q)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	// l_orderkey exists once; fabricate ambiguity via two lineitem scans
	// is impossible in this subset (same table twice), so check a name
	// that does not exist instead and a valid two-table disambiguation.
	if _, err := Plan("SELECT junk FROM lineitem, orders WHERE l_orderkey = o_orderkey", cat); err == nil {
		t.Error("expected unknown column error")
	}
}

func TestCanonNondeterminism(t *testing.T) {
	// The same group-by run twice must produce identical multisets.
	a, schema := run(t, "SELECT o_custkey, count(*) FROM orders GROUP BY o_custkey")
	b, _ := run(t, "SELECT o_custkey, count(*) FROM orders GROUP BY o_custkey")
	key := func(rows [][]expr.Datum) string {
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = fmt.Sprintf("%d|%d", r[0].I, r[1].I)
		}
		sort.Strings(out)
		return strings.Join(out, "\n")
	}
	_ = schema
	if key(a) != key(b) {
		t.Error("group-by results unstable")
	}
}
