package sql

import (
	"testing"
	"unicode/utf8"
)

// FuzzParser throws arbitrary query text at the lexer, parser, and planner.
// Any input is acceptable as long as Plan either returns a plan or an error —
// it must never panic, hang, or index out of bounds. Valid plans are
// additionally re-verified to carry a non-nil schema.
func FuzzParser(f *testing.F) {
	seeds := []string{
		`SELECT l_orderkey, l_quantity FROM lineitem WHERE l_quantity > 45.0`,
		`SELECT l_returnflag, count(*) AS n, sum(l_extendedprice) AS s,
			avg(l_discount) AS d FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag`,
		`SELECT c_name, o_totalprice FROM customer, orders
			WHERE c_custkey = o_custkey AND o_totalprice > 100000`,
		`SELECT * FROM part WHERE p_name LIKE '%green%'`,
		`SELECT n_name FROM nation WHERE n_regionkey IN (1, 2, 3)`,
		`SELECT o_orderdate FROM orders WHERE o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'`,
		`SELECT count(*) FROM lineitem WHERE l_shipdate >= DATE '1995-01-01' LIMIT 10`,
		`select sum(l_extendedprice * (1 - l_discount)) from lineitem`,
		// Malformed shapes the parser must reject gracefully.
		`SELECT`,
		`SELECT FROM WHERE`,
		`SELECT ((((1`,
		`SELECT 'unterminated FROM lineitem`,
		`SELECT * FROM nosuchtable`,
		`SELECT nosuchcol FROM lineitem`,
		"SELECT \x00 FROM \xff\xfe",
		// Past crashers, kept as regression seeds: an empty DATE literal
		// reached MustParseDate, and date*string arithmetic panicked in the
		// expr type checker before Plan learned to recover it.
		`SELECT o_orderdAte FROM orders WHERE DATE''`,
		`SELECT Count(0)FROM lineitem WHERE l_shipdAte*''`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, q string) {
		node, err := Plan(q, cat)
		if err != nil {
			return // rejecting input is fine; panicking is not
		}
		if node == nil {
			t.Fatalf("Plan returned nil node and nil error for %q", q)
		}
		if len(node.Schema()) == 0 {
			t.Fatalf("accepted plan has empty schema for %q", q)
		}
		_ = utf8.ValidString(q)
	})
}
