package sql

import (
	"fmt"
	"strings"

	"aqe/internal/expr"
	"aqe/internal/opt"
	"aqe/internal/plan"
	"aqe/internal/storage"
)

// Plan parses and plans a SQL query against the catalog: it binds names,
// pushes single-table predicates into the scans, extracts equi-join
// conditions into a logical join graph whose order the cost-based
// optimizer (internal/opt) chooses, applies remaining predicates as
// residual filters, and lowers aggregation, ordering and limits.
//
// The FROM-clause order carries no semantics: earlier versions built the
// left-deep tree in FROM order and failed whenever a table had no join
// edge into the tables *listed before it*, even when the full predicate
// graph was connected. The optimizer orders by connectivity instead, so
// any FROM permutation of the same query plans (and a genuinely
// disconnected graph still errors clearly).
func Plan(query string, cat *storage.Catalog) (plan.Node, error) {
	node, _, err := PlanOpt(query, cat)
	return node, err
}

// bindFail carries a binder error out of the optimizer's Finish callback
// (which cannot return one).
type bindFail struct{ err error }

// PlanOpt is Plan, additionally returning the optimizer state of
// multi-table queries: the *opt.Prepared implements the execution
// engine's Replanner, so callers may run the plan with mid-query
// reoptimization. Single-table queries return a nil Prepared.
func PlanOpt(query string, cat *storage.Catalog) (node plan.Node, prep *opt.Prepared, err error) {
	node, prep, _, err = PlanBind(query, cat, nil)
	return node, prep, err
}

// PlanBind plans a parameterized query under the given binding values:
// every $n in the query lowers to an expr.Param node typed from args[n-1]
// (so the plan — and its fingerprint — depends only on parameter slots,
// never values), and the returned constants are the bindings after the
// binder's coercions (single-char strings against char columns, ints and
// date strings against date columns) — pass them to the engine verbatim.
// A nil args plans an unparameterized query; $n is then an error, as is
// a bound parameter the query never references.
func PlanBind(query string, cat *storage.Catalog, args []*expr.Const) (node plan.Node, prep *opt.Prepared, bound []*expr.Const, err error) {
	// The expr and plan constructors treat type violations as programming
	// errors and panic; here they are user errors (e.g. `date * string`),
	// so convert their panics into planning errors at this boundary. The
	// same boundary catches binder errors thrown out of the optimizer's
	// Finish callback.
	defer func() {
		if r := recover(); r != nil {
			if bf, ok := r.(*bindFail); ok {
				node, prep, bound, err = nil, nil, nil, bf.err
				return
			}
			msg := fmt.Sprint(r)
			if strings.HasPrefix(msg, "expr:") || strings.HasPrefix(msg, "plan:") ||
				strings.HasPrefix(msg, "opt:") {
				node, prep, bound, err = nil, nil, nil, fmt.Errorf("sql: %s", msg)
				return
			}
			panic(r)
		}
	}()
	a, err := parse(query)
	if err != nil {
		return nil, nil, nil, err
	}
	b := &binder{cat: cat}
	if args != nil {
		b.params = make([]*expr.Const, len(args))
		copy(b.params, args)
		b.paramUsed = make([]bool, len(args))
	}
	node, prep, err = b.plan(a)
	if err != nil {
		return nil, nil, nil, err
	}
	for i, used := range b.paramUsed {
		if !used {
			return nil, nil, nil, fmt.Errorf("sql: parameter $%d is not referenced", i+1)
		}
	}
	return node, prep, b.params, nil
}

type binder struct {
	cat    *storage.Catalog
	tables []*storage.Table
	// needed columns per table, discovered by the AST walk.
	needed []map[string]bool
	// schema of the joined row, set once scans are planned.
	schema []plan.ColDef
	colIdx map[string]int
	// params are the EXECUTE binding values (nil outside EXECUTE); the
	// binder coerces them in place so the caller runs the converted
	// constants. paramUsed flags every referenced index.
	params    []*expr.Const
	paramUsed []bool
	// inOrder marks ORDER BY binding, where parameters are rejected:
	// sort keys are evaluated by the interpreter, which has no parameter
	// segment.
	inOrder bool
}

func (b *binder) plan(a *ast) (plan.Node, *opt.Prepared, error) {
	for _, name := range a.from {
		t := b.cat.Table(name)
		if t == nil {
			return nil, nil, fmt.Errorf("sql: unknown table %q", name)
		}
		b.tables = append(b.tables, t)
		b.needed = append(b.needed, map[string]bool{})
	}

	// Discover referenced columns.
	var walkErr error
	walk := func(n node) {
		if n == nil || walkErr != nil {
			return
		}
		walkErr = b.collect(n)
	}
	for _, s := range a.sel {
		walk(s.arg)
	}
	walk(a.where)
	for _, g := range a.group {
		walk(g)
	}
	if walkErr != nil {
		return nil, nil, walkErr
	}
	// ORDER BY binds against the SELECT output (columns or aliases), so
	// it contributes no additional scan columns.

	// Split WHERE into conjuncts and classify them.
	conjs := conjuncts(a.where)
	scanFilters := make([][]node, len(b.tables))
	type equi struct{ lt, lc, rt int } // left table/col index, right table
	type joinCond struct {
		lt int
		lc string
		rt int
		rc string
	}
	var joins []joinCond
	var residual []node
	for _, c := range conjs {
		ts := b.tablesOf(c)
		switch len(ts) {
		case 0, 1:
			ti := 0
			if len(ts) == 1 {
				ti = ts[0]
			}
			scanFilters[ti] = append(scanFilters[ti], c)
		case 2:
			if jc, ok := b.asEquiJoin(c); ok {
				joins = append(joins, joinCond{jc[0].(int), jc[1].(string),
					jc[2].(int), jc[3].(string)})
				continue
			}
			residual = append(residual, c)
		default:
			residual = append(residual, c)
		}
	}
	// Join conditions reference columns; make sure they are scanned.
	for _, j := range joins {
		b.needed[j.lt][j.lc] = true
		b.needed[j.rt][j.rc] = true
	}

	// Build scans: each table scans its needed columns.
	scans := make([]*plan.Scan, len(b.tables))
	for i, t := range b.tables {
		var cols []string
		for _, c := range t.Cols {
			if b.needed[i][c.Name] {
				cols = append(cols, c.Name)
			}
		}
		if len(cols) == 0 {
			cols = []string{t.Cols[0].Name} // degenerate: count(*) style
		}
		scans[i] = plan.NewScan(t, cols...)
	}

	// Push single-table filters (bound against the scan's schema).
	for i, fs := range scanFilters {
		for _, f := range fs {
			e, err := b.bind(f, scans[i].Schema(), nil)
			if err != nil {
				return nil, nil, err
			}
			scans[i].Where(e)
		}
	}

	// Multi-table queries hand the scans and equi-join edges to the
	// cost-based orderer as a logical join graph; the rest of the plan
	// (residuals, aggregation, projection, ordering) is built by the
	// Finish callback so a mid-query replan can re-derive the full plan
	// over a differently-ordered join output schema.
	if len(b.tables) > 1 {
		rels := make([]opt.Relation, len(b.tables))
		for i, t := range b.tables {
			rels[i] = opt.Relation{Name: t.Name, Table: t,
				Cols: scans[i].Cols, Filter: scans[i].Filter}
		}
		edges := make([]opt.Edge, len(joins))
		for i, j := range joins {
			edges[i] = opt.Edge{L: j.lt, LCol: j.lc, R: j.rt, RCol: j.rc}
		}
		lg := &opt.Logical{
			Name:  "sql",
			Graph: &opt.Graph{Rels: rels, Edges: edges},
			Finish: func(join plan.Node) plan.Node {
				n, err := b.finish(a, join, residual)
				if err != nil {
					panic(&bindFail{err})
				}
				return n
			},
		}
		prep, err := opt.Order(lg)
		if err != nil {
			return nil, nil, fmt.Errorf("sql: %s", strings.TrimPrefix(err.Error(), "opt: "))
		}
		return prep.Root, prep, nil
	}

	node, err := b.finish(a, scans[0], residual)
	return node, nil, err
}

// finish builds everything above the join tree: residual predicates,
// aggregation or projection, and sort/limit. It binds by name against
// root's schema, so it works for any join order the optimizer — or a
// mid-query replan — picks.
func (b *binder) finish(a *ast, root plan.Node, residual []node) (plan.Node, error) {
	b.schema = root.Schema()
	b.colIdx = map[string]int{}
	for i, c := range b.schema {
		b.colIdx[c.Name] = i
	}

	// Residual predicates.
	for _, r := range residual {
		e, err := b.bind(r, b.schema, nil)
		if err != nil {
			return nil, err
		}
		root = plan.NewFilter(root, e)
	}

	// Aggregation or plain projection.
	hasAgg := len(a.group) > 0
	for _, s := range a.sel {
		if s.agg != "" {
			hasAgg = true
		}
	}
	var outNames []string
	if hasAgg {
		var keys []expr.Expr
		var keyNames []string
		keyOf := map[string]int{}
		for i, g := range a.group {
			e, err := b.bind(g, b.schema, nil)
			if err != nil {
				return nil, err
			}
			keys = append(keys, e)
			name := fmt.Sprintf("k%d", i)
			if id, ok := g.(nIdent); ok {
				name = id.name
			}
			keyNames = append(keyNames, name)
			keyOf[nodeKey(g)] = i
		}
		var aggs []plan.AggExpr
		type outRef struct {
			isKey bool
			idx   int
		}
		var outs []outRef
		for _, s := range a.sel {
			if s.agg == "" {
				ki, ok := keyOf[nodeKey(s.arg)]
				if !ok {
					return nil, fmt.Errorf("sql: %q must appear in GROUP BY", s.alias)
				}
				outs = append(outs, outRef{isKey: true, idx: ki})
				outNames = append(outNames, s.alias)
				continue
			}
			var fn plan.AggFunc
			switch s.agg {
			case "count*":
				fn = plan.CountStar
			case "count":
				fn = plan.Count
			case "sum":
				fn = plan.Sum
			case "avg":
				fn = plan.Avg
			case "min":
				fn = plan.Min
			case "max":
				fn = plan.Max
			}
			var arg expr.Expr
			if s.arg != nil {
				var err error
				arg, err = b.bind(s.arg, b.schema, nil)
				if err != nil {
					return nil, err
				}
			}
			outs = append(outs, outRef{idx: len(aggs)})
			aggs = append(aggs, plan.AggExpr{Func: fn, Arg: arg, Name: s.alias})
			outNames = append(outNames, s.alias)
		}
		g := plan.NewGroupBy(root, keys, keyNames, aggs)
		gs := g.Schema()
		// Project the SELECT order.
		var exprs []expr.Expr
		for _, o := range outs {
			if o.isKey {
				exprs = append(exprs, expr.Col(o.idx, gs[o.idx].T))
			} else {
				exprs = append(exprs, expr.Col(len(keys)+o.idx, gs[len(keys)+o.idx].T))
			}
		}
		root = plan.NewProject(g, exprs, outNames)
	} else {
		var exprs []expr.Expr
		for _, s := range a.sel {
			e, err := b.bind(s.arg, b.schema, nil)
			if err != nil {
				return nil, err
			}
			exprs = append(exprs, e)
			outNames = append(outNames, s.alias)
		}
		root = plan.NewProject(root, exprs, outNames)
	}

	// ORDER BY binds against the output schema.
	if len(a.order) > 0 || a.limit >= 0 {
		b.inOrder = true
		defer func() { b.inOrder = false }()
		var keys []plan.SortKey
		for _, o := range a.order {
			e, err := b.bind(o.e, root.Schema(), outNames)
			if err != nil {
				return nil, err
			}
			keys = append(keys, plan.SortKey{E: e, Desc: o.desc})
		}
		root = plan.NewOrderBy(root, keys, a.limit)
	}
	return root, nil
}

// nodeKey renders an AST node for structural comparison (GROUP BY vs
// SELECT items).
func nodeKey(n node) string { return fmt.Sprintf("%#v", n) }

// collect records which table every identifier belongs to.
func (b *binder) collect(n node) error {
	switch x := n.(type) {
	case nIdent:
		ti, _, err := b.resolve(x.name)
		if err != nil {
			return err
		}
		b.needed[ti][x.name] = true
	case nBin:
		if err := b.collect(x.l); err != nil {
			return err
		}
		return b.collect(x.r)
	case nNot:
		return b.collect(x.arg)
	case nLike:
		return b.collect(x.arg)
	case nIn:
		if err := b.collect(x.arg); err != nil {
			return err
		}
		for _, e := range x.list {
			if err := b.collect(e); err != nil {
				return err
			}
		}
	case nBetween:
		if err := b.collect(x.arg); err != nil {
			return err
		}
		if err := b.collect(x.lo); err != nil {
			return err
		}
		return b.collect(x.hi)
	case nCase:
		for _, w := range x.whens {
			if err := b.collect(w.cond); err != nil {
				return err
			}
			if err := b.collect(w.then); err != nil {
				return err
			}
		}
		if x.els != nil {
			return b.collect(x.els)
		}
	case nCall:
		for _, e := range x.args {
			if err := b.collect(e); err != nil {
				return err
			}
		}
	}
	return nil
}

// resolve maps an unqualified column name to its table.
func (b *binder) resolve(name string) (int, *storage.Column, error) {
	found := -1
	var col *storage.Column
	for i, t := range b.tables {
		if c := t.Col(name); c != nil {
			if found >= 0 {
				return 0, nil, fmt.Errorf("sql: column %q is ambiguous", name)
			}
			found = i
			col = c
		}
	}
	if found < 0 {
		return 0, nil, fmt.Errorf("sql: unknown column %q", name)
	}
	return found, col, nil
}

// tablesOf returns the distinct tables a predicate references.
func (b *binder) tablesOf(n node) []int {
	set := map[int]bool{}
	var walk func(n node)
	walk = func(n node) {
		switch x := n.(type) {
		case nIdent:
			if ti, _, err := b.resolve(x.name); err == nil {
				set[ti] = true
			}
		case nBin:
			walk(x.l)
			walk(x.r)
		case nNot:
			walk(x.arg)
		case nLike:
			walk(x.arg)
		case nIn:
			walk(x.arg)
			for _, e := range x.list {
				walk(e)
			}
		case nBetween:
			walk(x.arg)
			walk(x.lo)
			walk(x.hi)
		case nCase:
			for _, w := range x.whens {
				walk(w.cond)
				walk(w.then)
			}
			if x.els != nil {
				walk(x.els)
			}
		case nCall:
			for _, e := range x.args {
				walk(e)
			}
		}
	}
	walk(n)
	out := make([]int, 0, len(set))
	for ti := range set {
		out = append(out, ti)
	}
	return out
}

// asEquiJoin recognizes "col = col" across two tables.
func (b *binder) asEquiJoin(n node) ([4]any, bool) {
	bin, ok := n.(nBin)
	if !ok || bin.op != "=" {
		return [4]any{}, false
	}
	l, lok := bin.l.(nIdent)
	r, rok := bin.r.(nIdent)
	if !lok || !rok {
		return [4]any{}, false
	}
	lt, _, err1 := b.resolve(l.name)
	rt, _, err2 := b.resolve(r.name)
	if err1 != nil || err2 != nil || lt == rt {
		return [4]any{}, false
	}
	return [4]any{lt, l.name, rt, r.name}, true
}

// conjuncts flattens a WHERE tree over AND.
func conjuncts(n node) []node {
	if n == nil {
		return nil
	}
	if bin, ok := n.(nBin); ok && bin.op == "AND" {
		return append(conjuncts(bin.l), conjuncts(bin.r)...)
	}
	return []node{n}
}

// bind lowers an AST node to a typed expression over the given schema.
// outNames, when non-nil, allows ORDER BY to reference SELECT aliases.
func (b *binder) bind(n node, schema []plan.ColDef, outNames []string) (expr.Expr, error) {
	switch x := n.(type) {
	case nIdent:
		if outNames != nil {
			for i, nm := range outNames {
				if nm == x.name {
					return expr.Col(i, schema[i].T), nil
				}
			}
		}
		for i, c := range schema {
			if c.Name == x.name {
				return expr.Col(i, c.T), nil
			}
		}
		return nil, fmt.Errorf("sql: column %q not in scope", x.name)
	case nNum:
		if i := strings.IndexByte(x.text, '.'); i >= 0 {
			frac := x.text[i+1:]
			var v int64
			fmt.Sscanf(x.text[:i]+frac, "%d", &v)
			return expr.Dec(v, len(frac)), nil
		}
		var v int64
		fmt.Sscanf(x.text, "%d", &v)
		return expr.Int(v), nil
	case nStr:
		return expr.Str(x.s), nil
	case nParam:
		if b.params == nil {
			return nil, fmt.Errorf("sql: parameter $%d requires EXECUTE binding values", x.idx+1)
		}
		if x.idx >= len(b.params) {
			return nil, fmt.Errorf("sql: statement uses $%d but only %d value(s) were bound",
				x.idx+1, len(b.params))
		}
		if b.params[x.idx] == nil {
			return nil, fmt.Errorf("sql: parameter $%d is unbound", x.idx+1)
		}
		if b.inOrder {
			return nil, fmt.Errorf("sql: parameter $%d in ORDER BY is not supported", x.idx+1)
		}
		b.paramUsed[x.idx] = true
		return expr.ParamRef(x.idx, b.params[x.idx].T), nil
	case nDate:
		d, err := storage.ParseDate(x.s)
		if err != nil {
			return nil, fmt.Errorf("sql: bad DATE literal %q: %v", x.s, err)
		}
		return expr.Date(d), nil
	case nBin:
		l, err := b.bind(x.l, schema, outNames)
		if err != nil {
			return nil, err
		}
		r, err := b.bind(x.r, schema, outNames)
		if err != nil {
			return nil, err
		}
		return b.bindBin(x.op, l, r)
	case nNot:
		a, err := b.bind(x.arg, schema, outNames)
		if err != nil {
			return nil, err
		}
		return expr.Not(a), nil
	case nLike:
		a, err := b.bind(x.arg, schema, outNames)
		if err != nil {
			return nil, err
		}
		if x.neg {
			return expr.NotLike(a, x.pat), nil
		}
		return expr.Like(a, x.pat), nil
	case nIn:
		a, err := b.bind(x.arg, schema, outNames)
		if err != nil {
			return nil, err
		}
		var list []expr.Expr
		for _, e := range x.list {
			le, err := b.bind(e, schema, outNames)
			if err != nil {
				return nil, err
			}
			if _, isParam := le.(*expr.Param); isParam {
				return nil, fmt.Errorf("sql: parameters in IN lists are not supported")
			}
			// Char columns compare against single-char strings.
			if a.Type().Kind == expr.KChar {
				if c, ok := le.(*expr.Const); ok && c.T.Kind == expr.KString && len(c.S) == 1 {
					le = expr.Ch(c.S[0])
				}
			}
			list = append(list, le)
		}
		return expr.In(a, list...), nil
	case nBetween:
		a, err := b.bind(x.arg, schema, outNames)
		if err != nil {
			return nil, err
		}
		lo, err := b.bind(x.lo, schema, outNames)
		if err != nil {
			return nil, err
		}
		hi, err := b.bind(x.hi, schema, outNames)
		if err != nil {
			return nil, err
		}
		return expr.Between(a, b.coerce(lo, a), b.coerce(hi, a)), nil
	case nCase:
		var whens []expr.When
		var thenT expr.Type
		for _, w := range x.whens {
			cond, err := b.bind(w.cond, schema, outNames)
			if err != nil {
				return nil, err
			}
			then, err := b.bind(w.then, schema, outNames)
			if err != nil {
				return nil, err
			}
			thenT = then.Type()
			whens = append(whens, expr.When{Cond: cond, Then: then})
		}
		var els expr.Expr
		if x.els != nil {
			var err error
			els, err = b.bind(x.els, schema, outNames)
			if err != nil {
				return nil, err
			}
		} else {
			els = zeroOf(thenT)
		}
		// Unify arm types through rescaling when needed.
		for i := range whens {
			whens[i].Then = unify(whens[i].Then, els.Type())
		}
		els = unify(els, whens[0].Then.Type())
		return expr.Case(whens, els), nil
	case nCall:
		switch x.name {
		case "year":
			a, err := b.bind(x.args[0], schema, outNames)
			if err != nil {
				return nil, err
			}
			return expr.Year(a), nil
		case "substr":
			if len(x.args) != 3 {
				return nil, fmt.Errorf("sql: SUBSTR(expr, from, len)")
			}
			a, err := b.bind(x.args[0], schema, outNames)
			if err != nil {
				return nil, err
			}
			from, ok1 := x.args[1].(nNum)
			ln, ok2 := x.args[2].(nNum)
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("sql: SUBSTR bounds must be literals")
			}
			var f, l int
			fmt.Sscanf(from.text, "%d", &f)
			fmt.Sscanf(ln.text, "%d", &l)
			return expr.Substr(a, f, l), nil
		}
		return nil, fmt.Errorf("sql: unknown function %q", x.name)
	}
	return nil, fmt.Errorf("sql: cannot bind %T", n)
}

func (b *binder) bindBin(op string, l, r expr.Expr) (expr.Expr, error) {
	switch op {
	case "AND":
		return expr.And(l, r), nil
	case "OR":
		return expr.Or(l, r), nil
	case "+":
		return expr.Add(l, r), nil
	case "-":
		return expr.Sub(l, r), nil
	case "*":
		return expr.Mul(l, r), nil
	case "/":
		return expr.Div(l, r), nil
	}
	// Comparisons: coerce char-vs-string and date-vs-... literals (and
	// parameters, whose binding values convert the same way).
	l2, r2 := l, b.coerce(r, l)
	if l2.Type().Kind != r2.Type().Kind {
		l2 = b.coerce(l, r2)
	}
	var cmp expr.CmpOp
	switch op {
	case "=":
		cmp = expr.CmpEq
	case "<>":
		cmp = expr.CmpNe
	case "<":
		cmp = expr.CmpLt
	case "<=":
		cmp = expr.CmpLe
	case ">":
		cmp = expr.CmpGt
	default:
		cmp = expr.CmpGe
	}
	return expr.NewCmp(cmp, l2, r2), nil
}

// coerce is the binder-aware literal coercion: constants convert as in
// the free function below; parameters convert their *binding value* by
// declared type only (a KString binding against a char column must be a
// single character, a KInt or date-string binding against a date column
// becomes a date), so the same plan shape serves every value of the
// slot.
func (b *binder) coerce(e expr.Expr, other expr.Expr) expr.Expr {
	p, ok := e.(*expr.Param)
	if !ok || b.params == nil {
		return coerce(e, other)
	}
	v := b.params[p.Idx]
	switch {
	case other.Type().Kind == expr.KChar && v.T.Kind == expr.KString:
		if len(v.S) != 1 {
			panic(&bindFail{fmt.Errorf("sql: parameter $%d binds a char column and must be one character, got %q", p.Idx+1, v.S)})
		}
		b.params[p.Idx] = expr.Ch(v.S[0]).(*expr.Const)
	case other.Type().Kind == expr.KDate && v.T.Kind == expr.KInt:
		b.params[p.Idx] = expr.Date(v.I).(*expr.Const)
	case other.Type().Kind == expr.KDate && v.T.Kind == expr.KString:
		d, err := storage.ParseDate(v.S)
		if err != nil {
			panic(&bindFail{fmt.Errorf("sql: parameter $%d binds a date column: %v", p.Idx+1, err)})
		}
		b.params[p.Idx] = expr.Date(d).(*expr.Const)
	default:
		return e
	}
	return expr.ParamRef(p.Idx, b.params[p.Idx].T)
}

// coerce adapts a literal to the other operand's type where SQL would:
// single-char strings to chars, ints to dates are left alone (dates come
// from DATE literals).
func coerce(e expr.Expr, other expr.Expr) expr.Expr {
	c, ok := e.(*expr.Const)
	if !ok {
		return e
	}
	switch {
	case other.Type().Kind == expr.KChar && c.T.Kind == expr.KString && len(c.S) == 1:
		return expr.Ch(c.S[0])
	case other.Type().Kind == expr.KDate && c.T.Kind == expr.KInt:
		return expr.Date(c.I)
	}
	return e
}

// unify rescales decimals so CASE arms share a type.
func unify(e expr.Expr, t expr.Type) expr.Expr {
	et := e.Type()
	if et == t {
		return e
	}
	if t.Kind == expr.KFloat && et.Numeric() {
		return expr.ToFloat(e)
	}
	if t.Kind == expr.KDecimal && (et.Kind == expr.KDecimal || et.Kind == expr.KInt) {
		if scale := t.Scale; scale >= scaleOf(et) {
			return expr.Rescale(e, scale)
		}
	}
	return e
}

func scaleOf(t expr.Type) int {
	if t.Kind == expr.KDecimal {
		return t.Scale
	}
	return 0
}

func zeroOf(t expr.Type) expr.Expr {
	switch t.Kind {
	case expr.KFloat:
		return expr.Float(0)
	case expr.KDecimal:
		return expr.Dec(0, t.Scale)
	default:
		return expr.Int(0)
	}
}
