package sql

import (
	"fmt"
	"strings"
)

// AST node kinds (untyped; binding happens in the planner).
type node interface{}

type nIdent struct{ name string }
type nNum struct{ text string }
type nStr struct{ s string }
type nDate struct{ s string }
type nBin struct {
	op   string // + - * / = <> < <= > >= AND OR
	l, r node
}
type nNot struct{ arg node }
type nLike struct {
	arg node
	pat string
	neg bool
}
type nIn struct {
	arg  node
	list []node
}
type nBetween struct{ arg, lo, hi node }
type nCase struct {
	whens []nWhen
	els   node
}
type nWhen struct{ cond, then node }
type nCall struct {
	name string
	args []node
}
type nParam struct{ idx int } // $1 is idx 0

type selItem struct {
	agg   string // "", "count", "count*", "sum", "avg", "min", "max"
	arg   node   // nil for count(*)
	alias string
}

type orderItem struct {
	e    node
	desc bool
}

type ast struct {
	sel   []selItem
	from  []string
	where node
	group []node
	order []orderItem
	limit int
}

type parser struct {
	toks []token
	pos  int
}

func parse(src string) (*ast, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	a, err := p.query()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	return a, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().kind == tkEOF }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (at offset %d)", fmt.Sprintf(format, args...), p.cur().pos)
}

func (p *parser) acceptKw(kw string) bool {
	if p.cur().kind == tkKeyword && p.cur().text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptOp(op string) bool {
	if p.cur().kind == tkOp && p.cur().text == op {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s", kw)
	}
	return nil
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q", op)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	if p.cur().kind != tkIdent {
		return "", p.errf("expected identifier, found %q", p.cur().text)
	}
	s := p.cur().text
	p.pos++
	return s, nil
}

func (p *parser) query() (*ast, error) {
	a := &ast{limit: -1}
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	for {
		item, err := p.selItem()
		if err != nil {
			return nil, err
		}
		a.sel = append(a.sel, item)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	for {
		t, err := p.ident()
		if err != nil {
			return nil, err
		}
		a.from = append(a.from, t)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKw("WHERE") {
		w, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		a.where = w
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			a.group = append(a.group, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.cur().kind == tkKeyword && p.cur().text == "HAVING" {
		return nil, p.errf("HAVING is not supported; filter a subquery stage instead")
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			item := orderItem{e: e}
			if p.acceptKw("DESC") {
				item.desc = true
			} else {
				p.acceptKw("ASC")
			}
			a.order = append(a.order, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("LIMIT") {
		if p.cur().kind != tkNumber {
			return nil, p.errf("expected LIMIT count")
		}
		n := 0
		fmt.Sscanf(p.cur().text, "%d", &n)
		a.limit = n
		p.pos++
	}
	return a, nil
}

var aggKws = map[string]string{
	"COUNT": "count", "SUM": "sum", "AVG": "avg", "MIN": "min", "MAX": "max",
}

func (p *parser) selItem() (selItem, error) {
	var item selItem
	if p.cur().kind == tkKeyword {
		if agg, ok := aggKws[p.cur().text]; ok {
			p.pos++
			if err := p.expectOp("("); err != nil {
				return item, err
			}
			if agg == "count" && p.acceptOp("*") {
				item.agg = "count*"
			} else {
				arg, err := p.addExpr()
				if err != nil {
					return item, err
				}
				item.agg = agg
				item.arg = arg
			}
			if err := p.expectOp(")"); err != nil {
				return item, err
			}
			item.alias = item.agg
			if err := p.maybeAlias(&item); err != nil {
				return item, err
			}
			return item, nil
		}
	}
	e, err := p.addExpr()
	if err != nil {
		return item, err
	}
	item.arg = e
	if id, ok := e.(nIdent); ok {
		item.alias = id.name
	} else {
		item.alias = "expr"
	}
	if err := p.maybeAlias(&item); err != nil {
		return item, err
	}
	return item, nil
}

func (p *parser) maybeAlias(item *selItem) error {
	if p.acceptKw("AS") {
		a, err := p.ident()
		if err != nil {
			return err
		}
		item.alias = a
	}
	return nil
}

// Expression grammar: OR > AND > NOT > comparison > additive >
// multiplicative > primary.

func (p *parser) orExpr() (node, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = nBin{op: "OR", l: l, r: r}
	}
	return l, nil
}

func (p *parser) andExpr() (node, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = nBin{op: "AND", l: l, r: r}
	}
	return l, nil
}

func (p *parser) notExpr() (node, error) {
	if p.acceptKw("NOT") {
		arg, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return nNot{arg: arg}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (node, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tkOp {
		switch op := p.cur().text; op {
		case "=", "<>", "<", "<=", ">", ">=":
			p.pos++
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return nBin{op: op, l: l, r: r}, nil
		}
	}
	neg := false
	if p.cur().kind == tkKeyword && p.cur().text == "NOT" {
		// NOT LIKE / NOT IN / NOT BETWEEN
		save := p.pos
		p.pos++
		switch p.cur().text {
		case "LIKE", "IN", "BETWEEN":
			neg = true
		default:
			p.pos = save
			return l, nil
		}
	}
	switch {
	case p.acceptKw("LIKE"):
		if p.cur().kind != tkString {
			return nil, p.errf("LIKE expects a string pattern")
		}
		pat := p.cur().text
		p.pos++
		return nLike{arg: l, pat: pat, neg: neg}, nil
	case p.acceptKw("IN"):
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var list []node
		for {
			e, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		var out node = nIn{arg: l, list: list}
		if neg {
			out = nNot{arg: out}
		}
		return out, nil
	case p.acceptKw("BETWEEN"):
		lo, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AND"); err != nil {
			return nil, err
		}
		hi, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		var out node = nBetween{arg: l, lo: lo, hi: hi}
		if neg {
			out = nNot{arg: out}
		}
		return out, nil
	}
	return l, nil
}

func (p *parser) addExpr() (node, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("+"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = nBin{op: "+", l: l, r: r}
		case p.acceptOp("-"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = nBin{op: "-", l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) mulExpr() (node, error) {
	l, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("*"):
			r, err := p.primary()
			if err != nil {
				return nil, err
			}
			l = nBin{op: "*", l: l, r: r}
		case p.acceptOp("/"):
			r, err := p.primary()
			if err != nil {
				return nil, err
			}
			l = nBin{op: "/", l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) primary() (node, error) {
	t := p.cur()
	switch t.kind {
	case tkNumber:
		p.pos++
		return nNum{text: t.text}, nil
	case tkString:
		p.pos++
		return nStr{s: t.text}, nil
	case tkParam:
		p.pos++
		n := 0
		fmt.Sscanf(t.text, "%d", &n)
		if n < 1 {
			return nil, p.errf("parameter numbers start at $1")
		}
		return nParam{idx: n - 1}, nil
	case tkIdent:
		p.pos++
		name := t.text
		if p.acceptOp(".") {
			// qualified name: table.col — resolved by the unqualified
			// column name (TPC-H column names are globally unique).
			colName, err := p.ident()
			if err != nil {
				return nil, err
			}
			name = colName
		}
		return nIdent{name: name}, nil
	case tkKeyword:
		switch t.text {
		case "DATE":
			p.pos++
			if p.cur().kind != tkString {
				return nil, p.errf("DATE expects a 'YYYY-MM-DD' string")
			}
			s := p.cur().text
			p.pos++
			return nDate{s: s}, nil
		case "YEAR", "SUBSTR":
			p.pos++
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			var args []node
			for {
				e, err := p.addExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, e)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return nCall{name: strings.ToLower(t.text), args: args}, nil
		case "CASE":
			p.pos++
			var c nCase
			for p.acceptKw("WHEN") {
				cond, err := p.orExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expectKw("THEN"); err != nil {
					return nil, err
				}
				then, err := p.addExpr()
				if err != nil {
					return nil, err
				}
				c.whens = append(c.whens, nWhen{cond: cond, then: then})
			}
			if p.acceptKw("ELSE") {
				els, err := p.addExpr()
				if err != nil {
					return nil, err
				}
				c.els = els
			}
			if err := p.expectKw("END"); err != nil {
				return nil, err
			}
			return c, nil
		}
	case tkOp:
		if t.text == "(" {
			p.pos++
			e, err := p.orExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.text == "-" {
			p.pos++
			e, err := p.primary()
			if err != nil {
				return nil, err
			}
			return nBin{op: "-", l: nNum{text: "0"}, r: e}, nil
		}
	}
	return nil, p.errf("unexpected token %q", t.text)
}
