package sql

import (
	"fmt"
	"strings"

	"aqe/internal/expr"
	"aqe/internal/storage"
)

// StmtKind classifies a top-level statement.
type StmtKind int

// Statement kinds. Everything that is not a prepared-statement command
// is a query (StmtSelect) and planned as before.
const (
	StmtSelect StmtKind = iota
	StmtPrepare
	StmtExecute
	StmtDeallocate
)

// Stmt is one parsed top-level statement.
//
//	PREPARE <name> AS SELECT ...       -> StmtPrepare    (Name, Body)
//	EXECUTE <name> [(lit, lit, ...)]   -> StmtExecute    (Name, Args)
//	DEALLOCATE [PREPARE] <name>        -> StmtDeallocate (Name)
//	SELECT ...                         -> StmtSelect     (Body = source)
type Stmt struct {
	Kind StmtKind
	Name string
	Body string
	Args []*expr.Const
}

// ParseStmt classifies and parses one statement. A PREPARE body is
// syntax-checked immediately but bound and planned only at EXECUTE,
// when the parameter types are known from the binding values.
func ParseStmt(src string) (*Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	switch {
	case p.acceptKw("PREPARE"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AS"); err != nil {
			return nil, err
		}
		if p.atEOF() {
			return nil, p.errf("PREPARE body is empty")
		}
		body := strings.TrimSpace(src[p.cur().pos:])
		if _, err := parse(body); err != nil {
			return nil, err
		}
		return &Stmt{Kind: StmtPrepare, Name: name, Body: body}, nil
	case p.acceptKw("EXECUTE"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		st := &Stmt{Kind: StmtExecute, Name: name}
		if p.acceptOp("(") {
			for {
				c, err := p.literal()
				if err != nil {
					return nil, err
				}
				st.Args = append(st.Args, c)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		}
		if !p.atEOF() {
			return nil, p.errf("trailing input %q", p.cur().text)
		}
		return st, nil
	case p.acceptKw("DEALLOCATE"):
		p.acceptKw("PREPARE")
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if !p.atEOF() {
			return nil, p.errf("trailing input %q", p.cur().text)
		}
		return &Stmt{Kind: StmtDeallocate, Name: name}, nil
	}
	return &Stmt{Kind: StmtSelect, Body: src}, nil
}

// literal parses one constant (number, 'string', DATE '...', optionally
// negated) for an EXECUTE binding list.
func (p *parser) literal() (*expr.Const, error) {
	n, err := p.primary()
	if err != nil {
		return nil, err
	}
	return literalConst(n)
}

// ParseLiteral parses one SQL literal into a typed constant — the
// binding-value syntax clients use over the wire.
func ParseLiteral(src string) (*expr.Const, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	n, err := p.primary()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	return literalConst(n)
}

// literalConst lowers a literal AST node to a constant, mirroring the
// binder's literal lowering (decimals keep their written scale).
func literalConst(n node) (*expr.Const, error) {
	switch x := n.(type) {
	case nNum:
		if i := strings.IndexByte(x.text, '.'); i >= 0 {
			frac := x.text[i+1:]
			var v int64
			fmt.Sscanf(x.text[:i]+frac, "%d", &v)
			return expr.Dec(v, len(frac)).(*expr.Const), nil
		}
		var v int64
		fmt.Sscanf(x.text, "%d", &v)
		return expr.Int(v).(*expr.Const), nil
	case nStr:
		return expr.Str(x.s).(*expr.Const), nil
	case nDate:
		d, err := storage.ParseDate(x.s)
		if err != nil {
			return nil, fmt.Errorf("sql: bad DATE literal %q: %v", x.s, err)
		}
		return expr.Date(d).(*expr.Const), nil
	case nBin:
		// primary parses "-3" as 0 - 3; fold it back to a constant.
		if z, ok := x.l.(nNum); ok && x.op == "-" && z.text == "0" {
			c, err := literalConst(x.r)
			if err != nil {
				return nil, err
			}
			neg := *c
			neg.I, neg.F = -c.I, -c.F
			return &neg, nil
		}
	}
	return nil, fmt.Errorf("sql: expected a literal binding value")
}
