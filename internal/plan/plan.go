// Package plan defines the physical query plans all engines execute: scans
// with pushed-down filters, hash joins (inner, semi, anti, and the
// outer-count variant), hash aggregation, projection, filter, and a
// sort/limit root. Plans are built programmatically (the TPC-H queries in
// internal/tpch construct them directly; the small SQL front end lowers
// into them), already in physical form — join order and access paths are
// the plan author's choice, mirroring the paper's setting where plans come
// out of HyPer's optimizer before code generation.
package plan

import (
	"fmt"

	"aqe/internal/expr"
	"aqe/internal/storage"
)

// ColDef is one column of a node's output schema.
type ColDef struct {
	Name string
	T    expr.Type
}

// Node is a physical plan operator.
type Node interface {
	Schema() []ColDef
	Children() []Node
}

// ColIdx resolves a column name in a schema to its index, panicking if
// missing (plan construction is code; failures are bugs).
func ColIdx(schema []ColDef, name string) int {
	for i, c := range schema {
		if c.Name == name {
			return i
		}
	}
	panic(fmt.Sprintf("plan: no column %q in schema %v", name, names(schema)))
}

// C builds a column reference into a schema by name.
func C(schema []ColDef, name string) expr.Expr {
	i := ColIdx(schema, name)
	return expr.Col(i, schema[i].T)
}

func names(schema []ColDef) []string {
	out := make([]string, len(schema))
	for i, c := range schema {
		out[i] = c.Name
	}
	return out
}

// typeOfColumn maps a storage column to an expression type.
func typeOfColumn(c *storage.Column) expr.Type {
	switch c.Kind {
	case storage.Int64:
		return expr.TInt
	case storage.Decimal:
		return expr.TDec(c.Scale)
	case storage.Date:
		return expr.TDate
	case storage.Float64:
		return expr.TFloat
	case storage.Char:
		return expr.TChar
	default:
		return expr.TString
	}
}

// Scan reads the named columns of a table, optionally filtering. The
// filter expression is resolved against the scan's output schema.
type Scan struct {
	Table  *storage.Table
	Cols   []string
	Filter expr.Expr // nil = none
	schema []ColDef
}

// NewScan builds a scan of the given columns.
func NewScan(t *storage.Table, cols ...string) *Scan {
	s := &Scan{Table: t, Cols: cols}
	for _, name := range cols {
		s.schema = append(s.schema, ColDef{Name: name, T: typeOfColumn(t.MustCol(name))})
	}
	return s
}

// Where attaches (conjoins) a filter to the scan and returns it.
func (s *Scan) Where(cond expr.Expr) *Scan {
	if s.Filter == nil {
		s.Filter = cond
	} else {
		s.Filter = expr.And(s.Filter, cond)
	}
	return s
}

func (s *Scan) Schema() []ColDef { return s.schema }
func (s *Scan) Children() []Node { return nil }

// Filter applies a predicate over its input schema.
type Filter struct {
	Input Node
	Cond  expr.Expr
}

// NewFilter builds a filter.
func NewFilter(in Node, cond expr.Expr) *Filter {
	if cond.Type().Kind != expr.KBool {
		panic("plan: filter condition must be boolean")
	}
	return &Filter{Input: in, Cond: cond}
}

func (f *Filter) Schema() []ColDef { return f.Input.Schema() }
func (f *Filter) Children() []Node { return []Node{f.Input} }

// Project computes named expressions over the input schema.
type Project struct {
	Input  Node
	Exprs  []expr.Expr
	Names  []string
	schema []ColDef
}

// NewProject builds a projection.
func NewProject(in Node, exprs []expr.Expr, pnames []string) *Project {
	if len(exprs) != len(pnames) {
		panic("plan: projection arity mismatch")
	}
	p := &Project{Input: in, Exprs: exprs, Names: pnames}
	for i, e := range exprs {
		p.schema = append(p.schema, ColDef{Name: pnames[i], T: e.Type()})
	}
	return p
}

func (p *Project) Schema() []ColDef { return p.schema }
func (p *Project) Children() []Node { return []Node{p.Input} }

// JoinKind selects join semantics.
type JoinKind uint8

// Join kinds. All joins build a hash table on the build side and stream
// the probe side (the pipeline side). OuterCount emits every probe row
// extended with the number of matches — the form the decorrelated Q13
// needs; combined with zero-count filters it also expresses left-outer
// aggregation.
const (
	Inner JoinKind = iota
	Semi
	Anti
	OuterCount
)

func (k JoinKind) String() string {
	return [...]string{"inner", "semi", "anti", "outercount"}[k]
}

// Join is a hash join. Keys must be integer-representable (int, date,
// char, decimal — TPC-H joins exclusively on integer keys). Payload names
// the build columns carried into the output (for Inner joins).
//
// The output schema is: probe schema, then (Inner only) the named build
// payload columns, then (OuterCount only) the match-count column.
type Join struct {
	Kind       JoinKind
	Build      Node
	Probe      Node
	BuildKeys  []expr.Expr // over build schema
	ProbeKeys  []expr.Expr // over probe schema
	Payload    []string    // build columns carried (Inner)
	PayloadIdx []int
	// Residual is an extra predicate evaluated per candidate match over
	// the combined schema [probe cols ++ ALL build cols]; build columns
	// are addressed at probe-schema-len + build index.
	Residual expr.Expr
	// CountName names the OuterCount output column.
	CountName string
	// Est is the optimizer's estimated build-side cardinality (rows
	// entering the hash table), or 0 when no estimate exists (hand-built
	// plans). The engine compares it against the observed count at the
	// build's pipeline-breaker finalize to detect misestimates.
	Est int64

	schema []ColDef
}

// NewJoin builds a hash join.
func NewJoin(kind JoinKind, build, probe Node, buildKeys, probeKeys []expr.Expr,
	payload []string) *Join {
	if len(buildKeys) != len(probeKeys) || len(buildKeys) == 0 {
		panic("plan: join key arity mismatch")
	}
	for i := range buildKeys {
		bt, pt := buildKeys[i].Type(), probeKeys[i].Type()
		if bt.Kind == expr.KString || pt.Kind == expr.KString ||
			bt.Kind == expr.KFloat || pt.Kind == expr.KFloat {
			panic("plan: join keys must be integer-representable")
		}
	}
	j := &Join{Kind: kind, Build: build, Probe: probe,
		BuildKeys: buildKeys, ProbeKeys: probeKeys, Payload: payload,
		CountName: "match_count"}
	j.schema = append(j.schema, probe.Schema()...)
	switch kind {
	case Inner:
		bs := build.Schema()
		for _, name := range payload {
			idx := ColIdx(bs, name)
			j.PayloadIdx = append(j.PayloadIdx, idx)
			j.schema = append(j.schema, bs[idx])
		}
	case OuterCount:
		if len(payload) != 0 {
			panic("plan: outer-count join carries no payload")
		}
		j.schema = append(j.schema, ColDef{Name: j.CountName, T: expr.TInt})
	default:
		if len(payload) != 0 {
			panic("plan: semi/anti joins carry no payload")
		}
	}
	return j
}

// WithResidual attaches a residual predicate (see Join.Residual).
func (j *Join) WithResidual(e expr.Expr) *Join {
	if e.Type().Kind != expr.KBool {
		panic("plan: residual must be boolean")
	}
	j.Residual = e
	return j
}

// Named renames the OuterCount column.
func (j *Join) Named(count string) *Join {
	if j.Kind != OuterCount {
		panic("plan: Named applies to outer-count joins")
	}
	j.CountName = count
	// Rebuild the last schema column.
	j.schema[len(j.schema)-1].Name = count
	return j
}

// CombinedSchema returns [probe ++ build] for residual resolution.
func (j *Join) CombinedSchema() []ColDef {
	return append(append([]ColDef{}, j.Probe.Schema()...), j.Build.Schema()...)
}

func (j *Join) Schema() []ColDef { return j.schema }
func (j *Join) Children() []Node { return []Node{j.Build, j.Probe} }

// AggFunc is an aggregate function.
type AggFunc uint8

// Aggregate functions. Avg is lowered to sum and count with a final
// division; its result type is float.
const (
	Sum AggFunc = iota
	Min
	Max
	Count     // COUNT(expr); without NULLs it equals COUNT(*)
	CountStar // COUNT(*)
	Avg
)

func (f AggFunc) String() string {
	return [...]string{"sum", "min", "max", "count", "count(*)", "avg"}[f]
}

// AggExpr is one aggregate of a GroupBy.
type AggExpr struct {
	Func AggFunc
	Arg  expr.Expr // nil for CountStar
	Name string
}

// resultType computes the aggregate's output type.
func (a AggExpr) resultType() expr.Type {
	switch a.Func {
	case Count, CountStar:
		return expr.TInt
	case Avg:
		return expr.TFloat
	default:
		return a.Arg.Type()
	}
}

// GroupBy is hash aggregation. Output schema: key columns (named by
// KeyNames) then aggregate columns. With no keys it produces exactly one
// row (scalar aggregation).
type GroupBy struct {
	Input    Node
	Keys     []expr.Expr
	KeyNames []string
	Aggs     []AggExpr
	schema   []ColDef
}

// NewGroupBy builds a hash aggregation.
func NewGroupBy(in Node, keys []expr.Expr, keyNames []string, aggs []AggExpr) *GroupBy {
	if len(keys) != len(keyNames) {
		panic("plan: group key naming mismatch")
	}
	g := &GroupBy{Input: in, Keys: keys, KeyNames: keyNames, Aggs: aggs}
	for i, k := range keys {
		g.schema = append(g.schema, ColDef{Name: keyNames[i], T: k.Type()})
	}
	for _, a := range aggs {
		if a.Func == Sum || a.Func == Min || a.Func == Max || a.Func == Avg {
			if a.Arg == nil || !a.Arg.Type().Numeric() {
				panic(fmt.Sprintf("plan: %s needs a numeric argument", a.Func))
			}
		}
		g.schema = append(g.schema, ColDef{Name: a.Name, T: a.resultType()})
	}
	return g
}

func (g *GroupBy) Schema() []ColDef { return g.schema }
func (g *GroupBy) Children() []Node { return []Node{g.Input} }

// SortKey is one ORDER BY key, evaluated over the root schema.
type SortKey struct {
	E    expr.Expr
	Desc bool
}

// OrderBy sorts (and optionally limits) the rows of its input. It is only
// valid as the root of a stage; sorting happens on the materialized result.
type OrderBy struct {
	Input Node
	Keys  []SortKey
	Limit int // -1: no limit
}

// NewOrderBy builds a sort/limit root.
func NewOrderBy(in Node, keys []SortKey, limit int) *OrderBy {
	return &OrderBy{Input: in, Keys: keys, Limit: limit}
}

func (o *OrderBy) Schema() []ColDef { return o.Input.Schema() }
func (o *OrderBy) Children() []Node { return []Node{o.Input} }

// Stage is one execution stage of a query: a plan whose result
// materializes into a temporary table visible to later stages.
type Stage struct {
	Name string
	// Build constructs the stage plan; prior holds the materialized
	// results of earlier stages by name (hand-decorrelated subqueries
	// read scalars out of them or scan them).
	Build func(prior map[string]*storage.Table) Node
}

// Query is a multi-stage query; the last stage produces the result. Most
// queries have a single stage; decorrelated subqueries (Q2, Q11, Q15, Q17,
// Q20, Q22) use two or three.
type Query struct {
	Name   string
	Stages []Stage
}

// SingleStage wraps a plan-building function into a one-stage query.
func SingleStage(name string, build func() Node) Query {
	return Query{Name: name, Stages: []Stage{{
		Name:  name,
		Build: func(map[string]*storage.Table) Node { return build() },
	}}}
}
