package opt

import (
	"math"
	"strings"

	"aqe/internal/expr"
	"aqe/internal/storage"
)

// Default selectivities for predicates the statistics cannot size — the
// classic System R constants, kept deliberately coarse: the adaptive
// replan path corrects what they get wrong.
const (
	selDefault = 1.0 / 3.0 // unestimable comparison / unknown predicate
	selEq      = 0.1       // equality without NDV
	selLike    = 0.1       // LIKE with wildcards
)

// sel is an estimated selectivity. impossible marks a conjunct that is
// provably unsatisfiable (zone-map range excludes the constant, or a
// string literal is absent from the dictionary): the estimate is exactly
// 0, not merely small, which is what licenses the orderer's early-exit.
type sel struct {
	frac       float64
	impossible bool
}

func (s sel) and(o sel) sel {
	return sel{frac: s.frac * o.frac, impossible: s.impossible || o.impossible}
}

func (s sel) or(o sel) sel {
	f := 1 - (1-s.frac)*(1-o.frac)
	return sel{frac: f, impossible: s.impossible && o.impossible}
}

func (s sel) not() sel {
	// NOT of an impossible predicate is a tautology, not impossible.
	return sel{frac: 1 - s.frac}
}

func clampSel(f float64) float64 {
	if f < 0 || math.IsNaN(f) {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// relSel estimates the selectivity of a relation's pushed-down filter
// from storage statistics (zone-map global ranges, dictionary NDV).
func relSel(r *Relation) sel {
	if r.Filter == nil {
		return sel{frac: 1}
	}
	return exprSel(r.Filter, r)
}

// exprSel walks a boolean expression over the relation's scan schema.
func exprSel(e expr.Expr, r *Relation) sel {
	switch x := e.(type) {
	case *expr.Logic:
		out := exprSel(x.Args[0], r)
		for _, a := range x.Args[1:] {
			if x.IsAnd {
				out = out.and(exprSel(a, r))
			} else {
				out = out.or(exprSel(a, r))
			}
		}
		out.frac = clampSel(out.frac)
		return out
	case *expr.NotExpr:
		return exprSel(x.Arg, r).not()
	case *expr.Cmp:
		return cmpSel(x, r)
	case *expr.InList:
		return inSel(x, r)
	case *expr.LikeExpr:
		s := likeSel(x, r)
		if x.Negate {
			return s.not()
		}
		return s
	case *expr.Const:
		if x.T.Kind == expr.KBool {
			if x.I == 0 {
				return sel{frac: 0, impossible: true}
			}
			return sel{frac: 1}
		}
	}
	return sel{frac: selDefault}
}

// colStats resolves a ColRef of the scan schema to its column statistics.
func colStats(r *Relation, e expr.Expr) (*storage.Column, storage.ColStats, bool) {
	cr, ok := e.(*expr.ColRef)
	if !ok || cr.Idx < 0 || cr.Idx >= len(r.Cols) {
		return nil, storage.ColStats{}, false
	}
	c := r.Table.Col(r.Cols[cr.Idx])
	if c == nil {
		return nil, storage.ColStats{}, false
	}
	return c, c.Stats(), true
}

// constVal extracts a literal usable against the column's stored domain:
// integer-representable kinds compare in the raw stored integers (dates
// as day numbers, decimals as scaled integers rescaled to the column's
// scale, chars as bytes), strings through the dictionary-code order.
func constVal(e expr.Expr, c *storage.Column) (iv int64, fv float64, s string, kind expr.Kind, ok bool) {
	cn, isConst := e.(*expr.Const)
	if !isConst {
		return 0, 0, "", 0, false
	}
	switch cn.T.Kind {
	case expr.KString:
		return 0, 0, cn.S, expr.KString, true
	case expr.KFloat:
		return 0, cn.F, "", expr.KFloat, true
	case expr.KDecimal:
		v := float64(cn.I)
		for sc := cn.T.Scale; sc < c.Scale; sc++ {
			v *= 10
		}
		for sc := c.Scale; sc < cn.T.Scale; sc++ {
			v /= 10
		}
		return int64(v), v, "", expr.KDecimal, true
	default: // int, date, char, bool
		return cn.I, float64(cn.I), "", cn.T.Kind, true
	}
}

// cmpSel estimates col <op> const (either operand order) from the
// column's global range and NDV.
func cmpSel(x *expr.Cmp, r *Relation) sel {
	col, st, ok := colStats(r, x.L)
	cexp, op := x.R, x.Op
	if !ok {
		col, st, ok = colStats(r, x.R)
		cexp = x.L
		op = flip(x.Op)
	}
	if !ok {
		if op == expr.CmpEq {
			return sel{frac: selEq}
		}
		return sel{frac: selDefault}
	}
	iv, fv, s, kind, ok := constVal(cexp, col)
	if !ok {
		if op == expr.CmpEq {
			return sel{frac: selEq}
		}
		return sel{frac: selDefault}
	}

	// Strings: translate to the dictionary-code domain; without a fresh
	// dictionary there is no orderable representation, so fall back.
	if col.Kind == storage.String {
		if kind != expr.KString {
			return sel{frac: selDefault}
		}
		d := col.Dict()
		if d == nil {
			if op == expr.CmpEq {
				return sel{frac: selEq}
			}
			return sel{frac: selDefault}
		}
		switch op {
		case expr.CmpEq:
			if _, present := d.Code(s); !present {
				return sel{impossible: true}
			}
			return sel{frac: 1 / float64(d.Card())}
		case expr.CmpNe:
			if _, present := d.Code(s); !present {
				return sel{frac: 1}
			}
			return sel{frac: 1 - 1/float64(d.Card())}
		}
		// Ordering predicate: code < LowerBound(s) ⇔ value < s.
		lb := float64(d.LowerBound(s))
		n := float64(d.Card())
		var frac float64
		switch op {
		case expr.CmpLt:
			frac = lb / n
		case expr.CmpLe:
			if _, present := d.Code(s); present {
				lb++
			}
			frac = lb / n
		case expr.CmpGe:
			frac = (n - lb) / n
		default: // CmpGt
			if _, present := d.Code(s); present {
				lb++
			}
			frac = (n - lb) / n
		}
		frac = clampSel(frac)
		if frac == 0 {
			return sel{impossible: true}
		}
		return sel{frac: frac}
	}

	if !st.HasRange {
		if op == expr.CmpEq {
			if st.NDV > 0 {
				return sel{frac: 1 / float64(st.NDV)}
			}
			return sel{frac: selEq}
		}
		return sel{frac: selDefault}
	}
	if st.Float {
		return rangeSel(op, fv, st.MinF, st.MaxF, float64(st.NDV))
	}
	if kind == expr.KFloat || kind == expr.KString {
		return sel{frac: selDefault}
	}
	return rangeSel(op, float64(iv), float64(st.MinI), float64(st.MaxI), float64(st.NDV))
}

// rangeSel estimates a comparison against [lo, hi] assuming a uniform
// value distribution — exactly the assumption the adaptive replan path
// exists to correct when it is wrong.
func rangeSel(op expr.CmpOp, v, lo, hi, ndv float64) sel {
	span := hi - lo
	switch op {
	case expr.CmpEq:
		if v < lo || v > hi {
			return sel{impossible: true}
		}
		if ndv > 0 {
			return sel{frac: 1 / ndv}
		}
		return sel{frac: selEq}
	case expr.CmpNe:
		if v < lo || v > hi {
			return sel{frac: 1}
		}
		if ndv > 0 {
			return sel{frac: 1 - 1/ndv}
		}
		return sel{frac: 1 - selEq}
	}
	var frac float64
	switch op {
	case expr.CmpLt, expr.CmpLe:
		switch {
		case v < lo:
			return sel{impossible: true}
		case v >= hi:
			return sel{frac: 1}
		case span <= 0:
			return sel{frac: 1}
		default:
			frac = (v - lo) / span
		}
	default: // CmpGt, CmpGe
		switch {
		case v > hi:
			return sel{impossible: true}
		case v <= lo:
			return sel{frac: 1}
		case span <= 0:
			return sel{frac: 1}
		default:
			frac = (hi - v) / span
		}
	}
	if frac <= 0 {
		// The constant sits exactly on the range boundary: at least the
		// boundary value can match, so keep a floor of one distinct value.
		if ndv > 0 {
			frac = 1 / ndv
		} else {
			frac = selEq
		}
	}
	return sel{frac: clampSel(frac)}
}

// inSel estimates membership in a literal list: k matching values out of
// NDV, with dictionary lookups filtering provably-absent strings.
func inSel(x *expr.InList, r *Relation) sel {
	col, st, ok := colStats(r, x.Arg)
	if !ok {
		return sel{frac: selDefault}
	}
	if col.Kind == storage.String {
		if d := col.Dict(); d != nil {
			hits := 0
			for _, c := range x.List {
				if _, present := d.Code(c.S); present {
					hits++
				}
			}
			if hits == 0 {
				return sel{impossible: true}
			}
			return sel{frac: clampSel(float64(hits) / float64(d.Card()))}
		}
		return sel{frac: clampSel(selEq * float64(len(x.List)))}
	}
	if st.NDV > 0 {
		hits := 0
		for _, c := range x.List {
			iv, _, _, kind, ok := constVal(c, col)
			if !ok || kind == expr.KFloat || kind == expr.KString ||
				!st.HasRange || (iv >= st.MinI && iv <= st.MaxI) {
				hits++
			}
		}
		if hits == 0 && st.HasRange {
			return sel{impossible: true}
		}
		return sel{frac: clampSel(float64(hits) / float64(st.NDV))}
	}
	return sel{frac: clampSel(selEq * float64(len(x.List)))}
}

// likeSel estimates a LIKE: an exact pattern is an equality through the
// dictionary; a pure-prefix pattern is a code range; anything else gets
// the default.
func likeSel(x *expr.LikeExpr, r *Relation) sel {
	col, _, ok := colStats(r, x.Arg)
	if !ok || col.Kind != storage.String {
		return sel{frac: selLike}
	}
	d := col.Dict()
	if d == nil {
		return sel{frac: selLike}
	}
	pat := x.Pattern
	if !strings.ContainsAny(pat, "%_") {
		if _, present := d.Code(pat); !present {
			return sel{impossible: true}
		}
		return sel{frac: 1 / float64(d.Card())}
	}
	if i := strings.IndexAny(pat, "%_"); i > 0 && pat[i] == '%' && i == len(pat)-1 {
		// prefix% — the code range [LowerBound(prefix), LowerBound(prefix+∞)).
		prefix := pat[:i]
		lo := d.LowerBound(prefix)
		hi := d.LowerBound(prefix + "\xff\xff\xff\xff")
		if hi <= lo {
			return sel{impossible: true}
		}
		return sel{frac: clampSel(float64(hi-lo) / float64(d.Card()))}
	}
	return sel{frac: selLike}
}

func flip(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.CmpLt:
		return expr.CmpGt
	case expr.CmpLe:
		return expr.CmpGe
	case expr.CmpGt:
		return expr.CmpLt
	case expr.CmpGe:
		return expr.CmpLe
	}
	return op
}
