package opt

import "math"

// estimator holds per-relation cardinality estimates and the observation
// overrides the adaptive replan protocol feeds back.
type estimator struct {
	g *Graph
	// baseCard is the estimated filtered cardinality per relation;
	// impossible marks a provably-empty relation (exactly zero rows).
	baseCard   []float64
	impossible []bool
	// observed is the true build-side cardinality reported by the engine
	// at a pipeline breaker, -1 when not yet observed. Observations
	// replace estimates wholesale — they are exact.
	observed []int64
}

func newEstimator(g *Graph) *estimator {
	est := &estimator{
		g:          g,
		baseCard:   make([]float64, len(g.Rels)),
		impossible: make([]bool, len(g.Rels)),
		observed:   make([]int64, len(g.Rels)),
	}
	for i := range g.Rels {
		r := &g.Rels[i]
		s := relSel(r)
		est.impossible[i] = s.impossible
		est.baseCard[i] = clampSel(s.frac) * float64(r.Table.Rows())
		est.observed[i] = -1
	}
	return est
}

func (est *estimator) override(rel int, observed int64) {
	est.observed[rel] = observed
	if observed == 0 {
		// The build ran and produced nothing: the emptiness is now a
		// fact, not an estimate.
		est.impossible[rel] = true
	}
}

// card returns the working cardinality of a relation: the observation if
// one exists, the estimate otherwise.
func (est *estimator) card(rel int) float64 {
	if est.observed[rel] >= 0 {
		return float64(est.observed[rel])
	}
	if est.impossible[rel] {
		return 0
	}
	return est.baseCard[rel]
}

// empty reports that some relation is provably empty.
func (est *estimator) empty() bool {
	for i := range est.impossible {
		if est.impossible[i] || est.observed[i] == 0 {
			return true
		}
	}
	return false
}

// ndv estimates the distinct count of a relation's column after its
// filter: the base-table NDV capped by the filtered cardinality.
func (est *estimator) ndv(rel int, col string) float64 {
	st := est.g.Rels[rel].Table.MustCol(col).Stats()
	n := float64(st.NDV)
	if n <= 0 {
		n = float64(st.Rows)
	}
	if c := est.card(rel); c < n {
		n = c
	}
	if n < 1 {
		n = 1
	}
	return n
}

// joinCard estimates |S ⋈ r| for an intermediate of cardinality cardS
// joining relation rel over the given edges, with the textbook
// max-containment rule per key pair: divide by max(ndv(S.key), ndv(r.key))
// under key independence. ndvS bounds the set-side NDV by the current
// intermediate cardinality.
func (est *estimator) joinCard(cardS float64, setNDV func(rel int, col string) float64,
	rel int, edges []edgeRef) float64 {
	out := cardS * est.card(rel)
	for _, e := range edges {
		ds := setNDV(e.setRel, e.setCol)
		dr := est.ndv(rel, e.relCol)
		d := math.Max(ds, dr)
		if d < 1 {
			d = 1
		}
		out /= d
	}
	return out
}

// edgeRef is one edge incident to the growing set, oriented.
type edgeRef struct {
	setRel int
	setCol string
	relCol string
}

// connecting returns the edges joining rel to the set, oriented.
func connecting(g *Graph, inSet []bool, rel int) []edgeRef {
	var out []edgeRef
	for _, e := range g.Edges {
		switch {
		case inSet[e.L] && e.R == rel:
			out = append(out, edgeRef{setRel: e.L, setCol: e.LCol, relCol: e.RCol})
		case inSet[e.R] && e.L == rel:
			out = append(out, edgeRef{setRel: e.R, setCol: e.RCol, relCol: e.LCol})
		}
	}
	return out
}

// greedyFrom runs one greedy enumeration from a fixed probe root: at
// every step, add the connected relation minimizing the estimated next
// intermediate cardinality (ties: smaller relation, then lower index, so
// golden tests are deterministic).
func (est *estimator) greedyFrom(start int) (order []int, inters []float64) {
	g := est.g
	n := len(g.Rels)
	order = make([]int, 0, n)
	inSet := make([]bool, n)
	order = append(order, start)
	inSet[start] = true
	cardS := est.card(start)
	// Set-side NDV: base NDV capped by the *current* intermediate
	// cardinality (a join can only lose distinct values).
	setNDV := func(rel int, col string) float64 {
		d := est.ndv(rel, col)
		if cardS < d {
			d = cardS
		}
		if d < 1 {
			d = 1
		}
		return d
	}
	for len(order) < n {
		best, bestCard := -1, math.Inf(1)
		for r := 0; r < n; r++ {
			if inSet[r] {
				continue
			}
			edges := connecting(g, inSet, r)
			if len(edges) == 0 {
				continue
			}
			c := est.joinCard(cardS, setNDV, r, edges)
			if c < bestCard ||
				(c == bestCard && best >= 0 && est.card(r) < est.card(best)) {
				best, bestCard = r, c
			}
		}
		order = append(order, best)
		inSet[best] = true
		cardS = bestCard
		inters = append(inters, bestCard)
	}
	return order, inters
}

// orderCost prices a complete order: the probe-root scan, every
// build-side scan (order-independent), and every intermediate result —
// the tuples that flow through the fused probe pipeline.
func (est *estimator) orderCost(order []int) (cost float64, inters []float64) {
	g := est.g
	n := len(g.Rels)
	inSet := make([]bool, n)
	inSet[order[0]] = true
	cardS := est.card(order[0])
	cost = cardS
	setNDV := func(rel int, col string) float64 {
		d := est.ndv(rel, col)
		if cardS < d {
			d = cardS
		}
		if d < 1 {
			d = 1
		}
		return d
	}
	for _, rel := range order[1:] {
		cost += est.card(rel) // the build
		cardS = est.joinCard(cardS, setNDV, rel, connecting(g, inSet, rel))
		inSet[rel] = true
		inters = append(inters, cardS)
		cost += cardS
	}
	return cost, inters
}

// bestOrder tries every start relation and keeps the cheapest greedy
// order (ties: lexicographically smallest order, for determinism).
func (est *estimator) bestOrder() []int {
	n := len(est.g.Rels)
	if n == 1 {
		return []int{0}
	}
	var best []int
	bestCost := math.Inf(1)
	for s := 0; s < n; s++ {
		order, _ := est.greedyFrom(s)
		cost, _ := est.orderCost(order)
		if best == nil || cost < bestCost ||
			(cost == bestCost && lexLess(order, best)) {
			best, bestCost = order, cost
		}
	}
	return best
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
