package opt_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"aqe/internal/expr"
	"aqe/internal/opt"
	"aqe/internal/plan"
	"aqe/internal/storage"
	"aqe/internal/synth"
	"aqe/internal/volcano"
)

// intTable builds a table of int64 columns from parallel value slices.
func intTable(name string, cols []string, vals [][]int64) *storage.Table {
	sc := make([]*storage.Column, len(cols))
	for i, c := range cols {
		sc[i] = storage.NewColumn(c, storage.Int64)
		for _, v := range vals[i] {
			sc[i].AppendInt64(v)
		}
	}
	t := storage.NewTable(name, sc...)
	t.BuildZoneMaps(storage.DefaultZoneBlockRows)
	return t
}

func seq(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// orderOne prepares a single-relation graph with the given filter bound
// against the scan schema of cols.
func orderOne(t *testing.T, tab *storage.Table, cols []string,
	mkFilter func(sch []plan.ColDef) expr.Expr) *opt.Prepared {
	t.Helper()
	r := opt.Relation{Name: tab.Name, Table: tab, Cols: cols}
	if mkFilter != nil {
		r.Filter = mkFilter(plan.NewScan(tab, cols...).Schema())
	}
	p, err := opt.Order(&opt.Logical{Name: "one", Graph: &opt.Graph{Rels: []opt.Relation{r}}})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCardinalityInt(t *testing.T) {
	// 100 rows, u = 0..99: range and NDV stats are exact.
	tab := intTable("c1", []string{"u"}, [][]int64{seq(100)})
	cases := []struct {
		name     string
		filter   func(sch []plan.ColDef) expr.Expr
		lo, hi   float64
		wantEmpt bool
	}{
		{"none", nil, 100, 100, false},
		{"quarter", func(s []plan.ColDef) expr.Expr {
			return expr.Lt(plan.C(s, "u"), expr.Int(25))
		}, 20, 30, false},
		{"eq", func(s []plan.ColDef) expr.Expr {
			return expr.Eq(plan.C(s, "u"), expr.Int(7))
		}, 0.5, 2, false},
		{"flipped", func(s []plan.ColDef) expr.Expr {
			// const <op> col must estimate like col <op> const.
			return expr.Gt(expr.Int(25), plan.C(s, "u"))
		}, 20, 30, false},
		{"conjunction", func(s []plan.ColDef) expr.Expr {
			// Independent-conjunct model: 0.75 * 0.76 ≈ 0.57, an
			// overestimate of the true 0.50 overlap.
			return expr.And(
				expr.Ge(plan.C(s, "u"), expr.Int(25)),
				expr.Lt(plan.C(s, "u"), expr.Int(75)))
		}, 45, 70, false},
		{"impossible-high", func(s []plan.ColDef) expr.Expr {
			return expr.Gt(plan.C(s, "u"), expr.Int(1000))
		}, 0, 0, true},
		{"impossible-eq", func(s []plan.ColDef) expr.Expr {
			return expr.Eq(plan.C(s, "u"), expr.Int(-5))
		}, 0, 0, true},
		{"not-impossible-is-all", func(s []plan.ColDef) expr.Expr {
			return expr.Not(expr.Gt(plan.C(s, "u"), expr.Int(1000)))
		}, 90, 100, false},
		{"in-list", func(s []plan.ColDef) expr.Expr {
			return expr.In(plan.C(s, "u"), expr.Int(3), expr.Int(4), expr.Int(5000))
		}, 1, 4, false},
		{"in-all-out-of-range", func(s []plan.ColDef) expr.Expr {
			return expr.In(plan.C(s, "u"), expr.Int(5000), expr.Int(6000))
		}, 0, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := orderOne(t, tab, []string{"u"}, tc.filter)
			if p.Empty != tc.wantEmpt {
				t.Fatalf("Empty = %v, want %v", p.Empty, tc.wantEmpt)
			}
			if c := p.EstCard(0); c < tc.lo || c > tc.hi {
				t.Errorf("EstCard = %.2f, want in [%g, %g]", c, tc.lo, tc.hi)
			}
		})
	}
}

func TestCardinalityDict(t *testing.T) {
	s := storage.NewColumn("s", storage.String)
	for i := 0; i < 100; i++ {
		s.AppendString([]string{"aa", "ab", "ba", "bb"}[i%4])
	}
	v := storage.NewColumn("w", storage.Int64)
	for i := 0; i < 100; i++ {
		v.AppendInt64(int64(i))
	}
	tab := storage.NewTable("cd", s, v)
	tab.BuildDicts()
	tab.BuildZoneMaps(storage.DefaultZoneBlockRows)

	cases := []struct {
		name     string
		filter   func(sch []plan.ColDef) expr.Expr
		lo, hi   float64
		wantEmpt bool
	}{
		{"eq-present", func(sc []plan.ColDef) expr.Expr {
			return expr.Eq(plan.C(sc, "s"), expr.Str("ab"))
		}, 20, 30, false}, // 1/NDV = 1/4
		{"eq-absent", func(sc []plan.ColDef) expr.Expr {
			return expr.Eq(plan.C(sc, "s"), expr.Str("zz"))
		}, 0, 0, true},
		{"like-prefix", func(sc []plan.ColDef) expr.Expr {
			return expr.Like(plan.C(sc, "s"), "a%")
		}, 40, 60, false}, // 2 of 4 codes
		{"like-prefix-absent", func(sc []plan.ColDef) expr.Expr {
			return expr.Like(plan.C(sc, "s"), "zz%")
		}, 0, 0, true},
		{"lt-string", func(sc []plan.ColDef) expr.Expr {
			return expr.Lt(plan.C(sc, "s"), expr.Str("b"))
		}, 40, 60, false}, // codes below LowerBound("b"): aa, ab
		{"in-one-hit", func(sc []plan.ColDef) expr.Expr {
			return expr.In(plan.C(sc, "s"), expr.Str("ba"), expr.Str("zz"))
		}, 20, 30, false},
		{"in-no-hit", func(sc []plan.ColDef) expr.Expr {
			return expr.In(plan.C(sc, "s"), expr.Str("zz"), expr.Str("yy"))
		}, 0, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := orderOne(t, tab, []string{"s", "w"}, tc.filter)
			if p.Empty != tc.wantEmpt {
				t.Fatalf("Empty = %v, want %v", p.Empty, tc.wantEmpt)
			}
			if c := p.EstCard(0); c < tc.lo || c > tc.hi {
				t.Errorf("EstCard = %.2f, want in [%g, %g]", c, tc.lo, tc.hi)
			}
		})
	}
}

// starGraph builds fact(1000 rows; k1 uniform 0..99, k2 uniform 0..9)
// joining dimension da (a_k unique 0..99, filtered to ~10 rows) and
// dimension db (b_k unique 0..9, unfiltered).
func starGraph() *opt.Logical {
	rng := rand.New(rand.NewSource(3))
	k1 := make([]int64, 1000)
	k2 := make([]int64, 1000)
	for i := range k1 {
		k1[i] = int64(rng.Intn(100))
		k2[i] = int64(rng.Intn(10))
	}
	f := intTable("f", []string{"f_k1", "f_k2"}, [][]int64{k1, k2})
	da := intTable("da", []string{"a_k", "a_v"}, [][]int64{seq(100), seq(100)})
	db := intTable("db", []string{"b_k"}, [][]int64{seq(10)})
	daRel := opt.Relation{Name: "da", Table: da, Cols: []string{"a_k", "a_v"}}
	daRel.Filter = expr.Lt(plan.C(plan.NewScan(da, "a_k", "a_v").Schema(), "a_v"), expr.Int(10))
	return &opt.Logical{
		Name: "star",
		Graph: &opt.Graph{
			Rels: []opt.Relation{
				{Name: "f", Table: f, Cols: []string{"f_k1", "f_k2"}},
				daRel,
				{Name: "db", Table: db, Cols: []string{"b_k"}},
			},
			Edges: []opt.Edge{
				{L: 0, LCol: "f_k1", R: 1, RCol: "a_k"},
				{L: 0, LCol: "f_k2", R: 2, RCol: "b_k"},
			},
		},
	}
}

func TestGreedyOrderGolden(t *testing.T) {
	p, err := opt.Order(starGraph())
	if err != nil {
		t.Fatal(err)
	}
	// The selective dimension (est ~10 rows, intermediate ~100) must be
	// built before the unselective one (intermediate ~1000); the fact
	// table is the probe root.
	if got := strings.Join(p.OrderNames(), ","); got != "f,da,db" {
		t.Fatalf("order = %s, want f,da,db", got)
	}
	if p.Empty {
		t.Fatal("star graph is not empty")
	}
	// Estimated cards: fact unfiltered, da ~10% of 100.
	if c := p.EstCard(0); c != 1000 {
		t.Errorf("fact card = %.1f, want 1000", c)
	}
	if c := p.EstCard(1); c < 5 || c > 15 {
		t.Errorf("da card = %.1f, want ~10", c)
	}
	// Join.Est must carry the build-side estimates into the plan.
	joins := collectJoins(p.Root)
	if len(joins) != 2 {
		t.Fatalf("expected 2 joins, got %d", len(joins))
	}
	for _, j := range joins {
		if j.Est <= 0 {
			t.Errorf("join of %s has no Est", j.Build.(*plan.Scan).Table.Name)
		}
	}
}

func TestEmptyEarlyExit(t *testing.T) {
	lg := starGraph()
	// Make da provably empty: a_v ranges 0..99, so < -1 is impossible.
	daSchema := plan.NewScan(lg.Graph.Rels[1].Table, "a_k", "a_v").Schema()
	lg.Graph.Rels[1].Filter = expr.Lt(plan.C(daSchema, "a_v"), expr.Int(-1))
	p, err := opt.Order(lg)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Empty {
		t.Fatal("expected provably-empty plan")
	}
	if c := p.EstCard(1); c != 0 {
		t.Fatalf("empty relation card = %.1f, want 0", c)
	}
	rows, err := volcano.Run(p.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("empty plan produced %d rows", len(rows))
	}
}

// collectJoins walks a physical tree gathering its hash joins.
func collectJoins(n plan.Node) []*plan.Join {
	var out []*plan.Join
	if j, ok := n.(*plan.Join); ok {
		out = append(out, j)
	}
	for _, c := range n.Children() {
		out = append(out, collectJoins(c)...)
	}
	return out
}

// buildOf returns the join whose build side scans the named table.
func buildOf(n plan.Node, table string) *plan.Join {
	for _, j := range collectJoins(n) {
		if s, ok := j.Build.(*plan.Scan); ok && s.Table.Name == table {
			return j
		}
	}
	return nil
}

// TestObserveReplan drives the adaptive feedback loop without the
// execution engine: the misestimation workload orders the skewed
// dimension first; feeding back its true build cardinality flips the
// order, and feeding back a confirming observation does not.
func TestObserveReplan(t *testing.T) {
	fact, dimA, dimB := synth.MisestimateTables(4000)
	p, err := opt.Order(synth.MisestimateLogical(fact, dimA, dimB))
	if err != nil {
		t.Fatal(err)
	}
	names := p.OrderNames()
	pos := func(n string) int {
		for i, x := range names {
			if x == n {
				return i
			}
		}
		return -1
	}
	if pos("mdima") > pos("mdimb") {
		t.Fatalf("order %v: expected the misestimated mdima first", names)
	}
	ja := buildOf(p.Root, "mdima")
	if ja == nil {
		t.Fatal("no join builds mdima")
	}
	trueA := int64(float64(dimA.Rows()) * 0.9) // ~99% pass the skewed filter
	if ja.Est >= trueA/8 {
		t.Fatalf("mdima Est = %d — not misestimated vs ~%d", ja.Est, trueA)
	}

	// Confirming observation: order unchanged, no new plan.
	p2, _ := opt.Order(synth.MisestimateLogical(fact, dimA, dimB))
	j2 := buildOf(p2.Root, "mdima")
	p2.Observe(j2, j2.Est)
	if root, changed := p2.Replan(); changed {
		t.Fatalf("confirming observation changed the order: %v", root)
	}

	// Correcting observation: mdimb must move ahead of mdima.
	p.Observe(ja, trueA)
	root, changed := p.Replan()
	if !changed {
		t.Fatal("correcting observation did not change the order")
	}
	names = p.OrderNames()
	if pos("mdimb") > pos("mdima") {
		t.Fatalf("replanned order %v: expected mdimb first", names)
	}
	if root != p.Root {
		t.Fatal("Replan root mismatch")
	}
	// The new plan's mdima join must carry the observed cardinality.
	if ja2 := buildOf(root, "mdima"); ja2 == nil || ja2.Est != trueA {
		t.Fatalf("observed cardinality not carried into the new plan")
	}
}

// canonRows renders a volcano result with columns sorted by name and rows
// sorted, so results are comparable across join orders (the join output
// column order depends on the order).
func canonRows(rows [][]expr.Datum, schema []plan.ColDef) string {
	idx := make([]int, len(schema))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return schema[idx[a]].Name < schema[idx[b]].Name })
	out := make([]string, len(rows))
	for i, r := range rows {
		var sb strings.Builder
		for _, c := range idx {
			fmt.Fprintf(&sb, "%d|%q|%g|", r[c].I, r[c].S, r[c].F)
		}
		out[i] = sb.String()
	}
	sort.Strings(out)
	return strings.Join(out, "\n")
}

// randLogical builds a random star/chain/cycle graph over fresh uniform
// tables with optional uniform filters.
func randLogical(rng *rand.Rand, shape string, n, rows, dom int) *opt.Logical {
	rels := make([]opt.Relation, n)
	for i := range rels {
		name := fmt.Sprintf("g%d", i)
		tab := synth.GraphTable(name, rows, dom, rng.Int63())
		cols := []string{name + "_j0", name + "_j1", name + "_v"}
		rels[i] = opt.Relation{Name: name, Table: tab, Cols: cols}
		if rng.Intn(2) == 0 {
			// v is uniform over [0, 1000): the estimate is near-exact.
			cut := int64(100 + rng.Intn(900))
			sch := plan.NewScan(tab, cols...).Schema()
			rels[i].Filter = expr.Lt(plan.C(sch, name+"_v"), expr.Int(cut))
		}
	}
	// Column assignment is deterministic so no edge is transitively
	// implied by the others (e.g. a cycle closed over the same columns):
	// the property being tested is that the independence model holds on
	// independent uniform data.
	jcol := func(i, which int) string { return fmt.Sprintf("g%d_j%d", i, which) }
	var edges []opt.Edge
	switch shape {
	case "star":
		for i := 1; i < n; i++ {
			edges = append(edges, opt.Edge{L: 0, LCol: jcol(0, i%2), R: i, RCol: jcol(i, 0)})
		}
	case "chain":
		for i := 1; i < n; i++ {
			edges = append(edges, opt.Edge{L: i - 1, LCol: jcol(i-1, 1), R: i, RCol: jcol(i, 0)})
		}
	default: // cycle: chain plus a closing edge over otherwise-unused columns
		for i := 1; i < n; i++ {
			edges = append(edges, opt.Edge{L: i - 1, LCol: jcol(i-1, 1), R: i, RCol: jcol(i, 0)})
		}
		edges = append(edges, opt.Edge{L: n - 1, LCol: jcol(n-1, 1), R: 0, RCol: jcol(0, 0)})
	}
	return &opt.Logical{Name: shape, Graph: &opt.Graph{Rels: rels, Edges: edges}}
}

// TestRandomGraphProperty checks, over random graphs of every shape, that
// (a) the optimizer's plan and random valid orders agree with the volcano
// oracle row-for-row, and (b) on uniform data the estimated join
// cardinality is within a constant factor of the truth.
func TestRandomGraphProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	shapes := []string{"star", "chain", "cycle"}
	iters := 12
	if testing.Short() {
		iters = 6
	}
	for iter := 0; iter < iters; iter++ {
		shape := shapes[iter%len(shapes)]
		n := 3 + rng.Intn(2)
		// dom ~ rows/2 keeps per-join fanout near 2, so intermediates stay
		// small enough for the volcano oracle while estimates stay testable.
		nrows := 120 + rng.Intn(120)
		lg := randLogical(rng, shape, n, nrows, nrows/2)
		p, err := opt.Order(lg)
		if err != nil {
			t.Fatalf("iter %d (%s): %v", iter, shape, err)
		}
		rows, err := volcano.Run(p.Root)
		if err != nil {
			t.Fatalf("iter %d (%s): volcano: %v", iter, shape, err)
		}
		want := canonRows(rows, p.Root.Schema())
		for ri := 0; ri < 2; ri++ {
			root, err := opt.RandomOrder(lg, rng.Intn)
			if err != nil {
				t.Fatalf("iter %d: RandomOrder: %v", iter, err)
			}
			got, err := volcano.Run(root)
			if err != nil {
				t.Fatalf("iter %d: volcano(random): %v", iter, err)
			}
			if canonRows(got, root.Schema()) != want {
				t.Fatalf("iter %d (%s): random order diverged from optimizer order", iter, shape)
			}
		}
		// Estimation bound: uniform independent columns, so the model's
		// assumptions hold; allow a constant factor plus additive noise.
		est := p.EstJoinCard()
		actual := float64(len(rows))
		const factor, slack = 8.0, 64.0
		if est > factor*actual+slack || actual > factor*est+slack {
			t.Errorf("iter %d (%s): estimated join card %.1f vs actual %.0f — outside x%g+%g",
				iter, shape, est, actual, factor, slack)
		}
	}
}

// FuzzJoinGraph decodes arbitrary bytes into a small join graph and runs
// the orderer: it must never panic, and any order it produces must be a
// permutation with every prefix connected.
func FuzzJoinGraph(f *testing.F) {
	const nTables = 4
	tables := make([]*storage.Table, nTables)
	for i := range tables {
		tables[i] = synth.GraphTable(fmt.Sprintf("z%d", i), 64, 8, int64(i+1))
	}
	f.Add([]byte{2, 0, 0, 1, 1})
	f.Add([]byte{3, 1, 0, 1, 9, 1, 2, 3})
	f.Add([]byte{4, 0, 0, 1, 0, 1, 2, 200, 2, 3, 7, 3, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		n := 2 + int(data[0])%3 // 2..4 relations
		rels := make([]opt.Relation, n)
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("z%d", i)
			rels[i] = opt.Relation{Name: name, Table: tables[i],
				Cols: []string{name + "_j0", name + "_j1", name + "_v"}}
		}
		var edges []opt.Edge
		for i := 1; i+2 < len(data); i += 3 {
			l, r, sel := int(data[i])%n, int(data[i+1])%n, data[i+2]
			e := opt.Edge{L: l, R: r,
				LCol: fmt.Sprintf("z%d_j%d", l, sel&1),
				RCol: fmt.Sprintf("z%d_j%d", r, (sel>>1)&1)}
			edges = append(edges, e)
			if sel&4 != 0 {
				// Mix in a filter (possibly impossible: v ranges 0..999).
				sch := plan.NewScan(tables[l], rels[l].Cols...).Schema()
				rels[l].Filter = expr.Lt(plan.C(sch, rels[l].Name+"_v"),
					expr.Int(int64(sel)*8-64))
			}
		}
		lg := &opt.Logical{Name: "fuzz", Graph: &opt.Graph{Rels: rels, Edges: edges}}
		p, err := opt.Order(lg)
		if err != nil {
			return // rejected graphs (disconnected, self-edges) are fine
		}
		checkOrder := func(order []int, label string) {
			if len(order) != n {
				t.Fatalf("%s: order %v is not a permutation of %d relations", label, order, n)
			}
			seen := make([]bool, n)
			for i, r := range order {
				if r < 0 || r >= n || seen[r] {
					t.Fatalf("%s: invalid order %v", label, order)
				}
				seen[r] = true
				if i == 0 {
					continue
				}
				connected := false
				for _, e := range edges {
					other := -1
					if e.L == r {
						other = e.R
					} else if e.R == r {
						other = e.L
					}
					if other < 0 {
						continue
					}
					for _, prev := range order[:i] {
						if prev == other {
							connected = true
						}
					}
				}
				if !connected {
					t.Fatalf("%s: order %v joins relation %d with no connecting edge", label, order, r)
				}
			}
		}
		checkOrder(p.JoinOrder, "Order")
		if _, err := opt.RandomOrder(lg, rand.New(rand.NewSource(int64(len(data)))).Intn); err != nil {
			t.Fatalf("RandomOrder failed on a graph Order accepted: %v", err)
		}
	})
}
