// Package opt is the cost-based join orderer: it consumes a *logical*
// join graph — base relations with pushed-down filters plus equi-join
// edges — and produces the physical left-deep plan.Node tree the engines
// execute. Ordering is greedy selectivity-first enumeration (try every
// start relation, repeatedly add the connected relation minimizing the
// estimated intermediate cardinality), the shape that fits the engine's
// statistics regime: zone maps give global min/max for free, dictionaries
// give exact string NDV, and there is nothing else — no histograms, no
// samples. When a filter is provably unsatisfiable (an impossible
// conjunct against the zone-map range or a string literal absent from the
// dictionary), the relation's cardinality is exactly zero and the orderer
// early-exits: the empty relation is built first and every other scan is
// short-circuited with a false filter.
//
// The orderer stays adaptive after planning (the paper's idea applied to
// plans rather than tiers): Prepared implements the execution engine's
// Replanner hook, so observed build-side cardinalities flow back in as
// overrides and Replan re-runs the same greedy enumeration over the
// corrected estimates mid-query.
package opt

import (
	"fmt"
	"math"
	"sort"

	"aqe/internal/expr"
	"aqe/internal/plan"
	"aqe/internal/storage"
)

// Relation is one base input of a logical join graph: a table scan of the
// named columns with an optional pushed-down filter. The filter is bound
// against the scan's output schema (the Cols order). Column names must be
// unique across the graph's relations — they name join payloads in the
// physical plan.
type Relation struct {
	Name   string
	Table  *storage.Table
	Cols   []string
	Filter expr.Expr // nil = none
}

// Edge is one equi-join predicate between two relations, by column name.
// Multiple edges between the same pair — or edges closing a cycle — are
// combined into one multi-key hash join when the second endpoint enters
// the ordered prefix.
type Edge struct {
	L, R       int // relation indices
	LCol, RCol string
}

// Logical is a logical query: the join graph plus a closure building the
// rest of the plan (residual filters, aggregation, projection, ordering)
// on top of the join output. Finish must resolve columns by name — the
// join output schema's column order depends on the join order.
type Logical struct {
	Name   string
	Graph  *Graph
	Finish func(plan.Node) plan.Node // nil = identity
}

// Graph is a logical join graph.
type Graph struct {
	Rels  []Relation
	Edges []Edge
}

// validate checks structural invariants shared by Order and RandomOrder.
func (g *Graph) validate() error {
	if len(g.Rels) == 0 {
		return fmt.Errorf("opt: empty join graph")
	}
	seen := map[string]string{}
	for _, r := range g.Rels {
		if r.Table == nil {
			return fmt.Errorf("opt: relation %q has no table", r.Name)
		}
		if len(r.Cols) == 0 {
			return fmt.Errorf("opt: relation %q scans no columns", r.Name)
		}
		for _, c := range r.Cols {
			if r.Table.Col(c) == nil {
				return fmt.Errorf("opt: relation %q: table %s has no column %q",
					r.Name, r.Table.Name, c)
			}
			if prev, dup := seen[c]; dup {
				return fmt.Errorf("opt: column %q appears in relations %q and %q; "+
					"graph columns must be uniquely named", c, prev, r.Name)
			}
			seen[c] = r.Name
		}
	}
	for _, e := range g.Edges {
		if e.L < 0 || e.L >= len(g.Rels) || e.R < 0 || e.R >= len(g.Rels) {
			return fmt.Errorf("opt: edge references relation out of range")
		}
		if e.L == e.R {
			return fmt.Errorf("opt: self-edge on relation %q", g.Rels[e.L].Name)
		}
		if !hasCol(g.Rels[e.L].Cols, e.LCol) || !hasCol(g.Rels[e.R].Cols, e.RCol) {
			return fmt.Errorf("opt: edge %s.%s = %s.%s references unscanned column",
				g.Rels[e.L].Name, e.LCol, g.Rels[e.R].Name, e.RCol)
		}
		lt := g.Rels[e.L].Table.MustCol(e.LCol)
		rt := g.Rels[e.R].Table.MustCol(e.RCol)
		if lt.Kind == storage.Float64 || rt.Kind == storage.Float64 ||
			lt.Kind == storage.String || rt.Kind == storage.String {
			return fmt.Errorf("opt: edge %s.%s = %s.%s: join keys must be integer-representable",
				g.Rels[e.L].Name, e.LCol, g.Rels[e.R].Name, e.RCol)
		}
	}
	// Connectivity: every relation must be reachable from relation 0, or
	// some join would degenerate into a cross product.
	if n := len(g.Rels); n > 1 {
		reach := make([]bool, n)
		reach[0] = true
		for changed := true; changed; {
			changed = false
			for _, e := range g.Edges {
				if reach[e.L] != reach[e.R] {
					reach[e.L], reach[e.R] = true, true
					changed = true
				}
			}
		}
		for i, ok := range reach {
			if !ok {
				return fmt.Errorf("opt: no join condition connects relation %q; "+
					"cross joins are not supported", g.Rels[i].Name)
			}
		}
	}
	return nil
}

func hasCol(cols []string, c string) bool {
	for _, x := range cols {
		if x == c {
			return true
		}
	}
	return false
}

// Prepared is an ordered query: the chosen physical plan plus the
// estimation state the adaptive replan protocol feeds back into. It
// implements the execution engine's Replanner interface.
type Prepared struct {
	l *Logical

	// Root is the current physical plan (joins under Finish's operators).
	Root plan.Node
	// JoinOrder lists relation indices in build order: JoinOrder[0] is
	// the probe root (never built), each later relation is the build side
	// of one hash join.
	JoinOrder []int
	// Empty reports that some relation's filter is provably
	// unsatisfiable (impossible conjunct against zone maps / dictionary):
	// the whole join result is empty, and every scan of the physical plan
	// is short-circuited with a false filter.
	Empty bool

	est *estimator
	// joinRel maps each join node of the current Root to the relation
	// index it builds, so observations can be attributed.
	joinRel map[*plan.Join]int
}

// Order runs the greedy enumeration and builds the physical plan.
func Order(l *Logical) (*Prepared, error) {
	g := l.Graph
	if err := g.validate(); err != nil {
		return nil, err
	}
	p := &Prepared{l: l, est: newEstimator(g)}
	p.reorder()
	return p, nil
}

// reorder (re-)runs greedy enumeration under the estimator's current
// cardinalities and rebuilds the physical plan.
func (p *Prepared) reorder() {
	order := p.est.bestOrder()
	p.JoinOrder = order
	p.Empty = p.est.empty()
	p.buildPhysical()
}

// EstCard returns the estimated (or observed, once overridden) filtered
// cardinality of relation i.
func (p *Prepared) EstCard(i int) float64 { return p.est.card(i) }

// EstJoinCard returns the estimated cardinality of the full join result
// under the current order.
func (p *Prepared) EstJoinCard() float64 {
	_, inters := p.est.orderCost(p.JoinOrder)
	if len(inters) == 0 {
		return p.est.card(p.JoinOrder[0])
	}
	return inters[len(inters)-1]
}

// OrderNames renders the chosen order as relation names, probe root first.
func (p *Prepared) OrderNames() []string {
	out := make([]string, len(p.JoinOrder))
	for i, r := range p.JoinOrder {
		out[i] = p.l.Graph.Rels[r].Name
	}
	return out
}

// Observe feeds one observed build-side cardinality back into the
// estimator (the engine calls this at every hash-table finalize). Joins
// not produced by this Prepared — hand-built plans — are ignored.
func (p *Prepared) Observe(j *plan.Join, observed int64) {
	if rel, ok := p.joinRel[j]; ok {
		p.est.override(rel, observed)
	}
}

// Replan re-runs the greedy enumeration under the observed cardinalities.
// It returns the new plan root and true when the order changed; when the
// corrected estimates confirm the current order, it returns (nil, false)
// and the running query proceeds unchanged.
func (p *Prepared) Replan() (plan.Node, bool) {
	old := append([]int(nil), p.JoinOrder...)
	p.reorder()
	same := len(old) == len(p.JoinOrder)
	for i := range old {
		if !same || old[i] != p.JoinOrder[i] {
			same = false
			break
		}
	}
	if same {
		return nil, false
	}
	return p.Root, true
}

// buildPhysical constructs the left-deep physical tree for the current
// JoinOrder: the build side of every join is a single base-relation scan,
// so the observed hash-table count at its breaker is exactly the true
// filtered cardinality of one relation — the cleanest possible feedback
// signal for Replan.
func (p *Prepared) buildPhysical() {
	g := p.l.Graph
	order := p.JoinOrder
	scan := func(rel int) *plan.Scan {
		r := g.Rels[rel]
		s := plan.NewScan(r.Table, r.Cols...)
		if r.Filter != nil {
			s.Where(r.Filter)
		}
		if p.Empty {
			// The join result is provably empty: short-circuit every scan
			// so no hash table is built and no morsel survives its filter.
			s.Where(expr.Bool(false))
		}
		return s
	}
	p.joinRel = make(map[*plan.Join]int, len(order)-1)
	var root plan.Node = scan(order[0])
	inSet := map[int]bool{order[0]: true}
	for _, rel := range order[1:] {
		s := scan(rel)
		var bk, pk []expr.Expr
		for _, e := range g.Edges {
			var setCol, relCol string
			switch {
			case inSet[e.L] && e.R == rel:
				setCol, relCol = e.LCol, e.RCol
			case inSet[e.R] && e.L == rel:
				setCol, relCol = e.RCol, e.LCol
			default:
				continue
			}
			pk = append(pk, plan.C(root.Schema(), setCol))
			bk = append(bk, plan.C(s.Schema(), relCol))
		}
		j := plan.NewJoin(plan.Inner, s, root, bk, pk, append([]string(nil), g.Rels[rel].Cols...))
		j.Est = estInt(p.est.card(rel))
		p.joinRel[j] = rel
		root = j
		inSet[rel] = true
	}
	if p.l.Finish != nil {
		root = p.l.Finish(root)
	}
	p.Root = root
}

// estInt clamps a cardinality estimate into Join.Est's convention:
// at least 1 (0 means "no estimate").
func estInt(card float64) int64 {
	v := int64(math.Round(card))
	if v < 1 {
		v = 1
	}
	return v
}

// RandomOrder builds the physical plan for a uniformly random *valid*
// order (every prefix connected) drawn from the given source — the
// join-order-invariance oracle runs these against the optimizer's choice.
func RandomOrder(l *Logical, intn func(n int) int) (plan.Node, error) {
	g := l.Graph
	if err := g.validate(); err != nil {
		return nil, err
	}
	n := len(g.Rels)
	order := make([]int, 0, n)
	inSet := make([]bool, n)
	add := func(r int) { order = append(order, r); inSet[r] = true }
	add(intn(n))
	for len(order) < n {
		var frontier []int
		for r := 0; r < n; r++ {
			if inSet[r] {
				continue
			}
			for _, e := range g.Edges {
				if (e.L == r && inSet[e.R]) || (e.R == r && inSet[e.L]) {
					frontier = append(frontier, r)
					break
				}
			}
		}
		sort.Ints(frontier)
		add(frontier[intn(len(frontier))])
	}
	p := &Prepared{l: l, est: newEstimator(g), JoinOrder: order}
	p.buildPhysical()
	return p.Root, nil
}
