package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"aqe"
)

// testServer is one running server on ephemeral localhost ports.
type testServer struct {
	srv      *Server
	db       *aqe.DB
	httpAddr string
	binAddr  string
}

func (ts *testServer) url(path string) string { return "http://" + ts.httpAddr + path }

// startServer boots a server over a fresh DB. The caller owns shutdown
// via t.Cleanup.
func startServer(t testing.TB, dbOpts aqe.Options, sf float64, srvOpts Options) *testServer {
	t.Helper()
	db := aqe.Open(dbOpts)
	if sf > 0 {
		db.LoadTPCH(sf)
	}
	srvOpts.DB = db
	srv := New(srvOpts)
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	binLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeHTTP(httpLn)
	go srv.ServeBinary(binLn)
	ts := &testServer{srv: srv, db: db,
		httpAddr: httpLn.Addr().String(), binAddr: binLn.Addr().String()}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		ts.srv.Shutdown(ctx)
	})
	return ts
}

// httpResult is a decoded NDJSON response stream.
type httpResult struct {
	Header  wireHeader
	Rows    [][]string
	Trailer wireTrailer
}

// httpQuery posts one request and decodes the NDJSON stream.
func httpQuery(t testing.TB, ts *testServer, req Request) (*httpResult, error) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.url("/query"), "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := readAll(resp.Body)
		return nil, fmt.Errorf("http %d: %s", resp.StatusCode, strings.TrimSpace(msg))
	}
	out := &httpResult{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), DefaultMaxFrame)
	line := 0
	for sc.Scan() {
		raw := sc.Bytes()
		if line == 0 {
			if err := json.Unmarshal(raw, &out.Header); err != nil {
				t.Fatalf("header line: %v", err)
			}
		} else {
			// Chunk or trailer: sniff by the "done"/"error" keys.
			var tr wireTrailer
			if json.Unmarshal(raw, &tr) == nil && (tr.Done || tr.Error != "") {
				out.Trailer = tr
			} else {
				var ch wireChunk
				if err := json.Unmarshal(raw, &ch); err != nil {
					t.Fatalf("chunk line: %v", err)
				}
				out.Rows = append(out.Rows, ch.Rows...)
			}
		}
		line++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if out.Trailer.Error != "" {
		return out, fmt.Errorf("%s", out.Trailer.Error)
	}
	if !out.Trailer.Done {
		return out, fmt.Errorf("stream ended without a trailer")
	}
	return out, nil
}

func readAll(r interface{ Read([]byte) (int, error) }) (string, error) {
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			return b.String(), nil
		}
	}
}

func TestHTTPQueryStream(t *testing.T) {
	ts := startServer(t, aqe.Options{}, 0.01, Options{ChunkRows: 16})
	res, err := httpQuery(t, ts, Request{
		SQL: `SELECT l_returnflag, count(*) AS n, sum(l_extendedprice) AS s
		      FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag`})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"l_returnflag", "n", "s"}; !equalStrings(res.Header.Cols, want) {
		t.Fatalf("cols %v, want %v", res.Header.Cols, want)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows, want 3 (returnflags A/N/R)", len(res.Rows))
	}
	if res.Trailer.Stats == nil || res.Trailer.Stats.Rows != 3 {
		t.Fatalf("trailer stats %+v, want rows=3", res.Trailer.Stats)
	}
	// The header announces engine types.
	if res.Header.Types[0] != "char" || res.Header.Types[1] != "int" {
		t.Fatalf("types %v", res.Header.Types)
	}
}

func TestHTTPErrors(t *testing.T) {
	ts := startServer(t, aqe.Options{}, 0.01, Options{})
	cases := []Request{
		{},                              // neither sql nor tpch
		{SQL: "SELECT FROM nothing ("},  // parse error
		{SQL: "SELECT * FROM no_table"}, // unknown table
		{TPCH: 23},                      // out of range
		{SQL: "EXECUTE nosuch (1)"},     // unknown prepared statement
	}
	for _, req := range cases {
		if _, err := httpQuery(t, ts, req); err == nil {
			t.Errorf("request %+v: expected an error", req)
		}
	}
	// Bad JSON body is a 400, not a hang or a panic.
	resp, err := http.Post(ts.url("/query"), "application/json",
		strings.NewReader(`{"sql": 123`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d, want 400", resp.StatusCode)
	}
}

func TestHTTPPreparedStatements(t *testing.T) {
	ts := startServer(t, aqe.Options{}, 0.01, Options{})
	run := func(sql string) (*httpResult, error) {
		return httpQuery(t, ts, Request{SQL: sql, Tenant: "t1"})
	}
	if _, err := run(`PREPARE q AS SELECT count(*) AS n FROM lineitem WHERE l_quantity > $1`); err != nil {
		t.Fatal(err)
	}
	lo, err := run(`EXECUTE q (49)`)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := run(`EXECUTE q (1)`)
	if err != nil {
		t.Fatal(err)
	}
	if lo.Rows[0][0] >= hi.Rows[0][0] && lo.Rows[0][0] != "0" {
		t.Fatalf("quantity>49 count %s not below quantity>1 count %s", lo.Rows[0][0], hi.Rows[0][0])
	}
	// Second execution is served entirely from the plan cache.
	again, err := run(`EXECUTE q (25)`)
	if err != nil {
		t.Fatal(err)
	}
	st := again.Trailer.Stats
	if !st.CacheHit || st.TranslateNS != 0 || st.CompileNS != 0 {
		t.Fatalf("warm EXECUTE: cacheHit=%v translate=%d compile=%d, want hit with zero work",
			st.CacheHit, st.TranslateNS, st.CompileNS)
	}
	// Prepared statements are tenant-scoped over HTTP.
	if _, err := httpQuery(t, ts, Request{SQL: `EXECUTE q (1)`, Tenant: "other"}); err == nil {
		t.Fatal("tenant isolation: q visible to another tenant")
	}
	if _, err := run(`DEALLOCATE q`); err != nil {
		t.Fatal(err)
	}
	if _, err := run(`EXECUTE q (1)`); err == nil {
		t.Fatal("EXECUTE after DEALLOCATE succeeded")
	}
}

func TestBinaryProtocol(t *testing.T) {
	ts := startServer(t, aqe.Options{}, 0.01, Options{ChunkRows: 32})
	cl, err := Dial(ts.binAddr, "gold")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := cl.Query(`SELECT l_returnflag, count(*) AS n FROM lineitem
	                      GROUP BY l_returnflag ORDER BY l_returnflag`, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Stats.Rows != 3 {
		t.Fatalf("%d rows (stats %d), want 3", len(res.Rows), res.Stats.Rows)
	}
	if res.Cols[0] != "l_returnflag" {
		t.Fatalf("cols %v", res.Cols)
	}
	// Statement errors keep the connection usable.
	if _, err := cl.Query("SELECT bogus (", 0); err == nil {
		t.Fatal("bad SQL did not error")
	}
	if _, err := cl.Query("SELECT count(*) AS n FROM orders", 0); err != nil {
		t.Fatalf("connection unusable after statement error: %v", err)
	}
	// Prepared statements: binding values travel as SQL literals.
	if err := cl.Prepare("byflag", `SELECT count(*) AS n FROM lineitem WHERE l_returnflag = $1`); err != nil {
		t.Fatal(err)
	}
	a, err := cl.Execute("byflag", []string{"'A'"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := cl.Execute("byflag", []string{"'R'"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows[0][0].I <= 0 || warm.Rows[0][0].I <= 0 {
		t.Fatalf("flag counts %d / %d, want positive", a.Rows[0][0].I, warm.Rows[0][0].I)
	}
	if !warm.Stats.CacheHit || warm.Stats.TranslateNS != 0 || warm.Stats.CompileNS != 0 {
		t.Fatalf("warm EXECUTE over wire: %+v, want cache hit with zero translate/compile", warm.Stats)
	}
	if err := cl.Deallocate("byflag"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Execute("byflag", []string{"'A'"}, 0); err == nil {
		t.Fatal("EXECUTE after Deallocate succeeded")
	}
	// The Stats endpoint reflects the admitted tenant.
	resp, err := http.Get(ts.url("/stats"))
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Admission struct {
			Tenants map[string]struct{ Admitted int64 }
		}
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Admission.Tenants["gold"].Admitted == 0 {
		t.Fatalf("tenant gold not visible in /stats: %+v", stats.Admission.Tenants)
	}
}

func TestRequestDeadline(t *testing.T) {
	ts := startServer(t, aqe.Options{}, 0.02, Options{})
	// A 1ms deadline on a multi-join query must cancel, not complete.
	_, err := httpQuery(t, ts, Request{TPCH: 9, TimeoutMS: 1})
	if err == nil {
		t.Skip("query finished inside 1ms; machine too fast to observe cancellation")
	}
	if !strings.Contains(err.Error(), "cancel") && !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("deadline error %q does not mention cancellation", err)
	}
	// The engine stays healthy for the next query.
	if _, err := httpQuery(t, ts, Request{SQL: "SELECT count(*) AS n FROM region"}); err != nil {
		t.Fatalf("query after cancelled query: %v", err)
	}
}

func TestGracefulDrain(t *testing.T) {
	ts := startServer(t, aqe.Options{}, 0.01, Options{})
	// A busy binary connection: start a query, then shut down mid-flight.
	cl, err := Dial(ts.binAddr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	var qerr error
	var qres *ClientResult
	go func() {
		defer wg.Done()
		qres, qerr = cl.TPCH(1, 0)
	}()
	time.Sleep(20 * time.Millisecond) // let the query get admitted
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ts.srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	// The in-flight query either completed (drained) or the connection
	// closed if it had not started; it must not hang, and a completed
	// result must be whole.
	if qerr == nil && qres.Stats.Rows != int64(len(qres.Rows)) {
		t.Fatalf("drained query returned a torn result: %d of %d rows", len(qres.Rows), qres.Stats.Rows)
	}
	// New work is refused on both protocols.
	if _, err := httpQuery(t, ts, Request{SQL: "SELECT count(*) AS n FROM region"}); err == nil {
		t.Fatal("HTTP accepted a query after drain")
	}
	// The binary listener is closed: a fresh connection is refused, or —
	// if the dial lands in a lingering accept backlog — its first query
	// fails instead of executing.
	if cl2, err := Dial(ts.binAddr, ""); err == nil {
		if _, err := cl2.Query("SELECT count(*) AS n FROM region", 0); err == nil {
			t.Fatal("binary protocol accepted a query after drain")
		}
		cl2.Close()
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
