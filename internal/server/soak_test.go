package server

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"aqe"
)

// TestSoakRandomSessions hammers the server with 200 short random
// client lifecycles across 8 tenants — connect, prepare, execute with
// random bindings, plain queries, aggressive deadlines, and abrupt
// disconnects — then checks that (a) no goroutines leaked, (b) no
// admission tickets leaked, and (c) the plan cache is still consistent:
// a parameterized statement re-executed after the soak still hits its
// one cached entry and returns correct rows.
func TestSoakRandomSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	ts := startServer(t, aqe.Options{
		MaxConcurrent:          6,
		MaxConcurrentPerTenant: 2,
		TenantWeights:          map[string]int{"t0": 4, "t1": 2},
	}, 0.005, Options{DefaultTimeout: 5 * time.Second, ChunkRows: 32})

	baseline := runtime.NumGoroutine()

	const iterations = 200
	const parallel = 8
	var wg sync.WaitGroup
	errs := make(chan error, iterations)
	sem := make(chan struct{}, parallel)
	for i := 0; i < iterations; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := soakIteration(ts, i); err != nil {
				errs <- fmt.Errorf("iteration %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Goroutine leak check: allow the runtime a moment to reap
	// connection handlers, then require the count back near baseline.
	deadline := time.Now().Add(5 * time.Second)
	var n int
	for {
		runtime.GC()
		n = runtime.NumGoroutine()
		if n <= baseline+5 || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if n > baseline+5 {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutine leak: %d now vs %d baseline\n%s",
			n, baseline, buf[:runtime.Stack(buf, true)])
	}
	if st := ts.db.Engine().SchedStats(); st.Running != 0 || st.Waiting != 0 {
		t.Fatalf("admission tickets leaked: running=%d waiting=%d", st.Running, st.Waiting)
	}

	// Post-soak cache consistency: the shared statement still resolves
	// to one healthy cache entry and produces correct results.
	cl, err := Dial(ts.binAddr, "t0")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Prepare("post", soakStmt); err != nil {
		t.Fatal(err)
	}
	all, err := cl.Execute("post", []string{"0"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	none, err := cl.Execute("post", []string{"999999999"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !none.Stats.CacheHit || none.Stats.TranslateNS != 0 || none.Stats.CompileNS != 0 {
		t.Fatalf("post-soak EXECUTE missed the cache: %+v", none.Stats)
	}
	if all.Rows[0][0].I <= 0 || none.Rows[0][0].I != 0 {
		t.Fatalf("post-soak results wrong: all=%d none=%d", all.Rows[0][0].I, none.Rows[0][0].I)
	}
}

// soakStmt is the parameterized statement every soak client prepares —
// all sessions share its single plan-cache entry.
const soakStmt = `SELECT count(*) AS n FROM orders WHERE o_totalprice > $1`

// soakIteration is one random client lifecycle. Errors that are part of
// the chaos being injected (deadline cancellations, queries racing a
// closed connection) are not failures; protocol corruption is.
func soakIteration(ts *testServer, i int) error {
	rng := rand.New(rand.NewSource(int64(i) * 7919))
	tenant := fmt.Sprintf("t%d", rng.Intn(8))
	cl, err := Dial(ts.binAddr, tenant)
	if err != nil {
		return fmt.Errorf("dial: %w", err)
	}
	defer cl.Close()
	steps := 1 + rng.Intn(4)
	for s := 0; s < steps; s++ {
		switch rng.Intn(5) {
		case 0: // plain query
			res, err := cl.Query(`SELECT o_orderstatus, count(*) AS n FROM orders
			                      GROUP BY o_orderstatus ORDER BY o_orderstatus`, 0)
			if err != nil {
				return fmt.Errorf("query: %w", err)
			}
			if int64(len(res.Rows)) != res.Stats.Rows {
				return fmt.Errorf("torn result: %d rows vs stats %d", len(res.Rows), res.Stats.Rows)
			}
		case 1: // prepare + execute with a random binding
			name := fmt.Sprintf("s%d_%d", i, s)
			if err := cl.Prepare(name, soakStmt); err != nil {
				return fmt.Errorf("prepare: %w", err)
			}
			lit := fmt.Sprintf("%d.%02d", rng.Intn(500000), rng.Intn(100))
			if _, err := cl.Execute(name, []string{lit}, 0); err != nil {
				return fmt.Errorf("execute: %w", err)
			}
			if rng.Intn(2) == 0 {
				if err := cl.Deallocate(name); err != nil {
					return fmt.Errorf("deallocate: %w", err)
				}
			}
		case 2: // aggressive deadline: cancellation is fine, corruption is not
			res, err := cl.TPCH(1+rng.Intn(22), time.Duration(1+rng.Intn(3))*time.Millisecond)
			if err == nil && int64(len(res.Rows)) != res.Stats.Rows {
				return fmt.Errorf("torn result under deadline")
			}
			if err != nil {
				return nil // statement errors close nothing; but keep it simple: stop this client
			}
		case 3: // bogus statement: connection must survive
			if _, err := cl.Execute("never_prepared", []string{"1"}, 0); err == nil {
				return fmt.Errorf("bogus EXECUTE succeeded")
			}
		case 4: // abrupt disconnect mid-lifecycle
			cl.Close()
			return nil
		}
	}
	return nil
}
