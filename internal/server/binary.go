package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"

	"aqe"
	"aqe/internal/exec"
	"aqe/internal/expr"
)

// binConn is one binary-protocol connection: a buffered socket plus a
// private session (tenant set by Hello, prepared statements live and die
// with the connection).
type binConn struct {
	c    net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	sess *aqe.Session
	busy atomic.Bool // a request is executing (drain waits for it)
}

// ServeBinary attaches a binary-protocol listener and blocks accepting
// connections until Shutdown closes it or accept fails.
func (s *Server) ServeBinary(ln net.Listener) error {
	s.mu.Lock()
	s.binLns = append(s.binLns, ln)
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		bc := &binConn{c: c, br: bufio.NewReader(c), bw: bufio.NewWriter(c),
			sess: s.db.NewSession("")}
		s.mu.Lock()
		s.conns[bc] = struct{}{}
		s.mu.Unlock()
		s.binWG.Add(1)
		go func() {
			defer s.binWG.Done()
			s.serveConn(bc)
		}()
	}
}

// serveConn runs the per-connection frame loop. Protocol violations
// (oversized or truncated frames, unknown types) send an Error frame and
// close the connection; statement errors send an Error frame and keep
// it. Every decoded request runs through runRequest, so panics and
// deadlines are handled exactly as over HTTP — a malformed frame can
// never leak an admission ticket because it is rejected before any
// execution starts.
func (s *Server) serveConn(bc *binConn) {
	defer func() {
		bc.c.Close()
		s.mu.Lock()
		delete(s.conns, bc)
		s.mu.Unlock()
	}()
	for {
		typ, payload, err := readFrame(bc.br, s.opts.MaxFrame)
		if err != nil {
			return // disconnect or framing error: nothing sane to send
		}
		bc.busy.Store(true)
		fatal := s.serveFrame(bc, typ, payload)
		err = bc.bw.Flush()
		bc.busy.Store(false)
		if fatal || err != nil || s.draining.Load() {
			return
		}
	}
}

// serveFrame dispatches one client frame; true means close the
// connection.
func (s *Server) serveFrame(bc *binConn, typ byte, payload []byte) bool {
	fr := &frameReader{b: payload}
	switch typ {
	case MsgHello:
		tenant := fr.str16()
		if err := fr.done(); err != nil {
			return bc.protoErr(err)
		}
		bc.sess = s.db.NewSession(tenant)
		writeFrame(bc.bw, MsgOK, nil)
		return false

	case MsgQuery:
		timeoutMS := fr.u32()
		sql := string(fr.bytes(len(payload) - fr.off))
		if err := fr.done(); err != nil {
			return bc.protoErr(err)
		}
		res, rerr := s.runRequest(context.Background(), bc.sess,
			&Request{SQL: sql, TimeoutMS: timeoutMS})
		return bc.stream(res, rerr, s.opts.ChunkRows)

	case MsgTPCH:
		timeoutMS := fr.u32()
		n := fr.u32()
		if err := fr.done(); err != nil {
			return bc.protoErr(err)
		}
		res, rerr := s.runRequest(context.Background(), bc.sess,
			&Request{TPCH: n, TimeoutMS: timeoutMS})
		return bc.stream(res, rerr, s.opts.ChunkRows)

	case MsgPrepare:
		name := fr.str16()
		sql := string(fr.bytes(len(payload) - fr.off))
		if err := fr.done(); err != nil {
			return bc.protoErr(err)
		}
		if s.draining.Load() {
			return bc.stmtErr(errDraining)
		}
		if err := bc.sess.Prepare(name, sql); err != nil {
			return bc.stmtErr(err)
		}
		writeFrame(bc.bw, MsgOK, nil)
		return false

	case MsgExecute:
		timeoutMS := fr.u32()
		name := fr.str16()
		argc := fr.u16()
		if argc > maxExecuteArgs {
			return bc.protoErr(fmt.Errorf("server: %d EXECUTE arguments exceed the cap of %d", argc, maxExecuteArgs))
		}
		args := make([]*aqe.Value, 0, argc)
		for i := 0; i < argc && fr.err == nil; i++ {
			lit := fr.str32()
			if fr.err != nil {
				break
			}
			v, err := aqe.ParseLiteral(lit)
			if err != nil {
				return bc.stmtErr(fmt.Errorf("argument $%d: %w", i+1, err))
			}
			args = append(args, v)
		}
		if err := fr.done(); err != nil {
			return bc.protoErr(err)
		}
		res, rerr := s.guarded(context.Background(), timeoutMS,
			func(ctx context.Context) (*aqe.Result, error) {
				return bc.sess.Execute(ctx, name, args)
			})
		return bc.stream(res, rerr, s.opts.ChunkRows)

	case MsgDeallocate:
		name := fr.str16()
		if err := fr.done(); err != nil {
			return bc.protoErr(err)
		}
		if err := bc.sess.Deallocate(name); err != nil {
			return bc.stmtErr(err)
		}
		writeFrame(bc.bw, MsgOK, nil)
		return false

	default:
		return bc.protoErr(fmt.Errorf("server: unknown frame type 0x%02x", typ))
	}
}

// maxExecuteArgs caps binding-list fan-out well above the engine's own
// 64-parameter limit, so a hostile argc can't drive allocation.
const maxExecuteArgs = 256

// protoErr reports a protocol violation and asks for the connection to
// close.
func (bc *binConn) protoErr(err error) bool {
	writeFrame(bc.bw, MsgError, []byte(err.Error()))
	return true
}

// stmtErr reports a statement-level failure; the connection stays up.
func (bc *binConn) stmtErr(err error) bool {
	writeFrame(bc.bw, MsgError, []byte(err.Error()))
	return false
}

// stream writes a completed result as Cols + Rows* + Done, or one Error
// frame. Draining errors close the connection so clients re-dial
// elsewhere.
func (bc *binConn) stream(res *aqe.Result, err error, chunkRows int) bool {
	if err != nil {
		writeFrame(bc.bw, MsgError, []byte(err.Error()))
		return errors.Is(err, errDraining)
	}
	var cols frameBuf
	cols.u16(len(res.Cols))
	for i, name := range res.Cols {
		cols.str16(name)
		cols.u8(byte(res.Types[i].Kind))
		cols.u8(byte(res.Types[i].Scale))
	}
	if writeFrame(bc.bw, MsgCols, cols.b) != nil {
		return true
	}
	for lo := 0; lo < len(res.Rows); lo += chunkRows {
		hi := lo + chunkRows
		if hi > len(res.Rows) {
			hi = len(res.Rows)
		}
		var f frameBuf
		f.u32(hi - lo)
		for _, row := range res.Rows[lo:hi] {
			for j, d := range row {
				writeDatum(&f, d, res.Types[j])
			}
		}
		if writeFrame(bc.bw, MsgRows, f.b) != nil {
			return true
		}
	}
	ws := wireStatsOf(res)
	var f frameBuf
	f.u64(ws.Rows)
	f.u64(ws.TranslateNS)
	f.u64(ws.CompileNS)
	f.u64(ws.ExecNS)
	f.u64(ws.WaitNS)
	f.u64(ws.TotalNS)
	flags := byte(0)
	if ws.CacheHit {
		flags |= FlagCacheHit
	}
	if ws.Queued {
		flags |= FlagQueued
	}
	f.u8(flags)
	return writeFrame(bc.bw, MsgDone, f.b) != nil
}

// decodeCols parses a Cols payload (shared with the client).
func decodeCols(payload []byte) (cols []string, types []expr.Type, err error) {
	fr := &frameReader{b: payload}
	n := fr.u16()
	for i := 0; i < n && fr.err == nil; i++ {
		cols = append(cols, fr.str16())
		k := fr.u8()
		sc := fr.u8()
		if k > byte(expr.KString) {
			return nil, nil, fmt.Errorf("server: unknown type kind %d", k)
		}
		types = append(types, expr.Type{Kind: expr.Kind(k), Scale: int(sc)})
	}
	if err := fr.done(); err != nil {
		return nil, nil, err
	}
	return cols, types, nil
}

// decodeRows parses a Rows payload against the announced column types
// (shared with the client).
func decodeRows(payload []byte, types []expr.Type) ([][]expr.Datum, error) {
	fr := &frameReader{b: payload}
	n := fr.u32()
	rows := make([][]expr.Datum, 0, min(n, 4096))
	for i := 0; i < n && fr.err == nil; i++ {
		row := make([]expr.Datum, len(types))
		for j, t := range types {
			row[j] = readDatum(fr, t)
		}
		rows = append(rows, row)
	}
	if err := fr.done(); err != nil {
		return nil, err
	}
	return rows, nil
}

// decodeDone parses a Done payload (shared with the client).
func decodeDone(payload []byte) (*WireStats, error) {
	fr := &frameReader{b: payload}
	ws := &WireStats{
		Rows:        fr.u64(),
		TranslateNS: fr.u64(),
		CompileNS:   fr.u64(),
		ExecNS:      fr.u64(),
		WaitNS:      fr.u64(),
		TotalNS:     fr.u64(),
	}
	flags := fr.u8()
	if err := fr.done(); err != nil {
		return nil, err
	}
	ws.CacheHit = flags&FlagCacheHit != 0
	ws.Queued = flags&FlagQueued != 0
	return ws, nil
}

// FormatRow renders a decoded binary row with the engine's display
// formatting — the same text the HTTP protocol sends, which is what
// makes the two protocols byte-comparable.
func FormatRow(row []expr.Datum, types []expr.Type) []string {
	out := make([]string, len(row))
	for j, d := range row {
		out[j] = exec.Format(d, types[j])
	}
	return out
}
