package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"aqe"
	"aqe/internal/exec"
)

// Options configures a Server.
type Options struct {
	// DB is the database the server fronts (required).
	DB *aqe.DB
	// MaxFrame caps a single binary-protocol frame in either direction
	// (default 16 MiB).
	MaxFrame int
	// DefaultTimeout bounds requests that carry no deadline of their own
	// (0 = unbounded).
	DefaultTimeout time.Duration
	// ChunkRows is the streaming chunk size: rows per NDJSON line / Rows
	// frame (default 256).
	ChunkRows int
}

// Server serves a DB over HTTP/JSON and the binary protocol. Zero or
// more listeners of each kind may be attached; Shutdown drains them all
// gracefully (in-flight queries finish, new work is refused).
type Server struct {
	db   *aqe.DB
	opts Options

	mu       sync.Mutex
	sessions map[string]*aqe.Session // HTTP prepared statements, per tenant
	conns    map[*binConn]struct{}
	httpSrvs []*http.Server
	binLns   []net.Listener

	draining atomic.Bool
	binWG    sync.WaitGroup // binary connection handlers
}

// New creates a server for the given database.
func New(opts Options) *Server {
	if opts.DB == nil {
		panic("server: Options.DB is required")
	}
	if opts.MaxFrame <= 0 {
		opts.MaxFrame = DefaultMaxFrame
	}
	if opts.ChunkRows <= 0 {
		opts.ChunkRows = 256
	}
	return &Server{
		db:       opts.DB,
		opts:     opts,
		sessions: map[string]*aqe.Session{},
		conns:    map[*binConn]struct{}{},
	}
}

// session returns the shared session for a tenant, creating it on first
// use. HTTP is stateless per request, so prepared statements live at
// tenant scope; the binary protocol gets a private session per
// connection instead.
func (s *Server) session(tenant string) *aqe.Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[tenant]
	if !ok {
		sess = s.db.NewSession(tenant)
		s.sessions[tenant] = sess
	}
	return sess
}

// reqCtx derives the request context: the caller's timeout if one was
// sent, else the server default.
func (s *Server) reqCtx(parent context.Context, timeoutMS int) (context.Context, context.CancelFunc) {
	d := s.opts.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d <= 0 {
		return context.WithCancel(parent)
	}
	return context.WithTimeout(parent, d)
}

// errDraining refuses new work during shutdown.
var errDraining = errors.New("server: draining")

// guarded is the single choke point every wire request goes through:
// drain check, per-request deadline, panic containment. Nothing past it
// can leak an admission ticket — the engine releases tickets on unwind,
// and the recover here stops the unwind from killing the server.
func (s *Server) guarded(ctx context.Context, timeoutMS int, fn func(ctx context.Context) (*aqe.Result, error)) (res *aqe.Result, err error) {
	if s.draining.Load() {
		return nil, errDraining
	}
	ctx, cancel := s.reqCtx(ctx, timeoutMS)
	defer cancel()
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("server: internal error: %v\n%s", r, debug.Stack())
		}
	}()
	return fn(ctx)
}

// runRequest executes one decoded request against a session.
func (s *Server) runRequest(ctx context.Context, sess *aqe.Session, req *Request) (*aqe.Result, error) {
	return s.guarded(ctx, req.TimeoutMS, func(ctx context.Context) (*aqe.Result, error) {
		switch {
		case req.TPCH != 0:
			if req.TPCH < 1 || req.TPCH > 22 {
				return nil, fmt.Errorf("server: tpch query number %d out of range 1-22", req.TPCH)
			}
			return sess.ExecQuery(ctx, s.db.TPCHQuery(req.TPCH))
		case req.SQL != "":
			return sess.Exec(ctx, req.SQL)
		default:
			return nil, errors.New(`server: request needs "sql" or "tpch"`)
		}
	})
}

// Request is the HTTP request body (POST /query). Exactly one of SQL or
// TPCH must be set; SQL accepts SELECT as well as PREPARE / EXECUTE /
// DEALLOCATE statements.
type Request struct {
	SQL       string `json:"sql,omitempty"`
	TPCH      int    `json:"tpch,omitempty"`
	Tenant    string `json:"tenant,omitempty"` // or the X-AQE-Tenant header
	TimeoutMS int    `json:"timeout_ms,omitempty"`
}

// header / chunk / trailer are the NDJSON stream lines.
type wireHeader struct {
	Cols  []string `json:"cols"`
	Types []string `json:"types"`
}

type wireChunk struct {
	Rows [][]string `json:"rows"`
}

type wireTrailer struct {
	Done  bool       `json:"done"`
	Error string     `json:"error,omitempty"`
	Stats *WireStats `json:"stats,omitempty"`
}

// wireStatsOf projects engine stats into the trailer form.
func wireStatsOf(res *aqe.Result) *WireStats {
	st := res.Stats
	return &WireStats{
		Rows:        int64(len(res.Rows)),
		TranslateNS: st.Translate.Nanoseconds(),
		CompileNS:   st.Compile.Nanoseconds(),
		ExecNS:      st.Exec.Nanoseconds(),
		WaitNS:      st.WaitTime.Nanoseconds(),
		TotalNS:     st.Total.Nanoseconds(),
		CacheHit:    st.CacheHit,
		Queued:      st.Queued,
	}
}

// Handler returns the HTTP handler: POST /query (NDJSON stream), GET
// /stats (admission + cache counters), GET /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// handleQuery streams one query result as NDJSON: a header line with
// column names and types, then chunks of formatted rows (flushed as they
// are written, so clients see data before the query finishes), then a
// trailer line with either the stats or the error. Errors before the
// header are plain HTTP errors; errors after streaming began arrive in
// the trailer, since the status line is long gone.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, int64(s.opts.MaxFrame)))
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Tenant == "" {
		req.Tenant = r.Header.Get("X-AQE-Tenant")
	}
	res, err := s.runRequest(r.Context(), s.session(req.Tenant), &req)
	if err != nil {
		code := http.StatusUnprocessableEntity
		if errors.Is(err, errDraining) {
			code = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), code)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	types := make([]string, len(res.Types))
	for i, t := range res.Types {
		types[i] = t.String()
	}
	enc.Encode(wireHeader{Cols: res.Cols, Types: types})
	for lo := 0; lo < len(res.Rows); lo += s.opts.ChunkRows {
		hi := lo + s.opts.ChunkRows
		if hi > len(res.Rows) {
			hi = len(res.Rows)
		}
		chunk := wireChunk{Rows: make([][]string, 0, hi-lo)}
		for _, row := range res.Rows[lo:hi] {
			cells := make([]string, len(row))
			for j, d := range row {
				cells[j] = exec.Format(d, res.Types[j])
			}
			chunk.Rows = append(chunk.Rows, cells)
		}
		enc.Encode(chunk)
		flush()
	}
	enc.Encode(wireTrailer{Done: true, Stats: wireStatsOf(res)})
	flush()
}

// handleStats reports server-wide admission and plan-cache counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	eng := s.db.Engine()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"admission": eng.SchedStats(),
		"cache":     eng.CacheStats(),
	})
}

// ServeHTTP attaches an HTTP listener and blocks serving it until
// Shutdown (which returns http.ErrServerClosed here) or a listener
// error.
func (s *Server) ServeHTTP(ln net.Listener) error {
	srv := &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	s.httpSrvs = append(s.httpSrvs, srv)
	s.mu.Unlock()
	return srv.Serve(ln)
}

// Shutdown drains the server: new requests are refused, in-flight
// queries run to completion (bounded by ctx), idle binary connections
// are closed immediately, and busy ones are force-closed only if ctx
// expires first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	httpSrvs := append([]*http.Server(nil), s.httpSrvs...)
	binLns := append([]net.Listener(nil), s.binLns...)
	conns := make([]*binConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	for _, ln := range binLns {
		ln.Close()
	}
	// Idle binary connections sit in a frame read; closing the socket is
	// the only way to wake them. Busy ones get to finish their request
	// (the handler exits after it, seeing the drain flag).
	for _, c := range conns {
		if !c.busy.Load() {
			c.c.Close()
		}
	}
	var err error
	for _, srv := range httpSrvs {
		if e := srv.Shutdown(ctx); e != nil && err == nil {
			err = e
		}
	}
	done := make(chan struct{})
	go func() { s.binWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		for _, c := range conns {
			c.c.Close()
		}
		<-done
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}
