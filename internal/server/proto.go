// Package server is the query service front end: an HTTP/JSON endpoint
// that streams results as NDJSON, and a length-prefixed binary protocol
// for lower overhead. Both speak to the same aqe.DB through per-tenant
// (HTTP) or per-connection (binary) sessions, so PREPARE / EXECUTE /
// DEALLOCATE and the plan-fingerprint cache work identically over the
// wire and in process.
package server

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"aqe/internal/expr"
)

// Binary protocol. Every frame is
//
//	[u32 n][u8 type][payload, n-1 bytes]
//
// with n = 1 + len(payload), little endian. Frames larger than the
// server's MaxFrame (default 16 MiB) are rejected and close the
// connection; so do malformed payloads. Statement-level errors (bad SQL,
// unknown prepared name, cancelled query) are ErrorMsg frames and keep
// the connection alive.
const (
	// Client -> server.
	MsgHello      = 0x01 // [u16 len][tenant]
	MsgQuery      = 0x02 // [u32 timeout_ms][sql]
	MsgPrepare    = 0x03 // [u16 len][name][sql]
	MsgExecute    = 0x04 // [u32 timeout_ms][u16 len][name][u16 argc]{[u32 len][literal]}*
	MsgDeallocate = 0x05 // [u16 len][name]
	MsgTPCH       = 0x06 // [u32 timeout_ms][u32 query#]

	// Server -> client.
	MsgCols  = 0x81 // [u16 ncols]{[u16 len][name][u8 kind][u8 scale]}*
	MsgRows  = 0x82 // [u32 nrows] then row-major datums (see writeDatum)
	MsgDone  = 0x83 // [u64 rows][6 x i64 ns: translate compile exec wait queue total][u8 flags]
	MsgError = 0x84 // [utf8 message]
	MsgOK    = 0x85 // ack for Hello / Prepare / Deallocate
)

// Done-frame flag bits.
const (
	FlagCacheHit = 1 << 0
	FlagQueued   = 1 << 1
)

// DefaultMaxFrame caps a single frame (either direction).
const DefaultMaxFrame = 16 << 20

// WireStats is the statistics trailer both protocols report: the binary
// Done frame carries exactly these fields, and the HTTP trailer embeds
// them as JSON.
type WireStats struct {
	Rows        int64 `json:"rows"`
	TranslateNS int64 `json:"translate_ns"`
	CompileNS   int64 `json:"compile_ns"`
	ExecNS      int64 `json:"exec_ns"`
	WaitNS      int64 `json:"wait_ns"`
	TotalNS     int64 `json:"total_ns"`
	CacheHit    bool  `json:"cache_hit"`
	Queued      bool  `json:"queued"`
}

// writeFrame emits one frame.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(1+len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, enforcing the size cap.
func readFrame(r io.Reader, maxFrame int) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n < 1 {
		return 0, nil, fmt.Errorf("server: zero-length frame")
	}
	if int64(n) > int64(maxFrame) {
		return 0, nil, fmt.Errorf("server: frame of %d bytes exceeds the %d-byte cap", n, maxFrame)
	}
	if _, err := io.ReadFull(r, hdr[4:5]); err != nil {
		return 0, nil, err
	}
	payload = make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// frameBuf builds a frame payload incrementally.
type frameBuf struct{ b []byte }

func (f *frameBuf) u8(v byte)   { f.b = append(f.b, v) }
func (f *frameBuf) u16(v int)   { f.b = binary.LittleEndian.AppendUint16(f.b, uint16(v)) }
func (f *frameBuf) u32(v int)   { f.b = binary.LittleEndian.AppendUint32(f.b, uint32(v)) }
func (f *frameBuf) u64(v int64) { f.b = binary.LittleEndian.AppendUint64(f.b, uint64(v)) }
func (f *frameBuf) str16(s string) {
	f.u16(len(s))
	f.b = append(f.b, s...)
}
func (f *frameBuf) str32(s string) {
	f.u32(len(s))
	f.b = append(f.b, s...)
}

// frameReader decodes a frame payload with bounds checking: every getter
// fails softly by setting err, so callers validate once at the end and
// malformed frames can never index out of range.
type frameReader struct {
	b   []byte
	off int
	err error
}

func (f *frameReader) fail() {
	if f.err == nil {
		f.err = fmt.Errorf("server: truncated frame payload")
	}
}

func (f *frameReader) u8() byte {
	if f.err != nil || f.off+1 > len(f.b) {
		f.fail()
		return 0
	}
	v := f.b[f.off]
	f.off++
	return v
}

func (f *frameReader) u16() int {
	if f.err != nil || f.off+2 > len(f.b) {
		f.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(f.b[f.off:])
	f.off += 2
	return int(v)
}

func (f *frameReader) u32() int {
	if f.err != nil || f.off+4 > len(f.b) {
		f.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(f.b[f.off:])
	f.off += 4
	return int(v)
}

func (f *frameReader) u64() int64 {
	if f.err != nil || f.off+8 > len(f.b) {
		f.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(f.b[f.off:])
	f.off += 8
	return int64(v)
}

func (f *frameReader) bytes(n int) []byte {
	if f.err != nil || n < 0 || f.off+n > len(f.b) || f.off+n < f.off {
		f.fail()
		return nil
	}
	v := f.b[f.off : f.off+n]
	f.off += n
	return v
}

func (f *frameReader) str16() string { return string(f.bytes(f.u16())) }
func (f *frameReader) str32() string { return string(f.bytes(f.u32())) }

// done reports decode success: no error and no trailing garbage.
func (f *frameReader) done() error {
	if f.err != nil {
		return f.err
	}
	if f.off != len(f.b) {
		return fmt.Errorf("server: %d trailing bytes in frame payload", len(f.b)-f.off)
	}
	return nil
}

// writeDatum appends one datum in the binary row encoding: floats as IEEE
// bits, strings length-prefixed, everything else (ints, decimals, dates,
// chars, bools) as their canonical int64.
func writeDatum(f *frameBuf, d expr.Datum, t expr.Type) {
	switch t.Kind {
	case expr.KFloat:
		f.u64(int64(math.Float64bits(d.F)))
	case expr.KString:
		f.str32(d.S)
	default:
		f.u64(d.I)
	}
}

// readDatum is writeDatum's inverse.
func readDatum(f *frameReader, t expr.Type) expr.Datum {
	switch t.Kind {
	case expr.KFloat:
		return expr.Datum{F: math.Float64frombits(uint64(f.u64()))}
	case expr.KString:
		return expr.Datum{S: f.str32()}
	default:
		return expr.Datum{I: f.u64()}
	}
}
