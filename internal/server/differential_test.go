package server

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"aqe"
	"aqe/internal/exec"
)

// canonRows canonicalizes a formatted result for comparison: rows are
// sorted lexicographically so ties an ORDER BY leaves unspecified (and
// parallel hash-aggregation ordering) cannot produce spurious diffs —
// within a row every cell must still match byte for byte.
func canonRows(rows [][]string) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		line := ""
		for j, c := range r {
			if j > 0 {
				line += "\x1f"
			}
			line += c
		}
		out[i] = line
	}
	sort.Strings(out)
	return out
}

// TestWireDifferential runs all 22 TPC-H queries three ways — in
// process, over HTTP/JSON, and over the binary protocol — and requires
// the formatted rows to be byte-identical across the three. Run under
// -race in CI, this is the end-to-end proof that neither protocol
// corrupts, truncates, or re-types a result.
func TestWireDifferential(t *testing.T) {
	ts := startServer(t, aqe.Options{}, 0.01, Options{ChunkRows: 64})
	cl, err := Dial(ts.binAddr, "diff")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for n := 1; n <= 22; n++ {
		t.Run(fmt.Sprintf("q%d", n), func(t *testing.T) {
			ref, err := ts.db.Exec(ts.db.TPCHQuery(n))
			if err != nil {
				t.Fatalf("in-process: %v", err)
			}
			refRows := make([][]string, len(ref.Rows))
			for i, row := range ref.Rows {
				cells := make([]string, len(row))
				for j, d := range row {
					cells[j] = exec.Format(d, ref.Types[j])
				}
				refRows[i] = cells
			}
			want := canonRows(refRows)

			httpRes, err := httpQuery(t, ts, Request{TPCH: n, Tenant: "diff"})
			if err != nil {
				t.Fatalf("http: %v", err)
			}
			if got := canonRows(httpRes.Rows); !reflect.DeepEqual(got, want) {
				t.Fatalf("http rows differ from in-process\n got %d rows\nwant %d rows\nfirst got  %.120q\nfirst want %.120q",
					len(got), len(want), first(got), first(want))
			}
			if !equalStrings(httpRes.Header.Cols, ref.Cols) {
				t.Fatalf("http cols %v, want %v", httpRes.Header.Cols, ref.Cols)
			}

			binRes, err := cl.TPCH(n, 0)
			if err != nil {
				t.Fatalf("binary: %v", err)
			}
			binRows := make([][]string, len(binRes.Rows))
			for i, row := range binRes.Rows {
				binRows[i] = FormatRow(row, binRes.Types)
			}
			if got := canonRows(binRows); !reflect.DeepEqual(got, want) {
				t.Fatalf("binary rows differ from in-process\n got %d rows\nwant %d rows\nfirst got  %.120q\nfirst want %.120q",
					len(got), len(want), first(got), first(want))
			}
			if !equalStrings(binRes.Cols, ref.Cols) {
				t.Fatalf("binary cols %v, want %v", binRes.Cols, ref.Cols)
			}
			if !reflect.DeepEqual(binRes.Types, ref.Types) {
				t.Fatalf("binary types %v, want %v", binRes.Types, ref.Types)
			}
		})
	}
}

func first(rows []string) string {
	if len(rows) == 0 {
		return "(empty)"
	}
	return rows[0]
}
