package server

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"aqe/internal/expr"
)

// Client is a binary-protocol client connection. It is not safe for
// concurrent use — the protocol is strictly request/response, like one
// database session.
type Client struct {
	c        net.Conn
	br       *bufio.Reader
	bw       *bufio.Writer
	maxFrame int
}

// ClientResult is a fully received query result.
type ClientResult struct {
	Cols  []string
	Types []expr.Type
	Rows  [][]expr.Datum
	Stats WireStats
}

// Dial connects to a binary-protocol listener and, if tenant is
// non-empty, performs the Hello handshake.
func Dial(addr, tenant string) (*Client, error) {
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	cl := &Client{c: c, br: bufio.NewReader(c), bw: bufio.NewWriter(c),
		maxFrame: DefaultMaxFrame}
	if tenant != "" {
		var f frameBuf
		f.str16(tenant)
		if err := cl.ack(MsgHello, f.b); err != nil {
			c.Close()
			return nil, err
		}
	}
	return cl, nil
}

// Close tears the connection down.
func (cl *Client) Close() error { return cl.c.Close() }

// ack sends one frame and expects an OK.
func (cl *Client) ack(typ byte, payload []byte) error {
	if err := cl.send(typ, payload); err != nil {
		return err
	}
	rt, rp, err := readFrame(cl.br, cl.maxFrame)
	if err != nil {
		return err
	}
	switch rt {
	case MsgOK:
		return nil
	case MsgError:
		return fmt.Errorf("%s", rp)
	default:
		return fmt.Errorf("server: unexpected frame 0x%02x awaiting ack", rt)
	}
}

func (cl *Client) send(typ byte, payload []byte) error {
	if err := writeFrame(cl.bw, typ, payload); err != nil {
		return err
	}
	return cl.bw.Flush()
}

// Query runs a SQL statement (timeout 0 = server default).
func (cl *Client) Query(sql string, timeout time.Duration) (*ClientResult, error) {
	var f frameBuf
	f.u32(int(timeout.Milliseconds()))
	f.b = append(f.b, sql...)
	if err := cl.send(MsgQuery, f.b); err != nil {
		return nil, err
	}
	return cl.recvResult()
}

// TPCH runs TPC-H query n from the server's built-in plan set.
func (cl *Client) TPCH(n int, timeout time.Duration) (*ClientResult, error) {
	var f frameBuf
	f.u32(int(timeout.Milliseconds()))
	f.u32(n)
	if err := cl.send(MsgTPCH, f.b); err != nil {
		return nil, err
	}
	return cl.recvResult()
}

// Prepare registers a named parameterized statement on this connection's
// session.
func (cl *Client) Prepare(name, sql string) error {
	var f frameBuf
	f.str16(name)
	f.b = append(f.b, sql...)
	return cl.ack(MsgPrepare, f.b)
}

// Execute runs a prepared statement; args are SQL literals ("42",
// "'BUILDING'", "DATE '1994-01-01'").
func (cl *Client) Execute(name string, args []string, timeout time.Duration) (*ClientResult, error) {
	var f frameBuf
	f.u32(int(timeout.Milliseconds()))
	f.str16(name)
	f.u16(len(args))
	for _, a := range args {
		f.str32(a)
	}
	if err := cl.send(MsgExecute, f.b); err != nil {
		return nil, err
	}
	return cl.recvResult()
}

// Deallocate drops a prepared statement.
func (cl *Client) Deallocate(name string) error {
	var f frameBuf
	f.str16(name)
	return cl.ack(MsgDeallocate, f.b)
}

// recvResult collects Cols + Rows* + Done into a ClientResult.
func (cl *Client) recvResult() (*ClientResult, error) {
	res := &ClientResult{}
	sawCols := false
	for {
		typ, payload, err := readFrame(cl.br, cl.maxFrame)
		if err != nil {
			return nil, err
		}
		switch typ {
		case MsgError:
			return nil, fmt.Errorf("%s", payload)
		case MsgCols:
			if res.Cols, res.Types, err = decodeCols(payload); err != nil {
				return nil, err
			}
			sawCols = true
		case MsgRows:
			if !sawCols {
				return nil, fmt.Errorf("server: Rows frame before Cols")
			}
			rows, err := decodeRows(payload, res.Types)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, rows...)
		case MsgDone:
			ws, err := decodeDone(payload)
			if err != nil {
				return nil, err
			}
			res.Stats = *ws
			return res, nil
		default:
			return nil, fmt.Errorf("server: unexpected frame 0x%02x in result stream", typ)
		}
	}
}
