package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"aqe"
)

// fuzzEnv is a shared tiny server: fuzz iterations are cheap, the
// TPC-H load is not.
type fuzzEnv struct {
	db  *aqe.DB
	srv *Server
	mu  sync.Mutex // serialize iterations so the ticket-leak check is exact
}

var (
	fuzzOnce sync.Once
	fuzzE    *fuzzEnv
)

func fuzzEnvGet() *fuzzEnv {
	fuzzOnce.Do(func() {
		db := aqe.Open(aqe.Options{Workers: 2})
		db.LoadTPCH(0.001)
		fuzzE = &fuzzEnv{db: db, srv: New(Options{
			DB:             db,
			MaxFrame:       1 << 16, // small cap: oversized-frame path is hit often
			DefaultTimeout: 2 * time.Second,
		})}
	})
	return fuzzE
}

// checkNoTicketLeak verifies the admission gate returned to idle: a
// request that errored, panicked, or was malformed must still release
// its ticket.
func checkNoTicketLeak(t *testing.T, db *aqe.DB) {
	t.Helper()
	if st := db.Engine().SchedStats(); st.Running != 0 || st.Waiting != 0 {
		t.Fatalf("admission tickets leaked: running=%d waiting=%d", st.Running, st.Waiting)
	}
}

// FuzzServerRequest throws arbitrary bytes at the HTTP endpoint as a
// request body: malformed JSON, valid JSON with hostile field values,
// SQL fragments. The handler must never panic, never hang past the
// deadline, and never leak an admission ticket.
func FuzzServerRequest(f *testing.F) {
	f.Add([]byte(`{"sql":"SELECT count(*) AS n FROM region"}`))
	f.Add([]byte(`{"sql":"PREPARE p AS SELECT count(*) AS n FROM region WHERE r_regionkey > $1"}`))
	f.Add([]byte(`{"sql":"EXECUTE p (1)"}`))
	f.Add([]byte(`{"sql":"EXECUTE nosuch (1,2,3)"}`))
	f.Add([]byte(`{"sql":"DEALLOCATE p"}`))
	f.Add([]byte(`{"tpch":1}`))
	f.Add([]byte(`{"tpch":-5}`))
	f.Add([]byte(`{"tpch":99999999}`))
	f.Add([]byte(`{"sql":"SELECT`))
	f.Add([]byte(`{"sql": 123}`))
	f.Add([]byte(`{"sql":"SELECT * FROM lineitem","timeout_ms":-1}`))
	f.Add([]byte(`{"tenant":"` + string(bytes.Repeat([]byte("x"), 300)) + `"}`))
	f.Add([]byte(`null`))
	f.Add([]byte{0xff, 0xfe, 0x00})
	env := fuzzEnvGet()
	handler := env.srv.Handler()
	f.Fuzz(func(t *testing.T, data []byte) {
		env.mu.Lock()
		defer env.mu.Unlock()
		req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(data))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req) // must not panic
		checkNoTicketLeak(t, env.db)
	})
}

// fuzzFrame assembles a well-formed frame for the seed corpus.
func fuzzFrame(typ byte, payload []byte) []byte {
	out := make([]byte, 5+len(payload))
	binary.LittleEndian.PutUint32(out, uint32(1+len(payload)))
	out[4] = typ
	copy(out[5:], payload)
	return out
}

// FuzzBinaryFrame feeds arbitrary byte streams to a binary-protocol
// connection: truncated frames, oversized length prefixes, unknown
// types, hostile Execute argument counts, and bogus prepared names. The
// connection handler must never panic, must terminate once the client
// closes, and must never leak an admission ticket.
func FuzzBinaryFrame(f *testing.F) {
	var hello frameBuf
	hello.str16("fuzz")
	f.Add(fuzzFrame(MsgHello, hello.b))
	var q frameBuf
	q.u32(100)
	q.b = append(q.b, "SELECT count(*) AS n FROM region"...)
	f.Add(fuzzFrame(MsgQuery, q.b))
	var tq frameBuf
	tq.u32(100)
	tq.u32(1)
	f.Add(fuzzFrame(MsgTPCH, tq.b))
	var prep frameBuf
	prep.str16("p")
	prep.b = append(prep.b, "SELECT count(*) AS n FROM region WHERE r_regionkey > $1"...)
	f.Add(fuzzFrame(MsgPrepare, prep.b))
	var ex frameBuf
	ex.u32(100)
	ex.str16("p")
	ex.u16(1)
	ex.str32("42")
	f.Add(fuzzFrame(MsgExecute, ex.b))
	var exBogus frameBuf
	exBogus.u32(0)
	exBogus.str16("nosuch")
	exBogus.u16(65535) // hostile argc
	f.Add(fuzzFrame(MsgExecute, exBogus.b))
	f.Add(fuzzFrame(MsgDeallocate, []byte{0x01, 0x00, 'p'}))
	f.Add(fuzzFrame(0x7f, []byte("unknown type")))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, MsgQuery})       // oversized length
	f.Add([]byte{0x00, 0x00, 0x00, 0x00})                 // zero length
	f.Add([]byte{0x05, 0x00, 0x00, 0x00, MsgQuery, 0x01}) // truncated payload
	f.Add(fuzzFrame(MsgQuery, nil))                       // missing timeout field
	env := fuzzEnvGet()
	f.Fuzz(func(t *testing.T, data []byte) {
		env.mu.Lock()
		defer env.mu.Unlock()
		clientEnd, serverEnd := net.Pipe()
		bc := &binConn{c: serverEnd, br: bufio.NewReader(serverEnd),
			bw: bufio.NewWriter(serverEnd), sess: env.db.NewSession("fuzz")}
		done := make(chan struct{})
		go func() {
			defer close(done)
			env.srv.serveConn(bc) // must not panic
		}()
		go io.Copy(io.Discard, clientEnd) // drain server responses
		clientEnd.SetWriteDeadline(time.Now().Add(3 * time.Second))
		clientEnd.Write(data)
		clientEnd.Close()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("connection handler hung after client close")
		}
		checkNoTicketLeak(t, env.db)
	})
}
