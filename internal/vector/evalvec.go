package vector

import (
	"fmt"
	"math"
	"strings"

	"aqe/internal/expr"
	"aqe/internal/rt"
)

// evalVec evaluates an expression over a whole batch, producing one value
// per row. The operator and type dispatch happens once per column, not
// once per tuple — the column-at-a-time execution model.
func evalVec(e expr.Expr, b *batch) []expr.Datum {
	switch x := e.(type) {
	case *expr.ColRef:
		return b.cols[x.Idx]
	case *expr.Const:
		out := make([]expr.Datum, b.n)
		d := expr.Datum{I: x.I, F: x.F, S: x.S}
		for i := range out {
			out[i] = d
		}
		return out
	case *expr.Arith:
		return vecArith(x, b)
	case *expr.Cmp:
		return vecCmp(x, b)
	case *expr.Logic:
		out := evalVec(x.Args[0], b)
		res := make([]expr.Datum, b.n)
		copy(res, out)
		for _, a := range x.Args[1:] {
			v := evalVec(a, b)
			if x.IsAnd {
				for i := range res {
					res[i].I &= v[i].I
				}
			} else {
				for i := range res {
					res[i].I |= v[i].I
				}
			}
		}
		return res
	case *expr.NotExpr:
		v := evalVec(x.Arg, b)
		out := make([]expr.Datum, b.n)
		for i := range out {
			out[i].I = 1 - v[i].I
		}
		return out
	case *expr.LikeExpr:
		v := evalVec(x.Arg, b)
		out := make([]expr.Datum, b.n)
		for i := range out {
			m := x.Compiled.Match([]byte(v[i].S))
			if m != x.Negate {
				out[i].I = 1
			}
		}
		return out
	case *expr.InList:
		v := evalVec(x.Arg, b)
		out := make([]expr.Datum, b.n)
		if x.Arg.Type().Kind == expr.KString {
			set := make(map[string]bool, len(x.List))
			for _, c := range x.List {
				set[c.S] = true
			}
			for i := range out {
				if set[v[i].S] {
					out[i].I = 1
				}
			}
		} else {
			set := make(map[int64]bool, len(x.List))
			for _, c := range x.List {
				set[c.I] = true
			}
			for i := range out {
				if set[v[i].I] {
					out[i].I = 1
				}
			}
		}
		return out
	case *expr.CaseExpr:
		out := make([]expr.Datum, b.n)
		done := make([]bool, b.n)
		for _, w := range x.Whens {
			cond := evalVec(w.Cond, b)
			then := evalVec(w.Then, b)
			for i := range out {
				if !done[i] && cond[i].I != 0 {
					out[i] = then[i]
					done[i] = true
				}
			}
		}
		els := evalVec(x.Else, b)
		for i := range out {
			if !done[i] {
				out[i] = els[i]
			}
		}
		return out
	case *expr.YearExpr:
		v := evalVec(x.Arg, b)
		out := make([]expr.Datum, b.n)
		for i := range out {
			out[i].I = rt.YearOfDays(v[i].I)
		}
		return out
	case *expr.SubstrExpr:
		v := evalVec(x.Arg, b)
		out := make([]expr.Datum, b.n)
		for i := range out {
			s := v[i].S
			from, end := x.From-1, x.From-1+x.Len
			if from > len(s) {
				from = len(s)
			}
			if end > len(s) {
				end = len(s)
			}
			out[i].S = s[from:end]
		}
		return out
	case *expr.CastExpr:
		v := evalVec(x.Arg, b)
		out := make([]expr.Datum, b.n)
		from := x.Arg.Type()
		switch x.T.Kind {
		case expr.KFloat:
			div := 1.0
			if from.Kind == expr.KDecimal {
				div = math.Pow10(from.Scale)
			}
			for i := range out {
				if from.Kind == expr.KFloat {
					out[i].F = v[i].F
				} else {
					out[i].F = float64(v[i].I) / div
				}
			}
		case expr.KDecimal:
			fromScale := 0
			if from.Kind == expr.KDecimal {
				fromScale = from.Scale
			}
			diff := x.T.Scale - fromScale
			switch {
			case diff > 0:
				m := pow10(diff)
				for i := range out {
					out[i].I = checkedMulV(v[i].I, m)
				}
			case diff < 0:
				m := pow10(-diff)
				for i := range out {
					out[i].I = v[i].I / m
				}
			default:
				copy(out, v)
			}
		default:
			panic("vector: unsupported cast")
		}
		return out
	}
	panic(fmt.Sprintf("vector: cannot evaluate %T", e))
}

func pow10(n int) int64 {
	p := int64(1)
	for i := 0; i < n; i++ {
		p *= 10
	}
	return p
}

func checkedAddV(x, y int64) int64 {
	r := x + y
	if (x^r)&(y^r) < 0 {
		rt.Throw(rt.TrapOverflow)
	}
	return r
}

func checkedMulV(x, y int64) int64 {
	r := x * y
	if x != 0 && ((x == -1 && y == math.MinInt64) || r/x != y) {
		rt.Throw(rt.TrapOverflow)
	}
	return r
}

// toFVec converts a numeric vector to floats.
func toFVec(v []expr.Datum, t expr.Type) []float64 {
	out := make([]float64, len(v))
	switch t.Kind {
	case expr.KFloat:
		for i := range v {
			out[i] = v[i].F
		}
	case expr.KDecimal:
		div := math.Pow10(t.Scale)
		for i := range v {
			out[i] = float64(v[i].I) / div
		}
	default:
		for i := range v {
			out[i] = float64(v[i].I)
		}
	}
	return out
}

// rescaleVec multiplies a decimal vector up to a target scale.
func rescaleVec(v []expr.Datum, diff int) []expr.Datum {
	if diff == 0 {
		return v
	}
	m := pow10(diff)
	out := make([]expr.Datum, len(v))
	for i := range v {
		out[i].I = checkedMulV(v[i].I, m)
	}
	return out
}

func scaleOf(t expr.Type) int {
	if t.Kind == expr.KDecimal {
		return t.Scale
	}
	return 0
}

func vecArith(x *expr.Arith, b *batch) []expr.Datum {
	l := evalVec(x.L, b)
	r := evalVec(x.R, b)
	lt, rtt := x.L.Type(), x.R.Type()
	out := make([]expr.Datum, b.n)
	if x.T.Kind == expr.KFloat {
		lf, rf := toFVec(l, lt), toFVec(r, rtt)
		switch x.Op {
		case expr.OpAdd:
			for i := range out {
				out[i].F = lf[i] + rf[i]
			}
		case expr.OpSub:
			for i := range out {
				out[i].F = lf[i] - rf[i]
			}
		case expr.OpMul:
			for i := range out {
				out[i].F = lf[i] * rf[i]
			}
		default:
			for i := range out {
				out[i].F = lf[i] / rf[i]
			}
		}
		return out
	}
	switch x.Op {
	case expr.OpAdd, expr.OpSub:
		ls, rs := scaleOf(lt), scaleOf(rtt)
		s := ls
		if rs > s {
			s = rs
		}
		lv := rescaleVec(l, s-ls)
		rv := rescaleVec(r, s-rs)
		if x.Op == expr.OpAdd {
			for i := range out {
				out[i].I = checkedAddV(lv[i].I, rv[i].I)
			}
		} else {
			for i := range out {
				out[i].I = checkedAddV(lv[i].I, -rv[i].I)
			}
		}
	case expr.OpMul:
		for i := range out {
			out[i].I = checkedMulV(l[i].I, r[i].I)
		}
	default:
		for i := range out {
			if r[i].I == 0 {
				rt.Throw(rt.TrapDivZero)
			}
			if l[i].I == math.MinInt64 && r[i].I == -1 {
				rt.Throw(rt.TrapOverflow)
			}
			out[i].I = l[i].I / r[i].I
		}
	}
	return out
}

func vecCmp(x *expr.Cmp, b *batch) []expr.Datum {
	l := evalVec(x.L, b)
	r := evalVec(x.R, b)
	lt, rtt := x.L.Type(), x.R.Type()
	out := make([]expr.Datum, b.n)
	switch {
	case lt.Kind == expr.KString:
		cmpLoop(out, x.Op, func(i int) int {
			return strings.Compare(l[i].S, r[i].S)
		})
	case lt.Kind == expr.KFloat || rtt.Kind == expr.KFloat:
		lf, rf := toFVec(l, lt), toFVec(r, rtt)
		cmpLoop(out, x.Op, func(i int) int {
			switch {
			case lf[i] < rf[i]:
				return -1
			case lf[i] > rf[i]:
				return 1
			}
			return 0
		})
	default:
		ls, rs := scaleOf(lt), scaleOf(rtt)
		s := ls
		if rs > s {
			s = rs
		}
		lv := rescaleVec(l, s-ls)
		rv := rescaleVec(r, s-rs)
		cmpLoop(out, x.Op, func(i int) int {
			switch {
			case lv[i].I < rv[i].I:
				return -1
			case lv[i].I > rv[i].I:
				return 1
			}
			return 0
		})
	}
	return out
}

func cmpLoop(out []expr.Datum, op expr.CmpOp, cmp func(i int) int) {
	for i := range out {
		c := cmp(i)
		var r bool
		switch op {
		case expr.CmpEq:
			r = c == 0
		case expr.CmpNe:
			r = c != 0
		case expr.CmpLt:
			r = c < 0
		case expr.CmpLe:
			r = c <= 0
		case expr.CmpGt:
			r = c > 0
		default:
			r = c >= 0
		}
		if r {
			out[i].I = 1
		}
	}
}
