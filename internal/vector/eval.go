package vector

import (
	"bytes"
	"fmt"
	"math"

	"aqe/internal/expr"
	"aqe/internal/rt"
)

// The batch evaluator mirrors expr.Eval (and therefore the generated
// code's trap semantics) lane for lane: the same overflow checks in the
// same per-lane order, short-circuit AND/OR/CASE as selection narrowing so
// an expression is evaluated for exactly the tuples compiled code would
// evaluate it for, strings as (addr, len) references so stored values are
// bit-identical across engines.

func checkedAdd(x, y int64) int64 {
	r := x + y
	if (x^r)&(y^r) < 0 {
		rt.Throw(rt.TrapOverflow)
	}
	return r
}

func checkedSub(x, y int64) int64 {
	r := x - y
	if (x^y)&(x^r) < 0 {
		rt.Throw(rt.TrapOverflow)
	}
	return r
}

func checkedMul(x, y int64) int64 {
	r := x * y
	if x != 0 && ((x == -1 && y == math.MinInt64) || r/x != y) {
		rt.Throw(rt.TrapOverflow)
	}
	return r
}

func scaleOf(t expr.Type) int {
	if t.Kind == expr.KDecimal {
		return t.Scale
	}
	return 0
}

// eval evaluates e over the lanes of sel (a subset of fr.sel); the result
// column is valid at exactly those lanes.
func (rc *runCtx) eval(e expr.Expr, fr *frame, sel []int32) *col {
	switch x := e.(type) {
	case *expr.ColRef:
		return fr.col(rc, x.Idx)
	case *expr.Const:
		return rc.constCol(x, fr, sel)
	case *expr.Param:
		return rc.paramCol(x, fr, sel)
	case *expr.Arith:
		return rc.evalArith(x, fr, sel)
	case *expr.Cmp:
		return rc.evalCmp(x, fr, sel)
	case *expr.Logic:
		return rc.evalLogic(x, fr, sel)
	case *expr.NotExpr:
		v := rc.eval(x.Arg, fr, sel)
		out := rc.newCol()
		o := out.ints(fr.n)
		for _, k := range sel {
			if v.i[k] != 0 {
				o[k] = 0
			} else {
				o[k] = 1
			}
		}
		return out
	case *expr.LikeExpr:
		v := rc.eval(x.Arg, fr, sel)
		out := rc.newCol()
		o := out.ints(fr.n)
		for _, k := range sel {
			m := x.Compiled.Match(rc.str(v.sa[k], v.sl[k]))
			if x.Negate {
				m = !m
			}
			o[k] = b2i(m)
		}
		return out
	case *expr.InList:
		return rc.evalInList(x, fr, sel)
	case *expr.CaseExpr:
		return rc.evalCase(x, fr, sel)
	case *expr.YearExpr:
		v := rc.eval(x.Arg, fr, sel)
		out := rc.newCol()
		o := out.ints(fr.n)
		for _, k := range sel {
			o[k] = rt.YearOfDays(v.i[k])
		}
		return out
	case *expr.SubstrExpr:
		v := rc.eval(x.Arg, fr, sel)
		out := rc.newCol()
		sa, sl := out.strs(fr.n)
		from0, ln := int64(x.From-1), int64(x.Len)
		for _, k := range sel {
			l := v.sl[k]
			from, end := from0, from0+ln
			if from > l {
				from = l
			}
			if end > l {
				end = l
			}
			sa[k] = v.sa[k] + uint64(from)
			sl[k] = end - from
		}
		return out
	case *expr.CastExpr:
		return rc.evalCast(x, fr, sel)
	}
	panic(fmt.Sprintf("vector: cannot evaluate %T", e))
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (rc *runCtx) constCol(x *expr.Const, fr *frame, sel []int32) *col {
	out := rc.newCol()
	switch x.T.Kind {
	case expr.KString:
		lit, ok := rc.kern.spec.StrLits[x.S]
		if !ok {
			panic("vector: string literal not interned: " + x.S)
		}
		sa, sl := out.strs(fr.n)
		for _, k := range sel {
			sa[k], sl[k] = lit[0], int64(lit[1])
		}
	case expr.KFloat:
		f := out.floats(fr.n)
		for _, k := range sel {
			f[k] = x.F
		}
	default:
		o := out.ints(fr.n)
		for _, k := range sel {
			o[k] = x.I
		}
	}
	return out
}

// paramCol broadcasts prepared-statement parameter x. The 16-byte slot is
// read through the run's segment table at the spec's ParamBase, so a
// fingerprint-cached kernel evaluates the current execution's binding,
// never the one it was first staged against.
func (rc *runCtx) paramCol(x *expr.Param, fr *frame, sel []int32) *col {
	out := rc.newCol()
	slot := rc.kern.spec.ParamBase + uint64(x.Idx)*16
	switch x.T.Kind {
	case expr.KString:
		addr, l := rc.ld64(slot), int64(rc.ld64(slot+8))
		sa, sl := out.strs(fr.n)
		for _, k := range sel {
			sa[k], sl[k] = addr, l
		}
	case expr.KFloat:
		v := math.Float64frombits(rc.ld64(slot))
		f := out.floats(fr.n)
		for _, k := range sel {
			f[k] = v
		}
	default:
		v := int64(rc.ld64(slot))
		o := out.ints(fr.n)
		for _, k := range sel {
			o[k] = v
		}
	}
	return out
}

// toF converts a numeric column to floats at the sel lanes (expr.toF).
func (rc *runCtx) toF(c *col, t expr.Type, n int, sel []int32) []float64 {
	if t.Kind == expr.KFloat {
		return c.f
	}
	out := rc.newCol().floats(n)
	if t.Kind == expr.KDecimal {
		d := float64(pow10(t.Scale))
		for _, k := range sel {
			out[k] = float64(c.i[k]) / d
		}
	} else {
		for _, k := range sel {
			out[k] = float64(c.i[k])
		}
	}
	return out
}

func (rc *runCtx) evalArith(x *expr.Arith, fr *frame, sel []int32) *col {
	l := rc.eval(x.L, fr, sel)
	r := rc.eval(x.R, fr, sel)
	lt, rtt := x.L.Type(), x.R.Type()
	out := rc.newCol()
	if x.T.Kind == expr.KFloat {
		lf := rc.toF(l, lt, fr.n, sel)
		rf := rc.toF(r, rtt, fr.n, sel)
		o := out.floats(fr.n)
		switch x.Op {
		case expr.OpAdd:
			for _, k := range sel {
				o[k] = lf[k] + rf[k]
			}
		case expr.OpSub:
			for _, k := range sel {
				o[k] = lf[k] - rf[k]
			}
		case expr.OpMul:
			for _, k := range sel {
				o[k] = lf[k] * rf[k]
			}
		default:
			for _, k := range sel {
				o[k] = lf[k] / rf[k]
			}
		}
		return out
	}
	o := out.ints(fr.n)
	switch x.Op {
	case expr.OpAdd, expr.OpSub:
		// Static decimal-scale unification; the rescale multiply is
		// overflow-checked exactly like expr.unifyScales.
		ls, rs := scaleOf(lt), scaleOf(rtt)
		var lm, rm int64 = 1, 1
		if ls < rs {
			lm = pow10(rs - ls)
		} else if ls > rs {
			rm = pow10(ls - rs)
		}
		sub := x.Op == expr.OpSub
		for _, k := range sel {
			li, ri := l.i[k], r.i[k]
			if lm != 1 {
				li = checkedMul(li, lm)
			}
			if rm != 1 {
				ri = checkedMul(ri, rm)
			}
			if sub {
				o[k] = checkedSub(li, ri)
			} else {
				o[k] = checkedAdd(li, ri)
			}
		}
	case expr.OpMul:
		for _, k := range sel {
			o[k] = checkedMul(l.i[k], r.i[k])
		}
	default: // OpDiv: int/int or decimal/int
		for _, k := range sel {
			ri := r.i[k]
			if ri == 0 {
				rt.Throw(rt.TrapDivZero)
			}
			li := l.i[k]
			if li == math.MinInt64 && ri == -1 {
				rt.Throw(rt.TrapOverflow)
			}
			o[k] = li / ri
		}
	}
	return out
}

func cmpRes(op expr.CmpOp, cm int) int64 {
	var res bool
	switch op {
	case expr.CmpEq:
		res = cm == 0
	case expr.CmpNe:
		res = cm != 0
	case expr.CmpLt:
		res = cm < 0
	case expr.CmpLe:
		res = cm <= 0
	case expr.CmpGt:
		res = cm > 0
	default:
		res = cm >= 0
	}
	return b2i(res)
}

func (rc *runCtx) evalCmp(x *expr.Cmp, fr *frame, sel []int32) *col {
	l := rc.eval(x.L, fr, sel)
	r := rc.eval(x.R, fr, sel)
	lt, rtt := x.L.Type(), x.R.Type()
	out := rc.newCol()
	o := out.ints(fr.n)
	switch {
	case lt.Kind == expr.KString:
		for _, k := range sel {
			cm := bytes.Compare(rc.str(l.sa[k], l.sl[k]), rc.str(r.sa[k], r.sl[k]))
			o[k] = cmpRes(x.Op, cm)
		}
	case lt.Kind == expr.KFloat || rtt.Kind == expr.KFloat:
		lf := rc.toF(l, lt, fr.n, sel)
		rf := rc.toF(r, rtt, fr.n, sel)
		for _, k := range sel {
			var cm int
			switch {
			case lf[k] == rf[k]:
				cm = 0
			case lf[k] < rf[k]:
				cm = -1
			default:
				cm = 1
			}
			o[k] = cmpRes(x.Op, cm)
		}
	default:
		ls, rs := scaleOf(lt), scaleOf(rtt)
		var lm, rm int64 = 1, 1
		if ls < rs {
			lm = pow10(rs - ls)
		} else if ls > rs {
			rm = pow10(ls - rs)
		}
		for _, k := range sel {
			li, ri := l.i[k], r.i[k]
			if lm != 1 {
				li = checkedMul(li, lm)
			}
			if rm != 1 {
				ri = checkedMul(ri, rm)
			}
			var cm int
			switch {
			case li == ri:
				cm = 0
			case li < ri:
				cm = -1
			default:
				cm = 1
			}
			o[k] = cmpRes(x.Op, cm)
		}
	}
	return out
}

// evalLogic short-circuits by selection narrowing: argument j is evaluated
// only for the lanes still undecided after arguments 0..j-1, matching the
// per-row short-circuit of interpreted and compiled evaluation.
func (rc *runCtx) evalLogic(x *expr.Logic, fr *frame, sel []int32) *col {
	out := rc.newCol()
	o := out.ints(fr.n)
	if x.IsAnd {
		for _, k := range sel {
			o[k] = 0
		}
		cur := sel
		for _, a := range x.Args {
			if len(cur) == 0 {
				break
			}
			v := rc.eval(a, fr, cur)
			nxt := rc.selBuf(len(cur))
			for _, k := range cur {
				if v.i[k] != 0 {
					nxt = append(nxt, k)
				}
			}
			cur = nxt
		}
		for _, k := range cur {
			o[k] = 1
		}
		return out
	}
	for _, k := range sel {
		o[k] = 1
	}
	cur := sel
	for _, a := range x.Args {
		if len(cur) == 0 {
			break
		}
		v := rc.eval(a, fr, cur)
		nxt := rc.selBuf(len(cur))
		for _, k := range cur {
			if v.i[k] == 0 {
				nxt = append(nxt, k)
			}
		}
		cur = nxt
	}
	for _, k := range cur {
		o[k] = 0
	}
	return out
}

func (rc *runCtx) evalInList(x *expr.InList, fr *frame, sel []int32) *col {
	arg := rc.eval(x.Arg, fr, sel)
	out := rc.newCol()
	o := out.ints(fr.n)
	if x.Arg.Type().Kind == expr.KString {
		for _, k := range sel {
			s := rc.str(arg.sa[k], arg.sl[k])
			hit := int64(0)
			for _, c := range x.List {
				if string(s) == c.S {
					hit = 1
					break
				}
			}
			o[k] = hit
		}
		return out
	}
	for _, k := range sel {
		hit := int64(0)
		for _, c := range x.List {
			if arg.i[k] == c.I {
				hit = 1
				break
			}
		}
		o[k] = hit
	}
	return out
}

// scatter copies the sel lanes of src into dst (same representation).
func scatter(dst, src *col, sel []int32) {
	switch dst.kind {
	case kStr:
		for _, k := range sel {
			dst.sa[k], dst.sl[k] = src.sa[k], src.sl[k]
		}
	case kFloat:
		for _, k := range sel {
			dst.f[k] = src.f[k]
		}
	default:
		for _, k := range sel {
			dst.i[k] = src.i[k]
		}
	}
}

// evalCase evaluates arms lazily: each WHEN condition sees only the lanes
// no earlier arm took, each THEN/ELSE only the lanes its arm decides.
func (rc *runCtx) evalCase(x *expr.CaseExpr, fr *frame, sel []int32) *col {
	out := rc.newCol()
	switch x.T.Kind {
	case expr.KString:
		out.strs(fr.n)
	case expr.KFloat:
		out.floats(fr.n)
	default:
		out.ints(fr.n)
	}
	pending := sel
	for _, w := range x.Whens {
		if len(pending) == 0 {
			break
		}
		cv := rc.eval(w.Cond, fr, pending)
		hit := rc.selBuf(len(pending))
		miss := rc.selBuf(len(pending))
		for _, k := range pending {
			if cv.i[k] != 0 {
				hit = append(hit, k)
			} else {
				miss = append(miss, k)
			}
		}
		if len(hit) > 0 {
			scatter(out, rc.eval(w.Then, fr, hit), hit)
		}
		pending = miss
	}
	if len(pending) > 0 {
		scatter(out, rc.eval(x.Else, fr, pending), pending)
	}
	return out
}

func (rc *runCtx) evalCast(x *expr.CastExpr, fr *frame, sel []int32) *col {
	d := rc.eval(x.Arg, fr, sel)
	from := x.Arg.Type()
	switch x.T.Kind {
	case expr.KFloat:
		if from.Kind == expr.KFloat {
			return d
		}
		out := rc.newCol()
		f := out.floats(fr.n)
		if from.Kind == expr.KDecimal {
			div := float64(pow10(from.Scale))
			for _, k := range sel {
				f[k] = float64(d.i[k]) / div
			}
		} else {
			for _, k := range sel {
				f[k] = float64(d.i[k])
			}
		}
		return out
	case expr.KDecimal:
		fromScale := 0
		if from.Kind == expr.KDecimal {
			fromScale = from.Scale
		}
		diff := x.T.Scale - fromScale
		if diff == 0 {
			return d
		}
		out := rc.newCol()
		o := out.ints(fr.n)
		if diff > 0 {
			m := pow10(diff)
			for _, k := range sel {
				o[k] = checkedMul(d.i[k], m)
			}
		} else {
			m := pow10(-diff)
			for _, k := range sel {
				o[k] = d.i[k] / m
			}
		}
		return out
	}
	panic("vector: unsupported cast to " + x.T.String())
}
