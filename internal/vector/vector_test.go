package vector

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"aqe/internal/exec"
	"aqe/internal/expr"
	"aqe/internal/plan"
	"aqe/internal/storage"
	"aqe/internal/tpch"
	"aqe/internal/volcano"
)

var cat = tpch.Gen(0.005)

func canon(rows [][]expr.Datum, schema []plan.ColDef) []string {
	out := make([]string, len(rows))
	for i, row := range rows {
		var sb strings.Builder
		for j, d := range row {
			switch schema[j].T.Kind {
			case expr.KFloat:
				fmt.Fprintf(&sb, "|%.5g", d.F)
			case expr.KString:
				fmt.Fprintf(&sb, "|%s", d.S)
			default:
				fmt.Fprintf(&sb, "|%d", d.I)
			}
		}
		out[i] = sb.String()
	}
	sort.Strings(out)
	return out
}

// runStages executes a multi-stage query with the given single-plan runner.
func runStages(t *testing.T, q plan.Query,
	run func(plan.Node) ([][]expr.Datum, error)) ([][]expr.Datum, []plan.ColDef) {
	t.Helper()
	prior := make(map[string]*storage.Table)
	var rows [][]expr.Datum
	var schema []plan.ColDef
	for i, st := range q.Stages {
		node := st.Build(prior)
		var err error
		rows, err = run(node)
		if err != nil {
			t.Fatalf("%s stage %s: %v", q.Name, st.Name, err)
		}
		schema = node.Schema()
		if i < len(q.Stages)-1 {
			res := &exec.Result{Rows: rows}
			for _, c := range schema {
				res.Cols = append(res.Cols, c.Name)
				res.Types = append(res.Types, c.T)
			}
			prior[st.Name] = res.ToTable(st.Name)
		}
	}
	return rows, schema
}

// TestVectorMatchesVolcanoOnTPCH checks the column-at-a-time engine against
// the tuple-at-a-time oracle on every TPC-H query.
func TestVectorMatchesVolcanoOnTPCH(t *testing.T) {
	for qn := 1; qn <= 22; qn++ {
		want, schema := runStages(t, tpch.Query(cat, qn), volcano.Run)
		got, _ := runStages(t, tpch.Query(cat, qn), Run)
		w, g := canon(want, schema), canon(got, schema)
		if len(w) != len(g) {
			t.Errorf("Q%d: vector %d rows, volcano %d", qn, len(g), len(w))
			continue
		}
		for i := range w {
			if w[i] != g[i] {
				t.Errorf("Q%d row %d:\n vector %s\nvolcano %s", qn, i, g[i], w[i])
				break
			}
		}
	}
}

func TestVectorTrapsPropagate(t *testing.T) {
	v := storage.NewColumn("v", storage.Int64)
	for i := 0; i < 4; i++ {
		v.AppendInt64(1 << 62)
	}
	tbl := storage.NewTable("big", v)
	s := plan.NewScan(tbl, "v")
	g := plan.NewGroupBy(s, nil, nil, []plan.AggExpr{
		{Func: plan.Sum, Arg: plan.C(s.Schema(), "v"), Name: "s"}})
	if _, err := Run(g); err == nil {
		t.Fatal("expected overflow")
	}
}
