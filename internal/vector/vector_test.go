// Package vector_test checks the engine-equivalence contract from the
// outside: the vectorized kernels, driven through the public engine under
// forced and hybrid configurations, must produce bit-identical results to
// the Volcano interpreter and the compiled tiers on every plan shape. The
// tests live in an external package because internal/exec imports
// internal/vector; the differential net needs both.
package vector_test

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"aqe/internal/exec"
	"aqe/internal/expr"
	"aqe/internal/plan"
	"aqe/internal/storage"
	"aqe/internal/tpch"
	"aqe/internal/volcano"
)

var diffCat = sync.OnceValue(func() *storage.Catalog { return tpch.Gen(0.003) })

// canon renders rows into sorted canonical strings for order-insensitive
// comparison; floats are rounded to absorb parallel summation order.
func canon(rows [][]expr.Datum, types []expr.Type) []string {
	out := make([]string, len(rows))
	for i, row := range rows {
		var sb strings.Builder
		for j, d := range row {
			switch types[j].Kind {
			case expr.KFloat:
				fmt.Fprintf(&sb, "|%.6g", d.F)
			case expr.KString:
				fmt.Fprintf(&sb, "|%s", d.S)
			default:
				fmt.Fprintf(&sb, "|%d", d.I)
			}
		}
		out[i] = sb.String()
	}
	sort.Strings(out)
	return out
}

func typesOf(schema []plan.ColDef) []expr.Type {
	out := make([]expr.Type, len(schema))
	for i, c := range schema {
		out[i] = c.T
	}
	return out
}

// TestVectorDifferential22 runs all 22 TPC-H queries under the vectorized
// and hybrid engine configurations and asserts result checksums identical
// to the all-compiled baseline, warm and cold. The forced-vector engine
// must actually execute kernels (pipelines whose shape the kernel compiler
// rejects fall back per-pipeline, but not all of them).
func TestVectorDifferential22(t *testing.T) {
	cat := diffCat()
	configs := []struct {
		name string
		opts exec.Options
	}{
		{"baseline-optimized", exec.Options{Workers: 4, Mode: exec.ModeOptimized, Cost: exec.Native()}},
		{"forced-vector", exec.Options{Workers: 4, Mode: exec.ModeVector, Cost: exec.Native(),
			MorselSize: 512, CacheBytes: 64 << 20}},
		{"forced-vector-w1", exec.Options{Workers: 1, Mode: exec.ModeVector, Cost: exec.Native()}},
		{"hybrid-auto", exec.Options{Workers: 4, Mode: exec.ModeAdaptive, Cost: exec.Native(),
			MorselSize: 512, CacheBytes: 64 << 20}},
		{"hybrid-no-vector", exec.Options{Workers: 4, Mode: exec.ModeAdaptive, Cost: exec.Native(),
			NoVector: true, MorselSize: 512, CacheBytes: 64 << 20}},
		{"vector-serial-no-filter", exec.Options{Workers: 4, Mode: exec.ModeVector, Cost: exec.Native(),
			SerialFinalize: true, NoJoinFilter: true}},
		{"vector-no-dict", exec.Options{Workers: 4, Mode: exec.ModeVector, Cost: exec.Native(),
			NoDict: true}},
	}
	want := make(map[int][]string)
	var vectorMorsels int64
	for _, cfg := range configs {
		e := exec.New(cfg.opts)
		for qn := 1; qn <= 22; qn++ {
			res, err := e.Run(tpch.Query(cat, qn))
			if err != nil {
				t.Fatalf("%s Q%d: %v", cfg.name, qn, err)
			}
			if cfg.opts.Mode == exec.ModeVector {
				vectorMorsels += res.Stats.VectorMorsels
			}
			got := canon(res.Rows, res.Types)
			if cfg.name == "baseline-optimized" {
				want[qn] = got
				continue
			}
			w := want[qn]
			if len(got) != len(w) {
				t.Errorf("%s Q%d: %d rows, want %d", cfg.name, qn, len(got), len(w))
				continue
			}
			for i := range got {
				if got[i] != w[i] {
					t.Errorf("%s Q%d: row %d\n got %s\nwant %s", cfg.name, qn, i, got[i], w[i])
					break
				}
			}
		}
	}
	if vectorMorsels == 0 {
		t.Error("forced-vector configs never executed a vectorized morsel")
	}
}

// mkRandTable builds a table with every storable column family for the
// property test.
func mkRandTable(n int, rng *rand.Rand) *storage.Table {
	a := storage.NewColumn("a", storage.Int64)
	b := storage.NewColumn("b", storage.Int64)
	d := storage.NewColumn("d", storage.Decimal)
	f := storage.NewColumn("f", storage.Float64)
	dt := storage.NewColumn("dt", storage.Date)
	ch := storage.NewColumn("ch", storage.Char)
	s := storage.NewColumn("s", storage.String)
	words := []string{"alpha", "bravo brown", "charlie", "delta deposits",
		"echo", "foxtrot fox", ""}
	for i := 0; i < n; i++ {
		a.AppendInt64(int64(rng.Intn(200) - 100))
		b.AppendInt64(int64(rng.Intn(50)))
		d.AppendInt64(int64(rng.Intn(100000) - 20000))
		f.AppendFloat64(rng.NormFloat64() * 100)
		dt.AppendInt64(int64(8000 + rng.Intn(4000)))
		ch.AppendChar(byte("XYZ"[rng.Intn(3)]))
		s.AppendString(words[rng.Intn(len(words))])
	}
	return storage.NewTable("rnd", a, b, d, f, dt, ch, s)
}

// randPred builds a random boolean predicate over the random table's
// schema: comparisons over int/decimal/float/date/string columns and
// arithmetic thereof, composed with AND/OR/NOT, LIKE, IN and CASE.
func randPred(sch []plan.ColDef, rng *rand.Rand, depth int) expr.Expr {
	if depth > 2 || rng.Intn(3) == 0 {
		// Leaf comparison.
		switch rng.Intn(6) {
		case 0:
			return expr.Gt(plan.C(sch, "a"), expr.Int(int64(rng.Intn(120)-60)))
		case 1:
			l := expr.Add(plan.C(sch, "d"), expr.Dec(int64(rng.Intn(1000)), 2))
			return expr.Le(l, expr.Dec(int64(rng.Intn(100000)-10000), 2))
		case 2:
			return expr.Lt(plan.C(sch, "f"), expr.Float(rng.NormFloat64()*80))
		case 3:
			return expr.Between(plan.C(sch, "dt"),
				expr.Date(int64(8000+rng.Intn(2000))), expr.Date(int64(9500+rng.Intn(2500))))
		case 4:
			pats := []string{"%o%", "a%", "%x", "%fo%", "charlie"}
			return expr.Like(plan.C(sch, "s"), pats[rng.Intn(len(pats))])
		default:
			return expr.In(plan.C(sch, "b"),
				expr.Int(int64(rng.Intn(50))), expr.Int(int64(rng.Intn(50))),
				expr.Int(int64(rng.Intn(50))))
		}
	}
	switch rng.Intn(3) {
	case 0:
		return expr.And(randPred(sch, rng, depth+1), randPred(sch, rng, depth+1))
	case 1:
		return expr.Or(randPred(sch, rng, depth+1), randPred(sch, rng, depth+1))
	default:
		return expr.Not(randPred(sch, rng, depth+1))
	}
}

// TestVectorPropertyRandomPredicates builds many random
// scan→filter→aggregate plans and asserts the forced-vector engine matches
// the Volcano interpreter row for row. This exercises the typed kernels
// (comparison, arithmetic with decimal rescaling, short-circuit logic,
// LIKE, IN, CASE) against the tree-walking reference on data with negative
// values, NaN-free floats and empty strings.
func TestVectorPropertyRandomPredicates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tb := mkRandTable(4000, rng)
	e := exec.New(exec.Options{Workers: 3, Mode: exec.ModeVector, Cost: exec.Native(),
		MorselSize: 256})
	for trial := 0; trial < 40; trial++ {
		build := func() plan.Node {
			sc := plan.NewScan(tb, "a", "b", "d", "f", "dt", "ch", "s")
			sch := sc.Schema()
			r := rand.New(rand.NewSource(int64(trial)))
			sc.Where(randPred(sch, r, 0))
			return plan.NewGroupBy(sc,
				[]expr.Expr{plan.C(sch, "b")}, []string{"b"},
				[]plan.AggExpr{
					{Func: plan.CountStar, Name: "n"},
					{Func: plan.Sum, Arg: plan.C(sch, "a"), Name: "sa"},
					{Func: plan.Min, Arg: plan.C(sch, "d"), Name: "mind"},
					{Func: plan.Max, Arg: plan.C(sch, "f"), Name: "maxf"},
					{Func: plan.Avg, Arg: plan.C(sch, "d"), Name: "avgd"},
				})
		}
		ref := build()
		want, err := volcano.Run(ref)
		if err != nil {
			t.Fatalf("trial %d: volcano: %v", trial, err)
		}
		wantC := canon(want, typesOf(ref.Schema()))
		res, err := e.RunPlan(build(), fmt.Sprintf("prop%d", trial))
		if err != nil {
			t.Fatalf("trial %d: vector: %v", trial, err)
		}
		gotC := canon(res.Rows, res.Types)
		if len(gotC) != len(wantC) {
			t.Fatalf("trial %d: %d rows, want %d", trial, len(gotC), len(wantC))
		}
		for i := range gotC {
			if gotC[i] != wantC[i] {
				t.Fatalf("trial %d row %d:\n got %s\nwant %s", trial, i, gotC[i], wantC[i])
			}
		}
	}
}

// TestVectorTrapParity: a query whose aggregation overflows int64 must trap
// under the vectorized engine exactly like the compiled tiers — an error,
// not a wrapped-around result.
func TestVectorTrapParity(t *testing.T) {
	v := storage.NewColumn("v", storage.Int64)
	for i := 0; i < 100; i++ {
		v.AppendInt64(math.MaxInt64 / 3)
	}
	tb := storage.NewTable("ovf", v)
	build := func() plan.Node {
		sc := plan.NewScan(tb, "v")
		return plan.NewGroupBy(sc, nil, nil,
			[]plan.AggExpr{{Func: plan.Sum, Arg: plan.C(sc.Schema(), "v"), Name: "s"}})
	}
	for _, mode := range []exec.Mode{exec.ModeOptimized, exec.ModeVector} {
		e := exec.New(exec.Options{Workers: 1, Mode: mode, Cost: exec.Native()})
		if _, err := e.RunPlan(build(), "ovf"); err == nil {
			t.Errorf("%v: overflowing sum did not trap", mode)
		}
	}
}

// TestVectorDivZeroParity: per-tuple division by zero behind a filter traps
// in neither engine when the filter removes the zero rows (the evaluation
// set contract), and traps in both when it does not.
func TestVectorDivZeroParity(t *testing.T) {
	a := storage.NewColumn("a", storage.Int64)
	b := storage.NewColumn("b", storage.Int64)
	for i := 0; i < 1000; i++ {
		a.AppendInt64(int64(i))
		b.AppendInt64(int64(i % 5)) // zeros at every i%5==0
	}
	tb := storage.NewTable("dz", a, b)
	build := func(filtered bool) plan.Node {
		sc := plan.NewScan(tb, "a", "b")
		sch := sc.Schema()
		if filtered {
			sc.Where(expr.Gt(plan.C(sch, "b"), expr.Int(0)))
		}
		return plan.NewGroupBy(sc, nil, nil,
			[]plan.AggExpr{{Func: plan.Sum,
				Arg: expr.Div(plan.C(sch, "a"), plan.C(sch, "b")), Name: "q"}})
	}
	for _, mode := range []exec.Mode{exec.ModeOptimized, exec.ModeVector} {
		e := exec.New(exec.Options{Workers: 1, Mode: mode, Cost: exec.Native()})
		if _, err := e.RunPlan(build(false), "dz-unfiltered"); err == nil {
			t.Errorf("%v: unfiltered division by zero did not trap", mode)
		}
		res, err := e.RunPlan(build(true), "dz-filtered")
		if err != nil {
			t.Errorf("%v: filtered division trapped: %v", mode, err)
		} else if len(res.Rows) != 1 {
			t.Errorf("%v: %d rows, want 1", mode, len(res.Rows))
		}
	}
}

// TestVectorJoinShapes covers each join kind through the vectorized probe
// against the Volcano reference, including residual predicates on inner
// joins and the count column of outer-count joins.
func TestVectorJoinShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dim := mkRandTable(300, rng)
	factA := storage.NewColumn("fk", storage.Int64)
	factV := storage.NewColumn("fv", storage.Decimal)
	for i := 0; i < 5000; i++ {
		factA.AppendInt64(int64(rng.Intn(80) - 10)) // misses on both ends
		factV.AppendInt64(int64(rng.Intn(10000)))
	}
	fact := storage.NewTable("fact", factA, factV)

	cases := []struct {
		name     string
		kind     plan.JoinKind
		residual bool
	}{
		{"inner", plan.Inner, false},
		{"inner-residual", plan.Inner, true},
		{"semi", plan.Semi, false},
		{"anti", plan.Anti, false},
		{"outer-count", plan.OuterCount, false},
	}
	e := exec.New(exec.Options{Workers: 4, Mode: exec.ModeVector, Cost: exec.Native(),
		MorselSize: 512})
	for _, tc := range cases {
		build := func() plan.Node {
			d := plan.NewScan(dim, "b", "d")
			f := plan.NewScan(fact, "fk", "fv")
			var payload []string
			if tc.kind == plan.Inner {
				payload = []string{"d"}
			}
			j := plan.NewJoin(tc.kind, d, f,
				[]expr.Expr{plan.C(d.Schema(), "b")},
				[]expr.Expr{plan.C(f.Schema(), "fk")},
				payload)
			if tc.residual {
				jsch := j.Schema()
				j.WithResidual(expr.Gt(plan.C(jsch, "d"), expr.Dec(0, 2)))
			}
			jsch := j.Schema()
			aggs := []plan.AggExpr{{Func: plan.CountStar, Name: "n"},
				{Func: plan.Sum, Arg: plan.C(jsch, "fv"), Name: "sv"}}
			if tc.kind == plan.OuterCount {
				aggs = append(aggs, plan.AggExpr{Func: plan.Sum,
					Arg: plan.C(jsch, "match_count"), Name: "mc"})
			}
			return plan.NewGroupBy(j, nil, nil, aggs)
		}
		ref := build()
		want, err := volcano.Run(ref)
		if err != nil {
			t.Fatalf("%s: volcano: %v", tc.name, err)
		}
		wantC := canon(want, typesOf(ref.Schema()))
		res, err := e.RunPlan(build(), "join-"+tc.name)
		if err != nil {
			t.Fatalf("%s: vector: %v", tc.name, err)
		}
		gotC := canon(res.Rows, res.Types)
		if fmt.Sprint(gotC) != fmt.Sprint(wantC) {
			t.Errorf("%s:\n got %v\nwant %v", tc.name, gotC, wantC)
		}
	}
}
