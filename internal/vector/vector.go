// Package vector is the column-at-a-time engine, the MonetDB stand-in of
// the paper's Table I/II baselines: every operator materializes full
// column vectors and every expression evaluates over whole columns with
// the type/operator dispatch hoisted out of the loop — no per-tuple
// interpretation overhead, but full intermediate materialization.
package vector

import (
	"fmt"
	"math"

	"aqe/internal/expr"
	"aqe/internal/plan"
	"aqe/internal/rt"
	"aqe/internal/storage"
	"aqe/internal/volcano"
)

// batch is a set of equal-length column vectors.
type batch struct {
	cols [][]expr.Datum
	n    int
}

// Run executes the plan column-at-a-time and returns the result rows.
func Run(root plan.Node) (rows [][]expr.Datum, err error) {
	err = rt.CatchTrap(func() {
		b := eval(root)
		rows = make([][]expr.Datum, b.n)
		for i := 0; i < b.n; i++ {
			row := make([]expr.Datum, len(b.cols))
			for j := range b.cols {
				row[j] = b.cols[j][i]
			}
			rows[i] = row
		}
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func eval(n plan.Node) *batch {
	switch x := n.(type) {
	case *plan.Scan:
		return evalScan(x)
	case *plan.Filter:
		in := eval(x.Input)
		sel := selTrue(evalVec(x.Cond, in))
		return gather(in, sel)
	case *plan.Project:
		in := eval(x.Input)
		out := &batch{n: in.n}
		for _, e := range x.Exprs {
			out.cols = append(out.cols, evalVec(e, in))
		}
		return out
	case *plan.Join:
		return evalJoin(x)
	case *plan.GroupBy:
		return evalGroup(x)
	case *plan.OrderBy:
		in := eval(x.Input)
		rows := make([][]expr.Datum, in.n)
		for i := 0; i < in.n; i++ {
			row := make([]expr.Datum, len(in.cols))
			for j := range in.cols {
				row[j] = in.cols[j][i]
			}
			rows[i] = row
		}
		volcano.SortRows(rows, x.Keys)
		if x.Limit >= 0 && len(rows) > x.Limit {
			rows = rows[:x.Limit]
		}
		out := &batch{n: len(rows)}
		for j := range in.cols {
			col := make([]expr.Datum, len(rows))
			for i, row := range rows {
				col[i] = row[j]
			}
			out.cols = append(out.cols, col)
		}
		return out
	}
	panic(fmt.Sprintf("vector: unsupported node %T", n))
}

// evalScan decodes the scan columns fully (one column at a time), then
// applies the pushed-down filter as a selection.
func evalScan(s *plan.Scan) *batch {
	n := s.Table.Rows()
	b := &batch{n: n}
	for _, name := range s.Cols {
		c := s.Table.MustCol(name)
		col := make([]expr.Datum, n)
		switch c.Kind {
		case storage.Float64:
			for i := 0; i < n; i++ {
				col[i] = expr.Datum{F: c.Float64At(i)}
			}
		case storage.Char:
			for i := 0; i < n; i++ {
				col[i] = expr.Datum{I: int64(c.CharAt(i))}
			}
		case storage.String:
			for i := 0; i < n; i++ {
				col[i] = expr.Datum{S: c.StringAt(i)}
			}
		default:
			for i := 0; i < n; i++ {
				col[i] = expr.Datum{I: c.Int64At(i)}
			}
		}
		b.cols = append(b.cols, col)
	}
	if s.Filter != nil {
		sel := selTrue(evalVec(s.Filter, b))
		b = gather(b, sel)
	}
	return b
}

func selTrue(v []expr.Datum) []int32 {
	sel := make([]int32, 0, len(v))
	for i := range v {
		if v[i].I != 0 {
			sel = append(sel, int32(i))
		}
	}
	return sel
}

func gather(b *batch, sel []int32) *batch {
	out := &batch{n: len(sel)}
	for _, col := range b.cols {
		nc := make([]expr.Datum, len(sel))
		for i, s := range sel {
			nc[i] = col[s]
		}
		out.cols = append(out.cols, nc)
	}
	return out
}

type joinKey [4]int64

func keyVec(keys []expr.Expr, b *batch) []joinKey {
	out := make([]joinKey, b.n)
	for ki, e := range keys {
		v := evalVec(e, b)
		for i := range v {
			out[i][ki] = v[i].I
		}
	}
	return out
}

func evalJoin(j *plan.Join) *batch {
	build := eval(j.Build)
	probe := eval(j.Probe)
	bk := keyVec(j.BuildKeys, build)
	pk := keyVec(j.ProbeKeys, probe)
	ht := make(map[joinKey][]int32, build.n)
	for i := 0; i < build.n; i++ {
		ht[bk[i]] = append(ht[bk[i]], int32(i))
	}
	residual := func(pi, bi int32) bool {
		if j.Residual == nil {
			return true
		}
		row := make([]expr.Datum, 0, len(probe.cols)+len(build.cols))
		for _, c := range probe.cols {
			row = append(row, c[pi])
		}
		for _, c := range build.cols {
			row = append(row, c[bi])
		}
		return expr.Eval(j.Residual, row).Bool()
	}
	var psel, bsel []int32
	var counts []expr.Datum
	for pi := 0; pi < probe.n; pi++ {
		cands := ht[pk[pi]]
		switch j.Kind {
		case plan.Inner:
			for _, bi := range cands {
				if residual(int32(pi), bi) {
					psel = append(psel, int32(pi))
					bsel = append(bsel, bi)
				}
			}
		case plan.Semi:
			for _, bi := range cands {
				if residual(int32(pi), bi) {
					psel = append(psel, int32(pi))
					break
				}
			}
		case plan.Anti:
			hit := false
			for _, bi := range cands {
				if residual(int32(pi), bi) {
					hit = true
					break
				}
			}
			if !hit {
				psel = append(psel, int32(pi))
			}
		case plan.OuterCount:
			cnt := int64(0)
			for _, bi := range cands {
				if residual(int32(pi), bi) {
					cnt++
				}
			}
			psel = append(psel, int32(pi))
			counts = append(counts, expr.Datum{I: cnt})
		}
	}
	out := gather(probe, psel)
	switch j.Kind {
	case plan.Inner:
		for _, idx := range j.PayloadIdx {
			col := make([]expr.Datum, len(bsel))
			for i, bi := range bsel {
				col[i] = build.cols[idx][bi]
			}
			out.cols = append(out.cols, col)
		}
	case plan.OuterCount:
		out.cols = append(out.cols, counts)
	}
	return out
}

func evalGroup(g *plan.GroupBy) *batch {
	in := eval(g.Input)
	keyVecs := make([][]expr.Datum, len(g.Keys))
	for i, k := range g.Keys {
		keyVecs[i] = evalVec(k, in)
	}
	argVecs := make([][]expr.Datum, len(g.Aggs))
	for i, a := range g.Aggs {
		if a.Arg != nil {
			argVecs[i] = evalVec(a.Arg, in)
		}
	}
	type gstate struct {
		key  []expr.Datum
		aggs []uint64
	}
	slots := volcano.AggSlots(g.Aggs)
	index := make(map[string]*gstate)
	var order []*gstate
	var keybuf []byte
	for i := 0; i < in.n; i++ {
		keybuf = keybuf[:0]
		for ki, kv := range keyVecs {
			if g.Keys[ki].Type().Kind == expr.KString {
				keybuf = append(keybuf, kv[i].S...)
				keybuf = append(keybuf, 0xFF)
			} else {
				for b := 0; b < 8; b++ {
					keybuf = append(keybuf, byte(uint64(kv[i].I)>>(8*b)))
				}
			}
		}
		st, ok := index[string(keybuf)]
		if !ok {
			key := make([]expr.Datum, len(keyVecs))
			for ki, kv := range keyVecs {
				key[ki] = kv[i]
			}
			st = &gstate{key: key, aggs: make([]uint64, len(slots))}
			for si, k := range slots {
				st.aggs[si] = k.Init()
			}
			index[string(keybuf)] = st
			order = append(order, st)
		}
		slot := 0
		for ai, a := range g.Aggs {
			switch a.Func {
			case plan.Count, plan.CountStar:
				st.aggs[slot] = rt.AggCount.Combine(st.aggs[slot], 1)
				slot++
			case plan.Avg:
				st.aggs[slot] = slots[slot].Combine(st.aggs[slot],
					volcano.DatumBits(argVecs[ai][i], a.Arg.Type()))
				st.aggs[slot+1] = rt.AggCount.Combine(st.aggs[slot+1], 1)
				slot += 2
			default:
				st.aggs[slot] = slots[slot].Combine(st.aggs[slot],
					volcano.DatumBits(argVecs[ai][i], a.Arg.Type()))
				slot++
			}
		}
	}
	if len(g.Keys) == 0 && len(order) == 0 {
		st := &gstate{aggs: make([]uint64, len(slots))}
		for si, k := range slots {
			st.aggs[si] = k.Init()
		}
		order = append(order, st)
	}
	out := &batch{n: len(order)}
	for ki := range g.Keys {
		col := make([]expr.Datum, len(order))
		for i, st := range order {
			col[i] = st.key[ki]
		}
		out.cols = append(out.cols, col)
	}
	slot := 0
	for _, a := range g.Aggs {
		col := make([]expr.Datum, len(order))
		switch a.Func {
		case plan.Avg:
			for i, st := range order {
				sum, cnt := st.aggs[slot], int64(st.aggs[slot+1])
				var f float64
				if cnt != 0 {
					if a.Arg.Type().Kind == expr.KFloat {
						f = math.Float64frombits(sum) / float64(cnt)
					} else {
						f = volcano.DecToFloat(int64(sum), a.Arg.Type()) / float64(cnt)
					}
				}
				col[i] = expr.Datum{F: f}
			}
			slot += 2
		default:
			isF := a.Func == plan.Sum && a.Arg.Type().Kind == expr.KFloat
			for i, st := range order {
				if isF {
					col[i] = expr.Datum{F: math.Float64frombits(st.aggs[slot])}
				} else {
					col[i] = expr.Datum{I: int64(st.aggs[slot])}
				}
			}
			slot++
		}
		out.cols = append(out.cols, col)
	}
	return out
}
