// Package vector is the morsel-driven vectorized execution engine: the
// third engine family next to the closure/native tiers (internal/exec's
// compiled pipelines) and the Volcano iterator baseline. It consumes the
// same pipeline decomposition, morsel ranges, hash tables, aggregation
// states and output buffers as the compiled tiers — a kernel is just
// another implementation of worker(state, local, begin, end) — so the
// engine can switch a pipeline between compiled and vectorized execution
// between any two morsels and the pipeline breakers merge whatever both
// engines wrote, bit for bit.
//
// Execution is batch-at-a-time (batchN tuples) over unboxed typed vectors
// (int64 / float64 / string-(addr,len) slices) with selection vectors.
// Filters narrow the selection; projections evaluate eagerly under the
// current selection; probes walk the shared chaining hash tables per lane
// and rebase matches into dense pair frames; sinks replay the compiled
// sinks' store protocols exactly (hash functions, tuple layouts, slot
// update order, overflow checks).
//
// Equivalence contract with the compiled tiers: the set of (expression,
// tuple) evaluations is identical — vectorized evaluation narrows inner
// selections for short-circuit AND/OR/CASE exactly where compiled code
// branches — so both engines trap on the same inputs and produce the same
// bytes. The one permitted divergence is *which* trap fires first when a
// single batch contains several failing tuples: compiled code fails on the
// first bad row, a kernel on the first bad column phase. Both abort the
// query with a trap either way.
package vector

import (
	"encoding/binary"
	"fmt"
	"math"

	"aqe/internal/codegen"
	"aqe/internal/expr"
	"aqe/internal/plan"
	"aqe/internal/rt"
	"aqe/internal/storage"
)

// batchN is the vector length: big enough to amortize per-batch overheads
// and overlap hash-table misses, small enough that a working set of a few
// columns stays in L1/L2 (the classic vectorwise operating point).
const batchN = 1024

// Hash constants of the generated code's integer mixer (emit.go hashKeys).
const (
	hashM1 = uint64(0x9E3779B97F4A7C15)
	hashM2 = uint64(0x811C9DC5FC2C4B5D)
)

// mixInt is the per-key integer mixer of the compiled hash protocol.
func mixInt(k uint64) uint64 {
	kh := k * hashM1
	kh ^= kh >> 32
	kh *= hashM2
	kh ^= kh >> 29
	return kh
}

// Kernel is a compiled vectorized pipeline. It is immutable after Compile
// and safe for concurrent Run calls from multiple workers: all mutable
// batch state lives in per-worker run contexts.
type Kernel struct {
	spec   *codegen.VecSpec
	probes []*probeInfo // parallel to spec.Ops; nil for non-probe ops
}

// probeInfo precomputes per-probe lookup structures.
type probeInfo struct {
	p      *codegen.VecProbe
	idx    int // operator position: selects the run context's pair buffer
	buildW int // build-side schema width (residual view column count)
	// byIdx maps a build-schema column index to its stored field.
	byIdx map[int]codegen.VecField
	// payload lists the stored fields of the downstream payload columns in
	// PayloadIdx order (Inner joins).
	payload []codegen.VecField
}

// Compile builds a vectorized kernel from the pipeline's spec. It returns
// an error for pipeline shapes the vectorized engine cannot execute with
// bit-identical semantics; the engine falls back to the compiled tiers.
func Compile(spec *codegen.VecSpec) (*Kernel, error) {
	if spec == nil {
		return nil, fmt.Errorf("vector: pipeline has no spec")
	}
	k := &Kernel{spec: spec, probes: make([]*probeInfo, len(spec.Ops))}
	for i, op := range spec.Ops {
		if op.Probe == nil {
			continue
		}
		p := op.Probe
		j := p.Join
		if (j.Kind == plan.Semi || j.Kind == plan.Anti) && j.Residual != nil {
			// Compiled semi/anti probes stop at the first hash/key match and
			// never evaluate the residual for later chain candidates; a
			// batch evaluator cannot reproduce that evaluation set exactly
			// (a later candidate's residual could trap), so these shapes
			// stay on the compiled tiers.
			return nil, fmt.Errorf("vector: %v join with residual", j.Kind)
		}
		for _, ke := range j.ProbeKeys {
			if ke.Type().Kind == expr.KString {
				return nil, fmt.Errorf("vector: string join key")
			}
		}
		pi := &probeInfo{
			p: p, idx: i, buildW: len(j.Build.Schema()),
			byIdx: make(map[int]codegen.VecField, len(p.Fields)),
		}
		for _, f := range p.Fields {
			pi.byIdx[f.SrcIdx] = f
		}
		if j.Kind == plan.Inner {
			for _, src := range j.PayloadIdx {
				f, ok := pi.byIdx[src]
				if !ok {
					return nil, fmt.Errorf("vector: payload references unsaved build column %d", src)
				}
				pi.payload = append(pi.payload, f)
			}
		}
		if j.Residual != nil {
			var missing bool
			collectColRefs(j.Residual, func(idx int) {
				if idx >= p.NP {
					if _, ok := pi.byIdx[idx-p.NP]; !ok {
						missing = true
					}
				}
			})
			if missing {
				return nil, fmt.Errorf("vector: residual references unsaved build column")
			}
		}
		k.probes[i] = pi
	}
	return k, nil
}

// collectColRefs invokes fn for every column reference in e.
func collectColRefs(e expr.Expr, fn func(idx int)) {
	walk(e, func(x expr.Expr) {
		if cr, ok := x.(*expr.ColRef); ok {
			fn(cr.Idx)
		}
	})
}

// walk invokes fn on e and every subexpression.
func walk(e expr.Expr, fn func(expr.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *expr.Arith:
		walk(x.L, fn)
		walk(x.R, fn)
	case *expr.Cmp:
		walk(x.L, fn)
		walk(x.R, fn)
	case *expr.Logic:
		for _, a := range x.Args {
			walk(a, fn)
		}
	case *expr.NotExpr:
		walk(x.Arg, fn)
	case *expr.LikeExpr:
		walk(x.Arg, fn)
	case *expr.InList:
		walk(x.Arg, fn)
	case *expr.CaseExpr:
		for _, w := range x.Whens {
			walk(w.Cond, fn)
			walk(w.Then, fn)
		}
		walk(x.Else, fn)
	case *expr.YearExpr:
		walk(x.Arg, fn)
	case *expr.SubstrExpr:
		walk(x.Arg, fn)
	case *expr.CastExpr:
		walk(x.Arg, fn)
	}
}

// Run executes the kernel over the morsel [args[2], args[3]) with the
// worker-function ABI of the compiled tiers: args[0] = state arena,
// args[1] = worker-local arena. Traps propagate as *rt.Trap panics exactly
// like compiled code; the engine's dispatch boundary catches them.
func (k *Kernel) Run(ctx *rt.Ctx, args []uint64) {
	rc := k.ctxFor(ctx, args[0], args[1])
	begin, end := int64(args[2]), int64(args[3])
	for lo := begin; lo < end; lo += batchN {
		hi := lo + batchN
		if hi > end {
			hi = end
		}
		rc.reset()
		k.runBatch(rc, lo, int(hi-lo))
	}
}

// ctxFor returns the worker's pooled run context for this kernel, creating
// it on first use. Contexts (and all their batch buffers) live on
// ctx.Local, so after warm-up the batch loop allocates nothing.
func (k *Kernel) ctxFor(ctx *rt.Ctx, state, local uint64) *runCtx {
	m, _ := ctx.Local.(map[*Kernel]*runCtx)
	if m == nil {
		m = make(map[*Kernel]*runCtx)
		ctx.Local = m
	}
	rc := m[k]
	if rc == nil {
		rc = &runCtx{kern: k}
		m[k] = rc
	}
	rc.mem = ctx.Mem
	rc.qs = ctx.Query.(*rt.QueryState)
	rc.worker = ctx.Worker
	rc.state = state
	rc.local = local
	return rc
}

// runBatch pushes one batch of source tuples through the operator chain
// into the sink.
func (k *Kernel) runBatch(rc *runCtx, lo int64, n int) {
	fr := rc.sourceFrame(lo, n)
	for i, op := range k.spec.Ops {
		switch {
		case op.Filter != nil:
			c := rc.eval(op.Filter.Cond, fr, fr.sel)
			fr.sel = rc.narrow(fr.sel, c)
		case op.Project != nil:
			fr = rc.project(op.Project, fr)
		case op.Probe != nil:
			fr = rc.probe(k.probes[i], fr)
		}
		if len(fr.sel) == 0 {
			return
		}
	}
	switch {
	case k.spec.Build != nil:
		rc.buildSink(k.spec.Build, fr)
	case k.spec.Agg != nil:
		rc.aggSink(k.spec.Agg, fr)
	case k.spec.Out != nil:
		rc.outSink(k.spec.Out, fr)
	}
}

// ---- run context and buffer pools ----

// runCtx is the per-(worker, kernel) batch state: typed vector pools, the
// segment-table snapshot, and scratch selection vectors. Pools are leased
// per batch (reset rewinds the lease counters without freeing), so the
// steady-state batch loop performs no heap allocation.
type runCtx struct {
	kern   *Kernel
	mem    *rt.Memory
	qs     *rt.QueryState
	worker int
	state  uint64
	local  uint64

	cols     []*col
	ncol     int
	sels     [][]int32
	nsel     int
	frames   []*frame
	nframe   int
	ids      []int32   // identity selection prefix
	pairBufs []pairBuf // per-probe-operator match pair storage
}

func (rc *runCtx) reset() {
	rc.ncol, rc.nsel, rc.nframe = 0, 0, 0
}

// col is one unboxed column vector. Exactly one representation is active
// (kind), chosen by the expression/schema type: i for int-family values
// (ints, decimals, dates, bools, chars), f for floats, sa/sl for strings
// as (addr, len) pairs into the shared address space — the same references
// compiled code manipulates, so stores compare bit-identical. The inactive
// slices are retained backing buffers of earlier leases.
type col struct {
	kind uint8 // kInt / kFloat / kStr
	i    []int64
	f    []float64
	sa   []uint64
	sl   []int64
}

const (
	kInt uint8 = iota
	kFloat
	kStr
)

func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

func (c *col) ints(n int) []int64 {
	c.kind = kInt
	c.i = grow(c.i, n)
	return c.i
}

func (c *col) floats(n int) []float64 {
	c.kind = kFloat
	c.f = grow(c.f, n)
	return c.f
}

func (c *col) strs(n int) ([]uint64, []int64) {
	c.kind = kStr
	c.sa = grow(c.sa, n)
	c.sl = grow(c.sl, n)
	return c.sa, c.sl
}

// u64s leases the address buffer as raw scratch (hash values, entry
// addresses). Scratch columns never enter a frame, so kind is irrelevant.
func (c *col) u64s(n int) []uint64 {
	c.kind = kStr
	c.sa = grow(c.sa, n)
	return c.sa
}

func (rc *runCtx) newCol() *col {
	if rc.ncol == len(rc.cols) {
		rc.cols = append(rc.cols, &col{})
	}
	c := rc.cols[rc.ncol]
	rc.ncol++
	return c
}

func (rc *runCtx) selBuf(n int) []int32 {
	if rc.nsel == len(rc.sels) {
		rc.sels = append(rc.sels, nil)
	}
	s := rc.sels[rc.nsel]
	rc.nsel++
	if cap(s) < n {
		s = make([]int32, 0, n)
		rc.sels[rc.nsel-1] = s
	}
	return s[:0]
}

// identity returns the selection [0, n).
func (rc *runCtx) identity(n int) []int32 {
	for len(rc.ids) < n {
		rc.ids = append(rc.ids, int32(len(rc.ids)))
	}
	return rc.ids[:n]
}

// narrow keeps the lanes of sel whose condition value is true.
func (rc *runCtx) narrow(sel []int32, c *col) []int32 {
	out := rc.selBuf(len(sel))
	for _, k := range sel {
		if c.i[k] != 0 {
			out = append(out, k)
		}
	}
	return out
}

// ---- address-space access ----

// seg returns the byte slice at addr through the live segment table — one
// atomic load per access, exactly like a compiled closure's loads. A
// snapshot would go stale mid-batch: hash-table growth both appends new
// segments and replaces a bucket segment's backing bytes (SetSegment).
func (rc *runCtx) seg(a uint64) []byte {
	return rc.mem.Seg(a)
}

func (rc *runCtx) ld64(a uint64) uint64 {
	return binary.LittleEndian.Uint64(rc.seg(a))
}

func (rc *runCtx) ld16(a uint64) uint64 {
	return uint64(binary.LittleEndian.Uint16(rc.seg(a)))
}

func (rc *runCtx) st64(a uint64, v uint64) {
	binary.LittleEndian.PutUint64(rc.seg(a), v)
}

// str returns the n bytes at addr.
func (rc *runCtx) str(a uint64, n int64) []byte {
	return rc.seg(a)[:n]
}

// ---- frames ----

// frame is one batch flowing through the pipeline: n lanes, a selection
// vector of live lanes, lazily materialized columns, and the source scan
// row of each lane (probe rebases gather it) for dictionary-code lookups.
type frame struct {
	n    int
	sel  []int32
	rows []int64
	cols []*col

	// Source descriptor (base frames): scan batch start row.
	base *runCtx
	lo   int64

	// Pair frames (Inner / residual view): parent frame, gather map and
	// matched entries; outView selects payload-index field resolution.
	parent  *frame
	pk      []int32
	pe      []uint64
	probe   *probeInfo
	outView bool

	// passthrough marks frames sharing the parent's lanes (OuterCount):
	// columns below np come from the parent without a gather.
	passthrough bool
}

func (rc *runCtx) newFrame(ncols int) *frame {
	if rc.nframe == len(rc.frames) {
		rc.frames = append(rc.frames, &frame{})
	}
	f := rc.frames[rc.nframe]
	rc.nframe++
	cols := f.cols
	*f = frame{}
	if cap(cols) < ncols {
		cols = make([]*col, ncols)
	} else {
		cols = cols[:ncols]
		for i := range cols {
			cols[i] = nil
		}
	}
	f.cols = cols
	return f
}

// col returns column j, materializing it on first use.
func (fr *frame) col(rc *runCtx, j int) *col {
	if c := fr.cols[j]; c != nil {
		return c
	}
	var c *col
	switch {
	case fr.probe != nil && j >= fr.probe.p.NP:
		// Stored build-side field of a pair frame.
		var f codegen.VecField
		if fr.outView {
			f = fr.probe.payload[j-fr.probe.p.NP]
		} else {
			f = fr.probe.byIdx[j-fr.probe.p.NP]
		}
		c = rc.loadFieldCol(fr, f)
	case fr.parent != nil && fr.passthrough:
		c = fr.parent.col(rc, j)
	case fr.parent != nil:
		c = rc.gather(fr, fr.parent.col(rc, j))
	default:
		c = rc.kern.sourceCol(rc, fr, j)
	}
	fr.cols[j] = c
	return c
}

// gather pulls the parent column through the pair frame's gather map.
func (rc *runCtx) gather(fr *frame, pc *col) *col {
	c := rc.newCol()
	n := fr.n
	switch pc.kind {
	case kStr:
		sa, sl := c.strs(n)
		for _, k := range fr.sel {
			p := fr.pk[k]
			sa[k], sl[k] = pc.sa[p], pc.sl[p]
		}
	case kFloat:
		f := c.floats(n)
		for _, k := range fr.sel {
			f[k] = pc.f[fr.pk[k]]
		}
	default:
		i := c.ints(n)
		for _, k := range fr.sel {
			i[k] = pc.i[fr.pk[k]]
		}
	}
	return c
}

// loadFieldCol loads a stored tuple field for every live lane of a pair
// frame (typed loads at entry+off, the vector form of compiled loadAt).
func (rc *runCtx) loadFieldCol(fr *frame, f codegen.VecField) *col {
	c := rc.newCol()
	n := fr.n
	off := uint64(f.Off)
	switch f.T.Kind {
	case expr.KFloat:
		fv := c.floats(n)
		for _, k := range fr.sel {
			fv[k] = math.Float64frombits(rc.ld64(fr.pe[k] + off))
		}
	case expr.KString:
		sa, sl := c.strs(n)
		for _, k := range fr.sel {
			sa[k] = rc.ld64(fr.pe[k] + off)
			sl[k] = int64(rc.ld64(fr.pe[k] + off + 8))
		}
	default:
		iv := c.ints(n)
		for _, k := range fr.sel {
			iv[k] = int64(rc.ld64(fr.pe[k] + off))
		}
	}
	return c
}

// ---- sources ----

// sourceFrame builds the base frame of a batch: rows [lo, lo+n).
func (rc *runCtx) sourceFrame(lo int64, n int) *frame {
	sp := rc.kern.spec
	var width int
	if sp.Scan != nil {
		width = len(sp.Scan.Cols)
	} else {
		gb := sp.AggSrc.GB
		width = len(gb.Keys) + len(gb.Aggs)
	}
	fr := rc.newFrame(width)
	fr.n = n
	fr.sel = rc.identity(n)
	fr.lo = lo
	rows := rc.newCol().ints(n)
	for k := 0; k < n; k++ {
		rows[k] = lo + int64(k)
	}
	fr.rows = rows
	return fr
}

// sourceCol materializes source column j over the full batch (raw loads
// cannot trap, so eager full-width materialization is safe and keeps the
// inner loops branch-free).
func (k *Kernel) sourceCol(rc *runCtx, fr *frame, j int) *col {
	if k.spec.Scan != nil {
		return rc.scanCol(&k.spec.Scan.Cols[j], fr)
	}
	return rc.groupCol(k.spec.AggSrc, fr, j)
}

// scanCol decodes one storage column for rows [lo, lo+n): the unboxed
// typed scan kernels. Column bytes are read through the registered base
// address, not the *storage.Column — a cached kernel must resolve to the
// current run's data exactly like cached compiled closures do.
func (rc *runCtx) scanCol(vc *codegen.VecCol, fr *frame) *col {
	c := rc.newCol()
	n := fr.n
	lo := int(fr.lo)
	data := rc.seg(vc.Base)
	switch vc.Kind {
	case storage.Float64:
		f := c.floats(n)
		src := data[lo*8:]
		for k := 0; k < n; k++ {
			f[k] = math.Float64frombits(binary.LittleEndian.Uint64(src[k*8:]))
		}
	case storage.Char:
		i := c.ints(n)
		src := data[lo:]
		for k := 0; k < n; k++ {
			i[k] = int64(src[k])
		}
	case storage.String:
		sa, sl := c.strs(n)
		src := data[lo*16:]
		heap := vc.Heap
		for k := 0; k < n; k++ {
			sa[k] = heap + binary.LittleEndian.Uint64(src[k*16:])
			sl[k] = int64(binary.LittleEndian.Uint64(src[k*16+8:]))
		}
	default: // Int64, Decimal, Date
		i := c.ints(n)
		src := data[lo*8:]
		for k := 0; k < n; k++ {
			i[k] = int64(binary.LittleEndian.Uint64(src[k*8:]))
		}
	}
	return c
}

// groupCol decodes column j of an aggregation-source pipeline from the
// dense group index, with exactly the compiled group resolver's formulas
// (in particular Avg's single float division by pow10(scale)).
func (rc *runCtx) groupCol(src *codegen.VecAggSrc, fr *frame, j int) *col {
	n := fr.n
	// Entry addresses for the batch (cached on first column request).
	if fr.pe == nil {
		ec := rc.newCol()
		ua, _ := ec.strs(n)
		idxBase := rc.ld64(rc.state + uint64(src.IndexStateOff))
		for k := 0; k < n; k++ {
			ua[k] = rc.ld64(idxBase + uint64(fr.lo+int64(k))*8)
		}
		fr.pe = ua
	}
	ents := fr.pe
	gb := src.GB
	nk := len(gb.Keys)
	c := rc.newCol()
	if j < nk {
		off := uint64(src.KeyOffs[j])
		switch gb.Keys[j].Type().Kind {
		case expr.KFloat:
			f := c.floats(n)
			for k := 0; k < n; k++ {
				f[k] = math.Float64frombits(rc.ld64(ents[k] + off))
			}
		case expr.KString:
			sa, sl := c.strs(n)
			for k := 0; k < n; k++ {
				sa[k] = rc.ld64(ents[k] + off)
				sl[k] = int64(rc.ld64(ents[k] + off + 8))
			}
		default:
			i := c.ints(n)
			for k := 0; k < n; k++ {
				i[k] = int64(rc.ld64(ents[k] + off))
			}
		}
		return c
	}
	a := gb.Aggs[j-nk]
	slots := src.SlotOffs[j-nk]
	switch a.Func {
	case plan.Avg:
		f := c.floats(n)
		isF := a.Arg.Type().Kind == expr.KFloat
		scale := a.Arg.Type().Scale
		div := float64(pow10(scale))
		for k := 0; k < n; k++ {
			cnt := int64(rc.ld64(ents[k] + uint64(slots[1])))
			var sumF float64
			if isF {
				sumF = math.Float64frombits(rc.ld64(ents[k] + uint64(slots[0])))
			} else {
				sumF = float64(int64(rc.ld64(ents[k] + uint64(slots[0]))))
				if scale > 0 {
					sumF /= div
				}
			}
			f[k] = sumF / float64(cnt)
		}
	case plan.Sum:
		if a.Arg.Type().Kind == expr.KFloat {
			f := c.floats(n)
			for k := 0; k < n; k++ {
				f[k] = math.Float64frombits(rc.ld64(ents[k] + uint64(slots[0])))
			}
		} else {
			i := c.ints(n)
			for k := 0; k < n; k++ {
				i[k] = int64(rc.ld64(ents[k] + uint64(slots[0])))
			}
		}
	default: // Min/Max/Count/CountStar
		// The compiled resolver emits a raw i64 load here — its registers
		// are untyped 64-bit values, so float min/max bits flow through
		// unchanged. Typed vectors must decode those same bits.
		if (a.Func == plan.Min || a.Func == plan.Max) && a.Arg.Type().Kind == expr.KFloat {
			f := c.floats(n)
			for k := 0; k < n; k++ {
				f[k] = math.Float64frombits(rc.ld64(ents[k] + uint64(slots[0])))
			}
		} else {
			i := c.ints(n)
			for k := 0; k < n; k++ {
				i[k] = int64(rc.ld64(ents[k] + uint64(slots[0])))
			}
		}
	}
	return c
}

// project evaluates all expressions eagerly under the current selection
// (matching compiled projections, which evaluate in the pipeline spine) and
// returns the new frame.
func (rc *runCtx) project(p *codegen.VecProject, fr *frame) *frame {
	nf := rc.newFrame(len(p.Exprs))
	nf.n = fr.n
	nf.sel = fr.sel
	nf.rows = fr.rows
	for j, e := range p.Exprs {
		nf.cols[j] = rc.eval(e, fr, fr.sel)
	}
	return nf
}

func pow10(n int) int64 {
	p := int64(1)
	for i := 0; i < n; i++ {
		p *= 10
	}
	return p
}
