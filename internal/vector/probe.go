package vector

import (
	"aqe/internal/plan"
)

// pairBuf is the reusable (parent lane, matched entry) pair storage of one
// probe operator; one buffer per operator position so stacked joins keep
// their pair frames alive through downstream stages.
type pairBuf struct {
	k []int32
	e []uint64
}

// probe walks the shared join hash table for every live lane and returns
// the downstream frame. The walk replays the compiled probe protocol:
// Bloom tag test (when enabled) before touching the bucket array, hash
// compare, key compares, residual over [probe ++ build], with matches
// visited in (probe lane asc, chain order) — the compiled tiers' tuple
// order per worker.
func (rc *runCtx) probe(pi *probeInfo, fr *frame) *frame {
	p := pi.p
	j := p.Join
	sel := fr.sel
	n := fr.n

	var kbuf [8]*col
	keyCols := kbuf[:0]
	for _, ke := range j.ProbeKeys {
		keyCols = append(keyCols, rc.eval(ke, fr, sel))
	}

	// Hash: the generated code's integer mixer and combiner (join keys are
	// integers by plan construction).
	hv := rc.newCol().u64s(n)
	for i, kc := range keyCols {
		ki := kc.i
		if i == 0 {
			for _, k := range sel {
				hv[k] = mixInt(uint64(ki[k]))
			}
		} else {
			for _, k := range sel {
				hv[k] = (hv[k] ^ mixInt(uint64(ki[k]))) * hashM1
			}
		}
	}

	st := rc.state + uint64(p.StateOff)
	buckets := rc.ld64(st)
	mask := rc.ld64(st + 8)
	var fBase uint64
	if p.Filter {
		fBase = rc.ld64(st + 16)
	}

	// firstOnly: semi/anti probes need only match existence; compiled code
	// stops at the first hash/key match too (no residual by Compile check).
	firstOnly := j.Kind == plan.Semi || j.Kind == plan.Anti

	for len(rc.pairBufs) < pi.idx+1 {
		rc.pairBufs = append(rc.pairBufs, pairBuf{})
	}
	pb := &rc.pairBufs[pi.idx]
	pk, pe := pb.k[:0], pb.e[:0]
	var hits, skips int64

	for _, k := range sel {
		h := hv[k]
		slot := h & mask
		if p.Filter {
			fw := rc.ld16(fBase + slot*2)
			tag := uint64(1) << ((h >> 48) & 15)
			if fw&tag == 0 {
				skips++
				continue
			}
			hits++
		}
		e := rc.ld64(buckets + slot*8)
		for e != 0 {
			if rc.ld64(e) == h {
				match := true
				for i := range keyCols {
					if int64(rc.ld64(e+uint64(16+8*i))) != keyCols[i].i[k] {
						match = false
						break
					}
				}
				if match {
					pk = append(pk, k)
					pe = append(pe, e)
					if firstOnly {
						break
					}
				}
			}
			e = rc.ld64(e + 8)
		}
	}
	pb.k, pb.e = pk, pe

	if p.StatsLocalOff >= 0 {
		addr := rc.local + uint64(p.StatsLocalOff)
		rc.st64(addr, rc.ld64(addr)+uint64(hits))
		rc.st64(addr+8, rc.ld64(addr+8)+uint64(skips))
	}

	switch j.Kind {
	case plan.Semi:
		// pk holds exactly the matched lanes, ascending.
		fr.sel = pk
		return fr
	case plan.Anti:
		nsel := rc.selBuf(len(sel))
		mi := 0
		for _, k := range sel {
			if mi < len(pk) && pk[mi] == k {
				mi++
				continue
			}
			nsel = append(nsel, k)
		}
		fr.sel = nsel
		return fr
	}

	// Inner / OuterCount: dense pair frame, residual filtering, rebase.
	npairs := len(pk)
	pairSel := rc.identity(npairs)
	pairRows := rc.newCol().ints(npairs)
	for q := 0; q < npairs; q++ {
		pairRows[q] = fr.rows[pk[q]]
	}
	if j.Residual != nil && npairs > 0 {
		rfr := rc.newFrame(p.NP + pi.buildW)
		rfr.n = npairs
		rfr.sel = pairSel
		rfr.rows = pairRows
		rfr.parent = fr
		rfr.pk = pk
		rfr.pe = pe
		rfr.probe = pi
		rfr.outView = false
		c := rc.eval(j.Residual, rfr, pairSel)
		pairSel = rc.narrow(pairSel, c)
	}

	if j.Kind == plan.OuterCount {
		// Every probe tuple flows downstream with its (residual-filtered)
		// match count; lanes and columns stay the parent's.
		cc := rc.newCol()
		cv := cc.ints(n)
		for _, k := range sel {
			cv[k] = 0
		}
		for _, q := range pairSel {
			cv[pk[q]]++
		}
		ofr := rc.newFrame(p.NP + 1)
		ofr.n = n
		ofr.sel = sel
		ofr.rows = fr.rows
		ofr.parent = fr
		ofr.passthrough = true
		ofr.cols[p.NP] = cc
		return ofr
	}

	ofr := rc.newFrame(p.NP + len(j.PayloadIdx))
	ofr.n = npairs
	ofr.sel = pairSel
	ofr.rows = pairRows
	ofr.parent = fr
	ofr.pk = pk
	ofr.pe = pe
	ofr.probe = pi
	ofr.outView = true
	return ofr
}
