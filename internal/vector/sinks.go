package vector

import (
	"bytes"
	"encoding/binary"
	"math"

	"aqe/internal/codegen"
	"aqe/internal/expr"
	"aqe/internal/plan"
	"aqe/internal/rt"
)

// hashLanes computes the compiled hash-combine over integer key columns for
// every live lane (build and probe keys are integers by plan construction).
func (rc *runCtx) hashLanes(keyCols []*col, sel []int32, n int) []uint64 {
	hv := rc.newCol().u64s(n)
	for i, kc := range keyCols {
		ki := kc.i
		if i == 0 {
			for _, k := range sel {
				hv[k] = mixInt(uint64(ki[k]))
			}
		} else {
			for _, k := range sel {
				hv[k] = (hv[k] ^ mixInt(uint64(ki[k]))) * hashM1
			}
		}
	}
	return hv
}

// storeTyped writes one column value at base+off with the compiled storeAt
// convention: strings as (addr, len) pairs, floats as raw bits, everything
// else (ints, decimals, dates, bools) as an i64.
func (rc *runCtx) storeTyped(base, off uint64, t expr.Type, c *col, k int32) {
	switch t.Kind {
	case expr.KString:
		rc.st64(base+off, c.sa[k])
		rc.st64(base+off+8, uint64(c.sl[k]))
	case expr.KFloat:
		rc.st64(base+off, math.Float64bits(c.f[k]))
	default:
		rc.st64(base+off, uint64(c.i[k]))
	}
}

// buildSink materializes build-side join tuples ([hash][next][keys...]
// [fields...]) into the shared join arenas — the same layout the compiled
// buildSink stores and both engines' probes walk.
func (rc *runCtx) buildSink(b *codegen.VecBuild, fr *frame) {
	sel := fr.sel
	var kbuf [8]*col
	keyCols := kbuf[:0]
	for _, ke := range b.Keys {
		keyCols = append(keyCols, rc.eval(ke, fr, sel))
	}
	hv := rc.hashLanes(keyCols, sel, fr.n)

	var fbuf [16]*col
	fcols := fbuf[:0]
	for _, f := range b.Fields {
		fcols = append(fcols, fr.col(rc, f.SrcIdx))
	}

	ht := rc.qs.Joins[b.JoinID]
	for _, k := range sel {
		t := uint64(ht.Alloc(rc.worker))
		rc.st64(t, hv[k])
		for i := range keyCols {
			rc.st64(t+uint64(16+8*i), uint64(keyCols[i].i[k]))
		}
		for i, f := range b.Fields {
			rc.storeTyped(t, uint64(f.Off), f.T, fcols[i], k)
		}
	}
}

// aggSink is the vectorized group-by update: find-or-insert in the worker's
// aggregation hash table, then update the aggregate slots, replaying the
// compiled sink byte for byte — the dictionary-code hash substitution, the
// per-tuple bucket/mask reload (the table grows mid-batch), slot
// initialization, update order and the integer-sum overflow check.
func (rc *runCtx) aggSink(a *codegen.VecAgg, fr *frame) {
	sel := fr.sel
	gb := a.GB

	var kbuf [8]*col
	keyCols := kbuf[:0]
	var hv []uint64
	if !a.Scalar {
		for _, ke := range gb.Keys {
			keyCols = append(keyCols, rc.eval(ke, fr, sel))
		}
		hv = rc.newCol().u64s(fr.n)
		for i, kc := range keyCols {
			t := gb.Keys[i].Type()
			cb := a.KeyCodeBase[i]
			for _, k := range sel {
				var kh uint64
				switch {
				case cb != 0:
					// Dictionary-code substitution: hash the column's 4-byte
					// code as an integer; the stored key stays (addr, len).
					code := binary.LittleEndian.Uint32(rc.seg(cb + uint64(fr.rows[k])*4))
					kh = mixInt(uint64(code))
				case t.Kind == expr.KString:
					kh = rt.StrHash(rc.str(kc.sa[k], kc.sl[k]))
				default:
					kh = mixInt(uint64(kc.i[k]))
				}
				if i == 0 {
					hv[k] = kh
				} else {
					hv[k] = (hv[k] ^ kh) * hashM1
				}
			}
		}
	}

	// Aggregate argument vectors: Count/CountStar never evaluate their
	// argument (parity with the compiled sink, which only bumps).
	var abuf [8]*col
	argCols := abuf[:0]
	for _, ag := range gb.Aggs {
		switch ag.Func {
		case plan.Count, plan.CountStar:
			argCols = append(argCols, nil)
		default:
			argCols = append(argCols, rc.eval(ag.Arg, fr, sel))
		}
	}

	base := rc.local + uint64(a.LocalOff)
	set := rc.qs.Aggs[a.AggID]
	for _, k := range sel {
		var e uint64
		if a.Scalar {
			e = rc.ld64(base + 16)
		} else {
			h := hv[k]
			// Reload per tuple: Insert can grow the bucket array.
			buckets := rc.ld64(base)
			mask := rc.ld64(base + 8)
			e = rc.ld64(buckets + (h&mask)*8)
			for e != 0 {
				if rc.ld64(e+8) == h && rc.aggKeyEq(a, keyCols, e, k) {
					break
				}
				e = rc.ld64(e)
			}
			if e == 0 {
				e = uint64(set.Insert(rc.worker, h))
				for i, kf := range a.Keys {
					if kf.Str {
						rc.st64(e+uint64(kf.Off), keyCols[i].sa[k])
						rc.st64(e+uint64(kf.Off)+8, uint64(keyCols[i].sl[k]))
					} else {
						rc.st64(e+uint64(kf.Off), uint64(keyCols[i].i[k]))
					}
				}
				for _, af := range a.Aggs {
					rc.st64(e+uint64(af.Off), af.Kind.Init())
				}
			}
		}

		for ai, ag := range gb.Aggs {
			slots := a.SlotOffs[ai]
			switch ag.Func {
			case plan.Count, plan.CountStar:
				rc.bump(e + uint64(slots[0]))
			case plan.Avg:
				rc.accumulate(e+uint64(slots[0]), argCols[ai], ag.Arg, k)
				rc.bump(e + uint64(slots[1]))
			case plan.Sum:
				rc.accumulate(e+uint64(slots[0]), argCols[ai], ag.Arg, k)
			case plan.Min, plan.Max:
				addr := e + uint64(slots[0])
				if ag.Arg.Type().Kind == expr.KFloat {
					cur := math.Float64frombits(rc.ld64(addr))
					v := argCols[ai].f[k]
					// NaN compares false → keep cur, like the compiled FCmp.
					if (ag.Func == plan.Min && v < cur) || (ag.Func == plan.Max && v > cur) {
						rc.st64(addr, math.Float64bits(v))
					}
				} else {
					cur := int64(rc.ld64(addr))
					v := argCols[ai].i[k]
					if (ag.Func == plan.Min && v < cur) || (ag.Func == plan.Max && v > cur) {
						rc.st64(addr, uint64(v))
					}
				}
			}
		}
	}
}

// aggKeyEq compares lane k's key values against a stored group entry.
func (rc *runCtx) aggKeyEq(a *codegen.VecAgg, keyCols []*col, e uint64, k int32) bool {
	for i, kf := range a.Keys {
		if kf.Str {
			sAddr := rc.ld64(e + uint64(kf.Off))
			sLen := int64(rc.ld64(e + uint64(kf.Off) + 8))
			if sLen != keyCols[i].sl[k] ||
				!bytes.Equal(rc.str(keyCols[i].sa[k], keyCols[i].sl[k]), rc.str(sAddr, sLen)) {
				return false
			}
		} else if int64(rc.ld64(e+uint64(kf.Off))) != keyCols[i].i[k] {
			return false
		}
	}
	return true
}

// bump increments a counter slot (unchecked, like the compiled sink).
func (rc *runCtx) bump(addr uint64) {
	rc.st64(addr, rc.ld64(addr)+1)
}

// accumulate adds lane k's argument into a sum slot: overflow-checked for
// integer/decimal sums, a plain float add for float sums.
func (rc *runCtx) accumulate(addr uint64, c *col, arg expr.Expr, k int32) {
	if arg.Type().Kind == expr.KFloat {
		cur := math.Float64frombits(rc.ld64(addr))
		rc.st64(addr, math.Float64bits(cur+c.f[k]))
		return
	}
	cur := int64(rc.ld64(addr))
	v := c.i[k]
	r := cur + v
	if (cur^r)&(v^r) < 0 {
		rt.Throw(rt.TrapOverflow)
	}
	rc.st64(addr, uint64(r))
}

// outSink materializes result rows into the worker's output buffer with the
// compiled storeAt layout.
func (rc *runCtx) outSink(o *codegen.VecOut, fr *frame) {
	sel := fr.sel
	var cbuf [16]*col
	cols := cbuf[:0]
	for j := range o.Cols {
		cols = append(cols, fr.col(rc, j))
	}
	os := rc.qs.Outs[o.OutID]
	for _, k := range sel {
		row := uint64(os.Alloc(rc.worker))
		for j := range o.Cols {
			cd := &o.Cols[j]
			rc.storeTyped(row, uint64(cd.Off), cd.T, cols[j], k)
		}
	}
}
