package tpch

import (
	"fmt"

	"aqe/internal/expr"
	"aqe/internal/plan"
	"aqe/internal/storage"
)

// Queries returns the physical plans of all 22 TPC-H queries against the
// catalog. Plans are hand-written in the plan DSL the way HyPer's
// optimizer would produce them: filters pushed into scans, the smaller
// side of each join building the hash table, correlated subqueries
// decorrelated into aggregation stages (Q2, Q11, Q15, Q17, Q20, Q22).
func Queries(cat *storage.Catalog) []plan.Query {
	builders := []func(*storage.Catalog) plan.Query{
		Q1, Q2, Q3, Q4, Q5, Q6, Q7, Q8, Q9, Q10, Q11,
		Q12, Q13, Q14, Q15, Q16, Q17, Q18, Q19, Q20, Q21, Q22,
	}
	out := make([]plan.Query, len(builders))
	for i, b := range builders {
		out[i] = b(cat)
	}
	return out
}

// Query returns TPC-H query n (1-based).
func Query(cat *storage.Catalog, n int) plan.Query {
	qs := Queries(cat)
	if n < 1 || n > len(qs) {
		panic(fmt.Sprintf("tpch: no query %d", n))
	}
	return qs[n-1]
}

func date(s string) expr.Expr { return expr.Date(storage.MustParseDate(s)) }

func asc(e expr.Expr) plan.SortKey  { return plan.SortKey{E: e} }
func desc(e expr.Expr) plan.SortKey { return plan.SortKey{E: e, Desc: true} }

// col is shorthand for plan.C.
func col(schema []plan.ColDef, name string) expr.Expr { return plan.C(schema, name) }

// discPrice builds l_extendedprice * (1 - l_discount) at scale 4.
func discPrice(schema []plan.ColDef) expr.Expr {
	return expr.Mul(col(schema, "l_extendedprice"),
		expr.Sub(expr.Dec(100, 2), col(schema, "l_discount")))
}

// Q1: pricing summary report — the paper's running example (Fig. 1/2,
// Table I/II). One lineitem scan into an 8-aggregate group-by.
func Q1(cat *storage.Catalog) plan.Query {
	return plan.SingleStage("Q1", func() plan.Node {
		s := plan.NewScan(cat.Table("lineitem"),
			"l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice",
			"l_discount", "l_tax", "l_shipdate")
		sch := s.Schema()
		s.Where(expr.Le(col(sch, "l_shipdate"), date("1998-09-02")))
		charge := expr.Mul(discPrice(sch), expr.Add(expr.Dec(100, 2), col(sch, "l_tax")))
		g := plan.NewGroupBy(s,
			[]expr.Expr{col(sch, "l_returnflag"), col(sch, "l_linestatus")},
			[]string{"l_returnflag", "l_linestatus"},
			[]plan.AggExpr{
				{Func: plan.Sum, Arg: col(sch, "l_quantity"), Name: "sum_qty"},
				{Func: plan.Sum, Arg: col(sch, "l_extendedprice"), Name: "sum_base_price"},
				{Func: plan.Sum, Arg: discPrice(sch), Name: "sum_disc_price"},
				{Func: plan.Sum, Arg: charge, Name: "sum_charge"},
				{Func: plan.Avg, Arg: col(sch, "l_quantity"), Name: "avg_qty"},
				{Func: plan.Avg, Arg: col(sch, "l_extendedprice"), Name: "avg_price"},
				{Func: plan.Avg, Arg: col(sch, "l_discount"), Name: "avg_disc"},
				{Func: plan.CountStar, Name: "count_order"},
			})
		gs := g.Schema()
		return plan.NewOrderBy(g,
			[]plan.SortKey{asc(col(gs, "l_returnflag")), asc(col(gs, "l_linestatus"))}, -1)
	})
}

// Q2: minimum-cost supplier. The correlated min subquery becomes a first
// stage computing min(ps_supplycost) per part over EUROPE suppliers.
func Q2(cat *storage.Catalog) plan.Query {
	europeSuppliers := func() plan.Node {
		r := plan.NewScan(cat.Table("region"), "r_regionkey", "r_name")
		r.Where(expr.Eq(col(r.Schema(), "r_name"), expr.Str("EUROPE")))
		n := plan.NewScan(cat.Table("nation"), "n_nationkey", "n_name", "n_regionkey")
		jn := plan.NewJoin(plan.Inner, r, n,
			[]expr.Expr{col(r.Schema(), "r_regionkey")},
			[]expr.Expr{col(n.Schema(), "n_regionkey")}, nil)
		s := plan.NewScan(cat.Table("supplier"),
			"s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone",
			"s_acctbal", "s_comment")
		return plan.NewJoin(plan.Inner, jn, s,
			[]expr.Expr{col(jn.Schema(), "n_nationkey")},
			[]expr.Expr{col(s.Schema(), "s_nationkey")},
			[]string{"n_name"})
	}
	return plan.Query{Name: "Q2", Stages: []plan.Stage{
		{Name: "mincost", Build: func(map[string]*storage.Table) plan.Node {
			sup := europeSuppliers()
			ps := plan.NewScan(cat.Table("partsupp"), "ps_partkey", "ps_suppkey", "ps_supplycost")
			j := plan.NewJoin(plan.Semi, sup, ps,
				[]expr.Expr{col(sup.Schema(), "s_suppkey")},
				[]expr.Expr{col(ps.Schema(), "ps_suppkey")}, nil)
			js := j.Schema()
			return plan.NewGroupBy(j,
				[]expr.Expr{col(js, "ps_partkey")}, []string{"mc_partkey"},
				[]plan.AggExpr{{Func: plan.Min, Arg: col(js, "ps_supplycost"), Name: "mc_cost"}})
		}},
		{Name: "result", Build: func(prior map[string]*storage.Table) plan.Node {
			p := plan.NewScan(cat.Table("part"), "p_partkey", "p_mfgr", "p_size", "p_type")
			psch := p.Schema()
			p.Where(expr.And(
				expr.Eq(col(psch, "p_size"), expr.Int(15)),
				expr.Like(col(psch, "p_type"), "%BRASS")))
			mc := plan.NewScan(prior["mincost"], "mc_partkey", "mc_cost")
			sup := europeSuppliers()
			ps := plan.NewScan(cat.Table("partsupp"), "ps_partkey", "ps_suppkey", "ps_supplycost")
			j1 := plan.NewJoin(plan.Inner, p, ps,
				[]expr.Expr{col(psch, "p_partkey")},
				[]expr.Expr{col(ps.Schema(), "ps_partkey")},
				[]string{"p_mfgr"})
			j2 := plan.NewJoin(plan.Inner, mc, j1,
				[]expr.Expr{col(mc.Schema(), "mc_partkey")},
				[]expr.Expr{col(j1.Schema(), "ps_partkey")}, nil)
			comb2 := j2.CombinedSchema()
			j2.WithResidual(expr.Eq(col(comb2, "ps_supplycost"), col(comb2, "mc_cost")))
			j3 := plan.NewJoin(plan.Inner, sup, j2,
				[]expr.Expr{col(sup.Schema(), "s_suppkey")},
				[]expr.Expr{col(j2.Schema(), "ps_suppkey")},
				[]string{"s_acctbal", "s_name", "n_name", "s_address", "s_phone", "s_comment"})
			js := j3.Schema()
			pr := plan.NewProject(j3,
				[]expr.Expr{col(js, "s_acctbal"), col(js, "s_name"), col(js, "n_name"),
					col(js, "ps_partkey"), col(js, "p_mfgr"), col(js, "s_address"),
					col(js, "s_phone"), col(js, "s_comment")},
				[]string{"s_acctbal", "s_name", "n_name", "p_partkey", "p_mfgr",
					"s_address", "s_phone", "s_comment"})
			prs := pr.Schema()
			return plan.NewOrderBy(pr, []plan.SortKey{
				desc(col(prs, "s_acctbal")), asc(col(prs, "n_name")),
				asc(col(prs, "s_name")), asc(col(prs, "p_partkey"))}, 100)
		}},
	}}
}

// Q3: shipping priority.
func Q3(cat *storage.Catalog) plan.Query {
	return plan.SingleStage("Q3", func() plan.Node {
		c := plan.NewScan(cat.Table("customer"), "c_custkey", "c_mktsegment")
		c.Where(expr.Eq(col(c.Schema(), "c_mktsegment"), expr.Str("BUILDING")))
		o := plan.NewScan(cat.Table("orders"),
			"o_orderkey", "o_custkey", "o_orderdate", "o_shippriority")
		o.Where(expr.Lt(col(o.Schema(), "o_orderdate"), date("1995-03-15")))
		jco := plan.NewJoin(plan.Semi, c, o,
			[]expr.Expr{col(c.Schema(), "c_custkey")},
			[]expr.Expr{col(o.Schema(), "o_custkey")}, nil)
		l := plan.NewScan(cat.Table("lineitem"),
			"l_orderkey", "l_extendedprice", "l_discount", "l_shipdate")
		l.Where(expr.Gt(col(l.Schema(), "l_shipdate"), date("1995-03-15")))
		j := plan.NewJoin(plan.Inner, jco, l,
			[]expr.Expr{col(jco.Schema(), "o_orderkey")},
			[]expr.Expr{col(l.Schema(), "l_orderkey")},
			[]string{"o_orderdate", "o_shippriority"})
		js := j.Schema()
		g := plan.NewGroupBy(j,
			[]expr.Expr{col(js, "l_orderkey"), col(js, "o_orderdate"), col(js, "o_shippriority")},
			[]string{"l_orderkey", "o_orderdate", "o_shippriority"},
			[]plan.AggExpr{{Func: plan.Sum, Arg: discPrice(js), Name: "revenue"}})
		gs := g.Schema()
		return plan.NewOrderBy(g, []plan.SortKey{
			desc(col(gs, "revenue")), asc(col(gs, "o_orderdate")),
			asc(col(gs, "l_orderkey"))}, 10)
	})
}

// Q4: order priority checking. EXISTS decorrelates to a semi join.
func Q4(cat *storage.Catalog) plan.Query {
	return plan.SingleStage("Q4", func() plan.Node {
		l := plan.NewScan(cat.Table("lineitem"), "l_orderkey", "l_commitdate", "l_receiptdate")
		l.Where(expr.Lt(col(l.Schema(), "l_commitdate"), col(l.Schema(), "l_receiptdate")))
		o := plan.NewScan(cat.Table("orders"), "o_orderkey", "o_orderdate", "o_orderpriority")
		osch := o.Schema()
		o.Where(expr.And(
			expr.Ge(col(osch, "o_orderdate"), date("1993-07-01")),
			expr.Lt(col(osch, "o_orderdate"), date("1993-10-01"))))
		j := plan.NewJoin(plan.Semi, l, o,
			[]expr.Expr{col(l.Schema(), "l_orderkey")},
			[]expr.Expr{col(osch, "o_orderkey")}, nil)
		js := j.Schema()
		g := plan.NewGroupBy(j,
			[]expr.Expr{col(js, "o_orderpriority")}, []string{"o_orderpriority"},
			[]plan.AggExpr{{Func: plan.CountStar, Name: "order_count"}})
		return plan.NewOrderBy(g,
			[]plan.SortKey{asc(col(g.Schema(), "o_orderpriority"))}, -1)
	})
}

// Q5: local supplier volume.
func Q5(cat *storage.Catalog) plan.Query {
	return plan.SingleStage("Q5", func() plan.Node {
		r := plan.NewScan(cat.Table("region"), "r_regionkey", "r_name")
		r.Where(expr.Eq(col(r.Schema(), "r_name"), expr.Str("ASIA")))
		n := plan.NewScan(cat.Table("nation"), "n_nationkey", "n_name", "n_regionkey")
		jn := plan.NewJoin(plan.Inner, r, n,
			[]expr.Expr{col(r.Schema(), "r_regionkey")},
			[]expr.Expr{col(n.Schema(), "n_regionkey")}, nil)
		c := plan.NewScan(cat.Table("customer"), "c_custkey", "c_nationkey")
		jc := plan.NewJoin(plan.Inner, jn, c,
			[]expr.Expr{col(jn.Schema(), "n_nationkey")},
			[]expr.Expr{col(c.Schema(), "c_nationkey")},
			[]string{"n_name"})
		o := plan.NewScan(cat.Table("orders"), "o_orderkey", "o_custkey", "o_orderdate")
		osch := o.Schema()
		o.Where(expr.And(
			expr.Ge(col(osch, "o_orderdate"), date("1994-01-01")),
			expr.Lt(col(osch, "o_orderdate"), date("1995-01-01"))))
		jo := plan.NewJoin(plan.Inner, jc, o,
			[]expr.Expr{col(jc.Schema(), "c_custkey")},
			[]expr.Expr{col(osch, "o_custkey")},
			[]string{"c_nationkey", "n_name"})
		s := plan.NewScan(cat.Table("supplier"), "s_suppkey", "s_nationkey")
		l := plan.NewScan(cat.Table("lineitem"),
			"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount")
		jl := plan.NewJoin(plan.Inner, jo, l,
			[]expr.Expr{col(jo.Schema(), "o_orderkey")},
			[]expr.Expr{col(l.Schema(), "l_orderkey")},
			[]string{"c_nationkey", "n_name"})
		// Supplier must be in the customer's nation.
		js := plan.NewJoin(plan.Inner, s, jl,
			[]expr.Expr{col(s.Schema(), "s_suppkey")},
			[]expr.Expr{col(jl.Schema(), "l_suppkey")}, nil)
		comb := js.CombinedSchema()
		js.WithResidual(expr.Eq(col(comb, "s_nationkey"), col(comb, "c_nationkey")))
		jss := js.Schema()
		g := plan.NewGroupBy(js,
			[]expr.Expr{col(jss, "n_name")}, []string{"n_name"},
			[]plan.AggExpr{{Func: plan.Sum, Arg: discPrice(jss), Name: "revenue"}})
		return plan.NewOrderBy(g, []plan.SortKey{desc(col(g.Schema(), "revenue"))}, -1)
	})
}

// Q6: revenue-change forecast — a pure scan/filter/scalar-aggregate query.
func Q6(cat *storage.Catalog) plan.Query {
	return plan.SingleStage("Q6", func() plan.Node {
		l := plan.NewScan(cat.Table("lineitem"),
			"l_extendedprice", "l_discount", "l_shipdate", "l_quantity")
		sch := l.Schema()
		l.Where(expr.And(
			expr.Ge(col(sch, "l_shipdate"), date("1994-01-01")),
			expr.Lt(col(sch, "l_shipdate"), date("1995-01-01")),
			expr.Between(col(sch, "l_discount"), expr.Dec(5, 2), expr.Dec(7, 2)),
			expr.Lt(col(sch, "l_quantity"), expr.Dec(2400, 2))))
		return plan.NewGroupBy(l, nil, nil, []plan.AggExpr{{
			Func: plan.Sum,
			Arg:  expr.Mul(col(sch, "l_extendedprice"), col(sch, "l_discount")),
			Name: "revenue"}})
	})
}

// Q7: volume shipping between FRANCE and GERMANY.
func Q7(cat *storage.Catalog) plan.Query {
	return plan.SingleStage("Q7", func() plan.Node {
		franceGermany := func(alias string) *plan.Scan {
			n := plan.NewScan(cat.Table("nation"), "n_nationkey", "n_name")
			n.Where(expr.Or(
				expr.Eq(col(n.Schema(), "n_name"), expr.Str("FRANCE")),
				expr.Eq(col(n.Schema(), "n_name"), expr.Str("GERMANY"))))
			return n
		}
		n1 := franceGermany("n1")
		s := plan.NewScan(cat.Table("supplier"), "s_suppkey", "s_nationkey")
		jsup := plan.NewJoin(plan.Inner, n1, s,
			[]expr.Expr{col(n1.Schema(), "n_nationkey")},
			[]expr.Expr{col(s.Schema(), "s_nationkey")},
			[]string{"n_name"})
		n2 := franceGermany("n2")
		c := plan.NewScan(cat.Table("customer"), "c_custkey", "c_nationkey")
		jcust := plan.NewJoin(plan.Inner, n2, c,
			[]expr.Expr{col(n2.Schema(), "n_nationkey")},
			[]expr.Expr{col(c.Schema(), "c_nationkey")},
			[]string{"n_name"})
		o := plan.NewScan(cat.Table("orders"), "o_orderkey", "o_custkey")
		jord := plan.NewJoin(plan.Inner, jcust, o,
			[]expr.Expr{col(jcust.Schema(), "c_custkey")},
			[]expr.Expr{col(o.Schema(), "o_custkey")},
			[]string{"n_name"})
		l := plan.NewScan(cat.Table("lineitem"),
			"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount", "l_shipdate")
		l.Where(expr.Between(col(l.Schema(), "l_shipdate"),
			date("1995-01-01"), date("1996-12-31")))
		// lineitem ⨝ supplier-side nation.
		j1 := plan.NewJoin(plan.Inner, jsup, l,
			[]expr.Expr{col(jsup.Schema(), "s_suppkey")},
			[]expr.Expr{col(l.Schema(), "l_suppkey")},
			[]string{"n_name"})
		j1r := plan.NewProject(j1, renameLast(j1.Schema(), "supp_nation"), renameNames(j1.Schema(), "supp_nation"))
		// ⨝ customer-side nation via orders.
		j2 := plan.NewJoin(plan.Inner, jord, j1r,
			[]expr.Expr{col(jord.Schema(), "o_orderkey")},
			[]expr.Expr{col(j1r.Schema(), "l_orderkey")},
			[]string{"n_name"})
		j2r := plan.NewProject(j2, renameLast(j2.Schema(), "cust_nation"), renameNames(j2.Schema(), "cust_nation"))
		j2s := j2r.Schema()
		f := plan.NewFilter(j2r, expr.Or(
			expr.And(
				expr.Eq(col(j2s, "supp_nation"), expr.Str("FRANCE")),
				expr.Eq(col(j2s, "cust_nation"), expr.Str("GERMANY"))),
			expr.And(
				expr.Eq(col(j2s, "supp_nation"), expr.Str("GERMANY")),
				expr.Eq(col(j2s, "cust_nation"), expr.Str("FRANCE")))))
		g := plan.NewGroupBy(f,
			[]expr.Expr{col(j2s, "supp_nation"), col(j2s, "cust_nation"),
				expr.Year(col(j2s, "l_shipdate"))},
			[]string{"supp_nation", "cust_nation", "l_year"},
			[]plan.AggExpr{{Func: plan.Sum, Arg: discPrice(j2s), Name: "revenue"}})
		gs := g.Schema()
		return plan.NewOrderBy(g, []plan.SortKey{
			asc(col(gs, "supp_nation")), asc(col(gs, "cust_nation")),
			asc(col(gs, "l_year"))}, -1)
	})
}

// renameLast / renameNames rebuild a projection that renames the last
// column of a schema (used to disambiguate the two n_name columns in Q7).
func renameLast(schema []plan.ColDef, name string) []expr.Expr {
	out := make([]expr.Expr, len(schema))
	for i := range schema {
		out[i] = expr.Col(i, schema[i].T)
	}
	return out
}

func renameNames(schema []plan.ColDef, name string) []string {
	out := make([]string, len(schema))
	for i, c := range schema {
		out[i] = c.Name
	}
	out[len(out)-1] = name
	return out
}

// Q8: national market share.
func Q8(cat *storage.Catalog) plan.Query {
	return plan.SingleStage("Q8", func() plan.Node {
		p := plan.NewScan(cat.Table("part"), "p_partkey", "p_type")
		p.Where(expr.Eq(col(p.Schema(), "p_type"), expr.Str("ECONOMY ANODIZED STEEL")))
		// Supplier with nation name (for the BRAZIL case split).
		n2 := plan.NewScan(cat.Table("nation"), "n_nationkey", "n_name")
		s := plan.NewScan(cat.Table("supplier"), "s_suppkey", "s_nationkey")
		jsup := plan.NewJoin(plan.Inner, n2, s,
			[]expr.Expr{col(n2.Schema(), "n_nationkey")},
			[]expr.Expr{col(s.Schema(), "s_nationkey")},
			[]string{"n_name"})
		// Orders restricted to AMERICA customers, 1995-1996.
		r := plan.NewScan(cat.Table("region"), "r_regionkey", "r_name")
		r.Where(expr.Eq(col(r.Schema(), "r_name"), expr.Str("AMERICA")))
		n1 := plan.NewScan(cat.Table("nation"), "n_nationkey", "n_regionkey")
		jn1 := plan.NewJoin(plan.Inner, r, n1,
			[]expr.Expr{col(r.Schema(), "r_regionkey")},
			[]expr.Expr{col(n1.Schema(), "n_regionkey")}, nil)
		c := plan.NewScan(cat.Table("customer"), "c_custkey", "c_nationkey")
		jc := plan.NewJoin(plan.Semi, jn1, c,
			[]expr.Expr{col(jn1.Schema(), "n_nationkey")},
			[]expr.Expr{col(c.Schema(), "c_nationkey")}, nil)
		o := plan.NewScan(cat.Table("orders"), "o_orderkey", "o_custkey", "o_orderdate")
		o.Where(expr.Between(col(o.Schema(), "o_orderdate"),
			date("1995-01-01"), date("1996-12-31")))
		jo := plan.NewJoin(plan.Semi, jc, o,
			[]expr.Expr{col(jc.Schema(), "c_custkey")},
			[]expr.Expr{col(o.Schema(), "o_custkey")}, nil)
		// Main pipeline over lineitem.
		l := plan.NewScan(cat.Table("lineitem"),
			"l_orderkey", "l_partkey", "l_suppkey", "l_extendedprice", "l_discount")
		j1 := plan.NewJoin(plan.Semi, p, l,
			[]expr.Expr{col(p.Schema(), "p_partkey")},
			[]expr.Expr{col(l.Schema(), "l_partkey")}, nil)
		j2 := plan.NewJoin(plan.Inner, jsup, j1,
			[]expr.Expr{col(jsup.Schema(), "s_suppkey")},
			[]expr.Expr{col(j1.Schema(), "l_suppkey")},
			[]string{"n_name"})
		j3 := plan.NewJoin(plan.Inner, jo, j2,
			[]expr.Expr{col(jo.Schema(), "o_orderkey")},
			[]expr.Expr{col(j2.Schema(), "l_orderkey")},
			[]string{"o_orderdate"})
		js := j3.Schema()
		vol := discPrice(js)
		brazilVol := expr.Case([]expr.When{{
			Cond: expr.Eq(col(js, "n_name"), expr.Str("BRAZIL")),
			Then: vol,
		}}, expr.Dec(0, 4))
		g := plan.NewGroupBy(j3,
			[]expr.Expr{expr.Year(col(js, "o_orderdate"))}, []string{"o_year"},
			[]plan.AggExpr{
				{Func: plan.Sum, Arg: brazilVol, Name: "brazil_vol"},
				{Func: plan.Sum, Arg: vol, Name: "total_vol"},
			})
		gs := g.Schema()
		pr := plan.NewProject(g,
			[]expr.Expr{col(gs, "o_year"),
				expr.Div(col(gs, "brazil_vol"), col(gs, "total_vol"))},
			[]string{"o_year", "mkt_share"})
		return plan.NewOrderBy(pr, []plan.SortKey{asc(col(pr.Schema(), "o_year"))}, -1)
	})
}

// Q9: product type profit measure.
func Q9(cat *storage.Catalog) plan.Query {
	return plan.SingleStage("Q9", func() plan.Node {
		p := plan.NewScan(cat.Table("part"), "p_partkey", "p_name")
		p.Where(expr.Like(col(p.Schema(), "p_name"), "%green%"))
		n := plan.NewScan(cat.Table("nation"), "n_nationkey", "n_name")
		s := plan.NewScan(cat.Table("supplier"), "s_suppkey", "s_nationkey")
		jsup := plan.NewJoin(plan.Inner, n, s,
			[]expr.Expr{col(n.Schema(), "n_nationkey")},
			[]expr.Expr{col(s.Schema(), "s_nationkey")},
			[]string{"n_name"})
		ps := plan.NewScan(cat.Table("partsupp"), "ps_partkey", "ps_suppkey", "ps_supplycost")
		o := plan.NewScan(cat.Table("orders"), "o_orderkey", "o_orderdate")
		l := plan.NewScan(cat.Table("lineitem"),
			"l_orderkey", "l_partkey", "l_suppkey", "l_quantity",
			"l_extendedprice", "l_discount")
		j1 := plan.NewJoin(plan.Semi, p, l,
			[]expr.Expr{col(p.Schema(), "p_partkey")},
			[]expr.Expr{col(l.Schema(), "l_partkey")}, nil)
		j2 := plan.NewJoin(plan.Inner, jsup, j1,
			[]expr.Expr{col(jsup.Schema(), "s_suppkey")},
			[]expr.Expr{col(j1.Schema(), "l_suppkey")},
			[]string{"n_name"})
		j3 := plan.NewJoin(plan.Inner, ps, j2,
			[]expr.Expr{col(ps.Schema(), "ps_partkey"), col(ps.Schema(), "ps_suppkey")},
			[]expr.Expr{col(j2.Schema(), "l_partkey"), col(j2.Schema(), "l_suppkey")},
			[]string{"ps_supplycost"})
		j4 := plan.NewJoin(plan.Inner, o, j3,
			[]expr.Expr{col(o.Schema(), "o_orderkey")},
			[]expr.Expr{col(j3.Schema(), "l_orderkey")},
			[]string{"o_orderdate"})
		js := j4.Schema()
		// amount = extprice*(1-disc) - supplycost*qty, both at scale 4.
		amount := expr.Sub(discPrice(js),
			expr.Mul(col(js, "ps_supplycost"), col(js, "l_quantity")))
		g := plan.NewGroupBy(j4,
			[]expr.Expr{col(js, "n_name"), expr.Year(col(js, "o_orderdate"))},
			[]string{"nation", "o_year"},
			[]plan.AggExpr{{Func: plan.Sum, Arg: amount, Name: "sum_profit"}})
		gs := g.Schema()
		return plan.NewOrderBy(g, []plan.SortKey{
			asc(col(gs, "nation")), desc(col(gs, "o_year"))}, -1)
	})
}

// Q10: returned item reporting.
func Q10(cat *storage.Catalog) plan.Query {
	return plan.SingleStage("Q10", func() plan.Node {
		n := plan.NewScan(cat.Table("nation"), "n_nationkey", "n_name")
		c := plan.NewScan(cat.Table("customer"),
			"c_custkey", "c_name", "c_acctbal", "c_phone", "c_nationkey",
			"c_address", "c_comment")
		jc := plan.NewJoin(plan.Inner, n, c,
			[]expr.Expr{col(n.Schema(), "n_nationkey")},
			[]expr.Expr{col(c.Schema(), "c_nationkey")},
			[]string{"n_name"})
		o := plan.NewScan(cat.Table("orders"), "o_orderkey", "o_custkey", "o_orderdate")
		o.Where(expr.And(
			expr.Ge(col(o.Schema(), "o_orderdate"), date("1993-10-01")),
			expr.Lt(col(o.Schema(), "o_orderdate"), date("1994-01-01"))))
		jo := plan.NewJoin(plan.Inner, jc, o,
			[]expr.Expr{col(jc.Schema(), "c_custkey")},
			[]expr.Expr{col(o.Schema(), "o_custkey")},
			[]string{"c_name", "c_acctbal", "c_phone", "n_name", "c_address", "c_comment"})
		l := plan.NewScan(cat.Table("lineitem"),
			"l_orderkey", "l_returnflag", "l_extendedprice", "l_discount")
		l.Where(expr.Eq(col(l.Schema(), "l_returnflag"), expr.Ch('R')))
		j := plan.NewJoin(plan.Inner, jo, l,
			[]expr.Expr{col(jo.Schema(), "o_orderkey")},
			[]expr.Expr{col(l.Schema(), "l_orderkey")},
			[]string{"o_custkey", "c_name", "c_acctbal", "c_phone", "n_name",
				"c_address", "c_comment"})
		js := j.Schema()
		g := plan.NewGroupBy(j,
			[]expr.Expr{col(js, "o_custkey"), col(js, "c_name"), col(js, "c_acctbal"),
				col(js, "c_phone"), col(js, "n_name"), col(js, "c_address"),
				col(js, "c_comment")},
			[]string{"c_custkey", "c_name", "c_acctbal", "c_phone", "n_name",
				"c_address", "c_comment"},
			[]plan.AggExpr{{Func: plan.Sum, Arg: discPrice(js), Name: "revenue"}})
		gs := g.Schema()
		return plan.NewOrderBy(g, []plan.SortKey{
			desc(col(gs, "revenue")), asc(col(gs, "c_custkey"))}, 20)
	})
}

// Q11: important stock identification — the paper's Fig. 14 query. The
// HAVING threshold (a scalar subquery) becomes a first stage.
func Q11(cat *storage.Catalog) plan.Query {
	germanPS := func() plan.Node {
		n := plan.NewScan(cat.Table("nation"), "n_nationkey", "n_name")
		n.Where(expr.Eq(col(n.Schema(), "n_name"), expr.Str("GERMANY")))
		s := plan.NewScan(cat.Table("supplier"), "s_suppkey", "s_nationkey")
		js := plan.NewJoin(plan.Semi, n, s,
			[]expr.Expr{col(n.Schema(), "n_nationkey")},
			[]expr.Expr{col(s.Schema(), "s_nationkey")}, nil)
		ps := plan.NewScan(cat.Table("partsupp"),
			"ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost")
		return plan.NewJoin(plan.Semi, js, ps,
			[]expr.Expr{col(js.Schema(), "s_suppkey")},
			[]expr.Expr{col(ps.Schema(), "ps_suppkey")}, nil)
	}
	value := func(schema []plan.ColDef) expr.Expr {
		return expr.Mul(col(schema, "ps_supplycost"),
			expr.Rescale(col(schema, "ps_availqty"), 2))
	}
	return plan.Query{Name: "Q11", Stages: []plan.Stage{
		{Name: "total", Build: func(map[string]*storage.Table) plan.Node {
			j := germanPS()
			return plan.NewGroupBy(j, nil, nil, []plan.AggExpr{
				{Func: plan.Sum, Arg: value(j.Schema()), Name: "total"}})
		}},
		{Name: "result", Build: func(prior map[string]*storage.Table) plan.Node {
			total := prior["total"].MustCol("total").Int64At(0)
			threshold := total / 10000 // total * 0.0001
			j := germanPS()
			g := plan.NewGroupBy(j,
				[]expr.Expr{col(j.Schema(), "ps_partkey")}, []string{"ps_partkey"},
				[]plan.AggExpr{{Func: plan.Sum, Arg: value(j.Schema()), Name: "value"}})
			f := plan.NewFilter(g,
				expr.Gt(col(g.Schema(), "value"), expr.Dec(threshold, 4)))
			return plan.NewOrderBy(f, []plan.SortKey{desc(col(g.Schema(), "value"))}, -1)
		}},
	}}
}
