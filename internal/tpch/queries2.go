package tpch

import (
	"aqe/internal/expr"
	"aqe/internal/plan"
	"aqe/internal/storage"
)

// Q12: shipping modes and order priority.
func Q12(cat *storage.Catalog) plan.Query {
	return plan.SingleStage("Q12", func() plan.Node {
		o := plan.NewScan(cat.Table("orders"), "o_orderkey", "o_orderpriority")
		l := plan.NewScan(cat.Table("lineitem"),
			"l_orderkey", "l_shipmode", "l_commitdate", "l_receiptdate", "l_shipdate")
		ls := l.Schema()
		l.Where(expr.And(
			expr.In(col(ls, "l_shipmode"), expr.Str("MAIL"), expr.Str("SHIP")),
			expr.Lt(col(ls, "l_commitdate"), col(ls, "l_receiptdate")),
			expr.Lt(col(ls, "l_shipdate"), col(ls, "l_commitdate")),
			expr.Ge(col(ls, "l_receiptdate"), date("1994-01-01")),
			expr.Lt(col(ls, "l_receiptdate"), date("1995-01-01"))))
		j := plan.NewJoin(plan.Inner, o, l,
			[]expr.Expr{col(o.Schema(), "o_orderkey")},
			[]expr.Expr{col(ls, "l_orderkey")},
			[]string{"o_orderpriority"})
		js := j.Schema()
		isHigh := expr.In(col(js, "o_orderpriority"),
			expr.Str("1-URGENT"), expr.Str("2-HIGH"))
		g := plan.NewGroupBy(j,
			[]expr.Expr{col(js, "l_shipmode")}, []string{"l_shipmode"},
			[]plan.AggExpr{
				{Func: plan.Sum, Arg: expr.Case(
					[]expr.When{{Cond: isHigh, Then: expr.Int(1)}}, expr.Int(0)),
					Name: "high_line_count"},
				{Func: plan.Sum, Arg: expr.Case(
					[]expr.When{{Cond: expr.Not(isHigh), Then: expr.Int(1)}}, expr.Int(0)),
					Name: "low_line_count"},
			})
		return plan.NewOrderBy(g, []plan.SortKey{asc(col(g.Schema(), "l_shipmode"))}, -1)
	})
}

// Q13: customer distribution — the outer-count join (customers with zero
// orders must appear).
func Q13(cat *storage.Catalog) plan.Query {
	return plan.SingleStage("Q13", func() plan.Node {
		o := plan.NewScan(cat.Table("orders"), "o_orderkey", "o_custkey", "o_comment")
		o.Where(expr.NotLike(col(o.Schema(), "o_comment"), "%special%requests%"))
		c := plan.NewScan(cat.Table("customer"), "c_custkey")
		j := plan.NewJoin(plan.OuterCount, o, c,
			[]expr.Expr{col(o.Schema(), "o_custkey")},
			[]expr.Expr{col(c.Schema(), "c_custkey")}, nil).Named("c_count")
		js := j.Schema()
		g := plan.NewGroupBy(j,
			[]expr.Expr{col(js, "c_count")}, []string{"c_count"},
			[]plan.AggExpr{{Func: plan.CountStar, Name: "custdist"}})
		gs := g.Schema()
		return plan.NewOrderBy(g, []plan.SortKey{
			desc(col(gs, "custdist")), desc(col(gs, "c_count"))}, -1)
	})
}

// Q14: promotion effect.
func Q14(cat *storage.Catalog) plan.Query {
	return plan.SingleStage("Q14", func() plan.Node {
		p := plan.NewScan(cat.Table("part"), "p_partkey", "p_type")
		l := plan.NewScan(cat.Table("lineitem"),
			"l_partkey", "l_extendedprice", "l_discount", "l_shipdate")
		l.Where(expr.And(
			expr.Ge(col(l.Schema(), "l_shipdate"), date("1995-09-01")),
			expr.Lt(col(l.Schema(), "l_shipdate"), date("1995-10-01"))))
		j := plan.NewJoin(plan.Inner, p, l,
			[]expr.Expr{col(p.Schema(), "p_partkey")},
			[]expr.Expr{col(l.Schema(), "l_partkey")},
			[]string{"p_type"})
		js := j.Schema()
		vol := discPrice(js)
		promo := expr.Case([]expr.When{{
			Cond: expr.Like(col(js, "p_type"), "PROMO%"),
			Then: vol,
		}}, expr.Dec(0, 4))
		g := plan.NewGroupBy(j, nil, nil, []plan.AggExpr{
			{Func: plan.Sum, Arg: promo, Name: "promo"},
			{Func: plan.Sum, Arg: vol, Name: "total"},
		})
		gs := g.Schema()
		return plan.NewProject(g,
			[]expr.Expr{expr.Mul(expr.Float(100),
				expr.Div(col(gs, "promo"), col(gs, "total")))},
			[]string{"promo_revenue"})
	})
}

// Q15: top supplier. The revenue view is stage 1, its max stage 2.
func Q15(cat *storage.Catalog) plan.Query {
	return plan.Query{Name: "Q15", Stages: []plan.Stage{
		{Name: "revenue", Build: func(map[string]*storage.Table) plan.Node {
			l := plan.NewScan(cat.Table("lineitem"),
				"l_suppkey", "l_extendedprice", "l_discount", "l_shipdate")
			l.Where(expr.And(
				expr.Ge(col(l.Schema(), "l_shipdate"), date("1996-01-01")),
				expr.Lt(col(l.Schema(), "l_shipdate"), date("1996-04-01"))))
			return plan.NewGroupBy(l,
				[]expr.Expr{col(l.Schema(), "l_suppkey")}, []string{"supplier_no"},
				[]plan.AggExpr{{Func: plan.Sum, Arg: discPrice(l.Schema()),
					Name: "total_revenue"}})
		}},
		{Name: "maxrev", Build: func(prior map[string]*storage.Table) plan.Node {
			rv := plan.NewScan(prior["revenue"], "supplier_no", "total_revenue")
			return plan.NewGroupBy(rv, nil, nil, []plan.AggExpr{
				{Func: plan.Max, Arg: col(rv.Schema(), "total_revenue"), Name: "m"}})
		}},
		{Name: "result", Build: func(prior map[string]*storage.Table) plan.Node {
			m := prior["maxrev"].MustCol("m").Int64At(0)
			rv := plan.NewScan(prior["revenue"], "supplier_no", "total_revenue")
			rv.Where(expr.Eq(col(rv.Schema(), "total_revenue"), expr.Dec(m, 4)))
			s := plan.NewScan(cat.Table("supplier"),
				"s_suppkey", "s_name", "s_address", "s_phone")
			j := plan.NewJoin(plan.Inner, rv, s,
				[]expr.Expr{col(rv.Schema(), "supplier_no")},
				[]expr.Expr{col(s.Schema(), "s_suppkey")},
				[]string{"total_revenue"})
			return plan.NewOrderBy(j, []plan.SortKey{asc(col(j.Schema(), "s_suppkey"))}, -1)
		}},
	}}
}

// Q16: parts/supplier relationship. COUNT(DISTINCT) lowers to two
// aggregations; the NOT IN complaint subquery to an anti join.
func Q16(cat *storage.Catalog) plan.Query {
	return plan.SingleStage("Q16", func() plan.Node {
		p := plan.NewScan(cat.Table("part"), "p_partkey", "p_brand", "p_type", "p_size")
		psch := p.Schema()
		p.Where(expr.And(
			expr.Ne(col(psch, "p_brand"), expr.Str("Brand#45")),
			expr.NotLike(col(psch, "p_type"), "MEDIUM POLISHED%"),
			expr.In(col(psch, "p_size"), expr.Int(49), expr.Int(14), expr.Int(23),
				expr.Int(45), expr.Int(19), expr.Int(3), expr.Int(36), expr.Int(9))))
		bad := plan.NewScan(cat.Table("supplier"), "s_suppkey", "s_comment")
		bad.Where(expr.Like(col(bad.Schema(), "s_comment"), "%Customer%Complaints%"))
		ps := plan.NewScan(cat.Table("partsupp"), "ps_partkey", "ps_suppkey")
		j := plan.NewJoin(plan.Inner, p, ps,
			[]expr.Expr{col(psch, "p_partkey")},
			[]expr.Expr{col(ps.Schema(), "ps_partkey")},
			[]string{"p_brand", "p_type", "p_size"})
		ja := plan.NewJoin(plan.Anti, bad, j,
			[]expr.Expr{col(bad.Schema(), "s_suppkey")},
			[]expr.Expr{col(j.Schema(), "ps_suppkey")}, nil)
		jas := ja.Schema()
		// Distinct (brand, type, size, suppkey), then count per group.
		dedup := plan.NewGroupBy(ja,
			[]expr.Expr{col(jas, "p_brand"), col(jas, "p_type"), col(jas, "p_size"),
				col(jas, "ps_suppkey")},
			[]string{"p_brand", "p_type", "p_size", "ps_suppkey"}, nil)
		ds := dedup.Schema()
		g := plan.NewGroupBy(dedup,
			[]expr.Expr{col(ds, "p_brand"), col(ds, "p_type"), col(ds, "p_size")},
			[]string{"p_brand", "p_type", "p_size"},
			[]plan.AggExpr{{Func: plan.CountStar, Name: "supplier_cnt"}})
		gs := g.Schema()
		return plan.NewOrderBy(g, []plan.SortKey{
			desc(col(gs, "supplier_cnt")), asc(col(gs, "p_brand")),
			asc(col(gs, "p_type")), asc(col(gs, "p_size"))}, -1)
	})
}

// Q17: small-quantity-order revenue. The correlated average becomes a
// per-part aggregation stage.
func Q17(cat *storage.Catalog) plan.Query {
	filteredPart := func() *plan.Scan {
		p := plan.NewScan(cat.Table("part"), "p_partkey", "p_brand", "p_container")
		p.Where(expr.And(
			expr.Eq(col(p.Schema(), "p_brand"), expr.Str("Brand#23")),
			expr.Eq(col(p.Schema(), "p_container"), expr.Str("MED BOX"))))
		return p
	}
	return plan.Query{Name: "Q17", Stages: []plan.Stage{
		{Name: "partavg", Build: func(map[string]*storage.Table) plan.Node {
			p := filteredPart()
			l := plan.NewScan(cat.Table("lineitem"), "l_partkey", "l_quantity")
			j := plan.NewJoin(plan.Semi, p, l,
				[]expr.Expr{col(p.Schema(), "p_partkey")},
				[]expr.Expr{col(l.Schema(), "l_partkey")}, nil)
			return plan.NewGroupBy(j,
				[]expr.Expr{col(j.Schema(), "l_partkey")}, []string{"pa_partkey"},
				[]plan.AggExpr{{Func: plan.Avg, Arg: col(j.Schema(), "l_quantity"),
					Name: "pa_avgqty"}})
		}},
		{Name: "result", Build: func(prior map[string]*storage.Table) plan.Node {
			p := filteredPart()
			pa := plan.NewScan(prior["partavg"], "pa_partkey", "pa_avgqty")
			l := plan.NewScan(cat.Table("lineitem"),
				"l_partkey", "l_quantity", "l_extendedprice")
			j1 := plan.NewJoin(plan.Semi, p, l,
				[]expr.Expr{col(p.Schema(), "p_partkey")},
				[]expr.Expr{col(l.Schema(), "l_partkey")}, nil)
			j2 := plan.NewJoin(plan.Inner, pa, j1,
				[]expr.Expr{col(pa.Schema(), "pa_partkey")},
				[]expr.Expr{col(j1.Schema(), "l_partkey")},
				[]string{"pa_avgqty"})
			js := j2.Schema()
			f := plan.NewFilter(j2, expr.Lt(
				expr.ToFloat(col(js, "l_quantity")),
				expr.Mul(expr.Float(0.2), col(js, "pa_avgqty"))))
			g := plan.NewGroupBy(f, nil, nil, []plan.AggExpr{
				{Func: plan.Sum, Arg: col(js, "l_extendedprice"), Name: "total"}})
			gs := g.Schema()
			return plan.NewProject(g,
				[]expr.Expr{expr.Div(expr.ToFloat(col(gs, "total")), expr.Float(7))},
				[]string{"avg_yearly"})
		}},
	}}
}

// Q18: large-volume customers.
func Q18(cat *storage.Catalog) plan.Query {
	return plan.SingleStage("Q18", func() plan.Node {
		l := plan.NewScan(cat.Table("lineitem"), "l_orderkey", "l_quantity")
		big := plan.NewGroupBy(l,
			[]expr.Expr{col(l.Schema(), "l_orderkey")}, []string{"bo_orderkey"},
			[]plan.AggExpr{{Func: plan.Sum, Arg: col(l.Schema(), "l_quantity"),
				Name: "bo_qty"}})
		bigF := plan.NewFilter(big,
			expr.Gt(col(big.Schema(), "bo_qty"), expr.Dec(30000, 2)))
		c := plan.NewScan(cat.Table("customer"), "c_custkey", "c_name")
		o := plan.NewScan(cat.Table("orders"),
			"o_orderkey", "o_custkey", "o_orderdate", "o_totalprice")
		j1 := plan.NewJoin(plan.Inner, bigF, o,
			[]expr.Expr{col(bigF.Schema(), "bo_orderkey")},
			[]expr.Expr{col(o.Schema(), "o_orderkey")},
			[]string{"bo_qty"})
		j2 := plan.NewJoin(plan.Inner, c, j1,
			[]expr.Expr{col(c.Schema(), "c_custkey")},
			[]expr.Expr{col(j1.Schema(), "o_custkey")},
			[]string{"c_name"})
		js := j2.Schema()
		pr := plan.NewProject(j2,
			[]expr.Expr{col(js, "c_name"), col(js, "o_custkey"), col(js, "o_orderkey"),
				col(js, "o_orderdate"), col(js, "o_totalprice"), col(js, "bo_qty")},
			[]string{"c_name", "c_custkey", "o_orderkey", "o_orderdate",
				"o_totalprice", "sum_qty"})
		prs := pr.Schema()
		return plan.NewOrderBy(pr, []plan.SortKey{
			desc(col(prs, "o_totalprice")), asc(col(prs, "o_orderdate")),
			asc(col(prs, "o_orderkey"))}, 100)
	})
}

// Q19: discounted revenue — the three-way disjunctive join predicate.
func Q19(cat *storage.Catalog) plan.Query {
	return plan.SingleStage("Q19", func() plan.Node {
		p := plan.NewScan(cat.Table("part"),
			"p_partkey", "p_brand", "p_container", "p_size")
		l := plan.NewScan(cat.Table("lineitem"),
			"l_partkey", "l_quantity", "l_extendedprice", "l_discount",
			"l_shipinstruct", "l_shipmode")
		ls := l.Schema()
		l.Where(expr.And(
			expr.Eq(col(ls, "l_shipinstruct"), expr.Str("DELIVER IN PERSON")),
			expr.In(col(ls, "l_shipmode"), expr.Str("AIR"), expr.Str("REG AIR"))))
		j := plan.NewJoin(plan.Inner, p, l,
			[]expr.Expr{col(p.Schema(), "p_partkey")},
			[]expr.Expr{col(ls, "l_partkey")}, nil)
		comb := j.CombinedSchema()
		qty := func(lo, hi int64) expr.Expr {
			return expr.Between(col(comb, "l_quantity"),
				expr.Dec(lo*100, 2), expr.Dec(hi*100, 2))
		}
		size := func(hi int64) expr.Expr {
			return expr.Between(col(comb, "p_size"), expr.Int(1), expr.Int(hi))
		}
		branch1 := expr.And(
			expr.Eq(col(comb, "p_brand"), expr.Str("Brand#12")),
			expr.In(col(comb, "p_container"), expr.Str("SM CASE"), expr.Str("SM BOX"),
				expr.Str("SM PACK"), expr.Str("SM PKG")),
			qty(1, 11), size(5))
		branch2 := expr.And(
			expr.Eq(col(comb, "p_brand"), expr.Str("Brand#23")),
			expr.In(col(comb, "p_container"), expr.Str("MED BAG"), expr.Str("MED BOX"),
				expr.Str("MED PKG"), expr.Str("MED PACK")),
			qty(10, 20), size(10))
		branch3 := expr.And(
			expr.Eq(col(comb, "p_brand"), expr.Str("Brand#34")),
			expr.In(col(comb, "p_container"), expr.Str("LG CASE"), expr.Str("LG BOX"),
				expr.Str("LG PACK"), expr.Str("LG PKG")),
			qty(20, 30), size(15))
		j.WithResidual(expr.Or(branch1, branch2, branch3))
		return plan.NewGroupBy(j, nil, nil, []plan.AggExpr{
			{Func: plan.Sum, Arg: discPrice(j.Schema()), Name: "revenue"}})
	})
}

// Q20: potential part promotion. The correlated half-year sales subquery
// becomes a per-(part,supplier) aggregation stage.
func Q20(cat *storage.Catalog) plan.Query {
	return plan.Query{Name: "Q20", Stages: []plan.Stage{
		{Name: "sold", Build: func(map[string]*storage.Table) plan.Node {
			l := plan.NewScan(cat.Table("lineitem"),
				"l_partkey", "l_suppkey", "l_quantity", "l_shipdate")
			l.Where(expr.And(
				expr.Ge(col(l.Schema(), "l_shipdate"), date("1994-01-01")),
				expr.Lt(col(l.Schema(), "l_shipdate"), date("1995-01-01"))))
			return plan.NewGroupBy(l,
				[]expr.Expr{col(l.Schema(), "l_partkey"), col(l.Schema(), "l_suppkey")},
				[]string{"sq_partkey", "sq_suppkey"},
				[]plan.AggExpr{{Func: plan.Sum, Arg: col(l.Schema(), "l_quantity"),
					Name: "sq_qty"}})
		}},
		{Name: "result", Build: func(prior map[string]*storage.Table) plan.Node {
			p := plan.NewScan(cat.Table("part"), "p_partkey", "p_name")
			p.Where(expr.Like(col(p.Schema(), "p_name"), "forest%"))
			sold := plan.NewScan(prior["sold"], "sq_partkey", "sq_suppkey", "sq_qty")
			ps := plan.NewScan(cat.Table("partsupp"),
				"ps_partkey", "ps_suppkey", "ps_availqty")
			j1 := plan.NewJoin(plan.Semi, p, ps,
				[]expr.Expr{col(p.Schema(), "p_partkey")},
				[]expr.Expr{col(ps.Schema(), "ps_partkey")}, nil)
			j2 := plan.NewJoin(plan.Inner, sold, j1,
				[]expr.Expr{col(sold.Schema(), "sq_partkey"), col(sold.Schema(), "sq_suppkey")},
				[]expr.Expr{col(j1.Schema(), "ps_partkey"), col(j1.Schema(), "ps_suppkey")},
				[]string{"sq_qty"})
			js := j2.Schema()
			f := plan.NewFilter(j2, expr.Gt(
				expr.ToFloat(col(js, "ps_availqty")),
				expr.Mul(expr.Float(0.5), expr.ToFloat(col(js, "sq_qty")))))
			// Suppliers of qualifying partsupps, in CANADA.
			n := plan.NewScan(cat.Table("nation"), "n_nationkey", "n_name")
			n.Where(expr.Eq(col(n.Schema(), "n_name"), expr.Str("CANADA")))
			s := plan.NewScan(cat.Table("supplier"),
				"s_suppkey", "s_name", "s_address", "s_nationkey")
			sj := plan.NewJoin(plan.Semi, n, s,
				[]expr.Expr{col(n.Schema(), "n_nationkey")},
				[]expr.Expr{col(s.Schema(), "s_nationkey")}, nil)
			out := plan.NewJoin(plan.Semi, f, sj,
				[]expr.Expr{col(js, "ps_suppkey")},
				[]expr.Expr{col(sj.Schema(), "s_suppkey")}, nil)
			outs := out.Schema()
			pr := plan.NewProject(out,
				[]expr.Expr{col(outs, "s_name"), col(outs, "s_address")},
				[]string{"s_name", "s_address"})
			return plan.NewOrderBy(pr, []plan.SortKey{asc(col(pr.Schema(), "s_name"))}, -1)
		}},
	}}
}

// Q21: suppliers who kept orders waiting. EXISTS/NOT EXISTS become
// semi/anti joins with inequality residuals.
func Q21(cat *storage.Catalog) plan.Query {
	return plan.SingleStage("Q21", func() plan.Node {
		n := plan.NewScan(cat.Table("nation"), "n_nationkey", "n_name")
		n.Where(expr.Eq(col(n.Schema(), "n_name"), expr.Str("SAUDI ARABIA")))
		s := plan.NewScan(cat.Table("supplier"), "s_suppkey", "s_name", "s_nationkey")
		jsup := plan.NewJoin(plan.Semi, n, s,
			[]expr.Expr{col(n.Schema(), "n_nationkey")},
			[]expr.Expr{col(s.Schema(), "s_nationkey")}, nil)
		o := plan.NewScan(cat.Table("orders"), "o_orderkey", "o_orderstatus")
		o.Where(expr.Eq(col(o.Schema(), "o_orderstatus"), expr.Ch('F')))
		l2 := plan.NewScan(cat.Table("lineitem"), "l_orderkey", "l_suppkey")
		l3 := plan.NewScan(cat.Table("lineitem"),
			"l_orderkey", "l_suppkey", "l_commitdate", "l_receiptdate")
		l3.Where(expr.Gt(col(l3.Schema(), "l_receiptdate"), col(l3.Schema(), "l_commitdate")))

		l1 := plan.NewScan(cat.Table("lineitem"),
			"l_orderkey", "l_suppkey", "l_commitdate", "l_receiptdate")
		l1.Where(expr.Gt(col(l1.Schema(), "l_receiptdate"), col(l1.Schema(), "l_commitdate")))
		// l1 ⨝ supplier (payload s_name).
		j1 := plan.NewJoin(plan.Inner, jsup, l1,
			[]expr.Expr{col(jsup.Schema(), "s_suppkey")},
			[]expr.Expr{col(l1.Schema(), "l_suppkey")},
			[]string{"s_name"})
		// Order must be F.
		j2 := plan.NewJoin(plan.Semi, o, j1,
			[]expr.Expr{col(o.Schema(), "o_orderkey")},
			[]expr.Expr{col(j1.Schema(), "l_orderkey")}, nil)
		// EXISTS another supplier's line in the same order.
		j3 := plan.NewJoin(plan.Semi, l2, j2,
			[]expr.Expr{col(l2.Schema(), "l_orderkey")},
			[]expr.Expr{col(j2.Schema(), "l_orderkey")}, nil)
		comb3 := j3.CombinedSchema()
		np3 := len(j2.Schema())
		j3.WithResidual(expr.Ne(
			expr.Col(plan.ColIdx(comb3[np3:], "l_suppkey")+np3, expr.TInt),
			col(j3.Probe.Schema(), "l_suppkey")))
		// NOT EXISTS another supplier's LATE line in the same order.
		j4 := plan.NewJoin(plan.Anti, l3, j3,
			[]expr.Expr{col(l3.Schema(), "l_orderkey")},
			[]expr.Expr{col(j3.Schema(), "l_orderkey")}, nil)
		comb4 := j4.CombinedSchema()
		np4 := len(j3.Schema())
		j4.WithResidual(expr.Ne(
			expr.Col(plan.ColIdx(comb4[np4:], "l_suppkey")+np4, expr.TInt),
			col(j4.Probe.Schema(), "l_suppkey")))
		js := j4.Schema()
		g := plan.NewGroupBy(j4,
			[]expr.Expr{col(js, "s_name")}, []string{"s_name"},
			[]plan.AggExpr{{Func: plan.CountStar, Name: "numwait"}})
		gs := g.Schema()
		return plan.NewOrderBy(g, []plan.SortKey{
			desc(col(gs, "numwait")), asc(col(gs, "s_name"))}, 100)
	})
}

// Q22: global sales opportunity. The average-balance subquery is stage 1.
func Q22(cat *storage.Catalog) plan.Query {
	codes := []expr.Expr{
		expr.Str("13"), expr.Str("31"), expr.Str("23"),
		expr.Str("29"), expr.Str("30"), expr.Str("18"), expr.Str("17"),
	}
	cntry := func(schema []plan.ColDef) expr.Expr {
		return expr.Substr(col(schema, "c_phone"), 1, 2)
	}
	return plan.Query{Name: "Q22", Stages: []plan.Stage{
		{Name: "avgbal", Build: func(map[string]*storage.Table) plan.Node {
			c := plan.NewScan(cat.Table("customer"), "c_phone", "c_acctbal")
			cs := c.Schema()
			c.Where(expr.And(
				expr.Gt(col(cs, "c_acctbal"), expr.Dec(0, 2)),
				expr.In(cntry(cs), codes...)))
			return plan.NewGroupBy(c, nil, nil, []plan.AggExpr{
				{Func: plan.Avg, Arg: col(cs, "c_acctbal"), Name: "a"}})
		}},
		{Name: "result", Build: func(prior map[string]*storage.Table) plan.Node {
			avg := prior["avgbal"].MustCol("a").Float64At(0)
			c := plan.NewScan(cat.Table("customer"), "c_custkey", "c_phone", "c_acctbal")
			cs := c.Schema()
			c.Where(expr.And(
				expr.In(cntry(cs), codes...),
				expr.Gt(expr.ToFloat(col(cs, "c_acctbal")), expr.Float(avg))))
			o := plan.NewScan(cat.Table("orders"), "o_custkey")
			j := plan.NewJoin(plan.Anti, o, c,
				[]expr.Expr{col(o.Schema(), "o_custkey")},
				[]expr.Expr{col(cs, "c_custkey")}, nil)
			js := j.Schema()
			g := plan.NewGroupBy(j,
				[]expr.Expr{cntry(js)}, []string{"cntrycode"},
				[]plan.AggExpr{
					{Func: plan.CountStar, Name: "numcust"},
					{Func: plan.Sum, Arg: col(js, "c_acctbal"), Name: "totacctbal"},
				})
			return plan.NewOrderBy(g, []plan.SortKey{asc(col(g.Schema(), "cntrycode"))}, -1)
		}},
	}}
}
