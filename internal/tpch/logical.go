package tpch

import (
	"aqe/internal/expr"
	"aqe/internal/opt"
	"aqe/internal/plan"
	"aqe/internal/storage"
)

// Logical returns the logical join-graph form of TPC-H query n, or false
// when only the hand-built physical plan exists. Unlike Query, which fixes
// a left-deep join order, the logical form states relations, filters, and
// join predicates only; internal/opt picks the order. Finish closures
// rebind aggregation and sort columns by name so they work for any join
// order the optimizer (or a mid-query replan) produces.
//
// Semantic deltas from the hand plans, none of which change results:
//   - Q3's customer semi join becomes an inner join (c_custkey is unique,
//     so each order matches at most one customer).
//   - Q5's supplier residual s_nationkey = c_nationkey becomes a proper
//     cycle edge, making supplier's join a multi-key hash join.
//   - Q10 groups on c_custkey instead of o_custkey (equal via the join),
//     so the output column needs no rename.
func Logical(cat *storage.Catalog, n int) (*opt.Logical, bool) {
	switch n {
	case 3:
		return logicalQ3(cat), true
	case 5:
		return logicalQ5(cat), true
	case 10:
		return logicalQ10(cat), true
	}
	return nil, false
}

// rel builds a Relation plus a schema for constructing its filter: the
// scan the optimizer will emit lists columns in exactly this order, so
// column references bound against this schema resolve identically.
func rel(cat *storage.Catalog, name string, cols ...string) (opt.Relation, []plan.ColDef) {
	t := cat.Table(name)
	return opt.Relation{Name: name, Table: t, Cols: cols},
		plan.NewScan(t, cols...).Schema()
}

func logicalQ3(cat *storage.Catalog) *opt.Logical {
	c, cs := rel(cat, "customer", "c_custkey", "c_mktsegment")
	c.Filter = expr.Eq(col(cs, "c_mktsegment"), expr.Str("BUILDING"))
	o, os := rel(cat, "orders", "o_orderkey", "o_custkey", "o_orderdate", "o_shippriority")
	o.Filter = expr.Lt(col(os, "o_orderdate"), date("1995-03-15"))
	l, ls := rel(cat, "lineitem", "l_orderkey", "l_extendedprice", "l_discount", "l_shipdate")
	l.Filter = expr.Gt(col(ls, "l_shipdate"), date("1995-03-15"))
	return &opt.Logical{
		Name: "Q3",
		Graph: &opt.Graph{
			Rels: []opt.Relation{c, o, l},
			Edges: []opt.Edge{
				{L: 0, LCol: "c_custkey", R: 1, RCol: "o_custkey"},
				{L: 1, LCol: "o_orderkey", R: 2, RCol: "l_orderkey"},
			},
		},
		Finish: func(j plan.Node) plan.Node {
			js := j.Schema()
			g := plan.NewGroupBy(j,
				[]expr.Expr{col(js, "l_orderkey"), col(js, "o_orderdate"), col(js, "o_shippriority")},
				[]string{"l_orderkey", "o_orderdate", "o_shippriority"},
				[]plan.AggExpr{{Func: plan.Sum, Arg: discPrice(js), Name: "revenue"}})
			gs := g.Schema()
			return plan.NewOrderBy(g, []plan.SortKey{
				desc(col(gs, "revenue")), asc(col(gs, "o_orderdate")),
				asc(col(gs, "l_orderkey"))}, 10)
		},
	}
}

func logicalQ5(cat *storage.Catalog) *opt.Logical {
	r, rs := rel(cat, "region", "r_regionkey", "r_name")
	r.Filter = expr.Eq(col(rs, "r_name"), expr.Str("ASIA"))
	n, _ := rel(cat, "nation", "n_nationkey", "n_name", "n_regionkey")
	c, _ := rel(cat, "customer", "c_custkey", "c_nationkey")
	o, os := rel(cat, "orders", "o_orderkey", "o_custkey", "o_orderdate")
	o.Filter = expr.And(
		expr.Ge(col(os, "o_orderdate"), date("1994-01-01")),
		expr.Lt(col(os, "o_orderdate"), date("1995-01-01")))
	l, _ := rel(cat, "lineitem", "l_orderkey", "l_suppkey", "l_extendedprice", "l_discount")
	s, _ := rel(cat, "supplier", "s_suppkey", "s_nationkey")
	return &opt.Logical{
		Name: "Q5",
		Graph: &opt.Graph{
			Rels: []opt.Relation{r, n, c, o, l, s},
			Edges: []opt.Edge{
				{L: 0, LCol: "r_regionkey", R: 1, RCol: "n_regionkey"},
				{L: 1, LCol: "n_nationkey", R: 2, RCol: "c_nationkey"},
				{L: 2, LCol: "c_custkey", R: 3, RCol: "o_custkey"},
				{L: 3, LCol: "o_orderkey", R: 4, RCol: "l_orderkey"},
				{L: 4, LCol: "l_suppkey", R: 5, RCol: "s_suppkey"},
				// The "local supplier" condition: supplier and customer
				// share a nation. A residual in the hand plan; here a
				// cycle edge, so whichever join closes the cycle keys on
				// both columns.
				{L: 5, LCol: "s_nationkey", R: 2, RCol: "c_nationkey"},
			},
		},
		Finish: func(j plan.Node) plan.Node {
			js := j.Schema()
			g := plan.NewGroupBy(j,
				[]expr.Expr{col(js, "n_name")}, []string{"n_name"},
				[]plan.AggExpr{{Func: plan.Sum, Arg: discPrice(js), Name: "revenue"}})
			return plan.NewOrderBy(g, []plan.SortKey{desc(col(g.Schema(), "revenue"))}, -1)
		},
	}
}

func logicalQ10(cat *storage.Catalog) *opt.Logical {
	n, _ := rel(cat, "nation", "n_nationkey", "n_name")
	c, _ := rel(cat, "customer",
		"c_custkey", "c_name", "c_acctbal", "c_phone", "c_nationkey",
		"c_address", "c_comment")
	o, os := rel(cat, "orders", "o_orderkey", "o_custkey", "o_orderdate")
	o.Filter = expr.And(
		expr.Ge(col(os, "o_orderdate"), date("1993-10-01")),
		expr.Lt(col(os, "o_orderdate"), date("1994-01-01")))
	l, ls := rel(cat, "lineitem", "l_orderkey", "l_returnflag", "l_extendedprice", "l_discount")
	l.Filter = expr.Eq(col(ls, "l_returnflag"), expr.Ch('R'))
	return &opt.Logical{
		Name: "Q10",
		Graph: &opt.Graph{
			Rels: []opt.Relation{n, c, o, l},
			Edges: []opt.Edge{
				{L: 0, LCol: "n_nationkey", R: 1, RCol: "c_nationkey"},
				{L: 1, LCol: "c_custkey", R: 2, RCol: "o_custkey"},
				{L: 2, LCol: "o_orderkey", R: 3, RCol: "l_orderkey"},
			},
		},
		Finish: func(j plan.Node) plan.Node {
			js := j.Schema()
			g := plan.NewGroupBy(j,
				[]expr.Expr{col(js, "c_custkey"), col(js, "c_name"), col(js, "c_acctbal"),
					col(js, "c_phone"), col(js, "n_name"), col(js, "c_address"),
					col(js, "c_comment")},
				[]string{"c_custkey", "c_name", "c_acctbal", "c_phone", "n_name",
					"c_address", "c_comment"},
				[]plan.AggExpr{{Func: plan.Sum, Arg: discPrice(js), Name: "revenue"}})
			gs := g.Schema()
			return plan.NewOrderBy(g, []plan.SortKey{
				desc(col(gs, "revenue")), asc(col(gs, "c_custkey"))}, 20)
		},
	}
}
