// Package tpch implements a dbgen-equivalent TPC-H data generator and the
// physical plans of all 22 TPC-H queries. The generator is deterministic
// for a given scale factor and follows the specification's table sizes,
// key structure (including the partsupp/lineitem supplier relationship)
// and the value distributions the queries' predicates select on; text
// columns carry the words the benchmark's LIKE patterns look for.
package tpch

import (
	"fmt"
	"math/rand"
	"sort"

	"aqe/internal/storage"
)

// Nations and regions per the TPC-H specification.
var regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nations = []struct {
	Name   string
	Region int
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
	{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
	{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
	{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
	{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},
	{"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}

var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}

var shipModes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}

var shipInstructs = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}

var typeSyl1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
var typeSyl2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
var typeSyl3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}

var containerSyl1 = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
var containerSyl2 = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}

// colors is a subset of dbgen's P_NAME word list; the queries' patterns
// ('%green%', 'forest%') must be able to match.
var colors = []string{
	"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
	"blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
	"chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
	"dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
	"frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
	"hot", "hunter", "indian", "ivory", "khaki", "lace", "lavender", "lawn",
	"lemon", "light", "lime", "linen", "magenta", "maroon", "medium", "metallic",
	"midnight", "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange",
	"orchid", "pale", "papaya", "peach", "peru", "pink", "plum", "powder",
	"puff", "purple", "red", "rose", "rosy", "royal", "saddle", "salmon",
	"sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow", "spring",
	"steel", "tan", "thistle", "tomato", "turquoise", "violet", "wheat", "white",
	"yellow",
}

var commentWords = []string{
	"carefully", "quickly", "furiously", "slyly", "blithely", "ironic",
	"final", "pending", "express", "regular", "bold", "even", "silent",
	"packages", "deposits", "accounts", "requests", "instructions", "foxes",
	"theodolites", "pinto", "beans", "dependencies", "excuses", "platelets",
	"asymptotes", "courts", "ideas", "sauternes", "sleep", "haggle", "nag",
	"special", "unusual",
}

// Date constants (days since 1970-01-01).
var (
	startDate = storage.MustParseDate("1992-01-01")
	endDate   = storage.MustParseDate("1998-08-02")
	cutoff    = storage.MustParseDate("1995-06-17") // returnflag/linestatus split
)

// Sizes per unit scale factor.
const (
	suppliersPerSF = 10000
	partsPerSF     = 200000
	customersPerSF = 150000
	ordersPerSF    = 1500000
	suppPerPart    = 4
)

// Gen generates the 8 TPC-H tables at the given scale factor into a
// catalog. SF 0.01 is about 10 MB of raw data, SF 1 about 1 GB (paper
// §V-A).
func Gen(sf float64) *storage.Catalog {
	rng := rand.New(rand.NewSource(19920101))
	cat := storage.NewCatalog()

	nSupp := scaled(suppliersPerSF, sf)
	nPart := scaled(partsPerSF, sf)
	nCust := scaled(customersPerSF, sf)
	nOrd := scaled(ordersPerSF, sf)

	cat.Add(genRegion())
	cat.Add(genNation())
	cat.Add(genSupplier(rng, nSupp))
	cat.Add(genPart(rng, nPart))
	cat.Add(genPartsupp(rng, nPart, nSupp))
	cat.Add(genCustomer(rng, nCust))
	orders, lineitem := genOrders(rng, nOrd, nCust, nPart, nSupp)
	cat.Add(orders)
	cat.Add(lineitem)
	// Dictionaries and zone maps are part of load. Order matters: string
	// zone maps are built over dictionary codes, so dictionaries come
	// first. Orders are generated in date order, so the date columns of
	// orders/lineitem are clustered and their maps actually prune.
	cat.BuildDicts()
	cat.BuildZoneMaps(storage.DefaultZoneBlockRows)
	return cat
}

// reserveFixed presizes fixed-width columns for n rows.
func reserveFixed(n int, cols ...*storage.Column) {
	for _, c := range cols {
		c.Reserve(n, 0)
	}
}

func scaled(base int, sf float64) int {
	n := int(float64(base) * sf)
	if n < 5 {
		n = 5
	}
	return n
}

func comment(rng *rand.Rand, words int) string {
	out := ""
	for i := 0; i < words; i++ {
		if i > 0 {
			out += " "
		}
		out += commentWords[rng.Intn(len(commentWords))]
	}
	return out
}

func phone(rng *rand.Rand, nation int) string {
	return fmt.Sprintf("%d-%03d-%03d-%04d", 10+nation,
		100+rng.Intn(900), 100+rng.Intn(900), 1000+rng.Intn(9000))
}

func genRegion() *storage.Table {
	key := storage.NewColumn("r_regionkey", storage.Int64)
	name := storage.NewColumn("r_name", storage.String)
	cmt := storage.NewColumn("r_comment", storage.String)
	for i, r := range regions {
		key.AppendInt64(int64(i))
		name.AppendString(r)
		cmt.AppendString("region " + r)
	}
	return storage.NewTable("region", key, name, cmt)
}

func genNation() *storage.Table {
	key := storage.NewColumn("n_nationkey", storage.Int64)
	name := storage.NewColumn("n_name", storage.String)
	rkey := storage.NewColumn("n_regionkey", storage.Int64)
	cmt := storage.NewColumn("n_comment", storage.String)
	for i, n := range nations {
		key.AppendInt64(int64(i))
		name.AppendString(n.Name)
		rkey.AppendInt64(int64(n.Region))
		cmt.AppendString("nation " + n.Name)
	}
	return storage.NewTable("nation", key, name, rkey, cmt)
}

func genSupplier(rng *rand.Rand, n int) *storage.Table {
	key := storage.NewColumn("s_suppkey", storage.Int64)
	name := storage.NewColumn("s_name", storage.String)
	addr := storage.NewColumn("s_address", storage.String)
	nk := storage.NewColumn("s_nationkey", storage.Int64)
	ph := storage.NewColumn("s_phone", storage.String)
	bal := storage.NewColumn("s_acctbal", storage.Decimal)
	cmt := storage.NewColumn("s_comment", storage.String)
	reserveFixed(n, key, nk, bal)
	name.Reserve(n, n*19)
	addr.Reserve(n, n*14)
	ph.Reserve(n, n*15)
	cmt.Reserve(n, n*45)
	for i := 1; i <= n; i++ {
		nat := rng.Intn(len(nations))
		key.AppendInt64(int64(i))
		name.AppendString(fmt.Sprintf("Supplier#%09d", i))
		addr.AppendString(fmt.Sprintf("addr sup %d", i))
		nk.AppendInt64(int64(nat))
		ph.AppendString(phone(rng, nat))
		bal.AppendInt64(int64(rng.Intn(1099998) - 99999)) // -999.99 .. 9999.99
		// ~0.05% of suppliers carry the Q16 complaint marker.
		if rng.Intn(2000) == 0 {
			cmt.AppendString("blithely Customer ironic Complaints sleep")
		} else {
			cmt.AppendString(comment(rng, 6))
		}
	}
	return storage.NewTable("supplier", key, name, addr, nk, ph, bal, cmt)
}

func genPart(rng *rand.Rand, n int) *storage.Table {
	key := storage.NewColumn("p_partkey", storage.Int64)
	name := storage.NewColumn("p_name", storage.String)
	mfgr := storage.NewColumn("p_mfgr", storage.String)
	brand := storage.NewColumn("p_brand", storage.String)
	typ := storage.NewColumn("p_type", storage.String)
	size := storage.NewColumn("p_size", storage.Int64)
	cont := storage.NewColumn("p_container", storage.String)
	price := storage.NewColumn("p_retailprice", storage.Decimal)
	cmt := storage.NewColumn("p_comment", storage.String)
	reserveFixed(n, key, size, price)
	name.Reserve(n, n*33)
	mfgr.Reserve(n, n*15)
	brand.Reserve(n, n*9)
	typ.Reserve(n, n*21)
	cont.Reserve(n, n*8)
	cmt.Reserve(n, n*23)
	for i := 1; i <= n; i++ {
		m := 1 + rng.Intn(5)
		b := m*10 + 1 + rng.Intn(5)
		key.AppendInt64(int64(i))
		// 5 words from the color list, per dbgen.
		nm := ""
		for w := 0; w < 5; w++ {
			if w > 0 {
				nm += " "
			}
			nm += colors[rng.Intn(len(colors))]
		}
		name.AppendString(nm)
		mfgr.AppendString(fmt.Sprintf("Manufacturer#%d", m))
		brand.AppendString(fmt.Sprintf("Brand#%d", b))
		typ.AppendString(typeSyl1[rng.Intn(6)] + " " + typeSyl2[rng.Intn(5)] + " " + typeSyl3[rng.Intn(5)])
		size.AppendInt64(int64(1 + rng.Intn(50)))
		cont.AppendString(containerSyl1[rng.Intn(5)] + " " + containerSyl2[rng.Intn(8)])
		// dbgen: (90000 + (partkey/10)%20001 + 100*(partkey%1000)) / 100
		price.AppendInt64(int64(90000 + (i/10)%20001 + 100*(i%1000)))
		cmt.AppendString(comment(rng, 3))
	}
	return storage.NewTable("part", key, name, mfgr, brand, typ, size, cont, price, cmt)
}

// suppForPart returns the j-th supplier of part p (dbgen's formula), which
// the lineitem generator must respect so lineitem⨝partsupp joins work.
func suppForPart(p, j, nSupp int) int {
	return (p+j*(nSupp/4+(p-1)/nSupp))%nSupp + 1
}

func genPartsupp(rng *rand.Rand, nPart, nSupp int) *storage.Table {
	pk := storage.NewColumn("ps_partkey", storage.Int64)
	sk := storage.NewColumn("ps_suppkey", storage.Int64)
	qty := storage.NewColumn("ps_availqty", storage.Int64)
	cost := storage.NewColumn("ps_supplycost", storage.Decimal)
	cmt := storage.NewColumn("ps_comment", storage.String)
	rows := nPart * suppPerPart
	reserveFixed(rows, pk, sk, qty, cost)
	cmt.Reserve(rows, rows*30)
	for p := 1; p <= nPart; p++ {
		for j := 0; j < suppPerPart; j++ {
			pk.AppendInt64(int64(p))
			sk.AppendInt64(int64(suppForPart(p, j, nSupp)))
			qty.AppendInt64(int64(1 + rng.Intn(9999)))
			cost.AppendInt64(int64(100 + rng.Intn(99901))) // 1.00 .. 1000.00
			cmt.AppendString(comment(rng, 4))
		}
	}
	return storage.NewTable("partsupp", pk, sk, qty, cost, cmt)
}

func genCustomer(rng *rand.Rand, n int) *storage.Table {
	key := storage.NewColumn("c_custkey", storage.Int64)
	name := storage.NewColumn("c_name", storage.String)
	addr := storage.NewColumn("c_address", storage.String)
	nk := storage.NewColumn("c_nationkey", storage.Int64)
	ph := storage.NewColumn("c_phone", storage.String)
	bal := storage.NewColumn("c_acctbal", storage.Decimal)
	seg := storage.NewColumn("c_mktsegment", storage.String)
	cmt := storage.NewColumn("c_comment", storage.String)
	reserveFixed(n, key, nk, bal)
	name.Reserve(n, n*18)
	addr.Reserve(n, n*15)
	ph.Reserve(n, n*15)
	seg.Reserve(n, n*10)
	cmt.Reserve(n, n*45)
	for i := 1; i <= n; i++ {
		nat := rng.Intn(len(nations))
		key.AppendInt64(int64(i))
		name.AppendString(fmt.Sprintf("Customer#%09d", i))
		addr.AppendString(fmt.Sprintf("addr cust %d", i))
		nk.AppendInt64(int64(nat))
		ph.AppendString(phone(rng, nat))
		bal.AppendInt64(int64(rng.Intn(1099998) - 99999))
		seg.AppendString(segments[rng.Intn(len(segments))])
		cmt.AppendString(comment(rng, 6))
	}
	return storage.NewTable("customer", key, name, addr, nk, ph, bal, seg, cmt)
}

func genOrders(rng *rand.Rand, nOrd, nCust, nPart, nSupp int) (*storage.Table, *storage.Table) {
	oKey := storage.NewColumn("o_orderkey", storage.Int64)
	oCust := storage.NewColumn("o_custkey", storage.Int64)
	oStatus := storage.NewColumn("o_orderstatus", storage.Char)
	oTotal := storage.NewColumn("o_totalprice", storage.Decimal)
	oDate := storage.NewColumn("o_orderdate", storage.Date)
	oPrio := storage.NewColumn("o_orderpriority", storage.String)
	oClerk := storage.NewColumn("o_clerk", storage.String)
	oShip := storage.NewColumn("o_shippriority", storage.Int64)
	oCmt := storage.NewColumn("o_comment", storage.String)

	lOrd := storage.NewColumn("l_orderkey", storage.Int64)
	lPart := storage.NewColumn("l_partkey", storage.Int64)
	lSupp := storage.NewColumn("l_suppkey", storage.Int64)
	lNum := storage.NewColumn("l_linenumber", storage.Int64)
	lQty := storage.NewColumn("l_quantity", storage.Decimal)
	lPrice := storage.NewColumn("l_extendedprice", storage.Decimal)
	lDisc := storage.NewColumn("l_discount", storage.Decimal)
	lTax := storage.NewColumn("l_tax", storage.Decimal)
	lRet := storage.NewColumn("l_returnflag", storage.Char)
	lStat := storage.NewColumn("l_linestatus", storage.Char)
	lShip := storage.NewColumn("l_shipdate", storage.Date)
	lCommit := storage.NewColumn("l_commitdate", storage.Date)
	lRcpt := storage.NewColumn("l_receiptdate", storage.Date)
	lInstr := storage.NewColumn("l_shipinstruct", storage.String)
	lMode := storage.NewColumn("l_shipmode", storage.String)
	lCmt := storage.NewColumn("l_comment", storage.String)

	estLines := nOrd * 4 // 1..7 lines per order, mean 4
	reserveFixed(nOrd, oKey, oCust, oStatus, oTotal, oDate, oShip)
	oPrio.Reserve(nOrd, nOrd*12)
	oClerk.Reserve(nOrd, nOrd*15)
	oCmt.Reserve(nOrd, nOrd*37)
	reserveFixed(estLines, lOrd, lPart, lSupp, lNum, lQty, lPrice, lDisc,
		lTax, lRet, lStat, lShip, lCommit, lRcpt)
	lInstr.Reserve(estLines, estLines*14)
	lMode.Reserve(estLines, estLines*5)
	lCmt.Reserve(estLines, estLines*23)

	// Orders are emitted chronologically — the natural load order of a
	// transactional history (dbgen's o_orderkey is a surrogate anyway).
	// The date columns of orders and the lineitems hanging off them
	// (l_shipdate = o_orderdate + 1..121, ...) thus cluster by block,
	// which is what gives their zone maps pruning power.
	dateRange := int(endDate - startDate)
	odates := make([]int64, nOrd)
	for i := range odates {
		odates[i] = startDate + int64(rng.Intn(dateRange-121))
	}
	sort.Slice(odates, func(i, j int) bool { return odates[i] < odates[j] })
	for o := 1; o <= nOrd; o++ {
		// As in dbgen, customers whose key is divisible by 3 place no
		// orders (Q13/Q22 depend on orderless customers existing).
		cust := 1 + rng.Intn(nCust)
		if cust%3 == 0 {
			cust++
			if cust > nCust {
				cust = 1
			}
		}
		odate := odates[o-1]
		nLines := 1 + rng.Intn(7)
		var total int64
		allF, allO := true, true
		for ln := 1; ln <= nLines; ln++ {
			p := 1 + rng.Intn(nPart)
			s := suppForPart(p, rng.Intn(suppPerPart), nSupp)
			qty := int64(1 + rng.Intn(50))
			// dbgen extendedprice = qty * p_retailprice.
			retail := int64(90000 + (p/10)%20001 + 100*(p%1000))
			eprice := qty * retail
			disc := int64(rng.Intn(11)) // 0.00 .. 0.10
			tax := int64(rng.Intn(9))   // 0.00 .. 0.08
			ship := odate + int64(1+rng.Intn(121))
			commit := odate + int64(30+rng.Intn(61))
			rcpt := ship + int64(1+rng.Intn(30))
			rf := byte('N')
			if rcpt <= cutoff {
				if rng.Intn(2) == 0 {
					rf = 'R'
				} else {
					rf = 'A'
				}
			}
			ls := byte('O')
			if ship <= cutoff {
				ls = 'F'
			}
			if ls == 'O' {
				allF = false
			} else {
				allO = false
			}

			lOrd.AppendInt64(int64(o))
			lPart.AppendInt64(int64(p))
			lSupp.AppendInt64(int64(s))
			lNum.AppendInt64(int64(ln))
			lQty.AppendInt64(qty * 100)
			lPrice.AppendInt64(eprice)
			lDisc.AppendInt64(disc)
			lTax.AppendInt64(tax)
			lRet.AppendChar(rf)
			lStat.AppendChar(ls)
			lShip.AppendInt64(ship)
			lCommit.AppendInt64(commit)
			lRcpt.AppendInt64(rcpt)
			lInstr.AppendString(shipInstructs[rng.Intn(4)])
			lMode.AppendString(shipModes[rng.Intn(7)])
			lCmt.AppendString(comment(rng, 3))
			total += eprice
		}
		status := byte('P')
		if allF {
			status = 'F'
		} else if allO {
			status = 'O'
		}
		oKey.AppendInt64(int64(o))
		oCust.AppendInt64(int64(cust))
		oStatus.AppendChar(status)
		oTotal.AppendInt64(total)
		oDate.AppendInt64(odate)
		oPrio.AppendString(priorities[rng.Intn(5)])
		oClerk.AppendString(fmt.Sprintf("Clerk#%09d", 1+rng.Intn(1000)))
		oShip.AppendInt64(0)
		// Q13's pattern: '%special%requests%'. A slice of comments
		// matches it through word adjacency.
		if rng.Intn(100) < 2 {
			oCmt.AppendString("the special pending requests haggle")
		} else {
			oCmt.AppendString(comment(rng, 5))
		}
	}
	orders := storage.NewTable("orders",
		oKey, oCust, oStatus, oTotal, oDate, oPrio, oClerk, oShip, oCmt)
	lineitem := storage.NewTable("lineitem",
		lOrd, lPart, lSupp, lNum, lQty, lPrice, lDisc, lTax, lRet, lStat,
		lShip, lCommit, lRcpt, lInstr, lMode, lCmt)
	return orders, lineitem
}
