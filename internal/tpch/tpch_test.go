package tpch

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"aqe/internal/exec"
	"aqe/internal/expr"
	"aqe/internal/plan"
	"aqe/internal/storage"
	"aqe/internal/volcano"
)

var testCat = Gen(0.01)

func TestGenSizes(t *testing.T) {
	cases := []struct {
		table string
		min   int
	}{
		{"region", 5}, {"nation", 25}, {"supplier", 90},
		{"part", 1900}, {"partsupp", 7600}, {"customer", 1400},
		{"orders", 14000}, {"lineitem", 40000},
	}
	for _, c := range cases {
		tbl := testCat.Table(c.table)
		if tbl == nil {
			t.Fatalf("missing table %s", c.table)
		}
		if err := tbl.Check(); err != nil {
			t.Fatal(err)
		}
		if tbl.Rows() < c.min {
			t.Errorf("%s has %d rows, want >= %d", c.table, tbl.Rows(), c.min)
		}
	}
}

func TestGenDeterministic(t *testing.T) {
	a := Gen(0.002)
	b := Gen(0.002)
	ca, cb := a.Table("lineitem"), b.Table("lineitem")
	if ca.Rows() != cb.Rows() {
		t.Fatal("row counts differ across generations")
	}
	for i := 0; i < ca.Rows(); i += 97 {
		if ca.MustCol("l_extendedprice").Int64At(i) != cb.MustCol("l_extendedprice").Int64At(i) {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestLineitemSupplierConsistency(t *testing.T) {
	// Every (l_partkey, l_suppkey) must exist in partsupp, or Q9/Q20's
	// joins silently drop rows.
	ps := testCat.Table("partsupp")
	valid := make(map[[2]int64]bool, ps.Rows())
	for i := 0; i < ps.Rows(); i++ {
		valid[[2]int64{ps.MustCol("ps_partkey").Int64At(i),
			ps.MustCol("ps_suppkey").Int64At(i)}] = true
	}
	l := testCat.Table("lineitem")
	for i := 0; i < l.Rows(); i += 11 {
		k := [2]int64{l.MustCol("l_partkey").Int64At(i), l.MustCol("l_suppkey").Int64At(i)}
		if !valid[k] {
			t.Fatalf("lineitem row %d references missing partsupp %v", i, k)
		}
	}
}

// runStagesVolcano executes a multi-stage query with the volcano oracle,
// materializing stage results exactly like the engine does.
func runStagesVolcano(t *testing.T, q plan.Query) ([][]expr.Datum, []plan.ColDef) {
	t.Helper()
	prior := make(map[string]*storage.Table)
	var rows [][]expr.Datum
	var schema []plan.ColDef
	for i, st := range q.Stages {
		node := st.Build(prior)
		var err error
		rows, err = volcano.Run(node)
		if err != nil {
			t.Fatalf("%s stage %s: %v", q.Name, st.Name, err)
		}
		schema = node.Schema()
		if i < len(q.Stages)-1 {
			res := &exec.Result{Rows: rows}
			for _, c := range schema {
				res.Cols = append(res.Cols, c.Name)
				res.Types = append(res.Types, c.T)
			}
			prior[st.Name] = res.ToTable(st.Name)
		}
	}
	return rows, schema
}

func canon(rows [][]expr.Datum, types []expr.Type) []string {
	out := make([]string, len(rows))
	for i, row := range rows {
		var sb strings.Builder
		for j, d := range row {
			switch types[j].Kind {
			case expr.KFloat:
				fmt.Fprintf(&sb, "|%.5g", d.F)
			case expr.KString:
				fmt.Fprintf(&sb, "|%s", d.S)
			default:
				fmt.Fprintf(&sb, "|%d", d.I)
			}
		}
		out[i] = sb.String()
	}
	sort.Strings(out)
	return out
}

// queriesExpectedNonEmpty lists queries that must return rows at SF 0.01
// with our generator. (Q2's triple filter can legitimately come up empty
// at tiny scale.)
var queriesExpectedNonEmpty = map[int]bool{
	1: true, 3: true, 4: true, 5: true, 6: true, 7: true, 9: true,
	10: true, 11: true, 12: true, 13: true, 14: true, 15: true,
	16: true, 22: true,
}

func TestAll22QueriesAgainstOracle(t *testing.T) {
	engines := map[string]*exec.Engine{
		"bytecode-w1": exec.New(exec.Options{Workers: 1, Mode: exec.ModeBytecode}),
		"bytecode-w3": exec.New(exec.Options{Workers: 3, Mode: exec.ModeBytecode}),
		"opt-w2": exec.New(exec.Options{Workers: 2, Mode: exec.ModeOptimized,
			Cost: exec.Native()}),
		"adaptive-w2": exec.New(exec.Options{Workers: 2, Mode: exec.ModeAdaptive,
			Cost: exec.Native(), MorselSize: 512}),
	}
	for qn := 1; qn <= 22; qn++ {
		q := Query(testCat, qn)
		wantRows, schema := runStagesVolcano(t, q)
		types := make([]expr.Type, len(schema))
		for i, c := range schema {
			types[i] = c.T
		}
		want := canon(wantRows, types)
		if queriesExpectedNonEmpty[qn] && len(want) == 0 {
			t.Errorf("Q%d: oracle returned no rows at SF 0.01", qn)
		}
		for ename, e := range engines {
			res, err := e.Run(Query(testCat, qn))
			if err != nil {
				t.Errorf("Q%d [%s]: %v", qn, ename, err)
				continue
			}
			got := canon(res.Rows, res.Types)
			if len(got) != len(want) {
				t.Errorf("Q%d [%s]: %d rows, want %d", qn, ename, len(got), len(want))
				continue
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("Q%d [%s]: row %d differs\n got %s\nwant %s",
						qn, ename, i, got[i], want[i])
					break
				}
			}
		}
	}
}

func TestQ1Positional(t *testing.T) {
	// Q1's sort keys (returnflag, linestatus) are unique per group, so the
	// full result must agree positionally with the oracle.
	e := exec.New(exec.Options{Workers: 2, Mode: exec.ModeBytecode})
	q := Query(testCat, 1)
	want, schema := runStagesVolcano(t, q)
	res, err := e.Run(Query(testCat, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("%d rows, want %d", len(res.Rows), len(want))
	}
	for i := range want {
		for j := range schema {
			switch schema[j].T.Kind {
			case expr.KFloat:
				if diff := res.Rows[i][j].F - want[i][j].F; diff > 1e-6 || diff < -1e-6 {
					t.Errorf("row %d col %s: %v vs %v", i, schema[j].Name,
						res.Rows[i][j].F, want[i][j].F)
				}
			case expr.KString:
				if res.Rows[i][j].S != want[i][j].S {
					t.Errorf("row %d col %s differs", i, schema[j].Name)
				}
			default:
				if res.Rows[i][j].I != want[i][j].I {
					t.Errorf("row %d col %s: %d vs %d", i, schema[j].Name,
						res.Rows[i][j].I, want[i][j].I)
				}
			}
		}
	}
	// Sanity: Q1 at SF 0.01 has the classic 4 groups.
	if len(res.Rows) != 4 {
		t.Errorf("Q1 groups = %d, want 4", len(res.Rows))
	}
}
