package ir

import "math"

// Builder provides a convenient API for emitting instructions into a
// function, block by block. It performs light type checking; the Verify
// pass performs the full structural check.
type Builder struct {
	F *Function
	B *Block
}

// NewBuilder returns a builder positioned at a fresh entry block of f.
func NewBuilder(f *Function) *Builder {
	b := &Builder{F: f}
	if len(f.Blocks) == 0 {
		b.B = f.NewBlock()
	} else {
		b.B = f.Blocks[0]
	}
	return b
}

// SetBlock repositions the builder at blk.
func (b *Builder) SetBlock(blk *Block) { b.B = blk }

// NewBlock creates a new block without repositioning.
func (b *Builder) NewBlock() *Block { return b.F.NewBlock() }

func (b *Builder) emit(v *Value) *Value {
	if b.B.Term != nil {
		panic("ir: emit into terminated block")
	}
	v.Block = b.B
	b.B.Instrs = append(b.B.Instrs, v)
	return v
}

func (b *Builder) emitTerm(v *Value) *Value {
	if b.B.Term != nil {
		panic("ir: block already terminated")
	}
	v.Block = b.B
	b.B.Term = v
	return v
}

// Terminated reports whether the current block already has a terminator.
func (b *Builder) Terminated() bool { return b.B.Term != nil }

// ConstI64 returns the i64 constant v.
func (b *Builder) ConstI64(v int64) *Value { return b.F.Const(I64, uint64(v)) }

// ConstI1 returns the i1 constant.
func (b *Builder) ConstI1(v bool) *Value {
	if v {
		return b.F.Const(I1, 1)
	}
	return b.F.Const(I1, 0)
}

// ConstF64 returns the f64 constant v.
func (b *Builder) ConstF64(v float64) *Value { return b.F.Const(F64, math.Float64bits(v)) }

func (b *Builder) binop(op Op, t Type, x, y *Value) *Value {
	return b.emit(b.F.newInstr(op, t, x, y))
}

// Integer arithmetic. All integer arithmetic in generated query code is
// i64; narrower values are widened at load time.

func (b *Builder) Add(x, y *Value) *Value  { return b.binop(OpAdd, x.Type, x, y) }
func (b *Builder) Sub(x, y *Value) *Value  { return b.binop(OpSub, x.Type, x, y) }
func (b *Builder) Mul(x, y *Value) *Value  { return b.binop(OpMul, x.Type, x, y) }
func (b *Builder) SDiv(x, y *Value) *Value { return b.binop(OpSDiv, x.Type, x, y) }
func (b *Builder) SRem(x, y *Value) *Value { return b.binop(OpSRem, x.Type, x, y) }
func (b *Builder) UDiv(x, y *Value) *Value { return b.binop(OpUDiv, x.Type, x, y) }
func (b *Builder) URem(x, y *Value) *Value { return b.binop(OpURem, x.Type, x, y) }

// Float arithmetic.

func (b *Builder) FAdd(x, y *Value) *Value { return b.binop(OpFAdd, F64, x, y) }
func (b *Builder) FSub(x, y *Value) *Value { return b.binop(OpFSub, F64, x, y) }
func (b *Builder) FMul(x, y *Value) *Value { return b.binop(OpFMul, F64, x, y) }
func (b *Builder) FDiv(x, y *Value) *Value { return b.binop(OpFDiv, F64, x, y) }

// Bitwise.

func (b *Builder) And(x, y *Value) *Value  { return b.binop(OpAnd, x.Type, x, y) }
func (b *Builder) Or(x, y *Value) *Value   { return b.binop(OpOr, x.Type, x, y) }
func (b *Builder) Xor(x, y *Value) *Value  { return b.binop(OpXor, x.Type, x, y) }
func (b *Builder) Shl(x, y *Value) *Value  { return b.binop(OpShl, x.Type, x, y) }
func (b *Builder) LShr(x, y *Value) *Value { return b.binop(OpLShr, x.Type, x, y) }
func (b *Builder) AShr(x, y *Value) *Value { return b.binop(OpAShr, x.Type, x, y) }

// ICmp emits an integer comparison yielding i1.
func (b *Builder) ICmp(p Pred, x, y *Value) *Value {
	v := b.F.newInstr(OpICmp, I1, x, y)
	v.Pred = p
	return b.emit(v)
}

// FCmp emits a float comparison yielding i1.
func (b *Builder) FCmp(p Pred, x, y *Value) *Value {
	v := b.F.newInstr(OpFCmp, I1, x, y)
	v.Pred = p
	return b.emit(v)
}

// Overflow-checked arithmetic: returns the {i64,i1} pair value.

func (b *Builder) SAddOvf(x, y *Value) *Value { return b.binop(OpSAddOvf, Pair, x, y) }
func (b *Builder) SSubOvf(x, y *Value) *Value { return b.binop(OpSSubOvf, Pair, x, y) }
func (b *Builder) SMulOvf(x, y *Value) *Value { return b.binop(OpSMulOvf, Pair, x, y) }

// ExtractValue extracts field idx (0 = i64 result, 1 = i1 overflow flag).
func (b *Builder) ExtractValue(pair *Value, idx int) *Value {
	t := I64
	if idx == 1 {
		t = I1
	}
	v := b.F.newInstr(OpExtractValue, t, pair)
	v.Lit = uint64(idx)
	return b.emit(v)
}

// Conversions.

func (b *Builder) SExt(x *Value, to Type) *Value { return b.emit(b.F.newInstr(OpSExt, to, x)) }
func (b *Builder) ZExt(x *Value, to Type) *Value { return b.emit(b.F.newInstr(OpZExt, to, x)) }
func (b *Builder) Trunc(x *Value, to Type) *Value {
	return b.emit(b.F.newInstr(OpTrunc, to, x))
}
func (b *Builder) SIToFP(x *Value) *Value { return b.emit(b.F.newInstr(OpSIToFP, F64, x)) }
func (b *Builder) FPToSI(x *Value) *Value { return b.emit(b.F.newInstr(OpFPToSI, I64, x)) }

// Load emits a typed load from addr. Sub-word integer loads zero- or
// sign-extend according to the requested type at execution time; query
// codegen always widens into i64 registers immediately, so Load yields a
// value of type t and the interpreter/compiler treat the register as the
// widened value.
func (b *Builder) Load(t Type, addr *Value) *Value {
	return b.emit(b.F.newInstr(OpLoad, t, addr))
}

// Store emits a store of val (width given by val.Type) to addr.
func (b *Builder) Store(addr, val *Value) *Value {
	return b.emit(b.F.newInstr(OpStore, Void, addr, val))
}

// GEP computes base + idx*scale + disp. Pass idx == nil for a constant
// offset (compiles to base + disp).
func (b *Builder) GEP(base, idx *Value, scale, disp int64) *Value {
	if idx == nil {
		idx = b.ConstI64(0)
		scale = 0
	}
	v := b.F.newInstr(OpGEP, I64, base, idx)
	v.Lit = uint64(scale)
	v.Lit2 = uint64(disp)
	return b.emit(v)
}

// Phi emits an empty φ-node of type t; fill it with AddIncoming. φ-nodes
// must precede all non-φ instructions of their block; the builder enforces
// this.
func (b *Builder) Phi(t Type) *Value {
	for _, in := range b.B.Instrs {
		if in.Op != OpPhi {
			panic("ir: phi after non-phi instruction")
		}
	}
	return b.emit(b.F.newInstr(OpPhi, t))
}

// AddIncoming appends an incoming (value, predecessor) pair to a φ-node.
func AddIncoming(phi *Value, v *Value, pred *Block) {
	if phi.Op != OpPhi {
		panic("ir: AddIncoming on non-phi")
	}
	phi.Args = append(phi.Args, v)
	phi.Incoming = append(phi.Incoming, pred)
}

// Select emits cond ? x : y.
func (b *Builder) Select(cond, x, y *Value) *Value {
	return b.emit(b.F.newInstr(OpSelect, x.Type, cond, x, y))
}

// Call emits a call to the named extern, declaring it if necessary.
func (b *Builder) Call(name string, ret Type, args ...*Value) *Value {
	argTypes := make([]Type, len(args))
	for i, a := range args {
		argTypes[i] = a.Type
	}
	idx := b.F.Module.DeclareExtern(name, ret, argTypes...)
	v := b.F.newInstr(OpCall, ret, args...)
	v.Callee = idx
	return b.emit(v)
}

// Br terminates the block with an unconditional branch.
func (b *Builder) Br(t *Block) *Value {
	v := b.F.newInstr(OpBr, Void)
	v.Targets = []*Block{t}
	return b.emitTerm(v)
}

// CondBr terminates the block with a conditional branch.
func (b *Builder) CondBr(cond *Value, then, els *Block) *Value {
	v := b.F.newInstr(OpCondBr, Void, cond)
	v.Targets = []*Block{then, els}
	return b.emitTerm(v)
}

// Ret terminates the block returning v.
func (b *Builder) Ret(v *Value) *Value {
	t := b.F.newInstr(OpRet, Void, v)
	return b.emitTerm(t)
}

// RetVoid terminates the block with a void return.
func (b *Builder) RetVoid() *Value {
	return b.emitTerm(b.F.newInstr(OpRetVoid, Void))
}
