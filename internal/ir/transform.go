package ir

// SplitCriticalEdges splits every critical edge (an edge from a block with
// multiple successors to a block with multiple predecessors) that targets a
// block containing φ-nodes, by inserting an empty forwarding block. Both
// the bytecode translator and the closure compiler lower φ-nodes to
// register moves at the end of the predecessor; on a critical edge such
// moves would also execute when the branch takes its other target, so the
// edge must be split first. Returns the number of edges split. Idempotent.
func (f *Function) SplitCriticalEdges() int {
	preds := f.Preds()
	split := 0
	// Snapshot the block list: we append while iterating.
	orig := make([]*Block, len(f.Blocks))
	copy(orig, f.Blocks)
	for _, b := range orig {
		if len(b.Phis()) == 0 || len(preds[b.ID]) < 2 {
			continue
		}
		for _, p := range preds[b.ID] {
			if len(p.Succs()) < 2 {
				continue
			}
			// Split edge p -> b.
			mid := f.NewBlock()
			term := f.newInstr(OpBr, Void)
			term.Targets = []*Block{b}
			term.Block = mid
			mid.Term = term
			// Replace one occurrence each, so a (degenerate) double edge
			// p -> b is split into two distinct forwarding blocks.
			for i, t := range p.Term.Targets {
				if t == b {
					p.Term.Targets[i] = mid
					break
				}
			}
			for _, phi := range b.Phis() {
				for i, in := range phi.Incoming {
					if in == p {
						phi.Incoming[i] = mid
						break
					}
				}
			}
			split++
		}
	}
	return split
}
