// Package ir implements a typed SSA intermediate representation modeled on
// LLVM IR. It is the language the query code generator targets, and the
// input of both the bytecode translator (internal/vm) and the closure
// compiler (internal/jit).
//
// The representation intentionally mirrors the subset of LLVM IR that a
// query compiler emits: integer and floating point arithmetic,
// overflow-checked arithmetic returning {value, flag} pairs, comparisons,
// loads and stores against a 64-bit address space, a simplified
// GetElementPtr, φ-nodes, conditional branches, and calls to registered
// runtime ("extern") functions.
package ir

import (
	"fmt"
	"sort"
)

// Type is the type of an SSA value.
type Type uint8

// Value types. Pair is the {i64, i1} aggregate produced by the
// overflow-checked arithmetic instructions, matching LLVM's
// llvm.sadd.with.overflow family.
const (
	Void Type = iota
	I1
	I8
	I16
	I32
	I64
	F64
	Pair
)

func (t Type) String() string {
	switch t {
	case Void:
		return "void"
	case I1:
		return "i1"
	case I8:
		return "i8"
	case I16:
		return "i16"
	case I32:
		return "i32"
	case I64:
		return "i64"
	case F64:
		return "f64"
	case Pair:
		return "{i64,i1}"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Width returns the in-memory width in bytes of a value of type t when
// accessed through a load or store.
func (t Type) Width() int {
	switch t {
	case I1, I8:
		return 1
	case I16:
		return 2
	case I32:
		return 4
	case I64, F64:
		return 8
	}
	return 0
}

// Pred is a comparison predicate shared by ICmp and FCmp.
type Pred uint8

// Comparison predicates. The S-prefixed predicates are signed, the
// U-prefixed unsigned; FCmp uses Eq/Ne/SLt/SLe/SGt/SGe with ordered float
// semantics.
const (
	Eq Pred = iota
	Ne
	SLt
	SLe
	SGt
	SGe
	ULt
	ULe
	UGt
	UGe
)

func (p Pred) String() string {
	switch p {
	case Eq:
		return "eq"
	case Ne:
		return "ne"
	case SLt:
		return "slt"
	case SLe:
		return "sle"
	case SGt:
		return "sgt"
	case SGe:
		return "sge"
	case ULt:
		return "ult"
	case ULe:
		return "ule"
	case UGt:
		return "ugt"
	case UGe:
		return "uge"
	}
	return fmt.Sprintf("pred(%d)", uint8(p))
}

// Op identifies the operation of a Value.
type Op uint8

// Instruction opcodes. OpConst and OpParam identify non-instruction values
// (they never appear inside a block).
const (
	OpInvalid Op = iota
	OpConst
	OpParam

	// Integer arithmetic (i64 unless noted).
	OpAdd
	OpSub
	OpMul
	OpSDiv
	OpSRem
	OpUDiv
	OpURem

	// Float arithmetic (f64).
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv

	// Bitwise.
	OpAnd
	OpOr
	OpXor
	OpShl
	OpLShr
	OpAShr

	// Comparisons; the predicate lives in Value.Pred.
	OpICmp
	OpFCmp

	// Overflow-checked signed arithmetic; produce a Pair {result, flag}.
	OpSAddOvf
	OpSSubOvf
	OpSMulOvf
	// OpExtractValue extracts field Lit (0 = value, 1 = flag) of a Pair.
	OpExtractValue

	// Conversions.
	OpSExt
	OpZExt
	OpTrunc
	OpSIToFP
	OpFPToSI

	// Memory. Addresses are i64 values in the segmented rt address space.
	OpLoad  // Args[0] = addr; result type = Value.Type
	OpStore // Args[0] = addr, Args[1] = value
	// OpGEP computes Args[0] + Args[1]*Lit + Lit2 (base + index*scale + disp).
	OpGEP

	OpPhi
	OpSelect // Args[0] = cond (i1), Args[1], Args[2]

	// OpCall invokes extern function Value.Callee with Args.
	OpCall

	// Terminators.
	OpBr     // Targets[0]
	OpCondBr // Args[0] = cond; Targets[0] = then, Targets[1] = else
	OpRet    // Args[0] = result
	OpRetVoid
)

var opNames = map[Op]string{
	OpConst: "const", OpParam: "param",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpSDiv: "sdiv", OpSRem: "srem",
	OpUDiv: "udiv", OpURem: "urem",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpLShr: "lshr", OpAShr: "ashr",
	OpICmp: "icmp", OpFCmp: "fcmp",
	OpSAddOvf: "sadd.ovf", OpSSubOvf: "ssub.ovf", OpSMulOvf: "smul.ovf",
	OpExtractValue: "extractvalue",
	OpSExt:         "sext", OpZExt: "zext", OpTrunc: "trunc",
	OpSIToFP: "sitofp", OpFPToSI: "fptosi",
	OpLoad: "load", OpStore: "store", OpGEP: "gep",
	OpPhi: "phi", OpSelect: "select", OpCall: "call",
	OpBr: "br", OpCondBr: "condbr", OpRet: "ret", OpRetVoid: "ret void",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsTerminator reports whether o ends a basic block.
func (o Op) IsTerminator() bool {
	switch o {
	case OpBr, OpCondBr, OpRet, OpRetVoid:
		return true
	}
	return false
}

// Value is an SSA value: a constant, a function parameter, or the result of
// an instruction. A single struct covers all three, as in many production
// IRs, to keep the representation compact and allocation-friendly.
type Value struct {
	ID   int
	Op   Op
	Type Type
	Pred Pred // ICmp/FCmp predicate

	// Args are the operand values. For OpPhi, Incoming[i] is the
	// predecessor block contributing Args[i].
	Args     []*Value
	Incoming []*Block

	// Targets are the successor blocks of a terminator.
	Targets []*Block

	// Const carries the constant bit pattern for OpConst (float64 values
	// are stored via math.Float64bits).
	Const uint64

	// Lit / Lit2 are the literal operands of OpGEP (scale, displacement)
	// and OpExtractValue (field index in Lit).
	Lit  uint64
	Lit2 uint64

	// Callee is the extern function index for OpCall.
	Callee int

	// Block is the block containing this instruction (nil for constants
	// and parameters).
	Block *Block
}

// IsInstr reports whether v is an instruction (lives in a block).
func (v *Value) IsInstr() bool { return v.Op != OpConst && v.Op != OpParam }

// IsConst reports whether v is a constant.
func (v *Value) IsConst() bool { return v.Op == OpConst }

// ConstI64 returns the constant as a signed integer. Panics if v is not a
// constant.
func (v *Value) ConstI64() int64 {
	if !v.IsConst() {
		panic("ir: ConstI64 on non-constant")
	}
	return int64(v.Const)
}

// Block is a basic block: a list of non-terminator instructions followed by
// exactly one terminator.
type Block struct {
	ID     int
	Instrs []*Value
	Term   *Value
	Fn     *Function
}

// Succs returns the successor blocks of b (the targets of its terminator).
func (b *Block) Succs() []*Block {
	if b.Term == nil {
		return nil
	}
	return b.Term.Targets
}

// Phis returns the φ-nodes at the head of the block.
func (b *Block) Phis() []*Value {
	n := 0
	for _, in := range b.Instrs {
		if in.Op != OpPhi {
			break
		}
		n++
	}
	return b.Instrs[:n]
}

// ExternSig declares the signature of a runtime function callable from
// generated code.
type ExternSig struct {
	Name string
	Ret  Type
	Args []Type
}

// Module is a compilation unit: a set of functions plus the extern
// declarations they may call.
type Module struct {
	Name      string
	Funcs     []*Function
	Externs   []ExternSig
	externIdx map[string]int
}

// NewModule creates an empty module.
func NewModule(name string) *Module {
	return &Module{Name: name, externIdx: make(map[string]int)}
}

// DeclareExtern registers (or finds) an extern function declaration and
// returns its index. Re-declaring with a different signature panics: the
// mismatch would corrupt the call ABI silently at runtime otherwise.
func (m *Module) DeclareExtern(name string, ret Type, args ...Type) int {
	if idx, ok := m.externIdx[name]; ok {
		sig := m.Externs[idx]
		if sig.Ret != ret || len(sig.Args) != len(args) {
			panic("ir: extern " + name + " redeclared with different signature")
		}
		for i := range args {
			if sig.Args[i] != args[i] {
				panic("ir: extern " + name + " redeclared with different signature")
			}
		}
		return idx
	}
	idx := len(m.Externs)
	m.Externs = append(m.Externs, ExternSig{Name: name, Ret: ret, Args: args})
	m.externIdx[name] = idx
	return idx
}

// ExternIndex returns the index of a declared extern, or -1.
func (m *Module) ExternIndex(name string) int {
	if idx, ok := m.externIdx[name]; ok {
		return idx
	}
	return -1
}

// Func returns the function with the given name, or nil.
func (m *Module) Func(name string) *Function {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// NumInstrs returns the total instruction count across all functions; this
// is the "number of LLVM instructions" axis of the paper's Fig. 6/15.
func (m *Module) NumInstrs() int {
	n := 0
	for _, f := range m.Funcs {
		n += f.NumInstrs()
	}
	return n
}

// Function is an SSA function.
type Function struct {
	Name   string
	Params []*Value
	Blocks []*Block
	Module *Module

	nextID int
	consts map[constKey]*Value
}

type constKey struct {
	typ  Type
	bits uint64
}

// NewFunc creates a function with the given parameter types and appends it
// to the module.
func (m *Module) NewFunc(name string, params ...Type) *Function {
	f := &Function{Name: name, Module: m, consts: make(map[constKey]*Value)}
	for _, pt := range params {
		p := &Value{ID: f.nextID, Op: OpParam, Type: pt}
		f.nextID++
		f.Params = append(f.Params, p)
	}
	m.Funcs = append(m.Funcs, f)
	return f
}

// NewBlock appends a new empty block to the function.
func (f *Function) NewBlock() *Block {
	b := &Block{ID: len(f.Blocks), Fn: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Entry returns the entry block.
func (f *Function) Entry() *Block { return f.Blocks[0] }

// NumValues returns an upper bound on value IDs in the function, usable to
// size ID-indexed side tables.
func (f *Function) NumValues() int { return f.nextID }

// NumInstrs returns the number of instructions (including terminators).
func (f *Function) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
		if b.Term != nil {
			n++
		}
	}
	return n
}

// Const returns the (deduplicated) constant with the given type and bits.
func (f *Function) Const(t Type, bits uint64) *Value {
	k := constKey{t, bits}
	if v, ok := f.consts[k]; ok {
		return v
	}
	v := &Value{ID: f.nextID, Op: OpConst, Type: t, Const: bits}
	f.nextID++
	f.consts[k] = v
	return v
}

// Constants returns all constants used by the function in a deterministic
// order (sorted by value ID). Machine-generated queries carry tens of
// thousands of distinct constants, so this must not be quadratic (§V-E).
func (f *Function) Constants() []*Value {
	out := make([]*Value, 0, len(f.consts))
	for _, v := range f.consts {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// newInstr allocates an instruction value owned by the function.
func (f *Function) newInstr(op Op, t Type, args ...*Value) *Value {
	v := &Value{ID: f.nextID, Op: op, Type: t, Args: args}
	f.nextID++
	return v
}

// Preds computes the predecessor lists of all blocks, indexed by block ID.
func (f *Function) Preds() [][]*Block {
	preds := make([][]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s.ID] = append(preds[s.ID], b)
		}
	}
	return preds
}

// renumberBlocks reassigns block IDs to match slice order; used by passes
// that remove or reorder blocks.
func (f *Function) renumberBlocks() {
	for i, b := range f.Blocks {
		b.ID = i
	}
}

// RemoveDeadBlocks drops blocks unreachable from the entry and fixes up
// φ-node incoming lists. Returns the number of blocks removed.
func (f *Function) RemoveDeadBlocks() int {
	reach := make([]bool, len(f.Blocks))
	stack := []*Block{f.Entry()}
	reach[f.Entry().ID] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs() {
			if !reach[s.ID] {
				reach[s.ID] = true
				stack = append(stack, s)
			}
		}
	}
	removed := 0
	kept := f.Blocks[:0]
	for _, b := range f.Blocks {
		if reach[b.ID] {
			kept = append(kept, b)
		} else {
			removed++
		}
	}
	if removed == 0 {
		return 0
	}
	// Drop φ incoming entries that reference removed blocks.
	for _, b := range kept {
		for _, phi := range b.Phis() {
			args := phi.Args[:0]
			inc := phi.Incoming[:0]
			for i, in := range phi.Incoming {
				if reach[in.ID] {
					args = append(args, phi.Args[i])
					inc = append(inc, in)
				}
			}
			phi.Args = args
			phi.Incoming = inc
		}
	}
	f.Blocks = kept
	f.renumberBlocks()
	return removed
}
