package passes

import (
	"testing"

	"aqe/internal/ir"
)

func TestConstFoldArithmetic(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f")
	b := ir.NewBuilder(f)
	v := b.Add(b.ConstI64(40), b.ConstI64(2))
	w := b.Mul(v, b.ConstI64(2))
	b.Ret(w)
	n := ConstFold(f)
	if n != 2 {
		// Folding is iterative through rounds; a single call folds the
		// first layer and exposes the second.
		n += ConstFold(f)
	}
	if n != 2 {
		t.Fatalf("folded %d, want 2", n)
	}
	ret := f.Blocks[0].Term
	if !ret.Args[0].IsConst() || ret.Args[0].ConstI64() != 84 {
		t.Errorf("result not folded to 84: %v", ret.Args[0])
	}
}

func TestConstFoldIdentities(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.I64)
	b := ir.NewBuilder(f)
	p := f.Params[0]
	v := b.Add(p, b.ConstI64(0)) // x+0 => x
	w := b.Mul(v, b.ConstI64(1)) // x*1 => x
	x := b.Sub(w, w)             // x-x => 0
	b.Ret(x)
	for ConstFold(f) > 0 {
	}
	ret := f.Blocks[0].Term
	if !ret.Args[0].IsConst() || ret.Args[0].ConstI64() != 0 {
		t.Errorf("identities not folded: returns %v", ret.Args[0])
	}
}

func TestConstFoldDoesNotFoldDivByZero(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f")
	b := ir.NewBuilder(f)
	v := b.SDiv(b.ConstI64(1), b.ConstI64(0))
	b.Ret(v)
	if n := ConstFold(f); n != 0 {
		t.Errorf("folded a trapping division (%d)", n)
	}
}

func TestLocalCSE(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	x1 := b.Add(f.Params[0], f.Params[1])
	x2 := b.Add(f.Params[0], f.Params[1])
	x3 := b.Add(f.Params[1], f.Params[0]) // not commutatively matched
	s := b.Add(b.Add(x1, x2), x3)
	b.Ret(s)
	if n := LocalCSE(f); n != 1 {
		t.Errorf("CSE eliminated %d, want 1", n)
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestCSEDoesNotMergeLoads(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.I64)
	b := ir.NewBuilder(f)
	l1 := b.Load(ir.I64, f.Params[0])
	b.Store(f.Params[0], b.ConstI64(7))
	l2 := b.Load(ir.I64, f.Params[0])
	b.Ret(b.Sub(l2, l1))
	if n := LocalCSE(f); n != 0 {
		t.Errorf("CSE merged loads across a store (%d)", n)
	}
}

func TestDCE(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.I64)
	b := ir.NewBuilder(f)
	dead1 := b.Add(f.Params[0], b.ConstI64(1))
	dead2 := b.Mul(dead1, dead1) // chain: removing dead2 kills dead1
	_ = dead2
	live := b.Add(f.Params[0], b.ConstI64(2))
	b.Call("sink", ir.Void, live) // calls are never removed
	b.Ret(live)
	if n := DCE(f); n != 2 {
		t.Errorf("DCE removed %d, want 2", n)
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSimplifyCFGConstBranch(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.I64)
	b := ir.NewBuilder(f)
	thenB := f.NewBlock()
	elseB := f.NewBlock()
	join := f.NewBlock()
	entry := b.B
	b.CondBr(b.ConstI1(true), thenB, elseB)
	_ = entry
	b.SetBlock(thenB)
	v1 := b.Add(f.Params[0], b.ConstI64(1))
	b.Br(join)
	b.SetBlock(elseB)
	v2 := b.Add(f.Params[0], b.ConstI64(2))
	b.Br(join)
	b.SetBlock(join)
	phi := b.Phi(ir.I64)
	ir.AddIncoming(phi, v1, thenB)
	ir.AddIncoming(phi, v2, elseB)
	b.Ret(phi)

	gone := SimplifyCFG(f)
	if gone == 0 {
		t.Fatal("no blocks removed")
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	// The else path must be gone and the φ collapsed to one incoming.
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == ir.OpPhi && len(in.Args) > 1 {
				t.Errorf("phi still has %d incoming", len(in.Args))
			}
		}
	}
}

func TestSimplifyCFGMergesChains(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.I64)
	b := ir.NewBuilder(f)
	b2 := f.NewBlock()
	b3 := f.NewBlock()
	v1 := b.Add(f.Params[0], b.ConstI64(1))
	b.Br(b2)
	b.SetBlock(b2)
	v2 := b.Add(v1, b.ConstI64(2))
	b.Br(b3)
	b.SetBlock(b3)
	b.Ret(v2)
	if gone := SimplifyCFG(f); gone != 2 {
		t.Fatalf("merged %d blocks, want 2", gone)
	}
	if len(f.Blocks) != 1 {
		t.Errorf("expected single block, have %d", len(f.Blocks))
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeFixedPoint(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.I64)
	b := ir.NewBuilder(f)
	thenB := f.NewBlock()
	elseB := f.NewBlock()
	join := f.NewBlock()
	cond := b.ICmp(ir.SLt, b.ConstI64(1), b.ConstI64(2)) // folds to true
	b.CondBr(cond, thenB, elseB)
	b.SetBlock(thenB)
	v1 := b.Add(f.Params[0], b.ConstI64(0)) // folds to param
	b.Br(join)
	b.SetBlock(elseB)
	v2 := b.Mul(f.Params[0], b.ConstI64(0))
	b.Br(join)
	b.SetBlock(join)
	phi := b.Phi(ir.I64)
	ir.AddIncoming(phi, v1, thenB)
	ir.AddIncoming(phi, v2, elseB)
	b.Ret(phi)

	s := Optimize(f)
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	if s.Folded == 0 || s.BlocksGone == 0 {
		t.Errorf("pipeline did nothing: %+v", s)
	}
	// The function should reduce to "ret param".
	if len(f.Blocks) != 1 {
		t.Errorf("expected 1 block, have %d", len(f.Blocks))
	}
	ret := f.Blocks[len(f.Blocks)-1].Term
	if ret.Op != ir.OpRet || ret.Args[0] != f.Params[0] {
		t.Errorf("expected ret param, got %s", f.String())
	}
}

func TestCloneIndependence(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.I64)
	b := ir.NewBuilder(f)
	v := b.Add(b.ConstI64(40), b.ConstI64(2))
	b.Ret(b.Add(v, f.Params[0]))
	before := f.String()
	g := f.Clone()
	Optimize(g)
	if f.String() != before {
		t.Error("optimizing the clone mutated the original")
	}
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
}
