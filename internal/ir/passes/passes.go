// Package passes implements the IR optimization pipeline run before
// optimized compilation: constant folding with algebraic simplification,
// local common-subexpression elimination, dead-code elimination, and
// control-flow simplification. These correspond to the "LLVM Opt. Passes"
// stage of the paper's Fig. 1 (HyPer's hand-picked pass list: peephole
// optimizations, reassociation, CSE, CFG simplification, aggressive DCE).
//
// Passes mutate the function destructively; under adaptive execution the
// engine runs them on an ir.Function.Clone, never on the function the
// interpreter is still executing.
package passes

import (
	"math"

	"aqe/internal/ir"
)

// Stats reports what the pipeline did; the compile-cost model and the
// ablation benchmarks consume these.
type Stats struct {
	Folded     int
	CSE        int
	DCE        int
	BlocksGone int
	Rounds     int
}

// Optimize runs the full O2 pipeline to a fixed point (bounded rounds).
func Optimize(f *ir.Function) Stats {
	var total Stats
	for round := 0; round < 4; round++ {
		var s Stats
		s.Folded = ConstFold(f)
		s.CSE = LocalCSE(f)
		s.DCE = DCE(f)
		s.BlocksGone = SimplifyCFG(f)
		total.Folded += s.Folded
		total.CSE += s.CSE
		total.DCE += s.DCE
		total.BlocksGone += s.BlocksGone
		total.Rounds++
		if s.Folded+s.CSE+s.DCE+s.BlocksGone == 0 {
			break
		}
	}
	return total
}

// replaceAll rewrites every operand according to repl, resolving chains
// (a -> b -> c) in one sweep.
func replaceAll(f *ir.Function, repl map[*ir.Value]*ir.Value) {
	if len(repl) == 0 {
		return
	}
	resolve := func(v *ir.Value) *ir.Value {
		for {
			n, ok := repl[v]
			if !ok {
				return v
			}
			v = n
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				in.Args[i] = resolve(a)
			}
		}
		for i, a := range b.Term.Args {
			b.Term.Args[i] = resolve(a)
		}
	}
}

// removeValues drops the given instructions from their blocks.
func removeValues(f *ir.Function, dead map[*ir.Value]bool) {
	if len(dead) == 0 {
		return
	}
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if !dead[in] {
				kept = append(kept, in)
			}
		}
		b.Instrs = kept
	}
}

// ConstFold evaluates instructions whose operands are all constants and
// applies basic algebraic identities (x+0, x*1, x*0, x-x, ...). Returns the
// number of instructions folded. Division by a constant zero is left in
// place so the runtime trap semantics are preserved.
func ConstFold(f *ir.Function) int {
	repl := make(map[*ir.Value]*ir.Value)
	dead := make(map[*ir.Value]bool)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if v, ok := foldInstr(f, in); ok {
				repl[in] = v
				dead[in] = true
			}
		}
	}
	replaceAll(f, repl)
	removeValues(f, dead)
	return len(dead)
}

func foldInstr(f *ir.Function, in *ir.Value) (*ir.Value, bool) {
	argsConst := true
	for _, a := range in.Args {
		if !a.IsConst() {
			argsConst = false
			break
		}
	}
	ci := func(v int64) (*ir.Value, bool) { return f.Const(in.Type, uint64(v)), true }
	cb := func(v bool) (*ir.Value, bool) {
		if v {
			return f.Const(ir.I1, 1), true
		}
		return f.Const(ir.I1, 0), true
	}
	cf := func(v float64) (*ir.Value, bool) { return f.Const(ir.F64, math.Float64bits(v)), true }

	if argsConst && len(in.Args) > 0 {
		switch in.Op {
		case ir.OpAdd:
			return ci(in.Args[0].ConstI64() + in.Args[1].ConstI64())
		case ir.OpSub:
			return ci(in.Args[0].ConstI64() - in.Args[1].ConstI64())
		case ir.OpMul:
			return ci(in.Args[0].ConstI64() * in.Args[1].ConstI64())
		case ir.OpSDiv:
			if d := in.Args[1].ConstI64(); d != 0 && !(d == -1 && in.Args[0].ConstI64() == math.MinInt64) {
				return ci(in.Args[0].ConstI64() / d)
			}
		case ir.OpSRem:
			if d := in.Args[1].ConstI64(); d != 0 && d != -1 {
				return ci(in.Args[0].ConstI64() % d)
			}
		case ir.OpAnd:
			return ci(in.Args[0].ConstI64() & in.Args[1].ConstI64())
		case ir.OpOr:
			return ci(in.Args[0].ConstI64() | in.Args[1].ConstI64())
		case ir.OpXor:
			return ci(in.Args[0].ConstI64() ^ in.Args[1].ConstI64())
		case ir.OpShl:
			return ci(in.Args[0].ConstI64() << (uint64(in.Args[1].ConstI64()) & 63))
		case ir.OpLShr:
			return ci(int64(uint64(in.Args[0].ConstI64()) >> (uint64(in.Args[1].ConstI64()) & 63)))
		case ir.OpAShr:
			return ci(in.Args[0].ConstI64() >> (uint64(in.Args[1].ConstI64()) & 63))
		case ir.OpICmp:
			x, y := in.Args[0].ConstI64(), in.Args[1].ConstI64()
			ux, uy := uint64(x), uint64(y)
			switch in.Pred {
			case ir.Eq:
				return cb(x == y)
			case ir.Ne:
				return cb(x != y)
			case ir.SLt:
				return cb(x < y)
			case ir.SLe:
				return cb(x <= y)
			case ir.SGt:
				return cb(x > y)
			case ir.SGe:
				return cb(x >= y)
			case ir.ULt:
				return cb(ux < uy)
			case ir.ULe:
				return cb(ux <= uy)
			case ir.UGt:
				return cb(ux > uy)
			case ir.UGe:
				return cb(ux >= uy)
			}
		case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
			x := math.Float64frombits(uint64(in.Args[0].ConstI64()))
			y := math.Float64frombits(uint64(in.Args[1].ConstI64()))
			switch in.Op {
			case ir.OpFAdd:
				return cf(x + y)
			case ir.OpFSub:
				return cf(x - y)
			case ir.OpFMul:
				return cf(x * y)
			case ir.OpFDiv:
				return cf(x / y)
			}
		case ir.OpSExt:
			v := in.Args[0].ConstI64()
			switch in.Args[0].Type {
			case ir.I1, ir.I8:
				return ci(int64(int8(v)))
			case ir.I16:
				return ci(int64(int16(v)))
			case ir.I32:
				return ci(int64(int32(v)))
			}
			return ci(v)
		case ir.OpZExt:
			return ci(in.Args[0].ConstI64())
		case ir.OpTrunc:
			switch in.Type {
			case ir.I1:
				return ci(in.Args[0].ConstI64() & 1)
			case ir.I8:
				return ci(in.Args[0].ConstI64() & 0xff)
			case ir.I16:
				return ci(in.Args[0].ConstI64() & 0xffff)
			case ir.I32:
				return ci(in.Args[0].ConstI64() & 0xffffffff)
			}
		case ir.OpSIToFP:
			return cf(float64(in.Args[0].ConstI64()))
		case ir.OpGEP:
			return ci(in.Args[0].ConstI64() + in.Args[1].ConstI64()*int64(in.Lit) + int64(in.Lit2))
		case ir.OpSelect:
			if in.Args[0].ConstI64() != 0 {
				return in.Args[1], true
			}
			return in.Args[2], true
		}
		return nil, false
	}

	// Algebraic identities on partially constant operands.
	isC := func(a *ir.Value, v int64) bool { return a.IsConst() && a.ConstI64() == v }
	switch in.Op {
	case ir.OpAdd:
		if isC(in.Args[1], 0) {
			return in.Args[0], true
		}
		if isC(in.Args[0], 0) {
			return in.Args[1], true
		}
	case ir.OpSub:
		if isC(in.Args[1], 0) {
			return in.Args[0], true
		}
		if in.Args[0] == in.Args[1] {
			return ci(0)
		}
	case ir.OpMul:
		if isC(in.Args[1], 1) {
			return in.Args[0], true
		}
		if isC(in.Args[0], 1) {
			return in.Args[1], true
		}
		if isC(in.Args[1], 0) || isC(in.Args[0], 0) {
			return ci(0)
		}
	case ir.OpAnd:
		if in.Args[0] == in.Args[1] {
			return in.Args[0], true
		}
		if isC(in.Args[1], 0) || isC(in.Args[0], 0) {
			return ci(0)
		}
	case ir.OpOr:
		if in.Args[0] == in.Args[1] {
			return in.Args[0], true
		}
		if isC(in.Args[1], 0) {
			return in.Args[0], true
		}
		if isC(in.Args[0], 0) {
			return in.Args[1], true
		}
	case ir.OpXor:
		if in.Args[0] == in.Args[1] {
			return ci(0)
		}
	case ir.OpSelect:
		if in.Args[1] == in.Args[2] {
			return in.Args[1], true
		}
	case ir.OpGEP:
		// gep base, idx*0+0 => base
		if in.Lit == 0 && in.Lit2 == 0 {
			return in.Args[0], true
		}
		if in.Args[1].IsConst() && in.Args[1].ConstI64() == 0 && in.Lit2 == 0 {
			return in.Args[0], true
		}
	case ir.OpPhi:
		// A φ whose incoming values are all identical (or itself).
		var uniq *ir.Value
		for _, a := range in.Args {
			if a == in {
				continue
			}
			if uniq == nil {
				uniq = a
			} else if uniq != a {
				return nil, false
			}
		}
		if uniq != nil {
			return uniq, true
		}
	}
	return nil, false
}

// cseKey identifies a pure instruction for value numbering.
type cseKey struct {
	op         ir.Op
	pred       ir.Pred
	typ        ir.Type
	a0, a1, a2 int
	lit, lit2  uint64
}

func pureOp(op ir.Op) bool {
	switch op {
	case ir.OpAdd, ir.OpSub, ir.OpMul,
		ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr, ir.OpAShr,
		ir.OpICmp, ir.OpFCmp,
		ir.OpSExt, ir.OpZExt, ir.OpTrunc, ir.OpSIToFP, ir.OpFPToSI,
		ir.OpGEP, ir.OpSelect, ir.OpExtractValue:
		return true
	}
	return false
}

// LocalCSE deduplicates pure instructions within each basic block. Loads
// and calls are not touched: they observe memory. Returns the number of
// instructions eliminated.
func LocalCSE(f *ir.Function) int {
	repl := make(map[*ir.Value]*ir.Value)
	dead := make(map[*ir.Value]bool)
	table := make(map[cseKey]*ir.Value)
	resolve := func(v *ir.Value) *ir.Value {
		for {
			n, ok := repl[v]
			if !ok {
				return v
			}
			v = n
		}
	}
	for _, b := range f.Blocks {
		clear(table)
		for _, in := range b.Instrs {
			if !pureOp(in.Op) {
				continue
			}
			k := cseKey{op: in.Op, pred: in.Pred, typ: in.Type, lit: in.Lit, lit2: in.Lit2}
			ids := [3]int{-1, -1, -1}
			for i, a := range in.Args {
				if i > 2 {
					break
				}
				ids[i] = resolve(a).ID
			}
			k.a0, k.a1, k.a2 = ids[0], ids[1], ids[2]
			if prev, ok := table[k]; ok {
				repl[in] = prev
				dead[in] = true
				continue
			}
			table[k] = in
		}
	}
	replaceAll(f, repl)
	removeValues(f, dead)
	return len(dead)
}

// DCE removes pure instructions (and pure loads) whose results are unused,
// iterating until a fixed point. Calls and stores are always kept.
func DCE(f *ir.Function) int {
	removed := 0
	for {
		uses := make(map[*ir.Value]int)
		count := func(v *ir.Value) {
			for _, a := range v.Args {
				uses[a]++
			}
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				count(in)
			}
			count(b.Term)
		}
		dead := make(map[*ir.Value]bool)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if uses[in] > 0 || in.Type == ir.Void {
					continue
				}
				if pureOp(in.Op) || in.Op == ir.OpLoad || in.Op == ir.OpPhi ||
					in.Op == ir.OpSAddOvf || in.Op == ir.OpSSubOvf || in.Op == ir.OpSMulOvf {
					dead[in] = true
				}
			}
		}
		if len(dead) == 0 {
			return removed
		}
		removeValues(f, dead)
		removed += len(dead)
	}
}

// SimplifyCFG folds constant conditional branches, merges straight-line
// block pairs, and drops unreachable blocks. Returns the number of blocks
// eliminated.
func SimplifyCFG(f *ir.Function) int {
	before := len(f.Blocks)

	// Constant condbr -> br.
	for _, b := range f.Blocks {
		t := b.Term
		if t.Op == ir.OpCondBr && t.Args[0].IsConst() && t.Targets[0] != t.Targets[1] {
			target := t.Targets[1]
			lost := t.Targets[0]
			if t.Args[0].ConstI64() != 0 {
				target, lost = t.Targets[0], t.Targets[1]
			}
			removePhiEdge(lost, b)
			t.Op = ir.OpBr
			t.Args = nil
			t.Targets = []*ir.Block{target}
		}
	}

	// Merge b -> c where c's only predecessor is b and b's only successor
	// is c.
	preds := f.Preds()
	for _, b := range f.Blocks {
		for {
			if b.Term == nil || b.Term.Op != ir.OpBr {
				break
			}
			c := b.Term.Targets[0]
			if c == b || len(preds[c.ID]) != 1 || len(c.Phis()) != 0 || c == f.Entry() {
				break
			}
			// Splice c into b.
			for _, in := range c.Instrs {
				in.Block = b
			}
			b.Instrs = append(b.Instrs, c.Instrs...)
			b.Term = c.Term
			b.Term.Block = b
			// Successor φ-nodes must now name b as the incoming block.
			for _, s := range b.Succs() {
				for _, phi := range s.Phis() {
					for i, in := range phi.Incoming {
						if in == c {
							phi.Incoming[i] = b
						}
					}
				}
			}
			c.Instrs = nil
			c.Term = nil
			// Recompute preds lazily: c is now unreachable; b's new
			// successors each had c as a pred, now b.
			preds = f.Preds()
		}
	}

	// Drop unreachable blocks (including the spliced-out shells).
	for _, b := range f.Blocks {
		if b.Term == nil && b != f.Entry() {
			// give the shell a terminator so RemoveDeadBlocks can walk it
			ret := &ir.Value{Op: ir.OpRetVoid, Type: ir.Void, Block: b}
			b.Term = ret
		}
	}
	f.RemoveDeadBlocks()
	return before - len(f.Blocks)
}

// removePhiEdge deletes the (value, pred) pairs flowing from pred into
// block's φ-nodes when the edge pred->block is deleted.
func removePhiEdge(block, pred *ir.Block) {
	for _, phi := range block.Phis() {
		args := phi.Args[:0]
		inc := phi.Incoming[:0]
		for i, in := range phi.Incoming {
			if in != pred {
				args = append(args, phi.Args[i])
				inc = append(inc, in)
			}
		}
		phi.Args = args
		phi.Incoming = inc
	}
}
