package ir

import "encoding/binary"

// AppendCanonical appends a canonical byte encoding of the module to buf
// and returns the extended slice. The encoding covers everything that
// determines the module's executable semantics — extern signatures,
// function signatures, constants, and every instruction with its operand,
// target and incoming-block references — in a deterministic order, so two
// modules produced by identical code generation runs encode identically
// and any structural difference (an opcode, a predicate, a constant bit
// pattern, an extern name) changes the bytes.
//
// It exists for plan-fingerprint caching: the execution engine hashes this
// encoding to recognize recompilations of the same query shape. Value and
// block IDs are included as references; they are deterministic because
// codegen allocates them in emission order.
func (m *Module) AppendCanonical(buf []byte) []byte {
	buf = appendU32(buf, uint32(len(m.Externs)))
	for _, ex := range m.Externs {
		buf = appendStr(buf, ex.Name)
		buf = append(buf, byte(ex.Ret), byte(len(ex.Args)))
		for _, a := range ex.Args {
			buf = append(buf, byte(a))
		}
	}
	buf = appendU32(buf, uint32(len(m.Funcs)))
	for _, f := range m.Funcs {
		buf = f.appendCanonical(buf)
	}
	return buf
}

func (f *Function) appendCanonical(buf []byte) []byte {
	buf = append(buf, byte(len(f.Params)))
	for _, p := range f.Params {
		buf = append(buf, byte(p.Type))
		buf = appendU32(buf, uint32(p.ID))
	}
	consts := f.Constants()
	buf = appendU32(buf, uint32(len(consts)))
	for _, c := range consts {
		buf = appendU32(buf, uint32(c.ID))
		buf = append(buf, byte(c.Type))
		buf = appendU64(buf, c.Const)
	}
	buf = appendU32(buf, uint32(len(f.Blocks)))
	for _, b := range f.Blocks {
		buf = appendU32(buf, uint32(len(b.Instrs)))
		for _, in := range b.Instrs {
			buf = appendInstr(buf, in)
		}
		if b.Term != nil {
			buf = append(buf, 1)
			buf = appendInstr(buf, b.Term)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

func appendInstr(buf []byte, v *Value) []byte {
	buf = append(buf, byte(v.Op), byte(v.Type), byte(v.Pred))
	buf = appendU32(buf, uint32(v.ID))
	buf = append(buf, byte(len(v.Args)))
	for _, a := range v.Args {
		buf = appendU32(buf, uint32(a.ID))
	}
	buf = append(buf, byte(len(v.Targets)))
	for _, t := range v.Targets {
		buf = appendU32(buf, uint32(t.ID))
	}
	buf = append(buf, byte(len(v.Incoming)))
	for _, b := range v.Incoming {
		buf = appendU32(buf, uint32(b.ID))
	}
	if v.Lit != 0 || v.Lit2 != 0 || v.Op == OpGEP || v.Op == OpExtractValue {
		buf = append(buf, 1)
		buf = appendU64(buf, v.Lit)
		buf = appendU64(buf, v.Lit2)
	} else {
		buf = append(buf, 0)
	}
	if v.Op == OpCall {
		buf = appendU32(buf, uint32(v.Callee))
	}
	return buf
}

func appendU32(buf []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(buf, v)
}

func appendU64(buf []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(buf, v)
}

func appendStr(buf []byte, s string) []byte {
	buf = appendU32(buf, uint32(len(s)))
	return append(buf, s...)
}
