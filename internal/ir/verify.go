package ir

import "fmt"

// Verify checks the structural invariants of the function: every block is
// terminated, φ-nodes lead their blocks and their incoming lists match the
// predecessors exactly, every instruction operand dominates its use (checked
// conservatively via dominance), and operand types are consistent. It
// returns the first violation found, or nil.
//
// Codegen bugs almost always surface here rather than as silent
// miscompilations in the VM, which makes the verifier the single most
// valuable debugging tool in the stack.
func (f *Function) Verify() error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("%s: function has no blocks", f.Name)
	}
	for _, b := range f.Blocks {
		if b.Term == nil {
			return fmt.Errorf("%s: b%d has no terminator", f.Name, b.ID)
		}
		if !b.Term.Op.IsTerminator() {
			return fmt.Errorf("%s: b%d terminator is %s", f.Name, b.ID, b.Term.Op)
		}
		seenNonPhi := false
		for _, in := range b.Instrs {
			if in.Op.IsTerminator() {
				return fmt.Errorf("%s: b%d contains terminator %s mid-block", f.Name, b.ID, in.Op)
			}
			if in.Op == OpPhi {
				if seenNonPhi {
					return fmt.Errorf("%s: b%d phi %%%d after non-phi", f.Name, b.ID, in.ID)
				}
			} else {
				seenNonPhi = true
			}
			if in.Block != b {
				return fmt.Errorf("%s: b%d instr %%%d has wrong block link", f.Name, b.ID, in.ID)
			}
		}
	}
	preds := f.Preds()
	for _, b := range f.Blocks {
		for _, phi := range b.Phis() {
			if len(phi.Args) != len(preds[b.ID]) {
				return fmt.Errorf("%s: b%d phi %%%d has %d incoming, block has %d preds",
					f.Name, b.ID, phi.ID, len(phi.Args), len(preds[b.ID]))
			}
			for i, in := range phi.Incoming {
				found := false
				for _, p := range preds[b.ID] {
					if p == in {
						found = true
						break
					}
				}
				if !found {
					return fmt.Errorf("%s: b%d phi %%%d incoming b%d is not a predecessor",
						f.Name, b.ID, phi.ID, in.ID)
				}
				if phi.Args[i].Type != phi.Type {
					return fmt.Errorf("%s: b%d phi %%%d incoming %d has type %s, want %s",
						f.Name, b.ID, phi.ID, i, phi.Args[i].Type, phi.Type)
				}
			}
		}
	}
	if err := f.verifyTypes(); err != nil {
		return err
	}
	return f.verifyDefsDominateUses(preds)
}

func (f *Function) verifyTypes() error {
	check := func(cond bool, v *Value, msg string) error {
		if !cond {
			return fmt.Errorf("%s: %%%d (%s): %s", f.Name, v.ID, v.Op, msg)
		}
		return nil
	}
	for _, b := range f.Blocks {
		instrs := append([]*Value{}, b.Instrs...)
		instrs = append(instrs, b.Term)
		for _, v := range instrs {
			var err error
			switch v.Op {
			case OpAdd, OpSub, OpMul, OpSDiv, OpSRem, OpUDiv, OpURem,
				OpAnd, OpOr, OpXor, OpShl, OpLShr, OpAShr:
				err = check(v.Args[0].Type == v.Args[1].Type && v.Args[0].Type == v.Type,
					v, "integer binop type mismatch")
			case OpFAdd, OpFSub, OpFMul, OpFDiv:
				err = check(v.Args[0].Type == F64 && v.Args[1].Type == F64, v, "float binop wants f64")
			case OpICmp:
				err = check(v.Args[0].Type == v.Args[1].Type && v.Type == I1, v, "icmp type mismatch")
			case OpFCmp:
				err = check(v.Args[0].Type == F64 && v.Args[1].Type == F64 && v.Type == I1,
					v, "fcmp wants f64")
			case OpSAddOvf, OpSSubOvf, OpSMulOvf:
				err = check(v.Args[0].Type == I64 && v.Args[1].Type == I64 && v.Type == Pair,
					v, "overflow arith wants i64 -> pair")
			case OpExtractValue:
				err = check(v.Args[0].Type == Pair && v.Lit <= 1, v, "extractvalue wants pair")
			case OpLoad:
				err = check(v.Args[0].Type == I64 && v.Type != Void, v, "load wants i64 addr")
			case OpStore:
				err = check(v.Args[0].Type == I64, v, "store wants i64 addr")
			case OpGEP:
				err = check(v.Args[0].Type == I64 && v.Args[1].Type == I64 && v.Type == I64,
					v, "gep wants i64 operands")
			case OpSelect:
				err = check(v.Args[0].Type == I1 && v.Args[1].Type == v.Args[2].Type &&
					v.Type == v.Args[1].Type, v, "select type mismatch")
			case OpCondBr:
				err = check(v.Args[0].Type == I1 && len(v.Targets) == 2, v, "condbr wants i1 + 2 targets")
			case OpBr:
				err = check(len(v.Targets) == 1, v, "br wants 1 target")
			case OpCall:
				sig := f.Module.Externs[v.Callee]
				if len(sig.Args) != len(v.Args) {
					err = check(false, v, fmt.Sprintf("call @%s arity %d, want %d",
						sig.Name, len(v.Args), len(sig.Args)))
					break
				}
				for i, a := range v.Args {
					if a.Type != sig.Args[i] {
						err = check(false, v, fmt.Sprintf("call @%s arg %d type %s, want %s",
							sig.Name, i, a.Type, sig.Args[i]))
						break
					}
				}
				if err == nil {
					err = check(v.Type == sig.Ret, v, "call result type mismatch")
				}
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// verifyDefsDominateUses walks blocks in reverse postorder keeping a set of
// defined values per dominating path. To stay linear we use the dominator
// tree: a use is valid iff the def's block dominates the use's block (or
// both are in the same block with def preceding use). We compute dominators
// with a simple iterative algorithm here — verification is a debug tool and
// not on the hot translation path.
func (f *Function) verifyDefsDominateUses(preds [][]*Block) error {
	idom := f.iterativeIdom(preds)
	// Pre/post-order numbering of the dominator tree gives O(1) ancestor
	// queries; walking idom chains per use would be quadratic on the long
	// block chains of machine-generated queries, and the verifier runs on
	// the bytecode translation path (§V-E).
	pre := make([]int, len(f.Blocks))
	post := make([]int, len(f.Blocks))
	children := make([][]*Block, len(f.Blocks))
	for _, b := range f.ReversePostorder() {
		if p := idom[b.ID]; p != nil {
			children[p.ID] = append(children[p.ID], b)
		}
	}
	clock := 0
	type frame struct {
		b *Block
		i int
	}
	stack := []frame{{f.Entry(), 0}}
	clock++
	pre[f.Entry().ID] = clock
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if fr.i < len(children[fr.b.ID]) {
			c := children[fr.b.ID][fr.i]
			fr.i++
			clock++
			pre[c.ID] = clock
			stack = append(stack, frame{c, 0})
			continue
		}
		clock++
		post[fr.b.ID] = clock
		stack = stack[:len(stack)-1]
	}
	dominates := func(a, b *Block) bool {
		if pre[b.ID] == 0 {
			return false // b unreachable
		}
		return pre[a.ID] <= pre[b.ID] && post[b.ID] <= post[a.ID]
	}
	posIn := make(map[*Value]int)
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			posIn[in] = i
		}
		posIn[b.Term] = len(b.Instrs)
	}
	for _, b := range f.Blocks {
		all := append([]*Value{}, b.Instrs...)
		all = append(all, b.Term)
		for _, v := range all {
			for ai, a := range v.Args {
				if !a.IsInstr() {
					continue // constants and params dominate everything
				}
				db := a.Block
				if db == nil {
					return fmt.Errorf("%s: %%%d uses unplaced value %%%d", f.Name, v.ID, a.ID)
				}
				if v.Op == OpPhi {
					// φ-args are "read" at the end of the incoming block.
					if !dominates(db, v.Incoming[ai]) {
						return fmt.Errorf("%s: phi %%%d arg %%%d does not dominate incoming b%d",
							f.Name, v.ID, a.ID, v.Incoming[ai].ID)
					}
					continue
				}
				if db == b {
					if posIn[a] >= posIn[v] {
						return fmt.Errorf("%s: %%%d used before def in b%d by %%%d", f.Name, a.ID, b.ID, v.ID)
					}
				} else if !dominates(db, b) {
					return fmt.Errorf("%s: def of %%%d (b%d) does not dominate use %%%d (b%d)",
						f.Name, a.ID, db.ID, v.ID, b.ID)
				}
			}
		}
	}
	return nil
}

// iterativeIdom computes immediate dominators with the Cooper-Harvey-Kennedy
// iterative algorithm over a reverse postorder.
func (f *Function) iterativeIdom(preds [][]*Block) []*Block {
	rpo := f.ReversePostorder()
	rpoNum := make([]int, len(f.Blocks))
	for i, b := range rpo {
		rpoNum[b.ID] = i
	}
	idom := make([]*Block, len(f.Blocks))
	entry := f.Entry()
	idom[entry.ID] = entry
	intersect := func(a, b *Block) *Block {
		for a != b {
			for rpoNum[a.ID] > rpoNum[b.ID] {
				a = idom[a.ID]
			}
			for rpoNum[b.ID] > rpoNum[a.ID] {
				b = idom[b.ID]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == entry {
				continue
			}
			var newIdom *Block
			for _, p := range preds[b.ID] {
				if idom[p.ID] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && idom[b.ID] != newIdom {
				idom[b.ID] = newIdom
				changed = true
			}
		}
	}
	idom[entry.ID] = nil
	return idom
}

// ReversePostorder returns the blocks reachable from entry in reverse
// postorder of a depth-first traversal: every block appears after all of
// its non-back-edge predecessors, which matches control-flow order (§IV-D).
func (f *Function) ReversePostorder() []*Block {
	seen := make([]bool, len(f.Blocks))
	post := make([]*Block, 0, len(f.Blocks))
	type frame struct {
		b *Block
		i int
	}
	stack := []frame{{f.Entry(), 0}}
	seen[f.Entry().ID] = true
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		succs := fr.b.Succs()
		if fr.i < len(succs) {
			s := succs[fr.i]
			fr.i++
			if !seen[s.ID] {
				seen[s.ID] = true
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		post = append(post, fr.b)
		stack = stack[:len(stack)-1]
	}
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}
