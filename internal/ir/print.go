package ir

import (
	"fmt"
	"math"
	"strings"
)

// String renders the module in an LLVM-flavoured textual form, used in
// tests and debugging.
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; module %s\n", m.Name)
	for i, e := range m.Externs {
		args := make([]string, len(e.Args))
		for j, a := range e.Args {
			args[j] = a.String()
		}
		fmt.Fprintf(&sb, "declare %s @%s(%s) ; extern %d\n", e.Ret, e.Name, strings.Join(args, ", "), i)
	}
	for _, f := range m.Funcs {
		sb.WriteString(f.String())
	}
	return sb.String()
}

// String renders the function.
func (f *Function) String() string {
	var sb strings.Builder
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = fmt.Sprintf("%s %%%d", p.Type, p.ID)
	}
	fmt.Fprintf(&sb, "define @%s(%s) {\n", f.Name, strings.Join(params, ", "))
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d:\n", b.ID)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", in.instrString())
		}
		if b.Term != nil {
			fmt.Fprintf(&sb, "  %s\n", b.Term.instrString())
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func (v *Value) ref() string {
	switch v.Op {
	case OpConst:
		if v.Type == F64 {
			return fmt.Sprintf("%g", math.Float64frombits(v.Const))
		}
		return fmt.Sprintf("%d", int64(v.Const))
	default:
		return fmt.Sprintf("%%%d", v.ID)
	}
}

func (v *Value) instrString() string {
	var sb strings.Builder
	if v.Type != Void {
		fmt.Fprintf(&sb, "%%%d = ", v.ID)
	}
	switch v.Op {
	case OpICmp, OpFCmp:
		fmt.Fprintf(&sb, "%s %s %s, %s", v.Op, v.Pred, v.Args[0].ref(), v.Args[1].ref())
	case OpGEP:
		fmt.Fprintf(&sb, "gep %s, %s*%d+%d", v.Args[0].ref(), v.Args[1].ref(), int64(v.Lit), int64(v.Lit2))
	case OpExtractValue:
		fmt.Fprintf(&sb, "extractvalue %s, %d", v.Args[0].ref(), v.Lit)
	case OpLoad:
		fmt.Fprintf(&sb, "load %s, %s", v.Type, v.Args[0].ref())
	case OpStore:
		fmt.Fprintf(&sb, "store %s %s, %s", v.Args[1].Type, v.Args[1].ref(), v.Args[0].ref())
	case OpPhi:
		fmt.Fprintf(&sb, "phi %s ", v.Type)
		for i, a := range v.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "[%s, b%d]", a.ref(), v.Incoming[i].ID)
		}
	case OpCall:
		name := fmt.Sprintf("extern%d", v.Callee)
		if v.Block != nil && v.Block.Fn != nil && v.Callee < len(v.Block.Fn.Module.Externs) {
			name = v.Block.Fn.Module.Externs[v.Callee].Name
		}
		args := make([]string, len(v.Args))
		for i, a := range v.Args {
			args[i] = a.ref()
		}
		fmt.Fprintf(&sb, "call %s @%s(%s)", v.Type, name, strings.Join(args, ", "))
	case OpBr:
		fmt.Fprintf(&sb, "br b%d", v.Targets[0].ID)
	case OpCondBr:
		fmt.Fprintf(&sb, "condbr %s, b%d, b%d", v.Args[0].ref(), v.Targets[0].ID, v.Targets[1].ID)
	case OpRet:
		fmt.Fprintf(&sb, "ret %s %s", v.Args[0].Type, v.Args[0].ref())
	case OpRetVoid:
		sb.WriteString("ret void")
	default:
		fmt.Fprintf(&sb, "%s", v.Op)
		for i, a := range v.Args {
			if i > 0 {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, " %s", a.ref())
		}
	}
	return sb.String()
}
