// Package interp directly interprets the in-memory SSA graph, standing in
// for LLVM's built-in IR interpreter (lli) as the slow baseline of the
// paper's Fig. 2. It shares the design properties the paper blames for
// that interpreter being ~800x slower than machine code: it walks the
// pointer-based in-memory representation (cache-unfriendly), performs a
// runtime dispatch on the generic opcode for every instruction, and
// resolves every operand through a pointer chase — there is no translation
// step at all, which also makes its "compile time" effectively zero.
//
// It exists for the evaluation; the query engine itself always uses the
// bytecode VM or the compiled tiers.
package interp

import (
	"fmt"
	"math"

	"aqe/internal/ir"
	"aqe/internal/rt"
	"aqe/internal/vm"
)

// Run interprets f with the given arguments.
func Run(f *ir.Function, ctx *rt.Ctx, args []uint64) uint64 {
	env := make([]uint64, f.NumValues())
	for i, p := range f.Params {
		env[p.ID] = args[i]
	}
	get := func(v *ir.Value) uint64 {
		if v.Op == ir.OpConst {
			return v.Const
		}
		return env[v.ID]
	}
	getf := func(v *ir.Value) float64 { return math.Float64frombits(get(v)) }

	cur := f.Entry()
	var prev *ir.Block
	var phiTmp []uint64
	for {
		// φ-nodes read their incoming values in parallel.
		phis := cur.Phis()
		if len(phis) > 0 {
			phiTmp = phiTmp[:0]
			for _, phi := range phis {
				for i, in := range phi.Incoming {
					if in == prev {
						phiTmp = append(phiTmp, get(phi.Args[i]))
						break
					}
				}
			}
			for i, phi := range phis {
				env[phi.ID] = phiTmp[i]
			}
		}
		for _, in := range cur.Instrs[len(phis):] {
			switch in.Op {
			case ir.OpAdd:
				env[in.ID] = get(in.Args[0]) + get(in.Args[1])
			case ir.OpSub:
				env[in.ID] = get(in.Args[0]) - get(in.Args[1])
			case ir.OpMul:
				env[in.ID] = get(in.Args[0]) * get(in.Args[1])
			case ir.OpSDiv:
				d := int64(get(in.Args[1]))
				if d == 0 {
					rt.Throw(rt.TrapDivZero)
				}
				n := int64(get(in.Args[0]))
				if n == math.MinInt64 && d == -1 {
					rt.Throw(rt.TrapOverflow)
				}
				env[in.ID] = uint64(n / d)
			case ir.OpSRem:
				d := int64(get(in.Args[1]))
				if d == 0 {
					rt.Throw(rt.TrapDivZero)
				}
				n := int64(get(in.Args[0]))
				if n == math.MinInt64 && d == -1 {
					env[in.ID] = 0
				} else {
					env[in.ID] = uint64(n % d)
				}
			case ir.OpUDiv:
				d := get(in.Args[1])
				if d == 0 {
					rt.Throw(rt.TrapDivZero)
				}
				env[in.ID] = get(in.Args[0]) / d
			case ir.OpURem:
				d := get(in.Args[1])
				if d == 0 {
					rt.Throw(rt.TrapDivZero)
				}
				env[in.ID] = get(in.Args[0]) % d
			case ir.OpFAdd:
				env[in.ID] = math.Float64bits(getf(in.Args[0]) + getf(in.Args[1]))
			case ir.OpFSub:
				env[in.ID] = math.Float64bits(getf(in.Args[0]) - getf(in.Args[1]))
			case ir.OpFMul:
				env[in.ID] = math.Float64bits(getf(in.Args[0]) * getf(in.Args[1]))
			case ir.OpFDiv:
				env[in.ID] = math.Float64bits(getf(in.Args[0]) / getf(in.Args[1]))
			case ir.OpAnd:
				env[in.ID] = get(in.Args[0]) & get(in.Args[1])
			case ir.OpOr:
				env[in.ID] = get(in.Args[0]) | get(in.Args[1])
			case ir.OpXor:
				env[in.ID] = get(in.Args[0]) ^ get(in.Args[1])
			case ir.OpShl:
				env[in.ID] = get(in.Args[0]) << (get(in.Args[1]) & 63)
			case ir.OpLShr:
				env[in.ID] = get(in.Args[0]) >> (get(in.Args[1]) & 63)
			case ir.OpAShr:
				env[in.ID] = uint64(int64(get(in.Args[0])) >> (get(in.Args[1]) & 63))
			case ir.OpICmp:
				x, y := get(in.Args[0]), get(in.Args[1])
				var r bool
				switch in.Pred {
				case ir.Eq:
					r = x == y
				case ir.Ne:
					r = x != y
				case ir.SLt:
					r = int64(x) < int64(y)
				case ir.SLe:
					r = int64(x) <= int64(y)
				case ir.SGt:
					r = int64(x) > int64(y)
				case ir.SGe:
					r = int64(x) >= int64(y)
				case ir.ULt:
					r = x < y
				case ir.ULe:
					r = x <= y
				case ir.UGt:
					r = x > y
				case ir.UGe:
					r = x >= y
				}
				env[in.ID] = b2u(r)
			case ir.OpFCmp:
				x, y := getf(in.Args[0]), getf(in.Args[1])
				var r bool
				switch in.Pred {
				case ir.Eq:
					r = x == y
				case ir.Ne:
					r = x != y
				case ir.SLt:
					r = x < y
				case ir.SLe:
					r = x <= y
				case ir.SGt:
					r = x > y
				case ir.SGe:
					r = x >= y
				}
				env[in.ID] = b2u(r)
			case ir.OpSAddOvf:
				r, _ := vm.AddOverflow(int64(get(in.Args[0])), int64(get(in.Args[1])))
				env[in.ID] = uint64(r)
			case ir.OpSSubOvf:
				r, _ := vm.SubOverflow(int64(get(in.Args[0])), int64(get(in.Args[1])))
				env[in.ID] = uint64(r)
			case ir.OpSMulOvf:
				r, _ := vm.MulOverflow(int64(get(in.Args[0])), int64(get(in.Args[1])))
				env[in.ID] = uint64(r)
			case ir.OpExtractValue:
				if in.Lit == 0 {
					env[in.ID] = env[in.Args[0].ID]
				} else {
					// Recompute the flag from the pair's operands — SSA
					// values never change, so they are still in env.
					env[in.ID] = pairFlag(env, in.Args[0])
				}
			case ir.OpSExt:
				v := get(in.Args[0])
				switch in.Args[0].Type {
				case ir.I1, ir.I8:
					env[in.ID] = uint64(int64(int8(v)))
				case ir.I16:
					env[in.ID] = uint64(int64(int16(v)))
				case ir.I32:
					env[in.ID] = uint64(int64(int32(v)))
				default:
					env[in.ID] = v
				}
			case ir.OpZExt:
				env[in.ID] = get(in.Args[0])
			case ir.OpTrunc:
				v := get(in.Args[0])
				switch in.Type {
				case ir.I1, ir.I8:
					env[in.ID] = v & 0xff
				case ir.I16:
					env[in.ID] = v & 0xffff
				case ir.I32:
					env[in.ID] = v & 0xffffffff
				default:
					env[in.ID] = v
				}
			case ir.OpSIToFP:
				env[in.ID] = math.Float64bits(float64(int64(get(in.Args[0]))))
			case ir.OpFPToSI:
				env[in.ID] = uint64(int64(getf(in.Args[0])))
			case ir.OpLoad:
				a := get(in.Args[0])
				switch in.Type.Width() {
				case 1:
					env[in.ID] = ctx.Mem.Load8(a)
				case 2:
					env[in.ID] = ctx.Mem.Load16(a)
				case 4:
					env[in.ID] = ctx.Mem.Load32(a)
				default:
					env[in.ID] = ctx.Mem.Load64(a)
				}
			case ir.OpStore:
				a := get(in.Args[0])
				v := get(in.Args[1])
				switch in.Args[1].Type.Width() {
				case 1:
					ctx.Mem.Store8(a, v)
				case 2:
					ctx.Mem.Store16(a, v)
				case 4:
					ctx.Mem.Store32(a, v)
				default:
					ctx.Mem.Store64(a, v)
				}
			case ir.OpGEP:
				env[in.ID] = get(in.Args[0]) + get(in.Args[1])*in.Lit + uint64(int64(in.Lit2))
			case ir.OpSelect:
				if get(in.Args[0]) != 0 {
					env[in.ID] = get(in.Args[1])
				} else {
					env[in.ID] = get(in.Args[2])
				}
			case ir.OpCall:
				for i, a := range in.Args {
					ctx.Args[i] = get(a)
				}
				r := ctx.Funcs[in.Callee](ctx, ctx.Args[:len(in.Args)])
				if in.Type != ir.Void {
					env[in.ID] = r
				}
			default:
				panic(fmt.Sprintf("interp: cannot execute %s", in.Op))
			}
		}
		t := cur.Term
		switch t.Op {
		case ir.OpBr:
			prev, cur = cur, t.Targets[0]
		case ir.OpCondBr:
			if get(t.Args[0]) != 0 {
				prev, cur = cur, t.Targets[0]
			} else {
				prev, cur = cur, t.Targets[1]
			}
		case ir.OpRet:
			return get(t.Args[0])
		case ir.OpRetVoid:
			return 0
		}
	}
}

// pairFlag returns the overflow flag of a pair value by recomputing it
// from the pair's operands (one word per value keeps env simple).
func pairFlag(env []uint64, pair *ir.Value) uint64 {
	// Recompute the overflow flag from the pair's operands; the operands'
	// values are still available in env because SSA values never change.
	x := int64(valOf(env, pair.Args[0]))
	y := int64(valOf(env, pair.Args[1]))
	var o bool
	switch pair.Op {
	case ir.OpSAddOvf:
		_, o = vm.AddOverflow(x, y)
	case ir.OpSSubOvf:
		_, o = vm.SubOverflow(x, y)
	default:
		_, o = vm.MulOverflow(x, y)
	}
	return b2u(o)
}

func valOf(env []uint64, v *ir.Value) uint64 {
	if v.Op == ir.OpConst {
		return v.Const
	}
	return env[v.ID]
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
