package analysis

import (
	"testing"

	"aqe/internal/ir"
)

// buildFig10 reproduces the paper's Fig. 10 CFG:
//
//	1 -> 2 -> 3 -> 4 -> 5 -> 6 -> 7, with back edge 6 -> 3
//
// (reverse-postorder labels; block indices here are creation order). The
// value v is defined in block 2 and used in block 5; the paper derives the
// live range [2,6].
func buildFig10(t *testing.T) (*ir.Function, *ir.Value, []*ir.Block) {
	t.Helper()
	m := ir.NewModule("fig10")
	f := m.NewFunc("f", ir.I64)
	blocks := make([]*ir.Block, 8) // 1-indexed to match the figure
	b := ir.NewBuilder(f)
	blocks[1] = b.B
	for i := 2; i <= 7; i++ {
		blocks[i] = f.NewBlock()
	}
	one := b.ConstI64(1)

	b.SetBlock(blocks[1])
	b.Br(blocks[2])

	b.SetBlock(blocks[2])
	v := b.Add(f.Params[0], one) // v = f(...)
	b.Br(blocks[3])

	b.SetBlock(blocks[3]) // loop head
	c3 := b.ICmp(ir.SGt, f.Params[0], one)
	b.CondBr(c3, blocks[4], blocks[5])

	b.SetBlock(blocks[4])
	b.Br(blocks[6])

	b.SetBlock(blocks[5])
	z := b.Add(v, one) // z = v
	_ = z
	b.Br(blocks[6])

	b.SetBlock(blocks[6])
	c6 := b.ICmp(ir.Eq, f.Params[0], one)
	b.CondBr(c6, blocks[3], blocks[7]) // back edge 6 -> 3

	b.SetBlock(blocks[7])
	b.RetVoid()

	if err := f.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return f, v, blocks
}

func rpoOf(cfg *CFG, b *ir.Block) int { return cfg.RPONum[b.ID] }

func TestDomTreeFig10(t *testing.T) {
	f, _, blocks := buildFig10(t)
	cfg := NewCFG(f)
	dom := NewDomTree(cfg)
	// Block 2 dominates everything below it; 4 and 5 do not dominate 6.
	if !dom.Dominates(blocks[2], blocks[6]) {
		t.Error("2 should dominate 6")
	}
	if !dom.Dominates(blocks[3], blocks[7]) {
		t.Error("3 should dominate 7")
	}
	if dom.Dominates(blocks[4], blocks[6]) {
		t.Error("4 must not dominate 6")
	}
	if dom.Dominates(blocks[5], blocks[6]) {
		t.Error("5 must not dominate 6")
	}
	if !dom.Dominates(blocks[3], blocks[3]) {
		t.Error("dominance must be reflexive")
	}
	if idom := dom.Idom[blocks[6].ID]; idom != blocks[3] {
		t.Errorf("idom(6) = b%d, want b%d (block 3)", idom.ID, blocks[3].ID)
	}
}

func TestLoopDetectionFig10(t *testing.T) {
	f, _, blocks := buildFig10(t)
	cfg := NewCFG(f)
	dom := NewDomTree(cfg)
	li := FindLoops(cfg, dom)

	// Two loops: the whole-function pseudo-loop plus the loop headed at
	// block 3 spanning [3,6] in figure labels.
	if len(li.Loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(li.Loops))
	}
	var loop *Loop
	for _, l := range li.Loops {
		if l != li.Root && l.Head == blocks[3] {
			loop = l
		}
	}
	if loop == nil {
		t.Fatal("block 3 not detected as loop head")
	}
	if loop.Depth != 1 || loop.Parent != li.Root {
		t.Errorf("loop nesting wrong: depth=%d", loop.Depth)
	}
	if loop.First != rpoOf(cfg, blocks[3]) || loop.Last != rpoOf(cfg, blocks[6]) {
		t.Errorf("loop extent [%d,%d], want [%d,%d]",
			loop.First, loop.Last, rpoOf(cfg, blocks[3]), rpoOf(cfg, blocks[6]))
	}
	// Innermost loop: blocks 3..6 belong to the inner loop, 1,2,7 to root.
	for i := 3; i <= 6; i++ {
		if li.Innermost[rpoOf(cfg, blocks[i])] != loop {
			t.Errorf("block %d not associated with inner loop", i)
		}
	}
	for _, i := range []int{1, 2, 7} {
		if li.Innermost[rpoOf(cfg, blocks[i])] != li.Root {
			t.Errorf("block %d should associate with the pseudo-loop", i)
		}
	}
}

func TestLivenessFig10(t *testing.T) {
	f, v, blocks := buildFig10(t)
	lv := ComputeLiveness(f)
	cfg := lv.CFG
	// The paper: v defined in 2, used in 5 inside loop [3,6] => range [2,6].
	r := lv.Range(v)
	want := Interval{Start: rpoOf(cfg, blocks[2]), End: rpoOf(cfg, blocks[6])}
	if r != want {
		t.Errorf("range(v) = %+v, want %+v", r, want)
	}
}

func TestLivenessSingleBlockValue(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.I64)
	b := ir.NewBuilder(f)
	v := b.Add(f.Params[0], b.ConstI64(1))
	w := b.Mul(v, v)
	b.Ret(w)
	lv := ComputeLiveness(f)
	if r := lv.Range(v); r.Start != 0 || r.End != 0 {
		t.Errorf("range(v) = %+v, want [0,0]", r)
	}
}

func TestLivenessLoopCarriedPhi(t *testing.T) {
	// i = phi(0, i+1) in a loop: i's range must span the whole loop
	// including the latch where its next value is computed.
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.I64)
	b := ir.NewBuilder(f)
	entry := b.B
	head := f.NewBlock()
	body := f.NewBlock()
	exit := f.NewBlock()
	zero := b.ConstI64(0)
	one := b.ConstI64(1)
	b.Br(head)
	b.SetBlock(head)
	i := b.Phi(ir.I64)
	cond := b.ICmp(ir.SLt, i, f.Params[0])
	b.CondBr(cond, body, exit)
	b.SetBlock(body)
	i2 := b.Add(i, one)
	b.Br(head)
	ir.AddIncoming(i, zero, entry)
	ir.AddIncoming(i, i2, body)
	b.SetBlock(exit)
	b.Ret(i)
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}

	lv := ComputeLiveness(f)
	ri := lv.Range(i)
	// i is live from entry (written at the end of the entry block) through
	// the loop and is returned in exit.
	if ri.Start > lv.Pos(entry) || ri.End < lv.Pos(exit) {
		t.Errorf("phi range %+v does not cover entry..exit", ri)
	}
	// i2 is defined in body and consumed by the φ-move at the end of body:
	// it is live exactly in the body block (§IV-D φ handling).
	ri2 := lv.Range(i2)
	want := Interval{Start: lv.Pos(body), End: lv.Pos(body)}
	if ri2 != want {
		t.Errorf("latch value range %+v, want %+v", ri2, want)
	}
}

// TestLivenessEscapingLoopDef checks the case that forces retroactive
// lifting: a value defined inside a loop but used after it must be live for
// the entire loop, or an earlier in-loop value could share its register and
// clobber it on the next iteration.
func TestLivenessEscapingLoopDef(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.I64)
	b := ir.NewBuilder(f)
	entry := b.B
	head := f.NewBlock()
	body := f.NewBlock()
	exit := f.NewBlock()
	zero := b.ConstI64(0)
	one := b.ConstI64(1)
	b.Br(head)
	b.SetBlock(head)
	i := b.Phi(ir.I64)
	cond := b.ICmp(ir.SLt, i, f.Params[0])
	b.CondBr(cond, body, exit)
	b.SetBlock(body)
	v := b.Mul(i, i) // defined inside loop
	i2 := b.Add(i, one)
	b.Br(head)
	ir.AddIncoming(i, zero, entry)
	ir.AddIncoming(i, i2, body)
	b.SetBlock(exit)
	b.Ret(v) // used outside the loop
	// NOTE: v does not dominate exit on the zero-trip path; for this test
	// we only care about liveness, and the verifier would reject it, so we
	// skip verification deliberately.

	lv := ComputeLiveness(f)
	rv := lv.Range(v)
	if rv.Start > lv.Pos(head) {
		t.Errorf("escaping def range %+v must start at the loop head %d",
			rv, lv.Pos(head))
	}
	if rv.End < lv.Pos(exit) {
		t.Errorf("escaping def range %+v must reach the use at %d",
			rv, lv.Pos(exit))
	}
}

func TestMaxOverlap(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.I64)
	b := ir.NewBuilder(f)
	v1 := b.Add(f.Params[0], b.ConstI64(1))
	v2 := b.Add(f.Params[0], b.ConstI64(2))
	v3 := b.Add(v1, v2)
	b.Ret(v3)
	lv := ComputeLiveness(f)
	if got := lv.MaxOverlap(); got != 3 {
		t.Errorf("MaxOverlap = %d, want 3", got)
	}
}

// TestLivenessLinearScaling is a coarse guard that the liveness
// computation stays near-linear: doubling the function size should roughly
// double the work, not quadruple it. We assert structure (it completes and
// ranges are sane) rather than wall-clock, which is noisy.
func TestLivenessLargeFunction(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("big", ir.I64)
	b := ir.NewBuilder(f)
	v := f.Params[0]
	const chains = 2000
	for i := 0; i < chains; i++ {
		v = b.Add(v, b.ConstI64(int64(i%7+1)))
	}
	b.Ret(v)
	lv := ComputeLiveness(f)
	// Ranges are block-granular and the function is a single block, so
	// every chained value spans [0,0] and MaxOverlap counts them all.
	if got := lv.MaxOverlap(); got != chains {
		t.Errorf("MaxOverlap = %d, want %d (block-granular)", got, chains)
	}
}
