// Package analysis implements the control-flow analyses behind the paper's
// linear-time bytecode translation (§IV-C/D): reverse-postorder labeling,
// dominator trees with O(1) ancestor queries via pre/post-order numbering,
// back-edge loop detection with natural-loop membership, a loop-contiguous
// block layout, and the loop-aware liveness algorithm of Fig. 11.
package analysis

import (
	"sort"

	"aqe/internal/ir"
)

// CFG bundles the per-function control-flow facts shared by the analyses.
type CFG struct {
	F *ir.Function
	// RPO is the list of reachable blocks in reverse postorder. RPONum
	// maps block ID -> position in RPO (-1 for unreachable blocks).
	RPO    []*ir.Block
	RPONum []int
	Preds  [][]*ir.Block
}

// NewCFG computes the reverse postorder and predecessor lists of f.
func NewCFG(f *ir.Function) *CFG {
	c := &CFG{F: f, RPO: f.ReversePostorder(), Preds: f.Preds()}
	c.RPONum = make([]int, len(f.Blocks))
	for i := range c.RPONum {
		c.RPONum[i] = -1 // unreachable
	}
	for i, b := range c.RPO {
		c.RPONum[b.ID] = i
	}
	return c
}

// DomTree is a dominator tree annotated with pre/post-order numbers so that
// ancestor queries are O(1) interval containment checks (§IV-D, Fig. 12).
type DomTree struct {
	cfg  *CFG
	Idom []*ir.Block // by block ID; nil for entry and unreachable blocks
	pre  []int       // by block ID
	post []int
}

// NewDomTree computes the dominator tree using the Cooper-Harvey-Kennedy
// iterative algorithm over the reverse postorder. On the reducible CFGs a
// query compiler emits this converges in two passes, giving effectively
// linear runtime, which is what the translation budget requires.
func NewDomTree(cfg *CFG) *DomTree {
	f := cfg.F
	n := len(f.Blocks)
	d := &DomTree{cfg: cfg, Idom: make([]*ir.Block, n), pre: make([]int, n), post: make([]int, n)}
	entry := f.Entry()
	d.Idom[entry.ID] = entry
	intersect := func(a, b *ir.Block) *ir.Block {
		for a != b {
			for cfg.RPONum[a.ID] > cfg.RPONum[b.ID] {
				a = d.Idom[a.ID]
			}
			for cfg.RPONum[b.ID] > cfg.RPONum[a.ID] {
				b = d.Idom[b.ID]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range cfg.RPO {
			if b == entry {
				continue
			}
			var ni *ir.Block
			for _, p := range cfg.Preds[b.ID] {
				if d.Idom[p.ID] == nil {
					continue
				}
				if ni == nil {
					ni = p
				} else {
					ni = intersect(p, ni)
				}
			}
			if ni != nil && d.Idom[b.ID] != ni {
				d.Idom[b.ID] = ni
				changed = true
			}
		}
	}
	d.Idom[entry.ID] = nil
	d.number()
	return d
}

// number assigns pre/post-order numbers by a DFS over the dominator tree.
func (d *DomTree) number() {
	f := d.cfg.F
	children := make([][]*ir.Block, len(f.Blocks))
	// Iterate in RPO so child lists are deterministic.
	for _, b := range d.cfg.RPO {
		if p := d.Idom[b.ID]; p != nil {
			children[p.ID] = append(children[p.ID], b)
		}
	}
	clock := 0
	type frame struct {
		b *ir.Block
		i int
	}
	stack := []frame{{f.Entry(), 0}}
	clock++
	d.pre[f.Entry().ID] = clock
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if fr.i < len(children[fr.b.ID]) {
			c := children[fr.b.ID][fr.i]
			fr.i++
			clock++
			d.pre[c.ID] = clock
			stack = append(stack, frame{c, 0})
			continue
		}
		clock++
		d.post[fr.b.ID] = clock
		stack = stack[:len(stack)-1]
	}
}

// Dominates reports whether a dominates b (reflexively) in O(1) using the
// pre/post-order interval containment test.
func (d *DomTree) Dominates(a, b *ir.Block) bool {
	return d.pre[a.ID] <= d.pre[b.ID] && d.post[b.ID] <= d.post[a.ID]
}

// Loop describes one natural loop. After layout, the loop's blocks occupy
// the contiguous position interval [First, Last]. The entry block heads a
// pseudo-loop spanning the whole function (the paper: "we pretend that the
// whole function body is part of one large loop").
type Loop struct {
	Head   *ir.Block
	First  int // layout position of Head
	Last   int // layout position of the loop's last block
	Parent *Loop
	Depth  int // nesting depth; the pseudo-loop has depth 0

	members []*ir.Block // including blocks of nested loops
}

// Contains reports whether layout position n falls inside the loop.
func (l *Loop) Contains(n int) bool { return l.First <= n && n <= l.Last }

// NumBlocks returns the loop's block count (including nested loops).
func (l *Loop) NumBlocks() int { return len(l.members) }

// LoopInfo is the result of loop detection: the loop forest rooted at the
// pseudo-loop, the innermost enclosing loop of every block, and a block
// layout in which every loop is contiguous.
type LoopInfo struct {
	Root  *Loop
	Loops []*Loop // ordered by First; Loops[0] == Root

	// Order is the loop-contiguous block layout used for live ranges and
	// code emission; Pos maps block ID -> position (-1 if unreachable).
	Order []*ir.Block
	Pos   []int

	// Innermost[i] is the innermost loop of the block at position i.
	Innermost []*Loop

	// Irreducible is set when the CFG has a retreat edge to a block that
	// does not dominate its source. Liveness falls back to whole-function
	// ranges in that case; the query code generator never produces such
	// CFGs, but the translator must stay correct on arbitrary input.
	Irreducible bool
}

// InnermostOf returns the innermost loop containing block b.
func (li *LoopInfo) InnermostOf(b *ir.Block) *Loop { return li.Innermost[li.Pos[b.ID]] }

// FindLoops detects natural loops via back edges (an edge B -> B' where B'
// dominates B) and computes a block layout where every loop is contiguous:
// blocks are ordered lexicographically by their chain of enclosing loop
// heads (in reverse postorder), then by their own reverse-postorder number.
// Contiguity is what makes a live range representable as a single interval
// without the unsoundness of raw-RPO intervals, where a loop's exit block
// can be numbered inside the loop and an escaping value's range would not
// cover the loop head.
func FindLoops(cfg *CFG, dom *DomTree) *LoopInfo {
	f := cfg.F
	li := &LoopInfo{}
	n := len(cfg.RPO)

	// The pseudo-loop: every reachable block belongs to it.
	root := &Loop{Head: f.Entry(), members: cfg.RPO}
	li.Root = root
	li.Loops = []*Loop{root}

	// Collect back edges per head, heads in RPO order (outer heads have
	// smaller RPO numbers than the heads they enclose, because an outer
	// head dominates inner ones).
	latches := make(map[*ir.Block][]*ir.Block)
	var heads []*ir.Block
	for _, b := range cfg.RPO {
		for _, s := range b.Succs() {
			if cfg.RPONum[s.ID] <= cfg.RPONum[b.ID] { // retreat edge
				if dom.Dominates(s, b) {
					if latches[s] == nil {
						heads = append(heads, s)
					}
					latches[s] = append(latches[s], b)
				} else {
					li.Irreducible = true
				}
			}
		}
	}
	sort.Slice(heads, func(i, j int) bool {
		return cfg.RPONum[heads[i].ID] < cfg.RPONum[heads[j].ID]
	})

	// Natural loop membership: walk backwards from each latch to the head.
	// innerOf[b] tracks the innermost loop seen so far; processing heads
	// outer-to-inner means later assignments are the inner ones.
	innerOf := make([]*Loop, len(f.Blocks))
	for _, b := range cfg.RPO {
		innerOf[b.ID] = root
	}
	inLoop := make([]bool, len(f.Blocks)) // scratch, reset per loop
	for _, h := range heads {
		l := &Loop{Head: h}
		l.Parent = innerOf[h.ID]
		l.Depth = l.Parent.Depth + 1
		var stack []*ir.Block
		add := func(b *ir.Block) {
			if !inLoop[b.ID] {
				inLoop[b.ID] = true
				l.members = append(l.members, b)
				stack = append(stack, b)
			}
		}
		inLoop[h.ID] = true
		l.members = append(l.members, h)
		for _, latch := range latches[h] {
			add(latch)
		}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range cfg.Preds[b.ID] {
				if cfg.RPONum[p.ID] >= 0 {
					add(p)
				}
			}
		}
		for _, b := range l.members {
			inLoop[b.ID] = false
			innerOf[b.ID] = l
		}
		li.Loops = append(li.Loops, l)
	}

	// Layout: lexicographic order over (loop-head chain, own RPO number).
	chains := make(map[*Loop][]int)
	chains[root] = []int{cfg.RPONum[f.Entry().ID]}
	var chainOf func(l *Loop) []int
	chainOf = func(l *Loop) []int {
		if c, ok := chains[l]; ok {
			return c
		}
		c := append(append([]int{}, chainOf(l.Parent)...), cfg.RPONum[l.Head.ID])
		chains[l] = c
		return c
	}
	li.Order = make([]*ir.Block, n)
	copy(li.Order, cfg.RPO)
	// The sort key of block b is (chain of enclosing loop heads' RPO
	// numbers) ++ (b's own RPO number), compared lexicographically.
	elem := func(chain []int, own, k int) (int, bool) {
		if k < len(chain) {
			return chain[k], true
		}
		if k == len(chain) {
			return own, true
		}
		return 0, false
	}
	sort.SliceStable(li.Order, func(i, j int) bool {
		a, b := li.Order[i], li.Order[j]
		ca, cb := chainOf(innerOf[a.ID]), chainOf(innerOf[b.ID])
		ra, rb := cfg.RPONum[a.ID], cfg.RPONum[b.ID]
		for k := 0; ; k++ {
			ea, oka := elem(ca, ra, k)
			eb, okb := elem(cb, rb, k)
			if !oka {
				return okb
			}
			if !okb {
				return false
			}
			if ea != eb {
				return ea < eb
			}
		}
	})
	li.Pos = make([]int, len(f.Blocks))
	for i := range li.Pos {
		li.Pos[i] = -1
	}
	for i, b := range li.Order {
		li.Pos[b.ID] = i
	}

	// Extents and innermost-per-position.
	for _, l := range li.Loops {
		l.First = li.Pos[l.Head.ID]
		l.Last = l.First
		for _, b := range l.members {
			if p := li.Pos[b.ID]; p > l.Last {
				l.Last = p
			}
		}
	}
	sort.Slice(li.Loops, func(i, j int) bool { return li.Loops[i].First < li.Loops[j].First })
	li.Innermost = make([]*Loop, n)
	for i, b := range li.Order {
		li.Innermost[i] = innerOf[b.ID]
	}
	return li
}

// Interval is a live range over layout positions, inclusive on both ends.
// An empty interval has Start > End.
type Interval struct {
	Start, End int
}

// Empty reports whether the interval covers no blocks.
func (iv Interval) Empty() bool { return iv.Start > iv.End }

func (iv *Interval) extendBlock(n int) {
	if n < iv.Start {
		iv.Start = n
	}
	if n > iv.End {
		iv.End = n
	}
}

func (iv *Interval) extendLoop(l *Loop) {
	if l.First < iv.Start {
		iv.Start = l.First
	}
	if l.Last > iv.End {
		iv.End = l.Last
	}
}

// Liveness holds the computed live range of every instruction value,
// indexed by value ID, over the loop-contiguous block layout.
type Liveness struct {
	CFG    *CFG
	Dom    *DomTree
	Loops  *LoopInfo
	Ranges []Interval // by value ID
}

// Order returns the block layout live ranges refer to.
func (lv *Liveness) Order() []*ir.Block { return lv.Loops.Order }

// Pos returns the layout position of block b.
func (lv *Liveness) Pos(b *ir.Block) int { return lv.Loops.Pos[b.ID] }

// ComputeLiveness runs the paper's Fig. 11 algorithm: for every value v,
// collect the blocks B_v containing its definition and uses (with φ-inputs
// read — and the φ value written — at the end of the incoming block), find
// the innermost loop C_v containing all of B_v, and build the live range by
// extending with each block directly in C_v, or with the extent of the
// outermost loop below C_v containing blocks nested deeper. Runtime is
// linear in the size of the function up to the loop-forest depth and the
// O(n log n) layout sort.
func ComputeLiveness(f *ir.Function) *Liveness {
	cfg := NewCFG(f)
	dom := NewDomTree(cfg)
	loops := FindLoops(cfg, dom)
	lv := &Liveness{CFG: cfg, Dom: dom, Loops: loops}
	lv.Ranges = make([]Interval, f.NumValues())
	for i := range lv.Ranges {
		lv.Ranges[i] = Interval{Start: int(^uint(0) >> 1), End: -1}
	}

	if loops.Irreducible {
		// Correctness fallback: every value lives for the whole function.
		last := len(loops.Order) - 1
		for _, b := range loops.Order {
			for _, in := range b.Instrs {
				if in.Type != ir.Void {
					lv.Ranges[in.ID] = Interval{Start: 0, End: last}
				}
			}
		}
		return lv
	}

	// Streaming Fig. 11: maintain per value the innermost common loop C_v
	// seen so far. When a new occurrence forces C_v to widen, the interval
	// accumulated so far is retroactively lifted to the extent of the
	// outermost loop below the new C_v containing the old one.
	cv := make([]*Loop, f.NumValues())

	occur := func(v *ir.Value, n int) {
		if n < 0 {
			return // unreachable block
		}
		r := &lv.Ranges[v.ID]
		inner := loops.Innermost[n]
		c := cv[v.ID]
		if c == nil {
			cv[v.ID] = inner
			r.extendBlock(n)
			return
		}
		if !c.Contains(n) {
			newC := c
			for !newC.Contains(n) {
				newC = newC.Parent
			}
			l := c
			for l.Parent != newC {
				l = l.Parent
			}
			r.extendLoop(l)
			cv[v.ID] = newC
			c = newC
		}
		if inner == c {
			r.extendBlock(n)
		} else {
			// Outermost loop below C_v containing n.
			l := inner
			for l.Parent != c {
				l = l.Parent
			}
			r.extendLoop(l)
		}
	}

	for _, b := range loops.Order {
		n := loops.Pos[b.ID]
		for _, in := range b.Instrs {
			if in.Type != ir.Void {
				occur(in, n)
			}
			if in.Op == ir.OpPhi {
				// φ-inputs are read at the end of the incoming block, and
				// the φ value itself is written there (§IV-D): both the
				// argument and the φ must be live in the incoming block.
				for i, a := range in.Args {
					n2 := loops.Pos[in.Incoming[i].ID]
					if a.IsInstr() {
						occur(a, n2)
					}
					occur(in, n2)
				}
				continue
			}
			for _, a := range in.Args {
				if a.IsInstr() {
					occur(a, n)
				}
			}
		}
		for _, a := range b.Term.Args {
			if a.IsInstr() {
				occur(a, n)
			}
		}
	}
	return lv
}

// Range returns the live range of value v (empty for dead values and
// non-instructions).
func (lv *Liveness) Range(v *ir.Value) Interval { return lv.Ranges[v.ID] }

// MaxOverlap returns the maximum number of simultaneously live values over
// all layout positions — a lower bound on the register file size and a
// useful diagnostic for allocator quality tests.
func (lv *Liveness) MaxOverlap() int {
	n := len(lv.Loops.Order)
	delta := make([]int, n+1)
	for _, iv := range lv.Ranges {
		if iv.Empty() {
			continue
		}
		delta[iv.Start]++
		delta[iv.End+1]--
	}
	cur, max := 0, 0
	for i := 0; i < n; i++ {
		cur += delta[i]
		if cur > max {
			max = cur
		}
	}
	return max
}
