package ir

// Clone returns a deep copy of the function inside the same module. The
// optimizing compiler runs destructive passes on a clone because the
// original function stays live: under adaptive execution the bytecode
// interpreter keeps executing the unoptimized form while the optimized
// compilation proceeds on a background thread (§III-B).
//
// The clone is appended to no module function list; it shares the module
// only for extern declarations.
func (f *Function) Clone() *Function {
	nf := &Function{
		Name:   f.Name,
		Module: f.Module,
		nextID: f.nextID,
		consts: make(map[constKey]*Value, len(f.consts)),
	}
	vmap := make(map[*Value]*Value, f.nextID)
	bmap := make(map[*Block]*Block, len(f.Blocks))

	for _, p := range f.Params {
		np := &Value{ID: p.ID, Op: OpParam, Type: p.Type}
		vmap[p] = np
		nf.Params = append(nf.Params, np)
	}
	for k, c := range f.consts {
		nc := &Value{ID: c.ID, Op: OpConst, Type: c.Type, Const: c.Const}
		vmap[c] = nc
		nf.consts[k] = nc
	}
	for _, b := range f.Blocks {
		nb := &Block{ID: b.ID, Fn: nf}
		bmap[b] = nb
		nf.Blocks = append(nf.Blocks, nb)
	}
	cloneInstr := func(in *Value, nb *Block) *Value {
		ni := &Value{
			ID: in.ID, Op: in.Op, Type: in.Type, Pred: in.Pred,
			Const: in.Const, Lit: in.Lit, Lit2: in.Lit2, Callee: in.Callee,
			Block: nb,
		}
		vmap[in] = ni
		return ni
	}
	// First pass: create all instruction shells (arguments may reference
	// instructions in later blocks through φ-nodes).
	for _, b := range f.Blocks {
		nb := bmap[b]
		for _, in := range b.Instrs {
			nb.Instrs = append(nb.Instrs, cloneInstr(in, nb))
		}
		if b.Term != nil {
			nb.Term = cloneInstr(b.Term, nb)
		}
	}
	// Second pass: wire arguments, incoming blocks and branch targets.
	wire := func(in, ni *Value) {
		if len(in.Args) > 0 {
			ni.Args = make([]*Value, len(in.Args))
			for i, a := range in.Args {
				ni.Args[i] = vmap[a]
			}
		}
		if len(in.Incoming) > 0 {
			ni.Incoming = make([]*Block, len(in.Incoming))
			for i, ib := range in.Incoming {
				ni.Incoming[i] = bmap[ib]
			}
		}
		if len(in.Targets) > 0 {
			ni.Targets = make([]*Block, len(in.Targets))
			for i, tb := range in.Targets {
				ni.Targets[i] = bmap[tb]
			}
		}
	}
	for _, b := range f.Blocks {
		nb := bmap[b]
		for i, in := range b.Instrs {
			wire(in, nb.Instrs[i])
		}
		if b.Term != nil {
			wire(b.Term, nb.Term)
		}
	}
	return nf
}
