package ir

import (
	"strings"
	"testing"
)

// buildLoopSum builds: func(n) { s=0; for i=0..n-1 { s += i }; return s }
func buildLoopSum(m *Module) *Function {
	f := m.NewFunc("loopsum", I64)
	b := NewBuilder(f)
	entry := b.B
	head := f.NewBlock()
	body := f.NewBlock()
	exit := f.NewBlock()

	zero := b.ConstI64(0)
	one := b.ConstI64(1)
	b.Br(head)

	b.SetBlock(head)
	i := b.Phi(I64)
	s := b.Phi(I64)
	cond := b.ICmp(SLt, i, f.Params[0])
	b.CondBr(cond, body, exit)

	b.SetBlock(body)
	s2 := b.Add(s, i)
	i2 := b.Add(i, one)
	b.Br(head)

	AddIncoming(i, zero, entry)
	AddIncoming(i, i2, body)
	AddIncoming(s, zero, entry)
	AddIncoming(s, s2, body)

	b.SetBlock(exit)
	b.Ret(s)
	return f
}

func TestBuilderAndVerify(t *testing.T) {
	m := NewModule("test")
	f := buildLoopSum(m)
	if err := f.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// br, phi, phi, icmp, condbr, add, add, br, ret = 9 instructions.
	if got := f.NumInstrs(); got != 9 {
		t.Errorf("NumInstrs = %d, want 9", got)
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	m := NewModule("test")
	f := m.NewFunc("bad")
	f.NewBlock()
	if err := f.Verify(); err == nil {
		t.Fatal("expected error for missing terminator")
	}
}

func TestVerifyCatchesPhiAfterNonPhi(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for phi after non-phi")
		}
	}()
	m := NewModule("test")
	f := m.NewFunc("bad", I64)
	b := NewBuilder(f)
	b.Add(f.Params[0], b.ConstI64(1))
	b.Phi(I64)
}

func TestVerifyCatchesUseBeforeDef(t *testing.T) {
	m := NewModule("test")
	f := m.NewFunc("bad", I64)
	b := NewBuilder(f)
	blk2 := f.NewBlock()
	blk3 := f.NewBlock()
	// Define v in blk2, use it in blk3, but blk3 is reachable without blk2.
	cond := b.ICmp(Eq, f.Params[0], b.ConstI64(0))
	b.CondBr(cond, blk2, blk3)
	b.SetBlock(blk2)
	v := b.Add(f.Params[0], b.ConstI64(1))
	b.Br(blk3)
	b.SetBlock(blk3)
	b.Ret(v)
	if err := f.Verify(); err == nil {
		t.Fatal("expected dominance violation")
	} else if !strings.Contains(err.Error(), "dominate") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestVerifyCatchesCallArityMismatch(t *testing.T) {
	m := NewModule("test")
	f := m.NewFunc("bad", I64)
	b := NewBuilder(f)
	v := b.Call("f1", I64, f.Params[0])
	b.Ret(v)
	// Break the arity by appending an argument behind the builder's back.
	call := f.Blocks[0].Instrs[0]
	call.Args = append(call.Args, f.Params[0])
	if err := f.Verify(); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestExternDedup(t *testing.T) {
	m := NewModule("test")
	a := m.DeclareExtern("f", I64, I64)
	b := m.DeclareExtern("f", I64, I64)
	if a != b {
		t.Errorf("extern indexes differ: %d vs %d", a, b)
	}
	c := m.DeclareExtern("g", Void)
	if c == a {
		t.Errorf("distinct externs share index")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on signature mismatch")
		}
	}()
	m.DeclareExtern("f", Void, I64)
}

func TestConstDedup(t *testing.T) {
	m := NewModule("test")
	f := m.NewFunc("f")
	a := f.Const(I64, 42)
	b := f.Const(I64, 42)
	if a != b {
		t.Error("equal constants not deduplicated")
	}
	if c := f.Const(I32, 42); c == a {
		t.Error("constants of different type share value")
	}
	if got := len(f.Constants()); got != 2 {
		t.Errorf("Constants() = %d, want 2", got)
	}
}

func TestReversePostorder(t *testing.T) {
	m := NewModule("test")
	f := buildLoopSum(m)
	rpo := f.ReversePostorder()
	if len(rpo) != 4 {
		t.Fatalf("rpo has %d blocks, want 4", len(rpo))
	}
	pos := map[int]int{}
	for i, b := range rpo {
		pos[b.ID] = i
	}
	// entry < head < body, head < exit
	if !(pos[0] < pos[1] && pos[1] < pos[2] && pos[1] < pos[3]) {
		t.Errorf("rpo order violated: %v", pos)
	}
}

func TestSplitCriticalEdges(t *testing.T) {
	m := NewModule("test")
	f := m.NewFunc("crit", I64)
	b := NewBuilder(f)
	left := f.NewBlock()
	join := f.NewBlock()
	// entry condbr -> (left, join); left -> join. The entry->join edge is
	// critical because entry has 2 succs and join has 2 preds.
	cond := b.ICmp(Eq, f.Params[0], b.ConstI64(0))
	entry := b.B
	b.CondBr(cond, left, join)
	b.SetBlock(left)
	v := b.Add(f.Params[0], b.ConstI64(1))
	b.Br(join)
	b.SetBlock(join)
	phi := b.Phi(I64)
	AddIncoming(phi, f.Params[0], entry)
	AddIncoming(phi, v, left)
	b.Ret(phi)

	if err := f.Verify(); err != nil {
		t.Fatalf("pre-split verify: %v", err)
	}
	n := f.SplitCriticalEdges()
	if n != 1 {
		t.Fatalf("split %d edges, want 1", n)
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("post-split verify: %v", err)
	}
	if got := f.SplitCriticalEdges(); got != 0 {
		t.Errorf("second split did %d edges, want 0 (idempotence)", got)
	}
	// No remaining critical edge into a phi block.
	preds := f.Preds()
	for _, blk := range f.Blocks {
		if len(blk.Phis()) == 0 || len(preds[blk.ID]) < 2 {
			continue
		}
		for _, p := range preds[blk.ID] {
			if len(p.Succs()) > 1 {
				t.Errorf("critical edge b%d -> b%d remains", p.ID, blk.ID)
			}
		}
	}
}

func TestRemoveDeadBlocks(t *testing.T) {
	m := NewModule("test")
	f := m.NewFunc("dead", I64)
	b := NewBuilder(f)
	deadB := f.NewBlock()
	b.Ret(f.Params[0])
	b.SetBlock(deadB)
	b.RetVoid()
	if n := f.RemoveDeadBlocks(); n != 1 {
		t.Fatalf("removed %d, want 1", n)
	}
	if len(f.Blocks) != 1 || f.Blocks[0].ID != 0 {
		t.Errorf("blocks not renumbered: %v", len(f.Blocks))
	}
}

func TestPrinterSmoke(t *testing.T) {
	m := NewModule("test")
	buildLoopSum(m)
	s := m.String()
	for _, want := range []string{"define @loopsum", "phi i64", "icmp slt", "condbr", "ret i64"} {
		if !strings.Contains(s, want) {
			t.Errorf("printer output missing %q:\n%s", want, s)
		}
	}
}
