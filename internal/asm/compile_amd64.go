//go:build amd64 && (linux || darwin)

package asm

import (
	"fmt"
	"math"

	"aqe/internal/ir"
	"aqe/internal/rt"
)

// Fixed layout of nativeCtx as seen from generated code (asserted against
// the Go struct in run_amd64.go's init).
const (
	ncRegs   = 0  // *uint64: register-file base (loaded into R12)
	ncSegPtr = 8  // *[]byte: segment-table base (loaded into R15)
	ncSegLen = 16 // uint64: segment count (loaded into RBX)
	ncResume = 24 // uint64: code address to (re-)enter at
	ncExit   = 32 // uint64: exit code (exitRet..exitFault)
	ncA      = 40 // exit operand: callee index / trap code / faulting address
	ncB      = 48 // exit operand: extern argc
	ncC      = 56 // exit operand: return value / result slot + 1
	ncArgs   = 64 // [16]uint64: staged extern-call arguments
)

// Exit codes written to ncExit before returning to the trampoline.
const (
	exitRet   = 0 // function returned; ncC = result bits
	exitCall  = 1 // extern call; ncA = callee, ncB = argc, ncC = result slot+1, ncResume set
	exitTrap  = 2 // rt trap; ncA = rt.TrapCode
	exitFault = 3 // segmented-memory fault; ncA = faulting address
)

// pmove is one pending φ-move: register-file slot dst receives slot src,
// or the immediate imm when src < 0.
type pmove struct {
	dst, src int32
	imm      uint64
}

// exitStore is one register spill a side exit performs before entering
// the shared trap/fault stub.
type exitStore struct {
	phys int16 // unified location (xmmBase+x for XMM)
	slot int32
}

// sideExit is an out-of-line stub that stores a dirty-register set to
// canonical slots and then jumps to a shared trap/fault exit. Sites with
// identical (target, dirty set) share one stub.
type sideExit struct {
	label, shared int
	stores        []exitStore
}

// compiler is the per-function state of the single emission pass. ra is
// nil for the slot-per-op backend (Options.NoRegAlloc): every helper
// then degenerates to a scratch-register load/store around the template,
// which is exactly the PR 7 baseline.
type compiler struct {
	a        *asmBuf
	f        *ir.Function
	ra       *regAlloc
	preds    [][]*ir.Block
	slot     []int32 // value ID → register-file slot (-1 = none / constant)
	uses     []int32 // value ID → operand use count
	fused    []bool  // block ID → terminator consumes the flags of the last instr
	selFuse  []bool  // value ID → ICmp whose flags feed the immediately following Select
	blockL   []int   // block ID → label
	scratch  int32   // cycle-breaking slot for φ-moves
	numSlots int

	trapOvfL, trapDivL, faultL int
	sideExits                  []sideExit
	exitKeys                   map[string]int
	keyBuf                     []byte // reusable side-exit dedup key scratch
}

// Compile lowers an IR function to executable amd64 machine code with the
// default (register-allocating) backend.
func Compile(f *ir.Function) (*Code, error) { return CompileOpts(f, Options{}) }

// CompileOpts lowers an IR function to executable amd64 machine code.
// Like the unoptimized closure backend it mutates f in place (critical-
// edge splitting only); callers that need the original intact pass a
// clone. Functions using an op the templates do not cover return an
// error wrapping ErrUnsupported and the engine falls back to the closure
// tiers.
func CompileOpts(f *ir.Function, opts Options) (*Code, error) {
	f.SplitCriticalEdges()
	c := &compiler{f: f, a: newAsmBuf(64 + f.NumInstrs()*48)}
	if err := c.assignSlots(); err != nil {
		return nil, err
	}
	if !opts.NoRegAlloc {
		c.ra = newRegAlloc(c)
		c.preds = f.Preds()
		c.exitKeys = make(map[string]int)
	}
	c.analyze()
	c.trapOvfL = c.a.label()
	c.trapDivL = c.a.label()
	c.faultL = c.a.label()
	c.blockL = make([]int, len(f.Blocks))
	for i := range f.Blocks {
		c.blockL[i] = c.a.label()
	}
	for i, b := range f.Blocks {
		if err := c.emitBlock(i, b); err != nil {
			return nil, err
		}
	}
	c.emitStubs()
	return newCode(c.a.finish(), c.numSlots, len(f.Params))
}

// assignSlots gives every SSA value that needs materializing a register-
// file slot: parameters first (matching the calling convention), then
// instruction results in program order. Pair values occupy two adjacent
// slots ({value, flag}); constants are encoded as immediates and get none.
func (c *compiler) assignSlots() error {
	c.slot = make([]int32, c.f.NumValues())
	for i := range c.slot {
		c.slot[i] = -1
	}
	next := int32(0)
	for _, p := range c.f.Params {
		if p.Type == ir.Pair {
			return fmt.Errorf("asm: pair-typed parameter: %w", ErrUnsupported)
		}
		c.slot[p.ID] = next
		next++
	}
	for _, b := range c.f.Blocks {
		for _, in := range b.Instrs {
			if in.Type == ir.Void {
				continue
			}
			c.slot[in.ID] = next
			if in.Type == ir.Pair {
				next += 2
			} else {
				next++
			}
		}
	}
	c.scratch = next
	next++
	c.numSlots = int(next)
	return nil
}

// analyze counts operand uses and finds the flag-fusion opportunities:
// per block, whether the terminator can consume the condition flags of
// the block's last instruction directly (ICmp feeding CondBr with no
// other use), and — under the allocator — ICmp results consumed solely
// by the immediately following Select, which then compiles to CMP+CMOVcc
// with no SETcc materialization.
func (c *compiler) analyze() {
	c.uses = make([]int32, c.f.NumValues())
	for _, b := range c.f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				c.uses[a.ID]++
			}
		}
		if b.Term != nil {
			for _, a := range b.Term.Args {
				c.uses[a.ID]++
			}
		}
	}
	c.fused = make([]bool, len(c.f.Blocks))
	c.selFuse = make([]bool, c.f.NumValues())
	for _, b := range c.f.Blocks {
		t := b.Term
		if t != nil && t.Op == ir.OpCondBr && len(b.Instrs) > 0 {
			last := b.Instrs[len(b.Instrs)-1]
			c.fused[b.ID] = last.Op == ir.OpICmp && t.Args[0] == last && c.uses[last.ID] == 1
		}
		if c.ra == nil {
			continue
		}
		for j := 1; j < len(b.Instrs); j++ {
			in, prev := b.Instrs[j], b.Instrs[j-1]
			if in.Op == ir.OpSelect && in.Type != ir.Pair &&
				prev.Op == ir.OpICmp && in.Args[0] == prev && c.uses[prev.ID] == 1 {
				c.selFuse[prev.ID] = true
			}
		}
	}
}

// --- operand helpers -------------------------------------------------
//
// The template cases below never touch slots directly; they fetch
// operands and allocate destinations through these helpers, which under
// the allocator serve cached registers and only fall back to slot
// traffic, and without it (NoRegAlloc) reproduce the slot-per-op
// backend exactly.

// ld loads value v into GP register r (immediate or slot read). May
// clobber condition flags (constant zero is XOR), so it must not be used
// between a fused CMP and its consumer.
func (c *compiler) ld(r int, v *ir.Value) {
	if v.IsConst() {
		c.a.movRegImm64(r, v.Const)
		return
	}
	c.a.movRegMem(r, slotMem(int(c.slot[v.ID])))
}

// st stores GP register r into v's slot.
func (c *compiler) st(v *ir.Value, r int) {
	c.a.movMemReg(slotMem(int(c.slot[v.ID])), r)
}

// fld loads an f64 value into XMM register x.
func (c *compiler) fld(x int, v *ir.Value) {
	if v.IsConst() {
		c.a.movRegImm64(rAX, v.Const)
		c.a.movqXR(x, rAX)
		return
	}
	c.a.movsdLoad(x, slotMem(int(c.slot[v.ID])))
}

// ldInto emits v into the specific GP register r, reading a cached
// register when the allocator has one.
func (c *compiler) ldInto(r int, v *ir.Value) {
	if c.ra != nil {
		if p := c.ra.regOf(v); p >= xmmBase {
			c.a.movqRX(r, p-xmmBase)
			return
		} else if p >= 0 {
			if p != r {
				c.a.movRegReg(r, p)
			}
			return
		}
	}
	c.ld(r, v)
}

// ldIntoNF is ldInto restricted to flag-preserving encodings, for use
// between a fused CMP and its CMOVcc.
func (c *compiler) ldIntoNF(r int, v *ir.Value) {
	if v.IsConst() {
		c.a.movRegImm64NF(r, v.Const)
		return
	}
	c.ldInto(r, v)
}

// use returns a GP register holding v, loading into scratch when it is
// not already cached. Never allocates and never consumes a use slot.
func (c *compiler) use(v *ir.Value, scratch int) int {
	if c.ra != nil {
		if p := c.ra.regOf(v); p >= 0 && p < xmmBase {
			return p
		}
	}
	c.ldInto(scratch, v)
	return scratch
}

// useNF is use with flag-preserving loads.
func (c *compiler) useNF(v *ir.Value, scratch int) int {
	if c.ra != nil {
		if p := c.ra.regOf(v); p >= 0 && p < xmmBase {
			return p
		}
	}
	c.ldIntoNF(scratch, v)
	return scratch
}

// useAlloc is use, but a value with further uses in the block is loaded
// into an allocated pool register (clean) instead of scratch, so later
// templates find it cached. excl lists registers the current template
// has already fetched and must not lose.
func (c *compiler) useAlloc(v *ir.Value, scratch int, excl ...int) int {
	if c.ra == nil || v.IsConst() {
		c.ld(scratch, v)
		return scratch
	}
	if p := c.ra.regOf(v); p >= xmmBase {
		c.a.movqRX(scratch, p-xmmBase)
		return scratch
	} else if p >= 0 {
		return p
	}
	if c.ra.nextUse(v.ID) != noUse {
		p := c.ra.alloc(gprPool, excl...)
		c.a.movRegMem(p, slotMem(int(c.slot[v.ID])))
		c.ra.mapTo(v, p, false)
		return p
	}
	c.a.movRegMem(scratch, slotMem(int(c.slot[v.ID])))
	return scratch
}

// rhs fetches a right-hand operand either into a register or, for a
// last-use value sitting in its slot, as a memory operand so the ALU
// reads it directly. Constants come back as a register (imm32 forms are
// the caller's business).
func (c *compiler) rhs(v *ir.Value, scratch int, excl ...int) (reg int, m mem, inMem bool) {
	if c.ra != nil && !v.IsConst() {
		if p := c.ra.regOf(v); p >= xmmBase {
			c.a.movqRX(scratch, p-xmmBase)
			return scratch, mem{}, false
		} else if p >= 0 {
			return p, mem{}, false
		}
		if c.ra.nextUse(v.ID) != noUse {
			p := c.ra.alloc(gprPool, excl...)
			c.a.movRegMem(p, slotMem(int(c.slot[v.ID])))
			c.ra.mapTo(v, p, false)
			return p, mem{}, false
		}
		return 0, slotMem(int(c.slot[v.ID])), true
	}
	c.ld(scratch, v)
	return scratch, mem{}, false
}

// useX returns an XMM register (index) holding v.
func (c *compiler) useX(v *ir.Value, scratchX int) int {
	if c.ra != nil {
		if p := c.ra.regOf(v); p >= xmmBase {
			return p - xmmBase
		} else if p >= 0 {
			c.a.movqXR(scratchX, p)
			return scratchX
		}
	}
	c.fld(scratchX, v)
	return scratchX
}

// useAllocX is useAlloc for XMM operands; excl holds XMM indices.
func (c *compiler) useAllocX(v *ir.Value, scratchX int, excl ...int) int {
	if c.ra == nil || v.IsConst() {
		c.fld(scratchX, v)
		return scratchX
	}
	if p := c.ra.regOf(v); p >= xmmBase {
		return p - xmmBase
	} else if p >= 0 {
		c.a.movqXR(scratchX, p)
		return scratchX
	}
	if c.ra.nextUse(v.ID) != noUse {
		phys := make([]int, len(excl))
		for i, x := range excl {
			phys[i] = xmmBase + x
		}
		p := c.ra.alloc(xmmPool, phys...)
		c.a.movsdLoad(p-xmmBase, slotMem(int(c.slot[v.ID])))
		c.ra.mapTo(v, p, false)
		return p - xmmBase
	}
	c.a.movsdLoad(scratchX, slotMem(int(c.slot[v.ID])))
	return scratchX
}

// def allocates the destination register for v: a pool GPR under the
// allocator (marked dirty; pair it with fin), scratch otherwise. The
// template must not write the returned register before its last trap or
// fault branch, and must not read any register in excl after writing it.
func (c *compiler) def(v *ir.Value, scratch int, excl ...int) int {
	if c.ra != nil {
		return c.ra.defGPR(v, excl...)
	}
	return scratch
}

// defX is def for float destinations; excl holds XMM indices.
func (c *compiler) defX(v *ir.Value, scratchX int, excl ...int) int {
	if c.ra != nil {
		phys := make([]int, len(excl))
		for i, x := range excl {
			phys[i] = xmmBase + x
		}
		return c.ra.defXMM(v, phys...)
	}
	return scratchX
}

// fin completes a GP definition: the allocator already tracks the dirty
// mapping; the slot backend stores the scratch register.
func (c *compiler) fin(v *ir.Value, r int) {
	if c.ra == nil {
		c.st(v, r)
	}
}

// finX completes an XMM definition.
func (c *compiler) finX(v *ir.Value, x int) {
	if c.ra == nil {
		c.a.movsdStore(slotMem(int(c.slot[v.ID])), x)
	}
}

// trapLabel returns the branch target for a trap/fault site. With no
// dirty registers (or no allocator) the shared stub is jumped to
// directly; otherwise the site gets an out-of-line side exit that first
// stores the dirty set to canonical slots — the flush-at-exit invariant
// at zero cost on the non-trapping path. Identical sites share stubs.
func (c *compiler) trapLabel(shared int) int {
	if c.ra == nil {
		return shared
	}
	st := c.ra.dirtySet()
	if len(st) == 0 {
		return shared
	}
	key := c.keyBuf[:0]
	key = append(key, byte(shared), byte(shared>>8))
	for _, s := range st {
		key = append(key, byte(s.phys), byte(s.slot), byte(s.slot>>8), byte(s.slot>>16), byte(s.slot>>24))
	}
	c.keyBuf = key
	// string(key) in the lookup does not allocate; only a miss pays for
	// the retained copies of the key and the store list.
	if l, ok := c.exitKeys[string(key)]; ok {
		return l
	}
	l := c.a.label()
	c.exitKeys[string(key)] = l
	c.sideExits = append(c.sideExits, sideExit{label: l, shared: shared, stores: append([]exitStore(nil), st...)})
	return l
}

// imm32 reports whether v is a constant representable as a sign-extended
// 32-bit immediate.
func imm32(v *ir.Value) (int32, bool) {
	if !v.IsConst() {
		return 0, false
	}
	s := int64(v.Const)
	if s < math.MinInt32 || s > math.MaxInt32 {
		return 0, false
	}
	return int32(s), true
}

// addImm64 adds a 64-bit immediate to r (clobbers RDX for wide values).
func (c *compiler) addImm64(r int, v uint64) {
	if v == 0 {
		return
	}
	s := int64(v)
	if s >= math.MinInt32 && s <= math.MaxInt32 {
		c.a.aluRegImm32(aluAdd, r, int32(s))
		return
	}
	c.a.movRegImm64(rDX, v)
	c.a.aluRegReg(aluAdd, r, rDX)
}

// predCC maps a comparison predicate to the condition code that is true
// after CMP x, y.
func predCC(p ir.Pred) byte {
	switch p {
	case ir.Eq:
		return ccE
	case ir.Ne:
		return ccNE
	case ir.SLt:
		return ccL
	case ir.SLe:
		return ccLE
	case ir.SGt:
		return ccG
	case ir.SGe:
		return ccGE
	case ir.ULt:
		return ccB
	case ir.ULe:
		return ccBE
	case ir.UGt:
		return ccA
	}
	return ccAE // UGe
}

func (c *compiler) emitBlock(i int, b *ir.Block) error {
	c.a.bind(c.blockL[b.ID])
	if c.ra != nil {
		// A block whose only predecessor is the block just emitted is
		// entered with exactly the emission-end machine state (the
		// terminator path emits MOVs and jumps only), so cached clean
		// values carry across — the extended-basic-block case. Everything
		// else starts from canonical slots.
		inherit := false
		if i > 0 {
			ps := c.preds[b.ID]
			inherit = len(ps) == 1 && ps[0] == c.f.Blocks[i-1]
		}
		c.ra.begin(b, inherit)
	}
	for j, in := range b.Instrs {
		if in.Op == ir.OpPhi {
			if in.Type == ir.Pair {
				return fmt.Errorf("asm: pair-typed phi: %w", ErrUnsupported)
			}
			continue // materialized by predecessor φ-moves
		}
		var prev *ir.Value
		if j > 0 {
			prev = b.Instrs[j-1]
		}
		if err := c.emitInstr(in, b, prev); err != nil {
			return err
		}
	}
	var next *ir.Block
	if i+1 < len(c.f.Blocks) {
		next = c.f.Blocks[i+1]
	}
	return c.emitTerm(b, next)
}

// emitCmp emits CMP for x against y (immediate or slot memory operand
// when possible), setting the condition flags for predCC.
func (c *compiler) emitCmp(x, y *ir.Value) {
	xr := c.useAlloc(x, rAX)
	if v, ok := imm32(y); ok {
		c.a.aluRegImm32(aluCmp, xr, v)
		return
	}
	yr, ym, ymem := c.rhs(y, rCX, xr)
	if ymem {
		c.a.aluRegMem(aluCmp, xr, ym)
	} else {
		c.a.aluRegReg(aluCmp, xr, yr)
	}
}

// segTranslate expects a segmented address in RAX and emits the
// translation sequence: bounds-check the segment index against RBX, load
// the segment's data pointer into RDX and length into RSI from the table
// at R15, extract the 48-bit offset into RDI, and bounds-check
// offset+width against the length. Faults jump to faultL (the shared
// stub or a dirty-spilling side exit) with the address still in RAX.
// Clobbers RCX, RDX, RSI, RDI, R8.
func (c *compiler) segTranslate(width int32, faultL int) {
	c.a.movRegReg(rCX, rAX)
	c.a.shiftImm(5, rCX, 48) // shr: segment index
	c.a.aluRegReg(aluCmp, rCX, rBX)
	c.a.jcc(ccAE, faultL)
	c.a.leaRegMem(rCX, mem{base: rCX, index: rCX, scale: 2})          // ×3: slice headers are 24 bytes
	c.a.movRegMem(rDX, mem{base: r15, index: rCX, scale: 8})          // data pointer
	c.a.movRegMem(rSI, mem{base: r15, index: rCX, scale: 8, disp: 8}) // length
	c.a.movRegReg(rDI, rAX)
	c.a.shiftImm(4, rDI, 16) // shl
	c.a.shiftImm(5, rDI, 16) // shr: 48-bit offset
	c.a.leaRegMem(r8, memBD(rDI, width))
	c.a.aluRegReg(aluCmp, r8, rSI)
	c.a.jcc(ccA, faultL)
}

func (c *compiler) emitInstr(in *ir.Value, b *ir.Block, prev *ir.Value) error {
	if c.ra != nil {
		c.ra.consume(in)
	}
	switch in.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor:
		x := c.useAlloc(in.Args[0], rAX)
		if v, ok := imm32(in.Args[1]); ok {
			if in.Op == ir.OpMul {
				dst := c.def(in, rAX)
				c.a.imulRegRegImm32(dst, x, v)
				c.fin(in, dst)
			} else {
				dst := c.def(in, rAX)
				if dst != x {
					c.a.movRegReg(dst, x)
				}
				c.a.aluRegImm32(aluOpFor(in.Op), dst, v)
				c.fin(in, dst)
			}
		} else {
			yr, ym, ymem := c.rhs(in.Args[1], rCX, x)
			dst := c.def(in, rAX, yr)
			if dst != x {
				c.a.movRegReg(dst, x)
			}
			switch {
			case in.Op == ir.OpMul && ymem:
				c.a.imulRegMem(dst, ym)
			case in.Op == ir.OpMul:
				c.a.imulRegReg(dst, yr)
			case ymem:
				c.a.aluRegMem(aluOpFor(in.Op), dst, ym)
			default:
				c.a.aluRegReg(aluOpFor(in.Op), dst, yr)
			}
			c.fin(in, dst)
		}

	case ir.OpShl, ir.OpLShr, ir.OpAShr:
		ext := map[ir.Op]int{ir.OpShl: 4, ir.OpLShr: 5, ir.OpAShr: 7}[in.Op]
		x := c.useAlloc(in.Args[0], rAX)
		if y := in.Args[1]; y.IsConst() {
			dst := c.def(in, rAX)
			if dst != x {
				c.a.movRegReg(dst, x)
			}
			if n := byte(y.Const & 63); n != 0 {
				c.a.shiftImm(ext, dst, n)
			}
			c.fin(in, dst)
		} else {
			c.ldInto(rCX, y)
			dst := c.def(in, rAX)
			if dst != x {
				c.a.movRegReg(dst, x)
			}
			c.a.shiftCL(ext, dst) // hardware masks CL to 6 bits, matching the VM's &63
			c.fin(in, dst)
		}

	case ir.OpSDiv:
		c.ldInto(rCX, in.Args[1])
		divL := c.trapLabel(c.trapDivL)
		ovfL := c.trapLabel(c.trapOvfL)
		c.a.testRegReg(rCX, rCX)
		c.a.jcc(ccE, divL)
		c.ldInto(rAX, in.Args[0])
		ok := c.a.label()
		c.a.aluRegImm32(aluCmp, rCX, -1)
		c.a.jcc(ccNE, ok)
		c.a.movRegImm64(rDX, 0x8000000000000000)
		c.a.aluRegReg(aluCmp, rAX, rDX)
		c.a.jcc(ccE, ovfL) // MinInt64 / -1 overflows
		c.a.bind(ok)
		c.a.cqo()
		c.a.idivReg(rCX)
		dst := c.def(in, rAX)
		if dst != rAX {
			c.a.movRegReg(dst, rAX)
		}
		c.fin(in, dst)

	case ir.OpSRem:
		c.ldInto(rCX, in.Args[1])
		divL := c.trapLabel(c.trapDivL)
		c.a.testRegReg(rCX, rCX)
		c.a.jcc(ccE, divL)
		c.ldInto(rAX, in.Args[0])
		ok, done := c.a.label(), c.a.label()
		c.a.aluRegImm32(aluCmp, rCX, -1)
		c.a.jcc(ccNE, ok)
		c.a.movRegImm64(rAX, 0) // n % -1 = 0 for all n (Go semantics; avoids IDIV #DE)
		c.a.jmp(done)
		c.a.bind(ok)
		c.a.cqo()
		c.a.idivReg(rCX)
		c.a.movRegReg(rAX, rDX)
		c.a.bind(done)
		dst := c.def(in, rAX)
		if dst != rAX {
			c.a.movRegReg(dst, rAX)
		}
		c.fin(in, dst)

	case ir.OpUDiv, ir.OpURem:
		c.ldInto(rCX, in.Args[1])
		divL := c.trapLabel(c.trapDivL)
		c.a.testRegReg(rCX, rCX)
		c.a.jcc(ccE, divL)
		c.ldInto(rAX, in.Args[0])
		c.a.movRegImm64(rDX, 0)
		c.a.divReg(rCX)
		res := rAX
		if in.Op == ir.OpURem {
			res = rDX
		}
		dst := c.def(in, res)
		if dst != res {
			c.a.movRegReg(dst, res)
		}
		c.fin(in, dst)

	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
		op := map[ir.Op]sseOp{ir.OpFAdd: sseAdd, ir.OpFSub: sseSub,
			ir.OpFMul: sseMul, ir.OpFDiv: sseDiv}[in.Op]
		x := c.useAllocX(in.Args[0], 0)
		y := c.useAllocX(in.Args[1], 1, x)
		dst := c.defX(in, 0, y)
		if dst != x {
			c.a.movsdRegReg(dst, x)
		}
		c.a.sseArith(op, dst, y)
		c.finX(in, dst)

	case ir.OpICmp:
		c.emitCmp(in.Args[0], in.Args[1])
		if c.fused[b.ID] && in == b.Instrs[len(b.Instrs)-1] {
			return nil // flags consumed directly by the CondBr
		}
		if c.selFuse[in.ID] {
			return nil // flags consumed by the following Select's CMOVcc
		}
		c.a.setcc(predCC(in.Pred), rAX)
		dst := c.def(in, rAX)
		c.a.movzxRegReg8(dst, rAX)
		c.fin(in, dst)

	case ir.OpFCmp:
		// Ordered float semantics: any comparison with NaN is false.
		switch in.Pred {
		case ir.Eq:
			x := c.useX(in.Args[0], 0)
			y := c.useX(in.Args[1], 1)
			c.a.ucomisd(x, y)
			c.a.setcc(ccNP, rCX)
			c.a.setcc(ccE, rAX)
			c.a.andRegReg8(rAX, rCX)
		case ir.Ne:
			x := c.useX(in.Args[0], 0)
			y := c.useX(in.Args[1], 1)
			c.a.ucomisd(x, y)
			c.a.setcc(ccP, rCX)
			c.a.setcc(ccNE, rAX)
			c.a.orRegReg8(rAX, rCX)
		case ir.SGt, ir.SGe:
			x := c.useX(in.Args[0], 0)
			y := c.useX(in.Args[1], 1)
			c.a.ucomisd(x, y)
			c.a.setcc(map[ir.Pred]byte{ir.SGt: ccA, ir.SGe: ccAE}[in.Pred], rAX)
		case ir.SLt, ir.SLe:
			// Swap operands so CF/ZF encode the answer NaN-correctly.
			x := c.useX(in.Args[1], 0)
			y := c.useX(in.Args[0], 1)
			c.a.ucomisd(x, y)
			c.a.setcc(map[ir.Pred]byte{ir.SLt: ccA, ir.SLe: ccAE}[in.Pred], rAX)
		default:
			return fmt.Errorf("asm: fcmp %v: %w", in.Pred, ErrUnsupported)
		}
		dst := c.def(in, rAX)
		c.a.movzxRegReg8(dst, rAX)
		c.fin(in, dst)

	case ir.OpSAddOvf, ir.OpSSubOvf, ir.OpSMulOvf:
		c.ldInto(rAX, in.Args[0])
		y := c.use(in.Args[1], rCX)
		switch in.Op {
		case ir.OpSAddOvf:
			c.a.aluRegReg(aluAdd, rAX, y)
		case ir.OpSSubOvf:
			c.a.aluRegReg(aluSub, rAX, y)
		default:
			c.a.imulRegReg(rAX, y)
		}
		c.a.setcc(ccO, rDX)
		c.a.movzxRegReg8(rDX, rDX)
		s := int(c.slot[in.ID])
		c.a.movMemReg(slotMem(s), rAX)
		c.a.movMemReg(slotMem(s+1), rDX)

	case ir.OpExtractValue:
		dst := c.def(in, rAX)
		c.a.movRegMem(dst, slotMem(int(c.slot[in.Args[0].ID])+int(in.Lit)))
		c.fin(in, dst)

	case ir.OpSExt:
		x := c.use(in.Args[0], rAX)
		dst := c.def(in, rAX)
		switch in.Args[0].Type {
		case ir.I1, ir.I8:
			c.a.movsxRegReg8(dst, x)
		case ir.I16:
			c.a.movsxRegReg16(dst, x)
		case ir.I32:
			c.a.movsxdRegReg(dst, x)
		default:
			if dst != x {
				c.a.movRegReg(dst, x)
			}
		}
		c.fin(in, dst)

	case ir.OpZExt:
		x := c.use(in.Args[0], rAX) // slots already hold canonical zero-extended bits
		dst := c.def(in, rAX)
		if dst != x {
			c.a.movRegReg(dst, x)
		}
		c.fin(in, dst)

	case ir.OpTrunc:
		x := c.use(in.Args[0], rAX)
		dst := c.def(in, rAX)
		switch in.Type {
		case ir.I1, ir.I8:
			c.a.movzxRegReg8(dst, x) // the VM truncates i1 with &0xff too
		case ir.I16:
			c.a.movzxRegReg16(dst, x)
		case ir.I32:
			c.a.movRegReg32(dst, x)
		default:
			if dst != x {
				c.a.movRegReg(dst, x)
			}
		}
		c.fin(in, dst)

	case ir.OpSIToFP:
		x := c.use(in.Args[0], rAX)
		dst := c.defX(in, 0)
		c.a.xorps(dst) // CVTSI2SD merges: break the false dep on dst
		c.a.cvtsi2sd(dst, x)
		c.finX(in, dst)

	case ir.OpFPToSI:
		x := c.useX(in.Args[0], 0)
		dst := c.def(in, rAX)
		c.a.cvttsd2si(dst, x) // CVTTSD2SI is exactly Go's int64(float64) on amd64
		c.fin(in, dst)

	case ir.OpLoad:
		w := int32(in.Type.Width())
		if w == 0 {
			return fmt.Errorf("asm: load of %v: %w", in.Type, ErrUnsupported)
		}
		// Store-to-load forwarding: a load straight after a store to the
		// same address value with matching width must see exactly the
		// stored bytes, so the memory access (and its fault check, which
		// the store already passed) is replaced by a register move. The
		// store itself still executes, keeping the memory image identical.
		if c.ra != nil && prev != nil && prev.Op == ir.OpStore &&
			prev.Args[0] == in.Args[0] && int32(prev.Args[1].Type.Width()) == w {
			v := prev.Args[1]
			if in.Type == ir.F64 {
				src := c.useX(v, 0)
				dst := c.defX(in, 0)
				if dst != src {
					c.a.movsdRegReg(dst, src)
				}
				c.finX(in, dst)
				return nil
			}
			src := c.use(v, rAX)
			dst := c.def(in, rAX)
			switch w {
			case 1:
				c.a.movzxRegReg8(dst, src)
			case 2:
				c.a.movzxRegReg16(dst, src)
			case 4:
				c.a.movRegReg32(dst, src)
			default:
				if dst != src {
					c.a.movRegReg(dst, src)
				}
			}
			c.fin(in, dst)
			return nil
		}
		c.ldInto(rAX, in.Args[0])
		if c.ra != nil {
			c.ra.clobber(rSI, rDI, r8)
		}
		fl := c.trapLabel(c.faultL)
		c.segTranslate(w, fl)
		dm := mem{base: rDX, index: rDI, scale: 1}
		if in.Type == ir.F64 {
			dst := c.defX(in, 0)
			c.a.movsdLoad(dst, dm)
			c.finX(in, dst)
			return nil
		}
		dst := c.def(in, rAX)
		switch w {
		case 1:
			c.a.movzxRegMem8(dst, dm)
		case 2:
			c.a.movzxRegMem16(dst, dm)
		case 4:
			c.a.movRegMem32(dst, dm)
		default:
			c.a.movRegMem(dst, dm)
		}
		c.fin(in, dst)

	case ir.OpStore:
		w := int32(in.Args[1].Type.Width())
		if w == 0 {
			return fmt.Errorf("asm: store of %v: %w", in.Args[1].Type, ErrUnsupported)
		}
		// The stored value must survive segTranslate; R9..R11 do.
		vr := -1
		if c.ra != nil {
			if p := c.ra.regOf(in.Args[1]); p == r9 || p == r10 || p == r11 {
				vr = p
			}
		}
		if vr < 0 {
			if c.ra != nil {
				c.ra.clobber(r9)
			}
			c.ldInto(r9, in.Args[1])
			vr = r9
		}
		c.ldInto(rAX, in.Args[0])
		if c.ra != nil {
			c.ra.clobber(rSI, rDI, r8)
		}
		fl := c.trapLabel(c.faultL)
		c.segTranslate(w, fl)
		dm := mem{base: rDX, index: rDI, scale: 1}
		switch w {
		case 1:
			c.a.movMemReg8(dm, vr)
		case 2:
			c.a.movMemReg16(dm, vr)
		case 4:
			c.a.movMemReg32(dm, vr)
		default:
			c.a.movMemReg(dm, vr)
		}

	case ir.OpGEP:
		x := c.useAlloc(in.Args[0], rAX)
		if idx := in.Args[1]; idx.IsConst() {
			dst := c.def(in, rAX)
			if dst != x {
				c.a.movRegReg(dst, x)
			}
			c.addImm64(dst, idx.Const*in.Lit+in.Lit2)
			c.fin(in, dst)
		} else if in.Lit == 0 {
			dst := c.def(in, rAX)
			if dst != x {
				c.a.movRegReg(dst, x)
			}
			c.addImm64(dst, in.Lit2)
			c.fin(in, dst)
		} else {
			iv := c.use(idx, rCX)
			scaled := iv
			if in.Lit != 1 {
				if s := int64(in.Lit); s >= math.MinInt32 && s <= math.MaxInt32 {
					c.a.imulRegRegImm32(rCX, iv, int32(s))
				} else {
					c.a.movRegImm64(rDX, in.Lit)
					if iv != rCX {
						c.a.movRegReg(rCX, iv)
					}
					c.a.imulRegReg(rCX, rDX)
				}
				scaled = rCX
			}
			dst := c.def(in, rAX, scaled)
			if dst != x {
				c.a.movRegReg(dst, x)
			}
			c.a.aluRegReg(aluAdd, dst, scaled)
			c.addImm64(dst, in.Lit2)
			c.fin(in, dst)
		}

	case ir.OpSelect:
		if in.Type == ir.Pair {
			return fmt.Errorf("asm: pair-typed select: %w", ErrUnsupported)
		}
		if cond := in.Args[0]; c.ra != nil && !cond.IsConst() && c.selFuse[cond.ID] {
			// The CMP was just emitted by the preceding ICmp; everything
			// between it and the CMOVcc must preserve flags (spills and
			// the NF loads are all MOVs).
			tv := c.useNF(in.Args[1], rAX)
			dst := c.def(in, rCX, tv)
			c.ldIntoNF(dst, in.Args[2])
			c.a.cmovcc(predCC(cond.Pred), dst, tv)
			c.fin(in, dst)
			return nil
		}
		tv := c.useAlloc(in.Args[1], rAX)
		cv := c.use(in.Args[0], rDX)
		dst := c.def(in, rCX, tv, cv)
		c.ldInto(dst, in.Args[2])
		c.a.testRegReg(cv, cv)
		c.a.cmovcc(ccNE, dst, tv) // cond != 0 → then value
		c.fin(in, dst)

	case ir.OpCall:
		if len(in.Args) > rt.MaxCallArgs {
			return fmt.Errorf("asm: call with %d args: %w", len(in.Args), ErrUnsupported)
		}
		for i, arg := range in.Args {
			r := c.use(arg, rAX)
			c.a.movMemReg(memBD(r13, ncArgs+int32(i)*8), r)
		}
		if c.ra != nil {
			// The extern observes and may rewrite any slot from Go, so
			// the frame must be canonical and every cached location is
			// stale after the exit.
			c.ra.flushAll()
			c.ra.invalidateAll()
		}
		c.a.movMemImm32(memBD(r13, ncExit), exitCall)
		c.a.movMemImm32(memBD(r13, ncA), int32(in.Callee))
		c.a.movMemImm32(memBD(r13, ncB), int32(len(in.Args)))
		dst := int32(0)
		if in.Type != ir.Void {
			dst = c.slot[in.ID] + 1
		}
		c.a.movMemImm32(memBD(r13, ncC), dst)
		cont := c.a.label()
		c.a.leaRIP(rAX, cont)
		c.a.movMemReg(memBD(r13, ncResume), rAX)
		c.a.ret()
		c.a.bind(cont)

	default:
		return fmt.Errorf("asm: op %v: %w", in.Op, ErrUnsupported)
	}
	return nil
}

func aluOpFor(op ir.Op) aluOp {
	switch op {
	case ir.OpAdd:
		return aluAdd
	case ir.OpSub:
		return aluSub
	case ir.OpAnd:
		return aluAnd
	case ir.OpOr:
		return aluOr
	}
	return aluXor
}

func (c *compiler) emitTerm(b *ir.Block, next *ir.Block) error {
	t := b.Term
	if t == nil {
		return fmt.Errorf("asm: block without terminator: %w", ErrUnsupported)
	}
	if c.ra != nil {
		c.ra.consume(t)
	}
	switch t.Op {
	case ir.OpBr:
		if c.ra != nil {
			c.ra.endBlock()
		}
		c.emitMoves(c.phiMoves(b))
		if t.Targets[0] != next {
			c.a.jmp(c.blockL[t.Targets[0].ID])
		}

	case ir.OpCondBr:
		thenB, elseB := t.Targets[0], t.Targets[1]
		thenL, elseL := c.blockL[thenB.ID], c.blockL[elseB.ID]
		var cc byte
		cv := -1
		if c.fused[b.ID] {
			// Flags were set by the CMP at the end of the block; the
			// flush and φ-moves below use only MOV encodings so they
			// survive.
			cc = predCC(b.Instrs[len(b.Instrs)-1].Pred)
		} else {
			// Fetch before the flush: endBlock may drop the mapping of a
			// dead condition value, but the register contents survive.
			cv = c.use(t.Args[0], rDX)
		}
		if c.ra != nil {
			c.ra.endBlock()
		}
		c.emitMoves(c.phiMoves(b))
		if cv >= 0 {
			c.a.testRegReg(cv, cv)
			cc = ccNE // taken when cond != 0
		}
		switch {
		case elseB == next:
			c.a.jcc(cc, thenL)
		case thenB == next:
			c.a.jcc(cc^1, elseL) // inverted condition code
		default:
			c.a.jcc(cc, thenL)
			c.a.jmp(elseL)
		}

	case ir.OpRet:
		r := c.use(t.Args[0], rAX)
		c.a.movMemReg(memBD(r13, ncC), r)
		if c.ra != nil {
			c.ra.endBlock()
		}
		c.a.movMemImm32(memBD(r13, ncExit), exitRet)
		c.a.ret()

	case ir.OpRetVoid:
		if c.ra != nil {
			c.ra.endBlock()
		}
		c.a.movMemImm32(memBD(r13, ncC), 0)
		c.a.movMemImm32(memBD(r13, ncExit), exitRet)
		c.a.ret()

	default:
		return fmt.Errorf("asm: terminator %v: %w", t.Op, ErrUnsupported)
	}
	return nil
}

// phiMoves collects the parallel copies this block owes its successors'
// φ-nodes. Critical edges were split, so emitting the union for all
// successors on every exit is sound: a successor with φ-nodes has this
// block as its only predecessor.
func (c *compiler) phiMoves(b *ir.Block) []pmove {
	var moves []pmove
	for _, s := range b.Succs() {
		for _, phi := range s.Phis() {
			for i, in := range phi.Incoming {
				if in != b {
					continue
				}
				dst := c.slot[phi.ID]
				if arg := phi.Args[i]; arg.IsConst() {
					moves = append(moves, pmove{dst: dst, src: -1, imm: arg.Const})
				} else if c.slot[arg.ID] != dst {
					moves = append(moves, pmove{dst: dst, src: c.slot[arg.ID]})
				}
			}
		}
	}
	return moves
}

// emitMoves sequentializes the parallel φ-copies: repeatedly emit moves
// whose destination no other pending move still reads; on a cycle, park
// one destination in the scratch slot and redirect its readers. Every
// emitted instruction is a plain MOV so fused CMP flags survive.
func (c *compiler) emitMoves(moves []pmove) {
	for len(moves) > 0 {
		progress := false
		for i := 0; i < len(moves); i++ {
			m := moves[i]
			read := false
			for j, o := range moves {
				if j != i && o.src == m.dst {
					read = true
					break
				}
			}
			if read {
				continue
			}
			c.emitMove(m)
			moves = append(moves[:i], moves[i+1:]...)
			i--
			progress = true
		}
		if !progress {
			m0 := moves[0]
			c.emitMove(pmove{dst: c.scratch, src: m0.dst})
			for j := range moves {
				if moves[j].src == m0.dst {
					moves[j].src = c.scratch
				}
			}
		}
	}
}

func (c *compiler) emitMove(m pmove) {
	if m.src < 0 {
		s := int64(m.imm)
		if s >= math.MinInt32 && s <= math.MaxInt32 {
			c.a.movMemImm32(slotMem(int(m.dst)), int32(s))
		} else {
			c.a.movRegImm64(rAX, m.imm) // wide imm → MOVABS, flag-safe
			c.a.movMemReg(slotMem(int(m.dst)), rAX)
		}
		return
	}
	c.a.movRegMem(rAX, slotMem(int(m.src)))
	c.a.movMemReg(slotMem(int(m.dst)), rAX)
}

// emitStubs binds the shared trap and fault exits plus the per-site side
// exits that spill dirty registers first. The shared stubs write the
// exit record and return to the trampoline; the Go driver turns them
// into rt.Throw / a bounds panic on the existing unwind paths.
func (c *compiler) emitStubs() {
	c.a.bind(c.trapOvfL)
	c.a.movMemImm32(memBD(r13, ncExit), exitTrap)
	c.a.movMemImm32(memBD(r13, ncA), int32(rt.TrapOverflow))
	c.a.ret()
	c.a.bind(c.trapDivL)
	c.a.movMemImm32(memBD(r13, ncExit), exitTrap)
	c.a.movMemImm32(memBD(r13, ncA), int32(rt.TrapDivZero))
	c.a.ret()
	c.a.bind(c.faultL)
	c.a.movMemReg(memBD(r13, ncA), rAX)
	c.a.movMemImm32(memBD(r13, ncExit), exitFault)
	c.a.ret()
	// Side exits spill, then chain to the shared stubs above. The fault
	// path's RAX (faulting address) is only read, never written, here.
	for _, se := range c.sideExits {
		c.a.bind(se.label)
		for _, s := range se.stores {
			if s.phys >= xmmBase {
				c.a.movsdStore(slotMem(int(s.slot)), int(s.phys)-xmmBase)
			} else {
				c.a.movMemReg(slotMem(int(s.slot)), int(s.phys))
			}
		}
		c.a.jmp(se.shared)
	}
}
