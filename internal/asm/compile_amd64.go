//go:build amd64 && (linux || darwin)

package asm

import (
	"fmt"
	"math"

	"aqe/internal/ir"
	"aqe/internal/rt"
)

// Fixed layout of nativeCtx as seen from generated code (asserted against
// the Go struct in run_amd64.go's init).
const (
	ncRegs   = 0  // *uint64: register-file base (loaded into R12)
	ncSegPtr = 8  // *[]byte: segment-table base (loaded into R15)
	ncSegLen = 16 // uint64: segment count (loaded into RBX)
	ncResume = 24 // uint64: code address to (re-)enter at
	ncExit   = 32 // uint64: exit code (exitRet..exitFault)
	ncA      = 40 // exit operand: callee index / trap code / faulting address
	ncB      = 48 // exit operand: extern argc
	ncC      = 56 // exit operand: return value / result slot + 1
	ncArgs   = 64 // [16]uint64: staged extern-call arguments
)

// Exit codes written to ncExit before returning to the trampoline.
const (
	exitRet   = 0 // function returned; ncC = result bits
	exitCall  = 1 // extern call; ncA = callee, ncB = argc, ncC = result slot+1, ncResume set
	exitTrap  = 2 // rt trap; ncA = rt.TrapCode
	exitFault = 3 // segmented-memory fault; ncA = faulting address
)

// pmove is one pending φ-move: register-file slot dst receives slot src,
// or the immediate imm when src < 0.
type pmove struct {
	dst, src int32
	imm      uint64
}

// compiler is the per-function state of the single emission pass.
type compiler struct {
	a        *asmBuf
	f        *ir.Function
	slot     []int32 // value ID → register-file slot (-1 = none / constant)
	uses     []int32 // value ID → operand use count
	fused    []bool  // block ID → terminator consumes the flags of the last instr
	blockL   []int   // block ID → label
	scratch  int32   // cycle-breaking slot for φ-moves
	numSlots int

	trapOvfL, trapDivL, faultL int
}

// Compile lowers an IR function to executable amd64 machine code. Like the
// unoptimized closure backend it mutates f in place (critical-edge
// splitting only); callers that need the original intact pass a clone.
// Functions using an op the templates do not cover return an error
// wrapping ErrUnsupported and the engine falls back to the closure tiers.
func Compile(f *ir.Function) (*Code, error) {
	f.SplitCriticalEdges()
	c := &compiler{f: f, a: newAsmBuf(64 + f.NumInstrs()*48)}
	if err := c.assignSlots(); err != nil {
		return nil, err
	}
	c.analyze()
	c.trapOvfL = c.a.label()
	c.trapDivL = c.a.label()
	c.faultL = c.a.label()
	c.blockL = make([]int, len(f.Blocks))
	for i := range f.Blocks {
		c.blockL[i] = c.a.label()
	}
	for i, b := range f.Blocks {
		if err := c.emitBlock(i, b); err != nil {
			return nil, err
		}
	}
	c.emitStubs()
	return newCode(c.a.finish(), c.numSlots, len(f.Params))
}

// assignSlots gives every SSA value that needs materializing a register-
// file slot: parameters first (matching the calling convention), then
// instruction results in program order. Pair values occupy two adjacent
// slots ({value, flag}); constants are encoded as immediates and get none.
func (c *compiler) assignSlots() error {
	c.slot = make([]int32, c.f.NumValues())
	for i := range c.slot {
		c.slot[i] = -1
	}
	next := int32(0)
	for _, p := range c.f.Params {
		if p.Type == ir.Pair {
			return fmt.Errorf("asm: pair-typed parameter: %w", ErrUnsupported)
		}
		c.slot[p.ID] = next
		next++
	}
	for _, b := range c.f.Blocks {
		for _, in := range b.Instrs {
			if in.Type == ir.Void {
				continue
			}
			c.slot[in.ID] = next
			if in.Type == ir.Pair {
				next += 2
			} else {
				next++
			}
		}
	}
	c.scratch = next
	next++
	c.numSlots = int(next)
	return nil
}

// analyze counts operand uses and decides, per block, whether the
// terminator can consume the condition flags of the block's last
// instruction directly (ICmp feeding CondBr with no other use), skipping
// the SETcc materialization.
func (c *compiler) analyze() {
	c.uses = make([]int32, c.f.NumValues())
	for _, b := range c.f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				c.uses[a.ID]++
			}
		}
		if b.Term != nil {
			for _, a := range b.Term.Args {
				c.uses[a.ID]++
			}
		}
	}
	c.fused = make([]bool, len(c.f.Blocks))
	for _, b := range c.f.Blocks {
		t := b.Term
		if t == nil || t.Op != ir.OpCondBr || len(b.Instrs) == 0 {
			continue
		}
		last := b.Instrs[len(b.Instrs)-1]
		c.fused[b.ID] = last.Op == ir.OpICmp && t.Args[0] == last && c.uses[last.ID] == 1
	}
}

// ld loads value v into GP register r (immediate or slot read). May
// clobber condition flags (constant zero is XOR), so it must not be used
// between a fused CMP and its Jcc.
func (c *compiler) ld(r int, v *ir.Value) {
	if v.IsConst() {
		c.a.movRegImm64(r, v.Const)
		return
	}
	c.a.movRegMem(r, slotMem(int(c.slot[v.ID])))
}

// st stores GP register r into v's slot.
func (c *compiler) st(v *ir.Value, r int) {
	c.a.movMemReg(slotMem(int(c.slot[v.ID])), r)
}

// fld loads an f64 value into XMM register x.
func (c *compiler) fld(x int, v *ir.Value) {
	if v.IsConst() {
		c.a.movRegImm64(rAX, v.Const)
		c.a.movqXR(x, rAX)
		return
	}
	c.a.movsdLoad(x, slotMem(int(c.slot[v.ID])))
}

// imm32 reports whether v is a constant representable as a sign-extended
// 32-bit immediate.
func imm32(v *ir.Value) (int32, bool) {
	if !v.IsConst() {
		return 0, false
	}
	s := int64(v.Const)
	if s < math.MinInt32 || s > math.MaxInt32 {
		return 0, false
	}
	return int32(s), true
}

// addImm64 adds a 64-bit immediate to r (clobbers RDX for wide values).
func (c *compiler) addImm64(r int, v uint64) {
	if v == 0 {
		return
	}
	s := int64(v)
	if s >= math.MinInt32 && s <= math.MaxInt32 {
		c.a.aluRegImm32(aluAdd, r, int32(s))
		return
	}
	c.a.movRegImm64(rDX, v)
	c.a.aluRegReg(aluAdd, r, rDX)
}

// predCC maps a comparison predicate to the condition code that is true
// after CMP x, y.
func predCC(p ir.Pred) byte {
	switch p {
	case ir.Eq:
		return ccE
	case ir.Ne:
		return ccNE
	case ir.SLt:
		return ccL
	case ir.SLe:
		return ccLE
	case ir.SGt:
		return ccG
	case ir.SGe:
		return ccGE
	case ir.ULt:
		return ccB
	case ir.ULe:
		return ccBE
	case ir.UGt:
		return ccA
	}
	return ccAE // UGe
}

func (c *compiler) emitBlock(i int, b *ir.Block) error {
	c.a.bind(c.blockL[b.ID])
	for _, in := range b.Instrs {
		if in.Op == ir.OpPhi {
			if in.Type == ir.Pair {
				return fmt.Errorf("asm: pair-typed phi: %w", ErrUnsupported)
			}
			continue // materialized by predecessor φ-moves
		}
		if err := c.emitInstr(in, b); err != nil {
			return err
		}
	}
	var next *ir.Block
	if i+1 < len(c.f.Blocks) {
		next = c.f.Blocks[i+1]
	}
	return c.emitTerm(b, next)
}

// emitCmp emits CMP for x against y (immediate when possible), setting
// the condition flags for predCC.
func (c *compiler) emitCmp(x, y *ir.Value) {
	c.ld(rAX, x)
	if v, ok := imm32(y); ok {
		c.a.aluRegImm32(aluCmp, rAX, v)
		return
	}
	c.ld(rCX, y)
	c.a.aluRegReg(aluCmp, rAX, rCX)
}

// segTranslate expects a segmented address in RAX and emits the
// translation sequence: bounds-check the segment index against RBX, load
// the segment's data pointer into RDX and length into RSI from the table
// at R15, extract the 48-bit offset into RDI, and bounds-check
// offset+width against the length. Faults jump to the fault stub with the
// address still in RAX. Clobbers RCX, RDX, RSI, RDI, R8.
func (c *compiler) segTranslate(width int32) {
	c.a.movRegReg(rCX, rAX)
	c.a.shiftImm(5, rCX, 48) // shr: segment index
	c.a.aluRegReg(aluCmp, rCX, rBX)
	c.a.jcc(ccAE, c.faultL)
	c.a.leaRegMem(rCX, mem{base: rCX, index: rCX, scale: 2})          // ×3: slice headers are 24 bytes
	c.a.movRegMem(rDX, mem{base: r15, index: rCX, scale: 8})          // data pointer
	c.a.movRegMem(rSI, mem{base: r15, index: rCX, scale: 8, disp: 8}) // length
	c.a.movRegReg(rDI, rAX)
	c.a.shiftImm(4, rDI, 16) // shl
	c.a.shiftImm(5, rDI, 16) // shr: 48-bit offset
	c.a.leaRegMem(r8, memBD(rDI, width))
	c.a.aluRegReg(aluCmp, r8, rSI)
	c.a.jcc(ccA, c.faultL)
}

func (c *compiler) emitInstr(in *ir.Value, b *ir.Block) error {
	switch in.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor:
		c.ld(rAX, in.Args[0])
		if v, ok := imm32(in.Args[1]); ok {
			if in.Op == ir.OpMul {
				c.a.imulRegRegImm32(rAX, rAX, v)
			} else {
				c.a.aluRegImm32(aluOpFor(in.Op), rAX, v)
			}
		} else {
			c.ld(rCX, in.Args[1])
			if in.Op == ir.OpMul {
				c.a.imulRegReg(rAX, rCX)
			} else {
				c.a.aluRegReg(aluOpFor(in.Op), rAX, rCX)
			}
		}
		c.st(in, rAX)

	case ir.OpShl, ir.OpLShr, ir.OpAShr:
		ext := map[ir.Op]int{ir.OpShl: 4, ir.OpLShr: 5, ir.OpAShr: 7}[in.Op]
		c.ld(rAX, in.Args[0])
		if y := in.Args[1]; y.IsConst() {
			if n := byte(y.Const & 63); n != 0 {
				c.a.shiftImm(ext, rAX, n)
			}
		} else {
			c.ld(rCX, y)
			c.a.shiftCL(ext, rAX) // hardware masks CL to 6 bits, matching the VM's &63
		}
		c.st(in, rAX)

	case ir.OpSDiv:
		c.ld(rCX, in.Args[1])
		c.a.testRegReg(rCX, rCX)
		c.a.jcc(ccE, c.trapDivL)
		c.ld(rAX, in.Args[0])
		ok := c.a.label()
		c.a.aluRegImm32(aluCmp, rCX, -1)
		c.a.jcc(ccNE, ok)
		c.a.movRegImm64(rDX, 0x8000000000000000)
		c.a.aluRegReg(aluCmp, rAX, rDX)
		c.a.jcc(ccE, c.trapOvfL) // MinInt64 / -1 overflows
		c.a.bind(ok)
		c.a.cqo()
		c.a.idivReg(rCX)
		c.st(in, rAX)

	case ir.OpSRem:
		c.ld(rCX, in.Args[1])
		c.a.testRegReg(rCX, rCX)
		c.a.jcc(ccE, c.trapDivL)
		c.ld(rAX, in.Args[0])
		ok, done := c.a.label(), c.a.label()
		c.a.aluRegImm32(aluCmp, rCX, -1)
		c.a.jcc(ccNE, ok)
		c.a.movRegImm64(rAX, 0) // n % -1 = 0 for all n (Go semantics; avoids IDIV #DE)
		c.a.jmp(done)
		c.a.bind(ok)
		c.a.cqo()
		c.a.idivReg(rCX)
		c.a.movRegReg(rAX, rDX)
		c.a.bind(done)
		c.st(in, rAX)

	case ir.OpUDiv, ir.OpURem:
		c.ld(rCX, in.Args[1])
		c.a.testRegReg(rCX, rCX)
		c.a.jcc(ccE, c.trapDivL)
		c.ld(rAX, in.Args[0])
		c.a.movRegImm64(rDX, 0)
		c.a.divReg(rCX)
		if in.Op == ir.OpUDiv {
			c.st(in, rAX)
		} else {
			c.st(in, rDX)
		}

	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
		op := map[ir.Op]sseOp{ir.OpFAdd: sseAdd, ir.OpFSub: sseSub,
			ir.OpFMul: sseMul, ir.OpFDiv: sseDiv}[in.Op]
		c.fld(0, in.Args[0])
		c.fld(1, in.Args[1])
		c.a.sseArith(op, 0, 1)
		c.a.movsdStore(slotMem(int(c.slot[in.ID])), 0)

	case ir.OpICmp:
		c.emitCmp(in.Args[0], in.Args[1])
		if c.fused[b.ID] && in == b.Instrs[len(b.Instrs)-1] {
			return nil // flags consumed directly by the CondBr
		}
		c.a.setcc(predCC(in.Pred), rAX)
		c.a.movzxRegReg8(rAX, rAX)
		c.st(in, rAX)

	case ir.OpFCmp:
		// Ordered float semantics: any comparison with NaN is false.
		switch in.Pred {
		case ir.Eq:
			c.fld(0, in.Args[0])
			c.fld(1, in.Args[1])
			c.a.ucomisd(0, 1)
			c.a.setcc(ccNP, rCX)
			c.a.setcc(ccE, rAX)
			c.a.andRegReg8(rAX, rCX)
		case ir.Ne:
			c.fld(0, in.Args[0])
			c.fld(1, in.Args[1])
			c.a.ucomisd(0, 1)
			c.a.setcc(ccP, rCX)
			c.a.setcc(ccNE, rAX)
			c.a.orRegReg8(rAX, rCX)
		case ir.SGt, ir.SGe:
			c.fld(0, in.Args[0])
			c.fld(1, in.Args[1])
			c.a.ucomisd(0, 1)
			c.a.setcc(map[ir.Pred]byte{ir.SGt: ccA, ir.SGe: ccAE}[in.Pred], rAX)
		case ir.SLt, ir.SLe:
			// Swap operands so CF/ZF encode the answer NaN-correctly.
			c.fld(0, in.Args[1])
			c.fld(1, in.Args[0])
			c.a.ucomisd(0, 1)
			c.a.setcc(map[ir.Pred]byte{ir.SLt: ccA, ir.SLe: ccAE}[in.Pred], rAX)
		default:
			return fmt.Errorf("asm: fcmp %v: %w", in.Pred, ErrUnsupported)
		}
		c.a.movzxRegReg8(rAX, rAX)
		c.st(in, rAX)

	case ir.OpSAddOvf, ir.OpSSubOvf, ir.OpSMulOvf:
		c.ld(rAX, in.Args[0])
		c.ld(rCX, in.Args[1])
		switch in.Op {
		case ir.OpSAddOvf:
			c.a.aluRegReg(aluAdd, rAX, rCX)
		case ir.OpSSubOvf:
			c.a.aluRegReg(aluSub, rAX, rCX)
		default:
			c.a.imulRegReg(rAX, rCX)
		}
		c.a.setcc(ccO, rDX)
		c.a.movzxRegReg8(rDX, rDX)
		s := int(c.slot[in.ID])
		c.a.movMemReg(slotMem(s), rAX)
		c.a.movMemReg(slotMem(s+1), rDX)

	case ir.OpExtractValue:
		c.a.movRegMem(rAX, slotMem(int(c.slot[in.Args[0].ID])+int(in.Lit)))
		c.st(in, rAX)

	case ir.OpSExt:
		c.ld(rAX, in.Args[0])
		switch in.Args[0].Type {
		case ir.I1, ir.I8:
			c.a.movsxRegReg8(rAX, rAX)
		case ir.I16:
			c.a.movsxRegReg16(rAX, rAX)
		case ir.I32:
			c.a.movsxdRegReg(rAX, rAX)
		}
		c.st(in, rAX)

	case ir.OpZExt:
		c.ld(rAX, in.Args[0]) // slots already hold canonical zero-extended bits
		c.st(in, rAX)

	case ir.OpTrunc:
		c.ld(rAX, in.Args[0])
		switch in.Type {
		case ir.I1, ir.I8:
			c.a.movzxRegReg8(rAX, rAX) // the VM truncates i1 with &0xff too
		case ir.I16:
			c.a.movzxRegReg16(rAX, rAX)
		case ir.I32:
			c.a.movRegReg32(rAX, rAX)
		}
		c.st(in, rAX)

	case ir.OpSIToFP:
		c.ld(rAX, in.Args[0])
		c.a.cvtsi2sd(0, rAX)
		c.a.movsdStore(slotMem(int(c.slot[in.ID])), 0)

	case ir.OpFPToSI:
		c.fld(0, in.Args[0])
		c.a.cvttsd2si(rAX, 0) // CVTTSD2SI is exactly Go's int64(float64) on amd64
		c.st(in, rAX)

	case ir.OpLoad:
		w := int32(in.Type.Width())
		if w == 0 {
			return fmt.Errorf("asm: load of %v: %w", in.Type, ErrUnsupported)
		}
		c.ld(rAX, in.Args[0])
		c.segTranslate(w)
		dm := mem{base: rDX, index: rDI, scale: 1}
		switch w {
		case 1:
			c.a.movzxRegMem8(rAX, dm)
		case 2:
			c.a.movzxRegMem16(rAX, dm)
		case 4:
			c.a.movRegMem32(rAX, dm)
		default:
			c.a.movRegMem(rAX, dm)
		}
		c.st(in, rAX)

	case ir.OpStore:
		w := int32(in.Args[1].Type.Width())
		if w == 0 {
			return fmt.Errorf("asm: store of %v: %w", in.Args[1].Type, ErrUnsupported)
		}
		c.ld(r9, in.Args[1])
		c.ld(rAX, in.Args[0])
		c.segTranslate(w)
		dm := mem{base: rDX, index: rDI, scale: 1}
		switch w {
		case 1:
			c.a.movMemReg8(dm, r9)
		case 2:
			c.a.movMemReg16(dm, r9)
		case 4:
			c.a.movMemReg32(dm, r9)
		default:
			c.a.movMemReg(dm, r9)
		}

	case ir.OpGEP:
		c.ld(rAX, in.Args[0])
		if idx := in.Args[1]; idx.IsConst() {
			c.addImm64(rAX, idx.Const*in.Lit+in.Lit2)
		} else {
			if in.Lit != 0 {
				c.ld(rCX, idx)
				if in.Lit != 1 {
					if s := int64(in.Lit); s >= math.MinInt32 && s <= math.MaxInt32 {
						c.a.imulRegRegImm32(rCX, rCX, int32(s))
					} else {
						c.a.movRegImm64(rDX, in.Lit)
						c.a.imulRegReg(rCX, rDX)
					}
				}
				c.a.aluRegReg(aluAdd, rAX, rCX)
			}
			c.addImm64(rAX, in.Lit2)
		}
		c.st(in, rAX)

	case ir.OpSelect:
		if in.Type == ir.Pair {
			return fmt.Errorf("asm: pair-typed select: %w", ErrUnsupported)
		}
		c.ld(rAX, in.Args[1])
		c.ld(rCX, in.Args[2])
		c.ld(rDX, in.Args[0])
		c.a.testRegReg(rDX, rDX)
		c.a.cmovcc(ccE, rAX, rCX) // cond == 0 → else value
		c.st(in, rAX)

	case ir.OpCall:
		if len(in.Args) > rt.MaxCallArgs {
			return fmt.Errorf("asm: call with %d args: %w", len(in.Args), ErrUnsupported)
		}
		for i, arg := range in.Args {
			c.ld(rAX, arg)
			c.a.movMemReg(memBD(r13, ncArgs+int32(i)*8), rAX)
		}
		c.a.movMemImm32(memBD(r13, ncExit), exitCall)
		c.a.movMemImm32(memBD(r13, ncA), int32(in.Callee))
		c.a.movMemImm32(memBD(r13, ncB), int32(len(in.Args)))
		dst := int32(0)
		if in.Type != ir.Void {
			dst = c.slot[in.ID] + 1
		}
		c.a.movMemImm32(memBD(r13, ncC), dst)
		cont := c.a.label()
		c.a.leaRIP(rAX, cont)
		c.a.movMemReg(memBD(r13, ncResume), rAX)
		c.a.ret()
		c.a.bind(cont)

	default:
		return fmt.Errorf("asm: op %v: %w", in.Op, ErrUnsupported)
	}
	return nil
}

func aluOpFor(op ir.Op) aluOp {
	switch op {
	case ir.OpAdd:
		return aluAdd
	case ir.OpSub:
		return aluSub
	case ir.OpAnd:
		return aluAnd
	case ir.OpOr:
		return aluOr
	}
	return aluXor
}

func (c *compiler) emitTerm(b *ir.Block, next *ir.Block) error {
	t := b.Term
	if t == nil {
		return fmt.Errorf("asm: block without terminator: %w", ErrUnsupported)
	}
	switch t.Op {
	case ir.OpBr:
		c.emitMoves(c.phiMoves(b))
		if t.Targets[0] != next {
			c.a.jmp(c.blockL[t.Targets[0].ID])
		}

	case ir.OpCondBr:
		thenB, elseB := t.Targets[0], t.Targets[1]
		thenL, elseL := c.blockL[thenB.ID], c.blockL[elseB.ID]
		var cc byte
		if c.fused[b.ID] {
			// Flags were set by the CMP at the end of the block; the
			// φ-moves below use only MOV encodings so they survive.
			cc = predCC(b.Instrs[len(b.Instrs)-1].Pred)
		} else {
			c.ld(r10, t.Args[0])
		}
		c.emitMoves(c.phiMoves(b))
		if !c.fused[b.ID] {
			c.a.testRegReg(r10, r10)
			cc = ccNE // taken when cond != 0
		}
		switch {
		case elseB == next:
			c.a.jcc(cc, thenL)
		case thenB == next:
			c.a.jcc(cc^1, elseL) // inverted condition code
		default:
			c.a.jcc(cc, thenL)
			c.a.jmp(elseL)
		}

	case ir.OpRet:
		c.ld(rAX, t.Args[0])
		c.a.movMemReg(memBD(r13, ncC), rAX)
		c.a.movMemImm32(memBD(r13, ncExit), exitRet)
		c.a.ret()

	case ir.OpRetVoid:
		c.a.movMemImm32(memBD(r13, ncC), 0)
		c.a.movMemImm32(memBD(r13, ncExit), exitRet)
		c.a.ret()

	default:
		return fmt.Errorf("asm: terminator %v: %w", t.Op, ErrUnsupported)
	}
	return nil
}

// phiMoves collects the parallel copies this block owes its successors'
// φ-nodes. Critical edges were split, so emitting the union for all
// successors on every exit is sound: a successor with φ-nodes has this
// block as its only predecessor.
func (c *compiler) phiMoves(b *ir.Block) []pmove {
	var moves []pmove
	for _, s := range b.Succs() {
		for _, phi := range s.Phis() {
			for i, in := range phi.Incoming {
				if in != b {
					continue
				}
				dst := c.slot[phi.ID]
				if arg := phi.Args[i]; arg.IsConst() {
					moves = append(moves, pmove{dst: dst, src: -1, imm: arg.Const})
				} else if c.slot[arg.ID] != dst {
					moves = append(moves, pmove{dst: dst, src: c.slot[arg.ID]})
				}
			}
		}
	}
	return moves
}

// emitMoves sequentializes the parallel φ-copies: repeatedly emit moves
// whose destination no other pending move still reads; on a cycle, park
// one destination in the scratch slot and redirect its readers. Every
// emitted instruction is a plain MOV so fused CMP flags survive.
func (c *compiler) emitMoves(moves []pmove) {
	for len(moves) > 0 {
		progress := false
		for i := 0; i < len(moves); i++ {
			m := moves[i]
			read := false
			for j, o := range moves {
				if j != i && o.src == m.dst {
					read = true
					break
				}
			}
			if read {
				continue
			}
			c.emitMove(m)
			moves = append(moves[:i], moves[i+1:]...)
			i--
			progress = true
		}
		if !progress {
			m0 := moves[0]
			c.emitMove(pmove{dst: c.scratch, src: m0.dst})
			for j := range moves {
				if moves[j].src == m0.dst {
					moves[j].src = c.scratch
				}
			}
		}
	}
}

func (c *compiler) emitMove(m pmove) {
	if m.src < 0 {
		s := int64(m.imm)
		if s >= math.MinInt32 && s <= math.MaxInt32 {
			c.a.movMemImm32(slotMem(int(m.dst)), int32(s))
		} else {
			c.a.movRegImm64(rAX, m.imm) // wide imm → MOVABS, flag-safe
			c.a.movMemReg(slotMem(int(m.dst)), rAX)
		}
		return
	}
	c.a.movRegMem(rAX, slotMem(int(m.src)))
	c.a.movMemReg(slotMem(int(m.dst)), rAX)
}

// emitStubs binds the shared trap and fault exits. They write the exit
// record and return to the trampoline; the Go driver turns them into
// rt.Throw / a bounds panic on the existing unwind paths.
func (c *compiler) emitStubs() {
	c.a.bind(c.trapOvfL)
	c.a.movMemImm32(memBD(r13, ncExit), exitTrap)
	c.a.movMemImm32(memBD(r13, ncA), int32(rt.TrapOverflow))
	c.a.ret()
	c.a.bind(c.trapDivL)
	c.a.movMemImm32(memBD(r13, ncExit), exitTrap)
	c.a.movMemImm32(memBD(r13, ncA), int32(rt.TrapDivZero))
	c.a.ret()
	c.a.bind(c.faultL)
	c.a.movMemReg(memBD(r13, ncA), rAX)
	c.a.movMemImm32(memBD(r13, ncExit), exitFault)
	c.a.ret()
}
