package asm_test

import (
	"fmt"
	"math"
	"testing"

	"aqe/internal/asm"
	"aqe/internal/ir"
	"aqe/internal/ir/interp"
	"aqe/internal/rt"
)

// run executes fn both natively and in the SSA interpreter with identical
// fresh memories, returning (result, trap error, recovered panic) plus the
// final memory images for comparison.
type outcome struct {
	res      uint64
	err      error
	panicked bool
	mem      []byte
}

func runOne(f *ir.Function, args []uint64, seed []byte, funcs func(*rt.Memory) []rt.Func, native bool, opts asm.Options) (o outcome) {
	mem := rt.NewMemory()
	var base uint64
	if seed != nil {
		data := make([]byte, len(seed))
		copy(data, seed)
		base = mem.AddSegment(data)
	}
	ctx := &rt.Ctx{Mem: mem}
	if funcs != nil {
		ctx.Funcs = funcs(mem)
	}
	callArgs := make([]uint64, len(args))
	for i, a := range args {
		callArgs[i] = a
		if a == segBaseToken {
			callArgs[i] = base
		}
	}
	defer func() {
		if r := recover(); r != nil {
			o.panicked = true
		}
		if seed != nil {
			o.mem = mem.Bytes(base, len(seed))
		}
	}()
	if native {
		code, err := asm.CompileOpts(f.Clone(), opts)
		if err != nil {
			panic(fmt.Sprintf("asm: compile: %v", err))
		}
		o.err = rt.CatchTrap(func() { o.res = code.Run(ctx, callArgs) })
	} else {
		o.err = rt.CatchTrap(func() { o.res = interp.Run(f, ctx, callArgs) })
	}
	return o
}

// backendVariants runs every native differential against both the
// register-allocating backend (default) and the slot-per-op baseline.
var backendVariants = []struct {
	name string
	opts asm.Options
}{
	{"regalloc", asm.Options{}},
	{"slots", asm.Options{NoRegAlloc: true}},
}

// segBaseToken in an argument list is replaced by the base address of the
// seeded segment (fresh per run, but deterministically equal across the
// native and interpreted runs).
const segBaseToken = 0xfeedfacecafef00d

func diff(t *testing.T, name string, f *ir.Function, args []uint64, seed []byte, funcs func(*rt.Memory) []rt.Func) {
	t.Helper()
	want := runOne(f, args, seed, funcs, false, asm.Options{})
	for _, bv := range backendVariants {
		got := runOne(f, args, seed, funcs, true, bv.opts)
		if want.panicked != got.panicked {
			t.Fatalf("%s/%s%v: native panicked=%v, interp panicked=%v", name, bv.name, args, got.panicked, want.panicked)
		}
		if (want.err == nil) != (got.err == nil) || (want.err != nil && want.err.Error() != got.err.Error()) {
			t.Fatalf("%s/%s%v: native err=%v, interp err=%v", name, bv.name, args, got.err, want.err)
		}
		if !want.panicked && want.err == nil && got.res != want.res {
			t.Fatalf("%s/%s%v: native=%#x interp=%#x", name, bv.name, args, got.res, want.res)
		}
		if string(got.mem) != string(want.mem) {
			t.Fatalf("%s/%s%v: native and interp memory images differ", name, bv.name, args)
		}
	}
}

var i64Grid = []uint64{
	0, 1, 2, 3, 7, 63, 64, 65, 100, 1000000007,
	uint64(math.MaxInt64), uint64(math.MaxInt64 - 1),
	1 << 32, 1 << 47, 1<<48 + 5,
	^uint64(0),         // -1
	^uint64(0) - 2,     // -3
	1 << 63,            // MinInt64
	1<<63 + 1,          // MinInt64+1
	0xffffffff80000000, // -2^31
	0x7fffffff, 0x80000000, 0xffffffff, 0x100000000,
}

var f64Grid = []float64{
	0, math.Copysign(0, -1), 1, -1, 0.5, -2.75, 1e10, -1e10, 1e300, -1e300,
	math.MaxFloat64, math.SmallestNonzeroFloat64,
	math.Inf(1), math.Inf(-1), math.NaN(), 9.007199254740993e15, 1e30,
}

func binop(t *testing.T, name string, build func(b *ir.Builder, x, y *ir.Value) *ir.Value) {
	t.Helper()
	m := ir.NewModule("t")
	f := m.NewFunc(name, ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	b.Ret(build(b, f.Params[0], f.Params[1]))
	for _, x := range i64Grid {
		for _, y := range i64Grid {
			diff(t, name, f, []uint64{x, y}, nil, nil)
		}
	}
	// Immediate right-operand variants exercise the imm32/imm64 templates.
	for _, c := range []uint64{0, 1, 3, 100, ^uint64(0), 1 << 40, uint64(math.MaxInt32), 1 << 63} {
		m2 := ir.NewModule("t")
		f2 := m2.NewFunc(name+"_imm", ir.I64)
		b2 := ir.NewBuilder(f2)
		b2.Ret(build(b2, f2.Params[0], f2.Const(ir.I64, c)))
		for _, x := range i64Grid {
			diff(t, name+"_imm", f2, []uint64{x}, nil, nil)
		}
	}
}

func TestIntOps(t *testing.T) {
	if !asm.Supported() {
		t.Skip("no native backend on this platform")
	}
	binop(t, "add", func(b *ir.Builder, x, y *ir.Value) *ir.Value { return b.Add(x, y) })
	binop(t, "sub", func(b *ir.Builder, x, y *ir.Value) *ir.Value { return b.Sub(x, y) })
	binop(t, "mul", func(b *ir.Builder, x, y *ir.Value) *ir.Value { return b.Mul(x, y) })
	binop(t, "sdiv", func(b *ir.Builder, x, y *ir.Value) *ir.Value { return b.SDiv(x, y) })
	binop(t, "srem", func(b *ir.Builder, x, y *ir.Value) *ir.Value { return b.SRem(x, y) })
	binop(t, "udiv", func(b *ir.Builder, x, y *ir.Value) *ir.Value { return b.UDiv(x, y) })
	binop(t, "urem", func(b *ir.Builder, x, y *ir.Value) *ir.Value { return b.URem(x, y) })
	binop(t, "and", func(b *ir.Builder, x, y *ir.Value) *ir.Value { return b.And(x, y) })
	binop(t, "or", func(b *ir.Builder, x, y *ir.Value) *ir.Value { return b.Or(x, y) })
	binop(t, "xor", func(b *ir.Builder, x, y *ir.Value) *ir.Value { return b.Xor(x, y) })
	binop(t, "shl", func(b *ir.Builder, x, y *ir.Value) *ir.Value { return b.Shl(x, y) })
	binop(t, "lshr", func(b *ir.Builder, x, y *ir.Value) *ir.Value { return b.LShr(x, y) })
	binop(t, "ashr", func(b *ir.Builder, x, y *ir.Value) *ir.Value { return b.AShr(x, y) })
}

func TestOverflowPairs(t *testing.T) {
	if !asm.Supported() {
		t.Skip("no native backend on this platform")
	}
	for _, op := range []string{"sadd", "ssub", "smul"} {
		m := ir.NewModule("t")
		f := m.NewFunc(op, ir.I64, ir.I64)
		b := ir.NewBuilder(f)
		var p *ir.Value
		switch op {
		case "sadd":
			p = b.SAddOvf(f.Params[0], f.Params[1])
		case "ssub":
			p = b.SSubOvf(f.Params[0], f.Params[1])
		default:
			p = b.SMulOvf(f.Params[0], f.Params[1])
		}
		v := b.ExtractValue(p, 0)
		fl := b.ExtractValue(p, 1)
		b.Ret(b.Xor(v, b.Mul(fl, b.ConstI64(1000000007))))
		for _, x := range i64Grid {
			for _, y := range i64Grid {
				diff(t, op, f, []uint64{x, y}, nil, nil)
			}
		}
	}
}

func TestComparisons(t *testing.T) {
	if !asm.Supported() {
		t.Skip("no native backend on this platform")
	}
	preds := []ir.Pred{ir.Eq, ir.Ne, ir.SLt, ir.SLe, ir.SGt, ir.SGe, ir.ULt, ir.ULe, ir.UGt, ir.UGe}
	for _, p := range preds {
		m := ir.NewModule("t")
		f := m.NewFunc("icmp", ir.I64, ir.I64)
		b := ir.NewBuilder(f)
		b.Ret(b.ZExt(b.ICmp(p, f.Params[0], f.Params[1]), ir.I64))
		for _, x := range i64Grid {
			for _, y := range i64Grid {
				diff(t, "icmp_"+p.String(), f, []uint64{x, y}, nil, nil)
			}
		}
	}
	for _, p := range preds[:6] { // FCmp supports the first six, ordered
		m := ir.NewModule("t")
		f := m.NewFunc("fcmp", ir.F64, ir.F64)
		b := ir.NewBuilder(f)
		b.Ret(b.ZExt(b.FCmp(p, f.Params[0], f.Params[1]), ir.I64))
		for _, x := range f64Grid {
			for _, y := range f64Grid {
				diff(t, "fcmp_"+p.String(), f, []uint64{math.Float64bits(x), math.Float64bits(y)}, nil, nil)
			}
		}
	}
}

func TestFloatOpsAndConversions(t *testing.T) {
	if !asm.Supported() {
		t.Skip("no native backend on this platform")
	}
	for _, op := range []string{"fadd", "fsub", "fmul", "fdiv"} {
		m := ir.NewModule("t")
		f := m.NewFunc(op, ir.F64, ir.F64)
		b := ir.NewBuilder(f)
		switch op {
		case "fadd":
			b.Ret(b.FAdd(f.Params[0], f.Params[1]))
		case "fsub":
			b.Ret(b.FSub(f.Params[0], f.Params[1]))
		case "fmul":
			b.Ret(b.FMul(f.Params[0], f.Params[1]))
		default:
			b.Ret(b.FDiv(f.Params[0], f.Params[1]))
		}
		for _, x := range f64Grid {
			for _, y := range f64Grid {
				diff(t, op, f, []uint64{math.Float64bits(x), math.Float64bits(y)}, nil, nil)
			}
		}
	}
	{
		m := ir.NewModule("t")
		f := m.NewFunc("fptosi", ir.F64)
		b := ir.NewBuilder(f)
		b.Ret(b.FPToSI(f.Params[0]))
		for _, x := range f64Grid {
			diff(t, "fptosi", f, []uint64{math.Float64bits(x)}, nil, nil)
		}
	}
	{
		m := ir.NewModule("t")
		f := m.NewFunc("sitofp", ir.I64)
		b := ir.NewBuilder(f)
		b.Ret(b.FPToSI(b.FAdd(b.SIToFP(f.Params[0]), b.ConstF64(0.25))))
		for _, x := range i64Grid {
			diff(t, "sitofp", f, []uint64{x}, nil, nil)
		}
	}
	// Narrowing and widening chains through every integer width.
	for _, ty := range []ir.Type{ir.I1, ir.I8, ir.I16, ir.I32} {
		m := ir.NewModule("t")
		f := m.NewFunc("extchain", ir.I64)
		b := ir.NewBuilder(f)
		nar := b.Trunc(f.Params[0], ty)
		b.Ret(b.Xor(b.SExt(nar, ir.I64), b.Shl(b.ZExt(nar, ir.I64), b.ConstI64(1))))
		for _, x := range i64Grid {
			diff(t, fmt.Sprintf("extchain_%v", ty), f, []uint64{x}, nil, nil)
		}
	}
}

func TestSelect(t *testing.T) {
	if !asm.Supported() {
		t.Skip("no native backend on this platform")
	}
	m := ir.NewModule("t")
	f := m.NewFunc("select", ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	c := b.ICmp(ir.SLt, f.Params[0], f.Params[1])
	v := b.Select(c, b.Add(f.Params[0], b.ConstI64(5)), b.Sub(f.Params[1], b.ConstI64(7)))
	b.Ret(b.Add(v, b.ZExt(c, ir.I64))) // second use keeps the icmp unfused
	for _, x := range i64Grid {
		for _, y := range i64Grid {
			diff(t, "select", f, []uint64{x, y}, nil, nil)
		}
	}
}

// TestMemory covers every load/store width plus GEP addressing, verifying
// the final memory image byte for byte.
func TestMemory(t *testing.T) {
	if !asm.Supported() {
		t.Skip("no native backend on this platform")
	}
	m := ir.NewModule("t")
	f := m.NewFunc("mem", ir.I64, ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	base, idx, val := f.Params[0], f.Params[1], f.Params[2]
	b.Store(b.GEP(base, idx, 8, 0), val)
	b.Store(b.GEP(base, idx, 4, 32), b.Trunc(val, ir.I32))
	b.Store(b.GEP(base, idx, 2, 48), b.Trunc(val, ir.I16))
	b.Store(b.GEP(base, b.ConstI64(3), 1, 56), b.Trunc(val, ir.I8))
	l8 := b.Load(ir.I64, b.GEP(base, idx, 8, 0))
	l4 := b.Load(ir.I32, b.GEP(base, idx, 4, 32))
	l2 := b.Load(ir.I16, b.GEP(base, idx, 2, 48))
	l1 := b.Load(ir.I8, b.GEP(base, b.ConstI64(3), 1, 56))
	sum := b.Add(b.Add(b.ZExt(l8, ir.I64), b.ZExt(l4, ir.I64)),
		b.Add(b.ZExt(l2, ir.I64), b.ZExt(l1, ir.I64)))
	b.Ret(sum)
	seed := make([]byte, 64)
	for i := range seed {
		seed[i] = byte(i * 7)
	}
	for _, idx := range []uint64{0, 1, 2, 3} {
		for _, v := range []uint64{0, 0xdeadbeefcafef00d, ^uint64(0), 0x1234} {
			diff(t, "mem", f, []uint64{segBaseToken, idx, v}, seed, nil)
		}
	}
}

func TestMemoryFaults(t *testing.T) {
	if !asm.Supported() {
		t.Skip("no native backend on this platform")
	}
	m := ir.NewModule("t")
	f := m.NewFunc("oob", ir.I64)
	b := ir.NewBuilder(f)
	b.Ret(b.Load(ir.I64, f.Params[0]))
	seed := make([]byte, 16)
	// In-range, straddling the end, past the end, bad segment, and null.
	for _, addr := range []uint64{segBaseToken, segBaseToken + 12, segBaseToken + 16,
		uint64(200) << 48, 0} {
		diff(t, "oob", f, []uint64{addr}, seed, nil)
	}
}

// TestLoopPhi exercises φ-cycles (the fib swap needs the scratch slot),
// fused compare-and-branch with φ-moves between the CMP and the Jcc, and
// constant φ-inputs (including zero) that must be emitted flag-safely.
func TestLoopPhi(t *testing.T) {
	if !asm.Supported() {
		t.Skip("no native backend on this platform")
	}
	m := ir.NewModule("t")
	f := m.NewFunc("fib", ir.I64)
	b := ir.NewBuilder(f)
	entry := b.B
	loop := b.NewBlock()
	exit := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	i := b.Phi(ir.I64)
	x := b.Phi(ir.I64)
	y := b.Phi(ir.I64)
	z := b.Phi(ir.I64)
	x2 := y
	y2 := b.Add(x, y)
	i2 := b.Add(i, b.ConstI64(1))
	cond := b.ICmp(ir.SLt, i2, f.Params[0])
	b.CondBr(cond, loop, exit)
	ir.AddIncoming(i, b.ConstI64(0), entry)
	ir.AddIncoming(i, i2, loop)
	ir.AddIncoming(x, b.ConstI64(0), entry)
	ir.AddIncoming(x, x2, loop) // x ← y, y ← x+y: swap cycle through scratch
	ir.AddIncoming(y, b.ConstI64(1), entry)
	ir.AddIncoming(y, y2, loop)
	ir.AddIncoming(z, f.Params[0], entry)
	ir.AddIncoming(z, b.ConstI64(0), loop) // constant-0 move after the fused CMP
	b.SetBlock(exit)
	b.Ret(b.Add(y2, z))
	for _, n := range []uint64{1, 2, 3, 10, 50, 90} {
		diff(t, "fib", f, []uint64{n}, nil, nil)
	}
}

// TestExternCalls drives the exit-to-Go call protocol, including an extern
// that grows memory mid-run (forcing the segment-table re-snapshot) and
// one that traps.
func TestExternCalls(t *testing.T) {
	if !asm.Supported() {
		t.Skip("no native backend on this platform")
	}
	m := ir.NewModule("t")
	f := m.NewFunc("calls", ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	s := b.Call("mix", ir.I64, f.Params[0], f.Params[1], b.ConstI64(3), b.ConstI64(4))
	p := b.Call("grow", ir.I64)
	b.Store(p, s)
	b.Call("note", ir.Void, s)
	b.Ret(b.Add(b.Load(ir.I64, p), b.Call("mix", ir.I64, s, s, s, s)))
	funcs := func(mem *rt.Memory) []rt.Func {
		out := make([]rt.Func, 3)
		out[m.ExternIndex("mix")] = func(_ *rt.Ctx, args []uint64) uint64 {
			return args[0]*31 + args[1]*7 + args[2] + args[3]*3
		}
		out[m.ExternIndex("grow")] = func(ctx *rt.Ctx, _ []uint64) uint64 {
			return ctx.Mem.Alloc(64)
		}
		out[m.ExternIndex("note")] = func(_ *rt.Ctx, _ []uint64) uint64 { return 0 }
		return out
	}
	for _, x := range []uint64{0, 5, 1 << 40} {
		diff(t, "calls", f, []uint64{x, x ^ 0xabcdef}, nil, funcs)
	}

	m2 := ir.NewModule("t")
	f2 := m2.NewFunc("trapcall", ir.I64)
	b2 := ir.NewBuilder(f2)
	b2.Ret(b2.Call("boom", ir.I64, f2.Params[0]))
	funcs2 := func(*rt.Memory) []rt.Func {
		return []rt.Func{func(_ *rt.Ctx, args []uint64) uint64 {
			if args[0] == 7 {
				rt.Throw(rt.TrapUser)
			}
			return args[0]
		}}
	}
	diff(t, "trapcall", f2, []uint64{6}, nil, funcs2)
	diff(t, "trapcall", f2, []uint64{7}, nil, funcs2)
}

func TestUnsupportedAndAllocFailure(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("pairphi", ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	entry := b.B
	pairv := b.SAddOvf(f.Params[0], f.Params[1])
	join := b.NewBlock()
	b.Br(join)
	b.SetBlock(join)
	p := b.Phi(ir.Pair)
	ir.AddIncoming(p, pairv, entry)
	_ = p
	b.Ret(b.ConstI64(0))
	if _, err := asm.Compile(f.Clone()); err == nil {
		t.Fatal("pair-typed phi should be unsupported")
	}

	if !asm.Supported() {
		return
	}
	asm.SetAllocFailure(true)
	defer asm.SetAllocFailure(false)
	m2 := ir.NewModule("t")
	f2 := m2.NewFunc("tiny")
	b2 := ir.NewBuilder(f2)
	b2.Ret(b2.ConstI64(1))
	if _, err := asm.Compile(f2); err == nil {
		t.Fatal("forced allocation failure should surface as a compile error")
	}
}
