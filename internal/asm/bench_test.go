package asm_test

import (
	"testing"

	"aqe/internal/asm"
	"aqe/internal/ir"
)

// benchFunc builds a compile-time benchmark subject shaped like a query
// pipeline: a counted loop whose body is a few hundred instructions of
// mixed arithmetic, comparisons, selects and scratch-memory traffic.
func benchFunc() *ir.Function {
	m := ir.NewModule("bench")
	f := m.NewFunc("f", ir.I64, ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	entry := b.B
	head := f.NewBlock()
	body := f.NewBlock()
	exit := f.NewBlock()

	zero := b.ConstI64(0)
	one := b.ConstI64(1)
	b.Br(head)

	b.SetBlock(head)
	i := b.Phi(ir.I64)
	acc := b.Phi(ir.I64)
	cond := b.ICmp(ir.SLt, i, b.ConstI64(64))
	b.CondBr(cond, body, exit)

	b.SetBlock(body)
	base := f.Params[1]
	v := acc
	for k := 0; k < 60; k++ {
		t1 := b.Add(v, b.ConstI64(int64(k*7+1)))
		t2 := b.Mul(t1, f.Params[0])
		t3 := b.Xor(t2, b.LShr(t1, b.ConstI64(3)))
		c := b.ICmp(ir.SLt, t3, t2)
		v = b.Select(c, t3, b.Sub(t2, t1))
		if k%5 == 0 {
			slot := b.And(v, b.ConstI64(31))
			addr := b.GEP(base, slot, 8, 0)
			b.Store(addr, v)
			v = b.Add(v, b.Load(ir.I64, addr))
		}
	}
	i2 := b.Add(i, one)
	b.Br(head)
	ir.AddIncoming(i, zero, entry)
	ir.AddIncoming(i, i2, body)
	ir.AddIncoming(acc, f.Params[0], entry)
	ir.AddIncoming(acc, v, body)

	b.SetBlock(exit)
	b.Ret(acc)
	return f
}

func benchCompile(b *testing.B, opts asm.Options) {
	if !asm.Supported() {
		b.Skip("no native backend")
	}
	f := benchFunc()
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		b.StopTimer()
		fn := f.Clone() // CompileOpts splits critical edges in place
		b.StartTimer()
		if _, err := asm.CompileOpts(fn, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileRegAlloc(b *testing.B) { benchCompile(b, asm.Options{}) }
func BenchmarkCompileSlots(b *testing.B)   { benchCompile(b, asm.Options{NoRegAlloc: true}) }
