//go:build amd64 && (linux || darwin)

#include "textflag.h"
#include "funcdata.h"

// func enter(nc *nativeCtx)
//
// Bridges from Go into assembled query code: loads the pinned registers
// from the native context (R12 = register-file base, R15 = segment-table
// base, RBX = segment count, R13 = the context itself) and calls
// nc.resume. Generated code uses no Go stack beyond the return address,
// never blocks, and returns here after writing an exit record into nc;
// the Go driver loop services the exit and re-enters.
//
// Deliberately NOT NOSPLIT: the stack-split prologue guarantees the
// usual headroom below SP before we leave Go's ken. R14 (g) and X15 are
// never touched by generated code, and all other registers are
// caller-saved at this boundary.
TEXT ·enter(SB), $16-8
	NO_LOCAL_POINTERS
	MOVQ nc+0(FP), R13
	MOVQ 0(R13), R12  // register-file base
	MOVQ 8(R13), R15  // segment-table base
	MOVQ 16(R13), BX  // segment count
	MOVQ 24(R13), AX  // resume address
	CALL AX
	RET
