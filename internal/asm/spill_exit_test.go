package asm_test

import (
	"math"
	"strings"
	"testing"

	"aqe/internal/asm"
	"aqe/internal/ir"
	"aqe/internal/rt"
)

// These tests pin the allocator's flush-at-exit invariant directly: at
// every point where control leaves generated code (extern call, trap,
// memory fault) the register file must hold the canonical slot state —
// every defined value in its assigned slot — exactly as the slot-per-op
// backend and the VM would have left it. Slot indices are hand-computed
// from the deterministic assignment (parameters first, then instruction
// results in program order), so a silent change to the layout fails here
// rather than hiding a stale-slot bug.

// TestSpillAtExternCall: three values are defined and held dirty in
// registers, then an extern runs. The extern observes the innermost
// register frame and must see all three in their canonical slots (the
// compiler flushes before the call exit because Go code may read or
// write any slot).
func TestSpillAtExternCall(t *testing.T) {
	if !asm.Supported() {
		t.Skip("no native backend on this platform")
	}
	m := ir.NewModule("t")
	f := m.NewFunc("spillcall", ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	a, x := f.Params[0], f.Params[1]
	v1 := b.Add(a, x)            // slot 2
	v2 := b.Mul(a, x)            // slot 3
	v3 := b.Xor(a, x)            // slot 4
	b.Call("probe", ir.Void)     // no args: values reach it only via slots
	b.Ret(b.Add(b.Add(v1, v2), v3))

	const av, xv = 1000003, 77
	want := []uint64{2: av + xv, 3: av * xv, 4: av ^ xv}
	code, err := asm.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	mem := rt.NewMemory()
	probed := false
	funcs := make([]rt.Func, 1)
	funcs[m.ExternIndex("probe")] = func(c *rt.Ctx, _ []uint64) uint64 {
		probed = true
		regs := c.CurRegs()
		for slot := 2; slot <= 4; slot++ {
			if regs[slot] != want[slot] {
				t.Errorf("at extern call, slot %d = %#x, want %#x", slot, regs[slot], want[slot])
			}
		}
		return 0
	}
	ctx := &rt.Ctx{Mem: mem, Funcs: funcs}
	res := code.Run(ctx, []uint64{av, xv})
	if !probed {
		t.Fatal("probe extern never ran")
	}
	if wantRes := uint64(av+xv) + av*xv + (av ^ xv); res != wantRes {
		t.Fatalf("result %#x, want %#x", res, wantRes)
	}
}

// TestSpillAtTrap: a division traps on a runtime zero while two unrelated
// values are live and dirty in registers. The trap's side exit must store
// them to their slots before unwinding to Go; the test inspects the frame
// the trap left behind (trap unwinding does not pop it — the engine's
// CatchTrap boundary resets the stack, mirroring the VM).
func TestSpillAtTrap(t *testing.T) {
	if !asm.Supported() {
		t.Skip("no native backend on this platform")
	}
	m := ir.NewModule("t")
	f := m.NewFunc("spilltrap", ir.I64, ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	a, x, d := f.Params[0], f.Params[1], f.Params[2]
	v1 := b.Add(a, x) // slot 3
	v2 := b.Mul(a, x) // slot 4
	q := b.SDiv(v1, d) // slot 5; d == 0 traps here
	b.Ret(b.Add(q, v2))

	code, err := asm.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	const av, xv = 424243, 999
	ctx := &rt.Ctx{Mem: rt.NewMemory()}
	trapErr := rt.CatchTrap(func() { code.Run(ctx, []uint64{av, xv, 0}) })
	if trapErr == nil {
		t.Fatal("division by zero did not trap")
	}
	regs := ctx.CurRegs()
	if regs == nil {
		t.Fatal("no live register frame after trap")
	}
	if regs[3] != av+xv {
		t.Errorf("at trap, slot 3 = %#x, want %#x", regs[3], uint64(av+xv))
	}
	if regs[4] != av*xv {
		t.Errorf("at trap, slot 4 = %#x, want %#x", regs[4], uint64(av*xv))
	}
	ctx.ResetRegs()
}

// TestSpillAtFault is TestSpillAtTrap for the memory-fault exit: an
// out-of-range load panics (like the interpreters' slice bounds failure)
// after the fault's side exit stored the live dirty values.
func TestSpillAtFault(t *testing.T) {
	if !asm.Supported() {
		t.Skip("no native backend on this platform")
	}
	m := ir.NewModule("t")
	f := m.NewFunc("spillfault", ir.I64, ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	a, x, addr := f.Params[0], f.Params[1], f.Params[2]
	v1 := b.Add(a, x)        // slot 3
	v2 := b.Xor(a, x)        // slot 4
	l := b.Load(ir.I64, addr) // slot 5; address 0 faults
	b.Ret(b.Add(b.Add(v1, v2), l))

	code, err := asm.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	const av, xv = 31337, 271828
	ctx := &rt.Ctx{Mem: rt.NewMemory()}
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("out-of-range load did not fault")
			}
			if s, ok := r.(string); !ok || !strings.Contains(s, "out-of-range") {
				panic(r) // not the fault we planted
			}
		}()
		code.Run(ctx, []uint64{av, xv, 0})
	}()
	regs := ctx.CurRegs()
	if regs == nil {
		t.Fatal("no live register frame after fault")
	}
	if regs[3] != av+xv {
		t.Errorf("at fault, slot 3 = %#x, want %#x", regs[3], uint64(av+xv))
	}
	if regs[4] != av^xv {
		t.Errorf("at fault, slot 4 = %#x, want %#x", regs[4], uint64(av^xv))
	}
	ctx.ResetRegs()
}

// TestRegisterPressure holds more integer values live than the GPR pool
// (6) and more floats than the XMM pool, forcing next-use-driven eviction
// and reload; the differential harness checks both backends against the
// interpreter.
func TestRegisterPressure(t *testing.T) {
	if !asm.Supported() {
		t.Skip("no native backend on this platform")
	}
	m := ir.NewModule("t")
	f := m.NewFunc("pressure", ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	a, x := f.Params[0], f.Params[1]
	// Ten values all live until the folding tail: at most 6 fit in the
	// pool, so at least four must spill and reload.
	var vs []*ir.Value
	for i := 1; i <= 10; i++ {
		vs = append(vs, b.Add(b.Mul(a, b.ConstI64(int64(i))), b.Xor(x, b.ConstI64(int64(i*7)))))
	}
	acc := vs[0]
	for _, v := range vs[1:] {
		acc = b.Xor(b.Add(acc, v), b.Mul(acc, b.ConstI64(1000000007)))
	}
	b.Ret(acc)
	for _, av := range i64Grid[:8] {
		for _, xv := range i64Grid[8:12] {
			diff(t, "pressure", f, []uint64{av, xv}, nil, nil)
		}
	}

	// Float pressure: eight doubles live across the folding tail against a
	// six-register XMM pool.
	m2 := ir.NewModule("t")
	f2 := m2.NewFunc("fpressure", ir.F64, ir.F64)
	b2 := ir.NewBuilder(f2)
	fa, fx := f2.Params[0], f2.Params[1]
	var fvs []*ir.Value
	for i := 1; i <= 8; i++ {
		fvs = append(fvs, b2.FAdd(b2.FMul(fa, b2.ConstF64(float64(i))), fx))
	}
	facc := fvs[0]
	for _, v := range fvs[1:] {
		facc = b2.FAdd(b2.FMul(facc, b2.ConstF64(1.0000001)), v)
	}
	b2.Ret(facc)
	for _, av := range f64Grid[:6] {
		for _, xv := range f64Grid[6:10] {
			diff(t, "fpressure", f2, []uint64{math.Float64bits(av), math.Float64bits(xv)}, nil, nil)
		}
	}
}
