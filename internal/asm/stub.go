//go:build !amd64 || !(linux || darwin)

package asm

import (
	"aqe/internal/ir"
	"aqe/internal/rt"
)

// Supported reports whether this platform has a native backend.
func Supported() bool { return false }

// Code is never constructed on platforms without a backend.
type Code struct{}

// Compile always fails here; the engine falls back to the closure tiers.
func Compile(*ir.Function) (*Code, error) { return nil, ErrUnsupported }

// CompileOpts always fails here; the engine falls back to the closure tiers.
func CompileOpts(*ir.Function, Options) (*Code, error) { return nil, ErrUnsupported }

// SizeBytes satisfies the accounting interface; unreachable in practice.
func (c *Code) SizeBytes() int { return 0 }

// NumSlots satisfies the introspection interface; unreachable in practice.
func (c *Code) NumSlots() int { return 0 }

// Run panics: no code can exist to run.
func (c *Code) Run(*rt.Ctx, []uint64) uint64 {
	panic("asm: native execution unsupported on this platform")
}
