//go:build amd64 && (linux || darwin)

package asm

import "encoding/binary"

// Pure-Go amd64 instruction encoder: just the subset the IR op templates
// need, emitted into a flat byte buffer with two-pass rel32 label
// patching. Registers are their hardware numbers (RAX=0 .. R15=15).

// General-purpose register numbers.
const (
	rAX = 0
	rCX = 1
	rDX = 2
	rBX = 3 // pinned: segment count
	rSP = 4
	rBP = 5
	rSI = 6
	rDI = 7
	r8  = 8
	r9  = 9
	r10 = 10
	r11 = 11
	r12 = 12 // pinned: register-file base
	r13 = 13 // pinned: *nativeCtx
	r14 = 14 // avoided: Go's g register
	r15 = 15 // pinned: segment-table base
)

// Condition-code nibbles (Jcc = 0F 80+cc, SETcc = 0F 90+cc).
const (
	ccO  = 0x0
	ccB  = 0x2 // unsigned <
	ccAE = 0x3 // unsigned >=
	ccE  = 0x4
	ccNE = 0x5
	ccBE = 0x6 // unsigned <=
	ccA  = 0x7 // unsigned >
	ccP  = 0xa
	ccNP = 0xb
	ccL  = 0xc // signed <
	ccGE = 0xd // signed >=
	ccLE = 0xe // signed <=
	ccG  = 0xf // signed >
)

// mem is a memory operand [base + index*scale + disp]; index < 0 means no
// index. R13 as base always takes a displacement byte (hardware quirk
// shared with RBP), which the emitter handles.
type mem struct {
	base  int
	index int
	scale byte // 1, 2, 4, 8
	disp  int32
}

func memBD(base int, disp int32) mem { return mem{base: base, index: -1, disp: disp} }

// slotMem addresses register-file slot s: [R12 + s*8].
func slotMem(s int) mem { return memBD(r12, int32(s)*8) }

type fixup struct {
	at    int32 // offset of the rel32 field
	label int
}

type asmBuf struct {
	buf    []byte
	labels []int32 // label -> bound offset, -1 while unbound
	fixups []fixup
}

func newAsmBuf(sizeHint int) *asmBuf {
	return &asmBuf{buf: make([]byte, 0, sizeHint)}
}

func (a *asmBuf) pos() int32 { return int32(len(a.buf)) }

func (a *asmBuf) byte(bs ...byte) { a.buf = append(a.buf, bs...) }

func (a *asmBuf) u32(v uint32) { a.buf = binary.LittleEndian.AppendUint32(a.buf, v) }

func (a *asmBuf) u64(v uint64) { a.buf = binary.LittleEndian.AppendUint64(a.buf, v) }

func (a *asmBuf) label() int {
	a.labels = append(a.labels, -1)
	return len(a.labels) - 1
}

func (a *asmBuf) bind(l int) { a.labels[l] = a.pos() }

// rel32 emits a 4-byte placeholder to be patched with (target - end).
func (a *asmBuf) rel32(l int) {
	a.fixups = append(a.fixups, fixup{at: a.pos(), label: l})
	a.u32(0)
}

// finish patches all label references and returns the code bytes. All
// displacements are relative, so the result is position-independent and
// can be copied into executable memory as-is.
func (a *asmBuf) finish() []byte {
	for _, f := range a.fixups {
		target := a.labels[f.label]
		binary.LittleEndian.PutUint32(a.buf[f.at:], uint32(target-(f.at+4)))
	}
	return a.buf
}

// rex emits a REX prefix when required. reg/index/base are the extended
// register fields (-1 when absent).
func (a *asmBuf) rex(w bool, reg, index, base int) {
	var b byte = 0x40
	if w {
		b |= 8
	}
	if reg >= 8 {
		b |= 4
	}
	if index >= 8 {
		b |= 2
	}
	if base >= 8 {
		b |= 1
	}
	if b != 0x40 || w {
		a.byte(b)
	}
}

// rex8 is rex for instructions with an 8-bit register operand: SPL/BPL/
// SIL/DIL (4..7) need an empty REX prefix to be addressable (a spurious
// 0x40 for a 64-bit address base in that range is legal and ignored).
func (a *asmBuf) rex8(reg, index, base int) {
	var b byte = 0x40
	if reg >= 8 {
		b |= 4
	}
	if index >= 8 {
		b |= 2
	}
	if base >= 8 {
		b |= 1
	}
	if b != 0x40 || (reg >= 4 && reg <= 7) || (base >= 4 && base <= 7) {
		a.byte(b)
	}
}

// modrmMem emits the ModRM/SIB/disp bytes for a reg, mem operand pair.
func (a *asmBuf) modrmMem(reg int, m mem) {
	regBits := byte(reg&7) << 3
	base := m.base & 7
	needSIB := m.index >= 0 || base == 4 // RSP/R12 base requires SIB
	// RBP/R13 base has no disp-less form.
	var mod byte
	switch {
	case m.disp == 0 && base != 5:
		mod = 0x00
	case m.disp >= -128 && m.disp <= 127:
		mod = 0x40
	default:
		mod = 0x80
	}
	if needSIB {
		a.byte(mod | regBits | 4)
		var ss byte
		switch m.scale {
		case 2:
			ss = 1 << 6
		case 4:
			ss = 2 << 6
		case 8:
			ss = 3 << 6
		}
		idx := byte(4) // none
		if m.index >= 0 {
			idx = byte(m.index & 7)
		}
		a.byte(ss | idx<<3 | byte(base))
	} else {
		a.byte(mod | regBits | byte(base))
	}
	switch mod {
	case 0x40:
		a.byte(byte(m.disp))
	case 0x80:
		a.u32(uint32(m.disp))
	}
}

func (a *asmBuf) modrmReg(reg, rm int) {
	a.byte(0xc0 | byte(reg&7)<<3 | byte(rm&7))
}

// --- moves ---

// movRegImm64 loads an immediate, using the shortest encoding.
func (a *asmBuf) movRegImm64(r int, v uint64) {
	switch {
	case v == 0:
		a.rex(false, r, -1, r) // xor r32, r32 zero-extends
		a.byte(0x31)
		a.modrmReg(r, r)
	case v <= 0xffffffff:
		a.rex(false, -1, -1, r) // mov r32, imm32 zero-extends
		a.byte(0xb8 + byte(r&7))
		a.u32(uint32(v))
	case int64(v) >= -0x80000000 && int64(v) < 0:
		a.rex(true, -1, -1, r) // mov r64, imm32 sign-extends
		a.byte(0xc7)
		a.modrmReg(0, r)
		a.u32(uint32(v))
	default:
		a.rex(true, -1, -1, r) // movabs
		a.byte(0xb8 + byte(r&7))
		a.u64(v)
	}
}

// movRegImm64NF is movRegImm64 without the XOR zero idiom, for contexts
// where the condition flags must survive (fused CMP → CMOVcc/Jcc
// sequences): every encoding it picks is a MOV.
func (a *asmBuf) movRegImm64NF(r int, v uint64) {
	if v == 0 {
		a.rex(false, -1, -1, r) // mov r32, 0 zero-extends, flags untouched
		a.byte(0xb8 + byte(r&7))
		a.u32(0)
		return
	}
	a.movRegImm64(r, v)
}

func (a *asmBuf) movRegReg(dst, src int) {
	a.rex(true, src, -1, dst)
	a.byte(0x89)
	a.modrmReg(src, dst)
}

func (a *asmBuf) movRegMem(dst int, m mem) {
	a.rex(true, dst, m.index, m.base)
	a.byte(0x8b)
	a.modrmMem(dst, m)
}

func (a *asmBuf) movMemReg(m mem, src int) {
	a.rex(true, src, m.index, m.base)
	a.byte(0x89)
	a.modrmMem(src, m)
}

// movMemImm32 stores a sign-extended 32-bit immediate to a qword.
func (a *asmBuf) movMemImm32(m mem, v int32) {
	a.rex(true, -1, m.index, m.base)
	a.byte(0xc7)
	a.modrmMem(0, m)
	a.u32(uint32(v))
}

// Narrow loads (all zero-extend into the full register).
func (a *asmBuf) movzxRegMem8(dst int, m mem) {
	a.rex(true, dst, m.index, m.base)
	a.byte(0x0f, 0xb6)
	a.modrmMem(dst, m)
}

func (a *asmBuf) movzxRegMem16(dst int, m mem) {
	a.rex(true, dst, m.index, m.base)
	a.byte(0x0f, 0xb7)
	a.modrmMem(dst, m)
}

func (a *asmBuf) movRegMem32(dst int, m mem) {
	a.rex(false, dst, m.index, m.base)
	a.byte(0x8b)
	a.modrmMem(dst, m)
}

// Narrow stores.
func (a *asmBuf) movMemReg8(m mem, src int) {
	a.rex8(src, m.index, m.base)
	a.byte(0x88)
	a.modrmMem(src, m)
}

func (a *asmBuf) movMemReg16(m mem, src int) {
	a.byte(0x66)
	a.rex(false, src, m.index, m.base)
	a.byte(0x89)
	a.modrmMem(src, m)
}

func (a *asmBuf) movMemReg32(m mem, src int) {
	a.rex(false, src, m.index, m.base)
	a.byte(0x89)
	a.modrmMem(src, m)
}

// --- integer ALU ---

// aluOp is the opcode byte of the reg,reg form; the /n extension of the
// imm form is derived from it (they share the operation index).
type aluOp byte

const (
	aluAdd aluOp = 0x01
	aluOr  aluOp = 0x09
	aluAnd aluOp = 0x21
	aluSub aluOp = 0x29
	aluXor aluOp = 0x31
	aluCmp aluOp = 0x39
)

func (a *asmBuf) aluRegReg(op aluOp, dst, src int) {
	a.rex(true, src, -1, dst)
	a.byte(byte(op))
	a.modrmReg(src, dst)
}

// aluRegMem is the reg, r/m form (opcode|2): e.g. cmp reg, [mem].
func (a *asmBuf) aluRegMem(op aluOp, reg int, m mem) {
	a.rex(true, reg, m.index, m.base)
	a.byte(byte(op) | 2)
	a.modrmMem(reg, m)
}

func (a *asmBuf) aluRegImm32(op aluOp, dst int, v int32) {
	ext := int(op) >> 3 // /0 add, /1 or, /4 and, /5 sub, /6 xor, /7 cmp
	a.rex(true, -1, -1, dst)
	if v >= -128 && v <= 127 {
		a.byte(0x83)
		a.modrmReg(ext, dst)
		a.byte(byte(v))
	} else {
		a.byte(0x81)
		a.modrmReg(ext, dst)
		a.u32(uint32(v))
	}
}

func (a *asmBuf) imulRegReg(dst, src int) {
	a.rex(true, dst, -1, src)
	a.byte(0x0f, 0xaf)
	a.modrmReg(dst, src)
}

// imulRegMem multiplies dst by a memory operand.
func (a *asmBuf) imulRegMem(dst int, m mem) {
	a.rex(true, dst, m.index, m.base)
	a.byte(0x0f, 0xaf)
	a.modrmMem(dst, m)
}

// imulRegRegImm32 computes dst = src * imm32.
func (a *asmBuf) imulRegRegImm32(dst, src int, v int32) {
	a.rex(true, dst, -1, src)
	a.byte(0x69)
	a.modrmReg(dst, src)
	a.u32(uint32(v))
}

func (a *asmBuf) testRegReg(x, y int) {
	a.rex(true, y, -1, x)
	a.byte(0x85)
	a.modrmReg(y, x)
}

// shiftCL shifts dst by CL: ext 4=shl, 5=shr, 7=sar.
func (a *asmBuf) shiftCL(ext, dst int) {
	a.rex(true, -1, -1, dst)
	a.byte(0xd3)
	a.modrmReg(ext, dst)
}

// shiftImm shifts dst by a constant count.
func (a *asmBuf) shiftImm(ext, dst int, n byte) {
	a.rex(true, -1, -1, dst)
	a.byte(0xc1)
	a.modrmReg(ext, dst)
	a.byte(n)
}

func (a *asmBuf) cqo() { a.byte(0x48, 0x99) }

func (a *asmBuf) idivReg(r int) {
	a.rex(true, -1, -1, r)
	a.byte(0xf7)
	a.modrmReg(7, r)
}

func (a *asmBuf) divReg(r int) {
	a.rex(true, -1, -1, r)
	a.byte(0xf7)
	a.modrmReg(6, r)
}

func (a *asmBuf) setcc(cc byte, r int) {
	a.rex8(-1, -1, r)
	a.byte(0x0f, 0x90+cc)
	a.modrmReg(0, r)
}

// movzxRegReg8 zero-extends the low byte of src into dst (full width).
func (a *asmBuf) movzxRegReg8(dst, src int) {
	a.rex8(dst, -1, src)
	a.byte(0x0f, 0xb6)
	a.modrmReg(dst, src)
}

func (a *asmBuf) movzxRegReg16(dst, src int) {
	a.rex(false, dst, -1, src)
	a.byte(0x0f, 0xb7)
	a.modrmReg(dst, src)
}

func (a *asmBuf) movsxRegReg8(dst, src int) {
	a.rex(true, dst, -1, src)
	a.byte(0x0f, 0xbe)
	a.modrmReg(dst, src)
}

func (a *asmBuf) movsxRegReg16(dst, src int) {
	a.rex(true, dst, -1, src)
	a.byte(0x0f, 0xbf)
	a.modrmReg(dst, src)
}

func (a *asmBuf) movsxdRegReg(dst, src int) {
	a.rex(true, dst, -1, src)
	a.byte(0x63)
	a.modrmReg(dst, src)
}

// movRegReg32 copies the low 32 bits, zero-extending (mov dst32, src32).
func (a *asmBuf) movRegReg32(dst, src int) {
	a.rex(false, src, -1, dst)
	a.byte(0x89)
	a.modrmReg(src, dst)
}

func (a *asmBuf) cmovcc(cc byte, dst, src int) {
	a.rex(true, dst, -1, src)
	a.byte(0x0f, 0x40+cc)
	a.modrmReg(dst, src)
}

func (a *asmBuf) leaRegMem(dst int, m mem) {
	a.rex(true, dst, m.index, m.base)
	a.byte(0x8d)
	a.modrmMem(dst, m)
}

// leaRIP computes the absolute address of a label: lea dst, [rip+rel32].
func (a *asmBuf) leaRIP(dst int, l int) {
	a.rex(true, dst, -1, -1)
	a.byte(0x8d)
	a.byte(byte(dst&7)<<3 | 0x05)
	a.rel32(l)
}

// --- control flow ---

func (a *asmBuf) jcc(cc byte, l int) {
	a.byte(0x0f, 0x80+cc)
	a.rel32(l)
}

func (a *asmBuf) jmp(l int) {
	a.byte(0xe9)
	a.rel32(l)
}

func (a *asmBuf) ret() { a.byte(0xc3) }

// --- SSE2 scalar double ---

// sseOp is the third opcode byte of the F2 0F xx scalar-double group.
type sseOp byte

const (
	sseAdd sseOp = 0x58
	sseMul sseOp = 0x59
	sseSub sseOp = 0x5c
	sseDiv sseOp = 0x5e
)

func (a *asmBuf) movsdLoad(x int, m mem) {
	a.byte(0xf2)
	a.rex(false, x, m.index, m.base)
	a.byte(0x0f, 0x10)
	a.modrmMem(x, m)
}

func (a *asmBuf) movsdStore(m mem, x int) {
	a.byte(0xf2)
	a.rex(false, x, m.index, m.base)
	a.byte(0x0f, 0x11)
	a.modrmMem(x, m)
}

// movqXR moves a GP register into an XMM register.
func (a *asmBuf) movqXR(x, r int) {
	a.byte(0x66)
	a.rex(true, x, -1, r)
	a.byte(0x0f, 0x6e)
	a.modrmReg(x, r)
}

// movqRX moves an XMM register into a GP register.
func (a *asmBuf) movqRX(r, x int) {
	a.byte(0x66)
	a.rex(true, x, -1, r)
	a.byte(0x0f, 0x7e)
	a.modrmReg(x, r)
}

// movsdRegReg copies a scalar double between XMM registers. Encoded as
// MOVAPS: the scalar MOVSD xmm,xmm form merges into the destination's
// upper lanes and so carries a false dependency on the register's
// previous contents — with long-lived allocator pool registers that
// serializes unrelated arithmetic behind whatever last wrote dst (a
// divide chain, typically). MOVAPS writes the full register.
func (a *asmBuf) movsdRegReg(dst, src int) {
	a.rex(false, dst, -1, src)
	a.byte(0x0f, 0x28)
	a.modrmReg(dst, src)
}

// xorps zeroes an XMM register (dependency-breaking idiom: recognized by
// the renamer, so it also severs false output dependencies).
func (a *asmBuf) xorps(x int) {
	a.rex(false, x, -1, x)
	a.byte(0x0f, 0x57)
	a.modrmReg(x, x)
}

func (a *asmBuf) sseArith(op sseOp, dst, src int) {
	a.byte(0xf2)
	a.rex(false, dst, -1, src)
	a.byte(0x0f, byte(op))
	a.modrmReg(dst, src)
}

func (a *asmBuf) ucomisd(x, y int) {
	a.byte(0x66)
	a.rex(false, x, -1, y)
	a.byte(0x0f, 0x2e)
	a.modrmReg(x, y)
}

func (a *asmBuf) cvtsi2sd(x, r int) {
	a.byte(0xf2)
	a.rex(true, x, -1, r)
	a.byte(0x0f, 0x2a)
	a.modrmReg(x, r)
}

func (a *asmBuf) cvttsd2si(r, x int) {
	a.byte(0xf2)
	a.rex(true, r, -1, x)
	a.byte(0x0f, 0x2c)
	a.modrmReg(r, x)
}

// andRegReg8 ands the low bytes (for FCmp eq/ne flag recipes).
func (a *asmBuf) andRegReg8(dst, src int) {
	a.rex8(src, -1, dst)
	a.byte(0x20)
	a.modrmReg(src, dst)
}

func (a *asmBuf) orRegReg8(dst, src int) {
	a.rex8(src, -1, dst)
	a.byte(0x08)
	a.modrmReg(src, dst)
}
