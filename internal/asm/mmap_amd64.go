//go:build amd64 && (linux || darwin)

package asm

import (
	"fmt"
	"runtime"
	"syscall"
	"unsafe"
)

// execMem is an anonymous mapping holding assembled code, remapped
// read+execute once the bytes are in place (W^X). A finalizer unmaps it
// when the owning Code becomes unreachable; nativeCtx.code pins the Code
// for as long as machine code can still be entered.
type execMem struct {
	buf  []byte
	base uintptr
	size int
}

func allocExec(code []byte) (*execMem, error) {
	if forceAllocFail.Load() {
		return nil, fmt.Errorf("asm: simulated executable-memory failure: %w", ErrUnsupported)
	}
	size := (len(code) + 4095) &^ 4095
	buf, err := syscall.Mmap(-1, 0, size,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_PRIVATE|syscall.MAP_ANON)
	if err != nil {
		return nil, fmt.Errorf("asm: mmap exec memory: %v: %w", err, ErrUnsupported)
	}
	copy(buf, code)
	if err := syscall.Mprotect(buf, syscall.PROT_READ|syscall.PROT_EXEC); err != nil {
		syscall.Munmap(buf)
		return nil, fmt.Errorf("asm: mprotect rx: %v: %w", err, ErrUnsupported)
	}
	em := &execMem{buf: buf, base: uintptr(unsafe.Pointer(&buf[0])), size: size}
	runtime.SetFinalizer(em, (*execMem).free)
	return em, nil
}

func (em *execMem) free() {
	if em.buf != nil {
		syscall.Munmap(em.buf)
		em.buf = nil
	}
}
