//go:build amd64 && (linux || darwin)

package asm

import (
	"fmt"
	"sync"
	"unsafe"

	"aqe/internal/rt"
)

// Supported reports whether this platform has a native backend.
func Supported() bool { return true }

// nativeCtx is the communication block shared between the Go driver loop
// and generated code. The first fields form a fixed layout that the
// templates address as [R13+off] (offsets asserted below); the fields
// after args are Go-only bookkeeping.
type nativeCtx struct {
	regs   unsafe.Pointer // register-file base, pinned in R12
	segPtr unsafe.Pointer // segment-table base (24-byte slice headers), pinned in R15
	segLen uint64         // segment count, pinned in RBX
	resume uint64         // code address to (re-)enter at
	exit   uint64         // exit code
	a      uint64         // exit operands (see exit* in compile_amd64.go)
	b      uint64
	c      uint64
	args   [rt.MaxCallArgs]uint64 // staged extern-call arguments

	goSegs [][]byte // keeps the snapshot's backing array reachable for the GC
	code   *Code    // pins the executable mapping while machine code runs
}

func init() {
	var nc nativeCtx
	var bs []byte
	ok := unsafe.Offsetof(nc.regs) == ncRegs &&
		unsafe.Offsetof(nc.segPtr) == ncSegPtr &&
		unsafe.Offsetof(nc.segLen) == ncSegLen &&
		unsafe.Offsetof(nc.resume) == ncResume &&
		unsafe.Offsetof(nc.exit) == ncExit &&
		unsafe.Offsetof(nc.a) == ncA &&
		unsafe.Offsetof(nc.b) == ncB &&
		unsafe.Offsetof(nc.c) == ncC &&
		unsafe.Offsetof(nc.args) == ncArgs &&
		unsafe.Sizeof(bs) == 24 // segment-table stride baked into segTranslate
	if !ok {
		panic("asm: nativeCtx layout drifted from the machine-code templates")
	}
}

// refresh (re-)snapshots the segment table. Called at entry and after
// every extern call — the only points at which new segments can become
// visible to the executing worker (the table itself is copy-on-write).
func (nc *nativeCtx) refresh(mem *rt.Memory) {
	segs := mem.Segs()
	nc.goSegs = segs
	nc.segPtr = unsafe.Pointer(&segs[0]) // table always contains the null segment
	nc.segLen = uint64(len(segs))
}

var ncPool = sync.Pool{New: func() any { return new(nativeCtx) }}

func putNC(nc *nativeCtx) {
	nc.regs = nil
	nc.segPtr = nil
	nc.goSegs = nil
	nc.code = nil
	ncPool.Put(nc)
}

// enter transfers control to nc.resume with the pinned registers loaded
// (implemented in enter_amd64.s). Generated code returns through it after
// writing an exit record into nc.
//
//go:noescape
func enter(nc *nativeCtx)

// Code is a function assembled into executable memory.
type Code struct {
	mem       *execMem
	entry     uintptr
	numSlots  int
	numParams int
}

func newCode(bytes []byte, numSlots, numParams int) (*Code, error) {
	em, err := allocExec(bytes)
	if err != nil {
		return nil, err
	}
	return &Code{mem: em, entry: em.base, numSlots: numSlots, numParams: numParams}, nil
}

// SizeBytes returns the mapped size of the machine code.
func (c *Code) SizeBytes() int { return c.mem.size }

// NumSlots returns the register-file size the code runs against.
func (c *Code) NumSlots() int { return c.numSlots }

// Run executes the function against ctx with the same calling convention
// as the interpreters and closure tiers: args become the leading register
// slots, the result is the returned bit pattern, rt traps unwind via
// rt.Throw. The driver loops re-entering the code after servicing each
// extern-call exit.
func (c *Code) Run(ctx *rt.Ctx, args []uint64) uint64 {
	regs := ctx.PushRegs(c.numSlots)
	n := c.numParams
	if n > len(args) {
		n = len(args)
	}
	copy(regs[:n], args[:n])
	nc := ncPool.Get().(*nativeCtx)
	nc.regs = unsafe.Pointer(&regs[0])
	nc.code = c
	nc.refresh(ctx.Mem)
	nc.resume = uint64(c.entry)
	for {
		enter(nc)
		switch nc.exit {
		case exitRet:
			ret := nc.c
			putNC(nc)
			ctx.PopRegs()
			return ret
		case exitCall:
			fn := ctx.Funcs[nc.a]
			argc := int(nc.b)
			copy(ctx.Args[:argc], nc.args[:argc])
			res := fn(ctx, ctx.Args[:argc])
			// The extern may have added segments or re-entered generated
			// code on this ctx; re-snapshot before resuming.
			nc.refresh(ctx.Mem)
			if nc.c != 0 {
				regs[nc.c-1] = res
			}
		case exitTrap:
			code := rt.TrapCode(nc.a)
			putNC(nc)
			// Like the VM, a trap unwinds without PopRegs; the engine's
			// CatchTrap boundary resets the register stack.
			rt.Throw(code)
		default: // exitFault
			addr := nc.a
			putNC(nc)
			// Same failure class as the interpreters' slice bounds panic:
			// not an rt.Trap, so it propagates past CatchTrap.
			panic(fmt.Sprintf("asm: out-of-range memory access at %#x in %s", addr, "native code"))
		}
	}
}
