// Package asm is the native machine-code tier: a copy-and-patch style
// template JIT that lowers IR functions to directly executable amd64 code
// (Xu & Kjolstad 2021; TPDE 2025). Each IR op has a hand-written machine
// code template parameterized over its operand kinds (register-file slot
// or immediate); compilation is a single linear pass that stitches the
// templates together, patches branch displacements, and publishes the
// bytes in mmap'd executable memory — no optimization passes, so
// assemble latency stays below even the unoptimized closure backend.
// A TPDE-style single-pass register allocator (regalloc_amd64.go) keeps
// SSA values live in machine registers across the stitched templates
// within a block, spilling to register-file slots only under pressure
// and flushing every live register to its canonical slot at each exit
// point, so all other tiers stay bit-compatible; Options.NoRegAlloc
// selects the original slot-per-op emission.
//
// Generated code executes against the same state as every other tier: the
// per-frame register file (one 8-byte slot per SSA value, pinned in R12),
// the segmented rt address space (segment-table snapshot pinned in
// R15/RBX), and the extern call table. Calls, traps, and memory faults do
// not happen inside native code; instead the template writes an exit
// record into the native context and returns to Go through the trampoline
// (enter_amd64.s), and the Go-side driver loop dispatches the extern or
// throws the rt.Trap before re-entering at the recorded resume address.
// This exit-to-Go protocol is what keeps the tier safe under Go's stack
// growth, GC, and async preemption: the goroutine's stack never holds a
// JIT address while Go code runs.
//
// The architecture seam is the build tag: amd64 on linux/darwin gets the
// real backend, every other GOARCH/GOOS compiles the stub whose Compile
// returns ErrUnsupported, and the engine falls back per-pipeline to the
// optimized closure tier.
package asm

import (
	"errors"
	"sync/atomic"
)

// ErrUnsupported reports that the native backend cannot compile on this
// platform (or, wrapped, a specific function). Callers fall back to the
// closure tiers.
var ErrUnsupported = errors.New("native code generation unsupported")

// Options selects backend variants. The zero value is the default
// (register-allocating) backend.
type Options struct {
	// NoRegAlloc forces the slot-per-op template backend: every operand is
	// loaded from and every result stored to its register-file slot, with
	// no values cached in machine registers across templates. Used as an
	// escape hatch and as the ablation baseline for the allocator.
	NoRegAlloc bool
}

// forceAllocFail, when set (tests only), makes executable-memory
// allocation fail so graceful degradation can be exercised on platforms
// where the backend otherwise works.
var forceAllocFail atomic.Bool

// SetAllocFailure forces (or clears) simulated executable-memory
// allocation failure; tests use it to drive the engine's fallback path.
func SetAllocFailure(fail bool) { forceAllocFail.Store(fail) }
