//go:build amd64 && (linux || darwin)

package asm

import (
	"math"

	"aqe/internal/ir"
)

// regAlloc keeps SSA values live in machine registers across stitched
// templates, in the spirit of TPDE's single-pass back-end allocation: no
// interval construction, just a value→register map maintained during the
// one linear emission pass, with next-use-driven eviction (the per-block
// analogue of linear scan's furthest-end heuristic).
//
// The invariant that keeps every other tier oblivious to the allocator is
// canonical-slot flushing: at every point where control can leave the
// generated code — extern calls, traps, faults, function return — and at
// every block boundary, all live dirty registers have been stored to
// their register-file slots, so the frame looks exactly as if the
// slot-per-op backend (or the VM) had produced it. Traps and faults get
// this for free via out-of-line side exits (see compiler.trapLabel): the
// hot path branches to a per-site stub that stores the then-dirty set
// and only then enters the shared exit-record stub, so the no-trap path
// pays nothing for the guarantee.
//
// Register classes share one numbering: 0..15 are GPRs, 16+x is XMMx.
const xmmBase = 16

// gprPool lists the allocatable GPRs in preference order. The first
// three survive the segment-translation sequence, so memory-heavy blocks
// keep their hottest values in them. Excluded: RAX/RCX/RDX (template
// scratch), RSP, RBP (left holding a frame pointer so profiling and the
// execution tracer can still walk the stack), R12/R13/R15/RBX (pinned),
// R14 (Go's g).
var gprPool = []int{r9, r10, r11, rSI, rDI, r8}

// xmmPool lists the allocatable XMM registers. X0/X1 stay template
// scratch; X15 is Go's zero register and must never be written.
var xmmPool = []int{xmmBase + 2, xmmBase + 3, xmmBase + 4, xmmBase + 5, xmmBase + 6, xmmBase + 7}

// noUse is the next-use position of a value with no further use in the
// current block: the preferred eviction victim.
const noUse = math.MaxInt32

type regAlloc struct {
	c *compiler

	loc   []int16   // value ID → phys location, -1 when not in a register
	who   [32]int   // phys location → value ID, -1 when free
	dirty [32]bool  // phys location holds a value newer than its slot

	// Per-block use positions in a flat CSR layout, rebuilt each block
	// with zero allocations: value id's uses (instruction index in the
	// current block; len(instrs) for the terminator) sit ascending at
	// useBuf[useOff[id] : useOff[id]+useCnt[id]], and useHead[id] counts
	// the retired ones. touched lists the ids with entries this block, so
	// resets touch only those.
	useBuf  []int32
	useOff  []int32
	useCnt  []int16
	useHead []int16
	touched []int32

	// dsBuf is the reusable scratch behind dirtySet.
	dsBuf []exitStore

	// cur is the instruction being emitted: its arguments were already
	// retired by consume but may still be fetched by the template, so they
	// are never treated as dead.
	cur *ir.Value

	// cross marks values read outside their defining block (including
	// φ-arguments, which predecessors read from slots): these must be
	// flushed at block ends. A dirty block-local value whose uses are
	// exhausted is dead and its store is elided entirely.
	cross []bool
}

func newRegAlloc(c *compiler) *regAlloc {
	ra := &regAlloc{
		c:       c,
		loc:     make([]int16, c.f.NumValues()),
		useOff:  make([]int32, c.f.NumValues()),
		useCnt:  make([]int16, c.f.NumValues()),
		useHead: make([]int16, c.f.NumValues()),
		cross:   make([]bool, c.f.NumValues()),
	}
	for i := range ra.loc {
		ra.loc[i] = -1
	}
	for i := range ra.who {
		ra.who[i] = -1
	}
	for _, b := range c.f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpPhi {
				for _, a := range in.Args {
					if !a.IsConst() {
						ra.cross[a.ID] = true
					}
				}
				continue
			}
			for _, a := range in.Args {
				if !a.IsConst() && (a.Block == nil || a.Block != b) {
					ra.cross[a.ID] = true
				}
			}
		}
		if t := b.Term; t != nil {
			for _, a := range t.Args {
				if !a.IsConst() && (a.Block == nil || a.Block != b) {
					ra.cross[a.ID] = true
				}
			}
		}
	}
	return ra
}

// begin starts a new block. Unless the block extends the previous one
// (single predecessor which is exactly the block just emitted, so the
// machine state on entry is the emission-end state), all cached
// locations are discarded — multi-predecessor blocks must start from
// canonical slots because each predecessor flushed its own dirty set.
func (ra *regAlloc) begin(b *ir.Block, inherit bool) {
	if !inherit {
		for p := range ra.who {
			if id := ra.who[p]; id >= 0 {
				ra.loc[id] = -1
				ra.who[p] = -1
				ra.dirty[p] = false
			}
		}
	}
	for _, id := range ra.touched {
		ra.useCnt[id], ra.useHead[id] = 0, 0
	}
	ra.touched = ra.touched[:0]
	ra.cur = nil
	// Pass 1: count uses per value so the flat buffer can be carved into
	// per-value runs without any per-value allocation.
	count := func(a *ir.Value) {
		if a.IsConst() {
			return
		}
		if ra.useCnt[a.ID] == 0 {
			ra.touched = append(ra.touched, int32(a.ID))
		}
		ra.useCnt[a.ID]++
	}
	for _, in := range b.Instrs {
		if in.Op == ir.OpPhi {
			continue // φ-arguments are slot reads in the predecessor
		}
		for _, a := range in.Args {
			count(a)
		}
	}
	if t := b.Term; t != nil {
		for _, a := range t.Args {
			count(a)
		}
	}
	n := int32(0)
	for _, id := range ra.touched {
		ra.useOff[id] = n
		n += int32(ra.useCnt[id])
		ra.useCnt[id] = 0 // reused as the fill cursor in pass 2
	}
	if cap(ra.useBuf) < int(n) {
		ra.useBuf = make([]int32, n)
	} else {
		ra.useBuf = ra.useBuf[:n]
	}
	// Pass 2: fill positions ascending; useCnt ends back at the count.
	fill := func(a *ir.Value, pos int32) {
		if a.IsConst() {
			return
		}
		ra.useBuf[ra.useOff[a.ID]+int32(ra.useCnt[a.ID])] = pos
		ra.useCnt[a.ID]++
	}
	for i, in := range b.Instrs {
		if in.Op == ir.OpPhi {
			continue
		}
		for _, a := range in.Args {
			fill(a, int32(i))
		}
	}
	if t := b.Term; t != nil {
		for _, a := range t.Args {
			fill(a, int32(len(b.Instrs)))
		}
	}
}

// consume retires one register-operand use of each of in's arguments.
// Called once per instruction (and terminator) before any operand is
// fetched, so eviction decisions see only future uses; in stays recorded
// as the in-flight instruction until the next consume, keeping its
// operands off the dead list while the template may still fetch them.
func (ra *regAlloc) consume(in *ir.Value) {
	ra.cur = in
	for _, a := range in.Args {
		if !a.IsConst() && ra.useHead[a.ID] < ra.useCnt[a.ID] {
			ra.useHead[a.ID]++
		}
	}
}

func (ra *regAlloc) nextUse(id int) int32 {
	if h := ra.useHead[id]; h < ra.useCnt[id] {
		return ra.useBuf[ra.useOff[id]+int32(h)]
	}
	return noUse
}

// isDead reports that id has no further register-operand use in this
// block, is never read outside it, and is not an operand of the
// in-flight instruction — so its register can be reclaimed without a
// spill even when dirty (the eviction-time analogue of endBlock's
// dead-store elimination).
func (ra *regAlloc) isDead(id int) bool {
	return !ra.cross[id] && ra.nextUse(id) == noUse && !ra.curArg(id)
}

// curArg reports whether id is an operand of the in-flight instruction:
// consume already retired those uses, but the template may still fetch
// them, so they are never dead.
func (ra *regAlloc) curArg(id int) bool {
	if ra.cur != nil {
		for _, a := range ra.cur.Args {
			if !a.IsConst() && a.ID == id {
				return true
			}
		}
	}
	return false
}

// regOf returns the phys location caching v, or -1.
func (ra *regAlloc) regOf(v *ir.Value) int {
	if v.IsConst() {
		return -1
	}
	return int(ra.loc[v.ID])
}

// store writes phys location p back to value id's slot.
func (ra *regAlloc) store(p int, id int) {
	s := slotMem(int(ra.c.slot[id]))
	if p >= xmmBase {
		ra.c.a.movsdStore(s, p-xmmBase)
	} else {
		ra.c.a.movMemReg(s, p)
	}
}

// drop unmaps phys location p, spilling it first when dirty — unless the
// occupant is dead, in which case the store is elided.
func (ra *regAlloc) drop(p int) {
	id := ra.who[p]
	if id < 0 {
		return
	}
	if ra.dirty[p] && !ra.isDead(id) {
		ra.store(p, id)
	}
	ra.loc[id] = -1
	ra.who[p] = -1
	ra.dirty[p] = false
}

// clobber releases the given phys locations before a template overwrites
// them, spilling any dirty occupant. Every emitted instruction is a MOV.
func (ra *regAlloc) clobber(phys ...int) {
	for _, p := range phys {
		ra.drop(p)
	}
}

// alloc picks a register from pool for a new occupant. Free registers
// win in pool preference order; otherwise the cheapest victim is
// evicted: a dead occupant (reclaimed for free), then a clean one (costs
// only a possible future reload), then a dirty one (store now, reload
// later) — within each class the furthest next use loses, linear scan's
// heuristic. Members of excl (operand registers the current template
// still reads after writing its destination) are never chosen. Spill
// code is MOV-only.
func (ra *regAlloc) alloc(pool []int, excl ...int) int {
	best, bestClass, bestUse := -1, -1, int32(-1)
	for _, p := range pool {
		if contains(excl, p) {
			continue
		}
		id := ra.who[p]
		if id < 0 {
			return p
		}
		class, u := 1, ra.nextUse(id)
		switch {
		case u == noUse && !ra.cross[id] && !ra.curArg(id): // dead
			class = 3
		case !ra.dirty[p]:
			class = 2
		}
		if class > bestClass || (class == bestClass && u > bestUse) {
			best, bestClass, bestUse = p, class, u
		}
	}
	ra.drop(best)
	return best
}

func contains(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// mapTo records that phys location p now caches v.
func (ra *regAlloc) mapTo(v *ir.Value, p int, dirty bool) {
	ra.loc[v.ID] = int16(p)
	ra.who[p] = v.ID
	ra.dirty[p] = dirty
}

// defGPR allocates a pool GPR as the destination for v and marks it
// dirty. The template must not write it before its last trap/fault
// branch (side-exit snapshots are taken between def and emission).
func (ra *regAlloc) defGPR(v *ir.Value, excl ...int) int {
	p := ra.alloc(gprPool, excl...)
	ra.mapTo(v, p, true)
	return p
}

// defXMM is defGPR for float destinations; returns the XMM index.
func (ra *regAlloc) defXMM(v *ir.Value, excl ...int) int {
	p := ra.alloc(xmmPool, excl...)
	ra.mapTo(v, p, true)
	return p - xmmBase
}

// flushAll stores every dirty register to its canonical slot, keeping
// the (now clean) mappings. Used before extern-call exits together with
// invalidateAll: the extern runs against canonical slots and may write
// any of them from Go.
func (ra *regAlloc) flushAll() {
	for p := range ra.who {
		if ra.who[p] >= 0 && ra.dirty[p] {
			ra.store(p, ra.who[p])
			ra.dirty[p] = false
		}
	}
}

// invalidateAll forgets every mapping without spilling (callers flush
// first). Register contents can no longer be trusted after an extern.
func (ra *regAlloc) invalidateAll() {
	for p := range ra.who {
		if id := ra.who[p]; id >= 0 {
			ra.loc[id] = -1
			ra.who[p] = -1
			ra.dirty[p] = false
		}
	}
}

// endBlock enforces the block-boundary invariant: every dirty value
// still live beyond this block is stored to its slot (MOV-only, so fused
// CMP flags survive into the terminator); dirty values whose uses are
// exhausted and never escape the block are dead and are simply dropped —
// the allocator's dead-store elimination. Clean mappings are kept so a
// straight-line successor can extend the block.
func (ra *regAlloc) endBlock() {
	for p := range ra.who {
		id := ra.who[p]
		if id < 0 || !ra.dirty[p] {
			continue
		}
		if ra.cross[id] {
			ra.store(p, id)
			ra.dirty[p] = false
		} else {
			ra.loc[id] = -1
			ra.who[p] = -1
			ra.dirty[p] = false
		}
	}
}

// dirtySet returns the current dirty mappings as (phys, slot) pairs in
// phys order — the store list for a side-exit stub. The returned slice
// aliases a scratch buffer valid until the next call; callers that
// retain it (new side-exit records) must copy.
func (ra *regAlloc) dirtySet() []exitStore {
	out := ra.dsBuf[:0]
	for p := range ra.who {
		if ra.who[p] >= 0 && ra.dirty[p] {
			out = append(out, exitStore{phys: int16(p), slot: ra.c.slot[ra.who[p]]})
		}
	}
	ra.dsBuf = out
	return out
}
