package rt

// arenaChunkSize is the default chunk size for runtime arenas. Chunks are
// registered as memory segments so generated code can read and write
// tuples in them directly.
const arenaChunkSize = 1 << 18

// Arena is a per-worker bump allocator over memory segments. It is not
// safe for concurrent use — every worker owns its own arena, which is what
// makes tuple materialization in build pipelines synchronization-free
// (morsel-driven parallelism, §III-A).
type Arena struct {
	mem    *Memory
	cur    Addr
	off    int
	size   int
	chunks []Addr
	used   []int
}

// NewArena returns an empty arena allocating from mem.
func NewArena(mem *Memory) *Arena { return &Arena{mem: mem} }

// Alloc returns the address of n fresh zeroed bytes.
func (a *Arena) Alloc(n int) Addr {
	if a.off+n > a.size {
		size := arenaChunkSize
		if n > size {
			size = n
		}
		a.cur = a.mem.Alloc(size)
		a.size = size
		a.off = 0
		a.chunks = append(a.chunks, a.cur)
		a.used = append(a.used, 0)
	}
	addr := a.cur + Addr(a.off)
	a.off += n
	a.used[len(a.used)-1] = a.off
	return addr
}

// Bytes returns the total bytes allocated.
func (a *Arena) Bytes() int {
	total := 0
	for _, u := range a.used {
		total += u
	}
	return total
}

// Each calls fn with the address of every stride-sized record allocated in
// order. Records must all have been allocated with size == stride.
func (a *Arena) Each(stride int, fn func(addr Addr)) {
	for i, base := range a.chunks {
		for off := 0; off+stride <= a.used[i]; off += stride {
			fn(base + Addr(off))
		}
	}
}

// EachChunk calls fn once per chunk with the chunk's base address and its
// used bytes as a direct slice. Partitioned finalization uses it to scan
// tuples without going through the segment table on every load.
func (a *Arena) EachChunk(fn func(base Addr, data []byte)) {
	for i, base := range a.chunks {
		fn(base, a.mem.Seg(base)[:a.used[i]])
	}
}

// Reset drops all chunks (their segments remain mapped but unreferenced).
func (a *Arena) Reset() {
	a.cur, a.off, a.size = 0, 0, 0
	a.chunks = a.chunks[:0]
	a.used = a.used[:0]
}
