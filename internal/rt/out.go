package rt

// OutSet is the per-pipeline set of per-worker output buffers. The final
// pipeline of a query materializes result rows through out_alloc: each row
// is a fixed-width record the engine decodes after the pipeline finishes.
// Row order across workers is unspecified, matching SQL semantics for
// queries without ORDER BY; sorting happens on the decoded rows.
type OutSet struct {
	mem     *Memory
	RowSize int
	bufs    []*Arena
}

// NewOutSet creates an output set with one buffer per worker.
func NewOutSet(mem *Memory, workers, rowSize int) *OutSet {
	s := &OutSet{mem: mem, RowSize: rowSize}
	for i := 0; i < workers; i++ {
		s.bufs = append(s.bufs, NewArena(mem))
	}
	return s
}

// Alloc returns the address of a fresh row for worker w.
func (s *OutSet) Alloc(w int) Addr {
	return s.bufs[w].Alloc(s.RowSize)
}

// Rows returns the total number of rows written.
func (s *OutSet) Rows() int {
	total := 0
	for _, b := range s.bufs {
		total += b.Bytes() / s.RowSize
	}
	return total
}

// Each calls fn with every row address, worker by worker.
func (s *OutSet) Each(fn func(addr Addr)) {
	for _, b := range s.bufs {
		b.Each(s.RowSize, fn)
	}
}
