package rt

import (
	"encoding/binary"
	"math"
)

// AggKind identifies an aggregate function for the merge step. The per-
// tuple update happens in generated code; the runtime only needs enough
// semantics to combine per-worker hash tables.
type AggKind uint8

// Aggregate kinds. Sum is an overflow-checked sum of scaled integers,
// SumF a float sum, Count a counter, Min/Max signed integer extremes,
// MinF/MaxF float extremes (float bit patterns are not ordered like int64
// values for negatives, so they need their own comparison and identities).
const (
	AggSum AggKind = iota
	AggSumF
	AggCount
	AggMin
	AggMax
	AggMinF
	AggMaxF
)

// Init returns the identity bit pattern the aggregate field starts from.
func (k AggKind) Init() uint64 {
	switch k {
	case AggMin:
		return uint64(math.MaxInt64)
	case AggMax:
		return uint64(uint64(1) << 63) // math.MinInt64 bit pattern
	case AggMinF:
		return math.Float64bits(math.Inf(1))
	case AggMaxF:
		return math.Float64bits(math.Inf(-1))
	default:
		return 0
	}
}

// Combine merges src into dst, trapping on sum overflow. Float extremes
// keep dst when src is NaN — the same "comparison false keeps current"
// behaviour the generated per-tuple FCmp update has.
func (k AggKind) Combine(dst, src uint64) uint64 {
	switch k {
	case AggSum, AggCount:
		r := int64(dst) + int64(src)
		if k == AggSum && (int64(dst)^r)&(int64(src)^r) < 0 {
			Throw(TrapOverflow)
		}
		return uint64(r)
	case AggSumF:
		return math.Float64bits(math.Float64frombits(dst) + math.Float64frombits(src))
	case AggMin:
		if int64(src) < int64(dst) {
			return src
		}
		return dst
	case AggMinF:
		if math.Float64frombits(src) < math.Float64frombits(dst) {
			return src
		}
		return dst
	case AggMaxF:
		if math.Float64frombits(src) > math.Float64frombits(dst) {
			return src
		}
		return dst
	default:
		if int64(src) > int64(dst) {
			return src
		}
		return dst
	}
}

// AggField describes one aggregate slot inside a group entry.
type AggField struct {
	Kind AggKind
	Off  int // byte offset within the entry
}

// KeyField describes one group-key slot inside a group entry.
type KeyField struct {
	Off int
	Str bool // 16-byte (addr, len) string reference instead of an i64
}

// Group entry layout: [next u64][hash u64][keys...][aggs...]; codegen
// assigns the key and aggregate offsets and shares them with the runtime
// through AggSet.
const (
	aggEntryNextOff = 0
	aggEntryHashOff = 8
	// AggEntryHeader is the size of the entry header before keys.
	AggEntryHeader = 16
)

// AggSet is the per-pipeline set of per-worker aggregation hash tables.
// Each worker owns one table, so the per-tuple find-or-insert path needs
// no synchronization; Finalize merges the tables and builds a dense index
// of group entries for the next pipeline to scan — HyPer's thread-local
// pre-aggregation scheme.
type AggSet struct {
	mem       *Memory
	EntrySize int
	Keys      []KeyField
	Aggs      []AggField
	// LocalOff is the offset in each worker-local arena where the table
	// publishes [bucketsAddr u64][mask u64][scalarEntry u64].
	LocalOff int
	// Scalar marks a group-by without keys (a single global group).
	Scalar bool

	hts []*aggHT

	// Results of Finalize.
	IndexAddr Addr
	Groups    int
}

// LocalSlotBytes is the per-table reservation in the worker-local arena.
const LocalSlotBytes = 24

type aggHT struct {
	mem         *Memory
	set         *AggSet
	buckets     []byte
	bucketsAddr Addr
	mask        uint64
	count       int
	arena       *Arena
	localAddr   Addr // worker-local arena base
}

// NewAggSet creates the per-worker tables and initializes each worker's
// local-arena slots (bucket base, mask and — for scalar aggregation — the
// pre-created singleton entry).
func NewAggSet(mem *Memory, workers int, entrySize int, keys []KeyField,
	aggs []AggField, localOff int, scalar bool, locals []Addr) *AggSet {
	s := &AggSet{
		mem: mem, EntrySize: entrySize, Keys: keys, Aggs: aggs,
		LocalOff: localOff, Scalar: scalar,
	}
	for w := 0; w < workers; w++ {
		ht := &aggHT{mem: mem, set: s, arena: NewArena(mem), localAddr: locals[w]}
		ht.grow(64)
		s.hts = append(s.hts, ht)
	}
	if scalar {
		// Pre-create one properly linked entry per worker so the merge
		// and the group index see them like any other group.
		for w := 0; w < workers; w++ {
			e := s.Insert(w, 0)
			for _, a := range aggs {
				mem.Store64(e+Addr(a.Off), a.Kind.Init())
			}
			mem.Store64(locals[w]+Addr(localOff)+16, e)
		}
	}
	return s
}

func (ht *aggHT) grow(nb int) {
	newBuckets := make([]byte, nb*8)
	newMask := uint64(nb - 1)
	if ht.buckets == nil {
		ht.bucketsAddr = ht.mem.AddSegment(newBuckets)
	} else {
		// Relink every entry by walking the old chains — NOT the arena:
		// after Finalize starts merging, the table also links entries
		// that live in other workers' arenas.
		for b := 0; b < len(ht.buckets); b += 8 {
			e := leU64(ht.buckets[b:])
			for e != 0 {
				next := ht.mem.Load64(e + aggEntryNextOff)
				h := ht.mem.Load64(e + aggEntryHashOff)
				idx := (h & newMask) * 8
				ht.mem.Store64(e+aggEntryNextOff, leU64(newBuckets[idx:]))
				putU64(newBuckets[idx:], e)
				e = next
			}
		}
		// Growth is single-writer (each worker grows only its own table,
		// and the merge grows the target between pipelines), so replace
		// the backing bytes of the existing segment instead of abandoning
		// it: a long query's repeated doublings must not crawl toward the
		// segment-table cap.
		ht.mem.SetSegment(ht.bucketsAddr, newBuckets)
	}
	ht.buckets = newBuckets
	ht.mask = newMask
	ht.publish()
}

func (ht *aggHT) publish() {
	base := ht.localAddr + Addr(ht.set.LocalOff)
	ht.mem.Store64(base, ht.bucketsAddr)
	ht.mem.Store64(base+8, ht.mask)
}

// Insert allocates, links and returns a new zeroed entry for the given
// hash on worker w's table, growing the table when it passes 75% fill.
// Generated code stores the keys and initializes the aggregate slots of
// the returned entry, then falls through to its normal update path.
func (s *AggSet) Insert(w int, hash uint64) Addr {
	ht := s.hts[w]
	if ht.count*4 >= len(ht.buckets)/8*3 {
		ht.grow(len(ht.buckets) / 8 * 2)
	}
	e := ht.arena.Alloc(s.EntrySize)
	idx := (hash & ht.mask) * 8
	s.mem.Store64(e+aggEntryNextOff, leU64(ht.buckets[idx:]))
	s.mem.Store64(e+aggEntryHashOff, hash)
	putU64(ht.buckets[idx:], e)
	ht.count++
	return e
}

// keysEqual compares the group keys of two entries.
func (s *AggSet) keysEqual(a, b Addr) bool {
	for _, k := range s.Keys {
		if k.Str {
			aAddr, aLen := s.mem.Load64(a+Addr(k.Off)), s.mem.Load64(a+Addr(k.Off)+8)
			bAddr, bLen := s.mem.Load64(b+Addr(k.Off)), s.mem.Load64(b+Addr(k.Off)+8)
			if aLen != bLen {
				return false
			}
			ab := s.mem.Bytes(aAddr, int(aLen))
			bb := s.mem.Bytes(bAddr, int(bLen))
			if string(ab) != string(bb) {
				return false
			}
		} else if s.mem.Load64(a+Addr(k.Off)) != s.mem.Load64(b+Addr(k.Off)) {
			return false
		}
	}
	return true
}

// Finalize merges workers 1..n into worker 0's table and builds the dense
// group index the follow-up pipeline scans. It runs single-threaded
// between pipelines.
func (s *AggSet) Finalize() {
	target := s.hts[0]
	for _, ht := range s.hts[1:] {
		ht.arena.Each(s.EntrySize, func(e Addr) {
			h := s.mem.Load64(e + aggEntryHashOff)
			// Find in target.
			idx := (h & target.mask) * 8
			cur := leU64(target.buckets[idx:])
			for cur != 0 {
				if s.mem.Load64(cur+aggEntryHashOff) == h && s.keysEqual(cur, e) {
					for _, a := range s.Aggs {
						dst := s.mem.Load64(cur + Addr(a.Off))
						src := s.mem.Load64(e + Addr(a.Off))
						s.mem.Store64(cur+Addr(a.Off), a.Kind.Combine(dst, src))
					}
					return
				}
				cur = s.mem.Load64(cur + aggEntryNextOff)
			}
			// Move the entry into the target table.
			if target.count*4 >= len(target.buckets)/8*3 {
				target.grow(len(target.buckets) / 8 * 2)
				idx = (h & target.mask) * 8
			}
			s.mem.Store64(e+aggEntryNextOff, leU64(target.buckets[idx:]))
			putU64(target.buckets[idx:], e)
			target.count++
		})
	}
	// Entries adopted from other workers still live in their original
	// arenas, so the dense index walks the bucket chains rather than the
	// target arena.
	index := make([]byte, target.count*8)
	i := 0
	for b := 0; b < len(target.buckets); b += 8 {
		for e := leU64(target.buckets[b:]); e != 0; e = s.mem.Load64(e + aggEntryNextOff) {
			putU64(index[i*8:], e)
			i++
		}
	}
	s.Groups = target.count
	s.IndexAddr = s.mem.AddSegment(index)
}

// FinalizeParallel merges the per-worker tables with up to parts hash-range
// partitions scheduled through pfor, then builds the dense group index in
// parallel. Each partition task owns a contiguous bucket-index range of a
// fresh table sized for the combined entry count and merges that range from
// every source table, visiting sources in worker order and entries in arena
// order — the same encounter order as the serial merge, so representative
// entries, float Combine order, and therefore checksums are identical to
// Finalize. Returns the partition count actually used (1 when the tables
// are too small to benefit).
func (s *AggSet) FinalizeParallel(parts int, pfor ParallelFor) int {
	total := 0
	for _, ht := range s.hts {
		total += ht.count
	}
	if total == 0 {
		s.Groups = 0
		s.IndexAddr = s.mem.ZeroSeg()
		return 1
	}
	nb := nextPow2(2 * total)
	if parts > nb {
		parts = nb
	}
	if parts < 1 || total < minParallelBreaker {
		parts = 1
	}
	if parts == 1 {
		// One partition degenerates to the serial merge, which is strictly
		// cheaper: it merges into worker 0's live table instead of
		// re-linking every entry into a fresh one.
		s.Finalize()
		return 1
	}
	// A fresh bucket array sized up front: no mid-merge growth, so the
	// partition ranges stay fixed and writes stay disjoint. The plain slice
	// is never published — probes of the follow-up pipeline scan the dense
	// index, not the buckets.
	buckets := make([]byte, nb*8)
	mask := uint64(nb - 1)
	counts := make([]int, parts+1)

	mergeRange := func(p int, lo, hi uint64) {
		groups := 0
		for _, ht := range s.hts {
			ht.arena.EachChunk(func(base Addr, data []byte) {
				for off := 0; off+s.EntrySize <= len(data); off += s.EntrySize {
					e := base + Addr(off)
					h := leU64(data[off+aggEntryHashOff:])
					idx := h & mask
					if idx < lo || idx >= hi {
						continue
					}
					bi := idx * 8
					cur := leU64(buckets[bi:])
					merged := false
					for cur != 0 {
						if s.mem.Load64(cur+aggEntryHashOff) == h && s.keysEqual(cur, e) {
							for _, a := range s.Aggs {
								dst := s.mem.Load64(cur + Addr(a.Off))
								src := s.mem.Load64(e + Addr(a.Off))
								s.mem.Store64(cur+Addr(a.Off), a.Kind.Combine(dst, src))
							}
							merged = true
							break
						}
						cur = s.mem.Load64(cur + aggEntryNextOff)
					}
					if !merged {
						s.mem.Store64(e+aggEntryNextOff, leU64(buckets[bi:]))
						putU64(buckets[bi:], e)
						groups++
					}
				}
			})
		}
		counts[p+1] = groups
	}

	rangeOf := func(p int) (uint64, uint64) {
		return uint64(p) * uint64(nb) / uint64(parts),
			uint64(p+1) * uint64(nb) / uint64(parts)
	}
	pfor(parts, func(p int) {
		lo, hi := rangeOf(p)
		mergeRange(p, lo, hi)
	})

	// Prefix-sum the per-partition group counts, then fill the dense index
	// in parallel: partition p writes index slots [counts[p], counts[p+1])
	// in bucket order, matching the serial index order.
	for p := 0; p < parts; p++ {
		counts[p+1] += counts[p]
	}
	groups := counts[parts]
	index := make([]byte, groups*8)
	fillRange := func(p int, lo, hi uint64) {
		i := counts[p]
		for b := lo * 8; b < hi*8; b += 8 {
			for e := leU64(buckets[b:]); e != 0; e = s.mem.Load64(e + aggEntryNextOff) {
				putU64(index[i*8:], e)
				i++
			}
		}
	}
	pfor(parts, func(p int) {
		lo, hi := rangeOf(p)
		fillRange(p, lo, hi)
	})
	s.Groups = groups
	s.IndexAddr = s.mem.AddSegment(index)
	return parts
}

func leU64(b []byte) uint64     { return binary.LittleEndian.Uint64(b) }
func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
func leU16(b []byte) uint16     { return binary.LittleEndian.Uint16(b) }
func putU16(b []byte, v uint16) { binary.LittleEndian.PutUint16(b, v) }
