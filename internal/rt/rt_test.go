package rt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMemorySegments(t *testing.T) {
	m := NewMemory()
	a := m.Alloc(64)
	b := m.AddSegment(make([]byte, 32))
	if a>>SegShift == b>>SegShift {
		t.Fatal("segments share an id")
	}
	m.Store64(a+8, 0xDEADBEEF)
	if got := m.Load64(a + 8); got != 0xDEADBEEF {
		t.Errorf("load = %#x", got)
	}
	m.Store8(b, 0x7F)
	if got := m.Load8(b); got != 0x7F {
		t.Errorf("load8 = %#x", got)
	}
	m.Store16(b+2, 0xBEEF)
	m.Store32(b+4, 0xCAFEBABE)
	if m.Load16(b+2) != 0xBEEF || m.Load32(b+4) != 0xCAFEBABE {
		t.Error("narrow round-trips failed")
	}
	m.StoreF64(a, 3.25)
	if m.LoadF64(a) != 3.25 {
		t.Error("float round-trip failed")
	}
}

func TestMemoryNullSegmentFaults(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic dereferencing null")
		}
	}()
	m := NewMemory()
	m.Load64(0)
}

func TestMemoryConcurrentAppend(t *testing.T) {
	m := NewMemory()
	base := m.Alloc(8)
	done := make(chan bool)
	go func() {
		for i := 0; i < 200; i++ {
			m.Alloc(128)
		}
		done <- true
	}()
	for i := 0; i < 10000; i++ {
		m.Store64(base, uint64(i))
		if got := m.Load64(base); got != uint64(i) {
			t.Errorf("read %d, want %d", got, i)
			break
		}
	}
	<-done
}

func TestArena(t *testing.T) {
	m := NewMemory()
	a := NewArena(m)
	var addrs []Addr
	for i := 0; i < 1000; i++ {
		addr := a.Alloc(24)
		m.Store64(addr, uint64(i))
		addrs = append(addrs, addr)
	}
	if a.Bytes() != 24000 {
		t.Errorf("Bytes = %d", a.Bytes())
	}
	i := 0
	a.Each(24, func(addr Addr) {
		if addr != addrs[i] {
			t.Fatalf("Each order broken at %d", i)
		}
		if m.Load64(addr) != uint64(i) {
			t.Fatalf("value at %d corrupted", i)
		}
		i++
	})
	if i != 1000 {
		t.Errorf("Each visited %d records", i)
	}
}

func TestArenaLargeAlloc(t *testing.T) {
	m := NewMemory()
	a := NewArena(m)
	big := a.Alloc(1 << 20) // larger than the chunk size
	m.Store64(big+(1<<20)-8, 7)
	if m.Load64(big+(1<<20)-8) != 7 {
		t.Error("large alloc broken")
	}
}

func TestJoinHT(t *testing.T) {
	m := NewMemory()
	const tupleSize = 24 // hash, next, key
	stateAddr := m.Alloc(16)
	h := NewJoinHT(m, 2, tupleSize, 0, false)
	// Insert 100 tuples from two workers; key = i, hash = weak on purpose
	// to force chains.
	for i := 0; i < 100; i++ {
		w := i % 2
		tup := h.Alloc(w)
		m.Store64(tup, uint64(i%8)) // hash with many collisions
		m.Store64(tup+16, uint64(i))
	}
	h.Finalize(stateAddr)
	if h.Count != 100 {
		t.Fatalf("Count = %d", h.Count)
	}
	// The published state must let a probe find every key.
	buckets := m.Load64(stateAddr)
	mask := m.Load64(stateAddr + 8)
	if buckets != h.BucketsAddr || mask != h.Mask {
		t.Fatal("state publication wrong")
	}
	found := make(map[uint64]bool)
	for hash := uint64(0); hash < 8; hash++ {
		e := m.Load64(buckets + (hash&mask)*8)
		for e != 0 {
			if m.Load64(e) == hash {
				found[m.Load64(e+16)] = true
			}
			e = m.Load64(e + 8)
		}
	}
	if len(found) != 100 {
		t.Errorf("probe found %d keys, want 100", len(found))
	}
}

func TestJoinHTEmpty(t *testing.T) {
	m := NewMemory()
	stateAddr := m.Alloc(16)
	h := NewJoinHT(m, 1, 24, 0, false)
	h.Finalize(stateAddr)
	buckets := m.Load64(stateAddr)
	mask := m.Load64(stateAddr + 8)
	if got := m.Load64(buckets + (12345&mask)*8); got != 0 {
		t.Errorf("empty table bucket head = %#x", got)
	}
}

func TestAggSetGroupBy(t *testing.T) {
	m := NewMemory()
	q := NewQueryState(m, 2, 16, 64)
	// Entry: [next][hash][key i64 @16][sum @24][count @32]
	entrySize := 40
	keys := []KeyField{{Off: 16}}
	aggs := []AggField{{Kind: AggSum, Off: 24}, {Kind: AggCount, Off: 32}}
	id := q.AddAgg(entrySize, keys, aggs, 0, false)
	set := q.Aggs[id]

	// Simulate generated code: insert/update from two workers.
	update := func(w int, key, val uint64) {
		ht := set.hts[w]
		hash := key*0x9E3779B97F4A7C15 ^ (key >> 7)
		// walk
		bAddr := m.Load64(q.Locals[w])
		mask := m.Load64(q.Locals[w] + 8)
		e := m.Load64(bAddr + (hash&mask)*8)
		for e != 0 {
			if m.Load64(e+8) == hash && m.Load64(e+16) == key {
				break
			}
			e = m.Load64(e)
		}
		if e == 0 {
			e = set.Insert(w, hash)
			m.Store64(e+16, key)
			m.Store64(e+24, AggSum.Init())
			m.Store64(e+32, AggCount.Init())
		}
		m.Store64(e+24, m.Load64(e+24)+val)
		m.Store64(e+32, m.Load64(e+32)+1)
		_ = ht
	}
	// 1000 updates across 10 keys and 2 workers.
	for i := 0; i < 1000; i++ {
		update(i%2, uint64(i%10), uint64(i))
	}
	set.Finalize()
	if set.Groups != 10 {
		t.Fatalf("Groups = %d, want 10", set.Groups)
	}
	// Validate sums.
	wantSum := make(map[uint64]uint64)
	wantCnt := make(map[uint64]uint64)
	for i := 0; i < 1000; i++ {
		wantSum[uint64(i%10)] += uint64(i)
		wantCnt[uint64(i%10)]++
	}
	for i := 0; i < set.Groups; i++ {
		e := m.Load64(set.IndexAddr + Addr(i*8))
		key := m.Load64(e + 16)
		if m.Load64(e+24) != wantSum[key] {
			t.Errorf("key %d: sum %d, want %d", key, m.Load64(e+24), wantSum[key])
		}
		if m.Load64(e+32) != wantCnt[key] {
			t.Errorf("key %d: count %d, want %d", key, m.Load64(e+32), wantCnt[key])
		}
	}
}

func TestAggSetScalar(t *testing.T) {
	m := NewMemory()
	q := NewQueryState(m, 3, 16, 64)
	entrySize := 32 // [next][hash][sum @16][min @24]
	aggs := []AggField{{Kind: AggSum, Off: 16}, {Kind: AggMin, Off: 24}}
	id := q.AddAgg(entrySize, nil, aggs, 0, true)
	set := q.Aggs[id]
	for w := 0; w < 3; w++ {
		e := m.Load64(q.Locals[w] + 16)
		if e == 0 {
			t.Fatal("scalar entry not published")
		}
		for i := 1; i <= 10; i++ {
			v := uint64(w*100 + i)
			m.Store64(e+16, m.Load64(e+16)+v)
			if int64(v) < int64(m.Load64(e+24)) {
				m.Store64(e+24, v)
			}
		}
	}
	set.Finalize()
	if set.Groups != 1 {
		t.Fatalf("Groups = %d", set.Groups)
	}
	e := m.Load64(set.IndexAddr)
	wantSum := uint64(0)
	for w := 0; w < 3; w++ {
		for i := 1; i <= 10; i++ {
			wantSum += uint64(w*100 + i)
		}
	}
	if m.Load64(e+16) != wantSum {
		t.Errorf("sum = %d, want %d", m.Load64(e+16), wantSum)
	}
	if m.Load64(e+24) != 1 {
		t.Errorf("min = %d, want 1", m.Load64(e+24))
	}
}

func TestAggCombineOverflowTraps(t *testing.T) {
	err := CatchTrap(func() {
		AggSum.Combine(uint64(int64(1)<<62), uint64(int64(1)<<62))
	})
	if trap, ok := err.(*Trap); !ok || trap.Code != TrapOverflow {
		t.Errorf("expected overflow trap, got %v", err)
	}
}

func TestOutSet(t *testing.T) {
	m := NewMemory()
	s := NewOutSet(m, 2, 16)
	for i := 0; i < 50; i++ {
		addr := s.Alloc(i % 2)
		m.Store64(addr, uint64(i))
		m.Store64(addr+8, uint64(i*i))
	}
	if s.Rows() != 50 {
		t.Fatalf("Rows = %d", s.Rows())
	}
	sum := uint64(0)
	s.Each(func(addr Addr) { sum += m.Load64(addr) })
	if sum != 49*50/2 {
		t.Errorf("sum = %d", sum)
	}
}

// likeRef is a simple reference LIKE matcher (O(n*m) dynamic programming)
// used to property-test the compiled matcher.
func likeRef(pattern, s string) bool {
	p, str := []byte(pattern), []byte(s)
	dp := make([][]bool, len(p)+1)
	for i := range dp {
		dp[i] = make([]bool, len(str)+1)
	}
	dp[0][0] = true
	for i := 1; i <= len(p); i++ {
		if p[i-1] == '%' {
			dp[i][0] = dp[i-1][0]
		}
	}
	for i := 1; i <= len(p); i++ {
		for j := 1; j <= len(str); j++ {
			switch p[i-1] {
			case '%':
				dp[i][j] = dp[i-1][j] || dp[i][j-1]
			case '_':
				dp[i][j] = dp[i-1][j-1]
			default:
				dp[i][j] = dp[i-1][j-1] && p[i-1] == str[j-1]
			}
		}
	}
	return dp[len(p)][len(str)]
}

func TestLikeFixedCases(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"PROMO%", "PROMO BURNISHED", true},
		{"PROMO%", "STANDARD", false},
		{"%green%", "dark green metallic", true},
		{"%green%", "forest chartreuse", false},
		{"%BRASS", "SMALL PLATED BRASS", true},
		{"%BRASS", "BRASS POLISHED", false},
		{"forest%", "forest green", true},
		{"a_c", "abc", true},
		{"a_c", "abbc", false},
		{"a%b%c", "aXbYc", true},
		{"a%b%c", "acb", false},
		{"%", "", true},
		{"%", "anything", true},
		{"", "", true},
		{"", "x", false},
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"_", "x", true},
		{"_", "", false},
		{"_%", "x", true},
		{"%_", "", false},
	}
	for _, c := range cases {
		p := CompileLike(c.pat)
		if got := p.Match([]byte(c.s)); got != c.want {
			t.Errorf("LIKE %q on %q = %v, want %v", c.pat, c.s, got, c.want)
		}
		if ref := likeRef(c.pat, c.s); ref != c.want {
			t.Errorf("reference matcher disagrees on %q/%q", c.pat, c.s)
		}
	}
}

func TestLikeProperty(t *testing.T) {
	alphabet := []byte("ab%_")
	strAlpha := []byte("ab")
	rng := rand.New(rand.NewSource(1))
	gen := func(n int, alpha []byte) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = alpha[rng.Intn(len(alpha))]
		}
		return string(b)
	}
	check := func() bool {
		pat := gen(rng.Intn(8), alphabet)
		s := gen(rng.Intn(10), strAlpha)
		p := CompileLike(pat)
		got := p.Match([]byte(s))
		want := likeRef(pat, s)
		if got != want {
			t.Logf("LIKE %q on %q: got %v, want %v", pat, s, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
	// Targeted shapes for the single-literal fast paths: prefix (lit%),
	// suffix (%lit), contains (%lit%), and exact (lit), with random
	// literals over the same alphabet.
	checkShaped := func() bool {
		lit := gen(rng.Intn(6), strAlpha)
		var pat string
		switch rng.Intn(4) {
		case 0:
			pat = lit + "%"
		case 1:
			pat = "%" + lit
		case 2:
			pat = "%" + lit + "%"
		default:
			pat = lit
		}
		s := gen(rng.Intn(10), strAlpha)
		got := CompileLike(pat).Match([]byte(s))
		want := likeRef(pat, s)
		if got != want {
			t.Logf("LIKE %q on %q: got %v, want %v", pat, s, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(checkShaped, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestStrHash(t *testing.T) {
	a := StrHash([]byte("hello"))
	b := StrHash([]byte("hello"))
	c := StrHash([]byte("world"))
	if a != b {
		t.Error("hash not deterministic")
	}
	if a == c {
		t.Error("suspicious collision")
	}
}

func TestYearOfDays(t *testing.T) {
	cases := []struct {
		date string
		year int64
	}{
		{"1970-01-01", 1970},
		{"1992-01-01", 1992},
		{"1995-12-31", 1995},
		{"1996-01-01", 1996},
		{"1998-12-01", 1998},
		{"2000-02-29", 2000},
		{"1969-12-31", 1969},
	}
	for _, c := range cases {
		days := mustDays(c.date)
		if got := YearOfDays(days); got != c.year {
			t.Errorf("YearOfDays(%s=%d) = %d, want %d", c.date, days, got, c.year)
		}
	}
}

func mustDays(s string) int64 {
	var y, mo, d int
	if _, err := sscanfDate(s, &y, &mo, &d); err != nil {
		panic(err)
	}
	// days since epoch via Zeller-free arithmetic: reuse the inverse of
	// yearOfDays' algorithm.
	yy := int64(y)
	m := int64(mo)
	if m <= 2 {
		yy--
		m += 12
	}
	era := yy / 400
	if yy < 0 {
		era = (yy - 399) / 400
	}
	yoe := yy - era*400
	doy := (153*(m-3)+2)/5 + int64(d) - 1
	doe := yoe*365 + yoe/4 - yoe/100 + doy
	return era*146097 + doe - 719468
}

func sscanfDate(s string, y, m, d *int) (int, error) {
	n := 0
	parse := func(str string) int {
		v := 0
		for _, c := range str {
			v = v*10 + int(c-'0')
		}
		return v
	}
	*y, *m, *d = parse(s[0:4]), parse(s[5:7]), parse(s[8:10])
	n = 3
	return n, nil
}

func TestRegistryBindMissing(t *testing.T) {
	r := NewRegistry()
	r.Register("a", func(ctx *Ctx, args []uint64) uint64 { return 0 })
	if _, err := r.Bind([]string{"a", "missing"}); err == nil {
		t.Fatal("expected bind error")
	}
	fns, err := r.Bind([]string{"a"})
	if err != nil || len(fns) != 1 {
		t.Fatalf("bind: %v", err)
	}
}

func TestBuiltins(t *testing.T) {
	r := NewRegistry()
	RegisterBuiltins(r)
	mem := NewMemory()
	q := NewQueryState(mem, 1, 16, 32)
	data := []byte("hello world")
	base := mem.AddSegment(data)
	pid := q.AddPattern("%world%")
	fns, err := r.Bind([]string{"str_like", "str_eq", "str_hash", "date_year"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := &Ctx{Mem: mem, Funcs: fns, Query: q}
	if got := fns[0](ctx, []uint64{uint64(pid), base, 11}); got != 1 {
		t.Error("str_like failed")
	}
	if got := fns[1](ctx, []uint64{base, 5, base, 5}); got != 1 {
		t.Error("str_eq failed on equal strings")
	}
	if got := fns[1](ctx, []uint64{base, 5, base + 6, 5}); got != 0 {
		t.Error("str_eq matched different strings")
	}
	if fns[2](ctx, []uint64{base, 5}) != StrHash([]byte("hello")) {
		t.Error("str_hash mismatch")
	}
	days := uint64(9497) // 1996-01-01
	if got := fns[3](ctx, []uint64{days}); got != 1996 {
		t.Errorf("date_year = %d", got)
	}
}

func TestPushPopRegs(t *testing.T) {
	ctx := &Ctx{}
	a := ctx.PushRegs(4)
	a[0] = 42
	b := ctx.PushRegs(8)
	b[0] = 7
	if a[0] != 42 {
		t.Error("outer frame clobbered by nested frame")
	}
	ctx.PopRegs()
	ctx.PopRegs()
	c := ctx.PushRegs(4)
	if &c[0] != &a[0] {
		t.Error("frame buffer not reused")
	}
	ctx.ResetRegs()
}

// TestAggSetMergeWithGrowth is the regression test for a real bug: when
// Finalize merges worker tables and the target grows mid-merge, entries
// adopted from other workers' arenas must survive the relink (growth walks
// the bucket chains, not the arena).
func TestAggSetMergeWithGrowth(t *testing.T) {
	m := NewMemory()
	const workers = 3
	q := NewQueryState(m, workers, 16, 64)
	entrySize := 32 // [next][hash][key @16][count @24]
	keys := []KeyField{{Off: 16}}
	aggs := []AggField{{Kind: AggCount, Off: 24}}
	id := q.AddAgg(entrySize, keys, aggs, 0, false)
	set := q.Aggs[id]

	// Enough disjoint keys per worker that the merge forces several
	// growth rounds of worker 0's table (initial capacity 64).
	const perWorker = 400
	for w := 0; w < workers; w++ {
		for k := 0; k < perWorker; k++ {
			key := uint64(w*perWorker + k)
			hash := key*0x9E3779B97F4A7C15 ^ (key >> 13)
			e := set.Insert(w, hash)
			m.Store64(e+16, key)
			m.Store64(e+24, 1)
		}
	}
	set.Finalize()
	if set.Groups != workers*perWorker {
		t.Fatalf("Groups = %d, want %d", set.Groups, workers*perWorker)
	}
	seen := make(map[uint64]bool)
	for i := 0; i < set.Groups; i++ {
		e := m.Load64(set.IndexAddr + Addr(i*8))
		if e == 0 {
			t.Fatalf("index slot %d is null (lost entry)", i)
		}
		key := m.Load64(e + 16)
		if seen[key] {
			t.Fatalf("key %d duplicated in index", key)
		}
		seen[key] = true
		if m.Load64(e+24) != 1 {
			t.Errorf("key %d count %d", key, m.Load64(e+24))
		}
	}
}
