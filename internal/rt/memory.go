// Package rt is the runtime that generated query code executes against: a
// segmented 64-bit address space backed by Go byte slices, the extern
// function call ABI shared by the bytecode interpreter and the closure
// compiler, and the query data structures (hash tables, output buffers,
// string operations) reachable from generated code.
//
// Generated code addresses memory with 64-bit addresses of the form
//
//	segment(16 bits) << 48 | offset(48 bits)
//
// so that table columns, the query-state arena, hash-table payload arenas
// and output buffers can all be read and written directly by generated
// loads and stores — exactly as HyPer's generated machine code reads its
// process address space. Segment 0 is reserved and never mapped, so address
// 0 acts as a null pointer and faults on dereference.
package rt

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// SegShift is the bit position of the segment number within an address.
const SegShift = 48

// OffMask masks the offset bits of an address.
const OffMask = (uint64(1) << SegShift) - 1

// Addr is an address in the segmented query address space.
type Addr = uint64

// Memory is a per-query address space: a table of segments. Reads are
// lock-free; segment additions (table registration at setup, hash-table
// growth and arena chunk allocation mid-pipeline) copy the segment table
// and publish it atomically, so concurrently executing workers always see
// a consistent table. A worker can only hold an address into a segment
// that was published before the address was handed to it, which makes the
// copy-on-write scheme race-free.
type Memory struct {
	table atomic.Pointer[[][]byte]
	mu    sync.Mutex
	zero  Addr // shared read-only zero segment (lazily mapped)
}

// NewMemory returns an address space with the null segment mapped to nil.
func NewMemory() *Memory {
	m := &Memory{}
	segs := make([][]byte, 1, 64)
	m.table.Store(&segs)
	return m
}

// AddSegment maps data as a new segment and returns its base address. Safe
// for concurrent use.
func (m *Memory) AddSegment(data []byte) Addr {
	if uint64(len(data)) > OffMask {
		panic("rt: segment too large")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.addSegmentLocked(data)
}

func (m *Memory) addSegmentLocked(data []byte) Addr {
	old := *m.table.Load()
	if len(old) >= 1<<16 {
		panic("rt: segment table full")
	}
	segs := make([][]byte, len(old)+1)
	copy(segs, old)
	segs[len(old)] = data
	m.table.Store(&segs)
	return Addr(len(old)) << SegShift
}

// Alloc creates a zeroed segment of n bytes and returns its base address.
func (m *Memory) Alloc(n int) Addr {
	return m.AddSegment(make([]byte, n))
}

// ZeroSeg returns the base of a shared read-only zeroed segment, mapped at
// most once per address space. Empty hash tables publish it as their
// bucket array and filter instead of each allocating a one-bucket table:
// with mask 0 every probe reads a zero bucket head (and a zero filter
// word) from it and terminates immediately. Callers must never write
// through the returned address.
func (m *Memory) ZeroSeg() Addr {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.zero == 0 {
		m.zero = m.addSegmentLocked(make([]byte, 64))
	}
	return m.zero
}

// SetSegment atomically replaces the backing bytes of an existing segment;
// used by hash tables whose bucket arrays grow in place of their segment.
func (m *Memory) SetSegment(addr Addr, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := *m.table.Load()
	segs := make([][]byte, len(old))
	copy(segs, old)
	segs[addr>>SegShift] = data
	m.table.Store(&segs)
}

// Seg returns the backing bytes of the segment containing addr, starting at
// addr's offset. The caller indexes into the result; out-of-range accesses
// fault via the ordinary slice bounds check.
func (m *Memory) Seg(addr Addr) []byte {
	t := *m.table.Load()
	return t[addr>>SegShift][addr&OffMask:]
}

// Segments returns the number of mapped segments (including null).
func (m *Memory) Segments() int { return len(*m.table.Load()) }

// Segs returns the current segment table. The table is immutable once
// published (growth copies it), so callers may hold the returned slice
// across an arbitrary amount of work; they just won't observe segments
// added afterwards. The native tier pins this snapshot while machine code
// runs and re-snapshots after every extern call (the only points where new
// segments can be published to the executing worker).
func (m *Memory) Segs() [][]byte { return *m.table.Load() }

// Bytes returns exactly n bytes at addr.
func (m *Memory) Bytes(addr Addr, n int) []byte {
	t := *m.table.Load()
	s := t[addr>>SegShift]
	off := addr & OffMask
	return s[off : off+uint64(n)]
}

// The typed accessors below are used by runtime code (hash tables, output
// decoding); the interpreter and compiled closures inline the equivalent
// operations for speed.

func (m *Memory) Load8(a Addr) uint64 { return uint64(m.Seg(a)[0]) }
func (m *Memory) Load16(a Addr) uint64 {
	return uint64(binary.LittleEndian.Uint16(m.Seg(a)))
}
func (m *Memory) Load32(a Addr) uint64 {
	return uint64(binary.LittleEndian.Uint32(m.Seg(a)))
}
func (m *Memory) Load64(a Addr) uint64 {
	return binary.LittleEndian.Uint64(m.Seg(a))
}
func (m *Memory) LoadF64(a Addr) float64 { return math.Float64frombits(m.Load64(a)) }

func (m *Memory) Store8(a Addr, v uint64) { m.Seg(a)[0] = byte(v) }
func (m *Memory) Store16(a Addr, v uint64) {
	binary.LittleEndian.PutUint16(m.Seg(a), uint16(v))
}
func (m *Memory) Store32(a Addr, v uint64) {
	binary.LittleEndian.PutUint32(m.Seg(a), uint32(v))
}
func (m *Memory) Store64(a Addr, v uint64) {
	binary.LittleEndian.PutUint64(m.Seg(a), v)
}
func (m *Memory) StoreF64(a Addr, v float64) { m.Store64(a, math.Float64bits(v)) }

// Trap is the error raised by generated code for runtime faults the SQL
// semantics define (arithmetic overflow, division by zero). It is thrown as
// a panic from deep inside the interpreter or compiled closures and
// recovered at the engine's dispatch boundary.
type Trap struct {
	Code TrapCode
}

// TrapCode distinguishes the fault classes.
type TrapCode int

// Trap codes.
const (
	TrapOverflow TrapCode = iota + 1
	TrapDivZero
	TrapUser
)

func (t *Trap) Error() string {
	switch t.Code {
	case TrapOverflow:
		return "numeric overflow"
	case TrapDivZero:
		return "division by zero"
	}
	return fmt.Sprintf("query trap (%d)", int(t.Code))
}

// Throw raises a trap; never returns.
func Throw(code TrapCode) {
	panic(&Trap{Code: code})
}

// CatchTrap invokes fn and converts a Trap panic into an error; other
// panics propagate.
func CatchTrap(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if t, ok := r.(*Trap); ok {
				err = t
				return
			}
			panic(r)
		}
	}()
	fn()
	return nil
}
