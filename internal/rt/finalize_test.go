package rt

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// goroutinePfor returns a ParallelFor that claims partitions from a shared
// cursor across `workers` goroutines — the same shape the engine supplies,
// so these tests exercise the real concurrent interleavings (and the race
// detector sees them) even though partition work is disjoint by design.
func goroutinePfor(workers int) ParallelFor {
	return func(n int, fn func(p int)) {
		if workers <= 1 || n <= 1 {
			for p := 0; p < n; p++ {
				fn(p)
			}
			return
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers && w < n; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					p := int(next.Add(1)) - 1
					if p >= n {
						return
					}
					fn(p)
				}
			}()
		}
		wg.Wait()
	}
}

// mixHash is the multiplicative hash the tests use for keys.
func mixHash(key uint64) uint64 {
	return key*0x9E3779B97F4A7C15 ^ (key >> 7)
}

// buildJoin constructs a JoinHT and inserts nTuples tuples round-robin
// across 4 worker arenas: key = i % distinct (duplicates force chains).
func buildJoin(nTuples, distinct int, filter bool) (*Memory, *JoinHT, Addr) {
	m := NewMemory()
	stateAddr := m.Alloc(JoinStateBytes)
	h := NewJoinHT(m, 4, 24, 0, filter)
	for i := 0; i < nTuples; i++ {
		key := uint64(i % distinct)
		tup := h.Alloc(i % 4)
		m.Store64(tup, mixHash(key))
		m.Store64(tup+16, key)
	}
	return m, h, stateAddr
}

// joinChains renders every bucket's chain as an ordered "hash:key" list so
// serial and parallel finalizations can be compared chain-by-chain without
// depending on tuple addresses.
func joinChains(m *Memory, stateAddr Addr) []string {
	buckets := m.Load64(stateAddr)
	mask := m.Load64(stateAddr + 8)
	out := make([]string, mask+1)
	for b := uint64(0); b <= mask; b++ {
		e := m.Load64(buckets + Addr(b*8))
		s := ""
		for e != 0 {
			s += fmt.Sprintf("%x:%d,", m.Load64(e), m.Load64(e+16))
			e = m.Load64(e + 8)
		}
		out[b] = s
	}
	return out
}

// joinFilterWords reads back the published Bloom filter.
func joinFilterWords(m *Memory, stateAddr Addr) []uint16 {
	fAddr := m.Load64(stateAddr + 16)
	mask := m.Load64(stateAddr + 8)
	out := make([]uint16, mask+1)
	for b := uint64(0); b <= mask; b++ {
		out[b] = uint16(m.Load16(fAddr + Addr(b*2)))
	}
	return out
}

func TestJoinFinalizeParallelMatchesSerial(t *testing.T) {
	// 6000 tuples over 2000 keys: above minParallelBreaker, chains of 3,
	// plus whatever bucket collisions the hash produces.
	const n, distinct = 6000, 2000
	ms, hs, sts := buildJoin(n, distinct, true)
	hs.Finalize(sts)
	wantChains := joinChains(ms, sts)
	wantFilter := joinFilterWords(ms, sts)

	for _, cfg := range []struct{ parts, goroutines int }{
		{1, 1}, {2, 2}, {8, 8}, {16, 2},
	} {
		mp, hp, stp := buildJoin(n, distinct, true)
		used := hp.FinalizeParallel(stp, cfg.parts, goroutinePfor(cfg.goroutines))
		if used < 1 || used > cfg.parts {
			t.Fatalf("parts=%d: used %d partitions", cfg.parts, used)
		}
		if got := joinChains(mp, stp); !reflect.DeepEqual(got, wantChains) {
			t.Errorf("parts=%d: chains differ from serial finalize", cfg.parts)
		}
		if got := joinFilterWords(mp, stp); !reflect.DeepEqual(got, wantFilter) {
			t.Errorf("parts=%d: filter words differ from serial finalize", cfg.parts)
		}
	}
}

func TestJoinFinalizeParallelSmallCollapses(t *testing.T) {
	// Below minParallelBreaker the partitioned path must collapse to one
	// partition and still publish a correct table.
	m, h, st := buildJoin(100, 40, true)
	if used := h.FinalizeParallel(st, 8, goroutinePfor(8)); used != 1 {
		t.Fatalf("used %d partitions for 100 tuples", used)
	}
	ms, hs, sts := buildJoin(100, 40, true)
	hs.Finalize(sts)
	if !reflect.DeepEqual(joinChains(m, st), joinChains(ms, sts)) {
		t.Error("collapsed parallel finalize differs from serial")
	}
}

// buildAgg constructs an AggSet with 4 workers and applies the same
// update stream a generated aggregation would: find-or-insert in the
// worker-local table, then accumulate [sum, count] for the key.
func buildAgg(updates, distinct int) (*Memory, *AggSet) {
	m := NewMemory()
	q := NewQueryState(m, 4, 16, 64)
	// Entry: [next][hash][key i64 @16][sum @24][count @32].
	keys := []KeyField{{Off: 16}}
	aggs := []AggField{{Kind: AggSum, Off: 24}, {Kind: AggCount, Off: 32}}
	id := q.AddAgg(40, keys, aggs, 0, false)
	set := q.Aggs[id]
	for i := 0; i < updates; i++ {
		w := i % 4
		key := uint64(i % distinct)
		hash := mixHash(key)
		bAddr := m.Load64(q.Locals[w])
		mask := m.Load64(q.Locals[w] + 8)
		e := m.Load64(bAddr + (hash&mask)*8)
		for e != 0 {
			if m.Load64(e+8) == hash && m.Load64(e+16) == key {
				break
			}
			e = m.Load64(e)
		}
		if e == 0 {
			e = set.Insert(w, hash)
			m.Store64(e+16, key)
			m.Store64(e+24, AggSum.Init())
			m.Store64(e+32, AggCount.Init())
		}
		m.Store64(e+24, m.Load64(e+24)+uint64(i))
		m.Store64(e+32, m.Load64(e+32)+1)
	}
	return m, set
}

// aggGroups reads the dense index into a key -> [sum, count] map.
func aggGroups(m *Memory, set *AggSet) map[uint64][2]uint64 {
	out := make(map[uint64][2]uint64, set.Groups)
	for i := 0; i < set.Groups; i++ {
		e := m.Load64(set.IndexAddr + Addr(i*8))
		out[m.Load64(e+16)] = [2]uint64{m.Load64(e + 24), m.Load64(e + 32)}
	}
	return out
}

func TestAggFinalizeParallelMatchesSerial(t *testing.T) {
	// 40000 updates over 6000 keys spread across 4 worker tables: every
	// key exists in every worker's table, so the merge dedups 4:1 and the
	// combined entry count (24000) is far above minParallelBreaker.
	const updates, distinct = 40000, 6000
	ms, ss := buildAgg(updates, distinct)
	ss.Finalize()
	want := aggGroups(ms, ss)
	if ss.Groups != distinct {
		t.Fatalf("serial Groups = %d, want %d", ss.Groups, distinct)
	}

	for _, cfg := range []struct{ parts, goroutines int }{
		{1, 1}, {2, 2}, {8, 8}, {16, 2},
	} {
		mp, sp := buildAgg(updates, distinct)
		used := sp.FinalizeParallel(cfg.parts, goroutinePfor(cfg.goroutines))
		if used < 1 || used > cfg.parts {
			t.Fatalf("parts=%d: used %d partitions", cfg.parts, used)
		}
		if sp.Groups != distinct {
			t.Errorf("parts=%d: Groups = %d, want %d", cfg.parts, sp.Groups, distinct)
		}
		if got := aggGroups(mp, sp); !reflect.DeepEqual(got, want) {
			t.Errorf("parts=%d: merged groups differ from serial finalize", cfg.parts)
		}
	}
}

func TestAggFinalizeParallelEmpty(t *testing.T) {
	m, set := buildAgg(0, 1)
	if used := set.FinalizeParallel(8, goroutinePfor(8)); used != 1 {
		t.Fatalf("used %d partitions for empty set", used)
	}
	if set.Groups != 0 {
		t.Fatalf("Groups = %d for empty set", set.Groups)
	}
	if set.IndexAddr == 0 {
		t.Fatal("empty set published a null index")
	}
	_ = m
}
