package rt

import "bytes"

// QueryState is the per-query runtime state reachable from extern calls:
// the address space, the hash tables and output buffers of every pipeline,
// compiled LIKE patterns, and the shared/per-worker arenas whose layout
// the code generator defined.
//
// The shared state arena holds, per hash join, the published bucket base
// and mask; each worker-local arena holds, per aggregation, the worker's
// bucket base, mask and (for scalar aggregation) singleton entry address.
// Generated code reads these with plain loads.
type QueryState struct {
	Mem     *Memory
	Workers int

	// StateAddr is the shared state arena; Locals are the per-worker
	// arenas, both sized by the code generator.
	StateAddr Addr
	Locals    []Addr

	Joins    []*JoinHT
	Aggs     []*AggSet
	Outs     []*OutSet
	Patterns []*LikePattern

	// Eng lets the engine hang scheduler state off the query state so
	// engine-level externs (pipeline scheduling) can reach it.
	Eng any
}

// NewQueryState allocates the shared and per-worker arenas.
func NewQueryState(mem *Memory, workers, stateBytes, localBytes int) *QueryState {
	q := &QueryState{Mem: mem, Workers: workers}
	if stateBytes < 8 {
		stateBytes = 8
	}
	if localBytes < 8 {
		localBytes = 8
	}
	q.StateAddr = mem.Alloc(stateBytes)
	for i := 0; i < workers; i++ {
		q.Locals = append(q.Locals, mem.Alloc(localBytes))
	}
	return q
}

// AddJoin registers a join hash table and returns its id.
func (q *QueryState) AddJoin(tupleSize, stateOff int, filter bool) int {
	q.Joins = append(q.Joins, NewJoinHT(q.Mem, q.Workers, tupleSize, stateOff, filter))
	return len(q.Joins) - 1
}

// AddAgg registers an aggregation set and returns its id.
func (q *QueryState) AddAgg(entrySize int, keys []KeyField, aggs []AggField,
	localOff int, scalar bool) int {
	q.Aggs = append(q.Aggs,
		NewAggSet(q.Mem, q.Workers, entrySize, keys, aggs, localOff, scalar, q.Locals))
	return len(q.Aggs) - 1
}

// AddOut registers an output buffer set and returns its id.
func (q *QueryState) AddOut(rowSize int) int {
	q.Outs = append(q.Outs, NewOutSet(q.Mem, q.Workers, rowSize))
	return len(q.Outs) - 1
}

// AddPattern compiles and registers a LIKE pattern, returning its id.
func (q *QueryState) AddPattern(pattern string) int {
	q.Patterns = append(q.Patterns, CompileLike(pattern))
	return len(q.Patterns) - 1
}

// state returns the QueryState of a context.
func state(ctx *Ctx) *QueryState { return ctx.Query.(*QueryState) }

// RegisterBuiltins installs the runtime externs every generated query may
// call. Engine-level externs (pipeline scheduling, finalization) are
// registered separately by the engine.
func RegisterBuiltins(r *Registry) {
	r.Register("ht_alloc", func(ctx *Ctx, args []uint64) uint64 {
		return state(ctx).Joins[args[0]].Alloc(ctx.Worker)
	})
	r.Register("agg_insert", func(ctx *Ctx, args []uint64) uint64 {
		return state(ctx).Aggs[args[0]].Insert(ctx.Worker, args[1])
	})
	r.Register("out_alloc", func(ctx *Ctx, args []uint64) uint64 {
		return state(ctx).Outs[args[0]].Alloc(ctx.Worker)
	})
	r.Register("str_eq", func(ctx *Ctx, args []uint64) uint64 {
		if args[1] != args[3] {
			return 0
		}
		a := ctx.Mem.Bytes(args[0], int(args[1]))
		b := ctx.Mem.Bytes(args[2], int(args[3]))
		if string(a) == string(b) {
			return 1
		}
		return 0
	})
	r.Register("str_cmp", func(ctx *Ctx, args []uint64) uint64 {
		a := ctx.Mem.Bytes(args[0], int(args[1]))
		b := ctx.Mem.Bytes(args[2], int(args[3]))
		return uint64(int64(bytes.Compare(a, b)))
	})
	r.Register("str_like", func(ctx *Ctx, args []uint64) uint64 {
		p := state(ctx).Patterns[args[0]]
		s := ctx.Mem.Bytes(args[1], int(args[2]))
		if p.Match(s) {
			return 1
		}
		return 0
	})
	r.Register("str_hash", func(ctx *Ctx, args []uint64) uint64 {
		return StrHash(ctx.Mem.Bytes(args[0], int(args[1])))
	})
	r.Register("date_year", func(ctx *Ctx, args []uint64) uint64 {
		return uint64(YearOfDays(int64(args[0])))
	})
	r.Register("trap_overflow", func(ctx *Ctx, args []uint64) uint64 {
		Throw(TrapOverflow)
		return 0
	})
	r.Register("trap_divzero", func(ctx *Ctx, args []uint64) uint64 {
		Throw(TrapDivZero)
		return 0
	})
}

// YearOfDays converts days-since-1970 to a calendar year using the civil
// calendar algorithm (no time package in the per-tuple path).
func YearOfDays(days int64) int64 {
	// Shift to days since 0000-03-01 (the civil-from-days algorithm of
	// Howard Hinnant, used widely for exactly this conversion).
	z := days + 719468
	era := z / 146097
	if z < 0 {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	y := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	if mp >= 10 {
		return y + 1
	}
	return y
}
