package sink

import (
	"math/rand"
	"reflect"
	"testing"

	"aqe/internal/expr"
	"aqe/internal/plan"
)

// TestTopKMatchesFullSort: for random inputs dense with duplicate keys,
// TopK must return exactly the prefix of the stable full sort — same rows,
// same order, ties resolved by input position — for every k.
func TestTopKMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	keys := []plan.SortKey{
		{E: expr.Col(0, expr.TInt)},
		{E: expr.Col(1, expr.TString), Desc: true},
	}
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		rows := make([][]expr.Datum, n)
		for i := range rows {
			// Few distinct key values → many ties; the third column tags
			// the original position so stability violations are visible.
			rows[i] = []expr.Datum{
				{I: int64(rng.Intn(4))},
				{S: string(rune('a' + rng.Intn(3)))},
				{I: int64(i)},
			}
		}
		want := append([][]expr.Datum(nil), rows...)
		SortRows(want, keys)
		for _, k := range []int{0, 1, 2, n / 2, n - 1, n, n + 7} {
			if k < 0 {
				continue
			}
			in := append([][]expr.Datum(nil), rows...)
			got := TopK(in, keys, k)
			stop := k
			if stop > n {
				stop = n
			}
			if len(got) != stop {
				t.Fatalf("trial %d k=%d: %d rows, want %d", trial, k, len(got), stop)
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("trial %d k=%d: row %d = %v, want %v (stable sort prefix)",
						trial, k, i, got[i], want[i])
				}
			}
		}
	}
}
