package sink

import (
	"aqe/internal/expr"
	"aqe/internal/plan"
)

// TopK returns the first k rows of the stable sort of rows by keys
// without sorting the full input: a bounded max-heap retains the k
// earliest (key, original-position) pairs, so ties keep input order and
// the result is exactly SortRows followed by truncation. The input slice
// is reordered only on the degenerate k >= len(rows) path (which falls
// back to a full sort in place).
func TopK(rows [][]expr.Datum, keys []plan.SortKey, k int) [][]expr.Datum {
	if k <= 0 {
		return nil
	}
	if k >= len(rows) {
		SortRows(rows, keys)
		return rows
	}
	type elem struct {
		row []expr.Datum
		idx int
	}
	// before reports whether a precedes b in the stable output order:
	// keys first, original position as the tiebreak.
	before := func(a, b elem) bool {
		if c := CmpRows(a.row, b.row, keys); c != 0 {
			return c < 0
		}
		return a.idx < b.idx
	}
	// Max-heap of the k best rows seen so far; the root is the one that
	// sorts last among them (the first to be evicted).
	h := make([]elem, 0, k)
	siftDown := func(i int) {
		for {
			last := i
			if l := 2*i + 1; l < len(h) && before(h[last], h[l]) {
				last = l
			}
			if r := 2*i + 2; r < len(h) && before(h[last], h[r]) {
				last = r
			}
			if last == i {
				return
			}
			h[i], h[last] = h[last], h[i]
			i = last
		}
	}
	for i, row := range rows {
		e := elem{row, i}
		if len(h) < k {
			h = append(h, e)
			for j := len(h) - 1; j > 0; {
				p := (j - 1) / 2
				if !before(h[p], h[j]) {
					break
				}
				h[p], h[j] = h[j], h[p]
				j = p
			}
			continue
		}
		if before(e, h[0]) {
			h[0] = e
			siftDown(0)
		}
	}
	// Pop in reverse: the root is the last of the survivors.
	out := make([][]expr.Datum, len(h))
	for n := len(h) - 1; n >= 0; n-- {
		out[n] = h[0].row
		h[0] = h[len(h)-1]
		h = h[:len(h)-1]
		siftDown(0)
	}
	return out
}
