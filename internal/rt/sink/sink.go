// Package sink holds the result-side machinery every engine shares: row
// ordering, the bounded top-k heap, and datum comparison. The volcano
// iterator engine, the vectorized engine, and the compiled engine's root
// ORDER BY all produce decoded [][]expr.Datum rows and must order them
// identically (the differential net compares engines row for row), so the
// comparator and heap live here exactly once.
package sink

import (
	"sort"

	"aqe/internal/expr"
	"aqe/internal/plan"
)

// SortRows stable-sorts decoded rows by the given keys.
func SortRows(rows [][]expr.Datum, keys []plan.SortKey) {
	sort.SliceStable(rows, func(i, j int) bool {
		return CmpRows(rows[i], rows[j], keys) < 0
	})
}

// CmpRows compares two decoded rows by the sort keys (Desc keys
// reversed), returning -1/0/1.
func CmpRows(a, b []expr.Datum, keys []plan.SortKey) int {
	for _, k := range keys {
		av := expr.Eval(k.E, a)
		bv := expr.Eval(k.E, b)
		c := CompareDatum(av, bv, k.E.Type())
		if c != 0 {
			if k.Desc {
				c = -c
			}
			return c
		}
	}
	return 0
}

// CompareDatum orders two datums of the same type, returning -1/0/1.
func CompareDatum(a, b expr.Datum, t expr.Type) int {
	switch t.Kind {
	case expr.KFloat:
		switch {
		case a.F < b.F:
			return -1
		case a.F > b.F:
			return 1
		}
		return 0
	case expr.KString:
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		}
		return 0
	default:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	}
}
