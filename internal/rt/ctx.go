package rt

import (
	"fmt"
	"sort"
)

// MaxCallArgs is the maximum arity of an extern function callable from
// generated code.
const MaxCallArgs = 16

// Func is the uniform ABI of runtime functions callable from generated
// code: arguments and result travel as raw 64-bit register values
// (float64 values as their IEEE bit patterns, addresses as rt.Addr).
// The args slice aliases the context's staging buffer: an extern that
// re-enters generated code (e.g. the pipeline scheduler) must copy the
// values it needs before doing so.
type Func func(ctx *Ctx, args []uint64) uint64

// Ctx is the per-worker execution context threaded through generated code.
// Each worker thread owns one Ctx; nothing in it is shared, so extern calls
// and register-file reuse are synchronization-free.
type Ctx struct {
	Mem   *Memory
	Funcs []Func // bound externs, indexed by the module's extern index
	Args  [MaxCallArgs]uint64

	// Worker identifies the worker thread (0-based) for thread-local
	// runtime structures such as per-worker aggregation hash tables.
	Worker int

	// Query points at engine-owned per-query state (opaque to rt).
	Query any

	// Local points at engine-owned per-worker state.
	Local any

	regStack [][]uint64
	depth    int
}

// PushRegs returns a register file of n slots for a new interpretation
// frame, reusing per-depth buffers. Frames nest when an extern re-enters
// generated code (queryStart calls the scheduler, which may run worker
// functions on the calling context); each depth owns its buffer, so outer
// frames stay intact. Callers must pair with PopRegs.
func (c *Ctx) PushRegs(n int) []uint64 {
	if c.depth == len(c.regStack) {
		c.regStack = append(c.regStack, nil)
	}
	buf := c.regStack[c.depth]
	if cap(buf) < n {
		buf = make([]uint64, n)
		c.regStack[c.depth] = buf
	}
	c.depth++
	return buf[:n]
}

// PopRegs releases the innermost frame.
func (c *Ctx) PopRegs() { c.depth-- }

// CurRegs returns the innermost live register frame (nil when none).
// Tests use it to inspect canonical slot state after a trap or fault
// unwound a frame without popping it.
func (c *Ctx) CurRegs() []uint64 {
	if c.depth == 0 {
		return nil
	}
	return c.regStack[c.depth-1]
}

// ResetRegs discards all frames; used when a trap unwinds past Push/Pop
// pairing.
func (c *Ctx) ResetRegs() { c.depth = 0 }

// Registry maps extern names to their Go implementations. The engine
// registers the full runtime surface once; modules bind against it by name
// when they are prepared for execution.
type Registry struct {
	funcs map[string]Func
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{funcs: make(map[string]Func)} }

// Register installs fn under name, replacing any previous binding.
func (r *Registry) Register(name string, fn Func) {
	r.funcs[name] = fn
}

// Bind resolves a module's extern declaration list into a call table.
// A missing extern is an immediate error: the alternative is a nil-call
// panic at an arbitrary point mid-query.
func (r *Registry) Bind(names []string) ([]Func, error) {
	out := make([]Func, len(names))
	for i, n := range names {
		fn, ok := r.funcs[n]
		if !ok {
			return nil, fmt.Errorf("rt: extern %q not registered", n)
		}
		out[i] = fn
	}
	return out, nil
}

// Names returns the registered extern names, sorted (for tests and
// diagnostics).
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.funcs))
	for n := range r.funcs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
