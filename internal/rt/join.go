package rt

// JoinHT is the chaining hash table used by hash joins, built in the two
// phases of morsel-driven joins: the build pipeline materializes tuples
// into per-worker arenas through generated code (layout: [hash u64]
// [next u64] [payload...]), then Finalize sizes the bucket array and links
// the chains between pipelines. Probing happens entirely in generated
// code: it reads the bucket head and walks the chain with plain loads,
// exactly like HyPer's generated probe code.
//
// Finalization comes in two flavours. Finalize is the retained serial
// path: one thread walks every arena once and prepends each tuple to its
// chain. FinalizeParallel partitions the bucket array by hash range and
// runs one task per partition: each task scans all arenas but links only
// tuples whose bucket index falls inside its range, so all writes (bucket
// heads, chain links, filter words) are disjoint across partitions — no
// atomics, and the final chains are byte-identical to the serial result
// because every bucket sees its tuples in the same arena order.
type JoinHT struct {
	mem       *Memory
	TupleSize int
	// StateOff is the offset in the shared state arena where finalization
	// publishes [bucketsAddr u64][mask u64][filterAddr u64] for the probe
	// code to load (JoinStateBytes).
	StateOff int
	// Filter enables the per-join Bloom filter: one 16-bit tag word per
	// bucket, tag bit selected by hash bits 48..51. Probe code tests the
	// word before touching the bucket array, skipping the chain walk (and
	// its cache misses) for keys that cannot be present.
	Filter bool

	arenas []*Arena

	// Results of finalization.
	BucketsAddr Addr
	FilterAddr  Addr
	Mask        uint64
	Count       int

	buckets []byte
	filter  []byte
}

// JoinStateBytes is the per-join slot size in the shared state arena:
// [bucketsAddr u64][mask u64][filterAddr u64].
const JoinStateBytes = 24

// minParallelBreaker is the tuple (or group) count below which partitioned
// finalization collapses to one partition: spawning goroutines costs more
// than linking a few thousand tuples.
const minParallelBreaker = 4096

// ParallelFor runs fn(0), ..., fn(n-1), possibly concurrently. The engine
// supplies it so the runtime stays free of scheduling policy; partitioned
// finalization guarantees the fn invocations touch disjoint memory.
type ParallelFor func(n int, fn func(p int))

// NewJoinHT creates a join hash table with one arena per worker.
func NewJoinHT(mem *Memory, workers, tupleSize, stateOff int, filter bool) *JoinHT {
	h := &JoinHT{mem: mem, TupleSize: tupleSize, StateOff: stateOff, Filter: filter}
	for i := 0; i < workers; i++ {
		h.arenas = append(h.arenas, NewArena(mem))
	}
	return h
}

// Alloc returns space for one build tuple on worker w's arena. Generated
// code stores the hash at offset 0 and the payload from offset 16; offset
// 8 (the chain link) is filled by finalization.
func (h *JoinHT) Alloc(w int) Addr {
	return h.arenas[w].Alloc(h.TupleSize)
}

// prepare counts the materialized tuples and sizes the bucket array (and
// filter) to the next power of two ≥ 2× the tuple count, keeping the load
// factor at or below 0.5. An empty build side maps both arrays onto the
// memory's shared zero segment instead of allocating a useless one-bucket
// table. Returns the number of buckets (0 when empty).
func (h *JoinHT) prepare() int {
	total := 0
	for _, a := range h.arenas {
		total += a.Bytes() / h.TupleSize
	}
	h.Count = total
	if total == 0 {
		z := h.mem.ZeroSeg()
		h.BucketsAddr, h.Mask, h.FilterAddr = z, 0, z
		h.buckets, h.filter = nil, nil
		return 0
	}
	nb := nextPow2(2 * total)
	h.buckets = make([]byte, nb*8)
	h.BucketsAddr = h.mem.AddSegment(h.buckets)
	h.Mask = uint64(nb - 1)
	if h.Filter {
		h.filter = make([]byte, nb*2)
		h.FilterAddr = h.mem.AddSegment(h.filter)
	}
	return nb
}

// linkRange links every tuple whose bucket index falls in [lo, hi) and
// sets its filter tag. Arenas are visited in worker order and chunk-wise
// with direct slice access, so the per-tuple cost of scanning foreign
// partitions' tuples is one hash load and a compare.
func (h *JoinHT) linkRange(lo, hi uint64) {
	ts := h.TupleSize
	for _, a := range h.arenas {
		a.EachChunk(func(base Addr, data []byte) {
			for off := 0; off+ts <= len(data); off += ts {
				hash := leU64(data[off:])
				idx := hash & h.Mask
				if idx < lo || idx >= hi {
					continue
				}
				bi := idx * 8
				putU64(data[off+8:], leU64(h.buckets[bi:]))
				putU64(h.buckets[bi:], base+Addr(off))
				if h.filter != nil {
					fi := idx * 2
					tag := uint16(1) << ((hash >> 48) & 15)
					putU16(h.filter[fi:], leU16(h.filter[fi:])|tag)
				}
			}
		})
	}
}

// publishState stores the bucket base, mask and filter base into the state
// arena at StateOff for the generated probe code.
func (h *JoinHT) publishState(stateAddr Addr) {
	h.mem.Store64(stateAddr+Addr(h.StateOff), h.BucketsAddr)
	h.mem.Store64(stateAddr+Addr(h.StateOff)+8, h.Mask)
	if h.Filter {
		h.mem.Store64(stateAddr+Addr(h.StateOff)+16, h.FilterAddr)
	}
}

// Finalize is the retained serial path: size, link all chains in one
// arena pass, publish.
func (h *JoinHT) Finalize(stateAddr Addr) {
	if nb := h.prepare(); nb > 0 {
		h.linkRange(0, uint64(nb))
	}
	h.publishState(stateAddr)
}

// FinalizeParallel builds the table with up to parts hash-range
// partitions scheduled through pfor, and returns the partition count it
// actually used (1 when the table is too small to benefit).
func (h *JoinHT) FinalizeParallel(stateAddr Addr, parts int, pfor ParallelFor) int {
	nb := h.prepare()
	if nb == 0 {
		h.publishState(stateAddr)
		return 1
	}
	if parts > nb {
		parts = nb
	}
	if parts < 1 || h.Count < minParallelBreaker {
		parts = 1
	}
	if parts == 1 {
		h.linkRange(0, uint64(nb))
	} else {
		pfor(parts, func(p int) {
			lo := uint64(p) * uint64(nb) / uint64(parts)
			hi := uint64(p+1) * uint64(nb) / uint64(parts)
			h.linkRange(lo, hi)
		})
	}
	h.publishState(stateAddr)
	return parts
}

// Tuples calls fn for every build tuple (used by tests and diagnostics).
func (h *JoinHT) Tuples(fn func(addr Addr)) {
	for _, a := range h.arenas {
		a.Each(h.TupleSize, fn)
	}
}

// nextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func nextPow2(n int) int {
	nb := 1
	for nb < n {
		nb <<= 1
	}
	return nb
}
