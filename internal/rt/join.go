package rt

// JoinHT is the chaining hash table used by hash joins, built in the two
// phases of morsel-driven joins: the build pipeline materializes tuples
// into per-worker arenas through generated code (layout: [hash u64]
// [next u64] [payload...]), then Finalize sizes the bucket array and links
// the chains single-threaded between pipelines. Probing happens entirely
// in generated code: it reads the bucket head and walks the chain with
// plain loads, exactly like HyPer's generated probe code.
type JoinHT struct {
	mem       *Memory
	TupleSize int
	// StateOff is the offset in the shared state arena where Finalize
	// publishes [bucketsAddr u64][mask u64] for the probe code to load.
	StateOff int

	arenas []*Arena

	// Results of Finalize.
	BucketsAddr Addr
	Mask        uint64
	Count       int
}

// NewJoinHT creates a join hash table with one arena per worker.
func NewJoinHT(mem *Memory, workers, tupleSize, stateOff int) *JoinHT {
	h := &JoinHT{mem: mem, TupleSize: tupleSize, StateOff: stateOff}
	for i := 0; i < workers; i++ {
		h.arenas = append(h.arenas, NewArena(mem))
	}
	return h
}

// Alloc returns space for one build tuple on worker w's arena. Generated
// code stores the hash at offset 0 and the payload from offset 16; offset
// 8 (the chain link) is filled by Finalize.
func (h *JoinHT) Alloc(w int) Addr {
	return h.arenas[w].Alloc(h.TupleSize)
}

// Finalize counts the materialized tuples, sizes the bucket array to the
// next power of two, links all chains, and publishes the bucket base and
// mask into the state arena at StateOff.
func (h *JoinHT) Finalize(stateAddr Addr) {
	total := 0
	for _, a := range h.arenas {
		total += a.Bytes() / h.TupleSize
	}
	h.Count = total
	nb := 1
	for nb < total {
		nb <<= 1
	}
	buckets := make([]byte, nb*8)
	h.BucketsAddr = h.mem.AddSegment(buckets)
	h.Mask = uint64(nb - 1)
	for _, a := range h.arenas {
		a.Each(h.TupleSize, func(t Addr) {
			hash := h.mem.Load64(t)
			idx := (hash & h.Mask) * 8
			head := leU64(buckets[idx:])
			h.mem.Store64(t+8, head)
			putU64(buckets[idx:], t)
		})
	}
	h.mem.Store64(stateAddr+Addr(h.StateOff), h.BucketsAddr)
	h.mem.Store64(stateAddr+Addr(h.StateOff)+8, h.Mask)
}

// Tuples calls fn for every build tuple (used by tests and diagnostics).
func (h *JoinHT) Tuples(fn func(addr Addr)) {
	for _, a := range h.arenas {
		a.Each(h.TupleSize, fn)
	}
}
