package rt

import "strings"

// LikePattern is a compiled SQL LIKE pattern. '%' matches any run of
// characters, '_' any single character. Patterns are compiled once per
// query at code generation time and referenced from generated code by
// index, which keeps the per-tuple cost to the match itself.
type LikePattern struct {
	raw  string
	segs []segment
	// leading/trailing report whether the pattern starts/ends with '%'.
	leadingPct  bool
	trailingPct bool
	// fast paths
	exact    string // no wildcards at all
	contains string // single %s% segment without '_'
	prefix   string // single anchored s% segment without '_'
	suffix   string // single %s anchored segment without '_'
}

type segment struct {
	text    string
	anyMask []bool // true where '_' appears
}

// CompileLike compiles a LIKE pattern.
func CompileLike(pattern string) *LikePattern {
	p := &LikePattern{raw: pattern}
	parts := strings.Split(pattern, "%")
	p.leadingPct = strings.HasPrefix(pattern, "%")
	p.trailingPct = strings.HasSuffix(pattern, "%")
	for _, part := range parts {
		if part == "" {
			continue
		}
		seg := segment{text: part}
		if strings.ContainsRune(part, '_') {
			seg.anyMask = make([]bool, len(part))
			b := []byte(part)
			for i, c := range b {
				if c == '_' {
					seg.anyMask[i] = true
					b[i] = 0
				}
			}
			seg.text = string(b)
		}
		p.segs = append(p.segs, seg)
	}
	if !strings.ContainsAny(pattern, "%_") {
		p.exact = pattern
	} else if len(p.segs) == 1 && p.segs[0].anyMask == nil {
		switch {
		case p.leadingPct && p.trailingPct:
			p.contains = p.segs[0].text
		case p.trailingPct:
			p.prefix = p.segs[0].text
		case p.leadingPct:
			p.suffix = p.segs[0].text
		}
	}
	return p
}

// String returns the original pattern.
func (p *LikePattern) String() string { return p.raw }

// matchSegAt reports whether seg matches s exactly at position i.
func matchSegAt(seg *segment, s []byte, i int) bool {
	if i+len(seg.text) > len(s) {
		return false
	}
	if seg.anyMask == nil {
		return string(s[i:i+len(seg.text)]) == seg.text
	}
	for j := 0; j < len(seg.text); j++ {
		if !seg.anyMask[j] && s[i+j] != seg.text[j] {
			return false
		}
	}
	return true
}

// findSeg returns the first position >= from where seg matches, or -1.
func findSeg(seg *segment, s []byte, from int) int {
	if seg.anyMask == nil {
		idx := strings.Index(string(s[from:]), seg.text)
		if idx < 0 {
			return -1
		}
		return from + idx
	}
	for i := from; i+len(seg.text) <= len(s); i++ {
		if matchSegAt(seg, s, i) {
			return i
		}
	}
	return -1
}

// Match reports whether s matches the pattern: the first segment is
// anchored at the start unless the pattern begins with '%', the last is
// anchored at the end unless it ends with '%', and the segments in between
// match greedily left to right.
func (p *LikePattern) Match(s []byte) bool {
	if !strings.ContainsAny(p.raw, "%_") {
		return string(s) == p.exact
	}
	if p.contains != "" {
		return strings.Contains(string(s), p.contains)
	}
	if p.prefix != "" {
		return strings.HasPrefix(string(s), p.prefix)
	}
	if p.suffix != "" {
		return strings.HasSuffix(string(s), p.suffix)
	}
	if len(p.segs) == 0 {
		// "%", "%%", ...: any string; the empty pattern matches only "".
		return p.leadingPct || len(s) == 0
	}
	pos := 0
	k := 0
	if !p.leadingPct {
		if !matchSegAt(&p.segs[0], s, 0) {
			return false
		}
		pos = len(p.segs[0].text)
		k = 1
	}
	for ; k < len(p.segs); k++ {
		last := k == len(p.segs)-1
		if last && !p.trailingPct {
			j := len(s) - len(p.segs[k].text)
			return j >= pos && matchSegAt(&p.segs[k], s, j)
		}
		at := findSeg(&p.segs[k], s, pos)
		if at < 0 {
			return false
		}
		pos = at + len(p.segs[k].text)
	}
	if !p.trailingPct {
		// Only reachable when the anchored first segment was also the
		// last one: the whole string must be consumed.
		return pos == len(s)
	}
	return true
}

// StrHash returns a 64-bit FNV-1a hash of the bytes, finalized with a
// 64-bit mix so it composes well with the generated integer key hashing.
func StrHash(b []byte) uint64 {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	h ^= h >> 32
	h *= 0xd6e8feb86659fd93
	h ^= h >> 32
	return h
}
