package volcano

import (
	"testing"

	"aqe/internal/expr"
	"aqe/internal/plan"
	"aqe/internal/rt/sink"
	"aqe/internal/storage"
)

func mkTable() *storage.Table {
	k := storage.NewColumn("k", storage.Int64)
	v := storage.NewColumn("v", storage.Decimal)
	s := storage.NewColumn("s", storage.String)
	for i := 0; i < 20; i++ {
		k.AppendInt64(int64(i % 5))
		v.AppendInt64(int64(i * 100))
		s.AppendString([]string{"red", "green", "blue", "green grass"}[i%4])
	}
	return storage.NewTable("t", k, v, s)
}

func TestScanFilterProjectIter(t *testing.T) {
	tbl := mkTable()
	s := plan.NewScan(tbl, "k", "v")
	s.Where(expr.Ge(plan.C(s.Schema(), "v"), expr.Dec(1000, 2)))
	p := plan.NewProject(s,
		[]expr.Expr{expr.Add(plan.C(s.Schema(), "k"), expr.Int(100))},
		[]string{"k100"})
	rows, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("%d rows, want 10", len(rows))
	}
	for _, r := range rows {
		if r[0].I < 100 || r[0].I > 104 {
			t.Fatalf("bad projected value %d", r[0].I)
		}
	}
}

func TestGroupByEmptyInputScalar(t *testing.T) {
	tbl := mkTable()
	s := plan.NewScan(tbl, "v")
	s.Where(expr.Lt(plan.C(s.Schema(), "v"), expr.Dec(-1, 2))) // nothing
	g := plan.NewGroupBy(s, nil, nil, []plan.AggExpr{
		{Func: plan.CountStar, Name: "n"},
		{Func: plan.Sum, Arg: plan.C(s.Schema(), "v"), Name: "s"},
		{Func: plan.Min, Arg: plan.C(s.Schema(), "v"), Name: "m"},
	})
	rows, err := Run(g)
	if err != nil {
		t.Fatal(err)
	}
	// Scalar aggregation over empty input yields exactly one row with
	// count 0 (SQL semantics, modulo NULL-free min).
	if len(rows) != 1 || rows[0][0].I != 0 || rows[0][1].I != 0 {
		t.Fatalf("scalar agg over empty input: %+v", rows)
	}
}

func TestLikeInFilter(t *testing.T) {
	tbl := mkTable()
	s := plan.NewScan(tbl, "s")
	s.Where(expr.Like(plan.C(s.Schema(), "s"), "green%"))
	rows, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 { // "green" x5 + "green grass" x5
		t.Fatalf("%d rows, want 10", len(rows))
	}
}

func TestJoinKindsSmall(t *testing.T) {
	build := mkTable() // keys 0..4
	probeK := storage.NewColumn("pk", storage.Int64)
	for _, k := range []int64{0, 3, 7, 3} {
		probeK.AppendInt64(k)
	}
	probeT := storage.NewTable("p", probeK)

	mk := func(kind plan.JoinKind) int {
		b := plan.NewScan(build, "k", "v")
		p := plan.NewScan(probeT, "pk")
		var payload []string
		if kind == plan.Inner {
			payload = []string{"v"}
		}
		j := plan.NewJoin(kind, b, p,
			[]expr.Expr{plan.C(b.Schema(), "k")},
			[]expr.Expr{plan.C(p.Schema(), "pk")}, payload)
		rows, err := Run(j)
		if err != nil {
			t.Fatal(err)
		}
		return len(rows)
	}
	// Each build key 0..4 appears 4 times.
	if got := mk(plan.Inner); got != 12 { // 3 matching probe rows x4
		t.Errorf("inner: %d rows, want 12", got)
	}
	if got := mk(plan.Semi); got != 3 {
		t.Errorf("semi: %d rows, want 3", got)
	}
	if got := mk(plan.Anti); got != 1 { // pk=7
		t.Errorf("anti: %d rows, want 1", got)
	}
	if got := mk(plan.OuterCount); got != 4 {
		t.Errorf("outercount: %d rows, want 4", got)
	}
}

func TestSortRowsStability(t *testing.T) {
	rows := [][]expr.Datum{{{I: 2}, {I: 0}}, {{I: 1}, {I: 1}}, {{I: 2}, {I: 2}}, {{I: 1}, {I: 3}}}
	sink.SortRows(rows, []plan.SortKey{{E: expr.Col(0, expr.TInt)}})
	// Stable: equal keys keep insertion order (by second column).
	want := []int64{1, 3, 0, 2}
	for i, r := range rows {
		if r[1].I != want[i] {
			t.Fatalf("sort order: got %v at %d", r[1].I, i)
		}
	}
}
