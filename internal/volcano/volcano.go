// Package volcano is the tuple-at-a-time iterator engine, the PostgreSQL
// stand-in of the paper's Table I/II baselines: every operator implements
// a Next() returning one row, every expression is interpreted per tuple.
// It shares plans, expressions and trap semantics with the compiling
// engine, which also makes it the correctness oracle in the test suite.
package volcano

import (
	"fmt"
	"math"

	"aqe/internal/expr"
	"aqe/internal/plan"
	"aqe/internal/rt"
	"aqe/internal/rt/sink"
	"aqe/internal/storage"
)

// Run executes the plan and returns the result rows.
func Run(root plan.Node) (rows [][]expr.Datum, err error) {
	err = rt.CatchTrap(func() {
		it := build(root)
		it.open()
		for {
			row, ok := it.next()
			if !ok {
				break
			}
			rows = append(rows, row)
		}
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

type iter interface {
	open()
	next() ([]expr.Datum, bool)
}

func build(n plan.Node) iter {
	switch x := n.(type) {
	case *plan.Scan:
		return &scanIter{scan: x}
	case *plan.Filter:
		return &filterIter{in: build(x.Input), cond: x.Cond}
	case *plan.Project:
		return &projectIter{in: build(x.Input), exprs: x.Exprs}
	case *plan.Join:
		return &joinIter{j: x, buildIn: build(x.Build), probeIn: build(x.Probe)}
	case *plan.GroupBy:
		return &groupIter{g: x, in: build(x.Input)}
	case *plan.OrderBy:
		return &orderIter{o: x, in: build(x.Input)}
	}
	panic(fmt.Sprintf("volcano: unsupported node %T", n))
}

// ReadRow decodes row i of a table restricted to the given columns.
func ReadRow(t *storage.Table, cols []string, i int, out []expr.Datum) []expr.Datum {
	out = out[:0]
	for _, name := range cols {
		c := t.MustCol(name)
		switch c.Kind {
		case storage.Float64:
			out = append(out, expr.Datum{F: c.Float64At(i)})
		case storage.Char:
			out = append(out, expr.Datum{I: int64(c.CharAt(i))})
		case storage.String:
			out = append(out, expr.Datum{S: c.StringAt(i)})
		default:
			out = append(out, expr.Datum{I: c.Int64At(i)})
		}
	}
	return out
}

type scanIter struct {
	scan *plan.Scan
	pos  int
	buf  []expr.Datum
}

func (s *scanIter) open() { s.pos = 0 }

func (s *scanIter) next() ([]expr.Datum, bool) {
	n := s.scan.Table.Rows()
	for s.pos < n {
		s.buf = ReadRow(s.scan.Table, s.scan.Cols, s.pos, s.buf)
		s.pos++
		if s.scan.Filter == nil || expr.Eval(s.scan.Filter, s.buf).Bool() {
			row := make([]expr.Datum, len(s.buf))
			copy(row, s.buf)
			return row, true
		}
	}
	return nil, false
}

type filterIter struct {
	in   iter
	cond expr.Expr
}

func (f *filterIter) open() { f.in.open() }

func (f *filterIter) next() ([]expr.Datum, bool) {
	for {
		row, ok := f.in.next()
		if !ok {
			return nil, false
		}
		if expr.Eval(f.cond, row).Bool() {
			return row, true
		}
	}
}

type projectIter struct {
	in    iter
	exprs []expr.Expr
}

func (p *projectIter) open() { p.in.open() }

func (p *projectIter) next() ([]expr.Datum, bool) {
	row, ok := p.in.next()
	if !ok {
		return nil, false
	}
	out := make([]expr.Datum, len(p.exprs))
	for i, e := range p.exprs {
		out[i] = expr.Eval(e, row)
	}
	return out, true
}

// joinKey is a fixed-arity integer join key (TPC-H joins use at most 2).
type joinKey [4]int64

func keyOf(keys []expr.Expr, row []expr.Datum) joinKey {
	var k joinKey
	for i, e := range keys {
		k[i] = expr.Eval(e, row).I
	}
	return k
}

type joinIter struct {
	j       *plan.Join
	buildIn iter
	probeIn iter

	ht      map[joinKey][][]expr.Datum
	probe   []expr.Datum
	matches [][]expr.Datum
	mi      int
}

func (j *joinIter) open() {
	j.buildIn.open()
	j.probeIn.open()
	j.ht = make(map[joinKey][][]expr.Datum)
	for {
		row, ok := j.buildIn.next()
		if !ok {
			break
		}
		k := keyOf(j.j.BuildKeys, row)
		j.ht[k] = append(j.ht[k], row)
	}
}

// residualOK evaluates the residual over [probe ++ build].
func (j *joinIter) residualOK(probe, build []expr.Datum) bool {
	if j.j.Residual == nil {
		return true
	}
	combined := append(append([]expr.Datum{}, probe...), build...)
	return expr.Eval(j.j.Residual, combined).Bool()
}

func (j *joinIter) next() ([]expr.Datum, bool) {
	for {
		// Drain pending inner-join matches.
		if j.mi < len(j.matches) {
			b := j.matches[j.mi]
			j.mi++
			out := append([]expr.Datum{}, j.probe...)
			for _, idx := range j.j.PayloadIdx {
				out = append(out, b[idx])
			}
			return out, true
		}
		probe, ok := j.probeIn.next()
		if !ok {
			return nil, false
		}
		cands := j.ht[keyOf(j.j.ProbeKeys, probe)]
		var matched [][]expr.Datum
		for _, b := range cands {
			if j.residualOK(probe, b) {
				matched = append(matched, b)
			}
		}
		switch j.j.Kind {
		case plan.Inner:
			j.probe = probe
			j.matches = matched
			j.mi = 0
		case plan.Semi:
			if len(matched) > 0 {
				return probe, true
			}
		case plan.Anti:
			if len(matched) == 0 {
				return probe, true
			}
		case plan.OuterCount:
			out := append(append([]expr.Datum{}, probe...),
				expr.Datum{I: int64(len(matched))})
			return out, true
		}
	}
}

type groupState struct {
	key  []expr.Datum
	aggs []uint64
}

type groupIter struct {
	g  *plan.GroupBy
	in iter

	groups []*groupState
	pos    int
}

// AggSlots returns the flattened aggregate slot kinds: Avg contributes a
// sum slot and a count slot. Shared with the column-at-a-time engine.
func AggSlots(aggs []plan.AggExpr) []rt.AggKind {
	var out []rt.AggKind
	for _, a := range aggs {
		switch a.Func {
		case plan.Sum:
			if a.Arg.Type().Kind == expr.KFloat {
				out = append(out, rt.AggSumF)
			} else {
				out = append(out, rt.AggSum)
			}
		case plan.Min:
			if a.Arg.Type().Kind == expr.KFloat {
				out = append(out, rt.AggMinF)
			} else {
				out = append(out, rt.AggMin)
			}
		case plan.Max:
			if a.Arg.Type().Kind == expr.KFloat {
				out = append(out, rt.AggMaxF)
			} else {
				out = append(out, rt.AggMax)
			}
		case plan.Count, plan.CountStar:
			out = append(out, rt.AggCount)
		case plan.Avg:
			if a.Arg.Type().Kind == expr.KFloat {
				out = append(out, rt.AggSumF, rt.AggCount)
			} else {
				out = append(out, rt.AggSum, rt.AggCount)
			}
		}
	}
	return out
}

func (g *groupIter) open() {
	g.in.open()
	slots := AggSlots(g.g.Aggs)
	index := make(map[string]*groupState)
	var keybuf []byte
	for {
		row, ok := g.in.next()
		if !ok {
			break
		}
		keybuf = keybuf[:0]
		keyVals := make([]expr.Datum, len(g.g.Keys))
		for i, k := range g.g.Keys {
			d := expr.Eval(k, row)
			keyVals[i] = d
			if k.Type().Kind == expr.KString {
				keybuf = append(keybuf, d.S...)
				keybuf = append(keybuf, 0xFF)
			} else {
				for b := 0; b < 8; b++ {
					keybuf = append(keybuf, byte(uint64(d.I)>>(8*b)))
				}
			}
		}
		st, ok2 := index[string(keybuf)]
		if !ok2 {
			st = &groupState{key: keyVals, aggs: make([]uint64, len(slots))}
			for i, k := range slots {
				st.aggs[i] = k.Init()
			}
			index[string(keybuf)] = st
			g.groups = append(g.groups, st)
		}
		slot := 0
		for _, a := range g.g.Aggs {
			switch a.Func {
			case plan.CountStar, plan.Count:
				st.aggs[slot] = rt.AggCount.Combine(st.aggs[slot], 1)
				slot++
			case plan.Avg:
				d := expr.Eval(a.Arg, row)
				st.aggs[slot] = slots[slot].Combine(st.aggs[slot], DatumBits(d, a.Arg.Type()))
				st.aggs[slot+1] = rt.AggCount.Combine(st.aggs[slot+1], 1)
				slot += 2
			default:
				d := expr.Eval(a.Arg, row)
				st.aggs[slot] = slots[slot].Combine(st.aggs[slot], DatumBits(d, a.Arg.Type()))
				slot++
			}
		}
	}
	// Scalar aggregation produces exactly one row even over empty input.
	if len(g.g.Keys) == 0 && len(g.groups) == 0 {
		st := &groupState{aggs: make([]uint64, len(slots))}
		for i, k := range slots {
			st.aggs[i] = k.Init()
		}
		g.groups = append(g.groups, st)
	}
}

// DatumBits returns the raw aggregate-input bits of a datum.
func DatumBits(d expr.Datum, t expr.Type) uint64 {
	if t.Kind == expr.KFloat {
		return floatBits(d.F)
	}
	return uint64(d.I)
}

func (g *groupIter) next() ([]expr.Datum, bool) {
	if g.pos >= len(g.groups) {
		return nil, false
	}
	st := g.groups[g.pos]
	g.pos++
	out := append([]expr.Datum{}, st.key...)
	slot := 0
	for _, a := range g.g.Aggs {
		switch a.Func {
		case plan.Avg:
			sum, cnt := st.aggs[slot], int64(st.aggs[slot+1])
			slot += 2
			var f float64
			if cnt != 0 {
				if a.Arg.Type().Kind == expr.KFloat {
					f = floatFromBits(sum) / float64(cnt)
				} else {
					f = DecToFloat(int64(sum), a.Arg.Type()) / float64(cnt)
				}
			}
			out = append(out, expr.Datum{F: f})
		default:
			v := st.aggs[slot]
			slot++
			isFloat := a.Arg != nil && a.Arg.Type().Kind == expr.KFloat
			if isFloat && (a.Func == plan.Sum || a.Func == plan.Min || a.Func == plan.Max) {
				out = append(out, expr.Datum{F: floatFromBits(v)})
			} else {
				out = append(out, expr.Datum{I: int64(v)})
			}
		}
	}
	return out, true
}

type orderIter struct {
	o    *plan.OrderBy
	in   iter
	rows [][]expr.Datum
	pos  int
}

func (o *orderIter) open() {
	o.in.open()
	for {
		row, ok := o.in.next()
		if !ok {
			break
		}
		o.rows = append(o.rows, row)
	}
	if o.o.Limit >= 0 {
		o.rows = sink.TopK(o.rows, o.o.Keys, o.o.Limit)
		if len(o.rows) > o.o.Limit {
			o.rows = o.rows[:o.o.Limit]
		}
		return
	}
	sink.SortRows(o.rows, o.o.Keys)
}

func (o *orderIter) next() ([]expr.Datum, bool) {
	if o.pos >= len(o.rows) {
		return nil, false
	}
	r := o.rows[o.pos]
	o.pos++
	return r, true
}

// DecToFloat converts a scaled decimal to float.
func DecToFloat(v int64, t expr.Type) float64 {
	f := float64(v)
	if t.Kind == expr.KDecimal && t.Scale > 0 {
		// One division by the whole scale factor, not one per digit: the
		// compiled engines divide once, and repeated division differs in
		// the last ulp (visible in rounded differential comparisons).
		p := int64(1)
		for i := 0; i < t.Scale; i++ {
			p *= 10
		}
		f /= float64(p)
	}
	return f
}

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
