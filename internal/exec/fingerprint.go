package exec

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"

	"aqe/internal/codegen"
	"aqe/internal/vm"
)

// Fingerprint canonically identifies the executable form of a compiled
// query: the IR module (instructions, types, constants, extern names), the
// interned string literals and LIKE patterns, the pipeline structure, and
// the bytecode translator configuration. Two plans with equal fingerprints
// code-generate byte-identical modules under identical translator options,
// so translated bytecode and installed closures can be shared between them
// — all run-specific bindings (segment contents, extern functions, query
// state) are re-established per execution and addressed indirectly.
type Fingerprint [sha256.Size]byte

// Short returns an abbreviated hex form for logs and stats.
func (f Fingerprint) Short() string { return hex.EncodeToString(f[:8]) }

// fingerprintVersion guards the canonical encoding: bump it whenever the
// encoding of any hashed component changes, so stale equalities cannot
// survive a refactor within a process (and, later, on disk).
//
// v3 added the parameter descriptors of prepared statements: parameter
// *slots* (count, type, decimal scale) are hashed, parameter *values*
// never are — they live in the run's parameter segment, outside the
// module — so every binding of one statement shares a single cache entry,
// while a change of parameter type or arity re-keys it. Fixed literals
// and LIKE patterns keep hashing by content as in v2: their values are
// baked into cached vector-kernel specs (IN-list strings, compiled
// patterns), so slot-hashing them would alias plans whose cached kernels
// compute different results.
const fingerprintVersion = 3

// fingerprintOf hashes a code-generated query under the engine's
// translator options. noNative runs get a distinct fingerprint so their
// cache entries never receive (or hand out) assembled native code;
// noRegAlloc likewise separates the two native backends so a cached
// variant always matches the backend the engine would pick, and noVector
// separates entries carrying vectorized kernels from runs that must never
// adopt one.
func fingerprintOf(cq *codegen.Query, vopts vm.Options, noNative, noRegAlloc, noVector bool) Fingerprint {
	h := sha256.New()
	var hdr [16]byte
	hdr[0] = fingerprintVersion
	hdr[1] = byte(vopts.Strategy)
	if vopts.NoFusion {
		hdr[2] = 1
	}
	if noNative {
		hdr[3] = 1
	}
	if noRegAlloc {
		hdr[12] = 1
	}
	if noVector {
		hdr[13] = 1
	}
	binary.LittleEndian.PutUint32(hdr[4:], uint32(vopts.WindowSize))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(cq.Pipelines)))
	h.Write(hdr[:])

	buf := make([]byte, 0, 1<<14)
	buf = cq.Module.AppendCanonical(buf)
	for _, pl := range cq.Pipelines {
		buf = binary.LittleEndian.AppendUint32(buf,
			uint32(int32(pl.AggSource)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(pl.SinkJoin)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(pl.SinkAgg)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(pl.SinkOut)))
	}
	h.Write(buf)
	// Literal and pattern contents do not change the generated code (they
	// are addressed indirectly), but hashing them keeps the invariant
	// "different query text → different fingerprint" intuitive.
	h.Write(cq.Literals[:cq.LitLen])
	for _, p := range cq.Patterns {
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	// Parameter descriptors: slots, not values (see fingerprintVersion).
	var pn [4]byte
	binary.LittleEndian.PutUint32(pn[:], uint32(len(cq.Params)))
	h.Write(pn[:])
	for _, t := range cq.Params {
		h.Write([]byte{byte(t.Kind), byte(t.Scale)})
	}
	var fp Fingerprint
	h.Sum(fp[:0])
	return fp
}
