package exec

import (
	"fmt"
	"testing"
	"time"

	"aqe/internal/expr"
	"aqe/internal/jit"
	"aqe/internal/plan"
	"aqe/internal/vm"
)

// mkProg builds a dummy program with a known SizeBytes.
func mkProg(name string, insts int) *vm.Program {
	return &vm.Program{Name: name, Code: make([]vm.Inst, insts)}
}

func TestPlanCacheLRUAndBudget(t *testing.T) {
	one := mkProg("p", 10) // SizeBytes ≈ 64+1+240
	entryBytes := int64(one.SizeBytes() * 2)
	// Budget fits three entries (queryStart + one pipeline each).
	c := newPlanCache(3 * entryBytes)
	fp := func(i byte) Fingerprint { return Fingerprint{i} }

	for i := byte(1); i <= 3; i++ {
		c.insert(fp(i), mkProg("p", 10), []*vm.Program{mkProg("p", 10)})
	}
	st := c.stats()
	if st.Entries != 3 || st.Evictions != 0 {
		t.Fatalf("after 3 inserts: %+v", st)
	}
	if st.Bytes > st.Budget {
		t.Fatalf("over budget: %+v", st)
	}

	// Touch entry 1 so entry 2 is the LRU victim, then insert past the
	// budget: eviction counters must rise and accounting stay consistent.
	if c.lookup(fp(1)) == nil {
		t.Fatal("expected hit on entry 1")
	}
	c.insert(fp(4), mkProg("p", 10), []*vm.Program{mkProg("p", 10)})
	st = c.stats()
	if st.Entries != 3 || st.Evictions != 1 {
		t.Fatalf("after overflow insert: %+v", st)
	}
	if st.Bytes > st.Budget {
		t.Fatalf("over budget after eviction: %+v", st)
	}
	if c.lookup(fp(2)) != nil {
		t.Fatal("LRU entry 2 should have been evicted")
	}
	if c.lookup(fp(1)) == nil || c.lookup(fp(4)) == nil {
		t.Fatal("recently used entries evicted")
	}
	st = c.stats()
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("hit/miss accounting: %+v", st)
	}
}

func TestPlanCacheCompiledGrowthEvicts(t *testing.T) {
	// Attaching compiled closures grows an entry past the budget and must
	// evict colder entries rather than blow the cap.
	small := mkProg("p", 4)
	per := int64(small.SizeBytes() * 2)
	c := newPlanCache(2*per + 64)
	a, b := Fingerprint{1}, Fingerprint{2}
	c.insert(a, mkProg("p", 4), []*vm.Program{mkProg("p", 4)})
	c.insert(b, mkProg("p", 4), []*vm.Program{mkProg("p", 4)})

	comp := &jit.Compiled{}
	comp.Stats.Closures = 1000 // ≈ 80 KB, far over budget
	c.addCompiled(b, 0, jit.Unoptimized, comp)
	st := c.stats()
	if st.Evictions == 0 {
		t.Fatalf("growth did not evict: %+v", st)
	}
	if st.Bytes > st.Budget && st.Entries > 0 {
		t.Fatalf("cap violated with entries resident: %+v", st)
	}
}

func TestPlanCacheSnapshotIsolation(t *testing.T) {
	// A lookup snapshot must not observe later addCompiled mutations
	// (the engine reads the snapshot outside the cache lock).
	c := newPlanCache(1 << 20)
	fp := Fingerprint{7}
	c.insert(fp, mkProg("qs", 2), []*vm.Program{mkProg("p", 2)})
	snap := c.lookup(fp)
	c.addCompiled(fp, 0, jit.Optimized, &jit.Compiled{})
	if snap.pipes[0].compiled[jit.Optimized] != nil {
		t.Fatal("snapshot aliases the cached entry")
	}
	if c.lookup(fp).pipes[0].compiled[jit.Optimized] == nil {
		t.Fatal("compiled tier not attached")
	}
}

// repeatPlan is a distinct-by-constant plan family for engine-level tests.
func repeatPlan(k int64) func() plan.Node {
	return func() plan.Node {
		s := plan.NewScan(ordersT, "o_total", "o_date")
		sch := s.Schema()
		s.Where(expr.Gt(plan.C(sch, "o_total"), expr.Dec(k, 2)))
		return plan.NewGroupBy(s, nil, nil, []plan.AggExpr{
			{Func: plan.Sum, Arg: plan.C(sch, "o_total"), Name: "s"},
			{Func: plan.CountStar, Name: "n"},
		})
	}
}

func TestEngineCacheHitIdenticalResults(t *testing.T) {
	for _, mode := range []Mode{ModeBytecode, ModeUnoptimized, ModeOptimized, ModeAdaptive, ModeIRInterp} {
		e := New(Options{Workers: 2, Mode: mode, Cost: Native(),
			CacheBytes: 8 << 20})
		build := repeatPlan(40000)
		cold, err := e.RunPlan(build(), "repeat")
		if err != nil {
			t.Fatalf("%v cold: %v", mode, err)
		}
		if cold.Stats.CacheHit {
			t.Fatalf("%v: cold run reported a cache hit", mode)
		}
		warm, err := e.RunPlan(build(), "repeat")
		if err != nil {
			t.Fatalf("%v warm: %v", mode, err)
		}
		if !warm.Stats.CacheHit {
			t.Fatalf("%v: warm run missed the cache", mode)
		}
		a := canon(cold.Rows, cold.Types)
		b := canon(warm.Rows, warm.Types)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("%v: cached execution diverged:\n%v\n%v", mode, a, b)
		}
		if warm.Stats.Fingerprint != cold.Stats.Fingerprint {
			t.Fatalf("%v: fingerprints differ across runs", mode)
		}
		st := e.CacheStats()
		if st.Hits < 1 || st.Misses < 1 {
			t.Fatalf("%v: cache counters %+v", mode, st)
		}
	}
}

func TestEngineCacheSkipsSimulatedCompile(t *testing.T) {
	// With a simulated 30 ms compile latency, the cold optimized run must
	// pay it and the warm run must not — the measurable latency drop the
	// cache exists for.
	cost := &CostModel{UnoptBase: 30 * time.Millisecond, OptBase: 30 * time.Millisecond,
		SpeedupUnopt: 3.6, SpeedupOpt: 5.0, Simulate: true}
	e := New(Options{Workers: 2, Mode: ModeOptimized, Cost: cost, CacheBytes: 8 << 20})
	build := repeatPlan(60000)
	cold, err := e.RunPlan(build(), "sim")
	if err != nil {
		t.Fatal(err)
	}
	warm, err := e.RunPlan(build(), "sim")
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.Compile < 30*time.Millisecond {
		t.Fatalf("cold compile %v, want ≥ 30ms", cold.Stats.Compile)
	}
	if warm.Stats.Compile > 10*time.Millisecond {
		t.Fatalf("warm compile %v, want ≈ 0", warm.Stats.Compile)
	}
	if warm.Stats.Translate > cold.Stats.Translate && warm.Stats.Translate > time.Millisecond {
		t.Fatalf("warm translate %v not reduced (cold %v)", warm.Stats.Translate, cold.Stats.Translate)
	}
}

func TestEngineCacheEvictionUnderPressure(t *testing.T) {
	// A budget big enough for roughly one plan: distinct plans churn
	// through and evict each other; counters must stay consistent.
	e := New(Options{Workers: 1, Mode: ModeBytecode, CacheBytes: 4 << 10})
	for i := 0; i < 6; i++ {
		if _, err := e.RunPlan(repeatPlan(int64(10000+i))(), "churn"); err != nil {
			t.Fatal(err)
		}
	}
	st := e.CacheStats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under pressure: %+v", st)
	}
	if st.Misses != 6 {
		t.Fatalf("expected 6 misses, got %+v", st)
	}
	if st.Bytes > st.Budget {
		t.Fatalf("budget violated: %+v", st)
	}
}
