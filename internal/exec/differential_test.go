package exec

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"sync"
	"testing"

	"aqe/internal/storage"
	"aqe/internal/tpch"
)

// diffCat lazily generates the TPC-H catalog shared by the differential
// and stress tests (small scale: the point is coverage, not throughput —
// the IR interpreter runs every query too).
var diffCat = sync.OnceValue(func() *storage.Catalog { return tpch.Gen(0.003) })

// checksum reduces a result to an order-insensitive hash of its canonical
// row strings.
func checksum(res *Result) string {
	rows := canon(res.Rows, res.Types)
	h := sha256.New()
	for _, r := range rows {
		h.Write([]byte(r))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil)[:12])
}

// TestCrossTierDifferential22 runs all 22 TPC-H queries under all six
// execution modes and asserts identical result checksums, then runs each
// query a second time on the same engine to prove that a cache-served
// execution — shared bytecode, pre-installed compiled tiers (including
// tier-6 machine code) — returns byte-identical results. On platforms
// without a native backend, ModeNative exercises the silent per-pipeline
// fallback to the optimized closure tier instead.
func TestCrossTierDifferential22(t *testing.T) {
	cat := diffCat()
	modes := []Mode{ModeBytecode, ModeUnoptimized, ModeOptimized, ModeAdaptive, ModeIRInterp, ModeNative}
	want := make(map[int]string)

	for _, mode := range modes {
		e := New(Options{Workers: 4, Mode: mode, Cost: Native(),
			MorselSize: 512, CacheBytes: 64 << 20})
		for qn := 1; qn <= 22; qn++ {
			q := tpch.Query(cat, qn)
			cold, err := e.Run(q)
			if err != nil {
				t.Fatalf("%v Q%d: %v", mode, qn, err)
			}
			sum := checksum(cold)
			if mode == ModeBytecode {
				want[qn] = sum
			} else if sum != want[qn] {
				t.Errorf("%v Q%d: checksum %s, want %s (bytecode)", mode, qn, sum, want[qn])
				continue
			}
			warm, err := e.Run(q)
			if err != nil {
				t.Fatalf("%v Q%d warm: %v", mode, qn, err)
			}
			if !warm.Stats.CacheHit {
				t.Errorf("%v Q%d: second execution missed the cache", mode, qn)
			}
			if s := checksum(warm); s != want[qn] {
				t.Errorf("%v Q%d: cached checksum %s, want %s", mode, qn, s, want[qn])
			}
		}
		st := e.CacheStats()
		if st.Hits == 0 || st.Misses == 0 {
			t.Errorf("%v: implausible cache counters %+v", mode, st)
		}
	}
}

// TestBreakerConfigDifferential22 runs all 22 TPC-H queries under every
// pipeline-breaker configuration — parallel vs serial finalize, Bloom
// filters on vs off vs counting — and asserts the result checksums never
// move. The filter changes the emitted probe IR and the parallel finalize
// changes the merge schedule, so this pins down that neither affects
// results in any tier.
func TestBreakerConfigDifferential22(t *testing.T) {
	cat := diffCat()
	configs := []struct {
		name string
		opts Options
	}{
		{"baseline", Options{Workers: 4, Mode: ModeOptimized, Cost: Native()}},
		{"serial-finalize", Options{Workers: 4, Mode: ModeOptimized, Cost: Native(),
			SerialFinalize: true}},
		{"no-filter", Options{Workers: 4, Mode: ModeOptimized, Cost: Native(),
			NoJoinFilter: true}},
		{"serial-no-filter", Options{Workers: 4, Mode: ModeOptimized, Cost: Native(),
			SerialFinalize: true, NoJoinFilter: true}},
		{"filter-stats", Options{Workers: 4, Mode: ModeOptimized, Cost: Native(),
			FilterStats: true}},
		{"bytecode-filter", Options{Workers: 4, Mode: ModeBytecode}},
		{"no-dict", Options{Workers: 4, Mode: ModeOptimized, Cost: Native(),
			NoDict: true}},
		{"no-dict-bytecode", Options{Workers: 4, Mode: ModeBytecode, NoDict: true}},
		{"no-dict-no-zonemaps", Options{Workers: 4, Mode: ModeOptimized, Cost: Native(),
			NoDict: true, NoZoneMaps: true}},
		{"native", Options{Workers: 4, Mode: ModeNative, Cost: Native()}},
		{"native-serial-no-filter", Options{Workers: 4, Mode: ModeNative, Cost: Native(),
			SerialFinalize: true, NoJoinFilter: true}},
		{"native-disabled", Options{Workers: 4, Mode: ModeNative, Cost: Native(),
			NoNative: true}},
		{"native-noregalloc", Options{Workers: 4, Mode: ModeNative, Cost: Native(),
			NoRegAlloc: true}},
		{"native-noregalloc-serial", Options{Workers: 4, Mode: ModeNative, Cost: Native(),
			NoRegAlloc: true, SerialFinalize: true, NoJoinFilter: true}},
		{"adaptive-no-native", Options{Workers: 4, Mode: ModeAdaptive, Cost: Native(),
			NoNative: true, MorselSize: 512, CacheBytes: 64 << 20}},
		{"adaptive-noregalloc", Options{Workers: 4, Mode: ModeAdaptive, Cost: Native(),
			NoRegAlloc: true, MorselSize: 512, CacheBytes: 64 << 20}},
	}
	want := make(map[int]string)
	for _, cfg := range configs {
		e := New(cfg.opts)
		for qn := 1; qn <= 22; qn++ {
			res, err := e.Run(tpch.Query(cat, qn))
			if err != nil {
				t.Fatalf("%s Q%d: %v", cfg.name, qn, err)
			}
			sum := checksum(res)
			if cfg.name == "baseline" {
				want[qn] = sum
			} else if sum != want[qn] {
				t.Errorf("%s Q%d: checksum %s, want %s (baseline)",
					cfg.name, qn, sum, want[qn])
			}
		}
	}
}

// TestWarmAdaptiveStartsCompiled asserts the headline behaviour: after an
// adaptive execution that compiled pipelines, a repeat of the same query
// starts directly in a compiled tier (no re-climb) and spends no time
// translating.
func TestWarmAdaptiveStartsCompiled(t *testing.T) {
	cat := diffCat()
	// Zero-latency model so the controller compiles even on small data.
	cost := Native()
	cost.UnoptBase, cost.UnoptPerInstr, cost.OptBase, cost.OptPerInstr = 0, 0, 0, 0
	e := New(Options{Workers: 2, Mode: ModeAdaptive, Cost: cost,
		MorselSize: 128, CacheBytes: 64 << 20})
	q := tpch.Query(cat, 1)
	cold, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	compiledTiers := 0
	for _, l := range cold.Stats.FinalLevels {
		if l > LevelBytecode {
			compiledTiers++
		}
	}
	if compiledTiers == 0 {
		t.Skip("controller never compiled on this machine; nothing to verify")
	}
	warm, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.CacheHit {
		t.Fatal("warm run missed the cache")
	}
	warmCompiled := 0
	for _, l := range warm.Stats.FinalLevels {
		if l > LevelBytecode {
			warmCompiled++
		}
	}
	if warmCompiled < compiledTiers {
		t.Errorf("warm run finished %d pipelines compiled, cold finished %d — tiers not reused",
			warmCompiled, compiledTiers)
	}
	if warm.Stats.Translate > cold.Stats.Translate*2 && warm.Stats.Translate.Microseconds() > 500 {
		t.Errorf("warm translate %v vs cold %v — cache did not skip translation",
			warm.Stats.Translate, cold.Stats.Translate)
	}
	if checksum(warm) != checksum(cold) {
		t.Error("warm checksum diverged")
	}
	if !strings.Contains(warm.Stats.Fingerprint, cold.Stats.Fingerprint) {
		t.Errorf("fingerprint changed: %s vs %s", warm.Stats.Fingerprint, cold.Stats.Fingerprint)
	}
}
