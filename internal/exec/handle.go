package exec

import (
	"sync/atomic"

	"aqe/internal/ir"
	"aqe/internal/ir/interp"
	"aqe/internal/jit"
	"aqe/internal/rt"
	"aqe/internal/vm"
)

// Level is the execution tier of a worker function.
type Level int32

// Execution tiers, ordered by throughput (Fig. 3). LevelNative is the
// copy-and-patch machine-code tier (tier 6), available only where
// asm.Supported() holds.
const (
	LevelBytecode Level = iota
	LevelUnoptimized
	LevelOptimized
	LevelNative
)

func (l Level) String() string {
	switch l {
	case LevelBytecode:
		return "bytecode"
	case LevelUnoptimized:
		return "unoptimized"
	case LevelNative:
		return "native"
	default:
		return "optimized"
	}
}

// Handle is the paper's function handle (Fig. 5): it stores every variant
// of a worker function and dispatches each morsel to the fastest one
// available. Changing the execution mode is a single atomic pointer store;
// all workers pick up the new variant at their next morsel.
type Handle struct {
	Fn     *ir.Function
	Prog   *vm.Program // bytecode, always available
	Instrs int

	// UseIRInterp forces direct SSA interpretation (ModeIRInterp).
	UseIRInterp bool

	compiled  atomic.Pointer[jit.Compiled]
	level     atomic.Int32
	compiling atomic.Bool

	// nativeFailed latches a failed native compilation (unsupported op,
	// exec-memory failure) so the controller stops proposing the tier for
	// this function.
	nativeFailed atomic.Bool
}

// NewHandle translates the function to bytecode and wraps it.
func NewHandle(fn *ir.Function, opts vm.Options) (*Handle, error) {
	prog, err := vm.Translate(fn, opts)
	if err != nil {
		return nil, err
	}
	return HandleFor(fn, prog), nil
}

// HandleFor wraps an already-translated program — the compilation cache
// hands out shared Programs this way. Programs and Compiled closures are
// immutable and safe for concurrent use with distinct contexts, so many
// in-flight queries can share them; the Handle itself carries the per-run
// dispatch state (tier, in-flight compile flag).
func HandleFor(fn *ir.Function, prog *vm.Program) *Handle {
	return &Handle{Fn: fn, Prog: prog, Instrs: fn.NumInstrs()}
}

// Level returns the currently installed tier.
func (h *Handle) Level() Level { return Level(h.level.Load()) }

// Compiling reports whether a background compilation is in flight.
func (h *Handle) Compiling() bool { return h.compiling.Load() }

// BeginCompile marks a compilation in flight; returns false if one
// already is.
func (h *Handle) BeginCompile() bool {
	return h.compiling.CompareAndSwap(false, true)
}

// Install publishes a compiled variant; all remaining morsels of the
// pipeline immediately switch to it (§III-B: "Once set, all remaining
// morsels will be processed using the new variant").
func (h *Handle) Install(c *jit.Compiled, l Level) {
	h.compiled.Store(c)
	h.level.Store(int32(l))
	h.compiling.Store(false)
}

// AbortCompile clears the in-flight flag after a failed compilation.
func (h *Handle) AbortCompile() { h.compiling.Store(false) }

// MarkNativeFailed records that native compilation failed for this
// function; NativeFailed gates further attempts.
func (h *Handle) MarkNativeFailed() { h.nativeFailed.Store(true) }

// NativeFailed reports whether a native compilation has failed.
func (h *Handle) NativeFailed() bool { return h.nativeFailed.Load() }

// Dispatch runs one morsel with the fastest available variant — the
// paper's per-morsel dispatch code (Fig. 5).
func (h *Handle) Dispatch(ctx *rt.Ctx, args []uint64) {
	if h.UseIRInterp {
		interp.Run(h.Fn, ctx, args)
		return
	}
	if c := h.compiled.Load(); c != nil {
		c.Run(ctx, args)
		return
	}
	h.Prog.Run(ctx, args)
}
