package exec

import (
	"sync/atomic"

	"aqe/internal/ir"
	"aqe/internal/ir/interp"
	"aqe/internal/jit"
	"aqe/internal/rt"
	"aqe/internal/vector"
	"aqe/internal/vm"
)

// Level is the execution tier of a worker function.
type Level int32

// Execution tiers, ordered by throughput (Fig. 3). LevelNative is the
// copy-and-patch machine-code tier (tier 6), available only where
// asm.Supported() holds. LevelVector is not a compilation tier of the
// closure family but a different engine: the morsel-driven vectorized
// backend. It sits above LevelNative numerically only so the dispatch
// check is one comparison; the controller treats engine selection
// separately from tier selection.
const (
	LevelBytecode Level = iota
	LevelUnoptimized
	LevelOptimized
	LevelNative
	LevelVector
)

func (l Level) String() string {
	switch l {
	case LevelBytecode:
		return "bytecode"
	case LevelUnoptimized:
		return "unoptimized"
	case LevelNative:
		return "native"
	case LevelVector:
		return "vectorized"
	default:
		return "optimized"
	}
}

// Handle is the paper's function handle (Fig. 5): it stores every variant
// of a worker function and dispatches each morsel to the fastest one
// available. Changing the execution mode is a single atomic pointer store;
// all workers pick up the new variant at their next morsel.
type Handle struct {
	Fn     *ir.Function
	Prog   *vm.Program // bytecode, always available
	Instrs int

	// UseIRInterp forces direct SSA interpretation (ModeIRInterp).
	UseIRInterp bool

	compiled  atomic.Pointer[jit.Compiled]
	level     atomic.Int32
	compiling atomic.Bool

	// nativeFailed latches a failed native compilation (unsupported op,
	// exec-memory failure) so the controller stops proposing the tier for
	// this function.
	nativeFailed atomic.Bool

	// vec is the pre-staged vectorized kernel of this pipeline (nil when
	// the pipeline has no vector plan or NoVector is set). Installing it is
	// a level flip; the compiled variant stays on the handle so demotion
	// out of the vectorized engine is a level flip back.
	vec       atomic.Pointer[vector.Kernel]
	vecFailed atomic.Bool
}

// NewHandle translates the function to bytecode and wraps it.
func NewHandle(fn *ir.Function, opts vm.Options) (*Handle, error) {
	prog, err := vm.Translate(fn, opts)
	if err != nil {
		return nil, err
	}
	return HandleFor(fn, prog), nil
}

// HandleFor wraps an already-translated program — the compilation cache
// hands out shared Programs this way. Programs and Compiled closures are
// immutable and safe for concurrent use with distinct contexts, so many
// in-flight queries can share them; the Handle itself carries the per-run
// dispatch state (tier, in-flight compile flag).
func HandleFor(fn *ir.Function, prog *vm.Program) *Handle {
	return &Handle{Fn: fn, Prog: prog, Instrs: fn.NumInstrs()}
}

// Level returns the currently installed tier.
func (h *Handle) Level() Level { return Level(h.level.Load()) }

// Compiling reports whether a background compilation is in flight.
func (h *Handle) Compiling() bool { return h.compiling.Load() }

// BeginCompile marks a compilation in flight; returns false if one
// already is.
func (h *Handle) BeginCompile() bool {
	return h.compiling.CompareAndSwap(false, true)
}

// Install publishes a compiled variant; all remaining morsels of the
// pipeline immediately switch to it (§III-B: "Once set, all remaining
// morsels will be processed using the new variant").
func (h *Handle) Install(c *jit.Compiled, l Level) {
	h.compiled.Store(c)
	h.level.Store(int32(l))
	h.compiling.Store(false)
}

// AbortCompile clears the in-flight flag after a failed compilation.
func (h *Handle) AbortCompile() { h.compiling.Store(false) }

// MarkNativeFailed records that native compilation failed for this
// function; NativeFailed gates further attempts.
func (h *Handle) MarkNativeFailed() { h.nativeFailed.Store(true) }

// NativeFailed reports whether a native compilation has failed.
func (h *Handle) NativeFailed() bool { return h.nativeFailed.Load() }

// SetVecKernel pre-stages the vectorized kernel without installing it.
func (h *Handle) SetVecKernel(k *vector.Kernel) { h.vec.Store(k) }

// VecKernel returns the pre-staged vectorized kernel, or nil.
func (h *Handle) VecKernel() *vector.Kernel { return h.vec.Load() }

// InstallVector switches the pipeline's remaining morsels to the
// vectorized engine — the same single atomic publication as Install.
func (h *Handle) InstallVector() {
	h.level.Store(int32(LevelVector))
	h.compiling.Store(false)
}

// DemoteVector switches the pipeline back to the closure-family tier it
// ran before the vectorized engine was installed (the compiled variant is
// still on the handle) and latches the failure so the controller stops
// re-proposing the engine for this pipeline.
func (h *Handle) DemoteVector(l Level) {
	h.vecFailed.Store(true)
	h.level.Store(int32(l))
	h.compiling.Store(false)
}

// MarkVecFailed records that the pipeline cannot (or should not) run on
// the vectorized engine.
func (h *Handle) MarkVecFailed() { h.vecFailed.Store(true) }

// VecFailed reports whether the vectorized engine is latched off.
func (h *Handle) VecFailed() bool { return h.vecFailed.Load() }

// Dispatch runs one morsel with the fastest available variant — the
// paper's per-morsel dispatch code (Fig. 5), extended with the engine
// dimension: a pipeline at LevelVector dispatches to the vectorized
// kernel, everything else to the fastest closure-family variant.
func (h *Handle) Dispatch(ctx *rt.Ctx, args []uint64) {
	if h.UseIRInterp {
		interp.Run(h.Fn, ctx, args)
		return
	}
	if Level(h.level.Load()) == LevelVector {
		if k := h.vec.Load(); k != nil {
			k.Run(ctx, args)
			return
		}
	}
	if c := h.compiled.Load(); c != nil {
		c.Run(ctx, args)
		return
	}
	h.Prog.Run(ctx, args)
}
