package exec

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"aqe/internal/expr"
	"aqe/internal/plan"
	"aqe/internal/rt"
	"aqe/internal/storage"
	"aqe/internal/vm"
	"aqe/internal/volcano"
)

// mkOrders builds a small orders-like table.
func mkOrders(n int, rng *rand.Rand) *storage.Table {
	id := storage.NewColumn("o_id", storage.Int64)
	cust := storage.NewColumn("o_cust", storage.Int64)
	total := storage.NewColumn("o_total", storage.Decimal)
	date := storage.NewColumn("o_date", storage.Date)
	status := storage.NewColumn("o_status", storage.Char)
	comment := storage.NewColumn("o_comment", storage.String)
	words := []string{"quick brown fox", "special deposits", "furious packages",
		"final requests", "express lanes", "regular deposits haggle"}
	for i := 0; i < n; i++ {
		id.AppendInt64(int64(i))
		cust.AppendInt64(int64(rng.Intn(n/4 + 1)))
		total.AppendInt64(int64(rng.Intn(100000)))
		date.AppendInt64(int64(9000 + rng.Intn(2000)))
		status.AppendChar(byte("OFP"[rng.Intn(3)]))
		comment.AppendString(words[rng.Intn(len(words))])
	}
	return storage.NewTable("orders", id, cust, total, date, status, comment)
}

// mkCust builds a small customers-like table.
func mkCust(n int, rng *rand.Rand) *storage.Table {
	id := storage.NewColumn("c_id", storage.Int64)
	seg := storage.NewColumn("c_seg", storage.String)
	bal := storage.NewColumn("c_bal", storage.Decimal)
	segs := []string{"BUILDING", "AUTOMOBILE", "MACHINERY"}
	for i := 0; i < n; i++ {
		id.AppendInt64(int64(i))
		seg.AppendString(segs[rng.Intn(len(segs))])
		bal.AppendInt64(int64(rng.Intn(20000) - 5000))
	}
	return storage.NewTable("cust", id, seg, bal)
}

// engines under test: every mode, multiple worker counts.
func testEngines() map[string]*Engine {
	native := Native()
	return map[string]*Engine{
		"bytecode-w1": New(Options{Workers: 1, Mode: ModeBytecode}),
		"bytecode-w3": New(Options{Workers: 3, Mode: ModeBytecode}),
		"unopt-w2":    New(Options{Workers: 2, Mode: ModeUnoptimized, Cost: native}),
		"opt-w2":      New(Options{Workers: 2, Mode: ModeOptimized, Cost: native}),
		"adaptive-w3": New(Options{Workers: 3, Mode: ModeAdaptive, Cost: native, MorselSize: 64}),
		"nofusion-w1": New(Options{Workers: 1, Mode: ModeBytecode,
			VM: vm.Options{NoFusion: true, Strategy: vm.Window, WindowSize: 3}}),
	}
}

// canon renders rows into sorted canonical strings for order-insensitive
// comparison; floats are rounded to absorb parallel summation order.
func canon(rows [][]expr.Datum, types []expr.Type) []string {
	out := make([]string, len(rows))
	for i, row := range rows {
		var sb strings.Builder
		for j, d := range row {
			if types[j].Kind == expr.KFloat {
				fmt.Fprintf(&sb, "|%.6g", d.F)
			} else if types[j].Kind == expr.KString {
				fmt.Fprintf(&sb, "|%s", d.S)
			} else {
				fmt.Fprintf(&sb, "|%d", d.I)
			}
		}
		out[i] = sb.String()
	}
	sort.Strings(out)
	return out
}

func typesOf(schema []plan.ColDef) []expr.Type {
	out := make([]expr.Type, len(schema))
	for i, c := range schema {
		out[i] = c.T
	}
	return out
}

// checkPlan runs the plan on every engine and compares against volcano.
func checkPlan(t *testing.T, name string, build func() plan.Node) {
	t.Helper()
	ref := build()
	want, err := volcano.Run(ref)
	if err != nil {
		t.Fatalf("%s: volcano: %v", name, err)
	}
	wantC := canon(want, typesOf(ref.Schema()))
	for ename, e := range testEngines() {
		res, err := e.RunPlan(build(), name)
		if err != nil {
			t.Errorf("%s [%s]: %v", name, ename, err)
			continue
		}
		gotC := canon(res.Rows, res.Types)
		if len(gotC) != len(wantC) {
			t.Errorf("%s [%s]: %d rows, want %d", name, ename, len(gotC), len(wantC))
			continue
		}
		for i := range gotC {
			if gotC[i] != wantC[i] {
				t.Errorf("%s [%s]: row %d\n got %s\nwant %s", name, ename, i, gotC[i], wantC[i])
				break
			}
		}
	}
}

var rngSeed = rand.New(rand.NewSource(42))
var ordersT = mkOrders(5000, rngSeed)
var custT = mkCust(800, rngSeed)

func TestScanFilterProject(t *testing.T) {
	checkPlan(t, "scan-filter-project", func() plan.Node {
		s := plan.NewScan(ordersT, "o_id", "o_total", "o_date", "o_status")
		sch := s.Schema()
		s.Where(expr.And(
			expr.Gt(plan.C(sch, "o_total"), expr.Dec(50000, 2)),
			expr.Eq(plan.C(sch, "o_status"), expr.Ch('O')),
		))
		return plan.NewProject(s,
			[]expr.Expr{plan.C(sch, "o_id"),
				expr.Mul(plan.C(sch, "o_total"), expr.Int(2)),
				expr.Year(plan.C(sch, "o_date"))},
			[]string{"id", "dbl", "yr"})
	})
}

func TestScalarAgg(t *testing.T) {
	checkPlan(t, "scalar-agg", func() plan.Node {
		s := plan.NewScan(ordersT, "o_total", "o_date")
		sch := s.Schema()
		s.Where(expr.Lt(plan.C(sch, "o_date"), expr.Date(10000)))
		return plan.NewGroupBy(s, nil, nil, []plan.AggExpr{
			{Func: plan.Sum, Arg: plan.C(sch, "o_total"), Name: "s"},
			{Func: plan.CountStar, Name: "n"},
			{Func: plan.Min, Arg: plan.C(sch, "o_total"), Name: "mn"},
			{Func: plan.Max, Arg: plan.C(sch, "o_total"), Name: "mx"},
			{Func: plan.Avg, Arg: plan.C(sch, "o_total"), Name: "av"},
		})
	})
}

func TestGroupByKeys(t *testing.T) {
	checkPlan(t, "groupby-char-key", func() plan.Node {
		s := plan.NewScan(ordersT, "o_status", "o_total")
		sch := s.Schema()
		return plan.NewGroupBy(s,
			[]expr.Expr{plan.C(sch, "o_status")}, []string{"st"},
			[]plan.AggExpr{
				{Func: plan.Sum, Arg: plan.C(sch, "o_total"), Name: "s"},
				{Func: plan.Count, Arg: plan.C(sch, "o_total"), Name: "n"},
			})
	})
	checkPlan(t, "groupby-string-key", func() plan.Node {
		s := plan.NewScan(custT, "c_seg", "c_bal")
		sch := s.Schema()
		return plan.NewGroupBy(s,
			[]expr.Expr{plan.C(sch, "c_seg")}, []string{"seg"},
			[]plan.AggExpr{
				{Func: plan.Sum, Arg: plan.C(sch, "c_bal"), Name: "s"},
				{Func: plan.Max, Arg: plan.C(sch, "c_bal"), Name: "mx"},
			})
	})
}

func TestInnerJoin(t *testing.T) {
	checkPlan(t, "inner-join", func() plan.Node {
		c := plan.NewScan(custT, "c_id", "c_seg", "c_bal")
		csch := c.Schema()
		o := plan.NewScan(ordersT, "o_id", "o_cust", "o_total")
		osch := o.Schema()
		return plan.NewJoin(plan.Inner, c, o,
			[]expr.Expr{plan.C(csch, "c_id")},
			[]expr.Expr{plan.C(osch, "o_cust")},
			[]string{"c_seg", "c_bal"})
	})
}

func TestJoinResidual(t *testing.T) {
	checkPlan(t, "join-residual", func() plan.Node {
		c := plan.NewScan(custT, "c_id", "c_bal")
		o := plan.NewScan(ordersT, "o_id", "o_cust", "o_total")
		j := plan.NewJoin(plan.Inner, c, o,
			[]expr.Expr{plan.C(c.Schema(), "c_id")},
			[]expr.Expr{plan.C(o.Schema(), "o_cust")},
			[]string{"c_bal"})
		// Residual over [probe ++ build]: o_total > c_bal (scaled).
		comb := j.CombinedSchema()
		j.WithResidual(expr.Gt(plan.C(comb, "o_total"), plan.C(comb, "c_bal")))
		return j
	})
}

func TestSemiAntiJoin(t *testing.T) {
	mk := func(kind plan.JoinKind) func() plan.Node {
		return func() plan.Node {
			o := plan.NewScan(ordersT, "o_cust", "o_total")
			o.Where(expr.Gt(plan.C(o.Schema(), "o_total"), expr.Dec(80000, 2)))
			c := plan.NewScan(custT, "c_id", "c_seg")
			return plan.NewJoin(kind, o, c,
				[]expr.Expr{plan.C(o.Schema(), "o_cust")},
				[]expr.Expr{plan.C(c.Schema(), "c_id")}, nil)
		}
	}
	checkPlan(t, "semi-join", mk(plan.Semi))
	checkPlan(t, "anti-join", mk(plan.Anti))
}

func TestOuterCountJoin(t *testing.T) {
	checkPlan(t, "outer-count", func() plan.Node {
		o := plan.NewScan(ordersT, "o_cust", "o_comment")
		o.Where(expr.NotLike(plan.C(o.Schema(), "o_comment"), "%special%deposits%"))
		c := plan.NewScan(custT, "c_id")
		j := plan.NewJoin(plan.OuterCount, o, c,
			[]expr.Expr{plan.C(o.Schema(), "o_cust")},
			[]expr.Expr{plan.C(c.Schema(), "c_id")}, nil).Named("c_count")
		// Q13 shape: distribution of counts.
		jsch := j.Schema()
		return plan.NewGroupBy(j,
			[]expr.Expr{plan.C(jsch, "c_count")}, []string{"cnt"},
			[]plan.AggExpr{{Func: plan.CountStar, Name: "custs"}})
	})
}

func TestGroupByOverJoinAndHaving(t *testing.T) {
	checkPlan(t, "agg-over-join-having", func() plan.Node {
		c := plan.NewScan(custT, "c_id", "c_seg")
		o := plan.NewScan(ordersT, "o_cust", "o_total")
		j := plan.NewJoin(plan.Inner, c, o,
			[]expr.Expr{plan.C(c.Schema(), "c_id")},
			[]expr.Expr{plan.C(o.Schema(), "o_cust")},
			[]string{"c_seg"})
		jsch := j.Schema()
		g := plan.NewGroupBy(j,
			[]expr.Expr{plan.C(jsch, "c_seg")}, []string{"seg"},
			[]plan.AggExpr{{Func: plan.Sum, Arg: plan.C(jsch, "o_total"), Name: "rev"}})
		// HAVING rev > const.
		return plan.NewFilter(g, expr.Gt(plan.C(g.Schema(), "rev"), expr.Dec(100000, 2)))
	})
}

func TestAggAsBuildSide(t *testing.T) {
	// Q18 shape: join customers against big-spender aggregation.
	checkPlan(t, "agg-as-build", func() plan.Node {
		o := plan.NewScan(ordersT, "o_cust", "o_total")
		g := plan.NewGroupBy(o,
			[]expr.Expr{plan.C(o.Schema(), "o_cust")}, []string{"cust"},
			[]plan.AggExpr{{Func: plan.Sum, Arg: plan.C(o.Schema(), "o_total"), Name: "spent"}})
		gf := plan.NewFilter(g, expr.Gt(plan.C(g.Schema(), "spent"), expr.Dec(200000, 2)))
		c := plan.NewScan(custT, "c_id", "c_seg")
		return plan.NewJoin(plan.Inner, gf, c,
			[]expr.Expr{plan.C(gf.Schema(), "cust")},
			[]expr.Expr{plan.C(c.Schema(), "c_id")},
			[]string{"spent"})
	})
}

func TestOrderByLimit(t *testing.T) {
	// Ordered comparison: both engines sort, so compare positionally.
	build := func() plan.Node {
		s := plan.NewScan(ordersT, "o_id", "o_total")
		sch := s.Schema()
		return plan.NewOrderBy(s, []plan.SortKey{
			{E: plan.C(sch, "o_total"), Desc: true},
			{E: plan.C(sch, "o_id")},
		}, 25)
	}
	want, err := volcano.Run(build())
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Workers: 2, Mode: ModeBytecode})
	res, err := e.RunPlan(build(), "orderby")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("%d rows, want %d", len(res.Rows), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if res.Rows[i][j].I != want[i][j].I {
				t.Fatalf("row %d col %d: %d vs %d", i, j, res.Rows[i][j].I, want[i][j].I)
			}
		}
	}
}

func TestLikeAndInPushedToScan(t *testing.T) {
	checkPlan(t, "like-in", func() plan.Node {
		s := plan.NewScan(ordersT, "o_id", "o_comment", "o_status")
		sch := s.Schema()
		s.Where(expr.And(
			expr.Like(plan.C(sch, "o_comment"), "%deposits%"),
			expr.In(plan.C(sch, "o_status"), expr.Ch('O'), expr.Ch('F')),
		))
		return s
	})
}

func TestCaseExpression(t *testing.T) {
	checkPlan(t, "case-sum", func() plan.Node {
		s := plan.NewScan(ordersT, "o_status", "o_total")
		sch := s.Schema()
		arg := expr.Case([]expr.When{{
			Cond: expr.Eq(plan.C(sch, "o_status"), expr.Ch('O')),
			Then: plan.C(sch, "o_total"),
		}}, expr.Dec(0, 2))
		return plan.NewGroupBy(s, nil, nil, []plan.AggExpr{
			{Func: plan.Sum, Arg: arg, Name: "open_total"},
		})
	})
}

func TestOverflowPropagates(t *testing.T) {
	big := storage.NewColumn("v", storage.Int64)
	for i := 0; i < 10; i++ {
		big.AppendInt64(math.MaxInt64 / 3)
	}
	tbl := storage.NewTable("big", big)
	build := func() plan.Node {
		s := plan.NewScan(tbl, "v")
		return plan.NewGroupBy(s, nil, nil, []plan.AggExpr{
			{Func: plan.Sum, Arg: plan.C(s.Schema(), "v"), Name: "s"},
		})
	}
	if _, err := volcano.Run(build()); err == nil {
		t.Fatal("volcano: expected overflow")
	}
	for _, mode := range []Mode{ModeBytecode, ModeUnoptimized, ModeOptimized} {
		e := New(Options{Workers: 2, Mode: mode, Cost: Native()})
		if _, err := e.RunPlan(build(), "overflow"); err == nil {
			t.Errorf("%v: expected overflow error", mode)
		} else if trap, ok := err.(*rt.Trap); !ok || trap.Code != rt.TrapOverflow {
			t.Errorf("%v: got %v", mode, err)
		}
	}
}

func TestMultiStageQuery(t *testing.T) {
	// Stage 1: max total; stage 2: all orders achieving it.
	q := plan.Query{Name: "2stage", Stages: []plan.Stage{
		{Name: "mx", Build: func(map[string]*storage.Table) plan.Node {
			s := plan.NewScan(ordersT, "o_total")
			return plan.NewGroupBy(s, nil, nil, []plan.AggExpr{
				{Func: plan.Max, Arg: plan.C(s.Schema(), "o_total"), Name: "m"},
			})
		}},
		{Name: "hits", Build: func(prior map[string]*storage.Table) plan.Node {
			mx := prior["mx"].MustCol("m").Int64At(0)
			s := plan.NewScan(ordersT, "o_id", "o_total")
			s.Where(expr.Eq(plan.C(s.Schema(), "o_total"), expr.Dec(mx, 2)))
			return s
		}},
	}}
	e := New(Options{Workers: 2, Mode: ModeBytecode})
	res, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Every returned total equals the max.
	var mx int64
	for i := 0; i < ordersT.Rows(); i++ {
		if v := ordersT.MustCol("o_total").Int64At(i); v > mx {
			mx = v
		}
	}
	for _, row := range res.Rows {
		if row[1].I != mx {
			t.Errorf("row total %d, want %d", row[1].I, mx)
		}
	}
}

func TestAdaptiveCompiles(t *testing.T) {
	// With a zero-latency cost model and large data, adaptive execution
	// should decide to compile at least one pipeline.
	cost := Native()
	cost.UnoptBase, cost.UnoptPerInstr = 0, 0
	cost.OptBase, cost.OptPerInstr = 0, 0
	e := New(Options{Workers: 2, Mode: ModeAdaptive, Cost: cost, MorselSize: 256})
	s := plan.NewScan(ordersT, "o_total")
	g := plan.NewGroupBy(s, nil, nil, []plan.AggExpr{
		{Func: plan.Sum, Arg: plan.C(s.Schema(), "o_total"), Name: "s"},
	})
	res, err := e.RunPlan(g, "adaptive-compiles")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := volcano.Run(plan.NewGroupBy(plan.NewScan(ordersT, "o_total"), nil, nil,
		[]plan.AggExpr{{Func: plan.Sum, Arg: expr.Col(0, expr.TDec(2)), Name: "s"}}))
	if res.Rows[0][0].I != want[0][0].I {
		t.Errorf("sum %d, want %d", res.Rows[0][0].I, want[0][0].I)
	}
	// The decision itself is timing-dependent on tiny data; only assert
	// the machinery does not corrupt results. Statistics should still be
	// recorded coherently.
	if res.Stats.Pipelines == 0 || res.Stats.Instrs == 0 {
		t.Error("stats not recorded")
	}
}

func TestStatsAndTrace(t *testing.T) {
	e := New(Options{Workers: 2, Mode: ModeBytecode, Trace: true})
	s := plan.NewScan(ordersT, "o_total")
	g := plan.NewGroupBy(s, nil, nil, []plan.AggExpr{
		{Func: plan.CountStar, Name: "n"},
	})
	res, err := e.RunPlan(g, "trace")
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("trace missing")
	}
	evs := res.Trace.Events()
	if len(evs) == 0 {
		t.Fatal("no trace events")
	}
	morsels := 0
	for _, ev := range evs {
		if ev.Kind == EvMorsel {
			morsels++
			if ev.End < ev.Start {
				t.Error("event times reversed")
			}
		}
	}
	if morsels == 0 {
		t.Error("no morsel events")
	}
	if g := res.Trace.Gantt(80); !strings.Contains(g, "w0") {
		t.Errorf("gantt rendering broken:\n%s", g)
	}
	if res.Stats.RegFileBytes == 0 {
		t.Error("register file size not recorded")
	}
}
