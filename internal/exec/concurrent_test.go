package exec

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"aqe/internal/tpch"
)

// TestConcurrentDifferential runs 8 TPC-H queries in flight at once on a
// single engine — shared worker pool, shared plan cache, admission queue
// smaller than the query count — for every execution tier, and asserts
// each result is bit-identical to the serial single-query execution. Run
// under -race this is the scheduler's main correctness net: morsels of
// all 8 queries interleave on the same pool workers.
func TestConcurrentDifferential(t *testing.T) {
	cat := diffCat()
	const inFlight = 8

	// Serial reference: one query at a time on a plain bytecode engine.
	want := make(map[int]string)
	ref := New(Options{Workers: 1, Mode: ModeBytecode})
	for qn := 1; qn <= inFlight; qn++ {
		res, err := ref.Run(tpch.Query(cat, qn))
		if err != nil {
			t.Fatalf("serial Q%d: %v", qn, err)
		}
		want[qn] = checksum(res)
	}

	modes := []Mode{ModeBytecode, ModeUnoptimized, ModeOptimized, ModeAdaptive, ModeIRInterp}
	for _, mode := range modes {
		e := New(Options{Workers: 2, PoolWorkers: 4, MaxConcurrent: 4,
			Mode: mode, Cost: Native(), MorselSize: 512, CacheBytes: 64 << 20})
		var wg sync.WaitGroup
		for qn := 1; qn <= inFlight; qn++ {
			wg.Add(1)
			go func(qn int) {
				defer wg.Done()
				res, err := e.Run(tpch.Query(cat, qn))
				if err != nil {
					t.Errorf("%v Q%d: %v", mode, qn, err)
					return
				}
				if got := checksum(res); got != want[qn] {
					t.Errorf("%v Q%d concurrent: checksum %s, want %s", mode, qn, got, want[qn])
				}
			}(qn)
		}
		wg.Wait()
		// No admission ticket may outlive its query (queueing itself is
		// timing-dependent at this scale; TestQueuedStats pins it).
		if st := e.SchedStats(); st.Running != 0 || st.Waiting != 0 {
			t.Errorf("%v: tickets leaked after drain (%+v)", mode, st)
		}
	}
}

// TestCancelLandsWithinOneMorsel pins the preemption granularity: with a
// single pool worker, a cancel issued from the morsel hook must stop the
// query before the next claim — zero further morsels, not "whenever the
// scan finishes".
func TestCancelLandsWithinOneMorsel(t *testing.T) {
	mk := func() *Engine {
		return New(Options{Workers: 1, PoolWorkers: 1, Mode: ModeBytecode,
			MorselSize: 256, MorselCap: 256, MorselGrowEvery: 1 << 20})
	}

	// Control: count the morsels of an uncancelled run.
	var baseline int
	{
		e := mk()
		e.morselHook = func(int, *Handle, int) { baseline++ }
		if _, err := e.RunPlan(stressPlan(), "control"); err != nil {
			t.Fatal(err)
		}
	}
	if baseline < 10 {
		t.Fatalf("control run dispatched only %d morsels; plan too small to observe preemption", baseline)
	}

	const cancelAt = 3
	e := mk()
	ctx, cancel := context.WithCancel(context.Background())
	var morsels int
	e.morselHook = func(int, *Handle, int) {
		morsels++
		if morsels == cancelAt {
			cancel()
			<-ctx.Done()
			// Give the AfterFunc watcher its goroutine switch; the single
			// pool worker is right here, so nothing can claim meanwhile.
			time.Sleep(5 * time.Millisecond)
		}
	}
	res, err := e.RunPlanCtx(ctx, stressPlan(), "cancelled")
	if err == nil {
		t.Fatal("cancelled query returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if res == nil || !res.Stats.Cancelled {
		t.Error("Stats.Cancelled not set on cancelled query")
	}
	if len(res.Rows) != 0 {
		t.Errorf("cancelled query returned %d rows", len(res.Rows))
	}
	if morsels > cancelAt+1 {
		t.Errorf("%d morsels dispatched after cancel at morsel %d; preemption did not land within one morsel",
			morsels-cancelAt, cancelAt)
	}
}

// TestDeadlineCancels asserts a context deadline terminates a query with
// DeadlineExceeded through the same preemption path.
func TestDeadlineCancels(t *testing.T) {
	e := New(Options{Workers: 2, PoolWorkers: 2, Mode: ModeBytecode, MorselSize: 64})
	// A deadline that has surely expired by the first preemption check.
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	res, err := e.RunPlanCtx(ctx, stressPlan(), "deadline")
	if err == nil {
		t.Fatal("deadline query returned no error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
	if res == nil || !res.Stats.Cancelled {
		t.Error("Stats.Cancelled not set")
	}
}

// TestQueuedStats asserts a query held at the admission gate reports the
// wait: cap 1, the first query is gated open only after the second has
// visibly queued.
func TestQueuedStats(t *testing.T) {
	e := New(Options{Workers: 1, PoolWorkers: 1, MaxConcurrent: 1,
		Mode: ModeBytecode, MorselSize: 256})
	var once sync.Once
	started := make(chan struct{})
	release := make(chan struct{})
	e.morselHook = func(int, *Handle, int) {
		once.Do(func() { close(started) })
		<-release
	}

	resA := make(chan *Result, 1)
	go func() {
		res, err := e.RunPlan(stressPlan(), "holder")
		if err != nil {
			t.Error(err)
		}
		resA <- res
	}()
	<-started
	resB := make(chan *Result, 1)
	go func() {
		res, err := e.RunPlan(stressPlan(), "queued")
		if err != nil {
			t.Error(err)
		}
		resB <- res
	}()
	deadline := time.Now().Add(2 * time.Second)
	for e.SchedStats().Waiting != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second query never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	a, b := <-resA, <-resB
	if a == nil || b == nil {
		t.Fatal("missing results")
	}
	if a.Stats.Queued {
		t.Error("first query reported queued")
	}
	if !b.Stats.Queued || b.Stats.WaitTime <= 0 {
		t.Errorf("queued query stats: queued=%v wait=%v", b.Stats.Queued, b.Stats.WaitTime)
	}
}

// TestCancellationSoak fires 200 iterations of concurrent queries with
// random deadlines and mid-flight cancels at one shared engine, then
// asserts (a) no goroutines leaked — pool workers, compile workers, and
// cancellation watchers are all ephemeral — and (b) the shared plan cache
// stayed consistent: every query still returns bit-identical results.
func TestCancellationSoak(t *testing.T) {
	cat := diffCat()
	qns := []int{1, 3, 6}

	// References from a fresh serial engine.
	want := make(map[int]string)
	ref := New(Options{Workers: 1, Mode: ModeBytecode})
	for _, qn := range qns {
		res, err := ref.Run(tpch.Query(cat, qn))
		if err != nil {
			t.Fatal(err)
		}
		want[qn] = checksum(res)
	}

	before := runtime.NumGoroutine()
	e := New(Options{Workers: 2, PoolWorkers: 2, MaxConcurrent: 3,
		Mode: ModeAdaptive, Cost: Native(), MorselSize: 256, CacheBytes: 32 << 20})
	rng := rand.New(rand.NewSource(7))
	iters := 200
	if testing.Short() {
		iters = 40
	}
	for i := 0; i < iters; i++ {
		var wg sync.WaitGroup
		for _, qn := range qns[:1+rng.Intn(len(qns))] {
			wg.Add(1)
			go func(qn, kind int, after time.Duration) {
				defer wg.Done()
				ctx := context.Background()
				var cancel context.CancelFunc
				switch kind {
				case 0: // random deadline, often mid-query
					ctx, cancel = context.WithTimeout(ctx, after)
				case 1: // explicit cancel from a second goroutine
					ctx, cancel = context.WithCancel(ctx)
					go func(c context.CancelFunc, d time.Duration) {
						time.Sleep(d)
						c()
					}(cancel, after)
				default: // run to completion
				}
				if cancel != nil {
					defer cancel()
				}
				res, err := e.RunCtx(ctx, tpch.Query(cat, qn))
				if err != nil {
					if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
						t.Errorf("iter %d Q%d: %v", i, qn, err)
					}
					return
				}
				if got := checksum(res); got != want[qn] {
					t.Errorf("iter %d Q%d: checksum %s, want %s", i, qn, got, want[qn])
				}
			}(qn, rng.Intn(3), time.Duration(rng.Intn(2000))*time.Microsecond)
		}
		wg.Wait()
	}

	// Leak check: pool workers, compile workers, and watchers must all be
	// gone once the engine idles (GC/sweep goroutines may need a moment).
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before soak, %d after — leak", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Cache consistency: the survivor engine still answers correctly.
	for _, qn := range qns {
		res, err := e.Run(tpch.Query(cat, qn))
		if err != nil {
			t.Fatalf("post-soak Q%d: %v", qn, err)
		}
		if got := checksum(res); got != want[qn] {
			t.Errorf("post-soak Q%d: checksum %s, want %s — cache corrupted by cancels", qn, got, want[qn])
		}
	}
	if st := e.CacheStats(); st.Entries == 0 || st.Hits == 0 {
		t.Errorf("implausible cache stats after soak: %+v", st)
	}
}
