package exec

import (
	"strings"
	"testing"
	"time"
)

func TestCostModelMonotonicity(t *testing.T) {
	for _, m := range []*CostModel{Paper(), Native()} {
		prev := time.Duration(0)
		for _, n := range []int{100, 1000, 10000, 100000} {
			u := m.UnoptTime(n)
			o := m.OptTime(n)
			if u <= 0 || o <= 0 {
				t.Fatalf("non-positive compile time at %d instrs", n)
			}
			if o < u {
				t.Errorf("optimized cheaper than unoptimized at %d instrs", n)
			}
			if u < prev {
				t.Errorf("unopt time not monotone at %d instrs", n)
			}
			prev = u
		}
		if m.Speedup(LevelOptimized) < m.Speedup(LevelUnoptimized) ||
			m.Speedup(LevelUnoptimized) < m.Speedup(LevelBytecode) {
			t.Error("speedups not ordered")
		}
		if m.Speedup(LevelBytecode) != 1 {
			t.Error("bytecode speedup must be 1")
		}
	}
}

func TestPaperModelCalibration(t *testing.T) {
	m := Paper()
	// Table I anchor: ~2000 instructions compile in roughly 6 ms
	// unoptimized and ~42 ms optimized.
	u := m.UnoptTime(2000)
	if u < 4*time.Millisecond || u > 9*time.Millisecond {
		t.Errorf("unopt(2000) = %v, want ~6ms", u)
	}
	o := m.OptTime(2000)
	if o < 30*time.Millisecond || o > 90*time.Millisecond {
		t.Errorf("opt(2000) = %v, want ~42-70ms", o)
	}
	// Fig. 15 anchor: ~10k instructions in one function exceed seconds.
	if m.OptTime(10000) < 3*time.Second {
		t.Errorf("opt(10000) = %v, want super-linear blowup", m.OptTime(10000))
	}
}

// TestExtrapolationChoosesStay verifies the Fig. 7 decision at the
// boundary: with almost no work left, compiling never pays off.
func TestExtrapolationChoosesStay(t *testing.T) {
	e := New(Options{Workers: 4, Mode: ModeAdaptive, Cost: Paper()})
	// Replicate the controller arithmetic directly.
	m := e.opts.Cost
	r0 := 1e6 // tuples/sec in bytecode
	w := 4.0
	decide := func(n float64, instrs int) Level {
		t0 := n / r0 / w
		best, bestT := LevelBytecode, t0
		for _, l := range []Level{LevelUnoptimized, LevelOptimized} {
			var c float64
			if l == LevelUnoptimized {
				c = m.UnoptTime(instrs).Seconds()
			} else {
				c = m.OptTime(instrs).Seconds()
			}
			r := r0 * m.Speedup(l)
			rem := n - (w-1)*r0*c
			if rem < 0 {
				rem = 0
			}
			tt := c + rem/r/w
			if tt < bestT {
				bestT = tt
				best = l
			}
		}
		return best
	}
	if got := decide(1000, 500); got != LevelBytecode {
		t.Errorf("tiny remainder chose %v", got)
	}
	if got := decide(5e8, 500); got == LevelBytecode {
		t.Errorf("huge remainder stayed in bytecode")
	}
	// Monotonicity: more remaining work never moves the decision toward a
	// cheaper tier.
	rank := map[Level]int{LevelBytecode: 0, LevelUnoptimized: 1, LevelOptimized: 2}
	prev := 0
	for _, n := range []float64{1e3, 1e5, 1e6, 1e7, 1e8, 1e9} {
		r := rank[decide(n, 500)]
		if r < prev {
			t.Errorf("decision regressed at n=%g", n)
		}
		prev = r
	}
}

func TestGanttRendering(t *testing.T) {
	tr := NewTrace()
	base := tr.Origin()
	tr.Add(Event{Kind: EvMorsel, Pipeline: 0, Label: "scan x", Worker: 0,
		Start: 0, End: 10 * time.Millisecond})
	tr.Add(Event{Kind: EvCompile, Pipeline: 0, Worker: -1,
		Start: 2 * time.Millisecond, End: 5 * time.Millisecond})
	tr.Add(Event{Kind: EvMorsel, Pipeline: 1, Label: "probe y", Worker: 1,
		Start: 4 * time.Millisecond, End: 9 * time.Millisecond})
	g := tr.Gantt(50)
	for _, want := range []string{"w0", "w1", "cc", "scan x", "probe y", "C"} {
		if !strings.Contains(g, want) {
			t.Errorf("gantt missing %q:\n%s", want, g)
		}
	}
	// Merge shifts by origin delta without panicking.
	tr2 := NewTrace()
	tr2.Add(Event{Kind: EvMorsel, Pipeline: 2, Label: "z", Worker: 0,
		Start: 0, End: time.Millisecond})
	tr.Merge(tr2)
	if len(tr.Events()) != 4 {
		t.Errorf("merge lost events")
	}
	_ = base
}
