package exec

import "time"

// CostModel predicts compilation times and speedups for the controller's
// extrapolation (Fig. 7) and — when Simulate is set — imposes the modeled
// compile latency on compilation tasks.
//
// The paper determines both empirically: compile time is near-linear in
// the function's instruction count (Fig. 6), with optimized compilation
// growing super-linearly for very large functions (§V-E, Fig. 15), and
// speedups are measured per mode (§V-D: bytecode is 3.6x slower than
// unoptimized and 5.0x slower than optimized machine code).
//
// Our Go closure backends are orders of magnitude faster than LLVM, which
// would flatten the latency/throughput tradeoff the paper studies; the
// Paper() model restores LLVM-scale costs as wall-clock latency (the
// compile still really runs). Native() models the measured costs of the
// in-process backends for real-latency experiments. DESIGN.md documents
// the substitution.
type CostModel struct {
	UnoptBase     time.Duration
	UnoptPerInstr time.Duration
	OptBase       time.Duration
	OptPerInstr   time.Duration
	// OptCubic adds the super-linear term: seconds per cubed instruction
	// of the function being compiled. Fig. 15's optimized curve stays
	// near-linear below ~5k instructions (consistent with Fig. 6) and then
	// explodes; a cubic term reproduces that knee (§V-E).
	OptCubic float64

	// NativeBase/NativePerInstr model the copy-and-patch assemble latency
	// of the native tier: template stitching is a single linear pass, so
	// it sits well below even unoptimized closure compilation.
	NativeBase     time.Duration
	NativePerInstr time.Duration

	// SpeedupUnopt/SpeedupOpt/SpeedupNative are throughput ratios
	// relative to bytecode.
	SpeedupUnopt  float64
	SpeedupOpt    float64
	SpeedupNative float64

	// SpeedupVecHash/SpeedupVecCompute are the vectorized engine's modeled
	// throughput ratios relative to bytecode, split by pipeline character:
	// hash-dense pipelines (probes, grouped aggregation) batch their
	// hash-table walks and overlap cache misses, where the engine wins big;
	// compute-dense pipelines only save interpretation overhead compiled
	// code already eliminates. The controller picks the estimate by the
	// pipeline's VecSpec.HashDense flag.
	SpeedupVecHash    float64
	SpeedupVecCompute float64

	// Simulate imposes the modeled times on actual compilations.
	Simulate bool
}

// Paper returns the cost model calibrated to the paper's measurements:
// unoptimized ≈ 6 ms and optimized ≈ 42 ms for TPC-H Q1's ~2000
// instructions (Table I), near-linear growth over 300..19000 instructions
// (Fig. 6), and an explosive quadratic term for optimized compilation that
// reaches ~4 s at 10k instructions in a single function (Fig. 15).
func Paper() *CostModel {
	return &CostModel{
		UnoptBase:     500 * time.Microsecond,
		UnoptPerInstr: 2750 * time.Nanosecond,
		OptBase:       2 * time.Millisecond,
		OptPerInstr:   18 * time.Microsecond,
		OptCubic:      3.5e-12, // ~3.5 s extra at 10k instructions in one function
		// Copy-and-patch sits between the bytecode translator (~free) and
		// fast instruction selection on the latency axis (Xu & Kjolstad
		// 2021 report ~two orders below LLVM -O0) while approaching
		// optimized machine code on the throughput axis.
		NativeBase:     300 * time.Microsecond,
		NativePerInstr: 1 * time.Microsecond,
		SpeedupUnopt:  3.6,
		SpeedupOpt:    5.0,
		SpeedupNative: 5.5,
		// In the LLVM-latency regime the vectorized engine's draw is that it
		// needs no compilation at all: installed instantly, faster than any
		// closure tier on hash-dense pipelines (VectorWise-style batching),
		// merely competitive with optimized code on compute-dense ones.
		SpeedupVecHash:    6.0,
		SpeedupVecCompute: 2.5,
		Simulate:          true,
	}
}

// Native returns a model of the in-process closure backends (rough fits;
// the controller only needs the order of magnitude). The speedups reflect
// this substrate's measured behaviour: Go's switch-dispatch VM with
// macro-op fusion is close to the closure tiers on hash-heavy pipelines
// and loses on compute-dense ones (EXPERIMENTS.md discusses this deviation
// from the paper's 3.6x/5.0x).
func Native() *CostModel {
	return &CostModel{
		UnoptBase:     20 * time.Microsecond,
		UnoptPerInstr: 250 * time.Nanosecond,
		OptBase:       50 * time.Microsecond,
		OptPerInstr:   2500 * time.Nanosecond,
		OptCubic:      0,
		// Measured on the register-allocating template JIT (PR 8,
		// EXPERIMENTS.md compile-latency table): ~0.35 µs per instruction
		// plus a small fixed cost for the allocator's per-function arrays,
		// landing at or below the bytecode translator and well below the
		// closure backends.
		NativeBase:     25 * time.Microsecond,
		NativePerInstr: 350 * time.Nanosecond,
		SpeedupUnopt:   1.2,
		SpeedupOpt:     1.4,
		// Measured native-over-bytecode spans 2.2x (hash-bound Q10,
		// hashwalk) to 9x (float-dense aggregation); 3.0 is a deliberately
		// conservative prediction so the demotion controller (which demotes
		// below 0.5x of prediction) tolerates the memory-bound low end.
		SpeedupNative: 3.0,
		// Measured on this substrate (EXPERIMENTS.md hybrid table): batched
		// probe/group walks beat the per-tuple compiled walk markedly on
		// hash-dense pipelines, while compute-dense pipelines land near the
		// optimized closures (typed Go loops vs fused bytecode) — below
		// native, so the controller keeps those compiled.
		SpeedupVecHash:    3.5,
		SpeedupVecCompute: 1.2,
		Simulate:          false,
	}
}

// UnoptTime predicts the unoptimized compile time of a function with the
// given instruction count.
func (m *CostModel) UnoptTime(instrs int) time.Duration {
	return m.UnoptBase + time.Duration(instrs)*m.UnoptPerInstr
}

// OptTime predicts the optimized compile time.
func (m *CostModel) OptTime(instrs int) time.Duration {
	d := m.OptBase + time.Duration(instrs)*m.OptPerInstr
	if m.OptCubic > 0 {
		n := float64(instrs)
		d += time.Duration(m.OptCubic * n * n * n * float64(time.Second))
	}
	return d
}

// NativeTime predicts the copy-and-patch assemble time.
func (m *CostModel) NativeTime(instrs int) time.Duration {
	return m.NativeBase + time.Duration(instrs)*m.NativePerInstr
}

// Speedup returns the modeled throughput of a tier relative to bytecode.
func (m *CostModel) Speedup(l Level) float64 {
	switch l {
	case LevelUnoptimized:
		return m.SpeedupUnopt
	case LevelOptimized:
		return m.SpeedupOpt
	case LevelNative:
		return m.SpeedupNative
	}
	return 1
}
