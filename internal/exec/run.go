package exec

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"aqe/internal/asm"
	"aqe/internal/codegen"
	"aqe/internal/expr"
	"aqe/internal/jit"
	"aqe/internal/rt"
	"aqe/internal/vector"
	"aqe/internal/vm"
)

// queryRun is the runtime state of one executing plan.
type queryRun struct {
	eng   *Engine
	cq    *codegen.Query
	mem   *rt.Memory
	qs    *rt.QueryState
	stats *Stats
	fp    Fingerprint

	// tenant is the identity the query was admitted under; the shared
	// pool grants its morsel workers by the tenant's fair-share weight.
	tenant string

	handles    []*Handle
	queryStart *vm.Program
	ctxs       []*rt.Ctx // per worker slot
	coord      *rt.Ctx

	trace *Trace

	// reopt is the replan budget shared across restart attempts, nil
	// when the query runs without a Replanner (replan.go).
	reopt *reoptState

	// cancelled is the preemption flag every morsel claim and finalize
	// partition checks: one cheap atomic load, so a cancel or deadline
	// lands within one morsel of work per executor.
	cancelled atomic.Bool

	failMu    sync.Mutex
	failed    error
	cancelErr error

	// Tier-6 counters, folded into Stats when the run finishes. They are
	// atomics on the run (not fields of Stats) because a background compile
	// can outlive the query: a late fallback may tick after the engine
	// snapshots Stats, and must not race with that copy.
	nativeCompiles  atomic.Int64
	nativeMorsels   atomic.Int64
	nativeFallbacks atomic.Int64

	// Engine-selection counters (same snapshot argument as above):
	// morsels dispatched to the vectorized engine and controller engine
	// switches (vectorized installs plus demotions back).
	vectorMorsels  atomic.Int64
	engineSwitches atomic.Int64
}

// cancel requests cooperative termination: workers stop claiming morsels,
// finalize stops claiming partitions, and in-flight background compiles
// abandon their slot. Idempotent; the first cause wins.
func (qr *queryRun) cancel(cause error) {
	if cause == nil {
		cause = context.Canceled
	}
	qr.failMu.Lock()
	if qr.cancelErr == nil {
		qr.cancelErr = cause
	}
	qr.failMu.Unlock()
	if qr.cancelled.CompareAndSwap(false, true) && qr.trace != nil {
		now := qr.trace.Since(time.Now())
		qr.trace.Add(Event{Kind: EvCancel, Pipeline: -1, Worker: -1,
			Label: "query", Start: now, End: now})
	}
}

// cancelCause returns the recorded cancellation cause.
func (qr *queryRun) cancelCause() error {
	qr.failMu.Lock()
	defer qr.failMu.Unlock()
	if qr.cancelErr != nil {
		return qr.cancelErr
	}
	return context.Canceled
}

// newQueryRun binds externs, translates all worker functions to bytecode
// (or adopts the cached translation on a fingerprint hit), performs
// up-front compilation for the static modes, and builds the runtime state
// the code generator's descriptors require. The trace (nil unless tracing)
// is created by the caller so its origin covers the admission wait.
func (e *Engine) newQueryRun(ctx context.Context, cq *codegen.Query, mem *rt.Memory, st *Stats, tr *Trace) (*queryRun, error) {
	qr := &queryRun{eng: e, cq: cq, mem: mem, stats: st, trace: tr}
	qr.fp = fingerprintOf(cq, e.opts.VM, e.opts.NoNative, e.opts.NoRegAlloc, e.opts.NoVector)
	st.Fingerprint = qr.fp.Short()

	var ent *cachedPlan
	if e.cache != nil {
		if ent = e.cache.lookup(qr.fp); ent != nil && len(ent.pipes) != len(cq.Pipelines) {
			ent = nil // fingerprint collision paranoia: treat as a miss
		}
	}
	if ent != nil {
		// Adopting the cached translation is a few map lookups, not
		// translation work: Stats.Translate stays zero so warm executions
		// (every prepared-statement EXECUTE after the first) report none.
		st.CacheHit = true
		qr.queryStart = ent.queryStart
		for i, pl := range cq.Pipelines {
			qr.handles = append(qr.handles, HandleFor(pl.Fn, ent.pipes[i].prog))
		}
	} else {
		tTr := time.Now()
		var progs []*vm.Program
		for _, pl := range cq.Pipelines {
			h, err := NewHandle(pl.Fn, e.opts.VM)
			if err != nil {
				return nil, err
			}
			qr.handles = append(qr.handles, h)
			progs = append(progs, h.Prog)
		}
		qsProg, err := vm.Translate(cq.QueryStart, e.opts.VM)
		if err != nil {
			return nil, err
		}
		qr.queryStart = qsProg
		if e.cache != nil {
			e.cache.insert(qr.fp, qsProg, progs)
		}
		st.Translate += time.Since(tTr)
	}
	for _, h := range qr.handles {
		h.UseIRInterp = e.opts.Mode == ModeIRInterp
		if h.Prog.RegFileBytes() > st.RegFileBytes {
			st.RegFileBytes = h.Prog.RegFileBytes()
		}
		st.FusedOps += h.Prog.Fused
	}

	// Pre-stage the vectorized kernel of every pipeline (adopting the
	// cached one on a fingerprint hit). Kernel construction is cheap — no
	// code generation, just shape validation and lookup tables — so it runs
	// up-front; installing a kernel is a per-pipeline decision of the mode
	// or the adaptive controller. Shapes the engine cannot execute with
	// bit-identical semantics latch the handle's vector-failed flag.
	if !e.opts.NoVector && e.opts.Mode != ModeIRInterp {
		for i, pl := range cq.Pipelines {
			var k *vector.Kernel
			if ent != nil {
				k = ent.pipes[i].vec
			}
			if k == nil {
				kk, kerr := vector.Compile(pl.Vec)
				if kerr == nil {
					k = kk
					if e.cache != nil {
						e.cache.addVector(qr.fp, i, kk)
					}
				}
			}
			if k != nil {
				qr.handles[i].SetVecKernel(k)
			} else {
				qr.handles[i].MarkVecFailed()
			}
		}
	}

	// Static compiled modes compile the whole module up-front,
	// single-threaded, before execution starts (§II-A) — this is the
	// latency the adaptive mode exists to avoid. A cache hit skips both
	// the compilation and its simulated latency: the artifact exists, so
	// there is nothing to wait for.
	if e.opts.Mode == ModeUnoptimized || e.opts.Mode == ModeOptimized || e.opts.Mode == ModeNative {
		tC := time.Now()
		level := jit.Unoptimized
		hl := LevelUnoptimized
		switch e.opts.Mode {
		case ModeOptimized:
			level, hl = jit.Optimized, LevelOptimized
		case ModeNative:
			level, hl = jit.Native, LevelNative
		}
		compiledAny := false
		for i, h := range qr.handles {
			lv, l := level, hl
			if lv == jit.Native && (!asm.Supported() || e.opts.NoNative) {
				// No backend on this platform (or tier disabled): the static
				// native mode degrades per-pipeline to the optimized closure
				// tier, silently — the query must still complete (§IV-E).
				h.MarkNativeFailed()
				qr.nativeFallbacks.Add(1)
				lv, l = jit.Optimized, LevelOptimized
			}
			c, fresh, cerr := qr.compiledFor(ent, i, h, lv)
			if cerr != nil {
				if lv != jit.Native {
					return nil, cerr
				}
				// Unsupported op or exec-memory failure for this one
				// function: degrade it to the optimized closure tier.
				h.MarkNativeFailed()
				qr.nativeFallbacks.Add(1)
				lv, l = jit.Optimized, LevelOptimized
				if c, fresh, cerr = qr.compiledFor(ent, i, h, lv); cerr != nil {
					return nil, cerr
				}
			}
			if fresh {
				compiledAny = true
				if lv == jit.Native {
					qr.nativeCompiles.Add(1)
				}
			}
			h.Install(c, l)
		}
		if e.opts.Cost.Simulate && compiledAny {
			d := qr.modelCompileTime(hl, st.Instrs, maxFnInstrs(cq))
			if !sleepCtx(ctx, d) {
				return nil, context.Cause(ctx)
			}
		}
		// Adopting cached closures costs nothing; only fresh compilation
		// counts, so warm runs report zero compile time.
		if compiledAny {
			st.Compile += time.Since(tC)
		}
		if qr.trace != nil {
			kind := EvCompile
			if e.opts.Mode == ModeNative {
				kind = EvNative
			}
			qr.trace.Add(Event{Kind: kind, Pipeline: -1, Worker: -1,
				Level: hl, Start: 0, End: qr.trace.Since(time.Now())})
		}
	}

	// ModeVector statically pins every pipeline with a vector kernel to
	// the vectorized engine; pipelines without one (unsupported shape, or
	// NoVector) fall back to the optimized closure tier so the query still
	// completes (§IV-E's degrade-don't-fail discipline, engine edition).
	if e.opts.Mode == ModeVector {
		tC := time.Now()
		freshAny := false
		for i, h := range qr.handles {
			if h.VecKernel() != nil && !h.VecFailed() {
				h.InstallVector()
				continue
			}
			c, fresh, cerr := qr.compiledFor(ent, i, h, jit.Optimized)
			if cerr != nil {
				return nil, cerr
			}
			if fresh {
				freshAny = true
			}
			h.Install(c, LevelOptimized)
		}
		if freshAny {
			st.Compile += time.Since(tC)
		}
	}

	// An adaptive query that hits the cache starts every pipeline in the
	// best tier any earlier execution reached — no re-climbing through
	// bytecode (the controller can still upgrade unoptimized pipelines).
	// Cached native code starts the pipeline in tier 6 immediately: the
	// assembled bytes are keyed by the plan fingerprint, so a warm run
	// pays no assemble latency at all.
	if e.opts.Mode == ModeAdaptive && ent != nil {
		for i, h := range qr.handles {
			if ent.pipes[i].vecBest && h.VecKernel() != nil && !h.VecFailed() {
				// The previous execution finished this pipeline in the
				// vectorized engine: start there. The controller still
				// monitors morsel rates and can demote mid-query.
				h.InstallVector()
			} else if c := ent.pipes[i].compiled[jit.Native]; c != nil && qr.nativeOK(h) {
				h.Install(c, LevelNative)
			} else if c := ent.pipes[i].compiled[jit.Optimized]; c != nil {
				h.Install(c, LevelOptimized)
			} else if c := ent.pipes[i].compiled[jit.Unoptimized]; c != nil {
				h.Install(c, LevelUnoptimized)
			}
		}
	}

	// Runtime state per the code generator's layout.
	qs := rt.NewQueryState(mem, e.opts.Workers, cq.StateBytes, cq.LocalBytes)
	for _, jd := range cq.Joins {
		qs.AddJoin(jd.TupleSize, jd.StateOff, jd.Filter)
	}
	for _, ad := range cq.Aggs {
		qs.AddAgg(ad.EntrySize, ad.Keys, ad.Aggs, ad.LocalOff, ad.Scalar)
	}
	for _, od := range cq.Outs {
		qs.AddOut(od.RowSize)
	}
	for _, p := range cq.Patterns {
		qs.AddPattern(p)
	}
	qs.Eng = qr
	qr.qs = qs

	names := make([]string, len(cq.Module.Externs))
	for i, ex := range cq.Module.Externs {
		names[i] = ex.Name
	}
	funcs, err := e.reg.Bind(names)
	if err != nil {
		return nil, err
	}
	for w := 0; w < e.opts.Workers; w++ {
		qr.ctxs = append(qr.ctxs, &rt.Ctx{Mem: mem, Funcs: funcs, Worker: w, Query: qs})
	}
	qr.coord = &rt.Ctx{Mem: mem, Funcs: funcs, Worker: 0, Query: qs}
	return qr, nil
}

// compiledFor returns the compiled variant of pipeline i at the given
// tier, reusing the cached artifact when present; fresh reports whether a
// compilation actually ran (and was published to the cache).
func (qr *queryRun) compiledFor(ent *cachedPlan, i int, h *Handle, level jit.Level) (c *jit.Compiled, fresh bool, err error) {
	if ent != nil {
		if c := ent.pipes[i].compiled[level]; c != nil {
			return c, false, nil
		}
	}
	if c, err = jit.CompileOpts(h.Fn, level, h.Prog, qr.jitOpts()); err != nil {
		return nil, false, err
	}
	if qr.eng.cache != nil {
		qr.eng.cache.addCompiled(qr.fp, i, level, c)
	}
	return c, true, nil
}

// nativeOK reports whether the native tier may be proposed for h: the
// platform has a backend, the tier is not disabled, and no earlier native
// compilation of this function has failed.
func (qr *queryRun) nativeOK(h *Handle) bool {
	return asm.Supported() && !qr.eng.opts.NoNative && !h.NativeFailed()
}

// jitOpts returns the backend options every compilation of this query
// uses (the fingerprint carries them, so cached artifacts match).
func (qr *queryRun) jitOpts() jit.Options {
	return jit.Options{NoRegAlloc: qr.eng.opts.NoRegAlloc}
}

// modelCompileTime returns the simulated whole-module compile latency.
func (qr *queryRun) modelCompileTime(l Level, moduleInstrs, maxFn int) time.Duration {
	m := qr.eng.opts.Cost
	if l == LevelNative {
		return m.NativeBase + time.Duration(moduleInstrs)*m.NativePerInstr
	}
	if l == LevelOptimized {
		// Linear in the module, super-linear in the largest function.
		d := m.OptBase + time.Duration(moduleInstrs)*m.OptPerInstr
		if m.OptCubic > 0 {
			n := float64(maxFn)
			d += time.Duration(m.OptCubic * n * n * n * float64(time.Second))
		}
		return d
	}
	return m.UnoptBase + time.Duration(moduleInstrs)*m.UnoptPerInstr
}

// sleepCtx sleeps d unless ctx is cancelled first; it reports whether the
// full duration elapsed. Simulated compile latencies can reach hundreds of
// milliseconds, so a deadline must be able to interrupt them.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if ctx == nil || ctx.Done() == nil {
		time.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// sleepUnlessCancelled is the background-compile variant of sleepCtx: it
// polls the query's cancellation flag so a cancelled query frees its
// compile-pool slot within a few milliseconds.
func (qr *queryRun) sleepUnlessCancelled(d time.Duration) bool {
	const step = 2 * time.Millisecond
	for d > 0 {
		if qr.cancelled.Load() {
			return false
		}
		s := d
		if s > step {
			s = step
		}
		time.Sleep(s)
		d -= s
	}
	return !qr.cancelled.Load()
}

func maxFnInstrs(cq *codegen.Query) int {
	max := 0
	for _, f := range cq.Module.Funcs {
		if n := f.NumInstrs(); n > max {
			max = n
		}
	}
	return max
}

// execute interprets queryStart (which triggers the pipelines through the
// pipeline_run extern) and decodes the result rows.
func (qr *queryRun) execute() ([][]expr.Datum, error) {
	args := []uint64{qr.qs.StateAddr, qr.qs.Locals[0], 0, 0}
	err := rt.CatchTrap(func() {
		qr.queryStart.Run(qr.coord, args)
	})
	qr.coord.ResetRegs()
	// A recorded failure wins over the trap that unwound queryStart: the
	// trap is only the unwind vehicle (worker traps re-panic themselves;
	// cancellation unwinds with a TrapUser whose cause is in failed).
	qr.failMu.Lock()
	if qr.failed != nil {
		err = qr.failed
	}
	qr.failMu.Unlock()
	if err != nil {
		return nil, err
	}
	return qr.decodeOutput(), nil
}

func (qr *queryRun) fail(err error) {
	qr.failMu.Lock()
	if qr.failed == nil {
		qr.failed = err
	}
	qr.failMu.Unlock()
}

// decodeOutput reads the final pipeline's output buffers.
func (qr *queryRun) decodeOutput() [][]expr.Datum {
	d := qr.cq.Output
	out := qr.qs.Outs[0]
	rows := make([][]expr.Datum, 0, out.Rows())
	out.Each(func(addr rt.Addr) {
		row := make([]expr.Datum, len(d.Cols))
		for i, c := range d.Cols {
			switch c.T.Kind {
			case expr.KFloat:
				row[i] = expr.Datum{F: math.Float64frombits(qr.mem.Load64(addr + rt.Addr(c.Off)))}
			case expr.KString:
				sa := qr.mem.Load64(addr + rt.Addr(c.Off))
				sl := qr.mem.Load64(addr + rt.Addr(c.Off) + 8)
				row[i] = expr.Datum{S: string(qr.mem.Bytes(sa, int(sl)))}
			default:
				row[i] = expr.Datum{I: int64(qr.mem.Load64(addr + rt.Addr(c.Off)))}
			}
		}
		rows = append(rows, row)
	})
	return rows
}

// progress tracks one pipeline run: the work-claiming cursor with
// dynamically growing morsels, per-worker processing rates, and the
// single-evaluator gate of the controller (§III-C).
type progress struct {
	total   int64
	work    int64 // total minus zone-map-pruned tuples
	cursor  atomic.Int64
	done    atomic.Int64
	claims  atomic.Int64
	base    int64
	cap     int64
	grow    int64
	started time.Time

	// Zone-map pruning (nil when the scan has no prunable blocks): the
	// dispatcher never hands out a morsel intersecting a pruned block.
	pruned    []bool
	blockRows int64

	rates    []atomic.Uint64 // per worker slot: float64 bits, tuples/sec
	evalGate atomic.Bool

	// Demotion bookkeeping: the measured rate (float64 bits) and tier just
	// before native code was installed, and how many controller
	// evaluations have run since. After a short warmup, the controller
	// compares the native rate against the rate the cost model predicted
	// from the pre-native measurement and demotes the pipeline out of
	// native when it badly underperforms (run-time misprediction, §III-C).
	preNativeRate atomic.Uint64
	preNativeLvl  atomic.Int32
	nativeEvals   atomic.Int32

	// Engine-demotion bookkeeping, mirroring the native fields: the rate
	// and tier just before the vectorized engine was installed, and the
	// evaluations since. The same promote-then-verify discipline applies
	// to engine selection: observed morsel rates arbitrate, and a
	// vectorized pipeline badly underperforming its prediction is demoted
	// back to the compiled tier it left.
	preVecRate atomic.Uint64
	preVecLvl  atomic.Int32
	vecEvals   atomic.Int32

	// executing counts pool workers currently inside a morsel of this
	// pipeline — the query's *granted* parallelism. Under concurrent load
	// a query holds only a fraction of the machine, so the controller's
	// extrapolation must use this, not the configured worker count.
	executing atomic.Int32
}

func newProgress(total int64, workers int, o Options) *progress {
	return &progress{
		total: total, work: total, started: time.Now(),
		base: o.MorselSize, cap: o.MorselCap, grow: o.MorselGrowEvery,
		rates: make([]atomic.Uint64, workers),
	}
}

// setPruneMask installs a zone-map mask before workers start; pruned
// tuples leave the remaining work the controller extrapolates over.
func (pr *progress) setPruneMask(pm *pruneMask) {
	pr.pruned = pm.pruned
	pr.blockRows = pm.blockRows
	pr.work = pr.total - pm.prunedTuples
}

// morselSize returns the next morsel's size. Morsels grow geometrically
// (×2 every grow-cadence claims, capped): small morsels early give the
// controller dense rate samples; large morsels later amortize dispatch
// (§III-A).
func (pr *progress) morselSize() int64 {
	n := pr.claims.Add(1) - 1
	size := pr.base << uint(minI64(n/pr.grow, 30))
	if size > pr.cap || size <= 0 {
		size = pr.cap
	}
	return size
}

// claim returns the next morsel. Without a prune mask the cursor is a
// plain fetch-and-add; with one, a CAS loop skips runs of pruned blocks
// and clips morsels at the next pruned boundary, so pruned tuples are
// never dispatched (and never counted as processed work).
func (pr *progress) claim() (int64, int64, bool) {
	size := pr.morselSize()
	if pr.pruned == nil {
		begin := pr.cursor.Add(size) - size
		if begin >= pr.total {
			return 0, 0, false
		}
		end := begin + size
		if end > pr.total {
			end = pr.total
		}
		return begin, end, true
	}
	for {
		begin := pr.cursor.Load()
		if begin >= pr.total {
			return 0, 0, false
		}
		b := begin / pr.blockRows
		if pr.pruned[b] {
			for int(b) < len(pr.pruned) && pr.pruned[b] {
				b++
			}
			skip := b * pr.blockRows
			if skip > pr.total {
				skip = pr.total
			}
			pr.cursor.CompareAndSwap(begin, skip)
			continue
		}
		end := begin + size
		if end > pr.total {
			end = pr.total
		}
		for nb := b + 1; nb*pr.blockRows < end; nb++ {
			if pr.pruned[nb] {
				end = nb * pr.blockRows
				break
			}
		}
		if pr.cursor.CompareAndSwap(begin, end) {
			return begin, end, true
		}
	}
}

// abort drains all remaining morsels (on failure).
func (pr *progress) abort() { pr.cursor.Store(pr.total) }

// report records a finished morsel and the worker's local rate.
func (pr *progress) report(w int, tuples int64, d time.Duration) {
	pr.done.Add(tuples)
	if d > 0 {
		rate := float64(tuples) / d.Seconds()
		pr.rates[w].Store(math.Float64bits(rate))
	}
}

// avgRate averages the workers' most recent rates (Fig. 7's r0).
func (pr *progress) avgRate() float64 {
	sum, n := 0.0, 0
	for i := range pr.rates {
		if bits := pr.rates[i].Load(); bits != 0 {
			sum += math.Float64frombits(bits)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// resetRates clears the samples after a mode switch so the next
// extrapolation measures the new tier (§III-C).
func (pr *progress) resetRates() {
	for i := range pr.rates {
		pr.rates[i].Store(0)
	}
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// runPipeline executes one pipeline across all workers and finalizes its
// sink. It runs on the coordinator goroutine, called from the interpreted
// queryStart through the pipeline_run extern.
func (qr *queryRun) runPipeline(id int) {
	pl := qr.cq.Pipelines[id]
	h := qr.handles[id]
	if qr.trace != nil && pl.DictRewrites > 0 {
		now := qr.trace.Since(time.Now())
		qr.trace.Add(Event{Kind: EvDictRewrite, Pipeline: pl.ID, Label: pl.Label,
			Worker: -1, Start: now, End: now, Tuples: int64(pl.DictRewrites)})
	}
	total := qr.sourceTotal(pl)
	if total > 0 && !qr.cancelled.Load() {
		pr := newProgress(total, qr.eng.opts.Workers, qr.eng.opts)
		if len(pl.Prune) > 0 && !qr.eng.opts.NoZoneMaps {
			qr.applyZoneMaps(pl, pr, total)
		}
		// The engine's shared pool executes the morsels; this coordinator
		// blocks until the pipeline drains. Under concurrent load the pool
		// interleaves this pipeline's morsels with every other in-flight
		// query's at morsel granularity.
		qr.eng.sched.RunTenant(newPipelineJob(qr, pl, h, pr), qr.tenant)
	}
	qr.checkFailed()
	// Finalize the sink between pipelines. By default the breaker work
	// (join chain linking, aggregation merge) is hash-range partitioned
	// across the worker pool; Options.SerialFinalize retains the
	// single-threaded barrier for comparison.
	if pl.SinkJoin >= 0 {
		ht := qr.qs.Joins[pl.SinkJoin]
		t0 := time.Now()
		parts := 1
		if qr.eng.opts.SerialFinalize {
			ht.Finalize(qr.qs.StateAddr)
		} else {
			parts = ht.FinalizeParallel(qr.qs.StateAddr, qr.breakerParts(), qr.pfor)
		}
		qr.noteFinalize(pl, time.Since(t0), t0, parts, int64(ht.Count))
		// The breaker is the natural observation point of adaptive join
		// ordering: the build ran to completion, so its hash-table count
		// is the relation's true filtered cardinality (replan.go).
		qr.observeBuild(pl, int64(ht.Count))
	}
	if pl.SinkAgg >= 0 {
		set := qr.qs.Aggs[pl.SinkAgg]
		t0 := time.Now()
		parts := 1
		if qr.eng.opts.SerialFinalize {
			set.Finalize()
		} else {
			parts = set.FinalizeParallel(qr.breakerParts(), qr.pfor)
		}
		d := qr.cq.Aggs[pl.SinkAgg]
		qr.mem.Store64(qr.qs.StateAddr+rt.Addr(d.IndexStateOff), set.IndexAddr)
		qr.noteFinalize(pl, time.Since(t0), t0, parts, int64(set.Groups))
	}
	// A cancel that landed during finalize left the breaker half-built;
	// unwind before any later pipeline can read it.
	qr.checkFailed()
}

// checkFailed unwinds the interpreted queryStart if the query failed or
// was cancelled; execute() reports qr.failed as the query error.
func (qr *queryRun) checkFailed() {
	if qr.cancelled.Load() {
		qr.fail(qr.cancelCause())
	}
	qr.failMu.Lock()
	failed := qr.failed
	qr.failMu.Unlock()
	if failed != nil {
		// Unwind the interpreted queryStart; execute() reports qr.failed.
		if t, ok := failed.(*rt.Trap); ok {
			panic(t)
		}
		panic(&rt.Trap{Code: rt.TrapUser})
	}
}

// applyZoneMaps builds the prune mask for a scan pipeline from the
// table's zone maps and installs it on the progress tracker, accounting
// the skipped blocks/tuples in Stats and the trace. Runs on the
// coordinator before any worker claims a morsel.
func (qr *queryRun) applyZoneMaps(pl *codegen.Pipeline, pr *progress, total int64) {
	t0 := time.Now()
	pm := buildPruneMask(pl.Table, pl.Prune)
	d := time.Since(t0)
	qr.stats.PruneTime += d
	qr.stats.PrunableTuples += total
	if pm == nil {
		return
	}
	pr.setPruneMask(pm)
	qr.stats.BlocksPruned += pm.prunedBlocks
	qr.stats.TuplesPruned += pm.prunedTuples
	qr.stats.StringBlocksPruned += pm.prunedStrBlocks
	if qr.trace != nil {
		qr.trace.Add(Event{Kind: EvPrune, Pipeline: pl.ID, Label: pl.Label,
			Worker: -1, Start: qr.trace.Since(t0), End: qr.trace.Since(t0) + d,
			Tuples: pm.prunedTuples, Parts: int(pm.prunedBlocks)})
	}
}

// noteFinalize accounts one breaker finalization in Stats and the trace.
func (qr *queryRun) noteFinalize(pl *codegen.Pipeline, d time.Duration, t0 time.Time, parts int, tuples int64) {
	qr.stats.Finalize += d
	qr.stats.Finalizes++
	if qr.trace != nil {
		qr.trace.Add(Event{Kind: EvFinalize, Pipeline: pl.ID, Label: pl.Label,
			Worker: -1, Start: qr.trace.Since(t0), End: qr.trace.Since(t0) + d,
			Tuples: tuples, Parts: parts})
	}
}

// breakerParts returns the partition count for parallel finalization:
// Options.Workers capped by the CPUs actually available and the shared
// pool. Every partition re-scans all build arenas (that is what makes the
// writes disjoint), so partitions beyond real parallelism are pure extra
// scan work.
func (qr *queryRun) breakerParts() int {
	parts := qr.eng.opts.Workers
	if n := runtime.GOMAXPROCS(0); parts > n {
		parts = n
	}
	if n := qr.eng.sched.PoolSize(); parts > n {
		parts = n
	}
	return parts
}

// pfor is the rt.ParallelFor executor backing partitioned finalization: it
// spreads fn(0..n-1) over the engine's shared worker pool, one partition
// per scheduler grant, so breaker finalization interleaves fairly with
// other queries' morsels and observes cancellation between partitions. A
// Trap thrown by a task (aggregate Combine can overflow) is caught on the
// pool worker and re-thrown on the caller, so breaker traps surface
// exactly like serial-finalize traps.
func (qr *queryRun) pfor(n int, fn func(p int)) {
	workers := qr.eng.opts.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for p := 0; p < n; p++ {
			if qr.cancelled.Load() {
				return
			}
			fn(p)
		}
		return
	}
	j := &pforJob{qr: qr, n: n, slots: workers, fn: fn}
	qr.eng.sched.RunTenant(j, qr.tenant)
	if t := j.trapped.Load(); t != nil {
		panic(t)
	}
}

// pforJob adapts a partitioned finalization to the scheduler; each RunSlot
// claims and runs one partition.
type pforJob struct {
	qr      *queryRun
	n       int
	slots   int
	fn      func(p int)
	next    atomic.Int64
	trapped atomic.Pointer[rt.Trap]
}

func (j *pforJob) Slots() int { return j.slots }

func (j *pforJob) RunSlot(int) bool {
	if j.qr.cancelled.Load() || j.trapped.Load() != nil {
		return false
	}
	p := int(j.next.Add(1) - 1)
	if p >= j.n {
		return false
	}
	if err := rt.CatchTrap(func() { j.fn(p) }); err != nil {
		j.trapped.CompareAndSwap(nil, err.(*rt.Trap))
		return false
	}
	return true
}

// sourceTotal returns the number of source tuples of a pipeline — always
// known when the pipeline starts (§III-A).
func (qr *queryRun) sourceTotal(pl *codegen.Pipeline) int64 {
	if pl.Table != nil {
		return int64(pl.Table.Rows())
	}
	return int64(qr.qs.Aggs[pl.AggSource].Groups)
}

// pipelineJob adapts one pipeline run to the scheduler: each RunSlot call
// claims and executes exactly one morsel in an exclusively leased worker
// slot (Fig. 5's dispatch code), records progress, and — in adaptive
// mode — runs the controller. Returning after every morsel is what gives
// the scheduler its morsel-granular fairness and cancellation.
type pipelineJob struct {
	qr   *queryRun
	pl   *codegen.Pipeline
	h    *Handle
	pr   *progress
	args [][]uint64 // per slot, reused across morsels
}

func newPipelineJob(qr *queryRun, pl *codegen.Pipeline, h *Handle, pr *progress) *pipelineJob {
	j := &pipelineJob{qr: qr, pl: pl, h: h, pr: pr}
	for w := 0; w < qr.eng.opts.Workers; w++ {
		j.args = append(j.args, []uint64{qr.qs.StateAddr, qr.qs.Locals[w], 0, 0})
	}
	return j
}

// Slots grants the query at most Options.Workers concurrent executors —
// its share of the pool, matching its per-slot local arenas.
func (j *pipelineJob) Slots() int { return len(j.args) }

// RunSlot executes one morsel. The preemption point is the cancellation
// check before the claim: a cancel lands within one in-flight morsel per
// executor, never mid-pipeline-scan.
func (j *pipelineJob) RunSlot(slot int) bool {
	qr := j.qr
	if qr.cancelled.Load() {
		return false
	}
	begin, end, ok := j.pr.claim()
	if !ok {
		return false
	}
	ctx := qr.ctxs[slot]
	args := j.args[slot]
	args[2], args[3] = uint64(begin), uint64(end)
	lvl := j.h.Level()
	j.pr.executing.Add(1)
	t0 := time.Now()
	err := rt.CatchTrap(func() { j.h.Dispatch(ctx, args) })
	d := time.Since(t0)
	j.pr.executing.Add(-1)
	if err != nil {
		ctx.ResetRegs()
		qr.fail(err)
		j.pr.abort()
		return false
	}
	j.pr.report(slot, end-begin, d)
	if lvl == LevelNative {
		qr.nativeMorsels.Add(1)
	}
	if lvl == LevelVector {
		qr.vectorMorsels.Add(1)
	}
	if qr.trace != nil {
		qr.trace.Add(Event{Kind: EvMorsel, Pipeline: j.pl.ID, Label: j.pl.Label,
			Worker: slot, Level: lvl, Start: qr.trace.Since(t0),
			End: qr.trace.Since(t0) + d, Tuples: end - begin})
	}
	if qr.eng.morselHook != nil {
		qr.eng.morselHook(j.pl.ID, j.h, slot)
	}
	if qr.eng.opts.Mode == ModeAdaptive {
		qr.evaluate(j.pl, j.h, j.pr)
	}
	return true
}

// evaluate implements Fig. 7: extrapolate the remaining pipeline duration
// under each execution mode and launch a background compilation when a
// faster mode wins. Only one worker evaluates at a time, the first
// evaluation is delayed by 1 ms, and an in-flight compilation suppresses
// further evaluation.
func (qr *queryRun) evaluate(pl *codegen.Pipeline, h *Handle, pr *progress) {
	if !pr.evalGate.CompareAndSwap(false, true) {
		return
	}
	defer pr.evalGate.Store(false)
	ceiling := LevelOptimized
	if qr.nativeOK(h) {
		ceiling = LevelNative
	}
	if h.Compiling() {
		return
	}
	if h.Level() == LevelVector {
		qr.maybeDemoteVector(pl, h, pr)
		return
	}
	if h.Level() == LevelNative {
		qr.maybeDemote(pl, h, pr)
		if h.Compiling() {
			return
		}
		// Tier 6 is the closure family's ceiling, but the engine dimension
		// stays open: the vectorized candidate below may still beat native
		// on hash-dense pipelines.
	}
	canVec := qr.vectorOK(h)
	if h.Level() >= ceiling && !canVec {
		return
	}
	if time.Since(pr.started) < time.Millisecond {
		return
	}
	r0 := pr.avgRate()
	if r0 <= 0 {
		return
	}
	m := qr.eng.opts.Cost
	// Remaining work excludes zone-map-pruned tuples: they are never
	// dispatched, so extrapolating over them would overstate the payoff
	// of compiling (§III-C). The parallelism term is the *granted* worker
	// count — under concurrent load the scheduler may lease this query
	// only a fraction of the machine, and extrapolating over workers it
	// does not hold would understate every mode's remaining duration
	// equally but overstate the compile thread's opportunity cost.
	n := float64(pr.work - pr.done.Load())
	w := float64(pr.executing.Load())
	if w < 1 {
		w = 1
	}
	cur := h.Level()
	curSpeed := m.Speedup(cur)

	// t0: stay in the current mode.
	t0 := n / r0 / w
	best := cur
	bestT := t0

	consider := func(l Level, compile time.Duration) {
		if l <= cur {
			return
		}
		c := compile.Seconds()
		r := r0 / curSpeed * m.Speedup(l)
		// While one thread compiles, the remaining w-1 continue at r0.
		rem := n - (w-1)*r0*c
		if rem < 0 {
			rem = 0
		}
		t := c + rem/r/w
		if t < bestT {
			bestT = t
			best = l
		}
	}
	consider(LevelUnoptimized, m.UnoptTime(h.Instrs))
	consider(LevelOptimized, m.OptTime(h.Instrs))
	if qr.nativeOK(h) {
		consider(LevelNative, m.NativeTime(h.Instrs))
	}

	if canVec {
		vecSpeed := m.SpeedupVecCompute
		if pl.Vec != nil && pl.Vec.HashDense {
			vecSpeed = m.SpeedupVecHash
		}
		// The kernel is pre-staged: installing it costs no compile time, so
		// the engine candidate is a pure throughput comparison.
		r := r0 / curSpeed * vecSpeed
		if t := n / r / w; t < bestT {
			bestT = t
			best = LevelVector
		}
	}

	if best == cur {
		return
	}
	if !h.BeginCompile() {
		return
	}
	if best == LevelVector {
		// Engine switch: publish the kernel right here — there is nothing
		// to compile. Record the demotion baseline first, same discipline
		// as native promotion.
		pr.preVecRate.Store(math.Float64bits(r0))
		pr.preVecLvl.Store(int32(cur))
		pr.vecEvals.Store(0)
		h.InstallVector()
		qr.engineSwitches.Add(1)
		pr.resetRates()
		if qr.trace != nil {
			now := qr.trace.Since(time.Now())
			qr.trace.Add(Event{Kind: EvEngine, Pipeline: pl.ID, Label: pl.Label,
				Worker: -1, Level: LevelVector, Start: now, End: now})
		}
		return
	}
	qr.stats.Compilations++
	qr.eng.pool.submit(func() { qr.compileTask(pl, h, pr, best) })
}

// vectorOK reports whether the vectorized engine may be proposed for h:
// the tier is enabled, the pipeline compiled to a kernel, and no earlier
// demotion latched the engine off.
func (qr *queryRun) vectorOK(h *Handle) bool {
	return !qr.eng.opts.NoVector && !h.VecFailed() && h.VecKernel() != nil
}

// vecDemoteWarmup is the number of post-install controller evaluations
// before the engine-demotion check engages (mirrors demoteWarmup).
const vecDemoteWarmup = 3

// maybeDemoteVector checks a vectorized pipeline against the rate the
// cost model promised when the controller switched engines. The rate
// measured just before the switch, scaled by the modeled speedup ratio,
// is the prediction; the engine delivering under demoteMargin of it is a
// misprediction (e.g. a selective filter chain where batching evaluates
// lanes compiled code would have skipped). The controller then flips the
// pipeline back to the compiled tier it left — the variant is still on
// the handle, so demotion costs nothing — and latches the engine off for
// this pipeline. Runs under the evaluation gate.
func (qr *queryRun) maybeDemoteVector(pl *codegen.Pipeline, h *Handle, pr *progress) {
	bits := pr.preVecRate.Load()
	if bits == 0 {
		return // static ModeVector: no baseline, no demotion
	}
	if pr.vecEvals.Add(1) < vecDemoteWarmup {
		return
	}
	r0 := pr.avgRate()
	if r0 <= 0 {
		return
	}
	m := qr.eng.opts.Cost
	prev := Level(pr.preVecLvl.Load())
	vecSpeed := m.SpeedupVecCompute
	if pl.Vec != nil && pl.Vec.HashDense {
		vecSpeed = m.SpeedupVecHash
	}
	predicted := math.Float64frombits(bits) / m.Speedup(prev) * vecSpeed
	if r0 >= predicted*demoteMargin {
		return
	}
	if !h.BeginCompile() {
		return
	}
	pr.preVecRate.Store(0)
	h.DemoteVector(prev)
	qr.engineSwitches.Add(1)
	pr.resetRates()
	if qr.trace != nil {
		now := qr.trace.Since(time.Now())
		qr.trace.Add(Event{Kind: EvEngine, Pipeline: pl.ID, Label: pl.Label,
			Worker: -1, Level: prev, Start: now, End: now})
	}
}

// demoteMargin is the fraction of the predicted native rate the measured
// native rate must reach; below it the controller demotes out of native.
const demoteMargin = 0.5

// demoteWarmup is the number of post-install controller evaluations (one
// per finished morsel) before the demotion check engages, so the
// comparison sees settled rate samples, not the first morsel's cold code.
const demoteWarmup = 3

// maybeDemote checks a native pipeline against the rate the cost model
// promised when the controller chose tier 6. The rate measured just
// before native code was installed, scaled by the modeled speedup ratio,
// is the prediction; native code delivering under demoteMargin of it is a
// misprediction (e.g. an exit-heavy pipeline bouncing between machine
// code and Go on every tuple). The controller then demotes the pipeline
// to optimized closures, latches the native failure so tier 6 is not
// re-proposed for this function, and counts the demotion in
// Stats.NativeFallbacks. Runs under the evaluation gate.
func (qr *queryRun) maybeDemote(pl *codegen.Pipeline, h *Handle, pr *progress) {
	bits := pr.preNativeRate.Load()
	if bits == 0 {
		return // native came from the cache or a static mode: no baseline
	}
	if pr.nativeEvals.Add(1) < demoteWarmup {
		return
	}
	r0 := pr.avgRate()
	if r0 <= 0 {
		return
	}
	m := qr.eng.opts.Cost
	prev := Level(pr.preNativeLvl.Load())
	predicted := math.Float64frombits(bits) / m.Speedup(prev) * m.SpeedupNative
	if r0 >= predicted*demoteMargin {
		return
	}
	if !h.BeginCompile() {
		return
	}
	pr.preNativeRate.Store(0)
	qr.eng.pool.submit(func() { qr.demoteTask(pl, h, pr) })
}

// demoteTask installs the optimized closure variant in place of
// underperforming native code. Mid-morsel safety is the same
// variant-swap argument as promotion: in-flight morsels finish in native
// code against the same runtime state, later claims dispatch the closure
// (§IV-E).
func (qr *queryRun) demoteTask(pl *codegen.Pipeline, h *Handle, pr *progress) {
	if qr.cancelled.Load() {
		h.AbortCompile()
		return
	}
	t0 := time.Now()
	c, err := jit.CompileOpts(h.Fn, jit.Optimized, h.Prog, qr.jitOpts())
	if err != nil {
		h.AbortCompile()
		qr.fail(fmt.Errorf("exec: demotion compile of %s: %w", h.Fn.Name, err))
		pr.abort()
		return
	}
	h.MarkNativeFailed()
	qr.nativeFallbacks.Add(1)
	h.Install(c, LevelOptimized)
	if qr.eng.cache != nil {
		qr.eng.cache.addCompiled(qr.fp, pl.ID, jit.Optimized, c)
	}
	pr.resetRates()
	if qr.trace != nil {
		now := time.Now()
		// An EvNative event whose Level is not LevelNative is a demotion
		// (aqetrace renders it as such).
		qr.trace.Add(Event{Kind: EvNative, Pipeline: pl.ID, Label: pl.Label,
			Worker: -1, Level: LevelOptimized, Start: qr.trace.Since(t0),
			End: qr.trace.Since(now)})
	}
}

// compileTask runs on a shared compile-pool worker: it (optionally) sleeps
// the modeled LLVM-scale latency, really compiles the function, installs
// the variant, publishes it to the cache, and resets the rate samples.
func (qr *queryRun) compileTask(pl *codegen.Pipeline, h *Handle, pr *progress, l Level) {
	if qr.cancelled.Load() {
		h.AbortCompile()
		return
	}
	t0 := time.Now()
	m := qr.eng.opts.Cost
	if m.Simulate {
		var d time.Duration
		switch l {
		case LevelNative:
			d = m.NativeTime(h.Instrs)
		case LevelOptimized:
			d = m.OptTime(h.Instrs)
		default:
			d = m.UnoptTime(h.Instrs)
		}
		if !qr.sleepUnlessCancelled(d) {
			h.AbortCompile()
			return
		}
	}
	level := jit.Unoptimized
	switch l {
	case LevelOptimized:
		level = jit.Optimized
	case LevelNative:
		level = jit.Native
	}
	c, err := jit.CompileOpts(h.Fn, level, h.Prog, qr.jitOpts())
	if err != nil && l == LevelNative {
		// Native assembly failed (unsupported op, exec-memory exhaustion):
		// degrade this function to the optimized closure tier and latch the
		// failure so the controller stops proposing tier 6 for it. The
		// query keeps running either way (§IV-E).
		h.MarkNativeFailed()
		qr.nativeFallbacks.Add(1)
		l, level = LevelOptimized, jit.Optimized
		c, err = jit.CompileOpts(h.Fn, level, h.Prog, qr.jitOpts())
	}
	if err != nil {
		h.AbortCompile()
		qr.fail(fmt.Errorf("exec: background compile of %s: %w", h.Fn.Name, err))
		pr.abort()
		return
	}
	if l == LevelNative {
		qr.nativeCompiles.Add(1)
		// Record the demotion baseline: the rate samples still measure the
		// tier native is about to replace.
		pr.preNativeRate.Store(math.Float64bits(pr.avgRate()))
		pr.preNativeLvl.Store(int32(h.Level()))
		pr.nativeEvals.Store(0)
	}
	h.Install(c, l)
	if qr.eng.cache != nil {
		qr.eng.cache.addCompiled(qr.fp, pl.ID, level, c)
	}
	pr.resetRates()
	if qr.trace != nil {
		now := time.Now()
		kind := EvCompile
		if l == LevelNative {
			kind = EvNative
		}
		qr.trace.Add(Event{Kind: kind, Pipeline: pl.ID, Label: pl.Label,
			Worker: -1, Level: l, Start: qr.trace.Since(t0), End: qr.trace.Since(now)})
	}
}
