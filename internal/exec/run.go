package exec

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"aqe/internal/codegen"
	"aqe/internal/expr"
	"aqe/internal/jit"
	"aqe/internal/rt"
	"aqe/internal/vm"
)

// queryRun is the runtime state of one executing plan.
type queryRun struct {
	eng   *Engine
	cq    *codegen.Query
	mem   *rt.Memory
	qs    *rt.QueryState
	stats *Stats
	fp    Fingerprint

	handles    []*Handle
	queryStart *vm.Program
	ctxs       []*rt.Ctx // per worker
	coord      *rt.Ctx

	trace *Trace

	failMu sync.Mutex
	failed error
}

// newQueryRun binds externs, translates all worker functions to bytecode
// (or adopts the cached translation on a fingerprint hit), performs
// up-front compilation for the static modes, and builds the runtime state
// the code generator's descriptors require.
func (e *Engine) newQueryRun(cq *codegen.Query, mem *rt.Memory, st *Stats) (*queryRun, error) {
	qr := &queryRun{eng: e, cq: cq, mem: mem, stats: st}
	if e.opts.Trace {
		qr.trace = NewTrace()
	}
	qr.fp = fingerprintOf(cq, e.opts.VM)
	st.Fingerprint = qr.fp.Short()

	tTr := time.Now()
	var ent *cachedPlan
	if e.cache != nil {
		if ent = e.cache.lookup(qr.fp); ent != nil && len(ent.pipes) != len(cq.Pipelines) {
			ent = nil // fingerprint collision paranoia: treat as a miss
		}
	}
	if ent != nil {
		st.CacheHit = true
		qr.queryStart = ent.queryStart
		for i, pl := range cq.Pipelines {
			qr.handles = append(qr.handles, HandleFor(pl.Fn, ent.pipes[i].prog))
		}
	} else {
		var progs []*vm.Program
		for _, pl := range cq.Pipelines {
			h, err := NewHandle(pl.Fn, e.opts.VM)
			if err != nil {
				return nil, err
			}
			qr.handles = append(qr.handles, h)
			progs = append(progs, h.Prog)
		}
		qsProg, err := vm.Translate(cq.QueryStart, e.opts.VM)
		if err != nil {
			return nil, err
		}
		qr.queryStart = qsProg
		if e.cache != nil {
			e.cache.insert(qr.fp, qsProg, progs)
		}
	}
	for _, h := range qr.handles {
		h.UseIRInterp = e.opts.Mode == ModeIRInterp
		if h.Prog.RegFileBytes() > st.RegFileBytes {
			st.RegFileBytes = h.Prog.RegFileBytes()
		}
		st.FusedOps += h.Prog.Fused
	}
	st.Translate = time.Since(tTr)

	// Static compiled modes compile the whole module up-front,
	// single-threaded, before execution starts (§II-A) — this is the
	// latency the adaptive mode exists to avoid. A cache hit skips both
	// the compilation and its simulated latency: the artifact exists, so
	// there is nothing to wait for.
	if e.opts.Mode == ModeUnoptimized || e.opts.Mode == ModeOptimized {
		tC := time.Now()
		level := jit.Unoptimized
		hl := LevelUnoptimized
		if e.opts.Mode == ModeOptimized {
			level = jit.Optimized
			hl = LevelOptimized
		}
		compiledAny := false
		for i, h := range qr.handles {
			var c *jit.Compiled
			if ent != nil {
				c = ent.pipes[i].compiled[level]
			}
			if c == nil {
				var cerr error
				c, cerr = jit.Compile(h.Fn, level, h.Prog)
				if cerr != nil {
					return nil, cerr
				}
				compiledAny = true
				if e.cache != nil {
					e.cache.addCompiled(qr.fp, i, level, c)
				}
			}
			h.Install(c, hl)
		}
		if e.opts.Cost.Simulate && compiledAny {
			d := qr.modelCompileTime(hl, st.Instrs, maxFnInstrs(cq))
			time.Sleep(d)
		}
		st.Compile = time.Since(tC)
		if qr.trace != nil {
			qr.trace.Add(Event{Kind: EvCompile, Pipeline: -1, Worker: -1,
				Level: hl, Start: 0, End: qr.trace.Since(time.Now())})
		}
	}

	// An adaptive query that hits the cache starts every pipeline in the
	// best tier any earlier execution reached — no re-climbing through
	// bytecode (the controller can still upgrade unoptimized pipelines).
	if e.opts.Mode == ModeAdaptive && ent != nil {
		for i, h := range qr.handles {
			if c := ent.pipes[i].compiled[jit.Optimized]; c != nil {
				h.Install(c, LevelOptimized)
			} else if c := ent.pipes[i].compiled[jit.Unoptimized]; c != nil {
				h.Install(c, LevelUnoptimized)
			}
		}
	}

	// Runtime state per the code generator's layout.
	qs := rt.NewQueryState(mem, e.opts.Workers, cq.StateBytes, cq.LocalBytes)
	for _, jd := range cq.Joins {
		qs.AddJoin(jd.TupleSize, jd.StateOff, jd.Filter)
	}
	for _, ad := range cq.Aggs {
		qs.AddAgg(ad.EntrySize, ad.Keys, ad.Aggs, ad.LocalOff, ad.Scalar)
	}
	for _, od := range cq.Outs {
		qs.AddOut(od.RowSize)
	}
	for _, p := range cq.Patterns {
		qs.AddPattern(p)
	}
	qs.Eng = qr
	qr.qs = qs

	names := make([]string, len(cq.Module.Externs))
	for i, ex := range cq.Module.Externs {
		names[i] = ex.Name
	}
	funcs, err := e.reg.Bind(names)
	if err != nil {
		return nil, err
	}
	for w := 0; w < e.opts.Workers; w++ {
		qr.ctxs = append(qr.ctxs, &rt.Ctx{Mem: mem, Funcs: funcs, Worker: w, Query: qs})
	}
	qr.coord = &rt.Ctx{Mem: mem, Funcs: funcs, Worker: 0, Query: qs}
	return qr, nil
}

// modelCompileTime returns the simulated whole-module compile latency.
func (qr *queryRun) modelCompileTime(l Level, moduleInstrs, maxFn int) time.Duration {
	m := qr.eng.opts.Cost
	if l == LevelOptimized {
		// Linear in the module, super-linear in the largest function.
		d := m.OptBase + time.Duration(moduleInstrs)*m.OptPerInstr
		if m.OptCubic > 0 {
			n := float64(maxFn)
			d += time.Duration(m.OptCubic * n * n * n * float64(time.Second))
		}
		return d
	}
	return m.UnoptBase + time.Duration(moduleInstrs)*m.UnoptPerInstr
}

func maxFnInstrs(cq *codegen.Query) int {
	max := 0
	for _, f := range cq.Module.Funcs {
		if n := f.NumInstrs(); n > max {
			max = n
		}
	}
	return max
}

// execute interprets queryStart (which triggers the pipelines through the
// pipeline_run extern) and decodes the result rows.
func (qr *queryRun) execute() ([][]expr.Datum, error) {
	args := []uint64{qr.qs.StateAddr, qr.qs.Locals[0], 0, 0}
	err := rt.CatchTrap(func() {
		qr.queryStart.Run(qr.coord, args)
	})
	qr.coord.ResetRegs()
	if err == nil {
		qr.failMu.Lock()
		err = qr.failed
		qr.failMu.Unlock()
	}
	if err != nil {
		return nil, err
	}
	return qr.decodeOutput(), nil
}

func (qr *queryRun) fail(err error) {
	qr.failMu.Lock()
	if qr.failed == nil {
		qr.failed = err
	}
	qr.failMu.Unlock()
}

// decodeOutput reads the final pipeline's output buffers.
func (qr *queryRun) decodeOutput() [][]expr.Datum {
	d := qr.cq.Output
	out := qr.qs.Outs[0]
	rows := make([][]expr.Datum, 0, out.Rows())
	out.Each(func(addr rt.Addr) {
		row := make([]expr.Datum, len(d.Cols))
		for i, c := range d.Cols {
			switch c.T.Kind {
			case expr.KFloat:
				row[i] = expr.Datum{F: math.Float64frombits(qr.mem.Load64(addr + rt.Addr(c.Off)))}
			case expr.KString:
				sa := qr.mem.Load64(addr + rt.Addr(c.Off))
				sl := qr.mem.Load64(addr + rt.Addr(c.Off) + 8)
				row[i] = expr.Datum{S: string(qr.mem.Bytes(sa, int(sl)))}
			default:
				row[i] = expr.Datum{I: int64(qr.mem.Load64(addr + rt.Addr(c.Off)))}
			}
		}
		rows = append(rows, row)
	})
	return rows
}

// progress tracks one pipeline run: the work-claiming cursor with
// dynamically growing morsels, per-worker processing rates, and the
// single-evaluator gate of the controller (§III-C).
type progress struct {
	total   int64
	work    int64 // total minus zone-map-pruned tuples
	cursor  atomic.Int64
	done    atomic.Int64
	claims  atomic.Int64
	base    int64
	cap     int64
	grow    int64
	started time.Time

	// Zone-map pruning (nil when the scan has no prunable blocks): the
	// dispatcher never hands out a morsel intersecting a pruned block.
	pruned    []bool
	blockRows int64

	rates    []atomic.Uint64 // per worker: float64 bits, tuples/sec
	evalGate atomic.Bool
}

func newProgress(total int64, workers int, o Options) *progress {
	return &progress{
		total: total, work: total, started: time.Now(),
		base: o.MorselSize, cap: o.MorselCap, grow: o.MorselGrowEvery,
		rates: make([]atomic.Uint64, workers),
	}
}

// setPruneMask installs a zone-map mask before workers start; pruned
// tuples leave the remaining work the controller extrapolates over.
func (pr *progress) setPruneMask(pm *pruneMask) {
	pr.pruned = pm.pruned
	pr.blockRows = pm.blockRows
	pr.work = pr.total - pm.prunedTuples
}

// morselSize returns the next morsel's size. Morsels grow geometrically
// (×2 every grow-cadence claims, capped): small morsels early give the
// controller dense rate samples; large morsels later amortize dispatch
// (§III-A).
func (pr *progress) morselSize() int64 {
	n := pr.claims.Add(1) - 1
	size := pr.base << uint(minI64(n/pr.grow, 30))
	if size > pr.cap || size <= 0 {
		size = pr.cap
	}
	return size
}

// claim returns the next morsel. Without a prune mask the cursor is a
// plain fetch-and-add; with one, a CAS loop skips runs of pruned blocks
// and clips morsels at the next pruned boundary, so pruned tuples are
// never dispatched (and never counted as processed work).
func (pr *progress) claim() (int64, int64, bool) {
	size := pr.morselSize()
	if pr.pruned == nil {
		begin := pr.cursor.Add(size) - size
		if begin >= pr.total {
			return 0, 0, false
		}
		end := begin + size
		if end > pr.total {
			end = pr.total
		}
		return begin, end, true
	}
	for {
		begin := pr.cursor.Load()
		if begin >= pr.total {
			return 0, 0, false
		}
		b := begin / pr.blockRows
		if pr.pruned[b] {
			for int(b) < len(pr.pruned) && pr.pruned[b] {
				b++
			}
			skip := b * pr.blockRows
			if skip > pr.total {
				skip = pr.total
			}
			pr.cursor.CompareAndSwap(begin, skip)
			continue
		}
		end := begin + size
		if end > pr.total {
			end = pr.total
		}
		for nb := b + 1; nb*pr.blockRows < end; nb++ {
			if pr.pruned[nb] {
				end = nb * pr.blockRows
				break
			}
		}
		if pr.cursor.CompareAndSwap(begin, end) {
			return begin, end, true
		}
	}
}

// abort drains all remaining morsels (on failure).
func (pr *progress) abort() { pr.cursor.Store(pr.total) }

// report records a finished morsel and the worker's local rate.
func (pr *progress) report(w int, tuples int64, d time.Duration) {
	pr.done.Add(tuples)
	if d > 0 {
		rate := float64(tuples) / d.Seconds()
		pr.rates[w].Store(math.Float64bits(rate))
	}
}

// avgRate averages the workers' most recent rates (Fig. 7's r0).
func (pr *progress) avgRate() float64 {
	sum, n := 0.0, 0
	for i := range pr.rates {
		if bits := pr.rates[i].Load(); bits != 0 {
			sum += math.Float64frombits(bits)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// resetRates clears the samples after a mode switch so the next
// extrapolation measures the new tier (§III-C).
func (pr *progress) resetRates() {
	for i := range pr.rates {
		pr.rates[i].Store(0)
	}
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// runPipeline executes one pipeline across all workers and finalizes its
// sink. It runs on the coordinator goroutine, called from the interpreted
// queryStart through the pipeline_run extern.
func (qr *queryRun) runPipeline(id int) {
	pl := qr.cq.Pipelines[id]
	h := qr.handles[id]
	if qr.trace != nil && pl.DictRewrites > 0 {
		now := qr.trace.Since(time.Now())
		qr.trace.Add(Event{Kind: EvDictRewrite, Pipeline: pl.ID, Label: pl.Label,
			Worker: -1, Start: now, End: now, Tuples: int64(pl.DictRewrites)})
	}
	total := qr.sourceTotal(pl)
	if total > 0 {
		pr := newProgress(total, qr.eng.opts.Workers, qr.eng.opts)
		if len(pl.Prune) > 0 && !qr.eng.opts.NoZoneMaps {
			qr.applyZoneMaps(pl, pr, total)
		}
		var wg sync.WaitGroup
		for w := 0; w < qr.eng.opts.Workers; w++ {
			wg.Add(1)
			go qr.worker(w, pl, h, pr, &wg)
		}
		wg.Wait()
	}
	qr.failMu.Lock()
	failed := qr.failed
	qr.failMu.Unlock()
	if failed != nil {
		// Unwind the interpreted queryStart; execute() reports qr.failed.
		if t, ok := failed.(*rt.Trap); ok {
			panic(t)
		}
		panic(&rt.Trap{Code: rt.TrapUser})
	}
	// Finalize the sink between pipelines. By default the breaker work
	// (join chain linking, aggregation merge) is hash-range partitioned
	// across the worker pool; Options.SerialFinalize retains the
	// single-threaded barrier for comparison.
	if pl.SinkJoin >= 0 {
		ht := qr.qs.Joins[pl.SinkJoin]
		t0 := time.Now()
		parts := 1
		if qr.eng.opts.SerialFinalize {
			ht.Finalize(qr.qs.StateAddr)
		} else {
			parts = ht.FinalizeParallel(qr.qs.StateAddr, qr.breakerParts(), qr.pfor)
		}
		qr.noteFinalize(pl, time.Since(t0), t0, parts, int64(ht.Count))
	}
	if pl.SinkAgg >= 0 {
		set := qr.qs.Aggs[pl.SinkAgg]
		t0 := time.Now()
		parts := 1
		if qr.eng.opts.SerialFinalize {
			set.Finalize()
		} else {
			parts = set.FinalizeParallel(qr.breakerParts(), qr.pfor)
		}
		d := qr.cq.Aggs[pl.SinkAgg]
		qr.mem.Store64(qr.qs.StateAddr+rt.Addr(d.IndexStateOff), set.IndexAddr)
		qr.noteFinalize(pl, time.Since(t0), t0, parts, int64(set.Groups))
	}
}

// applyZoneMaps builds the prune mask for a scan pipeline from the
// table's zone maps and installs it on the progress tracker, accounting
// the skipped blocks/tuples in Stats and the trace. Runs on the
// coordinator before any worker claims a morsel.
func (qr *queryRun) applyZoneMaps(pl *codegen.Pipeline, pr *progress, total int64) {
	t0 := time.Now()
	pm := buildPruneMask(pl.Table, pl.Prune)
	d := time.Since(t0)
	qr.stats.PruneTime += d
	qr.stats.PrunableTuples += total
	if pm == nil {
		return
	}
	pr.setPruneMask(pm)
	qr.stats.BlocksPruned += pm.prunedBlocks
	qr.stats.TuplesPruned += pm.prunedTuples
	qr.stats.StringBlocksPruned += pm.prunedStrBlocks
	if qr.trace != nil {
		qr.trace.Add(Event{Kind: EvPrune, Pipeline: pl.ID, Label: pl.Label,
			Worker: -1, Start: qr.trace.Since(t0), End: qr.trace.Since(t0) + d,
			Tuples: pm.prunedTuples, Parts: int(pm.prunedBlocks)})
	}
}

// noteFinalize accounts one breaker finalization in Stats and the trace.
func (qr *queryRun) noteFinalize(pl *codegen.Pipeline, d time.Duration, t0 time.Time, parts int, tuples int64) {
	qr.stats.Finalize += d
	qr.stats.Finalizes++
	if qr.trace != nil {
		qr.trace.Add(Event{Kind: EvFinalize, Pipeline: pl.ID, Label: pl.Label,
			Worker: -1, Start: qr.trace.Since(t0), End: qr.trace.Since(t0) + d,
			Tuples: tuples, Parts: parts})
	}
}

// breakerParts returns the partition count for parallel finalization:
// Options.Workers capped by the CPUs actually available. Every partition
// re-scans all build arenas (that is what makes the writes disjoint), so
// partitions beyond real parallelism are pure extra scan work.
func (qr *queryRun) breakerParts() int {
	parts := qr.eng.opts.Workers
	if n := runtime.GOMAXPROCS(0); parts > n {
		parts = n
	}
	return parts
}

// pfor is the rt.ParallelFor executor backing partitioned finalization: it
// spreads fn(0..n-1) over up to Workers goroutines with an atomic claim
// cursor. A Trap thrown by a task (aggregate Combine can overflow) is
// caught on its goroutine and re-thrown on the caller, so breaker traps
// surface exactly like serial-finalize traps.
func (qr *queryRun) pfor(n int, fn func(p int)) {
	workers := qr.eng.opts.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for p := 0; p < n; p++ {
			fn(p)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var trapMu sync.Mutex
	var trapped *rt.Trap
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := rt.CatchTrap(func() {
				for {
					p := int(next.Add(1) - 1)
					if p >= n {
						return
					}
					fn(p)
				}
			})
			if err != nil {
				trapMu.Lock()
				if trapped == nil {
					trapped = err.(*rt.Trap)
				}
				trapMu.Unlock()
			}
		}()
	}
	wg.Wait()
	if trapped != nil {
		panic(trapped)
	}
}

// sourceTotal returns the number of source tuples of a pipeline — always
// known when the pipeline starts (§III-A).
func (qr *queryRun) sourceTotal(pl *codegen.Pipeline) int64 {
	if pl.Table != nil {
		return int64(pl.Table.Rows())
	}
	return int64(qr.qs.Aggs[pl.AggSource].Groups)
}

// worker is the morsel loop of one worker thread: claim, dispatch through
// the handle, record progress, and — in adaptive mode — run the controller
// after each morsel (Fig. 5's dispatch code).
func (qr *queryRun) worker(w int, pl *codegen.Pipeline, h *Handle, pr *progress, wg *sync.WaitGroup) {
	defer wg.Done()
	ctx := qr.ctxs[w]
	args := []uint64{qr.qs.StateAddr, qr.qs.Locals[w], 0, 0}
	err := rt.CatchTrap(func() {
		for {
			begin, end, ok := pr.claim()
			if !ok {
				return
			}
			lvl := h.Level()
			t0 := time.Now()
			args[2], args[3] = uint64(begin), uint64(end)
			h.Dispatch(ctx, args)
			d := time.Since(t0)
			pr.report(w, end-begin, d)
			if qr.trace != nil {
				qr.trace.Add(Event{Kind: EvMorsel, Pipeline: pl.ID, Label: pl.Label,
					Worker: w, Level: lvl, Start: qr.trace.Since(t0),
					End: qr.trace.Since(t0) + d, Tuples: end - begin})
			}
			if qr.eng.morselHook != nil {
				qr.eng.morselHook(pl.ID, h, w)
			}
			if qr.eng.opts.Mode == ModeAdaptive {
				qr.evaluate(pl, h, pr)
			}
		}
	})
	if err != nil {
		ctx.ResetRegs()
		qr.fail(err)
		pr.abort()
	}
}

// evaluate implements Fig. 7: extrapolate the remaining pipeline duration
// under each execution mode and launch a background compilation when a
// faster mode wins. Only one worker evaluates at a time, the first
// evaluation is delayed by 1 ms, and an in-flight compilation suppresses
// further evaluation.
func (qr *queryRun) evaluate(pl *codegen.Pipeline, h *Handle, pr *progress) {
	if !pr.evalGate.CompareAndSwap(false, true) {
		return
	}
	defer pr.evalGate.Store(false)
	if h.Compiling() || h.Level() == LevelOptimized {
		return
	}
	if time.Since(pr.started) < time.Millisecond {
		return
	}
	r0 := pr.avgRate()
	if r0 <= 0 {
		return
	}
	m := qr.eng.opts.Cost
	// Remaining work excludes zone-map-pruned tuples: they are never
	// dispatched, so extrapolating over them would overstate the payoff
	// of compiling (§III-C).
	n := float64(pr.work - pr.done.Load())
	w := float64(qr.eng.opts.Workers)
	cur := h.Level()
	curSpeed := m.Speedup(cur)

	// t0: stay in the current mode.
	t0 := n / r0 / w
	best := cur
	bestT := t0

	consider := func(l Level, compile time.Duration) {
		if l <= cur {
			return
		}
		c := compile.Seconds()
		r := r0 / curSpeed * m.Speedup(l)
		// While one thread compiles, the remaining w-1 continue at r0.
		rem := n - (w-1)*r0*c
		if rem < 0 {
			rem = 0
		}
		t := c + rem/r/w
		if t < bestT {
			bestT = t
			best = l
		}
	}
	consider(LevelUnoptimized, m.UnoptTime(h.Instrs))
	consider(LevelOptimized, m.OptTime(h.Instrs))

	if best == cur {
		return
	}
	if !h.BeginCompile() {
		return
	}
	qr.stats.Compilations++
	qr.eng.pool.submit(func() { qr.compileTask(pl, h, pr, best) })
}

// compileTask runs on a shared compile-pool worker: it (optionally) sleeps
// the modeled LLVM-scale latency, really compiles the function, installs
// the variant, publishes it to the cache, and resets the rate samples.
func (qr *queryRun) compileTask(pl *codegen.Pipeline, h *Handle, pr *progress, l Level) {
	t0 := time.Now()
	m := qr.eng.opts.Cost
	if m.Simulate {
		var d time.Duration
		if l == LevelOptimized {
			d = m.OptTime(h.Instrs)
		} else {
			d = m.UnoptTime(h.Instrs)
		}
		time.Sleep(d)
	}
	level := jit.Unoptimized
	if l == LevelOptimized {
		level = jit.Optimized
	}
	c, err := jit.Compile(h.Fn, level, h.Prog)
	if err != nil {
		h.AbortCompile()
		qr.fail(fmt.Errorf("exec: background compile of %s: %w", h.Fn.Name, err))
		pr.abort()
		return
	}
	h.Install(c, l)
	if qr.eng.cache != nil {
		qr.eng.cache.addCompiled(qr.fp, pl.ID, level, c)
	}
	pr.resetRates()
	if qr.trace != nil {
		now := time.Now()
		qr.trace.Add(Event{Kind: EvCompile, Pipeline: pl.ID, Label: pl.Label,
			Worker: -1, Level: l, Start: qr.trace.Since(t0), End: qr.trace.Since(now)})
	}
}
