package exec

import (
	"container/list"
	"sync"

	"aqe/internal/jit"
	"aqe/internal/vector"
	"aqe/internal/vm"
)

// planCache is the engine-level compilation cache: it maps plan
// fingerprints to the translated bytecode of every pipeline (plus
// queryStart) and to the compiled closure of each JIT tier, so a repeated
// query skips translation entirely and starts executing in the best tier
// reached by any earlier execution instead of re-climbing
// bytecode → unoptimized → optimized.
//
// Entries are evicted in LRU order once the byte budget is exceeded. The
// budget tracks an estimate of the retained footprint (bytecode
// instructions, constant pools, closure graphs); a background compilation
// finishing after its query can still grow an entry, which may in turn
// evict colder ones.
type planCache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	lru    *list.List // of *cachedPlan, front = most recent
	idx    map[Fingerprint]*list.Element

	hits, misses, evictions int64
}

// cachedPlan is one cache entry. Entries are mutated only under the cache
// mutex; lookups hand out immutable snapshots.
type cachedPlan struct {
	fp         Fingerprint
	queryStart *vm.Program
	pipes      []cachedPipe
	bytes      int64
}

// cachedPipe holds the artifacts of one pipeline: the bytecode program,
// the compiled artifact per JIT tier (indexed by jit.Level — the native
// slot holds the assembled machine code, so warm runs start in tier 6),
// and the vectorized kernel. Kernels are address-indirect like compiled
// closures (column/dictionary/literal bases re-registered per run resolve
// through the run's segment table), so fingerprint-equal plans share them.
type cachedPipe struct {
	prog     *vm.Program
	compiled [3]*jit.Compiled
	vec      *vector.Kernel
	// vecBest records whether the most recent completed execution finished
	// this pipeline in the vectorized engine; a warm adaptive run then
	// starts there directly instead of re-discovering the engine choice
	// from morsel rates (the engine analogue of starting in the best
	// compiled tier reached earlier).
	vecBest bool
}

// CacheStats is a snapshot of the compilation-cache counters.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Bytes     int64
	Budget    int64
}

func newPlanCache(budget int64) *planCache {
	return &planCache{
		budget: budget,
		lru:    list.New(),
		idx:    make(map[Fingerprint]*list.Element),
	}
}

// lookup returns a snapshot of the entry for fp, or nil, and counts the
// hit or miss. The snapshot's pipes slice is a copy: concurrent
// addCompiled calls mutate the cached entry, never the snapshot.
func (c *planCache) lookup(fp Fingerprint) *cachedPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[fp]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.lru.MoveToFront(el)
	ent := el.Value.(*cachedPlan)
	snap := &cachedPlan{fp: ent.fp, queryStart: ent.queryStart, bytes: ent.bytes}
	snap.pipes = append([]cachedPipe(nil), ent.pipes...)
	return snap
}

// insert adds a freshly translated plan. A concurrent duplicate insert
// keeps the existing entry (its compiled tiers may already be populated).
func (c *planCache) insert(fp Fingerprint, queryStart *vm.Program, progs []*vm.Program) {
	ent := &cachedPlan{fp: fp, queryStart: queryStart}
	ent.bytes = int64(queryStart.SizeBytes())
	for _, p := range progs {
		ent.pipes = append(ent.pipes, cachedPipe{prog: p})
		ent.bytes += int64(p.SizeBytes())
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.idx[fp]; ok {
		return
	}
	c.idx[fp] = c.lru.PushFront(ent)
	c.bytes += ent.bytes
	c.evict()
}

// addCompiled attaches a compiled closure to a cached pipeline tier. It is
// a no-op if the entry was evicted or the tier is already populated (the
// first finished compilation wins; both artifacts are equivalent).
func (c *planCache) addCompiled(fp Fingerprint, pipe int, level jit.Level, comp *jit.Compiled) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[fp]
	if !ok {
		return
	}
	ent := el.Value.(*cachedPlan)
	if pipe >= len(ent.pipes) || ent.pipes[pipe].compiled[level] != nil {
		return
	}
	ent.pipes[pipe].compiled[level] = comp
	n := int64(comp.SizeBytes())
	ent.bytes += n
	c.bytes += n
	c.evict()
}

// vecKernelBytes is the footprint estimate of a cached vectorized kernel:
// the spec's expression trees and lookup maps are small compared to
// bytecode programs or closure graphs.
const vecKernelBytes = 2048

// addVector attaches a vectorized kernel to a cached pipeline slot. First
// finished compilation wins, like addCompiled.
func (c *planCache) addVector(fp Fingerprint, pipe int, k *vector.Kernel) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[fp]
	if !ok {
		return
	}
	ent := el.Value.(*cachedPlan)
	if pipe >= len(ent.pipes) || ent.pipes[pipe].vec != nil {
		return
	}
	ent.pipes[pipe].vec = k
	ent.bytes += vecKernelBytes
	c.bytes += vecKernelBytes
	c.evict()
}

// noteEngine records the engine the most recent execution finished
// pipeline `pipe` in (true = vectorized). Last writer wins: the memo
// tracks the current preference, not history.
func (c *planCache) noteEngine(fp Fingerprint, pipe int, vec bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[fp]
	if !ok {
		return
	}
	ent := el.Value.(*cachedPlan)
	if pipe < len(ent.pipes) {
		ent.pipes[pipe].vecBest = vec
	}
}

// evict drops LRU entries until the budget is respected. Called with the
// mutex held. An entry larger than the whole budget is evicted too: the
// budget is a hard cap, not a guideline.
func (c *planCache) evict() {
	for c.bytes > c.budget && c.lru.Len() > 0 {
		el := c.lru.Back()
		ent := el.Value.(*cachedPlan)
		c.lru.Remove(el)
		delete(c.idx, ent.fp)
		c.bytes -= ent.bytes
		c.evictions++
	}
}

// stats snapshots the counters.
func (c *planCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Entries: c.lru.Len(), Bytes: c.bytes, Budget: c.budget,
	}
}
