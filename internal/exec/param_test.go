package exec

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"aqe/internal/expr"
	"aqe/internal/plan"
)

// paramFilterPlan builds scan→filter→aggregate over the shared orders
// table, with the threshold and status predicate operands supplied by
// the caller — either constants or expr.ParamRef placeholders, so the
// parameterized and literal forms of the same query share one builder.
func paramFilterPlan(thresh, status expr.Expr) plan.Node {
	s := plan.NewScan(ordersT, "o_total", "o_status")
	sch := s.Schema()
	s.Where(expr.And(
		expr.Gt(plan.C(sch, "o_total"), thresh),
		expr.Eq(plan.C(sch, "o_status"), status)))
	return plan.NewGroupBy(s,
		[]expr.Expr{plan.C(sch, "o_status")}, []string{"st"},
		[]plan.AggExpr{
			{Func: plan.Sum, Arg: plan.C(sch, "o_total"), Name: "s"},
			{Func: plan.CountStar, Name: "n"}})
}

// TestParamBindingsShareOnePlan is the prepared-statement property test:
// the same parameterized plan executed under many random bindings must
// (a) produce rows identical to the equivalent literal plan, and (b)
// occupy exactly one cache entry, hit on every execution after the
// first with zero translate and compile time.
func TestParamBindingsShareOnePlan(t *testing.T) {
	ctx := context.Background()
	native := Native()
	configs := map[string]Options{
		"bytecode": {Workers: 1, Mode: ModeBytecode, CacheBytes: 8 << 20},
		"adaptive": {Workers: 3, Mode: ModeAdaptive, Cost: native,
			CacheBytes: 8 << 20, MorselSize: 256},
		"optimized": {Workers: 2, Mode: ModeOptimized, Cost: native,
			CacheBytes: 8 << 20},
		"vector": {Workers: 2, Mode: ModeVector, Cost: native,
			CacheBytes: 8 << 20, MorselSize: 256},
	}
	for name, o := range configs {
		t.Run(name, func(t *testing.T) {
			e := New(o)    // runs the parameterized plan (one entry)
			eRef := New(o) // runs the literal plans (one entry each)
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 40; i++ {
				v := int64(rng.Intn(100000))
				c := "OFP"[rng.Intn(3)]
				args := []*expr.Const{
					expr.Dec(v, 2).(*expr.Const),
					expr.Ch(c).(*expr.Const),
				}
				got, err := e.RunPlanOpts(ctx,
					paramFilterPlan(expr.ParamRef(0, expr.TDec(2)), expr.ParamRef(1, expr.TChar)),
					"param", RunOpts{Params: args})
				if err != nil {
					t.Fatalf("binding %d: %v", i, err)
				}
				want, err := eRef.RunPlan(
					paramFilterPlan(expr.Dec(v, 2), expr.Ch(c)), "literal")
				if err != nil {
					t.Fatalf("literal %d: %v", i, err)
				}
				gc := canon(got.Rows, got.Types)
				wc := canon(want.Rows, want.Types)
				if !reflect.DeepEqual(gc, wc) {
					t.Fatalf("binding %d (v=%d c=%c): rows differ\n got %v\nwant %v", i, v, c, gc, wc)
				}
				if got.Stats.Cache.Entries != 1 {
					t.Fatalf("binding %d: %d cache entries, want 1", i, got.Stats.Cache.Entries)
				}
				if i > 0 {
					if !got.Stats.CacheHit {
						t.Fatalf("binding %d: expected a cache hit", i)
					}
					if got.Stats.Translate != 0 || got.Stats.Compile != 0 {
						t.Fatalf("binding %d: warm execution spent translate=%v compile=%v, want zero",
							i, got.Stats.Translate, got.Stats.Compile)
					}
				}
			}
		})
	}
}

// TestParamWarmStartsInMemoizedTier pins the acceptance behavior: once
// the adaptive engine has settled on a tier for the parameterized plan,
// a fresh binding starts there directly — cache hit, no translation, no
// compilation launched, and the final tier at least as high as the
// memoized one.
func TestParamWarmStartsInMemoizedTier(t *testing.T) {
	ctx := context.Background()
	e := New(Options{Workers: 3, Mode: ModeAdaptive, Cost: Native(),
		CacheBytes: 8 << 20, MorselSize: 64})
	run := func(v int64, c byte) *Result {
		res, err := e.RunPlanOpts(ctx,
			paramFilterPlan(expr.ParamRef(0, expr.TDec(2)), expr.ParamRef(1, expr.TChar)),
			"param", RunOpts{Params: []*expr.Const{
				expr.Dec(v, 2).(*expr.Const), expr.Ch(c).(*expr.Const)}})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Warm until the controller stops launching compilations.
	var warm *Result
	for i := 0; i < 10; i++ {
		warm = run(int64(1000*i), "OFP"[i%3])
		if i > 0 && warm.Stats.Compilations == 0 {
			break
		}
	}
	if warm.Stats.Compilations != 0 {
		t.Fatalf("plan never settled: %d compilations still launched", warm.Stats.Compilations)
	}
	memo := warm.Stats.FinalLevels
	// A fresh, never-seen binding must start in the memoized state.
	fresh := run(77777, 'F')
	if !fresh.Stats.CacheHit {
		t.Fatal("fresh binding missed the cache")
	}
	if fresh.Stats.Translate != 0 || fresh.Stats.Compile != 0 {
		t.Fatalf("fresh binding spent translate=%v compile=%v, want zero",
			fresh.Stats.Translate, fresh.Stats.Compile)
	}
	if fresh.Stats.Compilations != 0 {
		t.Fatalf("fresh binding launched %d compilations, want 0 (memoized tier)", fresh.Stats.Compilations)
	}
	for i, lvl := range fresh.Stats.FinalLevels {
		if lvl < memo[i] {
			t.Fatalf("pipeline %d regressed from memoized tier %v to %v", i, memo[i], lvl)
		}
	}
}

// TestBindParamsErrors checks the binding validation surface: wrong
// arity, nil values, and type mismatches fail cleanly, before any
// execution state is touched.
func TestBindParamsErrors(t *testing.T) {
	ctx := context.Background()
	e := New(Options{Workers: 1, Mode: ModeBytecode})
	node := func() plan.Node {
		return paramFilterPlan(expr.ParamRef(0, expr.TDec(2)), expr.ParamRef(1, expr.TChar))
	}
	dec := expr.Dec(100, 2).(*expr.Const)
	ch := expr.Ch('O').(*expr.Const)
	cases := map[string][]*expr.Const{
		"too-few":   {dec},
		"too-many":  {dec, ch, dec},
		"nil-value": {dec, nil},
		"bad-type":  {dec, expr.Int(7).(*expr.Const)},
		"none":      nil,
	}
	for name, args := range cases {
		if _, err := e.RunPlanOpts(ctx, node(), "param", RunOpts{Params: args}); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
	// And the happy path still runs.
	if _, err := e.RunPlanOpts(ctx, node(), "param", RunOpts{Params: []*expr.Const{dec, ch}}); err != nil {
		t.Errorf("valid bindings failed: %v", err)
	}
}
