package exec

import (
	"testing"

	"aqe/internal/codegen"
	"aqe/internal/expr"
	"aqe/internal/plan"
	"aqe/internal/rt"
	"aqe/internal/storage"
	"aqe/internal/vm"
)

// fpOf code-generates the plan into a fresh address space and fingerprints
// it, exactly as RunPlan does.
func fpOf(t *testing.T, node plan.Node, vopts vm.Options) Fingerprint {
	t.Helper()
	cq, err := codegen.Compile(node, rt.NewMemory(), "fp")
	if err != nil {
		t.Fatal(err)
	}
	return fingerprintOf(cq, vopts, false, false, false)
}

// fpPlan builds a representative scan→filter→aggregate plan with a
// parameterizable filter constant.
func fpPlan(threshold int64) plan.Node {
	s := plan.NewScan(ordersT, "o_total", "o_status")
	sch := s.Schema()
	s.Where(expr.Gt(plan.C(sch, "o_total"), expr.Dec(threshold, 2)))
	return plan.NewGroupBy(s,
		[]expr.Expr{plan.C(sch, "o_status")}, []string{"st"},
		[]plan.AggExpr{{Func: plan.Sum, Arg: plan.C(sch, "o_total"), Name: "s"}})
}

func TestFingerprintStable(t *testing.T) {
	// The same plan, code-generated twice into distinct address spaces,
	// must fingerprint identically — this is what makes the cache hit on
	// repeated queries.
	a := fpOf(t, fpPlan(50000), vm.Options{})
	b := fpOf(t, fpPlan(50000), vm.Options{})
	if a != b {
		t.Fatalf("same plan fingerprints differ: %s vs %s", a.Short(), b.Short())
	}
	if a == (Fingerprint{}) {
		t.Fatal("zero fingerprint")
	}
}

func TestFingerprintChangedConstant(t *testing.T) {
	a := fpOf(t, fpPlan(50000), vm.Options{})
	b := fpOf(t, fpPlan(50001), vm.Options{})
	if a == b {
		t.Fatal("changed filter constant did not change the fingerprint")
	}
}

func TestFingerprintChangedType(t *testing.T) {
	// Same shape, one column typed Int64 vs Float64: the generated
	// arithmetic differs (int vs float sum), so fingerprints must too.
	mk := func(kind storage.Kind) plan.Node {
		c := storage.NewColumn("v", kind)
		for i := 0; i < 8; i++ {
			if kind == storage.Float64 {
				c.AppendFloat64(float64(i))
			} else {
				c.AppendInt64(int64(i))
			}
		}
		tbl := storage.NewTable("t", c)
		s := plan.NewScan(tbl, "v")
		return plan.NewGroupBy(s, nil, nil,
			[]plan.AggExpr{{Func: plan.Sum, Arg: plan.C(s.Schema(), "v"), Name: "s"}})
	}
	a := fpOf(t, mk(storage.Int64), vm.Options{})
	b := fpOf(t, mk(storage.Float64), vm.Options{})
	if a == b {
		t.Fatal("changed column type did not change the fingerprint")
	}
}

func TestFingerprintChangedExtern(t *testing.T) {
	// Adding a LIKE predicate pulls in a string-matching extern.
	base := func() *plan.Scan { return plan.NewScan(ordersT, "o_id", "o_comment") }
	plain := base()
	liked := base()
	liked.Where(expr.Like(plan.C(liked.Schema(), "o_comment"), "%deposits%"))
	a := fpOf(t, plain, vm.Options{})
	b := fpOf(t, liked, vm.Options{})
	if a == b {
		t.Fatal("added extern call did not change the fingerprint")
	}
}

func TestFingerprintChangedLiteralAndPattern(t *testing.T) {
	// Two LIKE patterns of equal length generate identical code (patterns
	// are addressed indirectly); the fingerprint still distinguishes them.
	mk := func(pat string) plan.Node {
		s := plan.NewScan(ordersT, "o_id", "o_comment")
		s.Where(expr.Like(plan.C(s.Schema(), "o_comment"), pat))
		return s
	}
	a := fpOf(t, mk("%deposits%"), vm.Options{})
	b := fpOf(t, mk("%packages%"), vm.Options{})
	if a == b {
		t.Fatal("changed LIKE pattern did not change the fingerprint")
	}
	// Same for equal-length string literals in an equality predicate.
	mkEq := func(seg string) plan.Node {
		s := plan.NewScan(custT, "c_id", "c_seg")
		s.Where(expr.Eq(plan.C(s.Schema(), "c_seg"), expr.Str(seg)))
		return s
	}
	c := fpOf(t, mkEq("BUILDING"), vm.Options{})
	d := fpOf(t, mkEq("GUILDING"), vm.Options{})
	if c == d {
		t.Fatal("changed string literal did not change the fingerprint")
	}
}

// fpParamPlan is fpPlan with the filter threshold as parameter $1 (and
// optionally a second char parameter on o_status).
func fpParamPlan(t0 expr.Type, second bool) plan.Node {
	s := plan.NewScan(ordersT, "o_total", "o_status")
	sch := s.Schema()
	cond := expr.Gt(plan.C(sch, "o_total"), expr.ParamRef(0, t0))
	if second {
		cond = expr.And(cond,
			expr.Eq(plan.C(sch, "o_status"), expr.ParamRef(1, expr.TChar)))
	}
	s.Where(cond)
	return plan.NewGroupBy(s,
		[]expr.Expr{plan.C(sch, "o_status")}, []string{"st"},
		[]plan.AggExpr{{Func: plan.Sum, Arg: plan.C(sch, "o_total"), Name: "s"}})
}

func TestFingerprintParamSlots(t *testing.T) {
	// Parameter *slots* are hashed, values never: a parameterized plan's
	// fingerprint is independent of bindings by construction (the values
	// live in the run's parameter segment, outside the module), so every
	// binding shares one cache entry. Changing the slot — its type, its
	// decimal scale, or the arity — must re-key the plan.
	a := fpOf(t, fpParamPlan(expr.TDec(2), false), vm.Options{})
	b := fpOf(t, fpParamPlan(expr.TDec(2), false), vm.Options{})
	if a != b {
		t.Fatalf("same parameterized plan fingerprints differ: %s vs %s", a.Short(), b.Short())
	}
	if c := fpOf(t, fpPlan(50000), vm.Options{}); c == a {
		t.Fatal("parameterized and constant plans share a fingerprint")
	}
	if d := fpOf(t, fpParamPlan(expr.TDec(3), false), vm.Options{}); d == a {
		t.Fatal("changed parameter scale did not change the fingerprint")
	}
	if e := fpOf(t, fpParamPlan(expr.TInt, false), vm.Options{}); e == a {
		t.Fatal("changed parameter type did not change the fingerprint")
	}
	if f := fpOf(t, fpParamPlan(expr.TDec(2), true), vm.Options{}); f == a {
		t.Fatal("changed parameter arity did not change the fingerprint")
	}
}

func TestFingerprintTranslatorOptions(t *testing.T) {
	// Programs depend on the translator configuration, so the fingerprint
	// must separate them: a cache shared across configs would hand a
	// no-fusion engine a fused program.
	a := fpOf(t, fpPlan(50000), vm.Options{})
	b := fpOf(t, fpPlan(50000), vm.Options{NoFusion: true})
	c := fpOf(t, fpPlan(50000), vm.Options{Strategy: vm.NoReuse})
	if a == b || a == c || b == c {
		t.Fatal("translator options not separated by fingerprint")
	}
}
