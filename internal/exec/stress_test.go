package exec

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"aqe/internal/asm"
	"aqe/internal/expr"
	"aqe/internal/jit"
	"aqe/internal/plan"
)

// stressPlan: a two-pipeline plan (join build + probe into an aggregate)
// over the shared test tables, large enough to produce many morsels.
func stressPlan() plan.Node {
	c := plan.NewScan(custT, "c_id", "c_seg")
	o := plan.NewScan(ordersT, "o_cust", "o_total")
	j := plan.NewJoin(plan.Inner, c, o,
		[]expr.Expr{plan.C(c.Schema(), "c_id")},
		[]expr.Expr{plan.C(o.Schema(), "o_cust")},
		[]string{"c_seg"})
	jsch := j.Schema()
	return plan.NewGroupBy(j,
		[]expr.Expr{plan.C(jsch, "c_seg")}, []string{"seg"},
		[]plan.AggExpr{
			{Func: plan.Sum, Arg: plan.C(jsch, "o_total"), Name: "s"},
			{Func: plan.CountStar, Name: "n"},
		})
}

// TestModeSwitchStress forces a tier switch at every morsel boundary on
// every worker — far more violent than the controller ever is — while the
// adaptive controller and the shared compile pool run concurrently, and
// while three other goroutines execute the same query through the shared
// cache. Run under -race this verifies that handle swapping, the compile
// pool, and the cache are free of data races; correctness is checked
// against a bytecode-only reference.
func TestModeSwitchStress(t *testing.T) {
	ref, err := New(Options{Workers: 1, Mode: ModeBytecode}).RunPlan(stressPlan(), "ref")
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprint(canon(ref.Rows, ref.Types))

	cost := Native()
	cost.UnoptBase, cost.UnoptPerInstr, cost.OptBase, cost.OptPerInstr = 0, 0, 0, 0
	e := New(Options{Workers: 4, Mode: ModeAdaptive, Cost: cost,
		MorselSize: 32, CacheBytes: 1 << 20, CompileWorkers: 2})

	// Memoized per-handle variants (mutex-guarded: the hook runs on every
	// worker concurrently). On platforms without a native backend the
	// tier-6 slots reuse the optimized closure, so the flip cadence is the
	// same everywhere. Index 3 is the register-allocating native backend,
	// index 4 the slot-per-op one — flipping between them mid-pipeline is
	// exactly the bit-compatibility claim the allocator's flush-at-exit
	// invariant makes.
	var variantMu sync.Mutex
	variants := map[*Handle]*[5]*jit.Compiled{}
	variantFor := func(h *Handle, idx int, level jit.Level, opts jit.Options) *jit.Compiled {
		variantMu.Lock()
		defer variantMu.Unlock()
		set := variants[h]
		if set == nil {
			set = &[5]*jit.Compiled{}
			variants[h] = set
		}
		if set[idx] == nil {
			c, err := jit.CompileOpts(h.Fn, level, h.Prog, opts)
			if err != nil {
				panic(err)
			}
			set[idx] = c
		}
		return set[idx]
	}
	var flips, vecFlips atomic.Int64
	e.morselHook = func(pipeline int, h *Handle, worker int) {
		switch flips.Add(1) % 6 {
		case 0:
			h.Install(nil, LevelBytecode)
		case 1:
			h.Install(variantFor(h, 1, jit.Unoptimized, jit.Options{}), LevelUnoptimized)
		case 2:
			h.Install(variantFor(h, 2, jit.Optimized, jit.Options{}), LevelOptimized)
		case 3:
			if asm.Supported() {
				h.Install(variantFor(h, 3, jit.Native, jit.Options{}), LevelNative)
			} else {
				h.Install(variantFor(h, 2, jit.Optimized, jit.Options{}), LevelOptimized)
			}
		case 4:
			if asm.Supported() {
				h.Install(variantFor(h, 4, jit.Native, jit.Options{NoRegAlloc: true}), LevelNative)
			} else {
				h.Install(variantFor(h, 2, jit.Optimized, jit.Options{}), LevelOptimized)
			}
		case 5:
			// The vectorized engine: flipping a pipeline between compiled
			// closures and batch kernels mid-query is the engine-equivalence
			// claim. Pipelines whose shape the kernel compiler rejected stay
			// on the optimized closure.
			if h.VecKernel() != nil {
				vecFlips.Add(1)
				h.InstallVector()
			} else {
				h.Install(variantFor(h, 2, jit.Optimized, jit.Options{}), LevelOptimized)
			}
		}
	}

	const parallel, rounds = 4, 3
	var wg sync.WaitGroup
	errs := make(chan error, parallel*rounds)
	for g := 0; g < parallel; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				res, err := e.RunPlan(stressPlan(), "stress")
				if err != nil {
					errs <- err
					return
				}
				if got := fmt.Sprint(canon(res.Rows, res.Types)); got != want {
					errs <- fmt.Errorf("result diverged under tier flipping")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if flips.Load() == 0 {
		t.Fatal("morsel hook never fired")
	}
	if vecFlips.Load() == 0 {
		t.Error("no morsel ever ran vectorized — kernel compilation failed for every pipeline")
	}
	if st := e.CacheStats(); st.Hits == 0 {
		t.Errorf("concurrent repeats never hit the cache: %+v", st)
	}
}

// TestSharedCompilePoolBounded hammers the pool with more jobs than the
// concurrency bound and asserts the bound holds and every job runs.
func TestSharedCompilePoolBounded(t *testing.T) {
	p := newCompilePool(3)
	var running, peak, done atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		p.submit(func() {
			defer wg.Done()
			n := running.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			running.Add(-1)
			done.Add(1)
		})
	}
	wg.Wait()
	if done.Load() != 200 {
		t.Fatalf("ran %d jobs, want 200", done.Load())
	}
	if peak.Load() > 3 {
		t.Fatalf("concurrency peak %d exceeds bound 3", peak.Load())
	}
}
