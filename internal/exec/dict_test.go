package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"aqe/internal/codegen"
	"aqe/internal/expr"
	"aqe/internal/plan"
	"aqe/internal/rt"
	"aqe/internal/storage"
	"aqe/internal/vm"
	"aqe/internal/volcano"
)

// mkStrTable builds the dictionary-test table: a clustered string column s
// (50 distinct values in sorted runs, so code zone maps prune), a shuffled
// string column u, and an integer measure v. withDict controls whether
// dictionaries (and therefore string zone maps) exist.
func mkStrTable(rows int, withDict bool) *storage.Table {
	rng := rand.New(rand.NewSource(17))
	s := storage.NewColumn("s", storage.String)
	u := storage.NewColumn("u", storage.String)
	v := storage.NewColumn("v", storage.Int64)
	for i := 0; i < rows; i++ {
		s.AppendString(fmt.Sprintf("item-%03d", i*50/rows))
		u.AppendString(fmt.Sprintf("word-%03d", rng.Intn(40)))
		v.AppendInt64(int64(rng.Intn(1000)))
	}
	tb := storage.NewTable("strs", s, u, v)
	if withDict {
		tb.BuildDicts()
	}
	tb.BuildZoneMaps(256)
	return tb
}

// randStrPred draws a random string conjunct over column col: comparison
// (all six operators), IN, or LIKE, with literals that are sometimes in
// the domain, sometimes between values, sometimes outside the range.
func randStrPred(rng *rand.Rand, sch []plan.ColDef, col, stem string) expr.Expr {
	c := func() expr.Expr { return plan.C(sch, col) }
	lit := func() string {
		switch rng.Intn(5) {
		case 0, 1:
			return fmt.Sprintf("%s-%03d", stem, rng.Intn(50))
		case 2:
			return fmt.Sprintf("%s-%03dx", stem, rng.Intn(50)) // between values
		case 3:
			return "" // below everything
		default:
			return "~~~" // above everything
		}
	}
	switch rng.Intn(5) {
	case 0:
		ops := []func(l, r expr.Expr) expr.Expr{expr.Eq, expr.Ne, expr.Lt, expr.Le, expr.Gt, expr.Ge}
		return ops[rng.Intn(len(ops))](c(), expr.Str(lit()))
	case 1: // constant on the left (flipped operand order)
		ops := []func(l, r expr.Expr) expr.Expr{expr.Lt, expr.Ge}
		return ops[rng.Intn(len(ops))](expr.Str(lit()), c())
	case 2:
		n := 1 + rng.Intn(4)
		vals := make([]expr.Expr, n)
		for i := range vals {
			vals[i] = expr.Str(lit())
		}
		return expr.In(c(), vals...)
	case 3:
		pats := []string{stem + "-01%", "%3", "%m-02%", stem + "-_2%", "zzz%", "%"}
		return expr.Like(c(), pats[rng.Intn(len(pats))])
	default: // conjunction of two simpler ones
		return expr.And(
			randStrPredSimple(rng, sch, col, stem),
			randStrPredSimple(rng, sch, col, stem))
	}
}

func randStrPredSimple(rng *rand.Rand, sch []plan.ColDef, col, stem string) expr.Expr {
	for {
		if p := randStrPred(rng, sch, col, stem); p != nil {
			return p
		}
	}
}

// TestDictPredicateProperty is the dictionary oracle: random string
// predicates over dictionary-encoded and raw columns, executed with
// dictionaries on and off across tiers, must match the Volcano
// interpreter row for row.
func TestDictPredicateProperty(t *testing.T) {
	const rows = 4000
	tables := map[string]*storage.Table{
		"dict": mkStrTable(rows, true),
		"raw":  mkStrTable(rows, false),
	}
	engines := map[string]*Engine{
		"dict-opt":   New(Options{Workers: 4, Mode: ModeOptimized, Cost: Native()}),
		"dict-bc":    New(Options{Workers: 2, Mode: ModeBytecode}),
		"nodict-opt": New(Options{Workers: 4, Mode: ModeOptimized, Cost: Native(), NoDict: true}),
		"irinterp":   New(Options{Workers: 2, Mode: ModeIRInterp}),
	}
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		for tname, tb := range tables {
			sc := plan.NewScan(tb, "s", "u", "v")
			sch := sc.Schema()
			col, stem := "s", "item"
			if rng.Intn(2) == 1 {
				col, stem = "u", "word"
			}
			pred := randStrPred(rng, sch, col, stem)
			sc.Where(pred)
			var node plan.Node
			if trial%2 == 0 {
				// Group by the dictionary column: code hashing.
				node = plan.NewGroupBy(sc,
					[]expr.Expr{plan.C(sch, "s")}, []string{"s"},
					[]plan.AggExpr{
						{Func: plan.CountStar, Name: "n"},
						{Func: plan.Sum, Arg: plan.C(sch, "v"), Name: "sv"},
					})
			} else {
				// ORDER BY + LIMIT: the bounded top-k path. The key list
				// covers every column, so tied rows are identical and the
				// top-k multiset is deterministic.
				node = plan.NewOrderBy(sc, []plan.SortKey{
					{E: plan.C(sch, "s")},
					{E: plan.C(sch, "v"), Desc: true},
					{E: plan.C(sch, "u")},
				}, rng.Intn(25))
			}
			want, err := volcano.Run(node)
			if err != nil {
				t.Fatalf("trial %d %s: volcano: %v", trial, tname, err)
			}
			wantC := canon(want, typesOf(node.Schema()))
			for ename, e := range engines {
				if ename == "irinterp" && trial%8 != 0 {
					continue // the IR interpreter is slow; sample it
				}
				res, err := e.RunPlan(node, "dictprop")
				if err != nil {
					t.Fatalf("trial %d %s [%s] pred %v: %v", trial, tname, ename, pred, err)
				}
				gotC := canon(res.Rows, res.Types)
				if len(gotC) != len(wantC) {
					t.Fatalf("trial %d %s [%s] pred %v: %d rows, want %d",
						trial, tname, ename, pred, len(gotC), len(wantC))
				}
				for i := range gotC {
					if gotC[i] != wantC[i] {
						t.Fatalf("trial %d %s [%s] pred %v: row %d\n got %s\nwant %s",
							trial, tname, ename, pred, i, gotC[i], wantC[i])
					}
				}
			}
		}
	}
}

// TestDictFingerprintDistinct: the dictionary rewrite changes the emitted
// IR, so the same plan compiled with and without dictionaries must carry
// different plan fingerprints — a cached raw artifact can never serve a
// dictionary execution or vice versa.
func TestDictFingerprintDistinct(t *testing.T) {
	tb := mkStrTable(500, true)
	build := func() plan.Node {
		sc := plan.NewScan(tb, "s", "v")
		sch := sc.Schema()
		sc.Where(expr.Eq(plan.C(sch, "s"), expr.Str("item-010")))
		return plan.NewGroupBy(sc, []expr.Expr{plan.C(sch, "s")}, []string{"s"},
			[]plan.AggExpr{{Func: plan.Sum, Arg: plan.C(sch, "v"), Name: "sv"}})
	}
	fp := func(noDict bool) Fingerprint {
		cq, err := codegen.CompileOpts(build(), rt.NewMemory(), "fp",
			codegen.Options{JoinFilter: true, NoDict: noDict})
		if err != nil {
			t.Fatal(err)
		}
		return fingerprintOf(cq, vm.Options{}, false, false, false)
	}
	if fp(false) == fp(true) {
		t.Fatal("dict and raw compilations share a fingerprint")
	}
}

// TestDictCacheDistinct: engines with dictionaries on and off each warm-hit
// their own compilation cache on re-execution, return identical results,
// and report distinct fingerprints.
func TestDictCacheDistinct(t *testing.T) {
	tb := mkStrTable(2000, true)
	build := func() plan.Node {
		sc := plan.NewScan(tb, "s", "u", "v")
		sch := sc.Schema()
		sc.Where(expr.And(
			expr.Ge(plan.C(sch, "s"), expr.Str("item-010")),
			expr.Like(plan.C(sch, "u"), "word-01%")))
		return plan.NewGroupBy(sc, []expr.Expr{plan.C(sch, "s")}, []string{"s"},
			[]plan.AggExpr{{Func: plan.CountStar, Name: "n"}})
	}
	sums := map[bool]string{}
	fps := map[bool]string{}
	for _, noDict := range []bool{false, true} {
		e := New(Options{Workers: 2, Mode: ModeOptimized, Cost: Native(),
			CacheBytes: 64 << 20, NoDict: noDict})
		cold, err := e.RunPlan(build(), "dictcache")
		if err != nil {
			t.Fatal(err)
		}
		warm, err := e.RunPlan(build(), "dictcache")
		if err != nil {
			t.Fatal(err)
		}
		if !warm.Stats.CacheHit {
			t.Errorf("noDict=%v: warm run missed the cache", noDict)
		}
		if checksum(cold) != checksum(warm) {
			t.Errorf("noDict=%v: warm checksum diverged", noDict)
		}
		sums[noDict] = checksum(cold)
		fps[noDict] = cold.Stats.Fingerprint
	}
	if sums[false] != sums[true] {
		t.Error("dict on/off results differ")
	}
	if fps[false] == fps[true] {
		t.Error("dict on/off executions share a fingerprint")
	}
}

// TestDictStatsAndTrace: the counters and the trace event. A range
// predicate on the clustered column must rewrite to codes, prune string
// blocks, and emit EvDictRewrite; with NoDict everything stays zero and
// the result is unchanged.
func TestDictStatsAndTrace(t *testing.T) {
	tb := mkStrTable(8000, true)
	build := func() plan.Node {
		sc := plan.NewScan(tb, "s", "v")
		sch := sc.Schema()
		sc.Where(expr.Lt(plan.C(sch, "s"), expr.Str("item-010")))
		return plan.NewGroupBy(sc, []expr.Expr{plan.C(sch, "s")}, []string{"s"},
			[]plan.AggExpr{{Func: plan.Sum, Arg: plan.C(sch, "v"), Name: "sv"}})
	}
	e := New(Options{Workers: 2, Mode: ModeOptimized, Cost: Native(), Trace: true})
	res, err := e.RunPlan(build(), "dictstats")
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.DictHits == 0 || st.DictRewrites < st.DictHits {
		t.Errorf("implausible rewrite counters: rewrites=%d hits=%d", st.DictRewrites, st.DictHits)
	}
	if st.StringBlocksPruned == 0 {
		t.Errorf("no string blocks pruned (pruned=%d blocks total)", st.BlocksPruned)
	}
	sawEvent := false
	for _, ev := range res.Trace.Events() {
		if ev.Kind == EvDictRewrite && ev.Tuples > 0 {
			sawEvent = true
		}
	}
	if !sawEvent {
		t.Error("no EvDictRewrite trace event")
	}

	nd := New(Options{Workers: 2, Mode: ModeOptimized, Cost: Native(), NoDict: true})
	raw, err := nd.RunPlan(build(), "dictstats")
	if err != nil {
		t.Fatal(err)
	}
	if raw.Stats.DictRewrites != 0 || raw.Stats.StringBlocksPruned != 0 {
		t.Errorf("NoDict run reported dictionary work: %+v", raw.Stats)
	}
	if checksum(res) != checksum(raw) {
		t.Error("dict on/off results differ")
	}
}
