package exec

import (
	"context"
	"math/rand"
	"testing"

	"aqe/internal/opt"
	"aqe/internal/synth"
	"aqe/internal/tpch"
	"aqe/internal/volcano"
)

// joinOrderQueries are the multi-join TPC-H queries with logical forms.
var joinOrderQueries = []int{3, 5, 10}

// TestJoinOrderInvariance is the differential oracle for the optimizer:
// for each multi-join TPC-H query, the hand-built plan, the optimizer's
// plan, and several random valid join orders must produce bit-identical
// results under every execution mode.
func TestJoinOrderInvariance(t *testing.T) {
	cat := diffCat()
	modes := []Mode{ModeBytecode, ModeUnoptimized, ModeOptimized, ModeAdaptive, ModeIRInterp}
	want := make(map[int]string)
	for _, mode := range modes {
		e := New(Options{Workers: 4, Mode: mode, Cost: Native(), MorselSize: 512})
		for _, qn := range joinOrderQueries {
			hand, err := e.RunPlan(tpch.Query(cat, qn).Stages[0].Build(nil), "hand")
			if err != nil {
				t.Fatalf("%v Q%d hand: %v", mode, qn, err)
			}
			sum := checksum(hand)
			if mode == modes[0] {
				want[qn] = sum
			} else if sum != want[qn] {
				t.Errorf("%v Q%d: hand checksum %s, want %s", mode, qn, sum, want[qn])
			}

			lg, ok := tpch.Logical(cat, qn)
			if !ok {
				t.Fatalf("Q%d has no logical form", qn)
			}
			prep, err := opt.Order(lg)
			if err != nil {
				t.Fatalf("Q%d: %v", qn, err)
			}
			res, err := e.RunPlan(prep.Root, "opt")
			if err != nil {
				t.Fatalf("%v Q%d opt: %v", mode, qn, err)
			}
			if s := checksum(res); s != want[qn] {
				t.Errorf("%v Q%d: optimizer order %v checksum %s, want %s",
					mode, qn, prep.OrderNames(), s, want[qn])
			}

			rng := rand.New(rand.NewSource(int64(qn)*31 + 7))
			for ri := 0; ri < 3; ri++ {
				root, err := opt.RandomOrder(lg, rng.Intn)
				if err != nil {
					t.Fatalf("Q%d random: %v", qn, err)
				}
				res, err := e.RunPlan(root, "rand")
				if err != nil {
					t.Fatalf("%v Q%d random %d: %v", mode, qn, ri, err)
				}
				if s := checksum(res); s != want[qn] {
					t.Errorf("%v Q%d: random order %d checksum %s, want %s",
						mode, qn, ri, s, want[qn])
				}
			}
		}
	}
}

// TestJoinOrderInvarianceForcedReplan re-runs the oracle with replanning
// force-triggered at every pipeline breaker (threshold below the minimum
// possible misestimate factor): results must not move no matter how many
// times the plan is rebuilt mid-query.
func TestJoinOrderInvarianceForcedReplan(t *testing.T) {
	cat := diffCat()
	ctx := context.Background()
	modes := []Mode{ModeBytecode, ModeUnoptimized, ModeOptimized, ModeAdaptive, ModeIRInterp}
	want := make(map[int]string)
	for _, qn := range joinOrderQueries {
		base := New(Options{Workers: 4, Mode: ModeBytecode, Cost: Native(), MorselSize: 512})
		res, err := base.RunPlan(tpch.Query(cat, qn).Stages[0].Build(nil), "hand")
		if err != nil {
			t.Fatal(err)
		}
		want[qn] = checksum(res)
	}
	for _, mode := range modes {
		e := New(Options{Workers: 4, Mode: mode, Cost: Native(), MorselSize: 512,
			ReplanThreshold: 0.5, MaxReplans: 4})
		for _, qn := range joinOrderQueries {
			lg, _ := tpch.Logical(cat, qn)
			prep, err := opt.Order(lg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.RunPlanReplan(ctx, prep.Root, "forced", prep)
			if err != nil {
				t.Fatalf("%v Q%d forced replan: %v", mode, qn, err)
			}
			if s := checksum(res); s != want[qn] {
				t.Errorf("%v Q%d: forced-replan checksum %s, want %s (replans=%d, order %v)",
					mode, qn, s, want[qn], res.Stats.Replans, prep.OrderNames())
			}
		}
	}
}

// TestMisestimateReplans is the end-to-end adaptive test: the skewed
// workload's first build observes ~10^4 more rows than estimated, the
// engine replans mid-query, and the result still matches the volcano
// oracle bit-for-bit.
func TestMisestimateReplans(t *testing.T) {
	fact, dimA, dimB := synth.MisestimateTables(30000)
	lg := synth.MisestimateLogical(fact, dimA, dimB)

	fresh, err := opt.Order(lg)
	if err != nil {
		t.Fatal(err)
	}
	wantRows, err := volcano.Run(fresh.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantRows) != 1 {
		t.Fatalf("scalar aggregate returned %d rows", len(wantRows))
	}

	prep, err := opt.Order(lg)
	if err != nil {
		t.Fatal(err)
	}
	names := prep.OrderNames()
	if len(names) != 3 || names[1] != "mdima" {
		t.Fatalf("initial order %v: expected the misestimated mdima built first", names)
	}
	e := New(Options{Workers: 4, Mode: ModeOptimized, Cost: Native(), MorselSize: 512})
	res, err := e.RunPlanReplan(context.Background(), prep.Root, "misestimate", prep)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Replans < 1 {
		t.Fatalf("Stats.Replans = %d, want >= 1 (EstCardErr %.1f)",
			res.Stats.Replans, res.Stats.EstCardErr)
	}
	if res.Stats.EstCardErr < DefaultReplanThreshold {
		t.Errorf("EstCardErr = %.1f, want >= %g", res.Stats.EstCardErr, DefaultReplanThreshold)
	}
	if got := prep.OrderNames(); got[1] != "mdimb" {
		t.Errorf("replanned order %v: expected mdimb built first", got)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != wantRows[0][0].I ||
		res.Rows[0][1].I != wantRows[0][1].I {
		t.Fatalf("replanned result %v, volcano %v", res.Rows, wantRows)
	}

	// The same query without a replanner must agree too (and not replan).
	plain, err := opt.Order(lg)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := e.RunPlanCtx(context.Background(), plain.Root, "misestimate-plain")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Replans != 0 {
		t.Errorf("plain run replanned %d times", res2.Stats.Replans)
	}
	if res2.Rows[0][0].I != wantRows[0][0].I {
		t.Fatalf("plain result %v, volcano %v", res2.Rows, wantRows)
	}
}
