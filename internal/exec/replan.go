package exec

import (
	"time"

	"aqe/internal/codegen"
	"aqe/internal/plan"
	"aqe/internal/rt"
)

// Replanner is the feedback interface of mid-query reoptimization,
// implemented by plan producers (internal/opt). The engine reports every
// observed build-side cardinality at a pipeline-breaker finalize through
// Observe; when the observation diverges from the plan's estimate past
// the misestimate threshold, the engine asks for a revised plan through
// Replan and — if the join order changed — restarts execution on it.
//
// The interface lives here (not in internal/opt) so exec never depends on
// the optimizer: hand-built plans run with a nil Replanner and behave
// exactly as before.
type Replanner interface {
	// Observe records the true cardinality of one join's build side.
	Observe(j *plan.Join, observed int64)
	// Replan returns a revised plan under the observations so far, or
	// (nil, false) when the corrected estimates confirm the current plan.
	Replan() (plan.Node, bool)
}

// Replan-protocol defaults (see Options.ReplanThreshold / MaxReplans).
const (
	DefaultReplanThreshold = 8.0
	DefaultMaxReplans      = 2
)

// reoptState is the per-query replan budget, shared across restart
// attempts of one RunPlanReplan call.
type reoptState struct {
	rp        Replanner
	threshold float64
	remaining int
}

// replanSignal is the error that unwinds a query when the orderer splices
// in a new plan; RunPlanReplan catches it and restarts on Node.
type replanSignal struct{ node plan.Node }

func (r *replanSignal) Error() string { return "exec: mid-query replan requested" }

// cardErr is the symmetric misestimate factor max(est/obs, obs/est),
// floored at 1 (an exact estimate has error 1).
func cardErr(est, obs int64) float64 {
	e, o := float64(est), float64(obs)
	if e < 1 {
		e = 1
	}
	if o < 1 {
		o = 1
	}
	if e > o {
		return e / o
	}
	return o / e
}

// observeBuild runs after a join hash table finalizes: it compares the
// observed build cardinality against the plan's estimate, feeds the
// observation to the Replanner, and — past the threshold, within the
// replan budget — discards the current execution and restarts on the
// revised plan. The left-deep plans the optimizer emits make the
// observation exact: every build side is a single filtered base relation.
//
// Replan protocol (DESIGN.md): state *discarded* at the breaker is every
// hash table built so far (the new order needs different build sides, and
// rebuilding from base tables is what keeps every tier's semantics
// identical); state *kept* is the set of observed true cardinalities,
// which re-enter the orderer as exact overrides, plus all admission and
// statistics context of the query.
func (qr *queryRun) observeBuild(pl *codegen.Pipeline, observed int64) {
	j := pl.BuildOf
	if j == nil || j.Est <= 0 || qr.cancelled.Load() {
		return
	}
	ratio := cardErr(j.Est, observed)
	if ratio > qr.stats.EstCardErr {
		qr.stats.EstCardErr = ratio
	}
	ro := qr.reopt
	if ro == nil {
		return
	}
	ro.rp.Observe(j, observed)
	if ratio < ro.threshold || ro.remaining <= 0 {
		return
	}
	newRoot, changed := ro.rp.Replan()
	if !changed {
		return
	}
	ro.remaining--
	if qr.trace != nil {
		now := qr.trace.Since(time.Now())
		qr.trace.Add(Event{Kind: EvReplan, Pipeline: pl.ID, Label: pl.Label,
			Worker: -1, Start: now, End: now, Tuples: observed})
	}
	qr.fail(&replanSignal{node: newRoot})
	// Park stray background compiles of the abandoned attempt without
	// recording a cancellation: the query is restarting, not dying.
	qr.cancelled.Store(true)
	panic(&rt.Trap{Code: rt.TrapUser})
}
