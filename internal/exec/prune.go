package exec

import (
	"aqe/internal/codegen"
	"aqe/internal/storage"
)

// pruneMask marks the zone-map blocks of a scan that the pipeline's
// sargable conjuncts prove empty: the morsel dispatcher advances the claim
// cursor past marked blocks without invoking a kernel.
type pruneMask struct {
	blockRows    int64
	pruned       []bool
	prunedBlocks int64
	prunedTuples int64

	// prunedStrBlocks counts pruned blocks whose deciding conjunct was a
	// string condition over dictionary codes (Stats.StringBlocksPruned).
	prunedStrBlocks int64
}

// buildPruneMask evaluates the prune conditions against the table's zone
// maps. Conditions whose column has no fresh zone map (never built, or
// stale after appends) contribute nothing; all usable maps must share one
// block size. Returns nil when nothing can be pruned — the dispatcher then
// keeps its lock-free fast path.
func buildPruneMask(t *storage.Table, conds []codegen.PruneCond) *pruneMask {
	rows := t.Rows()
	if rows == 0 {
		return nil
	}
	type zoned struct {
		pc codegen.PruneCond
		zm *storage.ZoneMap
	}
	var usable []zoned
	blockRows := 0
	for _, pc := range conds {
		zm := pc.Col.Zone()
		if zm == nil || zm.Rows != rows {
			continue
		}
		if blockRows == 0 {
			blockRows = zm.BlockRows
		}
		if zm.BlockRows != blockRows {
			continue
		}
		usable = append(usable, zoned{pc, zm})
	}
	if len(usable) == 0 {
		return nil
	}
	nb := (rows + blockRows - 1) / blockRows
	pm := &pruneMask{blockRows: int64(blockRows), pruned: make([]bool, nb)}
	for b := 0; b < nb; b++ {
		for _, z := range usable {
			var may bool
			if z.pc.Float() {
				may = z.pc.BlockMayMatchF(z.zm.MinF[b], z.zm.MaxF[b])
			} else {
				may = z.pc.BlockMayMatch(z.zm.MinI[b], z.zm.MaxI[b])
			}
			if !may {
				pm.pruned[b] = true
				if z.pc.Col.Kind == storage.String {
					pm.prunedStrBlocks++
				}
				break
			}
		}
		if pm.pruned[b] {
			end := (b + 1) * blockRows
			if end > rows {
				end = rows
			}
			pm.prunedBlocks++
			pm.prunedTuples += int64(end - b*blockRows)
		}
	}
	if pm.prunedBlocks == 0 {
		return nil
	}
	return pm
}
