package exec

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"aqe/internal/expr"
	"aqe/internal/plan"
	"aqe/internal/storage"
	"aqe/internal/tpch"
	"aqe/internal/volcano"
)

// zoneCat is a TPC-H catalog with fine-grained zone maps (512-row blocks:
// at SF 0.003 the default 64k blocks would cover whole tables, and the
// differential test wants pruning to actually fire).
var zoneCat = sync.OnceValue(func() *storage.Catalog {
	cat := tpch.Gen(0.003)
	cat.BuildZoneMaps(512)
	return cat
})

// TestZoneMapDifferential22 runs all 22 TPC-H queries under all five
// execution modes with zone-map pruning on and off and asserts the result
// checksums never move — pruning must be invisible in every tier. It also
// asserts that pruning actually fired somewhere, so the equality isn't
// vacuous.
func TestZoneMapDifferential22(t *testing.T) {
	cat := zoneCat()
	modes := []Mode{ModeBytecode, ModeUnoptimized, ModeOptimized, ModeAdaptive, ModeIRInterp}
	want := make(map[int]string)
	var pruned int64
	for _, mode := range modes {
		for _, off := range []bool{true, false} {
			e := New(Options{Workers: 4, Mode: mode, Cost: Native(),
				MorselSize: 256, NoZoneMaps: off})
			for qn := 1; qn <= 22; qn++ {
				res, err := e.Run(tpch.Query(cat, qn))
				if err != nil {
					t.Fatalf("%v(off=%v) Q%d: %v", mode, off, qn, err)
				}
				sum := checksum(res)
				if mode == ModeBytecode && off {
					want[qn] = sum
				} else if sum != want[qn] {
					t.Errorf("%v(off=%v) Q%d: checksum %s, want %s",
						mode, off, qn, sum, want[qn])
				}
				if off && res.Stats.TuplesPruned != 0 {
					t.Errorf("%v Q%d: NoZoneMaps run pruned %d tuples",
						mode, qn, res.Stats.TuplesPruned)
				}
				if !off {
					pruned += res.Stats.TuplesPruned
				}
			}
		}
	}
	if pruned == 0 {
		t.Error("no tuples pruned across 22 queries — differential is vacuous")
	}
}

// mkClustered builds a table whose fixed-width columns correlate with the
// row index (the clustered layout zone maps exploit), plus a String
// column that must never contribute to pruning.
func mkClustered(rows int, rng *rand.Rand) *storage.Table {
	a := storage.NewColumn("a", storage.Int64)
	c := storage.NewColumn("c", storage.Decimal)
	dt := storage.NewColumn("dt", storage.Date)
	f := storage.NewColumn("f", storage.Float64)
	ch := storage.NewColumn("ch", storage.Char)
	s := storage.NewColumn("s", storage.String)
	for i := 0; i < rows; i++ {
		a.AppendInt64(int64(i + rng.Intn(40)))
		c.AppendInt64(int64(i*3 + rng.Intn(150)))
		dt.AppendInt64(int64(8000 + i/4 + rng.Intn(8)))
		f.AppendFloat64(float64(i) + rng.Float64()*30)
		ch.AppendChar(byte('A' + (i*20)/rows))
		s.AppendString(fmt.Sprintf("row-%d", i))
	}
	return storage.NewTable("clustered", a, c, dt, f, ch, s)
}

// TestZoneMapPropertyRandomPredicates throws random sargable conjunctions
// at a clustered table and checks three-way agreement per trial: volcano,
// engine with pruning, engine without. Thresholds are drawn to land
// inside, outside, and exactly on block boundaries.
func TestZoneMapPropertyRandomPredicates(t *testing.T) {
	rng := rand.New(rand.NewSource(20180416))
	const rows, blockRows = 2000, 64
	tbl := mkClustered(rows, rng)
	tbl.BuildZoneMaps(blockRows)

	on := New(Options{Workers: 3, Mode: ModeOptimized, Cost: Native(), MorselSize: 32})
	off := New(Options{Workers: 3, Mode: ModeBytecode, MorselSize: 32, NoZoneMaps: true})

	mkConj := func(sch []plan.ColDef) expr.Expr {
		// A threshold near a block-boundary row index, sometimes far
		// outside the data range.
		idx := int64(blockRows*rng.Intn(rows/blockRows) + rng.Intn(3) - 1)
		if rng.Intn(8) == 0 {
			idx = int64(rng.Intn(3)*rows - rows) // -rows, 0, rows
		}
		type cmp2 func(l, r expr.Expr) expr.Expr
		ops := []cmp2{expr.Eq, expr.Ne, expr.Lt, expr.Le, expr.Gt, expr.Ge}
		op := ops[rng.Intn(len(ops))]
		var l, r expr.Expr
		switch rng.Intn(5) {
		case 0:
			l, r = plan.C(sch, "a"), expr.Int(idx)
		case 1:
			// Decimal column (scale 2): sometimes a coarser-scale or
			// int constant (prunable after rescale), sometimes scale 3
			// (column would be rescaled at runtime — not prunable).
			switch rng.Intn(3) {
			case 0:
				l, r = plan.C(sch, "c"), expr.Dec(idx*300, 2)
			case 1:
				l, r = plan.C(sch, "c"), expr.Int(idx*3)
			default:
				l, r = plan.C(sch, "c"), expr.Dec(idx*3000, 3)
			}
		case 2:
			l, r = plan.C(sch, "dt"), expr.Date(8000+idx/4)
		case 3:
			l, r = plan.C(sch, "f"), expr.Float(float64(idx))
		default:
			l, r = plan.C(sch, "ch"), expr.Ch(byte('A'+rng.Intn(22)))
		}
		if rng.Intn(2) == 0 {
			l, r = r, l // constant on the left: extraction must flip
		}
		return op(l, r)
	}

	var prunedTotal int64
	for trial := 0; trial < 60; trial++ {
		// Draw the predicate once per trial; every build (volcano + both
		// engines) must see the same condition.
		conj := make([]expr.Expr, 1+rng.Intn(3))
		for i := range conj {
			conj[i] = mkConj(plan.NewScan(tbl, "a", "c", "dt", "f", "ch", "s").Schema())
		}
		build := func() plan.Node {
			s := plan.NewScan(tbl, "a", "c", "dt", "f", "ch", "s")
			sch := s.Schema()
			if len(conj) == 1 {
				s.Where(conj[0])
			} else {
				s.Where(expr.And(conj...))
			}
			return plan.NewGroupBy(s, nil, nil, []plan.AggExpr{
				{Func: plan.CountStar, Name: "n"},
				{Func: plan.Sum, Arg: plan.C(sch, "a"), Name: "sa"},
				{Func: plan.Min, Arg: plan.C(sch, "c"), Name: "mc"},
			})
		}
		ref := build()
		want, err := volcano.Run(ref)
		if err != nil {
			t.Fatalf("trial %d: volcano: %v", trial, err)
		}
		wantC := canon(want, typesOf(ref.Schema()))
		for name, e := range map[string]*Engine{"on": on, "off": off} {
			res, err := e.RunPlan(build(), "prop")
			if err != nil {
				t.Fatalf("trial %d [%s]: %v", trial, name, err)
			}
			gotC := canon(res.Rows, res.Types)
			if len(gotC) != len(wantC) {
				t.Fatalf("trial %d [%s]: %d rows, want %d", trial, name, len(gotC), len(wantC))
			}
			for i := range gotC {
				if gotC[i] != wantC[i] {
					t.Fatalf("trial %d [%s]: row %d\n got %s\nwant %s",
						trial, name, i, gotC[i], wantC[i])
				}
			}
			if name == "on" {
				prunedTotal += res.Stats.TuplesPruned
			}
		}
	}
	if prunedTotal == 0 {
		t.Error("60 random trials never pruned — property test is vacuous")
	}
}

// countAll builds a filtered COUNT(*)+SUM plan over tbl.
func countAll(tbl *storage.Table, filter func(sch []plan.ColDef) expr.Expr) plan.Node {
	s := plan.NewScan(tbl, "a", "s")
	sch := s.Schema()
	s.Where(filter(sch))
	return plan.NewGroupBy(s, nil, nil, []plan.AggExpr{
		{Func: plan.CountStar, Name: "n"},
	})
}

// runCount executes the plan and returns (count, stats).
func runCount(t *testing.T, e *Engine, node plan.Node) (int64, Stats) {
	t.Helper()
	res, err := e.RunPlan(node, "edge")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("%d result rows, want 1", len(res.Rows))
	}
	return res.Rows[0][0].I, res.Stats
}

func TestZoneMapEdgeCases(t *testing.T) {
	e := New(Options{Workers: 2, Mode: ModeBytecode, MorselSize: 16})
	mk := func(rows int) *storage.Table {
		a := storage.NewColumn("a", storage.Int64)
		s := storage.NewColumn("s", storage.String)
		for i := 0; i < rows; i++ {
			a.AppendInt64(int64(i))
			s.AppendString(fmt.Sprintf("v%d", i%3))
		}
		return storage.NewTable("edge", a, s)
	}

	t.Run("empty-table", func(t *testing.T) {
		tbl := mk(0)
		tbl.BuildZoneMaps(64)
		n, st := runCount(t, e, countAll(tbl, func(sch []plan.ColDef) expr.Expr {
			return expr.Gt(plan.C(sch, "a"), expr.Int(5))
		}))
		if n != 0 || st.TuplesPruned != 0 {
			t.Errorf("count %d, pruned %d; want 0, 0", n, st.TuplesPruned)
		}
	})

	t.Run("single-partial-block", func(t *testing.T) {
		tbl := mk(40) // one partial 64-row block
		tbl.BuildZoneMaps(64)
		n, st := runCount(t, e, countAll(tbl, func(sch []plan.ColDef) expr.Expr {
			return expr.Gt(plan.C(sch, "a"), expr.Int(1000))
		}))
		if n != 0 {
			t.Errorf("count %d, want 0", n)
		}
		if st.TuplesPruned != 40 || st.BlocksPruned != 1 {
			t.Errorf("pruned %d tuples / %d blocks; want 40 / 1",
				st.TuplesPruned, st.BlocksPruned)
		}
	})

	t.Run("string-predicate-no-pruning", func(t *testing.T) {
		tbl := mk(200)
		tbl.BuildZoneMaps(64)
		n, st := runCount(t, e, countAll(tbl, func(sch []plan.ColDef) expr.Expr {
			return expr.Eq(plan.C(sch, "s"), expr.Str("does-not-exist"))
		}))
		if n != 0 {
			t.Errorf("count %d, want 0", n)
		}
		if st.TuplesPruned != 0 || st.PrunableTuples != 0 {
			t.Errorf("String predicate pruned %d/%d tuples; want none",
				st.TuplesPruned, st.PrunableTuples)
		}
	})

	t.Run("predicate-spanning-block-boundary", func(t *testing.T) {
		tbl := mk(256) // 4 full 64-row blocks, a = 0..255
		tbl.BuildZoneMaps(64)
		// a >= 100: blocks 0 (0..63) pruned; block 1 (64..127) straddles
		// the threshold and must be kept and filtered in the kernel.
		n, st := runCount(t, e, countAll(tbl, func(sch []plan.ColDef) expr.Expr {
			return expr.Ge(plan.C(sch, "a"), expr.Int(100))
		}))
		if n != 156 {
			t.Errorf("count %d, want 156", n)
		}
		if st.BlocksPruned != 1 || st.TuplesPruned != 64 {
			t.Errorf("pruned %d blocks / %d tuples; want 1 / 64",
				st.BlocksPruned, st.TuplesPruned)
		}
	})

	t.Run("exact-block-boundary", func(t *testing.T) {
		tbl := mk(256)
		tbl.BuildZoneMaps(64)
		// a >= 128 falls exactly on the block 1/2 boundary: blocks 0 and 1
		// prune entirely (max 127 < 128), block 2 keeps all rows.
		n, st := runCount(t, e, countAll(tbl, func(sch []plan.ColDef) expr.Expr {
			return expr.Ge(plan.C(sch, "a"), expr.Int(128))
		}))
		if n != 128 {
			t.Errorf("count %d, want 128", n)
		}
		if st.BlocksPruned != 2 || st.TuplesPruned != 128 {
			t.Errorf("pruned %d blocks / %d tuples; want 2 / 128",
				st.BlocksPruned, st.TuplesPruned)
		}
	})

	t.Run("stale-map-after-append", func(t *testing.T) {
		tbl := mk(128)
		tbl.BuildZoneMaps(64)
		// Appends invalidate the maps; pruning must back off, and the
		// appended rows must be visible.
		tbl.Col("a").AppendInt64(5000)
		tbl.Col("s").AppendString("late")
		n, st := runCount(t, e, countAll(tbl, func(sch []plan.ColDef) expr.Expr {
			return expr.Gt(plan.C(sch, "a"), expr.Int(4000))
		}))
		if n != 1 {
			t.Errorf("count %d, want 1 (the appended row)", n)
		}
		if st.TuplesPruned != 0 {
			t.Errorf("stale zone map pruned %d tuples", st.TuplesPruned)
		}
	})
}

// TestPruneProgressAccounting is the controller-facing contract (§III-C):
// the dispatcher never hands out a morsel intersecting a pruned block, so
// every rate sample reflects only executed tuples, and the remaining-work
// extrapolation (work - done) drains to exactly zero — pruned tuples are
// not part of the work the controller amortizes a compilation over.
func TestPruneProgressAccounting(t *testing.T) {
	const total, blockRows = 10_000, 256
	opts := Options{MorselSize: 32, MorselCap: 512, MorselGrowEvery: 4}
	nb := (total + blockRows - 1) / blockRows
	pruned := make([]bool, nb)
	var prunedTuples int64
	for b := 0; b < nb; b++ {
		if b%3 == 1 || b == nb-1 { // interior runs plus the partial tail
			pruned[b] = true
			end := (b + 1) * blockRows
			if end > total {
				end = total
			}
			prunedTuples += int64(end - b*blockRows)
		}
	}
	pr := newProgress(total, 4, opts)
	pr.setPruneMask(&pruneMask{blockRows: blockRows, pruned: pruned,
		prunedTuples: prunedTuples})

	if pr.work != total-prunedTuples {
		t.Fatalf("work = %d, want %d", pr.work, total-prunedTuples)
	}
	var executed int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				begin, end, ok := pr.claim()
				if !ok {
					return
				}
				if begin >= end {
					t.Errorf("empty claim [%d,%d)", begin, end)
					return
				}
				for b := begin / blockRows; b*blockRows < end; b++ {
					if pruned[b] {
						t.Errorf("claim [%d,%d) intersects pruned block %d", begin, end, b)
						return
					}
				}
				pr.report(w, end-begin, time.Microsecond)
				mu.Lock()
				executed += end - begin
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if executed != pr.work {
		t.Errorf("executed %d tuples, want work = %d", executed, pr.work)
	}
	// The controller's remaining-work term: must be exactly zero once all
	// non-pruned tuples are done. With pr.total instead of pr.work it
	// would still see prunedTuples outstanding forever.
	if rem := pr.work - pr.done.Load(); rem != 0 {
		t.Errorf("remaining work %d after drain, want 0", rem)
	}
	if pr.total-pr.done.Load() != prunedTuples {
		t.Errorf("done = %d, want %d (executed only)", pr.done.Load(), pr.work)
	}
	if pr.avgRate() <= 0 {
		t.Error("no rate samples despite executed morsels")
	}
}

// TestMorselGrowthOptions pins the configurable growth schedule: size
// doubles every MorselGrowEvery claims and clamps at MorselCap.
func TestMorselGrowthOptions(t *testing.T) {
	pr := newProgress(1<<40, 1, Options{MorselSize: 16, MorselCap: 64, MorselGrowEvery: 2})
	want := []int64{16, 16, 32, 32, 64, 64, 64, 64, 64, 64}
	for i, w := range want {
		begin, end, ok := pr.claim()
		if !ok {
			t.Fatalf("claim %d: exhausted", i)
		}
		if end-begin != w {
			t.Errorf("claim %d: size %d, want %d", i, end-begin, w)
		}
	}
	// Engine defaults preserve the historical schedule (base 2048, ×2
	// every 8 claims, cap 64k).
	e := New(Options{})
	if e.opts.MorselCap != 65536 || e.opts.MorselGrowEvery != 8 {
		t.Errorf("defaults: cap %d, growEvery %d; want 65536, 8",
			e.opts.MorselCap, e.opts.MorselGrowEvery)
	}
}
