package exec

import (
	"fmt"
	"testing"
	"time"

	"aqe/internal/asm"
)

// TestNativeStaticMode runs the stress plan in ModeNative and checks the
// tier-6 counters: on platforms with a backend the pipelines assemble and
// execute native code; elsewhere every pipeline silently degrades to the
// optimized closure tier. Results must match bytecode either way.
func TestNativeStaticMode(t *testing.T) {
	ref, err := New(Options{Workers: 1, Mode: ModeBytecode}).RunPlan(stressPlan(), "ref")
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprint(canon(ref.Rows, ref.Types))

	e := New(Options{Workers: 2, Mode: ModeNative, Cost: Native()})
	res, err := e.RunPlan(stressPlan(), "native")
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(canon(res.Rows, res.Types)); got != want {
		t.Error("native mode result diverged from bytecode")
	}
	st := res.Stats
	if asm.Supported() {
		if st.NativeCompiles == 0 {
			t.Errorf("no native compilations on a supported platform: %+v", st)
		}
		if st.NativeMorsels == 0 {
			t.Errorf("no morsels executed natively: %+v", st)
		}
	} else if st.NativeFallbacks == 0 {
		t.Errorf("unsupported platform recorded no fallbacks: %+v", st)
	}
	if st.NativeCompiles+st.NativeFallbacks == 0 {
		t.Error("ModeNative neither compiled natively nor fell back")
	}
}

// TestNativeGracefulDegradation simulates executable-memory allocation
// failure (and doubles as the no-backend-GOARCH test elsewhere): a
// ModeNative query must complete silently in the closure tier with the
// fallback counter raised and no morsel ever executing native code.
func TestNativeGracefulDegradation(t *testing.T) {
	ref, err := New(Options{Workers: 1, Mode: ModeBytecode}).RunPlan(stressPlan(), "ref")
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprint(canon(ref.Rows, ref.Types))

	asm.SetAllocFailure(true)
	defer asm.SetAllocFailure(false)
	e := New(Options{Workers: 2, Mode: ModeNative, Cost: Native()})
	res, err := e.RunPlan(stressPlan(), "degraded")
	if err != nil {
		t.Fatalf("ModeNative did not degrade gracefully: %v", err)
	}
	if got := fmt.Sprint(canon(res.Rows, res.Types)); got != want {
		t.Error("degraded result diverged from bytecode")
	}
	st := res.Stats
	if st.NativeFallbacks == 0 {
		t.Errorf("no fallbacks recorded under forced alloc failure: %+v", st)
	}
	if st.NativeMorsels != 0 {
		t.Errorf("%d morsels ran natively despite alloc failure", st.NativeMorsels)
	}
	for i, l := range st.FinalLevels {
		if l > LevelOptimized {
			t.Errorf("pipeline %d finished in tier %v despite alloc failure", i, l)
		}
	}
}

// TestNativeAdaptiveDegradation: the controller proposes tier 6, assembly
// fails, and the pipeline continues in a closure tier — the failure is
// latched so the controller stops proposing the tier for that function.
func TestNativeAdaptiveDegradation(t *testing.T) {
	if !asm.Supported() {
		t.Skip("no native backend; the controller never proposes tier 6 here")
	}
	ref, err := New(Options{Workers: 1, Mode: ModeBytecode}).RunPlan(stressPlan(), "ref")
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprint(canon(ref.Rows, ref.Types))

	asm.SetAllocFailure(true)
	defer asm.SetAllocFailure(false)
	cost := Native()
	cost.UnoptBase, cost.UnoptPerInstr, cost.OptBase, cost.OptPerInstr = 0, 0, 0, 0
	cost.NativeBase, cost.NativePerInstr = 0, 0
	e := New(Options{Workers: 4, Mode: ModeAdaptive, Cost: cost, MorselSize: 32})
	// The fallback ticks on a compile-pool worker; slow the morsel stream
	// down a little so the pipeline is still draining when the failed
	// assembly reports back, and retry in case it loses the race anyway.
	// The first proposal is always tier 6 (cheapest compile, highest
	// speedup), so any compilation implies a native attempt.
	e.morselHook = func(int, *Handle, int) { time.Sleep(200 * time.Microsecond) }
	compiled := 0
	for attempt := 0; attempt < 25; attempt++ {
		res, err := e.RunPlan(stressPlan(), "adaptive-degraded")
		if err != nil {
			t.Fatalf("adaptive query failed under native alloc failure: %v", err)
		}
		if got := fmt.Sprint(canon(res.Rows, res.Types)); got != want {
			t.Fatal("adaptive degraded result diverged from bytecode")
		}
		if res.Stats.NativeMorsels != 0 {
			t.Fatalf("%d morsels ran natively despite alloc failure", res.Stats.NativeMorsels)
		}
		compiled += res.Stats.Compilations
		if res.Stats.NativeFallbacks > 0 {
			return
		}
	}
	if compiled == 0 {
		t.Skip("controller never compiled on this machine; nothing to verify")
	}
	t.Errorf("controller compiled %d times but never recorded a native fallback", compiled)
}

// TestNoNativeDistinctFingerprint: disabling the native tier changes the
// plan fingerprint, so NoNative runs never share cache entries (and thus
// never receive assembled code) with native-enabled runs.
func TestNoNativeDistinctFingerprint(t *testing.T) {
	a, err := New(Options{Workers: 1, Mode: ModeBytecode}).RunPlan(stressPlan(), "a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{Workers: 1, Mode: ModeBytecode, NoNative: true}).RunPlan(stressPlan(), "b")
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.Fingerprint == b.Stats.Fingerprint {
		t.Errorf("NoNative shares fingerprint %s with the default configuration",
			a.Stats.Fingerprint)
	}
}

// TestNoRegAllocDistinctFingerprint: the slot-per-op escape hatch changes
// the plan fingerprint, so the two native backends never share cached
// machine code.
func TestNoRegAllocDistinctFingerprint(t *testing.T) {
	a, err := New(Options{Workers: 1, Mode: ModeBytecode}).RunPlan(stressPlan(), "a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{Workers: 1, Mode: ModeBytecode, NoRegAlloc: true}).RunPlan(stressPlan(), "b")
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.Fingerprint == b.Stats.Fingerprint {
		t.Errorf("NoRegAlloc shares fingerprint %s with the default configuration",
			a.Stats.Fingerprint)
	}
}

// TestNativeNoRegAllocMode runs ModeNative with the slot-per-op backend
// forced and checks it still assembles and executes machine code with
// results matching bytecode.
func TestNativeNoRegAllocMode(t *testing.T) {
	ref, err := New(Options{Workers: 1, Mode: ModeBytecode}).RunPlan(stressPlan(), "ref")
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprint(canon(ref.Rows, ref.Types))

	e := New(Options{Workers: 2, Mode: ModeNative, Cost: Native(), NoRegAlloc: true})
	res, err := e.RunPlan(stressPlan(), "native-noregalloc")
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(canon(res.Rows, res.Types)); got != want {
		t.Error("slot-per-op native result diverged from bytecode")
	}
	if asm.Supported() && res.Stats.NativeMorsels == 0 {
		t.Errorf("no morsels executed natively: %+v", res.Stats)
	}
}

// TestNativeDemotion: the controller must demote a pipeline out of native
// code when its measured morsel rate falls far short of what the cost
// model predicted at promotion time. An absurd SpeedupNative makes any
// real pipeline underperform its prediction, so promotion is always
// followed by demotion; the demotion latches the native failure, ticks
// NativeFallbacks, and leaves the pipeline in the optimized tier.
func TestNativeDemotion(t *testing.T) {
	if !asm.Supported() {
		t.Skip("no native backend; the controller never proposes tier 6 here")
	}
	ref, err := New(Options{Workers: 1, Mode: ModeBytecode}).RunPlan(stressPlan(), "ref")
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprint(canon(ref.Rows, ref.Types))

	cost := Native()
	cost.UnoptBase, cost.UnoptPerInstr, cost.OptBase, cost.OptPerInstr = 0, 0, 0, 0
	cost.NativeBase, cost.NativePerInstr = 0, 0
	// Native code cannot possibly be 1e9x faster than bytecode: the
	// measured rate lands below demoteMargin of the prediction as soon as
	// the warmup evaluations pass.
	cost.SpeedupNative = 1e9
	e := New(Options{Workers: 4, Mode: ModeAdaptive, Cost: cost, MorselSize: 32, Trace: true})
	// Slow the morsel stream slightly so pipelines are still draining when
	// the background install + warmup evaluations complete; retry in case
	// a short pipeline still wins the race.
	e.morselHook = func(int, *Handle, int) { time.Sleep(200 * time.Microsecond) }
	promoted := int64(0)
	for attempt := 0; attempt < 25; attempt++ {
		res, err := e.RunPlan(stressPlan(), "demote")
		if err != nil {
			t.Fatalf("adaptive query failed: %v", err)
		}
		if got := fmt.Sprint(canon(res.Rows, res.Types)); got != want {
			t.Fatal("result diverged across promotion and demotion")
		}
		promoted += res.Stats.NativeCompiles
		if res.Stats.NativeFallbacks > 0 {
			// The demotion must be recorded in the trace as an EvNative
			// event whose level is not native.
			found := false
			for _, ev := range res.Trace.Events() {
				if ev.Kind == EvNative && ev.Level != LevelNative {
					found = true
					if ev.Level != LevelOptimized {
						t.Errorf("demotion landed in tier %v, want optimized", ev.Level)
					}
				}
			}
			if !found {
				t.Error("demotion happened but no demotion trace event recorded")
			}
			return
		}
	}
	if promoted == 0 {
		t.Skip("controller never promoted to native on this machine; nothing to verify")
	}
	t.Errorf("native installed %d times but the controller never demoted", promoted)
}
