package exec

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// EventKind distinguishes trace entries.
type EventKind uint8

// Event kinds.
const (
	EvMorsel EventKind = iota
	EvCompile
	EvPhase       // planning / codegen / up-front compilation
	EvFinalize    // pipeline-breaker finalization (join link / agg merge)
	EvPrune       // zone-map mask construction (Tuples/Parts = pruned tuples/blocks)
	EvDictRewrite // dictionary-code rewrites baked into a pipeline (Tuples = rewrite count)
	EvAdmit       // admission-queue wait (Start..End = queued interval)
	EvCancel      // cancellation observed (instantaneous)
	EvReplan      // mid-query reoptimization at a breaker (Tuples = observed build card)
	EvNative      // native (tier-6) install — or, when Level != LevelNative, a demotion out of native
	EvEngine      // engine switch: vectorized install (Level == LevelVector) or demotion back to a compiled tier
)

// Event is one entry of an execution trace (the data behind Fig. 14).
type Event struct {
	Kind     EventKind
	Pipeline int
	Label    string
	Worker   int // worker lane; -1 for background compilation
	Level    Level
	Start    time.Duration // since query start
	End      time.Duration
	Tuples   int64
	Parts    int // EvFinalize: partitions used
}

// Trace records per-morsel and per-compilation timing.
type Trace struct {
	mu     sync.Mutex
	t0     time.Time
	events []Event
}

// NewTrace starts a trace clock.
func NewTrace() *Trace { return &Trace{t0: time.Now()} }

// Since returns the offset of t from the trace origin.
func (tr *Trace) Since(t time.Time) time.Duration { return t.Sub(tr.t0) }

// Origin returns the trace's time origin.
func (tr *Trace) Origin() time.Time { return tr.t0 }

// Merge appends another trace's events, shifted by the difference of the
// two origins — used to render multi-stage queries (Fig. 14's Q11) on a
// single time axis.
func (tr *Trace) Merge(other *Trace) {
	if other == nil {
		return
	}
	delta := other.t0.Sub(tr.t0)
	for _, ev := range other.Events() {
		ev.Start += delta
		ev.End += delta
		tr.Add(ev)
	}
}

// Add appends an event.
func (tr *Trace) Add(ev Event) {
	tr.mu.Lock()
	tr.events = append(tr.events, ev)
	tr.mu.Unlock()
}

// Events returns a copy of the recorded events sorted by start time.
func (tr *Trace) Events() []Event {
	tr.mu.Lock()
	out := append([]Event(nil), tr.events...)
	tr.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Gantt renders the trace as an ASCII chart in the style of Fig. 14: one
// lane per worker (plus a compile lane), time left to right, each morsel
// drawn with a letter identifying its pipeline and compilations with 'C'.
func (tr *Trace) Gantt(width int) string {
	evs := tr.Events()
	if len(evs) == 0 {
		return "(empty trace)\n"
	}
	var total time.Duration
	maxWorker := 0
	hasCompile := false
	for _, ev := range evs {
		if ev.End > total {
			total = ev.End
		}
		if ev.Worker > maxWorker {
			maxWorker = ev.Worker
		}
		switch ev.Kind {
		case EvCompile, EvFinalize, EvPrune, EvDictRewrite, EvAdmit, EvCancel, EvReplan, EvNative, EvEngine:
			hasCompile = true
		}
	}
	if width <= 0 {
		width = 100
	}
	scale := func(d time.Duration) int {
		x := int(int64(d) * int64(width) / int64(total))
		if x >= width {
			x = width - 1
		}
		return x
	}
	lanes := maxWorker + 1
	if hasCompile {
		lanes++
	}
	grid := make([][]byte, lanes)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", width))
	}
	// Pipeline letters A, B, C, ... by pipeline id.
	letter := func(p int) byte {
		if p < 26 {
			return byte('a' + p)
		}
		return '?'
	}
	for _, ev := range evs {
		lane := ev.Worker
		ch := letter(ev.Pipeline)
		switch ev.Kind {
		case EvCompile:
			lane = maxWorker + 1
			ch = 'C'
		case EvFinalize:
			lane = maxWorker + 1
			ch = 'F'
		case EvPrune:
			lane = maxWorker + 1
			ch = 'Z'
		case EvDictRewrite:
			lane = maxWorker + 1
			ch = 'D'
		case EvAdmit:
			lane = maxWorker + 1
			ch = 'A'
		case EvCancel:
			lane = maxWorker + 1
			ch = 'X'
		case EvReplan:
			lane = maxWorker + 1
			ch = 'R'
		case EvNative:
			lane = maxWorker + 1
			ch = 'N'
			if ev.Level != LevelNative {
				ch = 'V' // demotion out of native
			}
		case EvEngine:
			lane = maxWorker + 1
			ch = 'E'
			if ev.Level != LevelVector {
				ch = 'e' // demotion back to a compiled tier
			}
		case EvPhase:
			ch = '='
		}
		if lane < 0 {
			lane = maxWorker + 1
		}
		from, to := scale(ev.Start), scale(ev.End)
		for x := from; x <= to; x++ {
			grid[lane][x] = ch
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "total %.3fms; lanes: worker 0..%d", total.Seconds()*1e3, maxWorker)
	if hasCompile {
		sb.WriteString(", then compile lane")
	}
	sb.WriteByte('\n')
	for i, row := range grid {
		name := fmt.Sprintf("w%d", i)
		if hasCompile && i == lanes-1 {
			name = "cc"
		}
		fmt.Fprintf(&sb, "%3s |%s|\n", name, row)
	}
	// Legend.
	seen := map[int]string{}
	for _, ev := range evs {
		if ev.Kind == EvMorsel {
			seen[ev.Pipeline] = ev.Label
		}
	}
	var ids []int
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Fprintf(&sb, "  %c = pipeline %d (%s)\n", letter(id), id, seen[id])
	}
	return sb.String()
}
