package exec

import "sync"

// compilePool is the engine-wide background compilation service. The
// adaptive controller used to spawn one goroutine per compilation, which
// meant N concurrent adaptive queries could run N optimized compilations
// at once — exactly the compile-thrash production engines avoid. The pool
// bounds concurrent compilations engine-wide; excess requests queue in
// FIFO order, so a hot query's upgrade is never cancelled, only delayed.
//
// Workers are ephemeral: a submission spawns a worker if fewer than max
// are running, and a worker exits when the queue drains. The engine
// therefore needs no Close — an idle engine holds no goroutines.
type compilePool struct {
	mu      sync.Mutex
	queue   []func()
	workers int
	max     int
}

func newCompilePool(max int) *compilePool {
	if max < 1 {
		max = 1
	}
	return &compilePool{max: max}
}

// submit enqueues a compilation job. It never blocks: the queue is
// unbounded (jobs are small; the bound that matters is on concurrency).
func (p *compilePool) submit(job func()) {
	p.mu.Lock()
	p.queue = append(p.queue, job)
	spawn := p.workers < p.max
	if spawn {
		p.workers++
	}
	p.mu.Unlock()
	if spawn {
		go p.drain()
	}
}

// drain runs queued jobs until none remain, then exits.
func (p *compilePool) drain() {
	for {
		p.mu.Lock()
		if len(p.queue) == 0 {
			p.workers--
			p.mu.Unlock()
			return
		}
		job := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()
		job()
	}
}
