// Package exec is the paper's primary contribution: the adaptive execution
// framework (§III). Queries always start in the bytecode interpreter on
// all workers; the engine tracks per-pipeline progress at morsel
// boundaries, extrapolates the remaining duration of every execution mode
// (Fig. 7), and switches pipelines to unoptimized or optimized compiled
// code mid-flight by swapping the function handle's variant (Fig. 5) — no
// work is lost because all tiers execute identical semantics over the
// same runtime state (§IV-E).
package exec

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"aqe/internal/codegen"
	"aqe/internal/expr"
	"aqe/internal/plan"
	"aqe/internal/rt"
	"aqe/internal/rt/sink"
	"aqe/internal/sched"
	"aqe/internal/storage"
	"aqe/internal/vm"
)

// Mode selects how a query executes.
type Mode int

// Execution modes (§V compares the three static modes against adaptive).
// ModeIRInterp directly interprets the SSA graph — the paper's "LLVM IR"
// interpreter baseline of Fig. 2, far slower than the bytecode VM.
// ModeNative statically pins every pipeline to the copy-and-patch
// machine-code tier (falling back per-pipeline to optimized closures when
// the platform or a function is unsupported). ModeVector statically pins
// every pipeline to the morsel-driven vectorized engine (falling back
// per-pipeline to optimized closures when a pipeline has no vector plan).
const (
	ModeBytecode Mode = iota
	ModeUnoptimized
	ModeOptimized
	ModeAdaptive
	ModeIRInterp
	ModeNative
	ModeVector
)

func (m Mode) String() string {
	return [...]string{"bytecode", "unoptimized", "optimized", "adaptive", "ir-interp", "native", "vector"}[m]
}

// Options configures an Engine.
type Options struct {
	// Workers is the maximum number of pool workers granted to one query
	// at a time — its slot count and local-arena count (default 4). The
	// engine no longer spawns this many goroutines per query; morsels run
	// on the shared pool (PoolWorkers).
	Workers int
	// PoolWorkers sizes the engine's shared morsel-execution pool. Every
	// in-flight query's morsels and breaker-finalize partitions are
	// dispatched over these workers with morsel-granular round-robin
	// fairness (default GOMAXPROCS).
	PoolWorkers int
	// MaxConcurrent caps concurrently admitted queries; arrivals beyond
	// the cap wait in a FIFO admission queue and report the wait in
	// Stats.WaitTime (default 8).
	MaxConcurrent int
	// MaxConcurrentPerTenant additionally caps concurrently admitted
	// queries per tenant (0 = no per-tenant cap): a tenant at its quota
	// queues even while global capacity is free, and never blocks other
	// tenants' admissions behind it.
	MaxConcurrentPerTenant int
	// TenantWeights assigns fair-share weights for pool-worker picking
	// (default 1 per tenant): under contention a tenant's morsels receive
	// workers in proportion to its weight.
	TenantWeights map[string]int
	// Mode is the execution mode (default ModeAdaptive).
	Mode Mode
	// Cost is the compile-cost model (default Paper()).
	Cost *CostModel
	// Trace enables per-morsel trace recording.
	Trace bool
	// VM configures the bytecode translator (register allocation
	// strategy, fusion) for ablation experiments.
	VM vm.Options
	// MorselSize overrides the initial morsel size (default 2048).
	MorselSize int64
	// MorselCap bounds the grown morsel size (default 65536 tuples).
	MorselCap int64
	// MorselGrowEvery is the claim cadence of geometric morsel growth:
	// the morsel size doubles every MorselGrowEvery claims until it
	// reaches MorselCap (default 8).
	MorselGrowEvery int64
	// NoZoneMaps disables zone-map morsel pruning: every scan dispatches
	// all blocks even when per-block min/max statistics prove the scan's
	// sargable predicate rejects them.
	NoZoneMaps bool
	// CacheBytes is the byte budget of the plan-fingerprint compilation
	// cache; 0 disables caching (every query translates and compiles from
	// scratch, the paper's experiment setup).
	CacheBytes int64
	// CompileWorkers bounds concurrent background compilations across all
	// queries on this engine (default 2). The adaptive controller submits
	// to this shared pool instead of spawning per-query goroutines.
	CompileWorkers int
	// SerialFinalize forces the retained single-threaded pipeline-breaker
	// path (join build linking, aggregation merge) instead of hash-range
	// partitioned parallel finalization.
	SerialFinalize bool
	// NoJoinFilter disables the Bloom-filter check in generated join
	// probes (the filter is emitted by default).
	NoJoinFilter bool
	// NoDict disables dictionary-code rewrites of string predicates,
	// code-based group hashing, and string zone-map pruning; queries run
	// against the raw string columns (results are bit-identical).
	NoDict bool
	// NoNative removes the native machine-code tier from the adaptive
	// controller's choices (and makes ModeNative fall back to optimized
	// closures). Cached plans carry the flag in their fingerprint so a
	// NoNative run never reuses natively-warmed entries ambiguously.
	NoNative bool
	// NoVector removes the vectorized engine from the adaptive
	// controller's choices (and makes ModeVector fall back to optimized
	// closures). Cached plans carry the flag in their fingerprint so a
	// NoVector run never reuses vector-warmed entries ambiguously.
	NoVector bool
	// NoRegAlloc forces the native tier's slot-per-op template backend
	// instead of the register-allocating one (jit.Options.NoRegAlloc) —
	// the ablation baseline for the allocator. Fingerprints carry the
	// flag so cached native code is never shared across the two backends.
	NoRegAlloc bool
	// FilterStats maintains per-worker filter hit/skip counters in
	// generated probes and reports them in Stats. Off by default: the
	// counters cost two extra memory operations per probe.
	FilterStats bool
	// ReplanThreshold is the misestimate factor max(est/obs, obs/est) of
	// an observed build-side cardinality past which a query running with
	// a Replanner reoptimizes its join order mid-flight (default 8).
	// Values <= 1 replan at every breaker whose order the corrected
	// estimates change — the force-trigger mode of the invariance oracle.
	ReplanThreshold float64
	// MaxReplans caps how many times one query may restart on a revised
	// plan (default 2): greedy ordering under exact observed
	// cardinalities is deterministic, so the budget is a backstop, not
	// the convergence argument.
	MaxReplans int
}

// Engine executes plans.
type Engine struct {
	opts  Options
	reg   *rt.Registry
	cache *planCache       // nil when CacheBytes == 0
	pool  *compilePool     // shared background compile service
	sched *sched.Scheduler // admission gate + shared morsel worker pool

	// morselHook, when set (tests only), runs after every dispatched
	// morsel on the worker goroutine; the mode-switch stress test uses it
	// to force tier changes at every morsel boundary.
	morselHook func(pipeline int, h *Handle, worker int)
}

// New creates an engine.
func New(opts Options) *Engine {
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.Cost == nil {
		opts.Cost = Paper()
	}
	if opts.MorselSize <= 0 {
		opts.MorselSize = 2048
	}
	if opts.MorselCap <= 0 {
		opts.MorselCap = 65536
	}
	if opts.MorselCap < opts.MorselSize {
		opts.MorselCap = opts.MorselSize
	}
	if opts.MorselGrowEvery <= 0 {
		opts.MorselGrowEvery = 8
	}
	if opts.CompileWorkers <= 0 {
		opts.CompileWorkers = 2
	}
	if opts.PoolWorkers <= 0 {
		opts.PoolWorkers = runtime.GOMAXPROCS(0)
	}
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = 8
	}
	e := &Engine{opts: opts, reg: rt.NewRegistry(),
		pool: newCompilePool(opts.CompileWorkers),
		sched: sched.New(sched.Options{PoolWorkers: opts.PoolWorkers,
			MaxQueries:   opts.MaxConcurrent,
			MaxPerTenant: opts.MaxConcurrentPerTenant,
			Weights:      opts.TenantWeights})}
	if opts.CacheBytes > 0 {
		e.cache = newPlanCache(opts.CacheBytes)
	}
	rt.RegisterBuiltins(e.reg)
	e.reg.Register("pipeline_run", func(ctx *rt.Ctx, args []uint64) uint64 {
		qr := ctx.Query.(*rt.QueryState).Eng.(*queryRun)
		qr.runPipeline(int(args[0]))
		return 0
	})
	return e
}

// Options returns the engine configuration.
func (e *Engine) Options() Options { return e.opts }

// CacheStats snapshots the compilation-cache counters (zero value when
// caching is disabled).
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.stats()
}

// SchedStats snapshots the scheduler's admission counters: how many
// queries were admitted, how many had to queue, and the accumulated wait.
func (e *Engine) SchedStats() sched.Stats { return e.sched.AdmissionStats() }

// Stats describes one executed stage (the last stage's stats are the
// query's).
type Stats struct {
	Codegen   time.Duration // plan -> IR
	Translate time.Duration // IR -> bytecode (all pipelines + queryStart)
	Compile   time.Duration // up-front compilation (static modes)
	Exec      time.Duration // queryStart + pipelines + result decode
	Finalize  time.Duration // pipeline-breaker wall time (within Exec)
	PruneTime time.Duration // zone-map mask construction (within Exec)
	WaitTime  time.Duration // admission-queue wait before any work (within Total)
	Total     time.Duration

	// Queued reports that the query waited in the admission queue;
	// Cancelled that it ended early through its context (the Result then
	// carries stats only, no rows).
	Queued    bool
	Cancelled bool

	Instrs       int // IR instructions in the module
	Pipelines    int
	FinalLevels  []Level // per pipeline, the tier that finished it
	Compilations int     // adaptive compilations launched
	RegFileBytes int     // largest bytecode register file
	FusedOps     int     // macro-ops fused across pipelines (§IV-F)
	Finalizes    int     // pipeline breakers finalized
	// Replans counts mid-query restarts on a reoptimized join order;
	// EstCardErr is the worst misestimate factor max(est/obs, obs/est)
	// observed at any join-build breaker (0 = no estimated joins ran).
	Replans     int
	EstCardErr  float64
	FilterHits  int64 // probes whose Bloom filter passed (FilterStats)
	FilterSkips int64 // probes whose chain walk was skipped (FilterStats)

	// Native-tier counters: assemblies that produced machine code,
	// morsels dispatched to native code, and per-pipeline fallbacks to a
	// closure tier (unsupported op/platform or exec-memory failure).
	NativeCompiles  int64
	NativeMorsels   int64
	NativeFallbacks int64

	// Vectorized-engine counters: morsels dispatched to the vectorized
	// engine, and engine switches the controller performed mid-pipeline
	// (promotions into the vectorized engine plus demotions back to the
	// compiled tiers).
	VectorMorsels  int64
	EngineSwitches int64

	// Zone-map pruning: blocks/tuples skipped without dispatching, and
	// the total source tuples of scans that carried a prune descriptor
	// (the denominator of the skip rate).
	BlocksPruned   int64
	TuplesPruned   int64
	PrunableTuples int64

	// Dictionary rewrites: string predicates / group keys compiled
	// against dictionary codes (DictHits counts the ones that rewrote;
	// DictRewrites also counts attempts that folded to constants), and
	// blocks pruned by a string conjunct's code-domain zone map.
	DictRewrites       int
	DictHits           int
	StringBlocksPruned int64

	// Fingerprint is the plan fingerprint (abbreviated hex); CacheHit
	// reports whether translation/compilation was served from the cache,
	// and Cache snapshots the engine-wide cache counters at completion.
	Fingerprint string
	CacheHit    bool
	Cache       CacheStats

	// Tenant is the identity the query was admitted under ("" when the
	// caller ran outside any tenant).
	Tenant string
}

// Result is a materialized query result.
type Result struct {
	Cols  []string
	Types []expr.Type
	Rows  [][]expr.Datum
	Stats Stats
	Trace *Trace
}

// Format renders a datum for display.
func Format(d expr.Datum, t expr.Type) string {
	switch t.Kind {
	case expr.KFloat:
		return fmt.Sprintf("%.4f", d.F)
	case expr.KDecimal:
		return storage.DecimalString(d.I, t.Scale)
	case expr.KDate:
		return storage.FormatDate(d.I)
	case expr.KString:
		return d.S
	case expr.KChar:
		return string(byte(d.I))
	case expr.KBool:
		if d.I != 0 {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("%d", d.I)
	}
}

// ToTable materializes the result as a storage table (stage results are
// scanned by later stages this way).
func (r *Result) ToTable(name string) *storage.Table {
	cols := make([]*storage.Column, len(r.Cols))
	for i, cn := range r.Cols {
		var k storage.Kind
		switch r.Types[i].Kind {
		case expr.KDecimal:
			k = storage.Decimal
		case expr.KDate:
			k = storage.Date
		case expr.KFloat:
			k = storage.Float64
		case expr.KChar:
			k = storage.Char
		case expr.KString:
			k = storage.String
		default:
			k = storage.Int64
		}
		cols[i] = storage.NewColumn(cn, k)
		cols[i].Scale = r.Types[i].Scale
	}
	for _, row := range r.Rows {
		for i, d := range row {
			switch cols[i].Kind {
			case storage.Float64:
				cols[i].AppendFloat64(d.F)
			case storage.Char:
				cols[i].AppendChar(byte(d.I))
			case storage.String:
				cols[i].AppendString(d.S)
			default:
				cols[i].AppendInt64(d.I)
			}
		}
	}
	return storage.NewTable(name, cols...)
}

// Run executes a multi-stage query: every stage materializes into a table
// visible to later stages; the final stage's rows are the result.
func (e *Engine) Run(q plan.Query) (*Result, error) {
	return e.RunCtx(context.Background(), q)
}

// RunCtx is Run with per-query cancellation and deadline: ctx is checked
// between stages and, inside each stage, at every morsel boundary and
// finalize partition.
func (e *Engine) RunCtx(ctx context.Context, q plan.Query) (*Result, error) {
	return e.RunCtxOpts(ctx, q, RunOpts{})
}

// RunCtxOpts is RunCtx under per-execution options; every stage admits
// and schedules under opts.Tenant. Multi-stage plan queries carry no
// prepared-statement parameters, so opts.Params must be nil.
func (e *Engine) RunCtxOpts(ctx context.Context, q plan.Query, opts RunOpts) (*Result, error) {
	prior := make(map[string]*storage.Table)
	var last *Result
	for i, st := range q.Stages {
		node := st.Build(prior)
		res, err := e.RunPlanOpts(ctx, node, fmt.Sprintf("%s/%s", q.Name, st.Name), opts)
		if err != nil {
			return res, fmt.Errorf("%s stage %q: %w", q.Name, st.Name, err)
		}
		if i < len(q.Stages)-1 {
			prior[st.Name] = res.ToTable(st.Name)
		}
		last = res
	}
	return last, nil
}

// RunPlan code-generates and executes a single plan.
func (e *Engine) RunPlan(node plan.Node, name string) (*Result, error) {
	return e.RunPlanCtx(context.Background(), node, name)
}

// RunPlanCtx code-generates and executes a single plan under ctx. The
// query first passes the engine's admission gate (FIFO, capped at
// MaxConcurrent in-flight queries); its morsels then run on the shared
// worker pool. Cancelling ctx — or hitting its deadline — stops the query
// within one morsel per granted worker; the error wraps the context cause
// and the returned Result carries the stats (Cancelled, WaitTime) but no
// rows.
func (e *Engine) RunPlanCtx(ctx context.Context, node plan.Node, name string) (*Result, error) {
	return e.RunPlanReplan(ctx, node, name, nil)
}

// RunPlanReplan is RunPlanCtx with mid-query reoptimization: after every
// join-build breaker the engine reports the observed cardinality to rp
// and, past the misestimate threshold, restarts the query on the revised
// plan rp returns (hash tables rebuilt from base tables; observations and
// the admission slot kept). A nil rp runs the plan as given.
func (e *Engine) RunPlanReplan(ctx context.Context, node plan.Node, name string, rp Replanner) (*Result, error) {
	return e.RunPlanOpts(ctx, node, name, RunOpts{Replan: rp})
}

// RunOpts carries the per-execution inputs of RunPlanOpts that are not
// part of the plan itself.
type RunOpts struct {
	// Tenant is the identity the query is admitted and scheduled under:
	// it counts against the tenant's MaxConcurrentPerTenant quota, its
	// pool workers are granted by fair-share weight, and the per-tenant
	// admission counters are charged to it. "" runs outside any tenant.
	Tenant string
	// Params are the bound values of the plan's prepared-statement
	// parameters, by index ($1 = Params[0]). Required exactly when the
	// plan contains expr.Param nodes; counts and types must match.
	Params []*expr.Const
	// Replan enables mid-query reoptimization (see RunPlanReplan).
	Replan Replanner
}

// RunPlanOpts is the fully-general single-plan entry point: RunPlanCtx
// plus tenant identity, prepared-statement parameter bindings, and
// mid-query reoptimization.
func (e *Engine) RunPlanOpts(ctx context.Context, node plan.Node, name string, opts RunOpts) (*Result, error) {
	rp := opts.Replan
	t0 := time.Now()
	if err := ctx.Err(); err != nil {
		return &Result{Stats: Stats{Cancelled: true}},
			fmt.Errorf("exec: query %q cancelled: %w", name, context.Cause(ctx))
	}
	var tr *Trace
	if e.opts.Trace {
		tr = NewTrace()
	}
	wait, queued, err := e.sched.AdmitTenant(ctx, opts.Tenant)
	if err != nil {
		st := Stats{WaitTime: wait, Queued: queued, Cancelled: true,
			Tenant: opts.Tenant, Total: time.Since(t0)}
		return &Result{Stats: st},
			fmt.Errorf("exec: query %q cancelled while queued (waited %v): %w", name, wait, err)
	}
	defer e.sched.ReleaseTenant(opts.Tenant)
	var st Stats
	st.WaitTime, st.Queued, st.Tenant = wait, queued, opts.Tenant
	if tr != nil && queued {
		tr.Add(Event{Kind: EvAdmit, Pipeline: -1, Worker: -1, Label: name,
			Start: 0, End: tr.Since(time.Now())})
	}
	var ro *reoptState
	if rp != nil {
		threshold := e.opts.ReplanThreshold
		if threshold == 0 {
			threshold = DefaultReplanThreshold
		}
		max := e.opts.MaxReplans
		if max <= 0 {
			max = DefaultMaxReplans
		}
		ro = &reoptState{rp: rp, threshold: threshold, remaining: max}
	}

	cancelled := func(cause error) (*Result, error) {
		st.Cancelled = true
		st.Total = time.Since(t0)
		return &Result{Stats: st},
			fmt.Errorf("exec: query %q cancelled: %w", name, cause)
	}

	// Each iteration is one execution attempt; a replanSignal from the
	// breaker hook restarts the loop on the revised plan. Durations
	// (Codegen/Translate/Exec/...) accumulate across attempts — they are
	// real work this query performed; structural fields (Instrs,
	// Pipelines, Fingerprint) describe the attempt that completed.
	var qr *queryRun
	var cq *codegen.Query
	var mem *rt.Memory
	var rows [][]expr.Datum
	for {
		if err := ctx.Err(); err != nil {
			return cancelled(context.Cause(ctx))
		}
		tCg := time.Now()
		mem = rt.NewMemory()
		cq, err = codegen.CompileOpts(node, mem, name, codegen.Options{
			JoinFilter:  !e.opts.NoJoinFilter,
			FilterStats: e.opts.FilterStats && !e.opts.NoJoinFilter,
			NoDict:      e.opts.NoDict,
		})
		if err != nil {
			return nil, err
		}
		st.Codegen += time.Since(tCg)
		st.Instrs = cq.Module.NumInstrs()
		st.Pipelines = len(cq.Pipelines)
		st.DictRewrites = cq.DictRewrites
		st.DictHits = cq.DictHits
		// Install the parameter bindings into this attempt's parameter
		// segment. Codegen (and thus binding) reruns on every execution;
		// only translate/compile/kernels are served from the cache, so a
		// cached plan still reads fresh values through the segment table.
		if len(cq.Params) > 0 || len(opts.Params) > 0 {
			if err := cq.BindParams(opts.Params); err != nil {
				return nil, fmt.Errorf("exec: query %q: %w", name, err)
			}
		}

		qr, err = e.newQueryRun(ctx, cq, mem, &st, tr)
		if err != nil {
			if ctx.Err() != nil {
				return cancelled(err)
			}
			return nil, err
		}
		qr.tenant = opts.Tenant
		qr.reopt = ro
		// The cancellation watcher flips the query's atomic flag the
		// moment ctx dies; every claim loop and finalize partition polls
		// it, and stop() keeps the watcher from outliving the query.
		if ctx.Done() != nil {
			stop := context.AfterFunc(ctx, func() { qr.cancel(context.Cause(ctx)) })
			defer stop()
		}
		tExec := time.Now()
		rows, err = qr.execute()
		st.Exec += time.Since(tExec)
		// Fold the run's tier-6 counters (atomics: a background compile can
		// tick them until the moment of this snapshot). Accumulates across
		// replan attempts like the duration fields above.
		st.NativeCompiles += qr.nativeCompiles.Load()
		st.NativeMorsels += qr.nativeMorsels.Load()
		st.NativeFallbacks += qr.nativeFallbacks.Load()
		st.VectorMorsels += qr.vectorMorsels.Load()
		st.EngineSwitches += qr.engineSwitches.Load()
		if err == nil {
			break
		}
		if rs, ok := err.(*replanSignal); ok {
			st.Replans++
			node = rs.node
			continue
		}
		if qr.cancelled.Load() {
			return cancelled(err)
		}
		return nil, err
	}
	for _, jd := range cq.Joins {
		if jd.StatsLocalOff < 0 {
			continue
		}
		for w := 0; w < e.opts.Workers; w++ {
			base := qr.qs.Locals[w] + rt.Addr(jd.StatsLocalOff)
			st.FilterHits += int64(mem.Load64(base))
			st.FilterSkips += int64(mem.Load64(base + 8))
		}
	}

	// Sort / limit on the decoded rows. ORDER BY + LIMIT keeps only the
	// top k through a bounded heap instead of a full sort.
	if len(cq.SortKeys) > 0 {
		if cq.Limit >= 0 {
			rows = sink.TopK(rows, cq.SortKeys, cq.Limit)
		} else {
			sink.SortRows(rows, cq.SortKeys)
		}
	}
	if cq.Limit >= 0 && len(rows) > cq.Limit {
		rows = rows[:cq.Limit]
	}
	st.Total = time.Since(t0)
	for i, h := range qr.handles {
		lvl := h.Level()
		st.FinalLevels = append(st.FinalLevels, lvl)
		// Remember the finishing engine so the next warm adaptive run of
		// this plan starts each pipeline there directly.
		if e.cache != nil && e.opts.Mode == ModeAdaptive {
			e.cache.noteEngine(qr.fp, i, lvl == LevelVector)
		}
	}
	if e.cache != nil {
		st.Cache = e.cache.stats()
	}
	res := &Result{Rows: rows, Stats: st, Trace: qr.trace}
	for _, c := range cq.Schema {
		res.Cols = append(res.Cols, c.Name)
		res.Types = append(res.Types, c.T)
	}
	return res, nil
}
