// Package codegen translates physical plans into IR, reproducing the code
// structure of the paper's Fig. 4: the plan is decomposed into pipelines,
// each pipeline becomes one worker function worker(state, local, begin,
// end) processing a morsel of its source, and queryStart becomes a
// function that invokes the pipelines in dependency order through engine
// externs. queryStart is always interpreted ("it never pays off to compile
// it"); the worker functions are what adaptive execution compiles.
package codegen

import (
	"encoding/binary"
	"fmt"
	"math"

	"aqe/internal/expr"
	"aqe/internal/ir"
	"aqe/internal/plan"
	"aqe/internal/rt"
	"aqe/internal/storage"
)

// Query is a fully code-generated query, ready for the execution engine.
type Query struct {
	Module     *ir.Module
	QueryStart *ir.Function
	Pipelines  []*Pipeline

	StateBytes int
	LocalBytes int

	Joins    []JoinDesc
	Aggs     []AggDesc
	Outs     []OutDesc
	Patterns []string

	// Literals is the string-literal segment; codegen pre-registered it
	// and embedded its addresses as constants. LitLen is the number of
	// bytes actually interned (the fingerprint hashes only this prefix).
	Literals []byte
	LitLen   int

	// Params describes the prepared-statement parameters referenced by
	// the plan, indexed by parameter number ($1 is index 0). ParamSeg is
	// the segment generated code loads them from: one 16-byte slot per
	// parameter (scalar at +0; strings: address at +0, length at +8,
	// bytes appended after the slot array), installed per execution by
	// BindParams. Parameter values live only in the segment — never in
	// the IR — so executions that differ only in bindings share a module,
	// a fingerprint, compiled tiers and vectorized kernels.
	Params    []expr.Type
	ParamSeg  []byte
	ParamBase uint64

	// Output describes how to decode the result rows of the final
	// pipeline; Sort/Limit apply to the decoded rows.
	Output   OutDesc
	SortKeys []plan.SortKey
	Limit    int
	Schema   []plan.ColDef

	// DictRewrites counts string predicates and group-key hashes rewritten
	// to dictionary codes across all pipelines; DictHits counts the subset
	// whose literals occurred in the dictionary (misses fold to constants).
	DictRewrites int
	DictHits     int
}

// Pipeline is the metadata of one worker function.
type Pipeline struct {
	ID    int
	Fn    *ir.Function
	Label string

	// Source: exactly one of Table / AggSource is set. The engine derives
	// the morsel count from it at pipeline start.
	Table     *storage.Table
	AggSource int // agg id, -1 if table source

	// Sink finalization: ids are -1 when not applicable.
	SinkJoin int
	SinkAgg  int
	SinkOut  int

	// BuildOf is the join whose hash table this pipeline builds (set iff
	// SinkJoin >= 0). The engine reads its cardinality estimate at
	// finalize to decide whether the plan deserves reoptimization.
	BuildOf *plan.Join

	// Prune holds the sargable conjuncts of a scan pipeline's filter for
	// zone-map block skipping (empty when the source has no usable
	// conjuncts). The generated kernel retains the full predicate; the
	// engine may use these to skip morsels whose blocks provably match
	// nothing.
	Prune []PruneCond

	// DictRewrites counts the string predicates and group-key hashes of
	// this pipeline rewritten to dictionary-code operations.
	DictRewrites int

	// Vec is the engine-neutral description of this pipeline for the
	// vectorized backend; always built, so segment and literal registration
	// is identical whether or not a vectorized kernel is ever installed.
	Vec *VecSpec
}

// JoinDesc mirrors the layout the generated code assumed for a join hash
// table; the engine materializes a matching rt.JoinHT.
type JoinDesc struct {
	TupleSize int
	StateOff  int
	NumKeys   int
	// Filter marks that the generated probe code expects a Bloom filter
	// published at StateOff+16 and checks it before walking the chain.
	Filter bool
	// StatsLocalOff is the worker-local offset of the [hits u64][skips u64]
	// filter counters the probe code maintains, or -1 when disabled.
	StatsLocalOff int
}

// AggDesc mirrors the aggregation layout.
type AggDesc struct {
	EntrySize     int
	Keys          []rt.KeyField
	Aggs          []rt.AggField
	LocalOff      int
	IndexStateOff int
	Scalar        bool
}

// OutDesc describes an output row buffer.
type OutDesc struct {
	RowSize int
	Cols    []OutCol
}

// OutCol is one column of an output row.
type OutCol struct {
	Name string
	T    expr.Type
	Off  int
}

// litCap is the capacity of the string literal segment.
const litCap = 1 << 20

// Parameter segment layout: maxParams 16-byte slots followed by the
// string heap bound parameter strings copy into.
const (
	maxParams    = 64
	paramSlot    = 16
	paramHeapCap = 1 << 16
	paramSegCap  = maxParams*paramSlot + paramHeapCap
)

// Options selects optional code-generation features. The generated IR
// differs per option set, so cached plans keyed by IR fingerprint never
// collide across option values.
type Options struct {
	// JoinFilter emits a Bloom-filter check before every join chain walk.
	JoinFilter bool
	// FilterStats additionally maintains per-worker filter hit/skip
	// counters in the local arena (costs two loads/stores per probe).
	FilterStats bool
	// NoDict disables every dictionary-code rewrite (predicates, group-key
	// hashing, string zone-map pruning); string operations go through the
	// byte-level runtime externs exactly as for undictionarized columns.
	NoDict bool
}

// Compile translates a plan into IR with the default options (Bloom
// filters on, counters off).
func Compile(root plan.Node, mem *rt.Memory, name string) (*Query, error) {
	return CompileOpts(root, mem, name, Options{JoinFilter: true})
}

// CompileOpts translates a plan into IR against the given address space
// (the table columns referenced by the plan are registered as segments and
// their base addresses embedded as constants, as HyPer embeds pointers).
func CompileOpts(root plan.Node, mem *rt.Memory, name string, opts Options) (*Query, error) {
	g := &cgen{
		mem:        mem,
		mod:        ir.NewModule(name),
		opts:       opts,
		colBase:    make(map[*storage.Column]uint64),
		heapBase:   make(map[*storage.Column]uint64),
		codeBase:   make(map[*storage.Dict]uint64),
		litIdx:     make(map[string]int64),
		patternIdx: make(map[string]int),
	}
	g.q = &Query{Module: g.mod, Limit: -1}
	g.q.Literals = make([]byte, litCap)
	g.litBase = mem.AddSegment(g.q.Literals)
	// The parameter segment registers unconditionally (even for plans
	// without parameters) so segment numbering — and therefore every
	// embedded base address — is identical across all plans, which cached
	// closures and kernels rely on.
	g.q.ParamSeg = make([]byte, paramSegCap)
	g.paramBase = mem.AddSegment(g.q.ParamSeg)
	g.q.ParamBase = g.paramBase
	g.collectParams(root)

	if ob, ok := root.(*plan.OrderBy); ok {
		g.q.SortKeys = ob.Keys
		g.q.Limit = ob.Limit
		root = ob.Input
	}
	g.q.Schema = root.Schema()

	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("codegen: %v", r)
			}
		}()
		outID := g.newOut(root.Schema())
		g.q.Output = g.q.Outs[outID]
		g.pipeline(root, &outSink{id: outID, schema: root.Schema()})
		g.emitQueryStart()
	}()
	if err != nil {
		return nil, err
	}
	g.q.LitLen = g.litOff
	for _, f := range g.mod.Funcs {
		if verr := f.Verify(); verr != nil {
			return nil, fmt.Errorf("codegen: generated %s is invalid: %w", f.Name, verr)
		}
	}
	return g.q, nil
}

type cgen struct {
	mem  *rt.Memory
	mod  *ir.Module
	q    *Query
	opts Options

	colBase  map[*storage.Column]uint64
	heapBase map[*storage.Column]uint64
	codeBase map[*storage.Dict]uint64

	litBase   uint64
	litOff    int
	litIdx    map[string]int64
	paramBase uint64

	patternIdx map[string]int

	stateOff int
	localOff int

	// pipeRewrites accumulates dictionary rewrites of the pipeline being
	// generated; addPipeline moves it into Pipeline.DictRewrites.
	pipeRewrites int
}

// noteDictRewrite records one dictionary-code rewrite against the current
// pipeline and the query totals.
func (g *cgen) noteDictRewrite(hit bool) {
	g.pipeRewrites++
	g.q.DictRewrites++
	if hit {
		g.q.DictHits++
	}
}

// ---- resource allocation ----

func (g *cgen) internLit(s string) (int64, int64) {
	if off, ok := g.litIdx[s]; ok {
		return int64(g.litBase) + off, int64(len(s))
	}
	if g.litOff+len(s) > litCap {
		panic("codegen: literal segment full")
	}
	off := int64(g.litOff)
	copy(g.q.Literals[g.litOff:], s)
	g.litOff += len(s)
	g.litIdx[s] = off
	return int64(g.litBase) + off, int64(len(s))
}

func (g *cgen) internPattern(p string) int {
	if id, ok := g.patternIdx[p]; ok {
		return id
	}
	id := len(g.q.Patterns)
	g.q.Patterns = append(g.q.Patterns, p)
	g.patternIdx[p] = id
	return id
}

// collectParams records the type of every parameter the plan references,
// sized by the highest index, so the plan's parameter descriptors (count
// and types — the fingerprint input) are complete before any pipeline is
// emitted.
func (g *cgen) collectParams(root plan.Node) {
	visitE := func(e expr.Expr) {
		walkExpr(e, func(x expr.Expr) {
			if p, ok := x.(*expr.Param); ok {
				if p.Idx >= maxParams {
					panic(fmt.Sprintf("codegen: parameter $%d exceeds the %d-parameter limit", p.Idx+1, maxParams))
				}
				for len(g.q.Params) <= p.Idx {
					g.q.Params = append(g.q.Params, expr.Type{})
				}
				g.q.Params[p.Idx] = p.T
			}
		})
	}
	var visit func(n plan.Node)
	visit = func(n plan.Node) {
		switch x := n.(type) {
		case *plan.Scan:
			visitE(x.Filter)
		case *plan.Filter:
			visitE(x.Cond)
		case *plan.Project:
			for _, e := range x.Exprs {
				visitE(e)
			}
		case *plan.Join:
			for _, e := range x.BuildKeys {
				visitE(e)
			}
			for _, e := range x.ProbeKeys {
				visitE(e)
			}
			visitE(x.Residual)
		case *plan.GroupBy:
			for _, e := range x.Keys {
				visitE(e)
			}
			for _, a := range x.Aggs {
				visitE(a.Arg)
			}
		case *plan.OrderBy:
			for _, k := range x.Keys {
				visitE(k.E)
			}
		}
		for _, c := range n.Children() {
			visit(c)
		}
	}
	visit(root)
}

// genParam emits the typed load of parameter idx from its slot in the
// parameter segment. The loads are address-indirect like every other
// segment access, so fingerprint-cached closures and kernels read the
// current execution's bindings.
func (g *cgen) genParam(b *ir.Builder, idx int, t expr.Type) expr.Val {
	base := b.ConstI64(int64(g.paramBase))
	off := int64(idx * paramSlot)
	switch t.Kind {
	case expr.KFloat:
		return expr.Val{X: b.Load(ir.F64, b.GEP(base, nil, 0, off))}
	case expr.KString:
		addr := b.Load(ir.I64, b.GEP(base, nil, 0, off))
		n := b.Load(ir.I64, b.GEP(base, nil, 0, off+8))
		return expr.Val{X: addr, Len: n}
	case expr.KBool:
		v := b.Load(ir.I64, b.GEP(base, nil, 0, off))
		return expr.Val{X: b.ICmp(ir.Ne, v, b.ConstI64(0))}
	default:
		return expr.Val{X: b.Load(ir.I64, b.GEP(base, nil, 0, off))}
	}
}

// BindParams installs the execution's parameter values into the parameter
// segment. It runs before every execution of a parameterized query
// (CompileOpts allocates a fresh segment per run); the value types must
// match the plan's descriptors — the fingerprint hashes the descriptors,
// so a mismatch means the caller bound values the plan was not built for.
func (q *Query) BindParams(vals []*expr.Const) error {
	if len(vals) != len(q.Params) {
		return fmt.Errorf("codegen: statement wants %d parameter(s), got %d",
			len(q.Params), len(vals))
	}
	heap := maxParams * paramSlot
	for i, v := range vals {
		if v == nil {
			return fmt.Errorf("codegen: parameter $%d is unbound", i+1)
		}
		if v.T != q.Params[i] {
			return fmt.Errorf("codegen: parameter $%d is %s, plan wants %s",
				i+1, v.T, q.Params[i])
		}
		off := i * paramSlot
		switch v.T.Kind {
		case expr.KFloat:
			binary.LittleEndian.PutUint64(q.ParamSeg[off:], math.Float64bits(v.F))
		case expr.KString:
			if heap+len(v.S) > len(q.ParamSeg) {
				return fmt.Errorf("codegen: parameter strings exceed %d bytes", paramHeapCap)
			}
			copy(q.ParamSeg[heap:], v.S)
			binary.LittleEndian.PutUint64(q.ParamSeg[off:], q.ParamBase+uint64(heap))
			binary.LittleEndian.PutUint64(q.ParamSeg[off+8:], uint64(len(v.S)))
			heap += len(v.S)
		default:
			binary.LittleEndian.PutUint64(q.ParamSeg[off:], uint64(v.I))
		}
	}
	return nil
}

func (g *cgen) tableBase(c *storage.Column) uint64 {
	if b, ok := g.colBase[c]; ok {
		return b
	}
	b := g.mem.AddSegment(c.Data())
	g.colBase[c] = b
	if c.Kind == storage.String {
		g.heapBase[c] = g.mem.AddSegment(c.Heap())
	}
	return b
}

// dictBase registers the dictionary's code vector as a segment (once) and
// returns its base address for embedding as a constant, like tableBase.
func (g *cgen) dictBase(d *storage.Dict) uint64 {
	if b, ok := g.codeBase[d]; ok {
		return b
	}
	b := g.mem.AddSegment(d.Codes())
	g.codeBase[d] = b
	return b
}

// width of a value in pipeline tuples and output rows.
func valWidth(t expr.Type) int {
	if t.Kind == expr.KString {
		return 16
	}
	return 8
}

func (g *cgen) newOut(schema []plan.ColDef) int {
	d := OutDesc{}
	for _, c := range schema {
		d.Cols = append(d.Cols, OutCol{Name: c.Name, T: c.T, Off: d.RowSize})
		d.RowSize += valWidth(c.T)
	}
	g.q.Outs = append(g.q.Outs, d)
	return len(g.q.Outs) - 1
}

// ---- sinks ----

type sink interface {
	// emit generates the sink code for the current tuple; res resolves
	// the current schema's columns. It must leave the builder in a block
	// that falls through to the pipeline's continue target.
	emit(p *pgen, res resolver)
	// finalize annotates the pipeline metadata.
	annotate(pl *Pipeline)
}

// ---- pipeline decomposition ----

// pipeOp is a streaming operator applied within a pipeline.
type pipeOp interface {
	apply(p *pgen, res resolver, down func(resolver))
}

// pipeline decomposes the subplan rooted at n into pipelines, emitting
// dependency pipelines (join builds, aggregations) first, then the
// pipeline computing n into the given sink.
func (g *cgen) pipeline(n plan.Node, sk sink) {
	var ops []pipeOp
	label := ""
	cur := n
	for {
		switch x := cur.(type) {
		case *plan.Filter:
			ops = append([]pipeOp{&filterOp{cond: x.Cond}}, ops...)
			cur = x.Input
		case *plan.Project:
			ops = append([]pipeOp{&projectOp{node: x}}, ops...)
			cur = x.Input
		case *plan.Join:
			jd := g.newJoinDesc(x)
			g.pipeline(x.Build, &buildSink{join: x, desc: jd})
			ops = append([]pipeOp{&probeOp{join: x, desc: jd}}, ops...)
			cur = x.Probe
		case *plan.GroupBy:
			ad := g.newAggDesc(x)
			g.pipeline(x.Input, &aggSink{node: x, id: ad})
			g.emitPipeline(nil, ad, x, ops, sk, label)
			return
		case *plan.Scan:
			if x.Filter != nil {
				ops = append([]pipeOp{&filterOp{cond: x.Filter}}, ops...)
			}
			label = "scan " + x.Table.Name
			g.emitScanPipeline(x, ops, sk, label)
			return
		case *plan.OrderBy:
			panic("codegen: ORDER BY is only supported at the plan root")
		default:
			panic(fmt.Sprintf("codegen: unsupported node %T", cur))
		}
	}
}

// joinMeta carries the per-join tuple layout shared between the build sink
// and the probe operator.
type joinMeta struct {
	id   int
	desc *JoinDesc
	// fields lists the build-schema columns stored in the tuple (payload
	// columns plus residual references), in offset order.
	fields []jfield
	byIdx  map[int]jfield
}

// jfield is one stored build column.
type jfield struct {
	srcIdx int
	off    int
	t      expr.Type
}

func (g *cgen) newJoinDesc(j *plan.Join) *joinMeta {
	bs := j.Build.Schema()
	need := map[int]bool{}
	for _, idx := range j.PayloadIdx {
		need[idx] = true
	}
	if j.Residual != nil {
		np := len(j.Probe.Schema())
		collectCols(j.Residual, func(idx int) {
			if idx >= np {
				need[idx-np] = true
			}
		})
	}
	m := &joinMeta{byIdx: map[int]jfield{}}
	off := 16 + len(j.BuildKeys)*8
	for idx := range bs {
		if !need[idx] {
			continue
		}
		fld := jfield{srcIdx: idx, off: off, t: bs[idx].T}
		m.fields = append(m.fields, fld)
		m.byIdx[idx] = fld
		off += valWidth(bs[idx].T)
	}
	d := JoinDesc{
		TupleSize: off, StateOff: g.stateOff, NumKeys: len(j.BuildKeys),
		Filter: g.opts.JoinFilter, StatsLocalOff: -1,
	}
	g.stateOff += rt.JoinStateBytes
	if d.Filter && g.opts.FilterStats {
		d.StatsLocalOff = g.localOff
		g.localOff += 16
	}
	g.q.Joins = append(g.q.Joins, d)
	m.id = len(g.q.Joins) - 1
	m.desc = &g.q.Joins[m.id]
	return m
}

// collectCols invokes fn for every column reference in e.
func collectCols(e expr.Expr, fn func(idx int)) {
	switch x := e.(type) {
	case *expr.ColRef:
		fn(x.Idx)
	case *expr.Arith:
		collectCols(x.L, fn)
		collectCols(x.R, fn)
	case *expr.Cmp:
		collectCols(x.L, fn)
		collectCols(x.R, fn)
	case *expr.Logic:
		for _, a := range x.Args {
			collectCols(a, fn)
		}
	case *expr.NotExpr:
		collectCols(x.Arg, fn)
	case *expr.LikeExpr:
		collectCols(x.Arg, fn)
	case *expr.InList:
		collectCols(x.Arg, fn)
	case *expr.CaseExpr:
		for _, w := range x.Whens {
			collectCols(w.Cond, fn)
			collectCols(w.Then, fn)
		}
		collectCols(x.Else, fn)
	case *expr.YearExpr:
		collectCols(x.Arg, fn)
	case *expr.SubstrExpr:
		collectCols(x.Arg, fn)
	case *expr.CastExpr:
		collectCols(x.Arg, fn)
	}
}

// aggMeta: the flattened slot layout of a group-by.
type aggMeta struct {
	id       int
	keyOffs  []int   // per group key
	slotOffs [][]int // per AggExpr, its slots (Avg has two)
}

func (g *cgen) newAggDesc(gb *plan.GroupBy) *aggMeta {
	m := &aggMeta{}
	d := AggDesc{LocalOff: g.localOff, IndexStateOff: g.stateOff, Scalar: len(gb.Keys) == 0}
	g.localOff += rt.LocalSlotBytes
	g.stateOff += 8
	off := rt.AggEntryHeader
	for _, k := range gb.Keys {
		m.keyOffs = append(m.keyOffs, off)
		d.Keys = append(d.Keys, rt.KeyField{Off: off, Str: k.Type().Kind == expr.KString})
		off += valWidth(k.Type())
	}
	addSlot := func(kind rt.AggKind) int {
		d.Aggs = append(d.Aggs, rt.AggField{Kind: kind, Off: off})
		o := off
		off += 8
		return o
	}
	for _, a := range gb.Aggs {
		var slots []int
		isFloat := a.Arg != nil && a.Arg.Type().Kind == expr.KFloat
		switch a.Func {
		case plan.Sum:
			if isFloat {
				slots = []int{addSlot(rt.AggSumF)}
			} else {
				slots = []int{addSlot(rt.AggSum)}
			}
		case plan.Min:
			if isFloat {
				slots = []int{addSlot(rt.AggMinF)}
			} else {
				slots = []int{addSlot(rt.AggMin)}
			}
		case plan.Max:
			if isFloat {
				slots = []int{addSlot(rt.AggMaxF)}
			} else {
				slots = []int{addSlot(rt.AggMax)}
			}
		case plan.Count, plan.CountStar:
			slots = []int{addSlot(rt.AggCount)}
		case plan.Avg:
			if isFloat {
				slots = []int{addSlot(rt.AggSumF), addSlot(rt.AggCount)}
			} else {
				slots = []int{addSlot(rt.AggSum), addSlot(rt.AggCount)}
			}
		}
		m.slotOffs = append(m.slotOffs, slots)
	}
	d.EntrySize = off
	g.q.Aggs = append(g.q.Aggs, d)
	m.id = len(g.q.Aggs) - 1
	return m
}
