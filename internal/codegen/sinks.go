package codegen

import (
	"aqe/internal/expr"
	"aqe/internal/ir"
	"aqe/internal/plan"
)

// buildSink materializes build-side tuples of a hash join into the join's
// arenas through ht_alloc (layout: [hash][next][keys...][fields...]).
type buildSink struct {
	join *plan.Join
	desc *joinMeta
}

func (s *buildSink) annotate(pl *Pipeline) {
	pl.SinkJoin = s.desc.id
	pl.BuildOf = s.join
}

func (s *buildSink) emit(p *pgen, res resolver) {
	b := p.b
	j := s.join
	// Pre-resolve referenced columns in the spine (see filterOp.apply).
	force(res, j.BuildKeys...)
	keyTypes := make([]expr.Type, len(j.BuildKeys))
	keyVals := make([]expr.Val, len(j.BuildKeys))
	for i, k := range j.BuildKeys {
		keyTypes[i] = k.Type()
		keyVals[i] = p.gen(k, res)
	}
	h := p.hashKeys(keyVals, keyTypes)
	t := b.Call("ht_alloc", ir.I64, b.ConstI64(int64(s.desc.id)))
	b.Store(b.GEP(t, nil, 0, 0), h)
	for i, kv := range keyVals {
		b.Store(b.GEP(t, nil, 0, int64(16+8*i)), kv.X)
	}
	for _, fld := range s.desc.fields {
		v := res(fld.srcIdx)
		p.storeAt(t, fld.off, v, fld.t)
	}
}

// aggSink is the group-by update path: find-or-insert in the worker-local
// aggregation hash table, then update the aggregate slots — all in
// generated code except the insert-and-grow slow path (§IV-E: runtime
// calls are fine from both tiers).
type aggSink struct {
	node *plan.GroupBy
	id   *aggMeta
}

func (s *aggSink) annotate(pl *Pipeline) { pl.SinkAgg = s.id.id }

func (s *aggSink) emit(p *pgen, res resolver) {
	b := p.b
	f := p.f
	gb := s.node
	desc := &p.g.q.Aggs[s.id.id]
	localOff := int64(desc.LocalOff)

	// Pre-resolve every column the keys and aggregate arguments touch in
	// the spine: the update path sits behind the hash-table walk's
	// conditional blocks, and an aggregate argument containing CASE would
	// otherwise cache column loads inside one arm (dominance hazard).
	force(res, gb.Keys...)
	for _, a := range gb.Aggs {
		force(res, a.Arg)
	}

	var entry *ir.Value
	if desc.Scalar {
		entry = b.Load(ir.I64, b.GEP(p.local, nil, 0, localOff+16))
	} else {
		keyTypes := make([]expr.Type, len(gb.Keys))
		keyVals := make([]expr.Val, len(gb.Keys))
		for i, k := range gb.Keys {
			keyTypes[i] = k.Type()
			keyVals[i] = p.gen(k, res)
		}
		// Hash string keys that directly reference a dictionary-encoded
		// column through their 4-byte code (the integer mixer) instead of
		// str_hash over the bytes. Equal strings have equal codes within a
		// column, so the hash stays consistent with the stored-key str_eq
		// comparison below; the stored key remains the raw (addr, len).
		hashVals := make([]expr.Val, len(gb.Keys))
		hashTypes := make([]expr.Type, len(gb.Keys))
		for i, k := range gb.Keys {
			hashVals[i], hashTypes[i] = keyVals[i], keyTypes[i]
			cr, isCol := k.(*expr.ColRef)
			if !isCol || keyTypes[i].Kind != expr.KString || p.dres == nil {
				continue
			}
			if p.dres.dict(cr.Idx) != nil {
				hashVals[i] = p.dres.code(cr.Idx)
				hashTypes[i] = expr.TInt
				p.g.noteDictRewrite(true)
			}
		}
		h := p.hashKeys(hashVals, hashTypes)
		buckets := b.Load(ir.I64, b.GEP(p.local, nil, 0, localOff))
		mask := b.Load(ir.I64, b.GEP(p.local, nil, 0, localOff+8))
		head := b.Load(ir.I64, b.GEP(buckets, b.And(h, mask), 8, 0))

		walk := f.NewBlock()
		advance := f.NewBlock()
		missB := f.NewBlock()
		updateB := f.NewBlock()
		var phiIn []struct {
			v   *ir.Value
			blk *ir.Block
		}

		pre := b.B
		b.Br(walk)
		b.SetBlock(walk)
		e := b.Phi(ir.I64)
		ir.AddIncoming(e, head, pre)
		checkB := f.NewBlock()
		b.CondBr(b.ICmp(ir.Eq, e, b.ConstI64(0)), missB, checkB)

		b.SetBlock(checkB)
		eh := b.Load(ir.I64, b.GEP(e, nil, 0, 8))
		next := f.NewBlock()
		b.CondBr(b.ICmp(ir.Eq, eh, h), next, advance)
		b.SetBlock(next)
		for i, kv := range keyVals {
			kf := desc.Keys[i]
			var eq *ir.Value
			if kf.Str {
				sAddr := b.Load(ir.I64, b.GEP(e, nil, 0, int64(kf.Off)))
				sLen := b.Load(ir.I64, b.GEP(e, nil, 0, int64(kf.Off+8)))
				r := b.Call("str_eq", ir.I64, kv.X, kv.Len, sAddr, sLen)
				eq = b.ICmp(ir.Ne, r, b.ConstI64(0))
			} else {
				sv := b.Load(ir.I64, b.GEP(e, nil, 0, int64(kf.Off)))
				eq = b.ICmp(ir.Eq, sv, kv.X)
			}
			next = f.NewBlock()
			b.CondBr(eq, next, advance)
			b.SetBlock(next)
		}
		// Found.
		phiIn = append(phiIn, struct {
			v   *ir.Value
			blk *ir.Block
		}{e, b.B})
		b.Br(updateB)

		b.SetBlock(advance)
		enext := b.Load(ir.I64, b.GEP(e, nil, 0, 0))
		b.Br(walk)
		ir.AddIncoming(e, enext, advance)

		// Miss: insert a fresh entry, store keys, initialize slots.
		b.SetBlock(missB)
		eNew := b.Call("agg_insert", ir.I64, b.ConstI64(int64(s.id.id)), h)
		for i, kv := range keyVals {
			kf := desc.Keys[i]
			if kf.Str {
				b.Store(b.GEP(eNew, nil, 0, int64(kf.Off)), kv.X)
				b.Store(b.GEP(eNew, nil, 0, int64(kf.Off+8)), kv.Len)
			} else {
				b.Store(b.GEP(eNew, nil, 0, int64(kf.Off)), kv.X)
			}
		}
		for _, af := range desc.Aggs {
			init := b.ConstI64(int64(af.Kind.Init()))
			b.Store(b.GEP(eNew, nil, 0, int64(af.Off)), init)
		}
		phiIn = append(phiIn, struct {
			v   *ir.Value
			blk *ir.Block
		}{eNew, b.B})
		b.Br(updateB)

		b.SetBlock(updateB)
		ephi := b.Phi(ir.I64)
		for _, in := range phiIn {
			ir.AddIncoming(ephi, in.v, in.blk)
		}
		entry = ephi
	}

	// Update the aggregate slots.
	slotIdx := 0
	for ai, a := range gb.Aggs {
		slots := s.id.slotOffs[ai]
		switch a.Func {
		case plan.Count, plan.CountStar:
			s.bump(p, entry, slots[0])
			slotIdx++
		case plan.Avg:
			s.accumulate(p, res, entry, slots[0], a.Arg)
			s.bump(p, entry, slots[1])
			slotIdx += 2
		case plan.Sum:
			s.accumulate(p, res, entry, slots[0], a.Arg)
			slotIdx++
		case plan.Min, plan.Max:
			b2 := p.b
			v := p.gen(a.Arg, res).X
			addr := b2.GEP(entry, nil, 0, int64(slots[0]))
			isFloat := a.Arg.Type().Kind == expr.KFloat
			var cur *ir.Value
			if isFloat {
				cur = b2.Load(ir.F64, addr)
			} else {
				cur = b2.Load(ir.I64, addr)
			}
			pred := ir.SLt
			if a.Func == plan.Max {
				pred = ir.SGt
			}
			var c *ir.Value
			if isFloat {
				c = b2.FCmp(pred, v, cur)
			} else {
				c = b2.ICmp(pred, v, cur)
			}
			nv := b2.Select(c, v, cur)
			b2.Store(addr, nv)
			slotIdx++
		}
	}
	_ = slotIdx
}

// bump increments a counter slot (unchecked: a count cannot overflow i64
// on any real workload, and HyPer does not overflow-check counters).
func (s *aggSink) bump(p *pgen, entry *ir.Value, off int) {
	b := p.b
	addr := b.GEP(entry, nil, 0, int64(off))
	cur := b.Load(ir.I64, addr)
	b.Store(addr, b.Add(cur, b.ConstI64(1)))
}

// accumulate adds the argument into a sum slot: overflow-checked for
// integer/decimal sums (the paper's §IV-F fusion target), a plain fadd for
// float sums.
func (s *aggSink) accumulate(p *pgen, res resolver, entry *ir.Value, off int, arg expr.Expr) {
	b := p.b
	v := p.gen(arg, res).X
	addr := b.GEP(entry, nil, 0, int64(off))
	if arg.Type().Kind == expr.KFloat {
		cur := b.Load(ir.F64, addr)
		b.Store(addr, b.FAdd(cur, v))
		return
	}
	cur := b.Load(ir.I64, addr)
	nv := p.cg.Checked(ir.OpSAddOvf, cur, v)
	b.Store(b.GEP(entry, nil, 0, int64(off)), nv)
}

// outSink materializes result rows.
type outSink struct {
	id     int
	schema []plan.ColDef
}

func (s *outSink) annotate(pl *Pipeline) { pl.SinkOut = s.id }

func (s *outSink) emit(p *pgen, res resolver) {
	b := p.b
	d := &p.g.q.Outs[s.id]
	row := b.Call("out_alloc", ir.I64, b.ConstI64(int64(s.id)))
	for j, col := range d.Cols {
		v := res(j)
		p.storeAt(row, col.Off, v, col.T)
	}
}

// emitQueryStart generates the queryStart function (Fig. 4): it launches
// every pipeline in dependency order through the engine's pipeline_run
// extern, which schedules morsels across workers and finalizes the
// pipeline's sink. queryStart itself is always interpreted.
func (g *cgen) emitQueryStart() {
	f := g.mod.NewFunc("queryStart", ir.I64, ir.I64, ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	for _, pl := range g.q.Pipelines {
		b.Call("pipeline_run", ir.Void, b.ConstI64(int64(pl.ID)))
	}
	b.RetVoid()
	g.q.QueryStart = f
	g.q.StateBytes = g.stateOff
	g.q.LocalBytes = g.localOff
	if g.q.StateBytes == 0 {
		g.q.StateBytes = 8
	}
	if g.q.LocalBytes == 0 {
		g.q.LocalBytes = 8
	}
}
