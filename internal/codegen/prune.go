package codegen

import (
	"math"

	"aqe/internal/expr"
	"aqe/internal/plan"
	"aqe/internal/storage"
)

// PruneCond is one sargable conjunct of a scan's pushed-down filter,
// usable for zone-map pruning: every surviving tuple must satisfy
// `column Op threshold`. The threshold is pre-normalized to the column's
// stored representation (Decimal thresholds rescaled to the column's
// scale, Float64 thresholds converted with the same int->float semantics
// the generated comparison uses), so block pruning compares raw zone-map
// statistics against it with no further conversion.
//
// Pruning is purely conservative: the generated code keeps the full
// residual predicate, the descriptor only licenses skipping blocks whose
// min/max prove no contained row can pass this conjunct.
type PruneCond struct {
	Col *storage.Column
	Op  expr.CmpOp
	I   int64   // threshold for integer-representable columns
	F   float64 // threshold for Float64 columns
}

// Float reports whether the condition compares in the float domain.
func (pc PruneCond) Float() bool { return pc.Col.Kind == storage.Float64 }

// BlockMayMatch reports whether some value in [min, max] can satisfy the
// condition (integer-representable columns). A false return proves every
// row of the block fails this conjunct, licensing a skip.
func (pc PruneCond) BlockMayMatch(min, max int64) bool {
	switch pc.Op {
	case expr.CmpEq:
		return min <= pc.I && pc.I <= max
	case expr.CmpNe:
		// Only a constant block equal to the threshold is unsatisfiable.
		return !(min == pc.I && max == pc.I)
	case expr.CmpLt:
		return min < pc.I
	case expr.CmpLe:
		return min <= pc.I
	case expr.CmpGt:
		return max > pc.I
	case expr.CmpGe:
		return max >= pc.I
	}
	return true
}

// BlockMayMatchF is BlockMayMatch for Float64 columns. An empty range
// (min=+Inf, max=-Inf: all-NaN block) satisfies nothing, and NaN rows
// inside a populated block cannot satisfy any comparison, so statistics
// that ignore NaNs stay conservative.
func (pc PruneCond) BlockMayMatchF(min, max float64) bool {
	switch pc.Op {
	case expr.CmpEq:
		return min <= pc.F && pc.F <= max
	case expr.CmpNe:
		return !(min == pc.F && max == pc.F)
	case expr.CmpLt:
		return min < pc.F
	case expr.CmpLe:
		return min <= pc.F
	case expr.CmpGt:
		return max > pc.F
	case expr.CmpGe:
		return max >= pc.F
	}
	return true
}

// extractPrune collects the sargable conjuncts of a scan filter: the
// top-level AND is flattened and every `col <cmp> const` (either operand
// order) over a fixed-width column becomes a PruneCond. String conjuncts
// (comparisons, IN, LIKE) over dictionary-encoded columns become
// conditions on dictionary codes, matching the code-valued zone maps —
// unless Options.NoDict disables dictionary use. Conjuncts of no usable
// shape — disjunctions, column-column comparisons, strings without a
// dictionary — contribute nothing; the residual predicate still runs in
// full inside the generated kernel.
func (g *cgen) extractPrune(s *plan.Scan) []PruneCond {
	if s.Filter == nil {
		return nil
	}
	var out []PruneCond
	var walk func(e expr.Expr)
	walk = func(e expr.Expr) {
		if l, ok := e.(*expr.Logic); ok && l.IsAnd {
			for _, a := range l.Args {
				walk(a)
			}
			return
		}
		if pc, ok := sargable(s, e); ok {
			out = append(out, pc)
			return
		}
		if !g.opts.NoDict {
			out = append(out, stringPrune(s, e)...)
		}
	}
	walk(s.Filter)
	return out
}

// dictPruneMaxCard bounds the dictionary cardinality for which a LIKE
// conjunct is evaluated against every dictionary value at plan-compile
// time to derive its matched-code range (mirrors the bitmap-rewrite cap).
const dictPruneMaxCard = 1 << 16

// stringPrune derives code-domain PruneConds from a string conjunct over a
// dictionary-encoded scan column. Equality and ordering map to the exact
// code / code-range of the literal; IN and LIKE map to the min/max matched
// code (a conservative envelope — blocks inside it still run the full
// predicate). A conjunct no dictionary value satisfies yields the
// impossible condition code = -1, pruning every block.
func stringPrune(s *plan.Scan, e expr.Expr) []PruneCond {
	colDict := func(ce expr.Expr) (*storage.Column, *storage.Dict) {
		cr, ok := ce.(*expr.ColRef)
		if !ok || cr.Idx < 0 || cr.Idx >= len(s.Cols) {
			return nil, nil
		}
		col := s.Table.Col(s.Cols[cr.Idx])
		if col == nil || col.Kind != storage.String {
			return nil, nil
		}
		return col, col.Dict()
	}
	none := func(col *storage.Column) []PruneCond {
		return []PruneCond{{Col: col, Op: expr.CmpEq, I: -1}}
	}
	span := func(col *storage.Column, lo, hi int64) []PruneCond {
		return []PruneCond{
			{Col: col, Op: expr.CmpGe, I: lo},
			{Col: col, Op: expr.CmpLe, I: hi},
		}
	}
	switch x := e.(type) {
	case *expr.Cmp:
		colE, constE, op := x.L, x.R, x.Op
		if _, isCol := colE.(*expr.ColRef); !isCol {
			colE, constE = x.R, x.L
			op = flipCmp(op)
		}
		col, d := colDict(colE)
		cst, isConst := constE.(*expr.Const)
		if col == nil || d == nil || !isConst || cst.T.Kind != expr.KString {
			return nil
		}
		code, found := d.Code(cst.S)
		lb := d.LowerBound(cst.S)
		ub := lb
		if found {
			ub++
		}
		switch op {
		case expr.CmpEq:
			if !found {
				return none(col)
			}
			return []PruneCond{{Col: col, Op: expr.CmpEq, I: code}}
		case expr.CmpNe:
			if !found {
				return nil
			}
			return []PruneCond{{Col: col, Op: expr.CmpNe, I: code}}
		case expr.CmpLt:
			return []PruneCond{{Col: col, Op: expr.CmpLt, I: lb}}
		case expr.CmpLe:
			return []PruneCond{{Col: col, Op: expr.CmpLt, I: ub}}
		case expr.CmpGt:
			return []PruneCond{{Col: col, Op: expr.CmpGe, I: ub}}
		default: // CmpGe
			return []PruneCond{{Col: col, Op: expr.CmpGe, I: lb}}
		}
	case *expr.InList:
		col, d := colDict(x.Arg)
		if col == nil || d == nil {
			return nil
		}
		lo, hi := int64(math.MaxInt64), int64(-1)
		for _, c := range x.List {
			if code, ok := d.Code(c.S); ok {
				if code < lo {
					lo = code
				}
				if code > hi {
					hi = code
				}
			}
		}
		if hi < 0 {
			return none(col)
		}
		return span(col, lo, hi)
	case *expr.LikeExpr:
		if x.Negate {
			return nil
		}
		col, d := colDict(x.Arg)
		if col == nil || d == nil || d.Card() > dictPruneMaxCard {
			return nil
		}
		lo, hi := int64(-1), int64(-1)
		for i := 0; i < d.Card(); i++ {
			if x.Compiled.Match([]byte(d.Value(i))) {
				if lo < 0 {
					lo = int64(i)
				}
				hi = int64(i)
			}
		}
		if lo < 0 {
			return none(col)
		}
		return span(col, lo, hi)
	}
	return nil
}

// sargable recognizes `col <cmp> const` / `const <cmp> col` over a
// fixed-width scan column and normalizes it into a PruneCond. It rejects
// any shape whose runtime evaluation could rescale the column value (the
// rescale carries an overflow check, and pruning must never elide a
// potential trap), so only constants at or below the column's decimal
// scale qualify.
func sargable(s *plan.Scan, e expr.Expr) (PruneCond, bool) {
	cmp, ok := e.(*expr.Cmp)
	if !ok {
		return PruneCond{}, false
	}
	colE, constE, op := cmp.L, cmp.R, cmp.Op
	if _, isCol := colE.(*expr.ColRef); !isCol {
		colE, constE = cmp.R, cmp.L
		op = flipCmp(op)
	}
	cr, ok := colE.(*expr.ColRef)
	if !ok {
		return PruneCond{}, false
	}
	cst, ok := constE.(*expr.Const)
	if !ok {
		return PruneCond{}, false
	}
	if cr.Idx < 0 || cr.Idx >= len(s.Cols) {
		return PruneCond{}, false
	}
	col := s.Table.Col(s.Cols[cr.Idx])
	if col == nil {
		return PruneCond{}, false
	}
	pc := PruneCond{Col: col, Op: op}
	switch col.Kind {
	case storage.Int64:
		if cst.T.Kind != expr.KInt {
			return PruneCond{}, false
		}
		pc.I = cst.I
	case storage.Date:
		if cst.T.Kind != expr.KDate {
			return PruneCond{}, false
		}
		pc.I = cst.I
	case storage.Char:
		if cst.T.Kind != expr.KChar {
			return PruneCond{}, false
		}
		pc.I = cst.I
	case storage.Decimal:
		var cscale int
		switch cst.T.Kind {
		case expr.KInt:
			cscale = 0
		case expr.KDecimal:
			cscale = cst.T.Scale
		default:
			return PruneCond{}, false
		}
		if cscale > col.Scale {
			// The runtime would rescale the column value (with an
			// overflow check); not prunable.
			return PruneCond{}, false
		}
		v, ok := mulPow10(cst.I, col.Scale-cscale)
		if !ok {
			return PruneCond{}, false
		}
		pc.I = v
	case storage.Float64:
		// Mirror toFloatIR: SIToFP then a divide by 10^scale.
		switch cst.T.Kind {
		case expr.KFloat:
			pc.F = cst.F
		case expr.KInt:
			pc.F = float64(cst.I)
		case expr.KDecimal:
			pc.F = float64(cst.I) / float64(pow10(cst.T.Scale))
		default:
			return PruneCond{}, false
		}
	default: // String
		return PruneCond{}, false
	}
	return pc, true
}

// flipCmp mirrors a comparison across its operands (const <cmp> col ->
// col <cmp'> const).
func flipCmp(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.CmpLt:
		return expr.CmpGt
	case expr.CmpLe:
		return expr.CmpGe
	case expr.CmpGt:
		return expr.CmpLt
	case expr.CmpGe:
		return expr.CmpLe
	}
	return op // Eq, Ne are symmetric
}

// mulPow10 scales v by 10^p, reporting overflow instead of wrapping.
func mulPow10(v int64, p int) (int64, bool) {
	for i := 0; i < p; i++ {
		if v > math.MaxInt64/10 || v < math.MinInt64/10 {
			return 0, false
		}
		v *= 10
	}
	return v, true
}
