package codegen

import (
	"aqe/internal/expr"
	"aqe/internal/plan"
	"aqe/internal/rt"
	"aqe/internal/storage"
)

// VecSpec describes one pipeline in engine-neutral terms so the vectorized
// backend can compile batch kernels against exactly the state the closure
// tiers use: the same join hash tables, aggregation tables, output buffers,
// stored-tuple layouts and literal addresses. Codegen builds it alongside
// the IR worker function; both views of the pipeline must agree bit for bit
// (hash values, stored addresses, trap conditions), because a query may
// switch engines between morsels and the breakers merge whatever both wrote.
type VecSpec struct {
	// Source: exactly one of Scan / AggSrc is set, mirroring
	// Pipeline.Table / Pipeline.AggSource.
	Scan   *VecScan
	AggSrc *VecAggSrc

	Ops []VecOp

	// Sink: exactly one of Build / Agg / Out is set.
	Build *VecBuild
	Agg   *VecAgg
	Out   *VecOut

	// HashDense marks pipelines dominated by hash-table traffic (a probe
	// operator or a grouped aggregation sink): the workloads where batching
	// overlaps cache misses and the vectorized engine wins. Compute-dense
	// pipelines (pure scan→filter→arith→sink) amortize better in compiled
	// code; the cost model picks the speedup estimate by this flag.
	HashDense bool

	// StrLits maps every string literal reachable from the spec's
	// expressions to the {addr, len} codegen interned for it, so the
	// vectorized engine evaluates string constants to the exact (addr, len)
	// the compiled tiers embed — stored string references must compare
	// bit-identical across engines.
	StrLits map[string][2]uint64

	// ParamBase is the base address of the query's parameter segment
	// (Query.ParamSeg). Kernels evaluate expr.Param by loading the slot
	// through the run's segment table, so a fingerprint-cached kernel
	// reads the current execution's bindings exactly like cached closures.
	ParamBase uint64
}

// VecScan is a table-scan source: per-column storage kind and the base
// addresses codegen registered (the same segments the compiled tiers read,
// so string values resolve to identical (addr, len) pairs).
type VecScan struct {
	Table *storage.Table
	Cols  []VecCol
}

// VecCol is one scanned column.
type VecCol struct {
	Col  *storage.Column
	Kind storage.Kind
	Base uint64 // column data segment base
	Heap uint64 // string heap base (String columns only)
}

// VecAggSrc is an aggregation-source pipeline: a scan over the dense group
// index published at IndexStateOff, decoding keys and finalized aggregates
// with the same formulas as the compiled group resolver.
type VecAggSrc struct {
	AggID         int
	IndexStateOff int
	GB            *plan.GroupBy
	KeyOffs       []int
	SlotOffs      [][]int
}

// VecOp is a streaming operator: exactly one field is set.
type VecOp struct {
	Filter  *VecFilter
	Project *VecProject
	Probe   *VecProbe
}

// VecFilter narrows the selection vector by a predicate.
type VecFilter struct{ Cond expr.Expr }

// VecProject replaces the schema with computed expressions.
type VecProject struct{ Exprs []expr.Expr }

// VecProbe is a hash-join probe against the table at StateOff.
type VecProbe struct {
	Join          *plan.Join
	JoinID        int
	StateOff      int
	Filter        bool // Bloom filter present at StateOff+16
	StatsLocalOff int  // worker-local [hits][skips] counters, -1 if disabled
	NP            int  // probe-side schema width
	Fields        []VecField
}

// VecField is one stored build-side column of a join tuple.
type VecField struct {
	SrcIdx int
	Off    int
	T      expr.Type
}

// VecBuild materializes build tuples ([hash][next][keys][fields]).
type VecBuild struct {
	JoinID    int
	TupleSize int
	Keys      []expr.Expr
	Fields    []VecField
}

// VecAgg is the group-by update sink. KeyCodeBase replays codegen's
// dictionary-code hash rewrite: a non-zero entry is the base address of the
// key column's 4-byte code vector, and the kernel must hash the code as an
// integer (not the string bytes) or the per-worker tables shared with the
// compiled tiers would split groups.
type VecAgg struct {
	AggID       int
	GB          *plan.GroupBy
	LocalOff    int
	Scalar      bool
	Keys        []rt.KeyField
	Aggs        []rt.AggField
	SlotOffs    [][]int
	KeyCodeBase []uint64
}

// VecOut materializes result rows.
type VecOut struct {
	OutID   int
	RowSize int
	Cols    []OutCol
}

// buildVecSpec derives the vectorized view of the pipeline just emitted.
// Exactly one of scan / (am, gb) is set, matching emitScanPipeline and
// emitPipeline. It runs unconditionally on every codegen pass so segment
// and literal registration stays deterministic whether or not the engine
// ever installs a vectorized kernel.
func (g *cgen) buildVecSpec(scan *plan.Scan, am *aggMeta, gb *plan.GroupBy,
	ops []pipeOp, sk sink) *VecSpec {

	sp := &VecSpec{ParamBase: g.paramBase}

	// dicts tracks, per column of the current schema, the dictionary codegen
	// would see through its dictResolver chain — the aggSink hash rewrite is
	// the one dictionary decision that changes shared state, so it must be
	// replayed from identical inputs. nil when NoDict disables rewrites.
	var dicts []*storage.Dict
	if scan != nil {
		vs := &VecScan{Table: scan.Table}
		for _, name := range scan.Cols {
			c := scan.Table.MustCol(name)
			vc := VecCol{Col: c, Kind: c.Kind, Base: g.tableBase(c)}
			if c.Kind == storage.String {
				vc.Heap = g.heapBase[c]
			}
			vs.Cols = append(vs.Cols, vc)
		}
		sp.Scan = vs
		if !g.opts.NoDict {
			dicts = make([]*storage.Dict, len(scan.Cols))
			for j, name := range scan.Cols {
				dicts[j] = scan.Table.MustCol(name).Dict()
			}
		}
	} else {
		desc := &g.q.Aggs[am.id]
		sp.AggSrc = &VecAggSrc{
			AggID: am.id, IndexStateOff: desc.IndexStateOff,
			GB: gb, KeyOffs: am.keyOffs, SlotOffs: am.slotOffs,
		}
	}

	for _, op := range ops {
		switch x := op.(type) {
		case *filterOp:
			sp.Ops = append(sp.Ops, VecOp{Filter: &VecFilter{Cond: x.cond}})
		case *projectOp:
			sp.Ops = append(sp.Ops, VecOp{Project: &VecProject{Exprs: x.node.Exprs}})
			if dicts != nil {
				nd := make([]*storage.Dict, len(x.node.Exprs))
				for j, e := range x.node.Exprs {
					if cr, ok := e.(*expr.ColRef); ok {
						nd[j] = dicts[cr.Idx]
					}
				}
				dicts = nd
			}
		case *probeOp:
			j := x.join
			np := len(j.Probe.Schema())
			vp := &VecProbe{
				Join: j, JoinID: x.desc.id,
				StateOff:      x.desc.desc.StateOff,
				Filter:        x.desc.desc.Filter,
				StatsLocalOff: x.desc.desc.StatsLocalOff,
				NP:            np,
			}
			for _, f := range x.desc.fields {
				vp.Fields = append(vp.Fields, VecField{SrcIdx: f.srcIdx, Off: f.off, T: f.t})
			}
			sp.Ops = append(sp.Ops, VecOp{Probe: vp})
			sp.HashDense = true
			if dicts != nil {
				// Probe-side columns keep their dictionaries; build-side
				// payload (and the outer count) come from raw tuple bytes.
				nd := make([]*storage.Dict, len(j.Schema()))
				copy(nd, dicts)
				dicts = nd
			}
		}
	}

	switch s := sk.(type) {
	case *buildSink:
		vb := &VecBuild{
			JoinID: s.desc.id, TupleSize: s.desc.desc.TupleSize,
			Keys: s.join.BuildKeys,
		}
		for _, f := range s.desc.fields {
			vb.Fields = append(vb.Fields, VecField{SrcIdx: f.srcIdx, Off: f.off, T: f.t})
		}
		sp.Build = vb
	case *aggSink:
		desc := &g.q.Aggs[s.id.id]
		va := &VecAgg{
			AggID: s.id.id, GB: s.node, LocalOff: desc.LocalOff,
			Scalar: desc.Scalar, Keys: desc.Keys, Aggs: desc.Aggs,
			SlotOffs: s.id.slotOffs,
		}
		if !desc.Scalar {
			sp.HashDense = true
			va.KeyCodeBase = make([]uint64, len(s.node.Keys))
			for i, k := range s.node.Keys {
				cr, isCol := k.(*expr.ColRef)
				if !isCol || k.Type().Kind != expr.KString || dicts == nil {
					continue
				}
				// Same condition as the aggSink hash substitution; dictBase
				// is memoized, so this re-registers nothing.
				if d := dicts[cr.Idx]; d != nil {
					va.KeyCodeBase[i] = g.dictBase(d)
				}
			}
		}
		sp.Agg = va
	case *outSink:
		d := &g.q.Outs[s.id]
		sp.Out = &VecOut{OutID: s.id, RowSize: d.RowSize, Cols: d.Cols}
	}

	g.internSpecLits(sp)
	return sp
}

// internSpecLits interns every string literal reachable from the spec's
// expressions so the vectorized engine evaluates string constants to the
// same (addr, len) the compiled tiers embed. Interning is memoized, so
// literals the compiled code already registered resolve identically; a
// literal only the spec interns (e.g. one the compiled path folded to a
// dictionary code) extends the shared segment deterministically.
func (g *cgen) internSpecLits(sp *VecSpec) {
	sp.StrLits = map[string][2]uint64{}
	intern := func(e expr.Expr) {
		walkExpr(e, func(x expr.Expr) {
			if c, ok := x.(*expr.Const); ok && c.T.Kind == expr.KString {
				addr, n := g.internLit(c.S)
				sp.StrLits[c.S] = [2]uint64{uint64(addr), uint64(n)}
			}
		})
	}
	for _, op := range sp.Ops {
		switch {
		case op.Filter != nil:
			intern(op.Filter.Cond)
		case op.Project != nil:
			for _, e := range op.Project.Exprs {
				intern(e)
			}
		case op.Probe != nil:
			for _, e := range op.Probe.Join.ProbeKeys {
				intern(e)
			}
			intern(op.Probe.Join.Residual)
		}
	}
	switch {
	case sp.Build != nil:
		for _, e := range sp.Build.Keys {
			intern(e)
		}
	case sp.Agg != nil:
		for _, e := range sp.Agg.GB.Keys {
			intern(e)
		}
		for _, a := range sp.Agg.GB.Aggs {
			intern(a.Arg)
		}
	}
}

// walkExpr invokes fn on e and every subexpression (including InList
// constants), in no particular order. nil expressions are skipped.
func walkExpr(e expr.Expr, fn func(expr.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *expr.Arith:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *expr.Cmp:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *expr.Logic:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	case *expr.NotExpr:
		walkExpr(x.Arg, fn)
	case *expr.LikeExpr:
		walkExpr(x.Arg, fn)
	case *expr.InList:
		walkExpr(x.Arg, fn)
		for _, c := range x.List {
			walkExpr(c, fn)
		}
	case *expr.CaseExpr:
		for _, w := range x.Whens {
			walkExpr(w.Cond, fn)
			walkExpr(w.Then, fn)
		}
		walkExpr(x.Else, fn)
	case *expr.YearExpr:
		walkExpr(x.Arg, fn)
	case *expr.SubstrExpr:
		walkExpr(x.Arg, fn)
	case *expr.CastExpr:
		walkExpr(x.Arg, fn)
	}
}
