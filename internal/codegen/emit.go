package codegen

import (
	"fmt"

	"aqe/internal/expr"
	"aqe/internal/ir"
	"aqe/internal/plan"
	"aqe/internal/storage"
)

// resolver resolves column idx of the current pipeline schema to its value
// for the current tuple.
type resolver func(idx int) expr.Val

// dictResolver resolves column idx of the current pipeline schema to its
// order-preserving dictionary (nil when not dictionary-encoded) and emits
// the load of its code for the current tuple on demand. Code loads are
// deliberately not memoized: each is a single i32 load, and a fresh load
// at every use is trivially dominance-safe even inside CASE arms, where a
// cached first-use definition would not dominate later uses.
type dictResolver struct {
	dict func(idx int) *storage.Dict
	code func(idx int) expr.Val
}

// cached memoizes a resolver. Memoization is safe because code generation
// only moves forward into dominated blocks along the pipeline spine, so a
// value emitted at first use dominates all later uses.
func cached(res resolver) resolver {
	memo := map[int]expr.Val{}
	return func(i int) expr.Val {
		if v, ok := memo[i]; ok {
			return v
		}
		v := res(i)
		memo[i] = v
		return v
	}
}

// pgen is the state of generating one worker function.
//
// Control-flow invariant shared by ops and sinks: every apply/emit leaves
// the builder positioned in exactly one open (unterminated) block meaning
// "this tuple has been fully processed — fall through"; paths that reject
// the current tuple (failed filters, exhausted anti-joins) branch to
// p.cont, the innermost continue target (next source tuple, or next hash
// chain candidate inside an inner-join walk).
type pgen struct {
	g     *cgen
	f     *ir.Function
	b     *ir.Builder
	cg    *expr.CG
	state *ir.Value
	local *ir.Value
	cont  *ir.Block
	// dres resolves dictionary codes of the current schema; nil when the
	// pipeline source has no dictionary-encoded columns in scope (or
	// Options.NoDict is set). Ops that change the schema swap it alongside
	// the value resolver.
	dres *dictResolver
}

// gen compiles an expression with column references resolved by res and
// dictionary rewrites driven by the pipeline's current dictResolver.
func (p *pgen) gen(e expr.Expr, res resolver) expr.Val {
	old, oldDict, oldCode := p.cg.Col, p.cg.Dict, p.cg.CodeCol
	p.cg.Col = func(i int) expr.Val { return res(i) }
	if d := p.dres; d != nil {
		p.cg.Dict = func(i int) expr.DictRef {
			// The ok-pattern avoids handing expr a non-nil interface
			// wrapping a nil *storage.Dict.
			if sd := d.dict(i); sd != nil {
				return sd
			}
			return nil
		}
		p.cg.CodeCol = d.code
	} else {
		p.cg.Dict, p.cg.CodeCol = nil, nil
	}
	v := p.cg.Gen(e)
	p.cg.Col, p.cg.Dict, p.cg.CodeCol = old, oldDict, oldCode
	return v
}

// genBool compiles a boolean expression to an i1 value.
func (p *pgen) genBool(e expr.Expr, res resolver) *ir.Value {
	v := p.gen(e, res).X
	if v.Type != ir.I1 {
		v = p.b.ICmp(ir.Ne, v, p.b.ConstI64(0))
	}
	return v
}

// hashKeys emits the hash computation over key values (splitmix-style
// mixing for integers, the runtime hash for strings). Hash arithmetic is
// deliberately unchecked: wraparound is part of the function.
func (p *pgen) hashKeys(vals []expr.Val, types []expr.Type) *ir.Value {
	b := p.b
	var h *ir.Value
	for i, v := range vals {
		var kh *ir.Value
		if types[i].Kind == expr.KString {
			kh = b.Call("str_hash", ir.I64, v.X, v.Len)
		} else {
			kh = b.Mul(v.X, b.ConstI64(-0x61c8864680b583eb)) // 0x9E3779B97F4A7C15
			kh = b.Xor(kh, b.LShr(kh, b.ConstI64(32)))
			kh = b.Mul(kh, b.ConstI64(-0x7ee3623a03d3b4a3)) // 0x811c9dc5c85c7e5d
			kh = b.Xor(kh, b.LShr(kh, b.ConstI64(29)))
		}
		if h == nil {
			h = kh
		} else {
			h = b.Mul(b.Xor(h, kh), b.ConstI64(-0x61c8864680b583eb))
		}
	}
	return h
}

// loadAt emits a typed load of a tuple field at addr+off.
func (p *pgen) loadAt(base *ir.Value, off int, t expr.Type) expr.Val {
	b := p.b
	switch t.Kind {
	case expr.KFloat:
		return expr.Val{X: b.Load(ir.F64, b.GEP(base, nil, 0, int64(off)))}
	case expr.KString:
		addr := b.Load(ir.I64, b.GEP(base, nil, 0, int64(off)))
		n := b.Load(ir.I64, b.GEP(base, nil, 0, int64(off+8)))
		return expr.Val{X: addr, Len: n}
	default:
		return expr.Val{X: b.Load(ir.I64, b.GEP(base, nil, 0, int64(off)))}
	}
}

// storeAt emits a typed store of v to base+off.
func (p *pgen) storeAt(base *ir.Value, off int, v expr.Val, t expr.Type) {
	b := p.b
	x := v.X
	switch t.Kind {
	case expr.KString:
		b.Store(b.GEP(base, nil, 0, int64(off)), x)
		b.Store(b.GEP(base, nil, 0, int64(off+8)), v.Len)
	case expr.KBool:
		if x.Type == ir.I1 {
			x = b.ZExt(x, ir.I64)
		}
		b.Store(b.GEP(base, nil, 0, int64(off)), x)
	default:
		b.Store(b.GEP(base, nil, 0, int64(off)), x)
	}
}

// ---- worker scaffolding ----

// emitWorker builds the morsel-loop scaffold (the paper's Fig. 4 worker
// shape) and runs body generation inside it. mkRes builds the source
// resolver given the loop induction variable.
func (g *cgen) emitWorker(label string, mkRes func(p *pgen, i *ir.Value) resolver,
	ops []pipeOp, sk sink) *ir.Function {

	f := g.mod.NewFunc(fmt.Sprintf("worker%d", len(g.q.Pipelines)),
		ir.I64, ir.I64, ir.I64, ir.I64) // state, local, begin, end
	b := ir.NewBuilder(f)
	p := &pgen{g: g, f: f, b: b, state: f.Params[0], local: f.Params[1]}
	p.cg = &expr.CG{B: b, Pattern: g.internPattern, StrLit: g.internLit,
		OnDictRewrite: g.noteDictRewrite,
		Param:         func(idx int, t expr.Type) expr.Val { return g.genParam(b, idx, t) }}
	g.pipeRewrites = 0

	entry := b.B
	head := f.NewBlock()
	body := f.NewBlock()
	contB := f.NewBlock()
	exit := f.NewBlock()

	b.Br(head)
	b.SetBlock(head)
	i := b.Phi(ir.I64)
	cond := b.ICmp(ir.SLt, i, f.Params[3])
	b.CondBr(cond, body, exit)

	b.SetBlock(body)
	p.cont = contB
	res := cached(mkRes(p, i))
	apply(p, ops, res, sk)
	b.Br(contB)

	b.SetBlock(contB)
	i2 := b.Add(i, b.ConstI64(1))
	b.Br(head)
	ir.AddIncoming(i, f.Params[2], entry)
	ir.AddIncoming(i, i2, contB)

	b.SetBlock(exit)
	b.RetVoid()
	return f
}

// apply runs the operator chain in continuation-passing style and emits
// the sink innermost.
func apply(p *pgen, ops []pipeOp, res resolver, sk sink) {
	var step func(k int, r resolver)
	step = func(k int, r resolver) {
		if k == len(ops) {
			sk.emit(p, r)
			return
		}
		ops[k].apply(p, r, func(r2 resolver) { step(k+1, r2) })
	}
	step(0, res)
}

func (g *cgen) addPipeline(f *ir.Function, label string, table *storage.Table,
	aggSrc int, sk sink) {
	pl := &Pipeline{
		ID: len(g.q.Pipelines), Fn: f, Label: label,
		Table: table, AggSource: aggSrc,
		SinkJoin: -1, SinkAgg: -1, SinkOut: -1,
		DictRewrites: g.pipeRewrites,
	}
	sk.annotate(pl)
	g.q.Pipelines = append(g.q.Pipelines, pl)
}

// emitScanPipeline generates a pipeline sourced from a table scan.
func (g *cgen) emitScanPipeline(s *plan.Scan, ops []pipeOp, sk sink, label string) {
	// Disambiguate repeated scans of the same table (Fig. 14's
	// "scan partsupp 1 / 2").
	n := 1
	for _, pl := range g.q.Pipelines {
		if pl.Table == s.Table {
			n++
		}
	}
	if n > 1 {
		label = fmt.Sprintf("%s %d", label, n)
	}
	f := g.emitWorker(label, func(p *pgen, i *ir.Value) resolver {
		p.dres = g.scanDictResolver(p, s, i)
		return g.scanResolver(p, s, i)
	}, ops, sk)
	g.addPipeline(f, label, s.Table, -1, sk)
	pl := g.q.Pipelines[len(g.q.Pipelines)-1]
	pl.Prune = g.extractPrune(s)
	pl.Vec = g.buildVecSpec(s, nil, nil, ops, sk)
}

func (g *cgen) scanResolver(p *pgen, s *plan.Scan, i *ir.Value) resolver {
	return func(j int) expr.Val {
		b := p.b
		c := s.Table.MustCol(s.Cols[j])
		base := b.ConstI64(int64(g.tableBase(c)))
		switch c.Kind {
		case storage.Char:
			v := b.Load(ir.I8, b.GEP(base, i, 1, 0))
			return expr.Val{X: b.ZExt(v, ir.I64)}
		case storage.Float64:
			return expr.Val{X: b.Load(ir.F64, b.GEP(base, i, 8, 0))}
		case storage.String:
			off := b.Load(ir.I64, b.GEP(base, i, 16, 0))
			n := b.Load(ir.I64, b.GEP(base, i, 16, 8))
			heap := b.ConstI64(int64(g.heapBase[c]))
			return expr.Val{X: b.Add(heap, off), Len: n}
		default:
			return expr.Val{X: b.Load(ir.I64, b.GEP(base, i, 8, 0))}
		}
	}
}

// scanDictResolver builds the dictionary resolver of a table scan: column
// j resolves to its fresh order-preserving dictionary, and codes load as
// zero-extended i32 from the dictionary's code vector at the loop
// induction variable. Returns nil when rewrites are disabled.
func (g *cgen) scanDictResolver(p *pgen, s *plan.Scan, i *ir.Value) *dictResolver {
	if g.opts.NoDict {
		return nil
	}
	return &dictResolver{
		dict: func(j int) *storage.Dict {
			return s.Table.MustCol(s.Cols[j]).Dict()
		},
		code: func(j int) expr.Val {
			b := p.b
			d := s.Table.MustCol(s.Cols[j]).Dict()
			base := b.ConstI64(int64(g.dictBase(d)))
			v := b.Load(ir.I32, b.GEP(base, i, 4, 0))
			return expr.Val{X: b.ZExt(v, ir.I64)}
		},
	}
}

// emitPipeline generates a pipeline sourced from the groups of an
// aggregation (the scan over the merged hash table's dense index).
func (g *cgen) emitPipeline(_ *storage.Table, am *aggMeta, gb *plan.GroupBy,
	ops []pipeOp, sk sink, label string) {
	if label == "" {
		label = "hash table scan"
	}
	desc := &g.q.Aggs[am.id]
	f := g.emitWorker(label, func(p *pgen, i *ir.Value) resolver {
		b := p.b
		idxBase := b.Load(ir.I64, b.GEP(p.state, nil, 0, int64(desc.IndexStateOff)))
		e := b.Load(ir.I64, b.GEP(idxBase, i, 8, 0))
		return g.groupResolver(p, am, gb, e)
	}, ops, sk)
	g.addPipeline(f, label, nil, am.id, sk)
	g.q.Pipelines[len(g.q.Pipelines)-1].Vec = g.buildVecSpec(nil, am, gb, ops, sk)
}

// groupResolver resolves the GroupBy output schema against a group entry.
func (g *cgen) groupResolver(p *pgen, am *aggMeta, gb *plan.GroupBy, e *ir.Value) resolver {
	nk := len(gb.Keys)
	return func(j int) expr.Val {
		b := p.b
		if j < nk {
			return p.loadAt(e, am.keyOffs[j], gb.Keys[j].Type())
		}
		a := gb.Aggs[j-nk]
		slots := am.slotOffs[j-nk]
		switch a.Func {
		case plan.Avg:
			sum := p.loadAt(e, slots[0], sumSlotType(a))
			cnt := b.Load(ir.I64, b.GEP(e, nil, 0, int64(slots[1])))
			var sumF *ir.Value
			if a.Arg.Type().Kind == expr.KFloat {
				sumF = sum.X
			} else {
				sumF = b.SIToFP(sum.X)
				if s := a.Arg.Type().Scale; s > 0 {
					sumF = b.FDiv(sumF, b.ConstF64(float64(pow10(s))))
				}
			}
			return expr.Val{X: b.FDiv(sumF, b.SIToFP(cnt))}
		case plan.Sum:
			return p.loadAt(e, slots[0], sumSlotType(a))
		default: // Min/Max/Count/CountStar
			return expr.Val{X: b.Load(ir.I64, b.GEP(e, nil, 0, int64(slots[0])))}
		}
	}
}

func sumSlotType(a plan.AggExpr) expr.Type {
	if a.Arg.Type().Kind == expr.KFloat {
		return expr.TFloat
	}
	return a.Arg.Type()
}

func pow10(n int) int64 {
	p := int64(1)
	for i := 0; i < n; i++ {
		p *= 10
	}
	return p
}

// ---- streaming operators ----

type filterOp struct{ cond expr.Expr }

func (op *filterOp) apply(p *pgen, res resolver, down func(resolver)) {
	// Force the referenced columns into the spine first: a column whose
	// first load were emitted inside a CASE arm of the condition would
	// not dominate later uses.
	force(res, op.cond)
	c := p.genBool(op.cond, res)
	pass := p.b.NewBlock()
	p.b.CondBr(c, pass, p.cont)
	p.b.SetBlock(pass)
	down(res)
}

// force pre-resolves every column referenced by the expressions in the
// current block, populating the resolver cache at a point that dominates
// all later uses.
func force(res resolver, exprs ...expr.Expr) {
	for _, e := range exprs {
		if e == nil {
			continue
		}
		collectCols(e, func(i int) { res(i) })
	}
}

type projectOp struct{ node *plan.Project }

func (op *projectOp) apply(p *pgen, res resolver, down func(resolver)) {
	// Projections evaluate eagerly in the spine (CASE arms re-join it),
	// so downstream uses see dominating definitions.
	vals := make([]expr.Val, len(op.node.Exprs))
	for j, e := range op.node.Exprs {
		force(res, e)
		vals[j] = p.gen(e, res)
	}
	// Bare column references keep their dictionary across the projection;
	// computed expressions lose it.
	oldD := p.dres
	if oldD != nil {
		remap := make(map[int]int, len(op.node.Exprs))
		for j, e := range op.node.Exprs {
			if cr, ok := e.(*expr.ColRef); ok {
				remap[j] = cr.Idx
			}
		}
		p.dres = &dictResolver{
			dict: func(j int) *storage.Dict {
				if src, ok := remap[j]; ok {
					return oldD.dict(src)
				}
				return nil
			},
			code: func(j int) expr.Val { return oldD.code(remap[j]) },
		}
	}
	down(func(j int) expr.Val { return vals[j] })
	p.dres = oldD
}

// probeOp is a hash-join probe: it walks the bucket chain of the build-side
// table entirely in generated code (Fig. 4's workerC shape).
type probeOp struct {
	join *plan.Join
	desc *joinMeta
}

func (op *probeOp) apply(p *pgen, res resolver, down func(resolver)) {
	b := p.b
	f := p.f
	j := op.join
	np := len(j.Probe.Schema())

	// Downstream schema is [probe ++ build]: probe-side columns keep their
	// dictionaries, build-side columns come from materialized tuples (raw
	// bytes, no code vector in scope).
	oldD := p.dres
	if oldD != nil {
		p.dres = &dictResolver{
			dict: func(idx int) *storage.Dict {
				if idx < np {
					return oldD.dict(idx)
				}
				return nil
			},
			code: func(idx int) expr.Val { return oldD.code(idx) },
		}
		defer func() { p.dres = oldD }()
	}

	keyTypes := make([]expr.Type, len(j.ProbeKeys))
	keyVals := make([]expr.Val, len(j.ProbeKeys))
	for i, k := range j.ProbeKeys {
		keyTypes[i] = k.Type()
		keyVals[i] = p.gen(k, res)
	}
	h := p.hashKeys(keyVals, keyTypes)

	stOff := int64(op.desc.desc.StateOff)
	mask := b.Load(ir.I64, b.GEP(p.state, nil, 0, stOff+8))
	slot := b.And(h, mask)
	loadHead := func() *ir.Value {
		buckets := b.Load(ir.I64, b.GEP(p.state, nil, 0, stOff))
		return b.Load(ir.I64, b.GEP(buckets, slot, 8, 0))
	}

	walk := f.NewBlock()
	advance := f.NewBlock()
	exitW := f.NewBlock()
	outer := op.outerCount()

	// Entry edges into the walk block: (head value, predecessor) pairs.
	type entryEdge struct {
		v   *ir.Value
		blk *ir.Block
	}
	var entryIn []entryEdge
	if op.desc.desc.Filter {
		// Bloom pre-check: test the 16-bit tag word for hash bits 48..51
		// before touching the bucket array. A filtered-out probe skips the
		// bucket load and the chain walk entirely — the filter is 8x
		// denser than the bucket array, so the tag load stays cache-hot
		// while the dependent random bucket access it replaces does not.
		// A filtered-out probe enters the walk with a null head and exits
		// on its first test.
		fBase := b.Load(ir.I64, b.GEP(p.state, nil, 0, stOff+16))
		fw := b.ZExt(b.Load(ir.I16, b.GEP(fBase, slot, 2, 0)), ir.I64)
		tag := b.Shl(b.ConstI64(1), b.And(b.LShr(h, b.ConstI64(48)), b.ConstI64(15)))
		pass := b.ICmp(ir.Ne, b.And(fw, tag), b.ConstI64(0))
		hitB := f.NewBlock()
		missB := f.NewBlock()
		b.CondBr(pass, hitB, missB)
		b.SetBlock(hitB)
		op.bumpStat(p, 0)
		entryIn = append(entryIn, entryEdge{loadHead(), b.B})
		b.Br(walk)
		b.SetBlock(missB)
		op.bumpStat(p, 8)
		entryIn = append(entryIn, entryEdge{b.ConstI64(0), b.B})
		b.Br(walk)
	} else {
		entryIn = append(entryIn, entryEdge{loadHead(), b.B})
		b.Br(walk)
	}

	b.SetBlock(walk)
	e := b.Phi(ir.I64)
	for _, in := range entryIn {
		ir.AddIncoming(e, in.v, in.blk)
	}
	var cnt *ir.Value
	if outer {
		cnt = b.Phi(ir.I64)
		for _, in := range entryIn {
			ir.AddIncoming(cnt, b.ConstI64(0), in.blk)
		}
	}
	// advIn collects (value, block) pairs flowing into the advance block's
	// count φ.
	type adv struct {
		v   *ir.Value
		blk *ir.Block
	}
	var advIn []adv
	gotoAdvance := func(c *ir.Value, then *ir.Block) {
		// condbr c ? then : advance from the current block.
		if outer {
			advIn = append(advIn, adv{cnt, b.B})
		}
		b.CondBr(c, then, advance)
		b.SetBlock(then)
	}

	checkB := f.NewBlock()
	b.CondBr(b.ICmp(ir.Eq, e, b.ConstI64(0)), exitW, checkB)
	b.SetBlock(checkB)

	// Hash, then key comparisons.
	eh := b.Load(ir.I64, b.GEP(e, nil, 0, 0))
	gotoAdvance(b.ICmp(ir.Eq, eh, h), f.NewBlock())
	for i := range j.ProbeKeys {
		bk := b.Load(ir.I64, b.GEP(e, nil, 0, int64(16+8*i)))
		gotoAdvance(b.ICmp(ir.Eq, bk, keyVals[i].X), f.NewBlock())
	}

	// Residual over [probe ++ build].
	if j.Residual != nil {
		combined := cached(func(idx int) expr.Val {
			if idx < np {
				return res(idx)
			}
			fld, ok := op.desc.byIdx[idx-np]
			if !ok {
				panic("codegen: residual references unsaved build column")
			}
			return p.loadAt(e, fld.off, fld.t)
		})
		force(combined, j.Residual)
		c := p.genBool(j.Residual, combined)
		gotoAdvance(c, f.NewBlock())
	}

	// Match.
	switch j.Kind {
	case plan.Inner:
		// Pre-load the payload eagerly at the match point.
		payload := make([]expr.Val, len(j.PayloadIdx))
		for i, src := range j.PayloadIdx {
			fld := op.desc.byIdx[src]
			payload[i] = p.loadAt(e, fld.off, fld.t)
		}
		outRes := cached(func(idx int) expr.Val {
			if idx < np {
				return res(idx)
			}
			return payload[idx-np]
		})
		savedCont := p.cont
		p.cont = advance
		down(outRes)
		p.cont = savedCont
		b.Br(advance)
		b.SetBlock(exitW)
		// exitW is the open fall-through: tuple done.
	case plan.Semi:
		// First match wins: process downstream once and abandon the walk.
		down(res)
		open := b.B // downstream end: the tuple-done fall-through
		b.SetBlock(exitW)
		b.Br(p.cont) // exhausted without a match: reject the tuple
		b.SetBlock(open)
	case plan.Anti:
		// A match rejects the tuple.
		b.Br(p.cont)
		b.SetBlock(exitW)
		down(res)
	case plan.OuterCount:
		cnt2 := b.Add(cnt, b.ConstI64(1))
		advIn = append(advIn, adv{cnt2, b.B})
		b.Br(advance)
		b.SetBlock(exitW)
		outRes := cached(func(idx int) expr.Val {
			if idx < np {
				return res(idx)
			}
			return expr.Val{X: cnt}
		})
		down(outRes)
	}

	// advance: next chain entry.
	cur := b.B
	b.SetBlock(advance)
	if outer {
		cntAdv := b.Phi(ir.I64)
		for _, a := range advIn {
			ir.AddIncoming(cntAdv, a.v, a.blk)
		}
		ir.AddIncoming(cnt, cntAdv, advance)
	}
	enext := b.Load(ir.I64, b.GEP(e, nil, 0, 8))
	b.Br(walk)
	ir.AddIncoming(e, enext, advance)
	b.SetBlock(cur)
}

func (op *probeOp) outerCount() bool { return op.join.Kind == plan.OuterCount }

// bumpStat increments the worker-local filter counter at StatsLocalOff+off
// (0 = hits, 8 = skips) when counters are enabled.
func (op *probeOp) bumpStat(p *pgen, off int64) {
	so := op.desc.desc.StatsLocalOff
	if so < 0 {
		return
	}
	b := p.b
	addr := b.GEP(p.local, nil, 0, int64(so)+off)
	b.Store(addr, b.Add(b.Load(ir.I64, addr), b.ConstI64(1)))
}
