package vm

import (
	"fmt"
	"strings"
)

// Inst is one fixed-length bytecode instruction (§IV-A: "We use a fixed
// length encoding for the opcodes to improve the decoding speed").
type Inst struct {
	Op      Op
	A, B, C int32
	Lit     uint64
}

// Program is a translated function ready for interpretation.
type Program struct {
	Name string
	Code []Inst

	// NumRegs is the register-file size in slots (8 bytes each),
	// including the constant-pool prefix and parameter slots.
	NumRegs int

	// ConstPool is copied into the register-file prefix on entry; slots 0
	// and 1 always hold the constants 0 and 1 (§IV-A).
	ConstPool []uint64

	// ParamBase is the slot of the first parameter; arguments are written
	// to slots [ParamBase, ParamBase+NumParams).
	ParamBase int
	NumParams int

	// Translation statistics.
	SourceInstrs int // IR instructions translated
	Fused        int // IR instructions subsumed by macro-op fusion (§IV-F)
}

// RegFileBytes returns the register-file footprint (the §IV-C metric: the
// loop-aware allocator shrinks TPC-DS Q55 from 36 KB to 6 KB in the paper).
func (p *Program) RegFileBytes() int { return p.NumRegs * 8 }

// instBytes is the encoded size of one Inst (op + three operands + literal),
// used for cache byte accounting.
const instBytes = 24

// SizeBytes estimates the retained in-memory footprint of the program for
// compilation-cache byte budgeting.
func (p *Program) SizeBytes() int {
	return 64 + len(p.Name) + len(p.Code)*instBytes + len(p.ConstPool)*8
}

// String disassembles the program.
func (p *Program) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; %s: %d insts, %d regs (%d B), %d params @%d\n",
		p.Name, len(p.Code), p.NumRegs, p.RegFileBytes(), p.NumParams, p.ParamBase)
	for i, in := range p.Code {
		fmt.Fprintf(&sb, "%4d  %-14s %d %d %d", i, in.Op, in.A, in.B, in.C)
		if in.Lit != 0 {
			fmt.Fprintf(&sb, " lit=%#x", in.Lit)
		}
		sb.WriteByte('\n')
		_ = i
	}
	return sb.String()
}

// packScaleDisp packs a (scale, disp) pair into an instruction literal for
// the Lea/LoadIdx/StoreIdx encodings.
func packScaleDisp(scale, disp int64) uint64 {
	return uint64(scale)<<32 | uint64(uint32(int32(disp)))
}

func unpackScale(lit uint64) int64 { return int64(lit >> 32) }
func unpackDisp(lit uint64) int64  { return int64(int32(uint32(lit))) }

// packTargets packs (cont, other) branch targets for the fused
// overflow-branch encoding: overflow target in the high half.
func packTargets(onTrue, onFalse int) uint64 {
	return uint64(uint32(onTrue))<<32 | uint64(uint32(onFalse))
}
