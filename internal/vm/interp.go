package vm

import (
	"encoding/binary"
	"math"
	"math/bits"

	"aqe/internal/rt"
)

// Run interprets the program with the given arguments, returning the raw
// result register. The interpreter is the paper's Fig. 8 loop: a single
// switch over statically typed, fixed-length opcodes operating on a flat
// register file, with all memory traffic going through the segmented query
// address space — so it performs exactly the same work as compiled code
// and execution can switch between the two at any morsel boundary.
//
// Runtime faults (overflow, division by zero) are raised as rt.Trap panics
// and recovered at the engine's dispatch boundary.
func (p *Program) Run(ctx *rt.Ctx, args []uint64) uint64 {
	regs := ctx.PushRegs(p.NumRegs)
	copy(regs, p.ConstPool)
	copy(regs[p.ParamBase:], args)
	mem := ctx.Mem
	code := p.Code
	pc := 0
	for {
		in := &code[pc]
		pc++
		switch in.Op {
		case OpNop:
		case OpMov:
			regs[in.A] = regs[in.B]

		case OpAddI64:
			regs[in.A] = regs[in.B] + regs[in.C]
		case OpSubI64:
			regs[in.A] = regs[in.B] - regs[in.C]
		case OpMulI64:
			regs[in.A] = regs[in.B] * regs[in.C]
		case OpSDivI64:
			d := int64(regs[in.C])
			if d == 0 {
				rt.Throw(rt.TrapDivZero)
			}
			n := int64(regs[in.B])
			if n == math.MinInt64 && d == -1 {
				rt.Throw(rt.TrapOverflow)
			}
			regs[in.A] = uint64(n / d)
		case OpSRemI64:
			d := int64(regs[in.C])
			if d == 0 {
				rt.Throw(rt.TrapDivZero)
			}
			n := int64(regs[in.B])
			if n == math.MinInt64 && d == -1 {
				regs[in.A] = 0
			} else {
				regs[in.A] = uint64(n % d)
			}
		case OpUDivI64:
			if regs[in.C] == 0 {
				rt.Throw(rt.TrapDivZero)
			}
			regs[in.A] = regs[in.B] / regs[in.C]
		case OpURemI64:
			if regs[in.C] == 0 {
				rt.Throw(rt.TrapDivZero)
			}
			regs[in.A] = regs[in.B] % regs[in.C]

		case OpAddF64:
			regs[in.A] = math.Float64bits(math.Float64frombits(regs[in.B]) + math.Float64frombits(regs[in.C]))
		case OpSubF64:
			regs[in.A] = math.Float64bits(math.Float64frombits(regs[in.B]) - math.Float64frombits(regs[in.C]))
		case OpMulF64:
			regs[in.A] = math.Float64bits(math.Float64frombits(regs[in.B]) * math.Float64frombits(regs[in.C]))
		case OpDivF64:
			regs[in.A] = math.Float64bits(math.Float64frombits(regs[in.B]) / math.Float64frombits(regs[in.C]))

		case OpAnd64:
			regs[in.A] = regs[in.B] & regs[in.C]
		case OpOr64:
			regs[in.A] = regs[in.B] | regs[in.C]
		case OpXor64:
			regs[in.A] = regs[in.B] ^ regs[in.C]
		case OpShl64:
			regs[in.A] = regs[in.B] << (regs[in.C] & 63)
		case OpLShr64:
			regs[in.A] = regs[in.B] >> (regs[in.C] & 63)
		case OpAShr64:
			regs[in.A] = uint64(int64(regs[in.B]) >> (regs[in.C] & 63))

		case OpCmpEqI64:
			regs[in.A] = b2u(regs[in.B] == regs[in.C])
		case OpCmpNeI64:
			regs[in.A] = b2u(regs[in.B] != regs[in.C])
		case OpCmpSLtI64:
			regs[in.A] = b2u(int64(regs[in.B]) < int64(regs[in.C]))
		case OpCmpSLeI64:
			regs[in.A] = b2u(int64(regs[in.B]) <= int64(regs[in.C]))
		case OpCmpSGtI64:
			regs[in.A] = b2u(int64(regs[in.B]) > int64(regs[in.C]))
		case OpCmpSGeI64:
			regs[in.A] = b2u(int64(regs[in.B]) >= int64(regs[in.C]))
		case OpCmpULtI64:
			regs[in.A] = b2u(regs[in.B] < regs[in.C])
		case OpCmpULeI64:
			regs[in.A] = b2u(regs[in.B] <= regs[in.C])
		case OpCmpUGtI64:
			regs[in.A] = b2u(regs[in.B] > regs[in.C])
		case OpCmpUGeI64:
			regs[in.A] = b2u(regs[in.B] >= regs[in.C])

		case OpCmpEqF64:
			regs[in.A] = b2u(math.Float64frombits(regs[in.B]) == math.Float64frombits(regs[in.C]))
		case OpCmpNeF64:
			regs[in.A] = b2u(math.Float64frombits(regs[in.B]) != math.Float64frombits(regs[in.C]))
		case OpCmpLtF64:
			regs[in.A] = b2u(math.Float64frombits(regs[in.B]) < math.Float64frombits(regs[in.C]))
		case OpCmpLeF64:
			regs[in.A] = b2u(math.Float64frombits(regs[in.B]) <= math.Float64frombits(regs[in.C]))
		case OpCmpGtF64:
			regs[in.A] = b2u(math.Float64frombits(regs[in.B]) > math.Float64frombits(regs[in.C]))
		case OpCmpGeF64:
			regs[in.A] = b2u(math.Float64frombits(regs[in.B]) >= math.Float64frombits(regs[in.C]))

		case OpSAddOvf:
			r, o := AddOverflow(int64(regs[in.B]), int64(regs[in.C]))
			regs[in.A] = uint64(r)
			regs[in.A+1] = b2u(o)
		case OpSSubOvf:
			r, o := SubOverflow(int64(regs[in.B]), int64(regs[in.C]))
			regs[in.A] = uint64(r)
			regs[in.A+1] = b2u(o)
		case OpSMulOvf:
			r, o := MulOverflow(int64(regs[in.B]), int64(regs[in.C]))
			regs[in.A] = uint64(r)
			regs[in.A+1] = b2u(o)

		case OpSAddOvfBr:
			r, o := AddOverflow(int64(regs[in.B]), int64(regs[in.C]))
			regs[in.A] = uint64(r)
			if o {
				pc = int(in.Lit >> 32)
			} else {
				pc = int(uint32(in.Lit))
			}
		case OpSSubOvfBr:
			r, o := SubOverflow(int64(regs[in.B]), int64(regs[in.C]))
			regs[in.A] = uint64(r)
			if o {
				pc = int(in.Lit >> 32)
			} else {
				pc = int(uint32(in.Lit))
			}
		case OpSMulOvfBr:
			r, o := MulOverflow(int64(regs[in.B]), int64(regs[in.C]))
			regs[in.A] = uint64(r)
			if o {
				pc = int(in.Lit >> 32)
			} else {
				pc = int(uint32(in.Lit))
			}

		case OpSExt8:
			regs[in.A] = uint64(int64(int8(regs[in.B])))
		case OpSExt16:
			regs[in.A] = uint64(int64(int16(regs[in.B])))
		case OpSExt32:
			regs[in.A] = uint64(int64(int32(regs[in.B])))
		case OpTrunc8:
			regs[in.A] = regs[in.B] & 0xff
		case OpTrunc16:
			regs[in.A] = regs[in.B] & 0xffff
		case OpTrunc32:
			regs[in.A] = regs[in.B] & 0xffffffff
		case OpSIToFP:
			regs[in.A] = math.Float64bits(float64(int64(regs[in.B])))
		case OpFPToSI:
			regs[in.A] = uint64(int64(math.Float64frombits(regs[in.B])))

		case OpLoadI8:
			a := regs[in.B]
			regs[in.A] = uint64(mem.Seg(a)[0])
		case OpLoadI16:
			a := regs[in.B]
			regs[in.A] = uint64(binary.LittleEndian.Uint16(mem.Seg(a)))
		case OpLoadI32:
			a := regs[in.B]
			regs[in.A] = uint64(binary.LittleEndian.Uint32(mem.Seg(a)))
		case OpLoadI64:
			a := regs[in.B]
			regs[in.A] = binary.LittleEndian.Uint64(mem.Seg(a))
		case OpStoreI8:
			a := regs[in.B]
			mem.Seg(a)[0] = byte(regs[in.A])
		case OpStoreI16:
			a := regs[in.B]
			binary.LittleEndian.PutUint16(mem.Seg(a), uint16(regs[in.A]))
		case OpStoreI32:
			a := regs[in.B]
			binary.LittleEndian.PutUint32(mem.Seg(a), uint32(regs[in.A]))
		case OpStoreI64:
			a := regs[in.B]
			binary.LittleEndian.PutUint64(mem.Seg(a), regs[in.A])

		case OpLoadIdxI8:
			a := regs[in.B] + regs[in.C]*(in.Lit>>32) + uint64(int64(int32(uint32(in.Lit))))
			regs[in.A] = uint64(mem.Seg(a)[0])
		case OpLoadIdxI16:
			a := regs[in.B] + regs[in.C]*(in.Lit>>32) + uint64(int64(int32(uint32(in.Lit))))
			regs[in.A] = uint64(binary.LittleEndian.Uint16(mem.Seg(a)))
		case OpLoadIdxI32:
			a := regs[in.B] + regs[in.C]*(in.Lit>>32) + uint64(int64(int32(uint32(in.Lit))))
			regs[in.A] = uint64(binary.LittleEndian.Uint32(mem.Seg(a)))
		case OpLoadIdxI64:
			a := regs[in.B] + regs[in.C]*(in.Lit>>32) + uint64(int64(int32(uint32(in.Lit))))
			regs[in.A] = binary.LittleEndian.Uint64(mem.Seg(a))
		case OpStoreIdxI8:
			a := regs[in.B] + regs[in.C]*(in.Lit>>32) + uint64(int64(int32(uint32(in.Lit))))
			mem.Seg(a)[0] = byte(regs[in.A])
		case OpStoreIdxI16:
			a := regs[in.B] + regs[in.C]*(in.Lit>>32) + uint64(int64(int32(uint32(in.Lit))))
			binary.LittleEndian.PutUint16(mem.Seg(a), uint16(regs[in.A]))
		case OpStoreIdxI32:
			a := regs[in.B] + regs[in.C]*(in.Lit>>32) + uint64(int64(int32(uint32(in.Lit))))
			binary.LittleEndian.PutUint32(mem.Seg(a), uint32(regs[in.A]))
		case OpStoreIdxI64:
			a := regs[in.B] + regs[in.C]*(in.Lit>>32) + uint64(int64(int32(uint32(in.Lit))))
			binary.LittleEndian.PutUint64(mem.Seg(a), regs[in.A])

		case OpLea:
			regs[in.A] = regs[in.B] + regs[in.C]*(in.Lit>>32) + uint64(int64(int32(uint32(in.Lit))))

		case OpSelect:
			if regs[in.B] != 0 {
				regs[in.A] = regs[in.C]
			} else {
				regs[in.A] = regs[in.Lit]
			}

		case OpJmp:
			pc = int(in.A)
		case OpJmpIf:
			if regs[in.A] != 0 {
				pc = int(in.B)
			} else {
				pc = int(in.C)
			}

		case OpJEqI64:
			if regs[in.A] == regs[in.B] {
				pc = int(in.C)
			} else {
				pc = int(uint32(in.Lit))
			}
		case OpJNeI64:
			if regs[in.A] != regs[in.B] {
				pc = int(in.C)
			} else {
				pc = int(uint32(in.Lit))
			}
		case OpJSLtI64:
			if int64(regs[in.A]) < int64(regs[in.B]) {
				pc = int(in.C)
			} else {
				pc = int(uint32(in.Lit))
			}
		case OpJSLeI64:
			if int64(regs[in.A]) <= int64(regs[in.B]) {
				pc = int(in.C)
			} else {
				pc = int(uint32(in.Lit))
			}
		case OpJSGtI64:
			if int64(regs[in.A]) > int64(regs[in.B]) {
				pc = int(in.C)
			} else {
				pc = int(uint32(in.Lit))
			}
		case OpJSGeI64:
			if int64(regs[in.A]) >= int64(regs[in.B]) {
				pc = int(in.C)
			} else {
				pc = int(uint32(in.Lit))
			}
		case OpJULtI64:
			if regs[in.A] < regs[in.B] {
				pc = int(in.C)
			} else {
				pc = int(uint32(in.Lit))
			}
		case OpJULeI64:
			if regs[in.A] <= regs[in.B] {
				pc = int(in.C)
			} else {
				pc = int(uint32(in.Lit))
			}
		case OpJUGtI64:
			if regs[in.A] > regs[in.B] {
				pc = int(in.C)
			} else {
				pc = int(uint32(in.Lit))
			}
		case OpJUGeI64:
			if regs[in.A] >= regs[in.B] {
				pc = int(in.C)
			} else {
				pc = int(uint32(in.Lit))
			}

		case OpArg:
			ctx.Args[in.A] = regs[in.B]
		case OpCall:
			// A callee that re-enters generated code runs in its own
			// register frame (Ctx.PushRegs), so regs stays valid.
			r := ctx.Funcs[in.Lit](ctx, ctx.Args[:in.B])
			if in.A >= 0 {
				regs[in.A] = r
			}

		case OpRet:
			ctx.PopRegs()
			return regs[in.A]
		case OpRetVoid:
			ctx.PopRegs()
			return 0

		default:
			panic("vm: bad opcode")
		}
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// AddOverflow returns x+y and whether the signed addition overflowed.
func AddOverflow(x, y int64) (int64, bool) {
	r := x + y
	return r, (x^r)&(y^r) < 0
}

// SubOverflow returns x-y and whether the signed subtraction overflowed.
func SubOverflow(x, y int64) (int64, bool) {
	r := x - y
	return r, (x^y)&(x^r) < 0
}

// MulOverflow returns x*y and whether the signed multiplication
// overflowed, using the full 128-bit product (no division).
func MulOverflow(x, y int64) (int64, bool) {
	hi, lo := bits.Mul64(uint64(x), uint64(y))
	r := int64(lo)
	// Adjust the unsigned high word to the signed high word.
	shi := int64(hi) - ((x >> 63) & y) - ((y >> 63) & x)
	return r, shi != r>>63
}
