package vm

import (
	"strings"
	"testing"

	"aqe/internal/ir"
	"aqe/internal/rt"
)

// run translates f with opts and executes it with the given args.
func run(t *testing.T, f *ir.Function, opts Options, ctx *rt.Ctx, args ...uint64) uint64 {
	t.Helper()
	p, err := Translate(f, opts)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	if ctx == nil {
		ctx = &rt.Ctx{Mem: rt.NewMemory()}
	}
	return p.Run(ctx, args)
}

func allStrategies() []Options {
	return []Options{
		{Strategy: LoopAware},
		{Strategy: NoReuse},
		{Strategy: Window, WindowSize: 2},
		{Strategy: LoopAware, NoFusion: true},
	}
}

func buildAdd(m *ir.Module) *ir.Function {
	// The paper's §IV-A example: add(i32 a, i32 b) { return a + b }, here
	// on i64.
	f := m.NewFunc("add", ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	b.Ret(b.Add(f.Params[0], f.Params[1]))
	return f
}

func TestAdd(t *testing.T) {
	for _, opts := range allStrategies() {
		f := buildAdd(ir.NewModule("t"))
		if got := run(t, f, opts, nil, 40, 2); got != 42 {
			t.Errorf("strategy %v: add(40,2) = %d", opts.Strategy, got)
		}
	}
}

func buildLoopSum(m *ir.Module) *ir.Function {
	f := m.NewFunc("loopsum", ir.I64)
	b := ir.NewBuilder(f)
	entry := b.B
	head := f.NewBlock()
	body := f.NewBlock()
	exit := f.NewBlock()
	zero, one := b.ConstI64(0), b.ConstI64(1)
	b.Br(head)
	b.SetBlock(head)
	i := b.Phi(ir.I64)
	s := b.Phi(ir.I64)
	cond := b.ICmp(ir.SLt, i, f.Params[0])
	b.CondBr(cond, body, exit)
	b.SetBlock(body)
	s2 := b.Add(s, i)
	i2 := b.Add(i, one)
	b.Br(head)
	ir.AddIncoming(i, zero, entry)
	ir.AddIncoming(i, i2, body)
	ir.AddIncoming(s, zero, entry)
	ir.AddIncoming(s, s2, body)
	b.SetBlock(exit)
	b.Ret(s)
	return f
}

func TestLoopSum(t *testing.T) {
	for _, opts := range allStrategies() {
		f := buildLoopSum(ir.NewModule("t"))
		if got := run(t, f, opts, nil, 100); got != 4950 {
			t.Errorf("strategy %v: loopsum(100) = %d, want 4950", opts.Strategy, got)
		}
		if got := run(t, buildLoopSum(ir.NewModule("t")), opts, nil, 0); got != 0 {
			t.Errorf("strategy %v: loopsum(0) = %d, want 0", opts.Strategy, got)
		}
	}
}

func TestCmpBranchFusion(t *testing.T) {
	f := buildLoopSum(ir.NewModule("t"))
	p, err := Translate(f, Options{Strategy: LoopAware})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, in := range p.Code {
		if in.Op == OpJSLtI64 {
			found = true
		}
		if in.Op == OpCmpSLtI64 || in.Op == OpJmpIf {
			t.Errorf("unfused compare/branch remains: %s", in.Op)
		}
	}
	if !found {
		t.Error("no fused compare-and-branch emitted")
	}
	if p.Fused == 0 {
		t.Error("fusion counter is zero")
	}
}

func TestNoFusionStillCorrect(t *testing.T) {
	f := buildLoopSum(ir.NewModule("t"))
	p, err := Translate(f, Options{Strategy: LoopAware, NoFusion: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Fused != 0 {
		t.Errorf("NoFusion translated with %d fused ops", p.Fused)
	}
	ctx := &rt.Ctx{Mem: rt.NewMemory()}
	if got := p.Run(ctx, []uint64{10}); got != 45 {
		t.Errorf("loopsum(10) = %d, want 45", got)
	}
}

// buildOverflowChecked builds the overflow-checking pattern codegen emits:
// r = a*b with a branch to a trap call on overflow.
func buildOverflowChecked(m *ir.Module) *ir.Function {
	f := m.NewFunc("mulchk", ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	ovfB := f.NewBlock()
	contB := f.NewBlock()
	pair := b.SMulOvf(f.Params[0], f.Params[1])
	v := b.ExtractValue(pair, 0)
	fl := b.ExtractValue(pair, 1)
	b.CondBr(fl, ovfB, contB)
	b.SetBlock(ovfB)
	b.Call("trap_overflow", ir.Void)
	b.RetVoid()
	b.SetBlock(contB)
	b.Ret(v)
	return f
}

func trapCtx() *rt.Ctx {
	reg := rt.NewRegistry()
	reg.Register("trap_overflow", func(ctx *rt.Ctx, args []uint64) uint64 {
		rt.Throw(rt.TrapOverflow)
		return 0
	})
	funcs, _ := reg.Bind([]string{"trap_overflow"})
	return &rt.Ctx{Mem: rt.NewMemory(), Funcs: funcs}
}

func TestOverflowFusion(t *testing.T) {
	f := buildOverflowChecked(ir.NewModule("t"))
	p, err := Translate(f, Options{Strategy: LoopAware})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, in := range p.Code {
		if in.Op == OpSMulOvfBr {
			found = true
		}
	}
	if !found {
		t.Fatalf("overflow group not fused:\n%s", p)
	}
	ctx := trapCtx()
	if got := p.Run(ctx, []uint64{6, 7}); got != 42 {
		t.Errorf("mulchk(6,7) = %d", got)
	}
	err = rt.CatchTrap(func() {
		ctx.ResetRegs()
		p.Run(ctx, []uint64{uint64(1 << 62), 4})
	})
	if trap, ok := err.(*rt.Trap); !ok || trap.Code != rt.TrapOverflow {
		t.Errorf("expected overflow trap, got %v", err)
	}
}

func TestOverflowUnfused(t *testing.T) {
	for _, opts := range []Options{{NoFusion: true}, {Strategy: NoReuse, NoFusion: true}} {
		f := buildOverflowChecked(ir.NewModule("t"))
		p, err := Translate(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		ctx := trapCtx()
		if got := p.Run(ctx, []uint64{6, 7}); got != 42 {
			t.Errorf("unfused mulchk(6,7) = %d", got)
		}
		err = rt.CatchTrap(func() {
			ctx.ResetRegs()
			p.Run(ctx, []uint64{1 << 40, 1 << 40})
		})
		if err == nil {
			t.Error("expected overflow trap")
		}
	}
}

func TestDivByZeroTrap(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("div", ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	b.Ret(b.SDiv(f.Params[0], f.Params[1]))
	p, err := Translate(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := &rt.Ctx{Mem: rt.NewMemory()}
	if got := p.Run(ctx, []uint64{84, 2}); got != 42 {
		t.Errorf("div(84,2) = %d", got)
	}
	err = rt.CatchTrap(func() {
		ctx.ResetRegs()
		p.Run(ctx, []uint64{84, 0})
	})
	if trap, ok := err.(*rt.Trap); !ok || trap.Code != rt.TrapDivZero {
		t.Errorf("expected div-zero trap, got %v", err)
	}
}

func TestMemoryLoadStore(t *testing.T) {
	// sumcol(base, n): sum of an i64 column via fused gep+load.
	m := ir.NewModule("t")
	f := m.NewFunc("sumcol", ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	entry := b.B
	head := f.NewBlock()
	body := f.NewBlock()
	exit := f.NewBlock()
	zero, one := b.ConstI64(0), b.ConstI64(1)
	b.Br(head)
	b.SetBlock(head)
	i := b.Phi(ir.I64)
	s := b.Phi(ir.I64)
	cond := b.ICmp(ir.SLt, i, f.Params[1])
	b.CondBr(cond, body, exit)
	b.SetBlock(body)
	addr := b.GEP(f.Params[0], i, 8, 0)
	v := b.Load(ir.I64, addr)
	s2 := b.Add(s, v)
	i2 := b.Add(i, one)
	b.Br(head)
	ir.AddIncoming(i, zero, entry)
	ir.AddIncoming(i, i2, body)
	ir.AddIncoming(s, zero, entry)
	ir.AddIncoming(s, s2, body)
	b.SetBlock(exit)
	b.Ret(s)

	for _, opts := range allStrategies() {
		mem := rt.NewMemory()
		data := make([]byte, 10*8)
		base := mem.AddSegment(data)
		want := uint64(0)
		for i := 0; i < 10; i++ {
			mem.Store64(base+uint64(i*8), uint64(i*i))
			want += uint64(i * i)
		}
		ctx := &rt.Ctx{Mem: mem}
		p, err := Translate(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Run(ctx, []uint64{base, 10}); got != want {
			t.Errorf("strategy %v: sumcol = %d, want %d", opts.Strategy, got, want)
		}
	}
}

func TestGEPLoadFusion(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("ld", ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	addr := b.GEP(f.Params[0], f.Params[1], 8, 16)
	b.Ret(b.Load(ir.I64, addr))
	p, err := Translate(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range p.Code {
		if in.Op == OpLea {
			t.Errorf("gep not fused into load_idx:\n%s", p)
		}
	}
	mem := rt.NewMemory()
	base := mem.Alloc(128)
	mem.Store64(base+16+3*8, 777)
	ctx := &rt.Ctx{Mem: mem}
	if got := p.Run(ctx, []uint64{base, 3}); got != 777 {
		t.Errorf("fused load = %d, want 777", got)
	}
}

func TestNarrowLoadsAndStores(t *testing.T) {
	m := ir.NewModule("t")
	// echo(base): store i8/i16/i32 values then reload and combine.
	f := m.NewFunc("narrow", ir.I64)
	b := ir.NewBuilder(f)
	base := f.Params[0]
	b.Store(b.GEP(base, nil, 0, 0), b.Trunc(b.ConstI64(0x1FF), ir.I8))    // 0xFF
	b.Store(b.GEP(base, nil, 0, 2), b.Trunc(b.ConstI64(0x1FFFF), ir.I16)) // 0xFFFF
	b.Store(b.GEP(base, nil, 0, 4), b.Trunc(b.ConstI64(-1), ir.I32))
	v8 := b.ZExt(b.Load(ir.I8, b.GEP(base, nil, 0, 0)), ir.I64)
	v16 := b.ZExt(b.Load(ir.I16, b.GEP(base, nil, 0, 2)), ir.I64)
	v32 := b.ZExt(b.Load(ir.I32, b.GEP(base, nil, 0, 4)), ir.I64)
	s := b.Add(v8, v16)
	s = b.Add(s, v32)
	b.Ret(s)
	mem := rt.NewMemory()
	baseAddr := mem.Alloc(64)
	ctx := &rt.Ctx{Mem: mem}
	want := uint64(0xFF) + 0xFFFF + 0xFFFFFFFF
	for _, opts := range allStrategies() {
		p, err := Translate(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		ctx.ResetRegs()
		if got := p.Run(ctx, []uint64{baseAddr}); got != want {
			t.Errorf("strategy %v: narrow = %#x, want %#x", opts.Strategy, got, want)
		}
	}
}

func TestSExt(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("sext", ir.I64)
	b := ir.NewBuilder(f)
	v8 := b.Trunc(f.Params[0], ir.I8)
	b.Ret(b.SExt(v8, ir.I64))
	if got := run(t, f, Options{}, nil, 0x80); got != uint64(0xFFFFFFFFFFFFFF80) {
		t.Errorf("sext(0x80) = %#x", got)
	}
}

func TestSelect(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("max", ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	c := b.ICmp(ir.SGt, f.Params[0], f.Params[1])
	b.Ret(b.Select(c, f.Params[0], f.Params[1]))
	if got := run(t, f, Options{}, nil, 3, 9); got != 9 {
		t.Errorf("max(3,9) = %d", got)
	}
	f2 := m.NewFunc("max2", ir.I64, ir.I64)
	b = ir.NewBuilder(f2)
	c = b.ICmp(ir.SGt, f2.Params[0], f2.Params[1])
	b.Ret(b.Select(c, f2.Params[0], f2.Params[1]))
	if got := run(t, f2, Options{}, nil, 9, 3); got != 9 {
		t.Errorf("max(9,3) = %d", got)
	}
}

func TestFloatArithmetic(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("favg", ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	x := b.SIToFP(f.Params[0])
	y := b.SIToFP(f.Params[1])
	avg := b.FDiv(b.FAdd(x, y), b.ConstF64(2))
	b.Ret(b.FPToSI(avg))
	if got := run(t, f, Options{}, nil, 10, 20); got != 15 {
		t.Errorf("favg(10,20) = %d, want 15", got)
	}
}

func TestFloatCompare(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("fgt", ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	c := b.FCmp(ir.SGt, b.SIToFP(f.Params[0]), b.SIToFP(f.Params[1]))
	b.Ret(b.ZExt(c, ir.I64))
	if got := run(t, f, Options{}, nil, 5, 3); got != 1 {
		t.Errorf("fgt(5,3) = %d", got)
	}
	f2 := m.NewFunc("fgt2", ir.I64, ir.I64)
	b = ir.NewBuilder(f2)
	c = b.FCmp(ir.SGt, b.SIToFP(f2.Params[0]), b.SIToFP(f2.Params[1]))
	b.Ret(b.ZExt(c, ir.I64))
	if got := run(t, f2, Options{}, nil, 3, 5); got != 0 {
		t.Errorf("fgt(3,5) = %d", got)
	}
}

func TestExternCall(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("callout", ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	v := b.Call("mul3", ir.I64, f.Params[0], f.Params[1], b.ConstI64(2))
	b.Ret(v)
	reg := rt.NewRegistry()
	reg.Register("mul3", func(ctx *rt.Ctx, args []uint64) uint64 {
		return args[0] * args[1] * args[2]
	})
	funcs, err := reg.Bind([]string{"mul3"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := &rt.Ctx{Mem: rt.NewMemory(), Funcs: funcs}
	if got := run(t, f, Options{}, ctx, 3, 7); got != 42 {
		t.Errorf("callout = %d, want 42", got)
	}
}

// TestPhiSwap exercises the parallel-copy cycle: (a,b) = (b,a) in a loop.
func TestPhiSwap(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("swapN", ir.I64, ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	entry := b.B
	head := f.NewBlock()
	body := f.NewBlock()
	exit := f.NewBlock()
	zero, one := b.ConstI64(0), b.ConstI64(1)
	b.Br(head)
	b.SetBlock(head)
	i := b.Phi(ir.I64)
	a := b.Phi(ir.I64)
	bb := b.Phi(ir.I64)
	cond := b.ICmp(ir.SLt, i, f.Params[0])
	b.CondBr(cond, body, exit)
	b.SetBlock(body)
	i2 := b.Add(i, one)
	b.Br(head)
	ir.AddIncoming(i, zero, entry)
	ir.AddIncoming(i, i2, body)
	ir.AddIncoming(a, f.Params[1], entry)
	ir.AddIncoming(a, bb, body) // swap each iteration
	ir.AddIncoming(bb, f.Params[2], entry)
	ir.AddIncoming(bb, a, body)
	b.SetBlock(exit)
	// return a*1000 + b
	b.Ret(b.Add(b.Mul(a, b.ConstI64(1000)), bb))

	for _, opts := range allStrategies() {
		// Odd iteration count: swapped once net.
		if got := run(t, f, opts, nil, 3, 7, 9); got != 9*1000+7 {
			t.Errorf("strategy %v: swap odd = %d, want %d", opts.Strategy, got, 9*1000+7)
		}
		if got := run(t, f, opts, nil, 4, 7, 9); got != 7*1000+9 {
			t.Errorf("strategy %v: swap even = %d, want %d", opts.Strategy, got, 7*1000+9)
		}
	}
}

func TestRegisterFileSizes(t *testing.T) {
	// §IV-C: loop-aware must use no more slots than window, which must use
	// no more than no-reuse.
	f := buildBigStraightLine()
	var sizes [3]int
	for i, s := range []Strategy{LoopAware, Window, NoReuse} {
		p, err := Translate(f, Options{Strategy: s, WindowSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		sizes[i] = p.NumRegs
	}
	if !(sizes[0] <= sizes[1] && sizes[1] <= sizes[2]) {
		t.Errorf("register sizes not ordered: loop=%d window=%d noreuse=%d",
			sizes[0], sizes[1], sizes[2])
	}
	if sizes[0] == sizes[2] {
		t.Errorf("loop-aware did not reuse any register (= %d)", sizes[0])
	}
}

// buildBigStraightLine builds a multi-block chain where most values die
// quickly, so allocators with reuse need far fewer slots.
func buildBigStraightLine() *ir.Function {
	m := ir.NewModule("t")
	f := m.NewFunc("chain", ir.I64)
	b := ir.NewBuilder(f)
	v := f.Params[0]
	cur := b.B
	for i := 0; i < 40; i++ {
		t1 := b.Add(v, b.ConstI64(int64(i+1)))
		t2 := b.Mul(t1, t1)
		v = b.Xor(t2, v)
		next := f.NewBlock()
		b.Br(next)
		b.SetBlock(next)
		cur = next
	}
	_ = cur
	b.Ret(v)
	return f
}

func TestConstPoolLayout(t *testing.T) {
	m := ir.NewModule("t")
	f := buildAdd(m)
	p, err := Translate(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.ConstPool) < 2 || p.ConstPool[0] != 0 || p.ConstPool[1] != 1 {
		t.Errorf("const pool must start with 0,1: %v", p.ConstPool)
	}
	if p.ParamBase != len(p.ConstPool) {
		t.Errorf("params must follow the const pool")
	}
}

func TestDisassembly(t *testing.T) {
	f := buildLoopSum(ir.NewModule("t"))
	p, err := Translate(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	if !strings.Contains(s, "add_i64") || !strings.Contains(s, "jslt_i64") {
		t.Errorf("disassembly missing expected opcodes:\n%s", s)
	}
}

func TestOverflowHelpers(t *testing.T) {
	const min, max = -1 << 63, 1<<63 - 1
	cases := []struct {
		x, y int64
		add  bool
		sub  bool
		mul  bool
	}{
		{1, 2, false, false, false},
		{max, 1, true, false, false},
		{min, -1, true, false, true},
		{min, min, true, false, true},
		{max, max, true, false, true},
		{1 << 32, 1 << 32, false, false, true},
		{-(1 << 32), 1 << 32, false, false, true},
		{1 << 31, 1 << 31, false, false, false},
		{0, min, false, true, false},
		{-1, max, false, false, false},
		{min / 2, 2, false, false, false},
		{min/2 - 1, 2, false, false, true},
	}
	for _, c := range cases {
		if _, o := AddOverflow(c.x, c.y); o != c.add {
			t.Errorf("AddOverflow(%d,%d) = %v, want %v", c.x, c.y, o, c.add)
		}
		if _, o := SubOverflow(c.x, c.y); o != c.sub {
			t.Errorf("SubOverflow(%d,%d) = %v, want %v", c.x, c.y, o, c.sub)
		}
		r, o := MulOverflow(c.x, c.y)
		if o != c.mul {
			t.Errorf("MulOverflow(%d,%d) = %v, want %v", c.x, c.y, o, c.mul)
		}
		if !o && r != c.x*c.y {
			t.Errorf("MulOverflow(%d,%d) result %d != %d", c.x, c.y, r, c.x*c.y)
		}
	}
}
