package vm

import (
	"aqe/internal/ir"
	"aqe/internal/ir/analysis"
)

// Strategy selects the register allocation policy (§IV-C compares three).
type Strategy int

// Allocation strategies.
const (
	// LoopAware is the paper's allocator: live ranges from the linear-time
	// loop-aware liveness analysis, registers reused as soon as a range
	// ends.
	LoopAware Strategy = iota
	// NoReuse assigns every value its own slot ("36 KB" in §IV-C).
	NoReuse
	// Window reuses registers only for ranges spanning at most Options.
	// Window blocks; longer-lived values are kept to the end of the
	// function, modeling JIT allocators that only consider a fixed window
	// of neighboring basic blocks ("21 KB" in §IV-C).
	Window
)

// Options configures translation.
type Options struct {
	Strategy Strategy
	// WindowSize is the block window for the Window strategy (default 16).
	WindowSize int
	// NoFusion disables macro-op fusion (§IV-F) for ablation runs.
	NoFusion bool
}

// allocation is the result of register assignment for one function.
type allocation struct {
	slot      []int32 // value ID -> slot; -1 = no slot
	numSlots  int     // high-water mark, excluding the scratch slot
	scratch   int32   // slot reserved for parallel-copy cycle breaking
	constPool []uint64
	paramBase int
}

func (a *allocation) of(v *ir.Value) int32 {
	s := a.slot[v.ID]
	if s < 0 {
		panic("vm: value has no register slot")
	}
	return s
}

// allocate assigns register-file slots. Layout: [0,1] = constants 0 and 1,
// then the remaining constant pool, then parameters, then temporaries
// allocated on demand in reverse-postorder with a LIFO free list — freed
// slots are reused immediately so the hot part of the register file stays
// small and L1-resident (§IV-C).
func allocate(f *ir.Function, lv *analysis.Liveness, hasSlot []bool, opts Options) *allocation {
	a := &allocation{slot: make([]int32, f.NumValues())}
	for i := range a.slot {
		a.slot[i] = -1
	}

	// Constant pool: slots 0/1 pinned to 0/1, further constants deduped
	// by bit pattern.
	a.constPool = []uint64{0, 1}
	poolIdx := map[uint64]int32{0: 0, 1: 1}
	for _, c := range f.Constants() {
		s, ok := poolIdx[c.Const]
		if !ok {
			s = int32(len(a.constPool))
			a.constPool = append(a.constPool, c.Const)
			poolIdx[c.Const] = s
		}
		a.slot[c.ID] = s
	}
	a.paramBase = len(a.constPool)
	for i, p := range f.Params {
		a.slot[p.ID] = int32(a.paramBase + i)
	}
	next := a.paramBase + len(f.Params)
	a.numSlots = next

	nBlocks := len(lv.Order())
	ranges := make([]analysis.Interval, len(lv.Ranges))
	copy(ranges, lv.Ranges)

	// Normalize ranges per strategy.
	for _, b := range lv.Order() {
		n := lv.Pos(b)
		for _, in := range b.Instrs {
			if in.Type == ir.Void || !hasSlot[in.ID] {
				continue
			}
			r := &ranges[in.ID]
			if r.Empty() {
				// Dead value that is still emitted (e.g. an unused call
				// result): live only in its defining block.
				*r = analysis.Interval{Start: n, End: n}
			}
			switch opts.Strategy {
			case NoReuse:
				r.End = nBlocks - 1
			case Window:
				w := opts.WindowSize
				if w <= 0 {
					w = 16
				}
				if r.End-r.Start > w {
					r.End = nBlocks - 1
				}
			}
		}
	}

	// Per-position start/end lists.
	startAt := make([][]*ir.Value, nBlocks)
	endAt := make([][]int32, nBlocks) // freed slots, filled during assignment
	for _, b := range lv.Order() {
		for _, in := range b.Instrs {
			if in.Type == ir.Void || !hasSlot[in.ID] {
				continue
			}
			r := ranges[in.ID]
			startAt[r.Start] = append(startAt[r.Start], in)
		}
	}

	var free []int32
	alloc1 := func() int32 {
		if opts.Strategy != NoReuse && len(free) > 0 {
			s := free[len(free)-1]
			free = free[:len(free)-1]
			return s
		}
		s := int32(next)
		next++
		if next > a.numSlots {
			a.numSlots = next
		}
		return s
	}
	for n := 0; n < nBlocks; n++ {
		for _, v := range startAt[n] {
			if v.Type == ir.Pair {
				// Pair values need two consecutive slots (value, flag);
				// allocate fresh at the top to keep the fast path simple —
				// unfused pairs are rare since codegen emits the fusable
				// pattern.
				s := int32(next)
				next += 2
				if next > a.numSlots {
					a.numSlots = next
				}
				a.slot[v.ID] = s
				endAt[ranges[v.ID].End] = append(endAt[ranges[v.ID].End], s, s+1)
				continue
			}
			s := alloc1()
			a.slot[v.ID] = s
			endAt[ranges[v.ID].End] = append(endAt[ranges[v.ID].End], s)
		}
		free = append(free, endAt[n]...)
	}
	a.scratch = int32(a.numSlots)
	a.numSlots++
	return a
}
