// Package vm implements the paper's fast bytecode interpreter (§IV): a
// register machine with a fixed-length, statically typed instruction
// encoding that mostly mirrors the IR instruction set, a linear-time
// translator from IR using the loop-aware liveness analysis, macro-op
// fusion for frequent instruction sequences (overflow checks, address
// computation + memory access, compare + branch), and a switch-dispatch
// interpreter loop.
package vm

// Op is a bytecode opcode. The type is baked into the opcode (add_i64,
// add_f64, ...) so the interpreter needs no runtime type dispatch, unlike
// the generic IR whose single "add" covers all operand widths (§IV).
type Op uint16

// Opcodes. Instruction operands: A, B, C are register-file slot indexes
// (or instruction indexes for branch targets); Lit is a 64-bit literal.
const (
	OpNop Op = iota

	// Mov: regs[A] = regs[B].
	OpMov

	// i64 arithmetic: regs[A] = regs[B] <op> regs[C]. Division traps on a
	// zero divisor.
	OpAddI64
	OpSubI64
	OpMulI64
	OpSDivI64
	OpSRemI64
	OpUDivI64
	OpURemI64

	// f64 arithmetic (IEEE bit patterns in the registers).
	OpAddF64
	OpSubF64
	OpMulF64
	OpDivF64

	// Bitwise on i64.
	OpAnd64
	OpOr64
	OpXor64
	OpShl64
	OpLShr64
	OpAShr64

	// Comparisons: regs[A] = regs[B] <pred> regs[C] ? 1 : 0.
	OpCmpEqI64
	OpCmpNeI64
	OpCmpSLtI64
	OpCmpSLeI64
	OpCmpSGtI64
	OpCmpSGeI64
	OpCmpULtI64
	OpCmpULeI64
	OpCmpUGtI64
	OpCmpUGeI64

	OpCmpEqF64
	OpCmpNeF64
	OpCmpLtF64
	OpCmpLeF64
	OpCmpGtF64
	OpCmpGeF64

	// Unfused overflow-checked arithmetic: value to regs[A], flag to
	// regs[A+1] (pair values occupy two consecutive slots).
	OpSAddOvf
	OpSSubOvf
	OpSMulOvf

	// Fused overflow-checked arithmetic + branch (§IV-F): regs[A] =
	// regs[B] <op> regs[C]; on overflow jump to Lit>>32, otherwise to
	// uint32(Lit). This folds the four-instruction LLVM sequence
	// (ovf-op, extractvalue 0, extractvalue 1, condbr) into one opcode.
	OpSAddOvfBr
	OpSSubOvfBr
	OpSMulOvfBr

	// Conversions: regs[A] = conv(regs[B]).
	OpSExt8
	OpSExt16
	OpSExt32
	OpTrunc8
	OpTrunc16
	OpTrunc32
	OpSIToFP
	OpFPToSI

	// Plain memory access: address in regs[B] (value register A). Narrow
	// loads zero-extend.
	OpLoadI8
	OpLoadI16
	OpLoadI32
	OpLoadI64
	OpStoreI8
	OpStoreI16
	OpStoreI32
	OpStoreI64

	// Fused address computation + access (§IV-F): the GetElementPtr
	// followed by load/store pattern collapses into one opcode.
	// addr = regs[B] + regs[C]*scale + disp with Lit = scale<<32 |
	// uint32(disp); A is the value register.
	OpLoadIdxI8
	OpLoadIdxI16
	OpLoadIdxI32
	OpLoadIdxI64
	OpStoreIdxI8
	OpStoreIdxI16
	OpStoreIdxI32
	OpStoreIdxI64

	// Lea: standalone address computation, same encoding as LoadIdx but
	// regs[A] receives the address.
	OpLea

	// Select: regs[A] = regs[B] != 0 ? regs[C] : regs[Lit].
	OpSelect

	// Control flow. Branch targets are instruction indexes.
	OpJmp   // pc = A
	OpJmpIf // pc = regs[A] != 0 ? B : C

	// Fused compare + branch: pc = (regs[A] <pred> regs[B]) ? C : Lit.
	OpJEqI64
	OpJNeI64
	OpJSLtI64
	OpJSLeI64
	OpJSGtI64
	OpJSGeI64
	OpJULtI64
	OpJULeI64
	OpJUGtI64
	OpJUGeI64

	// Extern calls: Arg stages ctx.Args[A] = regs[B]; Call invokes extern
	// Lit with B staged arguments, result to regs[A] (A < 0: void).
	OpArg
	OpCall

	OpRet // return regs[A]
	OpRetVoid

	opCount // sentinel
)

var opNames = [...]string{
	OpNop: "nop", OpMov: "mov",
	OpAddI64: "add_i64", OpSubI64: "sub_i64", OpMulI64: "mul_i64",
	OpSDivI64: "sdiv_i64", OpSRemI64: "srem_i64", OpUDivI64: "udiv_i64", OpURemI64: "urem_i64",
	OpAddF64: "add_f64", OpSubF64: "sub_f64", OpMulF64: "mul_f64", OpDivF64: "div_f64",
	OpAnd64: "and_i64", OpOr64: "or_i64", OpXor64: "xor_i64",
	OpShl64: "shl_i64", OpLShr64: "lshr_i64", OpAShr64: "ashr_i64",
	OpCmpEqI64: "icmp_eq_i64", OpCmpNeI64: "icmp_ne_i64",
	OpCmpSLtI64: "icmp_slt_i64", OpCmpSLeI64: "icmp_sle_i64",
	OpCmpSGtI64: "icmp_sgt_i64", OpCmpSGeI64: "icmp_sge_i64",
	OpCmpULtI64: "icmp_ult_i64", OpCmpULeI64: "icmp_ule_i64",
	OpCmpUGtI64: "icmp_ugt_i64", OpCmpUGeI64: "icmp_uge_i64",
	OpCmpEqF64: "fcmp_eq_f64", OpCmpNeF64: "fcmp_ne_f64",
	OpCmpLtF64: "fcmp_lt_f64", OpCmpLeF64: "fcmp_le_f64",
	OpCmpGtF64: "fcmp_gt_f64", OpCmpGeF64: "fcmp_ge_f64",
	OpSAddOvf: "sadd_ovf", OpSSubOvf: "ssub_ovf", OpSMulOvf: "smul_ovf",
	OpSAddOvfBr: "sadd_ovf_br", OpSSubOvfBr: "ssub_ovf_br", OpSMulOvfBr: "smul_ovf_br",
	OpSExt8: "sext_i8", OpSExt16: "sext_i16", OpSExt32: "sext_i32",
	OpTrunc8: "trunc_i8", OpTrunc16: "trunc_i16", OpTrunc32: "trunc_i32",
	OpSIToFP: "sitofp", OpFPToSI: "fptosi",
	OpLoadI8: "load_i8", OpLoadI16: "load_i16", OpLoadI32: "load_i32", OpLoadI64: "load_i64",
	OpStoreI8: "store_i8", OpStoreI16: "store_i16", OpStoreI32: "store_i32", OpStoreI64: "store_i64",
	OpLoadIdxI8: "load_idx_i8", OpLoadIdxI16: "load_idx_i16",
	OpLoadIdxI32: "load_idx_i32", OpLoadIdxI64: "load_idx_i64",
	OpStoreIdxI8: "store_idx_i8", OpStoreIdxI16: "store_idx_i16",
	OpStoreIdxI32: "store_idx_i32", OpStoreIdxI64: "store_idx_i64",
	OpLea: "lea", OpSelect: "select",
	OpJmp: "jmp", OpJmpIf: "jmpif",
	OpJEqI64: "jeq_i64", OpJNeI64: "jne_i64",
	OpJSLtI64: "jslt_i64", OpJSLeI64: "jsle_i64", OpJSGtI64: "jsgt_i64", OpJSGeI64: "jsge_i64",
	OpJULtI64: "jult_i64", OpJULeI64: "jule_i64", OpJUGtI64: "jugt_i64", OpJUGeI64: "juge_i64",
	OpArg: "arg", OpCall: "call",
	OpRet: "ret", OpRetVoid: "ret_void",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "op?"
}

// NumOpcodes is the size of the instruction set, reported in documentation
// and tests (the paper's VM handles ~500 instruction/type combinations; we
// widen all integers to 64 bits in registers, which collapses most of the
// width-specialized variants).
const NumOpcodes = int(opCount)
